#!/usr/bin/env bash
# Record a reference `repro` run into EXPERIMENTS.md (replaces everything
# after the "## Recorded quick-scale run" heading).
#
# JOBS=N overrides the worker count (default: all cores). Tables are
# byte-identical for any JOBS value; only the wall-clock changes.
set -euo pipefail
cd "$(dirname "$0")/.."
jobs="${JOBS:-$(nproc)}"
out=$(cargo run --release -p sr-bench --bin repro -- all --jobs "$jobs")
python3 - "$out" <<'PY'
import sys, re
out = sys.argv[1]
path = "EXPERIMENTS.md"
text = open(path).read()
marker = "## Recorded quick-scale run"
head = text.split(marker)[0]
block = f"{marker}\n\nRegenerate with `cargo run --release -p sr-bench --bin repro -- all` (add `--jobs N` to bound the worker pool; output is identical).\n\n```text\n{out}\n```\n"
open(path, "w").write(head + block)
print("EXPERIMENTS.md updated")
PY

# The measured wall-clock scaling gate (>=2.5x at 4 pipes) only means
# something with cores to scale onto: arm the full wall bench when the
# host has them, otherwise say so in one line and move on.
cores="$(nproc)"
if [ "$cores" -ge 4 ]; then
    echo "record_run: $cores cores — running full wall bench (>=2.5x 4-pipe gate armed)"
    cargo run --release -p sr-bench --bin repro -- wall
else
    echo "record_run: $cores core(s) — full wall bench skipped (scaling gate needs >= 4 cores)"
fi
