#!/usr/bin/env bash
# Tier-1 verification gate (see ROADMAP.md): release build, full test
# suite, formatting + warning-free clippy over every first-party crate,
# the srlint source gate, the srcheck pipeline-layout gate, and the
# release-mode allocation regression.
#
# Clippy/fmt run per first-party package rather than --workspace: the
# vendored stand-ins under vendor/ mirror upstream APIs and are exempt
# from clippy.toml's disallowed-methods policy and our formatting.
set -euo pipefail
cd "$(dirname "$0")/.."

FIRST_PARTY=(
    silkroad-lb sr-types sr-hash sr-asic silkroad sr-exec
    sr-baselines sr-workload sr-sim sr-netwide sr-bench srlint
)
PKG_FLAGS=()
for p in "${FIRST_PARTY[@]}"; do PKG_FLAGS+=(-p "$p"); done

echo "== build (release)"
cargo build --release

echo "== tests"
cargo test -q

echo "== fmt --check (first-party)"
cargo fmt --check "${PKG_FLAGS[@]}"

echo "== clippy (first-party, all targets, -D warnings)"
cargo clippy "${PKG_FLAGS[@]}" --all-targets -- -D warnings

echo "== srlint (hot-path + hygiene source gate)"
cargo run -q --release -p srlint -- .

echo "== srcheck (pipeline-layout gate: reference programs must place)"
./target/release/repro check > /dev/null

# Run in a scratch dir so the smoke JSON does not clobber the committed
# full-run BENCH_throughput.json.
echo "== repro scale --smoke (multi-pipe saturation + decision identity)"
SCALE_TMP="$(mktemp -d)"
( cd "$SCALE_TMP" && "$OLDPWD/target/release/repro" scale --smoke > /dev/null )
rm -rf "$SCALE_TMP"

# The allocation gate only means something with optimizations on: debug
# builds allocate in places release code does not (and vice versa).
echo "== alloc regression (release)"
cargo test --test alloc_regression --release

echo "== benches compile"
cargo bench --workspace --no-run

echo "verify: OK"
