#!/usr/bin/env bash
# Tier-1 verification gate (see ROADMAP.md): release build, full test
# suite, and a warning-free clippy pass over every workspace crate.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release)"
cargo build --release

echo "== tests"
cargo test -q

echo "== clippy (-D warnings)"
cargo clippy --workspace -- -D warnings

# The allocation gate only means something with optimizations on: debug
# builds allocate in places release code does not (and vice versa).
echo "== alloc regression (release)"
cargo test --test alloc_regression --release

echo "== benches compile"
cargo bench --workspace --no-run

echo "verify: OK"
