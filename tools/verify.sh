#!/usr/bin/env bash
# Tier-1 verification gate (see ROADMAP.md): release build, full test
# suite, formatting + warning-free clippy over every first-party crate,
# the srlint source gate, the srcheck pipeline-layout gate, and the
# release-mode allocation regression.
#
# Clippy/fmt run per first-party package rather than --workspace: the
# vendored stand-ins under vendor/ mirror upstream APIs and are exempt
# from clippy.toml's disallowed-methods policy and our formatting.
set -euo pipefail
cd "$(dirname "$0")/.."

FIRST_PARTY=(
    silkroad-lb sr-types sr-hash sr-asic sr-p4 sr-algo silkroad sr-exec
    sr-baselines sr-workload sr-sim sr-netwide sr-wire sr-bench srlint
)
PKG_FLAGS=()
for p in "${FIRST_PARTY[@]}"; do PKG_FLAGS+=(-p "$p"); done

echo "== build (release)"
# --workspace so the sr-bench `repro` binary the later gates exercise is
# rebuilt too: the root manifest is itself a package, and a bare
# `cargo build` covers only it and its lib dependencies — leaving a
# stale target/release/repro behind after CLI changes.
cargo build --release --workspace

echo "== tests"
cargo test -q

echo "== fmt --check (first-party)"
cargo fmt --check "${PKG_FLAGS[@]}"

echo "== clippy (first-party, all targets, -D warnings)"
cargo clippy "${PKG_FLAGS[@]}" --all-targets -- -D warnings

echo "== srlint (hot-path + hygiene source gate)"
cargo run -q --release -p srlint -- .

echo "== srcheck (pipeline-layout gate: reference programs must place)"
./target/release/repro check > /dev/null

# P4 front-end gate: every bundled .p4 must compile (parse -> semantic ->
# lower) and place on the Tofino-class chip. The default `repro check`
# above already runs the bundled sources plus the silkroad.p4-vs-
# hand-built parity gate; this loop additionally proves the --p4 file
# path works on each checked-in program.
echo "== sr-p4 (P4 front-end gate: bundled .p4 sources compile and place)"
for p4 in p4/*.p4; do
    ./target/release/repro check --p4 "$p4" > /dev/null
done

# Run in a scratch dir so the smoke JSON does not clobber the committed
# full-run BENCH_throughput.json.
echo "== repro scale --smoke (multi-pipe saturation + decision identity)"
SCALE_TMP="$(mktemp -d)"
( cd "$SCALE_TMP" && "$OLDPWD/target/release/repro" scale --smoke > /dev/null )
rm -rf "$SCALE_TMP"

# Wall smoke: the run-to-completion engine streams real traffic through
# resident per-pipe workers. Hard gate: decision digests bit-identical
# across pipe counts at full speed. The wall-clock scaling gate inside
# applies only on >=4-core hosts (the binary skips it otherwise and says
# so).
echo "== repro wall --smoke (run-to-completion engine, measured)"
WALL_TMP="$(mktemp -d)"
( cd "$WALL_TMP" && "$OLDPWD/target/release/repro" wall --smoke > /dev/null )
rm -rf "$WALL_TMP"

# Fleet smoke: the sharded steady-state engine holds a live population
# across the 100-cluster synthetic fleet. Hard gates inside the binary:
# zero PCC violations and <= 64 bytes per held connection.
echo "== repro fleet --smoke (fleet steady-state engine + PCC/byte gates)"
FLEET_TMP="$(mktemp -d)"
( cd "$FLEET_TMP" && "$OLDPWD/target/release/repro" fleet --smoke > /dev/null )
rm -rf "$FLEET_TMP"

# Churn smoke: the batched connection-setup sweep plus the SYN-flood
# scenario. Hard gates inside the binary: decision digests bit-identical
# between the batched and per-packet arms and across 1/2/4 pipes; the
# flood must overflow the learning filter without installing junk state
# and with zero PCC violations on the background flows. (The speedup
# floor applies to full runs only — smoke timings are too noisy.)
echo "== repro churn --smoke (batched setup sweep + SYN flood)"
CHURN_TMP="$(mktemp -d)"
(
    cd "$CHURN_TMP"
    "$OLDPWD/target/release/repro" churn --smoke > /dev/null
    "$OLDPWD/target/release/repro" churn --smoke --flood > /dev/null
)
rm -rf "$CHURN_TMP"

# Compare smoke: the cross-algorithm matrix — every sr-algo zoo member
# (silkroad, concury, cucotrack, hybrid) through the identical churn +
# pool-update workload. Hard gates inside the binary: all four layouts
# srcheck-placeable, zero stamp round-trip losses, SilkRoad zero PCC
# violations, Concury's SRAM bytes/conn below SilkRoad's, and CuCoTrack
# reporting a nonzero audited false-hit rate.
echo "== repro compare --smoke (cross-algorithm matrix + gates)"
COMPARE_TMP="$(mktemp -d)"
( cd "$COMPARE_TMP" && "$OLDPWD/target/release/repro" compare --smoke > /dev/null )
rm -rf "$COMPARE_TMP"

# Replay smoke: regenerate the smoke capture from the deterministic
# exporter, require it byte-identical to the committed golden, replay it,
# and require the decision digest to match the pinned value. Catches any
# drift in the trace generator, frame synthesis, parser, or data plane.
echo "== repro replay --smoke (wire round-trip vs golden pcap + pinned digest)"
REPLAY_TMP="$(mktemp -d)"
(
    cd "$REPLAY_TMP"
    "$OLDPWD/target/release/repro" export replay_smoke.pcap --smoke > /dev/null
    cmp "$OLDPWD/crates/bench/golden/replay_smoke.pcap" replay_smoke.pcap
    "$OLDPWD/target/release/repro" replay replay_smoke.pcap --pipes 2 --smoke > /dev/null
    digest="$(sed -n 's/.*"decision_digest": "\([0-9a-f]*\)".*/\1/p' BENCH_replay.json)"
    pinned="$(tr -d '[:space:]' < "$OLDPWD/crates/bench/golden/replay_smoke.digest")"
    if [ "$digest" != "$pinned" ]; then
        echo "replay smoke digest drifted: got $digest, pinned $pinned" >&2
        exit 1
    fi
)
rm -rf "$REPLAY_TMP"

# The allocation gate only means something with optimizations on: debug
# builds allocate in places release code does not (and vice versa).
echo "== alloc regression (release)"
cargo test --test alloc_regression --release

echo "== benches compile"
cargo bench --workspace --no-run

echo "verify: OK"
