//! `srlint` — the workspace's source-level lint gate.
//!
//! Complements `srcheck` (the pipeline-*layout* verifier in `sr-asic`):
//! where srcheck rejects programs the chip cannot place, srlint rejects
//! *source* that violates the repo's hot-path and hygiene policies —
//! things `cargo clippy` cannot express per-region:
//!
//! * **no-panic** — no `panic!`/`todo!`/`unimplemented!`/`unreachable!`/
//!   `.unwrap()`/`.expect(` in hot-path code. The packet path must be
//!   total: a panicking data plane is a dropped line card.
//! * **no-index** — no slice/array indexing (`x[i]`) in hot-path code;
//!   every index is a bounds-check branch and a potential panic.
//! * **no-alloc** — no allocating constructors (`Vec::new`, `vec![`,
//!   `format!`, `.collect()`, …) in hot-path code; the steady-state packet
//!   path reuses caller-owned buffers (`tests/alloc_regression.rs` proves
//!   it dynamically, this rule catches sneak-ins at review time).
//! * **no-as-cast** — no numeric `as` casts in hot-path code. `as` to a
//!   narrower integer silently truncates and `as` between signedness
//!   silently wraps; the packet path converts via `From`/`TryFrom` (or an
//!   explicit mask that states the intended width). Audited exceptions —
//!   provably-widening casts, lane-index arithmetic already bounded by a
//!   mask — are allowlisted per line.
//! * **no-std-hashmap** — `sr-core` and `sr-hash` must use the workspace's
//!   `FxHash` maps, not `std::collections::HashMap`/`HashSet` (SipHash
//!   costs ~4x on short keys; see `sr_hash::FxHashMap`).
//! * **forbid-unsafe** / **crate-docs** — every first-party crate root
//!   carries `#![forbid(unsafe_code)]` and starts with `//!` docs.
//!
//! Hot-path scope is the two whole-file modules `crates/core/src/dataplane.rs`
//! and `crates/hash/src/bloom.rs`, plus any region bracketed by
//! `// srlint: hot-path begin` / `// srlint: hot-path end` markers
//! (the `SilkRoadSwitch` batch path, the cuckoo probe functions, the
//! `MultiPipeSwitch` steering/dispatch path in
//! `crates/core/src/engine/mod.rs`, and the run-to-completion worker
//! loop — steer, fold, batch apply — in
//! `crates/core/src/engine/worker.rs`). Code from `#[cfg(test)]` onward
//! is exempt.
//!
//! Intentional exceptions live in `tools/srlint/allow.list`, keyed by
//! `path<TAB>rule<TAB>trimmed-line-content` — content-keyed, so an entry
//! survives line-number churn but dies with the code it excuses.
//!
//! Exit status: 0 clean, 1 violations, 2 usage/io error. Run from the
//! workspace root (or pass the root as the first argument).

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};

/// Files treated as hot-path in their entirety (workspace-relative).
const HOT_FILES: [&str; 2] = ["crates/core/src/dataplane.rs", "crates/hash/src/bloom.rs"];

/// Crates (workspace-relative source prefixes) under the FxHash policy.
const FXHASH_CRATES: [&str; 2] = ["crates/core/src/", "crates/hash/src/"];

/// Source directories scanned (first-party only; `vendor/` is exempt).
const SCAN_DIRS: [&str; 3] = ["src", "crates", "tools"];

/// Panic-family patterns banned in hot-path code.
const PANIC_PATTERNS: [&str; 6] = [
    "panic!(",
    "todo!(",
    "unimplemented!(",
    "unreachable!(",
    ".unwrap()",
    ".expect(",
];

/// Allocating-call patterns banned in hot-path code. Setup-time
/// allocations inside a hot region (constructors, the one warm buffer a
/// batch entry point hands out) are excused via the allowlist.
const ALLOC_PATTERNS: [&str; 11] = [
    "Vec::new(",
    "Vec::with_capacity(",
    "vec![",
    "Box::new(",
    "String::new(",
    "String::with_capacity(",
    "format!(",
    ".to_vec()",
    ".to_string()",
    ".to_owned()",
    ".collect()",
];

/// Primitive numeric types whose `as` casts the no-as-cast rule flags.
/// (Prefix-free as a set once the following character is checked, so a
/// simple starts-with match per candidate is exact.)
const CAST_TARGETS: [&str; 14] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

struct Violation {
    path: String,
    line: usize,
    rule: &'static str,
    content: String,
    message: String,
}

fn main() {
    let root = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    if root == "--help" || root == "-h" {
        eprintln!("usage: srlint [workspace-root]");
        std::process::exit(2);
    }
    let root = PathBuf::from(root);
    let allow_path = root.join("tools/srlint/allow.list");
    let allow = match load_allowlist(&allow_path) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("srlint: cannot read {}: {e}", allow_path.display());
            std::process::exit(2);
        }
    };

    let mut files: Vec<PathBuf> = Vec::new();
    for dir in SCAN_DIRS {
        collect_rs_files(&root.join(dir), &mut files);
    }
    files.sort();

    let mut violations: Vec<Violation> = Vec::new();
    let mut allowed = 0usize;
    let mut used_allow: Vec<bool> = vec![false; allow.len()];
    for file in &files {
        let rel = match file.strip_prefix(&root) {
            Ok(r) => r.to_string_lossy().replace('\\', "/"),
            Err(_) => file.to_string_lossy().into_owned(),
        };
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("srlint: cannot read {rel}: {e}");
                std::process::exit(2);
            }
        };
        for v in lint_source(&rel, &text) {
            match allow
                .iter()
                .position(|(p, r, c)| *p == v.path && *r == v.rule && *c == v.content)
            {
                Some(i) => {
                    used_allow[i] = true;
                    allowed += 1;
                }
                None => violations.push(v),
            }
        }
    }

    for v in &violations {
        println!("{}:{}: {}: {}", v.path, v.line, v.rule, v.message);
        println!("    {}", v.content);
    }
    for (i, used) in used_allow.iter().enumerate() {
        if !used {
            let (p, r, c) = &allow[i];
            eprintln!("srlint: note: unused allow.list entry: {p}\t{r}\t{c}");
        }
    }
    if violations.is_empty() {
        println!(
            "srlint: clean ({} files, {} allowlisted exception{})",
            files.len(),
            allowed,
            if allowed == 1 { "" } else { "s" }
        );
    } else {
        println!(
            "srlint: {} violation{} ({} files, {} allowlisted)",
            violations.len(),
            if violations.len() == 1 { "" } else { "s" },
            files.len(),
            allowed
        );
        println!(
            "    (intentional? add `path<TAB>rule<TAB>line-content` to tools/srlint/allow.list)"
        );
        std::process::exit(1);
    }
}

/// Recursively collect `.rs` files, skipping `vendor/` and `target/`.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "vendor" || name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Parse the allowlist: `path<TAB>rule<TAB>trimmed-line-content` per line;
/// `#` comments and blank lines ignored. A missing file means no exceptions.
fn load_allowlist(path: &Path) -> std::io::Result<Vec<(String, String, String)>> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.splitn(3, '\t');
        match (it.next(), it.next(), it.next()) {
            (Some(p), Some(r), Some(c)) => {
                out.push((p.to_string(), r.to_string(), c.trim().to_string()))
            }
            _ => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("malformed allow.list line (want 3 tab-separated fields): {line}"),
                ))
            }
        }
    }
    Ok(out)
}

/// Lint one file's source; pure so tests can drive it with fixtures.
fn lint_source(rel: &str, text: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let is_crate_root = rel.ends_with("src/lib.rs") || rel.ends_with("src/main.rs");
    if is_crate_root {
        if !text.contains("#![forbid(unsafe_code)]") {
            out.push(Violation {
                path: rel.to_string(),
                line: 1,
                rule: "forbid-unsafe",
                content: String::new(),
                message: "crate root lacks #![forbid(unsafe_code)]".to_string(),
            });
        }
        if !text.starts_with("//!") {
            out.push(Violation {
                path: rel.to_string(),
                line: 1,
                rule: "crate-docs",
                content: String::new(),
                message: "crate root does not start with //! crate-level docs".to_string(),
            });
        }
    }

    let fxhash_scope = FXHASH_CRATES.iter().any(|p| rel.starts_with(p));
    let whole_file_hot = HOT_FILES.contains(&rel);
    let mut hot = whole_file_hot;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let trimmed = raw.trim();
        match trimmed {
            "// srlint: hot-path begin" => {
                hot = true;
                continue;
            }
            "// srlint: hot-path end" => {
                hot = whole_file_hot;
                continue;
            }
            _ => {}
        }
        // Test code (and everything after it — test modules close the
        // files in this workspace) is exempt from all line rules.
        if trimmed.starts_with("#[cfg(test)]") {
            break;
        }
        let code = strip_strings_and_comments(raw);
        if fxhash_scope {
            for ty in ["std::collections::HashMap", "std::collections::HashSet"] {
                if code.contains(ty) {
                    out.push(Violation {
                        path: rel.to_string(),
                        line: line_no,
                        rule: "no-std-hashmap",
                        content: trimmed.to_string(),
                        message: format!(
                            "{ty} in an FxHash-policy crate (use sr_hash::FxHashMap/FxHashSet)"
                        ),
                    });
                }
            }
        }
        if hot {
            for pat in PANIC_PATTERNS {
                if code.contains(pat) {
                    out.push(Violation {
                        path: rel.to_string(),
                        line: line_no,
                        rule: "no-panic",
                        content: trimmed.to_string(),
                        message: format!("panicking call `{pat}..` in hot-path code"),
                    });
                }
            }
            if has_indexing(&code) {
                out.push(Violation {
                    path: rel.to_string(),
                    line: line_no,
                    rule: "no-index",
                    content: trimmed.to_string(),
                    message: "slice/array indexing in hot-path code (get/iterators instead)"
                        .to_string(),
                });
            }
            for pat in ALLOC_PATTERNS {
                if code.contains(pat) {
                    out.push(Violation {
                        path: rel.to_string(),
                        line: line_no,
                        rule: "no-alloc",
                        content: trimmed.to_string(),
                        message: format!(
                            "allocating call `{pat}..` in hot-path code (reuse a buffer)"
                        ),
                    });
                }
            }
            if let Some(ty) = numeric_as_cast(&code) {
                out.push(Violation {
                    path: rel.to_string(),
                    line: line_no,
                    rule: "no-as-cast",
                    content: trimmed.to_string(),
                    message: format!(
                        "`as {ty}` cast in hot-path code (silently truncates/wraps; use \
                         From/TryFrom or an explicit mask)"
                    ),
                });
            }
        }
    }
    out
}

/// Blank out string literals and drop `//` comments so patterns inside
/// them do not fire. Line-local; block comments are rare enough here that
/// doc examples live in `///` lines, which this also drops.
fn strip_strings_and_comments(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    while let Some(c) = chars.next() {
        if in_str {
            if c == '\\' {
                chars.next();
            } else if c == '"' {
                in_str = false;
            }
            out.push(' ');
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                out.push(' ');
            }
            '/' if chars.peek() == Some(&'/') => break,
            _ => out.push(c),
        }
    }
    out
}

/// Find a numeric `as` cast: the token ` as ` followed by a primitive
/// numeric type name (then a non-identifier character). `use x as y` and
/// identifiers containing "as" never match — `as` must stand alone and
/// the target must be one of `CAST_TARGETS` exactly.
fn numeric_as_cast(code: &str) -> Option<&'static str> {
    let mut start = 0;
    while let Some(pos) = code[start..].find(" as ") {
        let rest = code[start + pos + 4..].trim_start();
        for ty in CAST_TARGETS {
            if let Some(after) = rest.strip_prefix(ty) {
                let boundary = !after
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
                if boundary {
                    return Some(ty);
                }
            }
        }
        start += pos + 4;
    }
    None
}

/// Indexing heuristic: a `[` directly preceded by an identifier character
/// or a closing bracket is a subscript (`buf[i]`, `f()[0]`, `m[i][j]`);
/// `&[u8]`, `#[attr]`, `: [T; N]`, and array literals are not.
fn has_indexing(code: &str) -> bool {
    let bytes = code.as_bytes();
    for i in 1..bytes.len() {
        if bytes[i] != b'[' {
            continue;
        }
        let prev = bytes[i - 1];
        if prev.is_ascii_alphanumeric() || prev == b'_' || prev == b')' || prev == b']' {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(rel: &str, src: &str) -> Vec<&'static str> {
        lint_source(rel, src).into_iter().map(|v| v.rule).collect()
    }

    #[test]
    fn hot_file_catches_panic_family_and_indexing() {
        let src = "fn f(x: &[u8]) -> u8 {\n    let v = x[0];\n    x.first().copied().unwrap()\n}\n";
        let got = rules("crates/core/src/dataplane.rs", src);
        assert!(got.contains(&"no-index"), "{got:?}");
        assert!(got.contains(&"no-panic"), "{got:?}");
    }

    #[test]
    fn cold_file_is_unconstrained() {
        let src = "fn f(x: &[u8]) -> u8 { x[0] }\n";
        assert!(rules("crates/sim/src/harness.rs", src).is_empty());
    }

    #[test]
    fn marker_regions_toggle_hot_scope() {
        let src = "fn a(x: &[u8]) -> u8 { x[0] }\n\
                   // srlint: hot-path begin\n\
                   fn b(x: &[u8]) -> u8 { x[1] }\n\
                   // srlint: hot-path end\n\
                   fn c(x: &[u8]) -> u8 { x[2] }\n";
        let v = lint_source("crates/core/src/switch.rs", src);
        assert_eq!(
            v.len(),
            1,
            "{:?}",
            v.iter().map(|v| v.line).collect::<Vec<_>>()
        );
        assert_eq!(v[0].line, 3);
        assert_eq!(v[0].rule, "no-index");
    }

    #[test]
    fn hot_scope_catches_allocations() {
        let src = "// srlint: hot-path begin\n\
                   fn f() -> Vec<u8> {\n\
                       let v: Vec<u8> = (0..4).collect();\n\
                       v\n\
                   }\n\
                   // srlint: hot-path end\n\
                   fn cold() -> Vec<u8> { vec![0; 4] }\n";
        let v = lint_source("crates/core/src/engine.rs", src);
        assert_eq!(
            v.len(),
            1,
            "{:?}",
            v.iter().map(|v| v.line).collect::<Vec<_>>()
        );
        assert_eq!(v[0].rule, "no-alloc");
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn hot_scope_catches_numeric_as_casts() {
        let src = "// srlint: hot-path begin\n\
                   fn f(x: u32) -> u8 { (x >> 24) as u8 }\n\
                   // srlint: hot-path end\n\
                   fn cold(x: u32) -> u8 { (x >> 24) as u8 }\n";
        let v = lint_source("crates/core/src/engine.rs", src);
        assert_eq!(
            v.len(),
            1,
            "{:?}",
            v.iter().map(|v| (v.line, v.rule)).collect::<Vec<_>>()
        );
        assert_eq!(v[0].rule, "no-as-cast");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn as_cast_targets_are_matched_exactly() {
        // Renaming imports, non-numeric casts, and identifiers containing
        // "as" are not casts; every numeric primitive target is.
        for clean in [
            "use std::io::Result as IoResult;\n",
            "let p = x as *const u8;\n",
            "let y = x as u8x16;\n",
            "fn measure_as_u8() {}\n",
        ] {
            let src = format!("// srlint: hot-path begin\n{clean}// srlint: hot-path end\n");
            assert!(
                rules("crates/core/src/engine.rs", &src).is_empty(),
                "false positive on: {clean}"
            );
        }
        for ty in CAST_TARGETS {
            let src =
                format!("// srlint: hot-path begin\nlet y = x as {ty};\n// srlint: hot-path end\n");
            assert_eq!(
                rules("crates/core/src/engine.rs", &src),
                ["no-as-cast"],
                "missed target {ty}"
            );
        }
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "// srlint: hot-path begin\n\
                   fn ok() {}\n\
                   // srlint: hot-path end\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t(x: &[u8]) { x[0]; None::<u8>.unwrap(); }\n\
                   }\n";
        assert!(rules("crates/core/src/switch.rs", src).is_empty());
    }

    #[test]
    fn fxhash_policy_fires_only_in_policy_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(rules("crates/core/src/stats.rs", src), ["no-std-hashmap"]);
        assert_eq!(rules("crates/hash/src/cuckoo.rs", src), ["no-std-hashmap"]);
        assert!(rules("crates/sim/src/scenarios.rs", src).is_empty());
    }

    #[test]
    fn crate_root_hygiene() {
        let got = rules("crates/x/src/lib.rs", "pub fn f() {}\n");
        assert!(got.contains(&"forbid-unsafe"), "{got:?}");
        assert!(got.contains(&"crate-docs"), "{got:?}");
        assert!(rules(
            "crates/x/src/lib.rs",
            "//! Docs.\n#![forbid(unsafe_code)]\npub fn f() {}\n"
        )
        .is_empty());
    }

    #[test]
    fn strings_and_comments_do_not_fire() {
        let src = "fn f() {\n\
                       let s = \"call .unwrap() or x[0]\";\n\
                       // also .expect( and y[1] in a comment\n\
                       let _ = s;\n\
                   }\n";
        assert!(rules("crates/hash/src/bloom.rs", src).is_empty());
    }

    #[test]
    fn non_index_brackets_do_not_fire() {
        let src = "#[inline]\nfn f(x: &[u8], y: [u8; 4]) -> [u8; 2] { let _ = (x, y); [0; 2] }\n";
        assert!(rules("crates/hash/src/bloom.rs", src).is_empty());
    }
}
