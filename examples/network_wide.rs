//! Network-wide deployment (§5.3): assign VIPs to fabric layers so the
//! per-switch SRAM budget is respected and utilization is balanced, then
//! rebalance after shrinking the budget (incremental deployment).
//!
//! ```text
//! cargo run --example network_wide
//! ```

use silkroad::memory::{cost, MemoryDesign, MemoryInputs};
use sr_netwide::{assign_vips, Layer, Topology, VipDemand};
use sr_types::{AddrFamily, VipId};
use sr_workload::{synthesize_fleet, ClusterKind, FleetConfig};

fn main() {
    // Take one synthetic PoP cluster as the deployment target.
    let fleet = synthesize_fleet(FleetConfig::default());
    let cluster = fleet
        .iter()
        .find(|c| c.kind == ClusterKind::PoP)
        .expect("fleet has PoPs");
    println!(
        "deploying {} VIPs ({} conns/ToR p99) over a Clos fabric",
        cluster.vips, cluster.conns_per_tor_p99
    );

    // Per-VIP demand: connections split VIP-proportionally, memory via the
    // paper's 28-bit-entry model.
    let conns_per_vip = cluster.conns_per_tor_p99 * cluster.tors as u64 / cluster.vips as u64;
    let demands: Vec<VipDemand> = (0..cluster.vips)
        .map(|i| {
            let mem = cost(
                MemoryDesign::DigestVersion {
                    digest_bits: 16,
                    version_bits: 6,
                },
                &MemoryInputs {
                    connections: conns_per_vip,
                    vips: 1,
                    total_pool_members: (cluster.dips_per_vip * cluster.live_versions_per_vip)
                        as u64,
                    pool_rows: cluster.live_versions_per_vip as u64,
                    family: AddrFamily::V4,
                },
            )
            .total();
            VipDemand {
                vip: VipId(i),
                traffic_gbps: cluster.peak_gbps / cluster.vips as f64,
                memory_bytes: mem,
            }
        })
        .collect();

    // A fabric where every switch grants 50 MB to load balancing.
    let topo = Topology::clos(cluster.tors, 8, 4, 50 << 20, 6400.0);
    let a = assign_vips(&topo, &demands).expect("fits");
    println!("\nfull deployment (50 MB/switch):");
    for layer in Layer::ALL {
        let n = demands
            .iter()
            .filter(|d| a.layer_of.get(&d.vip) == Some(&layer))
            .count();
        println!(
            "  {:<4}: {:>3} VIPs, SRAM {:>5.1}%, traffic {:>5.1}%",
            layer.name(),
            n,
            100.0 * a.sram_utilization.get(&layer).copied().unwrap_or(0.0),
            100.0 * a.traffic_utilization.get(&layer).copied().unwrap_or(0.0),
        );
    }
    println!(
        "  max SRAM utilization: {:.1}%",
        100.0 * a.max_sram_utilization()
    );

    // Incremental deployment: SilkRoad only on half the ToRs and the cores.
    let mut partial = Topology::clos(cluster.tors, 8, 4, 50 << 20, 6400.0);
    for (i, s) in partial.switches_mut().iter_mut().enumerate() {
        if s.layer == Layer::ToR && i % 2 == 1 {
            s.silkroad_enabled = false;
        }
        if s.layer == Layer::Agg {
            s.silkroad_enabled = false;
        }
    }
    match assign_vips(&partial, &demands) {
        Ok(b) => {
            println!(
                "\nincremental deployment (half the ToRs, no Aggs): max SRAM {:.1}%",
                100.0 * b.max_sram_utilization()
            );
            assert!(b.max_sram_utilization() >= a.max_sram_utilization());
        }
        Err(e) => println!("\nincremental deployment infeasible: {e}"),
    }
}
