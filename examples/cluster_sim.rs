//! Simulate one ToR switch of the paper's reference PoP cluster (§3.2):
//! 149 VIPs, Hadoop-style flows, frequent DIP-pool updates — then report
//! what the operator cares about: broken connections, SRAM, and how many
//! SLB servers the switch replaced.
//!
//! ```text
//! cargo run --release --example cluster_sim [rate-factor] [minutes]
//! ```

use silkroad::SilkRoadConfig;
use sr_baselines::CostModel;
use sr_sim::adapters::SilkRoadAdapter;
use sr_sim::{Harness, HarnessConfig};
use sr_workload::TraceConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let rate_factor: f64 = args.first().and_then(|a| a.parse().ok()).unwrap_or(0.02);
    let minutes: u64 = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(2);

    let mut trace = TraceConfig::pop_scaled(rate_factor, minutes);
    trace.updates_per_min = 20.0;
    println!(
        "PoP reference cluster, one ToR: {:.0}K new conns/min, {} VIPs, {} upd/min, {} min",
        trace.new_conns_per_min / 1e3,
        trace.vips,
        trace.updates_per_min,
        minutes
    );

    let cfg = SilkRoadConfig {
        conn_capacity: ((trace.expected_conns() * 0.2) as usize).max(50_000),
        ..Default::default()
    };
    let mut lb = SilkRoadAdapter::new(cfg);
    let metrics = Harness::new(trace, HarnessConfig::default()).run(&mut lb);

    println!("\nrun:        {metrics}");
    let sw = lb.switch();
    println!("\nswitch:\n{}", sw.stats());

    let mem = sw.memory();
    println!(
        "\nSRAM at end of run: conn-table {:.2} MB + pools {:.2} MB + transit {} B ({} resident)",
        mem.conn_table as f64 / 1e6,
        mem.dip_pool_table as f64 / 1e6,
        mem.transit,
        sw.conn_count()
    );
    // Steady-state residency is rate x flow duration; project the SRAM a
    // paper-scale ToR would hold (the Fig 12 model).
    use silkroad::memory::{cost, MemoryDesign, MemoryInputs};
    let live = (2_770_000.0 / 60.0 * 10.0) as u64; // full rate x 10 s flows
    let projected = cost(
        MemoryDesign::DigestVersion {
            digest_bits: 16,
            version_bits: 6,
        },
        &MemoryInputs {
            connections: live * 20, // p99 minute is far above the mean
            vips: trace.vips as u64,
            total_pool_members: (trace.vips * trace.dips_per_vip * 4) as u64,
            pool_rows: (trace.vips * 4) as u64,
            family: trace.family,
        },
    );
    println!(
        "projected paper-scale ToR SRAM (p99 minute): {:.1} MB",
        projected.total_mb()
    );

    // What did this one switch replace? Project to the reference PoP ToR:
    // ~27 Gbit/s of small-packet user traffic and ~9 M p99 connections
    // (the Fig 12/13 calibration).
    let gbps = 27.0;
    let pps = gbps * 1e9 / 8.0 / 420.0;
    let d = CostModel::default().size(pps, gbps * 1e9, 9_000_000.0);
    println!(
        "\nat paper-scale load this switch replaces ~{} SLB servers ({:.1}x)",
        d.slbs,
        d.replacement_ratio()
    );
    assert!(d.replacement_ratio() >= 2.0);
    // Residual violations can only come from digest false positives (the
    // paper's own 0.01% budget); anything above that is a real bug.
    assert!(
        metrics.violation_fraction() <= 1e-4,
        "SilkRoad broke PCC beyond the digest-FP budget: {metrics}"
    );
}
