//! Failure handling (§7): DIP health-check failures handled through
//! version reuse, and a SilkRoad switch failure with ECMP re-spray.
//!
//! ```text
//! cargo run --example failover
//! ```

use silkroad::{PoolUpdate, SilkRoadConfig, SilkRoadSwitch};
use sr_netwide::failover::{respray_switch, switch_failure_impact};
use sr_netwide::{Layer, SilkRoadFabric, Topology};
use sr_types::{Addr, Dip, Duration, FiveTuple, Nanos, PacketMeta, PoolVersion, Vip};
use std::collections::HashMap;

fn main() {
    // --- Part 1: DIP failure -> remove, health restored -> re-add. -------
    let mut sw = SilkRoadSwitch::new(SilkRoadConfig::default());
    let vip = Vip(Addr::v4(20, 0, 0, 1, 80));
    let dips: Vec<Dip> = (1..=4).map(|i| Dip(Addr::v4(10, 0, 0, i, 20))).collect();
    sw.add_vip(vip, dips).unwrap();

    let mut t = Nanos::ZERO;
    let conns: Vec<FiveTuple> = (0..2000)
        .map(|i| FiveTuple::tcp(Addr::v4_indexed(1, i, 40_000), vip.0))
        .collect();
    let mut before = Vec::new();
    for c in &conns {
        before.push(sw.process_packet(&PacketMeta::syn(*c), t).dip.unwrap());
        t += Duration::from_micros(20);
    }
    t += Duration::from_millis(20);
    sw.advance(t);

    // BFD declares 10.0.0.2 dead; the control plane removes it.
    let failed = Dip(Addr::v4(10, 0, 0, 2, 20));
    sw.request_update(vip, PoolUpdate::Remove(failed), t)
        .unwrap();
    t += Duration::from_millis(20);
    sw.advance(t);

    // The server comes back; re-adding redeems the pre-failure version.
    sw.request_update(vip, PoolUpdate::Add(failed), t).unwrap();
    t += Duration::from_millis(20);
    sw.advance(t);

    let (allocs, reuses, _, live) = sw.version_counters(vip).unwrap();
    println!("DIP failure + recovery: {allocs} versions allocated, {reuses} reused, {live} live");

    let mut moved = 0;
    for (c, b) in conns.iter().zip(&before) {
        let after = sw
            .process_packet(&PacketMeta::data(*c, 800), t)
            .dip
            .unwrap();
        if after != *b {
            moved += 1;
        }
    }
    let to_failed = before.iter().filter(|d| **d == failed).count();
    println!(
        "connections moved: {moved} of {} (only the {to_failed} that were on the failed DIP may move)",
        conns.len()
    );
    assert!(moved <= to_failed);

    // --- Part 2: SilkRoad switch failure. --------------------------------
    // A switch dies holding 1M connections, 5% of them on old pool
    // versions (an update was recently in flight).
    let report = switch_failure_impact(
        &[
            (PoolVersion(7), 950_000),
            (PoolVersion(6), 40_000),
            (PoolVersion(5), 10_000),
        ],
        PoolVersion(7),
    );
    println!(
        "\nswitch failure: {} connections re-sprayed, {} keep PCC (latest version), {} at risk ({:.1}%)",
        report.affected,
        report.preserved,
        report.at_risk,
        100.0 * report.at_risk_fraction()
    );

    // The re-spray spreads flows evenly over the survivors.
    let survivors = 7;
    let mut counts = vec![0u32; survivors];
    for c in &conns {
        counts[respray_switch(c, survivors, 9).unwrap()] += 1;
    }
    println!("re-spray across {survivors} survivors: {counts:?}");
    let max = *counts.iter().max().unwrap() as f64;
    let min = *counts.iter().min().unwrap() as f64;
    assert!(max / min < 1.5, "re-spray too skewed");

    // --- Part 3: the same failure, live, on a fabric of switches. --------
    let topo = Topology::clos(4, 2, 2, 50 << 20, 6400.0);
    let mut fabric = SilkRoadFabric::new(&topo, &SilkRoadConfig::small_test());
    fabric
        .assign_vip(
            vip,
            (1..=8).map(|i| Dip(Addr::v4(10, 0, 0, i, 20))).collect(),
            Layer::ToR,
        )
        .unwrap();
    let mut t = Nanos::ZERO;
    let mut placed: HashMap<u32, _> = HashMap::new();
    for i in 0..1000u32 {
        let c = FiveTuple::tcp(Addr::v4_indexed(2, i, 40_000), vip.0);
        let (id, d) = fabric.process_packet(&PacketMeta::syn(c), t).unwrap();
        placed.insert(i, (c, id, d.dip.unwrap()));
        t += Duration::from_micros(20);
    }
    t += Duration::from_millis(50);
    fabric.advance(t);
    let victim = placed[&0].1;
    fabric.fail_switch(victim);
    let (mut kept, mut on_victim) = (0u32, 0u32);
    for (c, id, dip) in placed.values() {
        let (_, d) = fabric
            .process_packet(&PacketMeta::data(*c, 800), t)
            .unwrap();
        if *id == victim {
            on_victim += 1;
        }
        if d.dip == Some(*dip) {
            kept += 1;
        }
    }
    println!(
        "\nlive fabric: killed {victim}; {on_victim} flows re-sprayed, {kept}/1000 kept their DIP"
    );
    assert_eq!(
        kept, 1000,
        "latest-version flows must survive a switch failure"
    );
}
