//! A rolling service upgrade — the paper's dominant update source (82.7 %
//! of DIP changes) — comparing SilkRoad against Duet.
//!
//! The service upgrades its 8 DIPs two at a time; each batch is down for a
//! while and comes back. SilkRoad's version reuse means the whole upgrade
//! consumes a couple of pool versions, and no established connection to a
//! surviving DIP ever moves. Duet-1min redirects the VIP to SLBs and breaks
//! connections at every migrate-back.
//!
//! ```text
//! cargo run --release --example rolling_upgrade
//! ```

use silkroad::SilkRoadConfig;
use sr_baselines::{DuetConfig, MigrationPolicy};
use sr_sim::adapters::{DuetAdapter, SilkRoadAdapter};
use sr_sim::{Harness, HarnessConfig, LoadBalancer};
use sr_types::{AddrFamily, Duration};
use sr_workload::TraceConfig;

fn trace() -> TraceConfig {
    TraceConfig {
        vips: 4,
        dips_per_vip: 8,
        new_conns_per_min: 12_000.0,
        median_flow_secs: 30.0,
        flow_sigma: 1.0,
        median_rate_bps: 100_000.0,
        rate_sigma: 0.5,
        median_pkt_bytes: 800.0,
        pkt_sigma: 0.35,
        // A rolling reboot generates a steady stream of remove/add pairs.
        updates_per_min: 12.0,
        shared_dip_upgrades: false,
        duration: Duration::from_mins(5),
        family: AddrFamily::V4,
        seed: 0x011ed,
    }
}

fn main() {
    println!("rolling upgrade: 4 VIPs x 8 DIPs, 12 updates/min, 5 minutes\n");

    let mut silkroad = SilkRoadAdapter::new(SilkRoadConfig {
        conn_capacity: 100_000,
        ..SilkRoadConfig::default()
    });
    let m = Harness::new(trace(), HarnessConfig::default()).run(&mut silkroad);
    println!("SilkRoad:   {m}");
    let sw = silkroad.switch();
    let (allocs, reuses, changes, live) = sw
        .version_counters(sr_workload::trace::vip_addr(AddrFamily::V4, 0))
        .unwrap();
    println!(
        "  vip0 versions: {changes} pool changes -> {allocs} allocated, {reuses} reused, {live} live"
    );

    let mut duet = DuetAdapter::new(DuetConfig {
        policy: MigrationPolicy::Periodic(Duration::from_mins(1)),
        seed: 7,
    });
    let md = Harness::new(trace(), HarnessConfig::default()).run(&mut duet);
    println!("Duet-1min:  {md}");

    let mut duet10 = DuetAdapter::new(DuetConfig {
        policy: MigrationPolicy::Periodic(Duration::from_mins(10)),
        seed: 7,
    });
    let md10 = Harness::new(trace(), HarnessConfig::default()).run(&mut duet10);
    println!("Duet-10min: {md10}");

    println!(
        "\nbroken connections: SilkRoad {} vs Duet-1min {} vs Duet-10min {}",
        m.pcc_violations, md.pcc_violations, md10.pcc_violations
    );
    println!(
        "SLB traffic:        SilkRoad {:.1}% vs Duet-1min {:.1}% vs Duet-10min {:.1}%",
        100.0 * m.software_traffic_fraction(),
        100.0 * md.software_traffic_fraction(),
        100.0 * md10.software_traffic_fraction()
    );
    assert_eq!(m.pcc_violations, 0, "SilkRoad must keep PCC");

    // Use the trait to show both systems behind the common interface.
    let names = [silkroad.name(), duet.name()];
    println!("\nsystems compared: {names:?}");
}
