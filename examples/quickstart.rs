//! Quickstart: one SilkRoad switch, one VIP, per-connection consistency
//! across a DIP-pool update.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use silkroad::{PoolUpdate, SilkRoadConfig, SilkRoadSwitch};
use sr_types::{Addr, Dip, Duration, FiveTuple, Nanos, PacketMeta, Vip};

fn main() {
    // A switch with the paper's parameters: 16-bit digests, 6-bit
    // versions, 256-byte TransitTable, 200K insertions/s switch CPU.
    let mut sw = SilkRoadSwitch::new(SilkRoadConfig::default());

    // Register a service: VIP 20.0.0.1:80 backed by three DIPs.
    let vip = Vip(Addr::v4(20, 0, 0, 1, 80));
    let dips: Vec<Dip> = (1..=3).map(|i| Dip(Addr::v4(10, 0, 0, i, 20))).collect();
    sw.add_vip(vip, dips.clone()).unwrap();
    println!("VIP {} -> {:?}", vip, dips);

    // Ten clients connect.
    let conns: Vec<FiveTuple> = (0..10)
        .map(|i| FiveTuple::tcp(Addr::v4(1, 2, 3, 4, 40_000 + i), vip.0))
        .collect();
    let mut t = Nanos::ZERO;
    let mut assigned = Vec::new();
    for c in &conns {
        let d = sw.process_packet(&PacketMeta::syn(*c), t);
        println!("  {} -> {}", c, d.dip.unwrap());
        assigned.push(d.dip.unwrap());
        t += Duration::from_micros(50);
    }

    // Let the switch CPU install the ConnTable entries.
    t += Duration::from_millis(10);
    sw.advance(t);
    println!(
        "installed {} connections ({} learns)",
        sw.conn_count(),
        sw.stats().learns
    );

    // Operators add a DIP (scale-out) and remove another (upgrade reboot).
    sw.request_update(vip, PoolUpdate::Add(Dip(Addr::v4(10, 0, 0, 4, 20))), t)
        .unwrap();
    sw.request_update(vip, PoolUpdate::Remove(Dip(Addr::v4(10, 0, 0, 2, 20))), t)
        .unwrap();
    t += Duration::from_millis(50);
    sw.advance(t);
    println!("after updates: pool = {:?}", sw.current_dips(vip).unwrap());

    // Per-connection consistency: every established connection still maps
    // to the DIP it started on — even the ones on the removed DIP (their
    // server is gone, but the mapping never flapped to a *different live*
    // server mid-stream).
    let mut consistent = 0;
    for (c, before) in conns.iter().zip(&assigned) {
        let after = sw
            .process_packet(&PacketMeta::data(*c, 1460), t)
            .dip
            .unwrap();
        if after == *before {
            consistent += 1;
        }
    }
    println!(
        "PCC check: {consistent}/{} connections unmoved",
        conns.len()
    );

    // New connections only ever see the new pool.
    let fresh = FiveTuple::tcp(Addr::v4(5, 6, 7, 8, 50_000), vip.0);
    let d = sw.process_packet(&PacketMeta::syn(fresh), t).dip.unwrap();
    println!("new connection -> {d} (never the removed DIP)");
    assert_ne!(d, Dip(Addr::v4(10, 0, 0, 2, 20)));

    println!("\nswitch statistics:\n{}", sw.stats());
    let m = sw.memory();
    println!(
        "SRAM: conn-table {}B, pools {}B, transit {}B",
        m.conn_table, m.dip_pool_table, m.transit
    );
}
