//! Hybrid deployment (§7 "Combine with SLB solutions"): SilkRoad carries
//! the volume-heavy VIPs, an SLB tier the connection-heavy ones — with no
//! VIP migration during updates, both sides keep PCC.
//!
//! ```text
//! cargo run --release --example hybrid
//! ```

use silkroad::SilkRoadConfig;
use sr_baselines::SlbConfig;
use sr_sim::{Harness, HarnessConfig, HybridAdapter, LoadBalancer};
use sr_types::{AddrFamily, Duration, Vip};
use sr_workload::trace::vip_addr;
use sr_workload::TraceConfig;
use std::collections::HashSet;

fn main() {
    let trace = TraceConfig {
        vips: 10,
        dips_per_vip: 10,
        new_conns_per_min: 9_000.0,
        median_flow_secs: 20.0,
        flow_sigma: 1.0,
        median_rate_bps: 150_000.0,
        rate_sigma: 0.5,
        median_pkt_bytes: 800.0,
        pkt_sigma: 0.35,
        updates_per_min: 20.0,
        shared_dip_upgrades: false,
        duration: Duration::from_mins(6),
        family: AddrFamily::V4,
        seed: 0x4b1d,
    };

    // Operator policy: VIPs 7..9 are connection-count monsters that would
    // blow the ConnTable budget — serve them from SLBs.
    let slb_vips: HashSet<Vip> = (7..10).map(|i| vip_addr(trace.family, i)).collect();
    println!(
        "hybrid: {} VIPs on the switch, {} on the SLB tier, {} upd/min\n",
        trace.vips - slb_vips.len() as u32,
        slb_vips.len(),
        trace.updates_per_min
    );

    let cfg = SilkRoadConfig {
        conn_capacity: 50_000,
        ..Default::default()
    };
    let mut lb = HybridAdapter::new(cfg, SlbConfig::default(), slb_vips.clone());
    let m = Harness::new(trace, HarnessConfig::default()).run(&mut lb);

    println!("run:  {m}");
    println!(
        "software traffic share: {:.1}% (≈ the SLB-side VIPs' share of volume)",
        100.0 * m.software_traffic_fraction()
    );
    let sw = lb.switch();
    println!(
        "switch handled {} connections in ConnTable ({} installs), {} updates",
        sw.conn_count(),
        sw.stats().installs,
        sw.stats().updates_completed
    );
    assert_eq!(m.pcc_violations, 0, "hybrid must keep PCC on both sides");
    // Roughly 3/10 of volume should have gone through software.
    assert!(
        (0.1..0.6).contains(&m.software_traffic_fraction()),
        "unexpected split: {m}"
    );
    println!("\nPCC intact on both sides ({} adapter)", lb.name());
}
