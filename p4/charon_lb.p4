// charon_lb.p4 — an alternate reference program for the sr-p4 front-end:
// a Charon-style load-aware L4 balancer (PAPERS.md) in the same P4_16
// subset. Unlike silkroad.p4 it has no hand-built twin; the gate is that
// it parses, passes semantic analysis clean, and lowers to a layout
// srcheck places on a Tofino-class chip.
//
// Shape: a digest-compressed connection cache pins established flows; on
// a miss the bucket table proposes a primary server plus a load threshold,
// a per-bucket load register is read transactionally, and if the primary
// is saturated a spill table redirects the flow. The final server table
// rewrites the packet.

#include <core.p4>

header eth_h {
    bit<48> dst_addr;
    bit<48> src_addr;
    bit<16> ether_type;
}

header ipv4_h {
    bit<8>  version_ihl;
    bit<8>  tos;
    bit<16> total_len;
    bit<16> identification;
    bit<16> flags_frag;
    bit<8>  ttl;
    bit<8>  protocol;
    bit<16> checksum;
    bit<32> src_addr;
    bit<32> dst_addr;
}

header l4_h {
    bit<16> src_port;
    bit<16> dst_port;
}

struct headers_t {
    eth_h  eth;
    ipv4_h ipv4;
    l4_h   l4;
}

struct metadata_t {
    bit<16> digest;
    bit<8>  bucket;
    bit<8>  server;
    bit<8>  load;
    bit<8>  threshold;
    bit<1>  cache_hit;
    bit<7>  pad;
}

parser charon_parser(packet_in pkt, out headers_t hdr, inout metadata_t meta) {
    state start {
        pkt.extract(hdr.eth);
        transition select(hdr.eth.ether_type) {
            16w0x0800 : parse_ipv4;
            default   : accept;
        };
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            8w6     : parse_l4;
            8w17    : parse_l4;
            default : accept;
        };
    }
    state parse_l4 {
        pkt.extract(hdr.l4);
        transition accept;
    }
}

control charon(inout headers_t hdr, inout metadata_t meta) {
    action set_server(bit<8> srv) {
        meta.server    = srv;
        meta.cache_hit = 1w1;
    }
    action cache_miss() {
        meta.cache_hit = 1w0;
    }

    action pick_primary(bit<8> srv, bit<8> limit) {
        meta.server    = srv;
        meta.threshold = limit;
    }
    action pick_spill(bit<8> srv) {
        meta.server = srv;
    }
    action drop_flow() {
        meta.threshold = 8w0;
    }

    action forward(bit<32> daddr, bit<16> dport) {
        hdr.ipv4.dst_addr = daddr;
        hdr.l4.dst_port   = dport;
        hdr.ipv4.ttl      = 8w64;
    }

    @pragma stage 0 2
    @pragma digest meta.digest
    table ConnCache {
        key = {
            hdr.ipv4.src_addr : exact;
            hdr.ipv4.dst_addr : exact;
            hdr.ipv4.protocol : exact;
            hdr.l4.src_port   : exact;
            hdr.l4.dst_port   : exact;
        }
        actions = { set_server; cache_miss; }
        size = 262144;
        default_action = cache_miss();
    }

    @pragma stage 2
    table BucketTable {
        key = { meta.bucket : exact; }
        actions = { pick_primary; drop_flow; }
        size = 256;
        default_action = drop_flow();
    }

    @pragma stage 4
    table SpillTable {
        key = { meta.bucket : exact; }
        actions = { pick_spill; drop_flow; }
        size = 256;
        default_action = drop_flow();
    }

    @pragma stage 5
    @pragma selector_hash 32
    table ServerTable {
        key = { meta.server : exact; }
        actions = { forward; drop_flow; }
        size = 256;
        default_action = drop_flow();
    }

    // Per-bucket connection-count estimate, bumped-and-read in one cycle.
    @pragma stage 3
    @pragma transactional
    register<bit<8>>(256) LoadTable;

    apply {
        if (ConnCache.apply().miss) {
            BucketTable.apply();
            meta.load = LoadTable.execute(meta.bucket);
            if (meta.load == meta.threshold) {
                SpillTable.apply();
            }
        }
        ServerTable.apply();
    }
}
