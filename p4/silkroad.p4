// silkroad.p4 — the paper's ~400-line SilkRoad addition (§5.1), written in
// the P4_16 subset sr-p4 compiles. Lowering this file must produce a
// PipelineProgram resource-for-resource identical to the hand-built
// reference PipelineProgram::silkroad(1_000_000, 4, 16, 6, 1_000, 4_000,
// 144, 256, 4); `repro check` and crates/p4/tests/parity.rs gate that.
//
// Resource derivations (DESIGN.md §14.3):
//   ConnTable     key = IPv4 5-tuple (32+32+8+16+16 = 104 bits), digest
//                 compression stores meta.digest (16 bits); action data is
//                 the 6-bit DIP-pool version; 1M entries over stages 0-3.
//   TransitTable  2048-cell 1-bit bloom filter, 4 hash ways -> 8 stateful
//                 ALUs and 4 x ceil(log2 2048) = 44 index-hash bits; the
//                 one-cycle read-check-modify-write path (§4.3) pins it to
//                 a single stage (stage 4).
//   VIPTable      VIP = v6 address + port + proto (128+16+8 = 152 bits);
//                 action carries old+new version (12 bits); stage 5.
//   DIPPoolTable  key = pool row + version (32+6 = 38 bits); action data is
//                 a full DIP rewrite (128+16 = 144 bits); the in-pool DIP
//                 selection hash adds 64 selector bits; stage 6.
//   LearnTable    keyed by the 16-bit digest; stage 7.

#include <core.p4>

header eth_h {
    bit<48> dst_addr;
    bit<48> src_addr;
    bit<16> ether_type;
}

header ipv4_h {
    bit<8>  version_ihl;
    bit<8>  tos;
    bit<16> total_len;
    bit<16> identification;
    bit<16> flags_frag;
    bit<8>  ttl;
    bit<8>  protocol;
    bit<16> checksum;
    bit<32> src_addr;
    bit<32> dst_addr;
}

header ipv6_h {
    bit<32>  version_class_flow;
    bit<16>  payload_len;
    bit<8>   next_hdr;
    bit<8>   hop_limit;
    bit<128> src_addr;
    bit<128> dst_addr;
}

header l4_h {
    bit<16> src_port;
    bit<16> dst_port;
}

struct headers_t {
    eth_h  eth;
    ipv4_h ipv4;
    ipv6_h ipv6;
    l4_h   l4;
}

// PHV-resident metadata: digest(16) + version(6) + new_version(6) +
// transit(1) + pad(3) = 32 bits, the paper's "all the tables and metadata
// needed" footprint.
struct metadata_t {
    bit<16> digest;
    bit<6>  version;
    bit<6>  new_version;
    bit<1>  transit;
    bit<3>  pad;
}

parser silkroad_parser(packet_in pkt, out headers_t hdr, inout metadata_t meta) {
    state start {
        pkt.extract(hdr.eth);
        transition select(hdr.eth.ether_type) {
            16w0x0800 : parse_ipv4;
            16w0x86dd : parse_ipv6;
            default   : accept;
        };
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            8w6     : parse_l4;
            8w17    : parse_l4;
            default : accept;
        };
    }
    state parse_ipv6 {
        pkt.extract(hdr.ipv6);
        transition select(hdr.ipv6.next_hdr) {
            8w6     : parse_l4;
            8w17    : parse_l4;
            default : accept;
        };
    }
    state parse_l4 {
        pkt.extract(hdr.l4);
        transition accept;
    }
}

control silkroad(inout headers_t hdr, inout metadata_t meta) {
    // ConnTable hit: the connection is pinned to the pool version it
    // arrived under.
    action set_version(bit<6> v) {
        meta.version = v;
        meta.transit = 1w0;
    }
    action conn_miss() {
        meta.transit     = 1w1;
        meta.new_version = 6w0;
    }

    // VIPTable: current and next DIP-pool version for this VIP.
    action set_versions(bit<6> cur, bit<6> next) {
        meta.version     = cur;
        meta.new_version = next;
    }
    action vip_miss() {
        meta.new_version = 6w0;
    }

    // DIPPoolTable: rewrite toward the selected DIP.
    action set_dip(bit<128> dip, bit<16> port) {
        hdr.ipv6.dst_addr  = dip;
        hdr.l4.dst_port    = port;
        hdr.ipv4.ttl       = 8w64;
        hdr.ipv6.hop_limit = 8w64;
        hdr.eth.ether_type = 16w0x0800;
    }
    action pool_miss() {
        meta.pad = 3w0;
    }

    // LearnTable: pending-insert digests awaiting the switch CPU.
    action learn(bit<8> flags) {
        hdr.ipv4.tos = flags;
        meta.transit = 1w0;
        meta.pad     = 3w0;
    }
    action no_learn() {
        meta.pad = 3w0;
    }

    @pragma stage 0 4
    @pragma digest meta.digest
    table ConnTable {
        key = {
            hdr.ipv4.src_addr : exact;
            hdr.ipv4.dst_addr : exact;
            hdr.ipv4.protocol : exact;
            hdr.l4.src_port   : exact;
            hdr.l4.dst_port   : exact;
        }
        actions = { set_version; conn_miss; }
        size = 1000000;
        default_action = conn_miss();
    }

    @pragma stage 5
    table VIPTable {
        key = {
            hdr.ipv6.dst_addr : exact;
            hdr.l4.dst_port   : exact;
            hdr.ipv6.next_hdr : exact;
        }
        actions = { set_versions; vip_miss; }
        size = 1000;
        default_action = vip_miss();
    }

    @pragma stage 6
    @pragma selector_hash 64
    table DIPPoolTable {
        key = {
            hdr.ipv4.dst_addr : exact;
            meta.version      : exact;
        }
        actions = { set_dip; pool_miss; }
        size = 4000;
        default_action = pool_miss();
    }

    @pragma stage 7
    table LearnTable {
        key = { meta.digest : exact; }
        actions = { learn; no_learn; }
        size = 4096;
        default_action = no_learn();
    }

    // The bloom-filter membership register: "is this connection in
    // transit across a pool-version update?" (§4.3).
    @pragma stage 4
    @pragma transactional
    @pragma hash_ways 4
    register<bit<1>>(2048) TransitTable;

    apply {
        // The paper's miss path: ConnTable lookup -> TransitTable
        // membership verdict -> VIPTable version read -> DIPPoolTable
        // resolution. Hit path short-circuits straight to the pool.
        if (ConnTable.apply().miss) {
            meta.transit = TransitTable.execute(meta.digest);
            if (meta.transit == 1w0) {
                VIPTable.apply();
            }
        }
        DIPPoolTable.apply();
        LearnTable.apply();
    }
}
