//! Umbrella crate for the SilkRoad reproduction workspace.
//!
//! Hosts the runnable examples (`examples/`) and the cross-crate integration
//! tests (`tests/`). Downstream users depend on the individual crates; this
//! crate just re-exports them under one roof for convenience.

#![forbid(unsafe_code)]

pub use silkroad;
pub use sr_asic;
pub use sr_baselines;
pub use sr_hash;
pub use sr_netwide;
pub use sr_p4;
pub use sr_sim;
pub use sr_types;
pub use sr_workload;
