//! Fleet-scale steady-state engine — millions of live connections
//! across the paper's ~100-cluster fleet, cheap enough to run in CI.
//!
//! The per-figure simulations in [`crate::harness`] replay one cluster's
//! trace with rich per-connection probing. This engine answers a
//! different question — the paper's §3.1 fleet view: can the repo *hold*
//! the whole fleet's steady state at once (millions of live connections,
//! continuous DIP-pool churn, a mid-run update storm) without violating
//! per-connection consistency and without paying hashmap-sized memory
//! per connection? Three design moves make it cheap:
//!
//! * **Compact state.** Live flows sit in an [`sr_workload::FlowStore`]
//!   (20 B/flow) with expiry driven by a [`crate::wheel::TimerWheel`]
//!   (12 B/flow). Everything else about a flow is regenerated from
//!   `(seed, seq)` via [`sr_workload::flow_attrs`] — which is also how
//!   the close path *checks* PCC: it re-derives the flow's DIP choice
//!   against the pool version stamped at open time and compares.
//! * **Versioned pools.** Each VIP keeps immutable per-version DIP
//!   bitmasks with reference counts — SilkRoad's version-reuse scheme in
//!   miniature (≤ 256 live versions per VIP; an update that finds no
//!   free version is counted and skipped, never applied in place).
//! * **Sharded lockstep.** Clusters are independent shards, distributed
//!   round-robin over resident workers. A scripted [`sr_exec::EpochLog`]
//!   broadcasts epoch advances and storm toggles; every worker adopts
//!   ops in publication order at epoch boundaries, so per-cluster event
//!   sequences — and therefore the commutative fleet digest — are
//!   bit-identical for any worker count.
//!
//! Closes fire in wheel-tick batches at epoch boundaries rather than
//! interleaved with same-epoch arrivals — the batch-boundary adoption
//! analog of the packet engine, and a ≤ one-epoch timing coarsening that
//! never affects PCC (version masks are immutable once created).

use crate::wheel::TimerWheel;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sr_exec::EpochLog;
use sr_workload::dists::exponential;
use sr_workload::{
    flow_attrs, prewarm_close_ns, synthesize_fleet, ClusterSpec, FleetConfig, FlowGen, FlowRecord,
    FlowStore, StreamConfig,
};

/// Log-space sd of flow durations fleet-wide (the workload crate's
/// calibration for paper-shaped heavy tails).
const FLOW_SIGMA: f64 = 0.8;
/// Live pool versions per VIP (the version field is stored in 8 bits).
const MAX_VERSIONS: usize = 256;

/// Fleet-engine parameters.
#[derive(Clone, Copy, Debug)]
pub struct FleetParams {
    /// Fleet synthesis (cluster counts + synthesis seed).
    pub fleet: FleetConfig,
    /// Simulation seed for flow streams and update schedules (distinct
    /// from the synthesis seed so the same fleet can be re-run).
    pub seed: u64,
    /// Fleet-wide live-connection target at steady state.
    pub target_conns: u64,
    /// Simulated duration, seconds.
    pub sim_secs: u64,
    /// Control epoch, milliseconds (arrival/close batching granularity).
    pub epoch_ms: u64,
    /// Multiplier on every cluster's DIP-update rate during the storm
    /// window (middle third of the run).
    pub storm_factor: f64,
    /// Resident workers sharding the clusters (1 = inline, no threads).
    pub workers: usize,
}

/// One scripted control op, broadcast through the [`EpochLog`].
#[derive(Clone, Copy, Debug)]
pub enum FleetOp {
    /// Advance every shard to this absolute time (one epoch boundary).
    Advance {
        /// Epoch-end timestamp, ns.
        to_ns: u64,
    },
    /// Rescale every cluster's DIP-update rate (storm on/off).
    SetUpdateFactor {
        /// New multiplier on the base update rate.
        factor: f64,
    },
}

/// What the fleet run measured.
#[derive(Clone, Debug)]
pub struct FleetReport {
    /// Clusters simulated.
    pub clusters: u32,
    /// Worker threads used.
    pub workers: usize,
    /// Control epochs executed.
    pub epochs: u64,
    /// Median of the per-epoch fleet-wide live-connection samples.
    pub held_median: u64,
    /// Peak fleet-wide live connections over all epochs.
    pub held_peak: u64,
    /// Live connections at the end of the run.
    pub held_final: u64,
    /// Flows opened during the run (excludes the prewarm population).
    pub opens: u64,
    /// Flows closed during the run.
    pub closes: u64,
    /// New-connection absorption rate, opens / sim seconds.
    pub opens_per_sec: f64,
    /// PCC violations (a closed flow whose re-derived DIP choice differs
    /// from the one stamped at open). Must be 0.
    pub pcc_violations: u64,
    /// DIP-pool updates applied (new version allocated).
    pub updates_applied: u64,
    /// Updates skipped for want of a free version slot (version-reuse
    /// pressure) or because they would empty a pool.
    pub updates_skipped: u64,
    /// Bytes held by per-connection state (flow stores + timer wheels).
    pub state_bytes: u64,
    /// `state_bytes / held_peak` — the paper-facing economy figure.
    pub bytes_per_conn: f64,
    /// Bytes held by per-VIP control state (version masks + refcounts);
    /// scales with VIPs × versions, not with connections.
    pub control_bytes: u64,
    /// Commutative digest over every open/close event; identical for
    /// any worker count.
    pub digest: u64,
    /// Per-cluster peak live connections, indexed like the synthesized
    /// fleet (feeds the network-wide SRAM-fit plan).
    pub per_cluster_peak: Vec<u64>,
}

/// One VIP's versioned DIP pool: immutable per-version membership masks
/// plus reference counts from live flows.
#[derive(Clone, Debug)]
struct VipState {
    /// Current version slot (new opens stamp this).
    cur: u8,
    /// Per-version DIP membership (bit i = DIP i in the pool).
    masks: Vec<u128>,
    /// Live flows stamped with each version.
    refs: Vec<u32>,
    /// Version slots free for reuse.
    free: Vec<u8>,
}

/// Index of the `k`-th set bit of `mask` (k < popcount).
fn kth_set_bit(mask: u128, k: u32) -> u8 {
    let mut m = mask;
    let mut i = 0;
    while i < k {
        m &= m.wrapping_sub(1);
        i += 1;
    }
    m.trailing_zeros() as u8
}

/// Commutative event hash: the fleet digest is the wrapping sum of
/// these over all open (`kind` 0) and close (`kind` 1) events, so it is
/// independent of cluster-to-worker assignment.
fn event_hash(cluster: u32, seq: u64, vip: u16, dip: u8, version: u8, kind: u8) -> u64 {
    let mut x = u64::from(cluster)
        ^ seq.rotate_left(17)
        ^ (u64::from(vip) << 40)
        ^ (u64::from(dip) << 32)
        ^ (u64::from(version) << 24)
        ^ (u64::from(kind) << 16);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Splitmix-style per-cluster seed derivation.
fn mix_seed(seed: u64, salt: u64, idx: u64) -> u64 {
    let mut x = seed ^ salt ^ idx.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^ (x >> 31)
}

/// One cluster's complete simulation state.
struct ClusterShard {
    /// Cluster index in the synthesized fleet.
    id: u32,
    scfg: StreamConfig,
    gen: FlowGen,
    store: FlowStore,
    wheel: TimerWheel,
    vips: Vec<VipState>,
    dips_per_vip: u32,
    upd_rng: SmallRng,
    upd_rate_per_sec: f64,
    upd_factor: f64,
    next_upd_ns: u64,
    now_ns: u64,
    opens: u64,
    closes: u64,
    pcc_violations: u64,
    upd_applied: u64,
    upd_skipped: u64,
    digest: u64,
    live_samples: Vec<u64>,
    peak_live: u64,
}

impl ClusterShard {
    /// Build one shard: versioned VIP pools plus a prewarmed live
    /// population of `target` flows with equilibrium residual lifetimes.
    fn new(idx: u32, spec: &ClusterSpec, sim_seed: u64, target: u64, epochs: u64) -> ClusterShard {
        let mean_dur = spec.median_flow_secs * (FLOW_SIGMA * FLOW_SIGMA / 2.0).exp();
        let scfg = StreamConfig {
            seed: mix_seed(sim_seed, 0x0f1e_e75e_ed00, u64::from(idx)),
            vips: spec.vips.min(u32::from(u16::MAX)) as u16,
            arrivals_per_sec: target as f64 / mean_dur.max(1e-9),
            median_flow_secs: spec.median_flow_secs,
            flow_sigma: FLOW_SIGMA,
        };
        let dips = spec.dips_per_vip.clamp(1, 120);
        let initial_mask: u128 = (1u128 << dips) - 1;
        let mut vips = Vec::with_capacity(scfg.vips as usize);
        for _ in 0..scfg.vips {
            vips.push(VipState {
                cur: 0,
                masks: vec![initial_mask],
                refs: vec![0],
                free: Vec::new(),
            });
        }
        let cap = (target + target / 8 + 64) as usize;
        let mut upd_rng =
            SmallRng::seed_from_u64(mix_seed(sim_seed, 0x000d_1b00_757e_ad00, u64::from(idx)));
        let upd_rate_per_sec = (spec.updates_per_min_median / 60.0).max(1e-9);
        let first_gap = exponential(&mut upd_rng, upd_rate_per_sec);
        let mut shard = ClusterShard {
            id: idx,
            scfg,
            gen: FlowGen::new(scfg, target),
            store: FlowStore::with_capacity(cap),
            wheel: TimerWheel::with_capacity(cap),
            vips,
            dips_per_vip: dips,
            upd_rng,
            upd_rate_per_sec,
            upd_factor: 1.0,
            next_upd_ns: (first_gap * 1e9) as u64,
            now_ns: 0,
            opens: 0,
            closes: 0,
            pcc_violations: 0,
            upd_applied: 0,
            upd_skipped: 0,
            digest: 0,
            live_samples: Vec::with_capacity(epochs as usize),
            peak_live: 0,
        };
        for q in 0..target {
            shard.prewarm_one(q);
        }
        shard.peak_live = shard.store.live();
        shard
    }

    /// Insert prewarm flow `q` (already live at t = 0) with a
    /// length-biased residual lifetime.
    fn prewarm_one(&mut self, q: u64) {
        let attrs = flow_attrs(&self.scfg, q);
        let close_ns = prewarm_close_ns(&self.scfg, q);
        let Some(vs) = self.vips.get_mut(usize::from(attrs.vip)) else {
            return;
        };
        let cur = vs.cur;
        let mask = vs.masks.get(usize::from(cur)).copied().unwrap_or(0);
        let dip = kth_set_bit(
            mask,
            (attrs.dip_hash % u64::from(mask.count_ones().max(1))) as u32,
        );
        if let Some(r) = vs.refs.get_mut(usize::from(cur)) {
            *r += 1;
        }
        let slot = self.store.insert(FlowRecord {
            seq: q,
            vip: attrs.vip,
            dip,
            version: cur,
            close_ns,
            flags: 0,
        });
        self.wheel.schedule(slot, close_ns);
    }

    /// Apply one broadcast control op.
    fn apply(&mut self, op: &FleetOp) {
        match *op {
            FleetOp::Advance { to_ns } => self.advance_to(to_ns),
            FleetOp::SetUpdateFactor { factor } => {
                // Rescale the pending gap so the rate change takes effect
                // immediately (deterministically — `now_ns` is an epoch
                // boundary on every worker).
                let old = self.upd_factor.max(1e-12);
                let new = factor.max(1e-12);
                let rem = self.next_upd_ns.saturating_sub(self.now_ns) as f64 * (old / new);
                self.next_upd_ns = self.now_ns.saturating_add(rem as u64);
                self.upd_factor = factor;
            }
        }
    }

    /// Advance one epoch: merge arrivals and updates by timestamp, then
    /// fire the epoch's expiries from the wheel.
    fn advance_to(&mut self, to_ns: u64) {
        // srlint: hot-path begin
        loop {
            let t_arr = self.gen.peek_at().0;
            let t_upd = self.next_upd_ns;
            if t_arr.min(t_upd) > to_ns {
                break;
            }
            if t_arr <= t_upd {
                self.open_flow();
            } else {
                self.apply_update();
            }
        }
        let scfg = self.scfg;
        let id = self.id;
        let ClusterShard {
            wheel,
            store,
            vips,
            closes,
            pcc_violations,
            digest,
            ..
        } = self;
        wheel.advance(to_ns, |slot, _due| {
            let Some(rec) = store.remove(slot) else {
                return;
            };
            let attrs = flow_attrs(&scfg, rec.seq);
            let Some(vs) = vips.get_mut(usize::from(rec.vip)) else {
                return;
            };
            let ver = usize::from(rec.version);
            // PCC check: the mask for the stamped version is immutable
            // and pinned by this flow's reference, so re-deriving the
            // selection must reproduce the stamped DIP.
            let mask = vs.masks.get(ver).copied().unwrap_or(0);
            let expect = kth_set_bit(
                mask,
                (attrs.dip_hash % u64::from(mask.count_ones().max(1))) as u32,
            );
            if attrs.vip != rec.vip || expect != rec.dip {
                *pcc_violations += 1;
            }
            if let Some(r) = vs.refs.get_mut(ver) {
                *r = r.saturating_sub(1);
                if *r == 0 && rec.version != vs.cur {
                    vs.free.push(rec.version);
                }
            }
            *closes += 1;
            *digest =
                digest.wrapping_add(event_hash(id, rec.seq, rec.vip, rec.dip, rec.version, 1));
        });
        // srlint: hot-path end
        self.now_ns = to_ns;
        let live = self.store.live();
        self.peak_live = self.peak_live.max(live);
        self.live_samples.push(live);
    }

    /// Open the next flow from the arrival stream.
    fn open_flow(&mut self) {
        // srlint: hot-path begin
        let open = self.gen.next_open();
        let attrs = flow_attrs(&self.scfg, open.seq);
        let Some(vs) = self.vips.get_mut(usize::from(attrs.vip)) else {
            return;
        };
        let cur = vs.cur;
        let mask = vs.masks.get(usize::from(cur)).copied().unwrap_or(0);
        let dip = kth_set_bit(
            mask,
            (attrs.dip_hash % u64::from(mask.count_ones().max(1))) as u32,
        );
        if let Some(r) = vs.refs.get_mut(usize::from(cur)) {
            *r += 1;
        }
        let close_ns = open.at.0.saturating_add(attrs.duration_ns);
        let slot = self.store.insert(FlowRecord {
            seq: open.seq,
            vip: attrs.vip,
            dip,
            version: cur,
            close_ns,
            flags: 0,
        });
        self.wheel.schedule(slot, close_ns);
        self.opens += 1;
        self.digest = self
            .digest
            .wrapping_add(event_hash(self.id, open.seq, attrs.vip, dip, cur, 0));
        // srlint: hot-path end
    }

    /// Apply one DIP-pool update: toggle a random DIP of a random VIP
    /// into a freshly allocated version. RNG draws happen regardless of
    /// the outcome, so skipped updates keep the schedule deterministic.
    fn apply_update(&mut self) {
        let nvips = self.vips.len() as u32;
        let v = self.upd_rng.gen_range(0..nvips.max(1));
        let bit = self.upd_rng.gen_range(0..self.dips_per_vip.max(1));
        let rate = (self.upd_rate_per_sec * self.upd_factor).max(1e-12);
        let gap = exponential(&mut self.upd_rng, rate);
        self.next_upd_ns = self.next_upd_ns.saturating_add((gap * 1e9) as u64);
        let Some(vs) = self.vips.get_mut(v as usize) else {
            return;
        };
        let mask = vs.masks.get(usize::from(vs.cur)).copied().unwrap_or(0);
        let toggled = mask ^ (1u128 << bit);
        if toggled == 0 {
            // Removing the last DIP would strand the VIP; operators don't.
            self.upd_skipped += 1;
            return;
        }
        let slot = if let Some(s) = vs.free.pop() {
            if let Some(m) = vs.masks.get_mut(usize::from(s)) {
                *m = toggled;
            }
            if let Some(r) = vs.refs.get_mut(usize::from(s)) {
                *r = 0;
            }
            s
        } else if vs.masks.len() < MAX_VERSIONS {
            vs.masks.push(toggled);
            vs.refs.push(0);
            (vs.masks.len() - 1) as u8
        } else {
            // Version space exhausted: SilkRoad would stall the update
            // until old versions drain; we count the pressure and skip.
            self.upd_skipped += 1;
            return;
        };
        let old = vs.cur;
        vs.cur = slot;
        if old != slot && vs.refs.get(usize::from(old)).copied().unwrap_or(1) == 0 {
            vs.free.push(old);
        }
        self.upd_applied += 1;
    }

    /// Bytes of per-connection state (store + wheel).
    fn state_bytes(&self) -> u64 {
        self.store.allocated_bytes() + self.wheel.allocated_bytes()
    }

    /// Bytes of per-VIP control state (masks, refcounts, free lists).
    fn control_bytes(&self) -> u64 {
        self.vips
            .iter()
            .map(|v| {
                (v.masks.capacity() * 16 + v.refs.capacity() * 4 + v.free.capacity() + 8) as u64
            })
            .sum()
    }
}

/// Run the fleet engine to completion and report.
pub fn run_fleet(params: &FleetParams) -> FleetReport {
    let specs = synthesize_fleet(params.fleet);
    let total_weight: u64 = specs.iter().map(|s| s.total_conns_p99()).sum();
    let targets: Vec<u64> = specs
        .iter()
        .map(|s| {
            ((params.target_conns as u128 * u128::from(s.total_conns_p99()))
                / u128::from(total_weight.max(1))) as u64
        })
        .map(|t| t.max(16))
        .collect();
    let epoch_ns = params.epoch_ms.max(1) * 1_000_000;
    let epochs = (params.sim_secs * 1_000) / params.epoch_ms.max(1);
    let storm_on = epochs / 3;
    let storm_off = 2 * epochs / 3;

    // The whole control script is known upfront; publish it and close.
    // Workers adopt in publication order — the lockstep idiom matters
    // because every shard must see the same (advance, storm) interleaving
    // at the same boundaries regardless of which worker owns it.
    let log: EpochLog<FleetOp> = EpochLog::new();
    for e in 1..=epochs {
        if e == storm_on {
            log.publish(FleetOp::SetUpdateFactor {
                factor: params.storm_factor,
            });
        }
        if e == storm_off {
            log.publish(FleetOp::SetUpdateFactor { factor: 1.0 });
        }
        log.publish(FleetOp::Advance {
            to_ns: e * epoch_ns,
        });
    }
    log.close();

    let workers = params.workers.max(1);
    let run_worker = |w: usize| -> Vec<ClusterShard> {
        let mut mine: Vec<ClusterShard> = specs
            .iter()
            .enumerate()
            .filter(|(i, _)| i % workers == w)
            .map(|(i, spec)| {
                ClusterShard::new(
                    i as u32,
                    spec,
                    params.seed,
                    *targets.get(i).unwrap_or(&16),
                    epochs,
                )
            })
            .collect();
        let mut cursor = 0u64;
        let mut buf = Vec::new();
        loop {
            let target = log.wait_beyond(cursor);
            if target == cursor {
                break;
            }
            buf.clear();
            log.copy_range(cursor, target, &mut buf);
            for op in &buf {
                for shard in &mut mine {
                    shard.apply(op);
                }
            }
            cursor = target;
        }
        mine
    };
    let shards: Vec<ClusterShard> = if workers == 1 {
        run_worker(0)
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| s.spawn(move || run_worker(w)))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("fleet worker panicked"))
                .collect()
        })
    };

    let mut held = vec![0u64; epochs as usize];
    let mut per_cluster_peak = vec![0u64; specs.len()];
    let (mut opens, mut closes, mut pcc, mut upd_a, mut upd_s) = (0u64, 0u64, 0u64, 0u64, 0u64);
    let (mut state_bytes, mut control_bytes, mut digest, mut held_final) = (0u64, 0u64, 0u64, 0u64);
    for sh in &shards {
        for (e, v) in sh.live_samples.iter().enumerate() {
            if let Some(h) = held.get_mut(e) {
                *h += v;
            }
        }
        if let Some(p) = per_cluster_peak.get_mut(sh.id as usize) {
            *p = sh.peak_live;
        }
        opens += sh.opens;
        closes += sh.closes;
        pcc += sh.pcc_violations;
        upd_a += sh.upd_applied;
        upd_s += sh.upd_skipped;
        state_bytes += sh.state_bytes();
        control_bytes += sh.control_bytes();
        digest = digest.wrapping_add(sh.digest);
        held_final += sh.store.live();
    }
    let mut sorted = held.clone();
    sorted.sort_unstable();
    let held_median = sorted.get(sorted.len() / 2).copied().unwrap_or(0);
    let held_peak = held.iter().copied().max().unwrap_or(0);
    FleetReport {
        clusters: specs.len() as u32,
        workers,
        epochs,
        held_median,
        held_peak,
        held_final,
        opens,
        closes,
        opens_per_sec: opens as f64 / params.sim_secs.max(1) as f64,
        pcc_violations: pcc,
        updates_applied: upd_a,
        updates_skipped: upd_s,
        state_bytes,
        bytes_per_conn: state_bytes as f64 / held_peak.max(1) as f64,
        control_bytes,
        digest,
        per_cluster_peak,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params(workers: usize) -> FleetParams {
        FleetParams {
            fleet: FleetConfig {
                pops: 2,
                frontends: 1,
                backends: 2,
                seed: 0xf1ee7,
            },
            seed: 42,
            target_conns: 20_000,
            sim_secs: 5,
            epoch_ms: 250,
            storm_factor: 10.0,
            workers,
        }
    }

    #[test]
    fn holds_target_with_zero_pcc_violations() {
        let r = run_fleet(&small_params(1));
        assert_eq!(r.pcc_violations, 0);
        assert_eq!(r.clusters, 5);
        assert_eq!(r.epochs, 20);
        assert!(r.opens > 0, "no arrivals absorbed");
        assert!(r.closes > 0, "no expiries fired");
        let target = 20_000.0;
        let ratio = r.held_median as f64 / target;
        assert!(
            (0.75..=1.25).contains(&ratio),
            "held_median {} vs target {target}",
            r.held_median
        );
        // 20 B/flow store + 12 B/flow wheel + slack must stay under the
        // paper-facing 64 B/conn budget.
        assert!(r.bytes_per_conn <= 64.0, "bytes/conn {}", r.bytes_per_conn);
        assert!(r.updates_applied > 0, "no pool churn simulated");
    }

    #[test]
    fn digest_and_counters_invariant_across_worker_counts() {
        let a = run_fleet(&small_params(1));
        let b = run_fleet(&small_params(3));
        assert_eq!(a.digest, b.digest, "event stream diverged across shardings");
        assert_eq!(a.opens, b.opens);
        assert_eq!(a.closes, b.closes);
        assert_eq!(a.held_median, b.held_median);
        assert_eq!(a.held_peak, b.held_peak);
        assert_eq!(a.updates_applied, b.updates_applied);
        assert_eq!(a.updates_skipped, b.updates_skipped);
        assert_eq!(a.per_cluster_peak, b.per_cluster_peak);
        assert_eq!(b.workers, 3);
    }

    #[test]
    fn version_exhaustion_is_counted_not_violating() {
        // One VIP, flows far longer than the run (their version refs
        // never drop), and updates arriving about as fast as opens: every
        // version that picks up a reference is pinned forever, so the
        // 256-slot version space must run dry — and the engine must skip,
        // count, and stay PCC-clean.
        let spec = ClusterSpec {
            id: sr_types::ClusterId(0),
            kind: sr_workload::ClusterKind::Backend,
            family: sr_types::AddrFamily::V6,
            tors: 1,
            vips: 1,
            dips_per_vip: 8,
            conns_per_tor_median: 300_000,
            conns_per_tor_p99: 300_000,
            new_conns_per_vip_min: 1_000,
            updates_per_min_median: 9_000.0,
            updates_per_min_p99: 9_000.0,
            peak_gbps: 1.0,
            peak_pps: 1.0,
            median_flow_secs: 3_000.0,
            live_versions_per_vip: 4,
        };
        let mut sh = ClusterShard::new(0, &spec, 7, 300_000, 40);
        for e in 1..=40u64 {
            sh.apply(&FleetOp::Advance {
                to_ns: e * 250_000_000,
            });
        }
        assert!(sh.upd_skipped > 0, "storm never exhausted version space");
        assert!(sh.upd_applied > 0);
        assert_eq!(sh.pcc_violations, 0);
    }
}
