//! [`LoadBalancer`] adapters for every system under test.

use crate::lb::{LoadBalancer, PacketVerdict, ASIC_LATENCY};
use silkroad::{DataPath, PoolUpdate, SilkRoadConfig, SilkRoadSwitch};
use sr_baselines::{DuetConfig, DuetLb, EcmpLb, MigrationPolicy, SlbConfig, SoftwareLb};
use sr_hash::HashFn;
use sr_types::{Dip, Duration, FiveTuple, Nanos, PacketMeta, Vip};
use std::collections::{HashMap, HashSet};

// The parallel experiment driver (sr-bench's `Exec`) fans scenarios across
// worker threads, so every adapter — and thus every wrapped system — must
// stay `Send`. Assert it at compile time so a stray `Rc`/`RefCell` in a
// balancer is caught here, not in a cryptic spawn error two crates away.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<SilkRoadAdapter>();
    assert_send::<DuetAdapter>();
    assert_send::<SlbAdapter>();
    assert_send::<EcmpAdapter>();
    assert_send::<HybridAdapter>();
};

/// Per-packet software (SLB server) processing latency: the paper's
/// 50 µs – 1 ms batching range, drawn deterministically per packet.
fn slb_latency(key: &[u8], salt: u64) -> Duration {
    let h = HashFn::new(0x1a7e).hash_u64(HashFn::new(salt).hash(key));
    Duration::from_micros(50 + h % 950)
}

// ---------------------------------------------------------------- SilkRoad

/// SilkRoad behind the harness interface.
pub struct SilkRoadAdapter {
    switch: SilkRoadSwitch,
}

impl SilkRoadAdapter {
    /// Wrap a fresh switch.
    pub fn new(cfg: SilkRoadConfig) -> SilkRoadAdapter {
        SilkRoadAdapter {
            switch: SilkRoadSwitch::new(cfg),
        }
    }

    /// The wrapped switch (stats access).
    pub fn switch(&self) -> &SilkRoadSwitch {
        &self.switch
    }
}

impl LoadBalancer for SilkRoadAdapter {
    fn name(&self) -> &'static str {
        if self.switch.config().transit_enabled {
            "silkroad"
        } else {
            "silkroad-no-transit"
        }
    }

    fn add_vip(&mut self, vip: Vip, dips: Vec<Dip>) {
        self.switch.add_vip(vip, dips).expect("fresh VIP");
    }

    fn apply_update(&mut self, vip: Vip, op: PoolUpdate, now: Nanos) {
        let _ = self.switch.request_update(vip, op, now);
    }

    fn packet(&mut self, pkt: &PacketMeta, now: Nanos) -> PacketVerdict {
        let d = self.switch.process_packet(pkt, now);
        let in_software = d.path == DataPath::SoftwareRedirect;
        PacketVerdict {
            dip: d.dip,
            in_software,
            latency: if in_software {
                self.switch.config().syn_redirect_delay
            } else {
                ASIC_LATENCY
            },
        }
    }

    fn conn_closed(&mut self, _vip: Vip, tuple: &FiveTuple, now: Nanos) {
        self.switch.close_connection(tuple, now);
    }

    fn tick(&mut self, now: Nanos) -> Vec<Vip> {
        self.switch.advance(now);
        Vec::new()
    }

    fn next_wakeup(&self) -> Option<Nanos> {
        self.switch.next_wakeup()
    }
}

// -------------------------------------------------------------------- Duet

/// Duet behind the harness interface. Tracks pool membership (Duet's
/// `update_pool` takes whole member lists), per-VIP redirect intervals for
/// the SLB-load accounting, and — for the Migrate-PCC policy — the set of
/// *old* connections (alive at some update) that must terminate before the
/// VIP may return to the switch, which is exactly the paper's criterion
/// ("we wait until all the old connections have terminated").
pub struct DuetAdapter {
    duet: DuetLb,
    policy: MigrationPolicy,
    pools: HashMap<Vip, Vec<Dip>>,
    /// Live connections per VIP (first packet seen, not yet closed).
    live: HashMap<Vip, HashSet<Box<[u8]>>>,
    /// Connections that were alive at this VIP's most recent update.
    old_conns: HashMap<Vip, HashSet<Box<[u8]>>>,
    /// Closed redirect intervals per VIP; an open redirect is
    /// `(start, Nanos::MAX)`.
    redirects: HashMap<Vip, Vec<(Nanos, Nanos)>>,
}

impl DuetAdapter {
    /// Wrap a fresh Duet instance.
    pub fn new(cfg: DuetConfig) -> DuetAdapter {
        DuetAdapter {
            duet: DuetLb::new(cfg),
            policy: cfg.policy,
            pools: HashMap::new(),
            live: HashMap::new(),
            old_conns: HashMap::new(),
            redirects: HashMap::new(),
        }
    }

    /// The wrapped instance.
    pub fn duet(&self) -> &DuetLb {
        &self.duet
    }

    fn close_redirect_interval(&mut self, vip: Vip, now: Nanos) {
        if let Some(iv) = self.redirects.get_mut(&vip) {
            if let Some(last) = iv.last_mut() {
                if last.1 == Nanos::MAX {
                    last.1 = now;
                }
            }
        }
    }
}

impl LoadBalancer for DuetAdapter {
    fn name(&self) -> &'static str {
        "duet"
    }

    fn add_vip(&mut self, vip: Vip, dips: Vec<Dip>) {
        self.duet.add_vip(vip, dips.clone()).expect("fresh VIP");
        self.pools.insert(vip, dips);
    }

    fn apply_update(&mut self, vip: Vip, op: PoolUpdate, now: Nanos) {
        let Some(pool) = self.pools.get_mut(&vip) else {
            return;
        };
        match op {
            PoolUpdate::Add(d) => {
                if !pool.contains(&d) {
                    pool.push(d);
                }
            }
            PoolUpdate::Remove(d) => pool.retain(|x| *x != d),
        }
        let was_redirected = self.duet.is_redirected(vip);
        let _ = self.duet.update_pool(vip, pool.clone(), now);
        if !was_redirected && self.duet.is_redirected(vip) {
            self.redirects
                .entry(vip)
                .or_default()
                .push((now, Nanos::MAX));
        }
        // Everything alive right now predates the new pool.
        let live = self.live.entry(vip).or_default();
        self.old_conns
            .entry(vip)
            .or_default()
            .extend(live.iter().cloned());
    }

    fn packet(&mut self, pkt: &PacketMeta, now: Nanos) -> PacketVerdict {
        let vip = Vip(pkt.tuple.dst);
        if pkt.flags.is_syn() {
            self.live
                .entry(vip)
                .or_default()
                .insert(pkt.tuple.key_bytes().into());
        }
        let in_software = self.duet.is_redirected(vip);
        PacketVerdict {
            dip: self.duet.process_packet(pkt, now),
            in_software,
            latency: if in_software {
                slb_latency(pkt.tuple.tuple_key().as_slice(), now.0)
            } else {
                ASIC_LATENCY
            },
        }
    }

    fn conn_closed(&mut self, vip: Vip, tuple: &FiveTuple, _now: Nanos) {
        let key = tuple.tuple_key();
        self.duet.close_connection(vip, key.as_slice());
        if let Some(l) = self.live.get_mut(&vip) {
            l.remove(key.as_slice());
        }
        if let Some(o) = self.old_conns.get_mut(&vip) {
            o.remove(key.as_slice());
        }
    }

    fn tick(&mut self, now: Nanos) -> Vec<Vip> {
        let migrated = if self.policy == MigrationPolicy::WaitPcc {
            // Flow-level Migrate-PCC: a VIP returns to the switch only when
            // every connection that predates its latest update has ended.
            let candidates: Vec<Vip> = self
                .pools
                .keys()
                .filter(|vip| {
                    self.duet.is_redirected(**vip)
                        && self
                            .old_conns
                            .get(vip)
                            .map(|o| o.is_empty())
                            .unwrap_or(true)
                })
                .copied()
                .collect();
            candidates
                .into_iter()
                .filter(|vip| self.duet.force_migrate(*vip))
                .collect()
        } else {
            self.duet.tick(now)
        };
        for vip in &migrated {
            self.close_redirect_interval(*vip, now);
        }
        migrated
    }

    fn next_wakeup(&self) -> Option<Nanos> {
        self.duet.next_wakeup()
    }

    fn software_share(&self, vip: Vip, from: Nanos, to: Nanos) -> f64 {
        let span = to.since(from).0 as f64;
        if span <= 0.0 {
            return if self.duet.is_redirected(vip) {
                1.0
            } else {
                0.0
            };
        }
        let Some(intervals) = self.redirects.get(&vip) else {
            return 0.0;
        };
        let mut overlap = 0u128;
        for (s, e) in intervals {
            let s = (*s).max(from);
            let e = (*e).min(to);
            if e > s {
                overlap += (e.0 - s.0) as u128;
            }
        }
        (overlap as f64 / span).min(1.0)
    }
}

// --------------------------------------------------------------------- SLB

/// A pure software-LB tier behind the harness interface.
pub struct SlbAdapter {
    slb: SoftwareLb,
    pools: HashMap<Vip, Vec<Dip>>,
}

impl SlbAdapter {
    /// Wrap a fresh SLB.
    pub fn new(cfg: SlbConfig) -> SlbAdapter {
        SlbAdapter {
            slb: SoftwareLb::new(cfg),
            pools: HashMap::new(),
        }
    }

    /// The wrapped SLB.
    pub fn slb(&self) -> &SoftwareLb {
        &self.slb
    }
}

impl LoadBalancer for SlbAdapter {
    fn name(&self) -> &'static str {
        "slb"
    }

    fn add_vip(&mut self, vip: Vip, dips: Vec<Dip>) {
        self.slb.add_vip(vip, dips.clone()).expect("fresh VIP");
        self.pools.insert(vip, dips);
    }

    fn apply_update(&mut self, vip: Vip, op: PoolUpdate, now: Nanos) {
        let _ = now;
        let Some(pool) = self.pools.get_mut(&vip) else {
            return;
        };
        match op {
            PoolUpdate::Add(d) => {
                if !pool.contains(&d) {
                    pool.push(d);
                }
            }
            PoolUpdate::Remove(d) => pool.retain(|x| *x != d),
        }
        let _ = self.slb.update_pool(vip, pool.clone());
    }

    fn packet(&mut self, pkt: &PacketMeta, now: Nanos) -> PacketVerdict {
        PacketVerdict {
            dip: self.slb.process_packet(pkt, now),
            in_software: true,
            latency: slb_latency(pkt.tuple.tuple_key().as_slice(), now.0),
        }
    }

    fn conn_closed(&mut self, _vip: Vip, tuple: &FiveTuple, _now: Nanos) {
        self.slb.close_connection(tuple.tuple_key().as_slice());
    }

    fn tick(&mut self, _now: Nanos) -> Vec<Vip> {
        Vec::new()
    }

    fn next_wakeup(&self) -> Option<Nanos> {
        None
    }

    fn software_share(&self, _vip: Vip, _from: Nanos, _to: Nanos) -> f64 {
        1.0
    }
}

// -------------------------------------------------------------------- ECMP

/// Stateless ECMP behind the harness interface.
pub struct EcmpAdapter {
    ecmp: EcmpLb,
    pools: HashMap<Vip, Vec<Dip>>,
}

impl EcmpAdapter {
    /// Wrap a fresh ECMP balancer.
    pub fn new(seed: u64) -> EcmpAdapter {
        EcmpAdapter {
            ecmp: EcmpLb::new(seed),
            pools: HashMap::new(),
        }
    }
}

impl LoadBalancer for EcmpAdapter {
    fn name(&self) -> &'static str {
        "ecmp"
    }

    fn add_vip(&mut self, vip: Vip, dips: Vec<Dip>) {
        self.ecmp.add_vip(vip, dips.clone()).expect("fresh VIP");
        self.pools.insert(vip, dips);
    }

    fn apply_update(&mut self, vip: Vip, op: PoolUpdate, _now: Nanos) {
        let Some(pool) = self.pools.get_mut(&vip) else {
            return;
        };
        match op {
            PoolUpdate::Add(d) => {
                if !pool.contains(&d) {
                    pool.push(d);
                }
            }
            PoolUpdate::Remove(d) => pool.retain(|x| *x != d),
        }
        let _ = self.ecmp.update_pool(vip, pool.clone());
    }

    fn packet(&mut self, pkt: &PacketMeta, _now: Nanos) -> PacketVerdict {
        PacketVerdict {
            dip: self.ecmp.process_packet(pkt),
            in_software: false,
            latency: ASIC_LATENCY,
        }
    }

    fn conn_closed(&mut self, _vip: Vip, _tuple: &FiveTuple, _now: Nanos) {}

    fn tick(&mut self, _now: Nanos) -> Vec<Vip> {
        Vec::new()
    }

    fn next_wakeup(&self) -> Option<Nanos> {
        None
    }
}

// ------------------------------------------------------------------ Hybrid

/// §7 "Combine with SLB solutions": operators split VIPs between SilkRoad
/// (high traffic volume) and an SLB tier (huge connection counts). Unlike
/// Duet, assignments are static — no VIP ever migrates during an update, so
/// PCC is preserved on both sides.
pub struct HybridAdapter {
    silkroad: SilkRoadAdapter,
    slb: SlbAdapter,
    /// VIPs served by the SLB tier.
    slb_vips: std::collections::HashSet<Vip>,
}

impl HybridAdapter {
    /// Build with an explicit SLB-side VIP set.
    pub fn new(
        silk_cfg: SilkRoadConfig,
        slb_cfg: SlbConfig,
        slb_vips: std::collections::HashSet<Vip>,
    ) -> HybridAdapter {
        HybridAdapter {
            silkroad: SilkRoadAdapter::new(silk_cfg),
            slb: SlbAdapter::new(slb_cfg),
            slb_vips,
        }
    }

    /// The switch half.
    pub fn switch(&self) -> &SilkRoadSwitch {
        self.silkroad.switch()
    }

    fn on_slb(&self, vip: Vip) -> bool {
        self.slb_vips.contains(&vip)
    }
}

impl LoadBalancer for HybridAdapter {
    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn add_vip(&mut self, vip: Vip, dips: Vec<Dip>) {
        if self.on_slb(vip) {
            self.slb.add_vip(vip, dips);
        } else {
            self.silkroad.add_vip(vip, dips);
        }
    }

    fn apply_update(&mut self, vip: Vip, op: PoolUpdate, now: Nanos) {
        if self.on_slb(vip) {
            self.slb.apply_update(vip, op, now);
        } else {
            self.silkroad.apply_update(vip, op, now);
        }
    }

    fn packet(&mut self, pkt: &PacketMeta, now: Nanos) -> PacketVerdict {
        if self.on_slb(Vip(pkt.tuple.dst)) {
            self.slb.packet(pkt, now)
        } else {
            self.silkroad.packet(pkt, now)
        }
    }

    fn conn_closed(&mut self, vip: Vip, tuple: &FiveTuple, now: Nanos) {
        if self.on_slb(vip) {
            self.slb.conn_closed(vip, tuple, now);
        } else {
            self.silkroad.conn_closed(vip, tuple, now);
        }
    }

    fn tick(&mut self, now: Nanos) -> Vec<Vip> {
        self.silkroad.tick(now)
    }

    fn next_wakeup(&self) -> Option<Nanos> {
        self.silkroad.next_wakeup()
    }

    fn software_share(&self, vip: Vip, from: Nanos, to: Nanos) -> f64 {
        if self.on_slb(vip) {
            1.0
        } else {
            self.silkroad.software_share(vip, from, to)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_types::Addr;

    fn vip() -> Vip {
        Vip(Addr::v4(20, 0, 0, 1, 80))
    }

    fn dip(i: u8) -> Dip {
        Dip(Addr::v4(10, 0, 0, i, 20))
    }

    fn conn(p: u16) -> FiveTuple {
        FiveTuple::tcp(Addr::v4(1, 2, 3, 4, p), Addr::v4(20, 0, 0, 1, 80))
    }

    fn exercise(lb: &mut dyn LoadBalancer) {
        lb.add_vip(vip(), vec![dip(1), dip(2), dip(3)]);
        let v = lb.packet(&PacketMeta::syn(conn(1)), Nanos::ZERO);
        assert!(v.dip.is_some(), "{}", lb.name());
        lb.apply_update(vip(), PoolUpdate::Remove(dip(3)), Nanos::from_millis(1));
        lb.tick(Nanos::from_millis(20));
        let v2 = lb.packet(&PacketMeta::data(conn(1), 100), Nanos::from_millis(20));
        assert!(v2.dip.is_some());
        lb.packet(&PacketMeta::fin(conn(1)), Nanos::from_millis(30));
        lb.conn_closed(vip(), &conn(1), Nanos::from_millis(30));
    }

    #[test]
    fn all_adapters_exercise() {
        exercise(&mut SilkRoadAdapter::new(SilkRoadConfig::small_test()));
        exercise(&mut DuetAdapter::new(DuetConfig::default()));
        exercise(&mut SlbAdapter::new(SlbConfig::default()));
        exercise(&mut EcmpAdapter::new(7));
    }

    #[test]
    fn slb_is_always_software() {
        let mut a = SlbAdapter::new(SlbConfig::default());
        a.add_vip(vip(), vec![dip(1)]);
        assert!(a.packet(&PacketMeta::syn(conn(1)), Nanos::ZERO).in_software);
        assert_eq!(
            a.software_share(vip(), Nanos::ZERO, Nanos::from_secs(1)),
            1.0
        );
    }

    #[test]
    fn duet_redirect_intervals_feed_share() {
        let mut a = DuetAdapter::new(DuetConfig {
            policy: sr_baselines::MigrationPolicy::Periodic(sr_types::Duration::from_secs(10)),
            seed: 1,
        });
        a.add_vip(vip(), vec![dip(1), dip(2)]);
        assert_eq!(
            a.software_share(vip(), Nanos::ZERO, Nanos::from_secs(20)),
            0.0
        );
        // Redirect from t=2s until the 10s boundary.
        a.apply_update(vip(), PoolUpdate::Remove(dip(2)), Nanos::from_secs(2));
        let migrated = a.tick(Nanos::from_secs(10));
        assert_eq!(migrated, vec![vip()]);
        let share = a.software_share(vip(), Nanos::ZERO, Nanos::from_secs(20));
        assert!((share - 0.4).abs() < 1e-9, "share {share}");
    }

    #[test]
    fn hybrid_routes_by_vip() {
        let mut slb_vips = std::collections::HashSet::new();
        let slb_vip = Vip(Addr::v4(20, 0, 0, 2, 80));
        slb_vips.insert(slb_vip);
        let mut h =
            HybridAdapter::new(SilkRoadConfig::small_test(), SlbConfig::default(), slb_vips);
        h.add_vip(vip(), vec![dip(1), dip(2)]);
        h.add_vip(slb_vip, vec![dip(3), dip(4)]);
        // Switch-side VIP: hardware path.
        let v = h.packet(&PacketMeta::syn(conn(1)), Nanos::ZERO);
        assert!(v.dip.is_some());
        assert!(!v.in_software);
        // SLB-side VIP: software path, and traffic accounting agrees.
        let slb_conn = FiveTuple::tcp(Addr::v4(1, 2, 3, 4, 99), slb_vip.0);
        let v2 = h.packet(&PacketMeta::syn(slb_conn), Nanos::ZERO);
        assert!(v2.dip.is_some());
        assert!(v2.in_software);
        assert_eq!(
            h.software_share(slb_vip, Nanos::ZERO, Nanos::from_secs(1)),
            1.0
        );
        assert_eq!(
            h.software_share(vip(), Nanos::ZERO, Nanos::from_secs(1)),
            0.0
        );
        // Updates route too; both sides keep PCC.
        h.apply_update(slb_vip, PoolUpdate::Remove(dip(4)), Nanos::from_millis(1));
        let v3 = h.packet(&PacketMeta::data(slb_conn, 100), Nanos::from_millis(2));
        assert_eq!(v3.dip, v2.dip);
    }

    #[test]
    fn silkroad_adapter_reports_software_redirects_only() {
        let mut a = SilkRoadAdapter::new(SilkRoadConfig::small_test());
        a.add_vip(vip(), vec![dip(1), dip(2)]);
        let v = a.packet(&PacketMeta::syn(conn(1)), Nanos::ZERO);
        assert!(!v.in_software);
    }
}
