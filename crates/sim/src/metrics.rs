//! Experiment output metrics.

use sr_types::Duration;
use std::fmt;

/// A log-bucketed latency histogram (100 ns – ~100 ms), cheap enough to
/// record per probe packet.
#[derive(Clone, Debug, Default)]
pub struct LatencyHist {
    /// Bucket `i` counts samples in `[100ns * 2^i, 100ns * 2^(i+1))`.
    buckets: [u64; 24],
    count: u64,
    sum_ns: u128,
}

impl LatencyHist {
    fn bucket_of(d: Duration) -> usize {
        let units = (d.0 / 100).max(1);
        (63 - units.leading_zeros() as usize).min(23)
    }

    /// Record one sample.
    pub fn record(&mut self, d: Duration) {
        self.buckets[Self::bucket_of(d)] += 1;
        self.count += 1;
        self.sum_ns += d.0 as u128;
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency.
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            Duration((self.sum_ns / self.count as u128) as u64)
        }
    }

    /// Approximate percentile (bucket lower bound), `p` in `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut acc = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            acc += b;
            if acc >= target {
                return Duration(100 << i);
            }
        }
        Duration(100 << 23)
    }
}

/// Results of one harness run.
#[derive(Clone, Debug, Default)]
pub struct RunMetrics {
    /// Connections opened.
    pub conns_total: u64,
    /// Connections that completed (closed inside the run).
    pub conns_completed: u64,
    /// Connections that observed ≥2 distinct DIPs — PCC violations.
    pub pcc_violations: u64,
    /// Connections that were ever dropped (no DIP) mid-life.
    pub drops: u64,
    /// Total bytes carried by completed connections.
    pub total_bytes: u64,
    /// Bytes handled in software (SLB servers / switch CPU path).
    pub software_bytes: u64,
    /// DIP-pool updates applied.
    pub updates: u64,
    /// Probe packets presented.
    pub probes: u64,
    /// Simulated duration, seconds.
    pub sim_secs: f64,
    /// Per-packet load-balancer processing latency.
    pub latency: LatencyHist,
}

impl RunMetrics {
    /// Fraction of connections that broke (Fig 5b / 16 y-axis).
    pub fn violation_fraction(&self) -> f64 {
        if self.conns_total == 0 {
            0.0
        } else {
            self.pcc_violations as f64 / self.conns_total as f64
        }
    }

    /// Violations per simulated minute (Fig 17 y-axis).
    pub fn violations_per_min(&self) -> f64 {
        if self.sim_secs <= 0.0 {
            0.0
        } else {
            self.pcc_violations as f64 / (self.sim_secs / 60.0)
        }
    }

    /// Fraction of traffic volume handled in software (Fig 5a y-axis).
    pub fn software_traffic_fraction(&self) -> f64 {
        if self.total_bytes == 0 {
            0.0
        } else {
            self.software_bytes as f64 / self.total_bytes as f64
        }
    }
}

impl fmt::Display for RunMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "conns={} completed={} violations={} ({:.4}%) drops={} swTraffic={:.1}% updates={} probes={}",
            self.conns_total,
            self.conns_completed,
            self.pcc_violations,
            100.0 * self.violation_fraction(),
            self.drops,
            100.0 * self.software_traffic_fraction(),
            self.updates,
            self.probes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_hist_percentiles() {
        let mut h = LatencyHist::default();
        assert_eq!(h.percentile(50.0), Duration::ZERO);
        for _ in 0..90 {
            h.record(Duration::from_micros(1)); // bucket [0.8us, 1.6us)
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(1));
        }
        assert_eq!(h.count(), 100);
        let p50 = h.percentile(50.0);
        assert!(p50 < Duration::from_micros(2), "{p50}");
        let p99 = h.percentile(99.0);
        assert!(p99 >= Duration::from_micros(500), "{p99}");
        assert!(h.mean() > Duration::from_micros(50));
    }

    #[test]
    fn ratios_guard_division_by_zero() {
        let m = RunMetrics::default();
        assert_eq!(m.violation_fraction(), 0.0);
        assert_eq!(m.violations_per_min(), 0.0);
        assert_eq!(m.software_traffic_fraction(), 0.0);
    }

    #[test]
    fn ratios_compute() {
        let m = RunMetrics {
            conns_total: 200,
            pcc_violations: 3,
            total_bytes: 1000,
            software_bytes: 250,
            sim_secs: 120.0,
            ..Default::default()
        };
        assert!((m.violation_fraction() - 0.015).abs() < 1e-12);
        assert!((m.violations_per_min() - 1.5).abs() < 1e-12);
        assert!((m.software_traffic_fraction() - 0.25).abs() < 1e-12);
        assert!(m.to_string().contains("violations=3"));
    }
}
