//! The load-balancer interface the harness drives.

use silkroad::PoolUpdate;
use sr_types::{Dip, Duration, FiveTuple, Nanos, PacketMeta, Vip};

/// ASIC pipeline latency (§5.2: "sub-microsecond processing latency").
pub const ASIC_LATENCY: Duration = Duration::from_nanos(600);

/// Result of presenting one packet to a balancer.
#[derive(Clone, Copy, Debug)]
pub struct PacketVerdict {
    /// The backend chosen (None = dropped / unknown VIP).
    pub dip: Option<Dip>,
    /// Whether the packet was handled by software (an SLB server or the
    /// switch CPU) rather than ASIC hardware.
    pub in_software: bool,
    /// Load-balancer processing latency this packet experienced.
    pub latency: Duration,
}

/// A load balancer under test.
pub trait LoadBalancer {
    /// Short system name for reports.
    fn name(&self) -> &'static str;

    /// Register a VIP with its initial pool.
    fn add_vip(&mut self, vip: Vip, dips: Vec<Dip>);

    /// Apply one DIP-pool change.
    fn apply_update(&mut self, vip: Vip, op: PoolUpdate, now: Nanos);

    /// Process one packet.
    fn packet(&mut self, pkt: &PacketMeta, now: Nanos) -> PacketVerdict;

    /// A connection finished (the FIN was already presented via `packet`).
    fn conn_closed(&mut self, vip: Vip, tuple: &FiveTuple, now: Nanos);

    /// Run deferred control-plane work up to `now`. Returns the VIPs whose
    /// live connections may now map differently (e.g. Duet migrate-back) —
    /// the harness re-probes their connections.
    fn tick(&mut self, now: Nanos) -> Vec<Vip>;

    /// Next instant `tick` should run, if the balancer schedules work.
    fn next_wakeup(&self) -> Option<Nanos>;

    /// Fraction of `vip`'s traffic handled in software during
    /// `[from, to]` — drives the Fig 5a SLB-load accounting. Defaults to
    /// zero (pure-hardware systems).
    fn software_share(&self, _vip: Vip, _from: Nanos, _to: Nanos) -> f64 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Null;
    impl LoadBalancer for Null {
        fn name(&self) -> &'static str {
            "null"
        }
        fn add_vip(&mut self, _: Vip, _: Vec<Dip>) {}
        fn apply_update(&mut self, _: Vip, _: PoolUpdate, _: Nanos) {}
        fn packet(&mut self, _: &PacketMeta, _: Nanos) -> PacketVerdict {
            PacketVerdict {
                dip: None,
                in_software: false,
                latency: ASIC_LATENCY,
            }
        }
        fn conn_closed(&mut self, _: Vip, _: &FiveTuple, _: Nanos) {}
        fn tick(&mut self, _: Nanos) -> Vec<Vip> {
            Vec::new()
        }
        fn next_wakeup(&self) -> Option<Nanos> {
            None
        }
    }

    #[test]
    fn default_software_share_is_zero() {
        let n = Null;
        let vip = Vip(sr_types::Addr::v4(1, 2, 3, 4, 80));
        assert_eq!(n.software_share(vip, Nanos::ZERO, Nanos::from_secs(1)), 0.0);
    }
}
