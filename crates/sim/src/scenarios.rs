//! Canned experiment scenarios for the evaluation figures.
//!
//! Each figure's bench target builds [`Scenario`]s and calls
//! [`run_scenario`]; the row structures returned carry everything the
//! `repro` binary prints.

use crate::adapters::{DuetAdapter, EcmpAdapter, SilkRoadAdapter, SlbAdapter};
use crate::harness::{Harness, HarnessConfig};
use crate::lb::LoadBalancer;
use crate::metrics::RunMetrics;
use silkroad::SilkRoadConfig;
use sr_asic::{LearningFilterConfig, SwitchCpuConfig};
use sr_baselines::{DuetConfig, MigrationPolicy, SlbConfig};
use sr_types::Duration;
use sr_workload::TraceConfig;

/// Which system to instantiate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SystemKind {
    /// SilkRoad with full TransitTable machinery.
    SilkRoad {
        /// TransitTable size in bytes.
        transit_bytes: usize,
        /// Learning-filter timeout.
        learning_timeout: Duration,
        /// CPU insertion rate, entries/s.
        insertions_per_sec: u64,
    },
    /// SilkRoad with the TransitTable disabled (Fig 16/17 ablation).
    SilkRoadNoTransit {
        /// Learning-filter timeout.
        learning_timeout: Duration,
        /// CPU insertion rate, entries/s.
        insertions_per_sec: u64,
    },
    /// Duet with a migrate-back policy.
    Duet(MigrationPolicy),
    /// Pure software LB.
    Slb,
    /// Stateless ECMP.
    Ecmp,
}

impl SystemKind {
    /// The paper-default SilkRoad: 256 B TransitTable, 1 ms learning
    /// timeout, 200 K insertions/s.
    pub fn silkroad_default() -> SystemKind {
        SystemKind::SilkRoad {
            transit_bytes: 256,
            learning_timeout: Duration::from_millis(1),
            insertions_per_sec: 200_000,
        }
    }

    /// Short label for report rows.
    pub fn label(&self) -> String {
        match self {
            SystemKind::SilkRoad { transit_bytes, .. } => format!("SilkRoad({transit_bytes}B)"),
            SystemKind::SilkRoadNoTransit { .. } => "SilkRoad-noTT".to_string(),
            SystemKind::Duet(MigrationPolicy::Periodic(p)) => {
                format!("Duet-{:.0}min", p.as_secs_f64() / 60.0)
            }
            SystemKind::Duet(MigrationPolicy::WaitPcc) => "Duet-PCC".to_string(),
            SystemKind::Slb => "SLB".to_string(),
            SystemKind::Ecmp => "ECMP".to_string(),
        }
    }
}

/// One experiment point.
#[derive(Clone, Copy, Debug)]
pub struct Scenario {
    /// Traffic + update trace.
    pub trace: TraceConfig,
    /// System under test.
    pub system: SystemKind,
    /// Harness tuning.
    pub harness: HarnessConfig,
}

impl Scenario {
    /// Build with default harness tuning.
    pub fn new(trace: TraceConfig, system: SystemKind) -> Scenario {
        Scenario {
            trace,
            system,
            harness: HarnessConfig::default(),
        }
    }
}

fn silkroad_cfg(
    transit_bytes: usize,
    transit_enabled: bool,
    learning_timeout: Duration,
    insertions_per_sec: u64,
    expected_conns: f64,
) -> SilkRoadConfig {
    SilkRoadConfig {
        transit_bytes,
        transit_enabled,
        learning: LearningFilterConfig {
            capacity: 2048,
            timeout: learning_timeout,
        },
        cpu: SwitchCpuConfig { insertions_per_sec },
        // Provision ConnTable for the live-connection population with headroom.
        conn_capacity: ((expected_conns * 0.2).max(20_000.0) as usize).min(12_000_000),
        ..Default::default()
    }
}

/// Run one scenario to completion.
pub fn run_scenario(s: Scenario) -> RunMetrics {
    let harness = Harness::new(s.trace, s.harness);
    match s.system {
        SystemKind::SilkRoad {
            transit_bytes,
            learning_timeout,
            insertions_per_sec,
        } => {
            let mut lb = SilkRoadAdapter::new(silkroad_cfg(
                transit_bytes,
                true,
                learning_timeout,
                insertions_per_sec,
                s.trace.expected_conns(),
            ));
            harness.run(&mut lb)
        }
        SystemKind::SilkRoadNoTransit {
            learning_timeout,
            insertions_per_sec,
        } => {
            let mut lb = SilkRoadAdapter::new(silkroad_cfg(
                256,
                false,
                learning_timeout,
                insertions_per_sec,
                s.trace.expected_conns(),
            ));
            harness.run(&mut lb)
        }
        SystemKind::Duet(policy) => {
            let mut lb = DuetAdapter::new(DuetConfig {
                policy,
                seed: s.trace.seed ^ 0xd0e7,
            });
            harness.run(&mut lb)
        }
        SystemKind::Slb => {
            let mut lb = SlbAdapter::new(SlbConfig::default());
            harness.run(&mut lb)
        }
        SystemKind::Ecmp => {
            let mut lb = EcmpAdapter::new(s.trace.seed ^ 0xec);
            harness.run(&mut lb)
        }
    }
}

/// Run a scenario against a caller-provided balancer (for custom systems).
pub fn run_with(s: Scenario, lb: &mut dyn LoadBalancer) -> RunMetrics {
    Harness::new(s.trace, s.harness).run(lb)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_trace(upm: f64) -> TraceConfig {
        let mut t = TraceConfig::pop_scaled(0.002, 2); // ~5.5K conns/min
        t.vips = 10;
        t.dips_per_vip = 8;
        t.updates_per_min = upm;
        t
    }

    #[test]
    fn labels() {
        assert_eq!(SystemKind::silkroad_default().label(), "SilkRoad(256B)");
        assert_eq!(
            SystemKind::Duet(MigrationPolicy::Periodic(Duration::from_mins(10))).label(),
            "Duet-10min"
        );
        assert_eq!(
            SystemKind::Duet(MigrationPolicy::WaitPcc).label(),
            "Duet-PCC"
        );
        assert_eq!(SystemKind::Slb.label(), "SLB");
    }

    #[test]
    fn fig16_shape_holds_at_small_scale() {
        // The paper's ordering at 10+ updates/min:
        //   SilkRoad (0) < SilkRoad-noTT (tiny) < Duet-10min.
        let upm = 20.0;
        let silkroad = run_scenario(Scenario::new(
            small_trace(upm),
            SystemKind::silkroad_default(),
        ));
        let no_tt = run_scenario(Scenario::new(
            small_trace(upm),
            SystemKind::SilkRoadNoTransit {
                learning_timeout: Duration::from_millis(5),
                insertions_per_sec: 10_000, // slow CPU widens the window
            },
        ));
        let duet = run_scenario(Scenario::new(
            small_trace(upm),
            SystemKind::Duet(MigrationPolicy::Periodic(Duration::from_mins(1))),
        ));
        assert_eq!(silkroad.pcc_violations, 0, "silkroad: {silkroad}");
        assert!(
            duet.pcc_violations > no_tt.pcc_violations,
            "duet {duet} vs noTT {no_tt}"
        );
        assert!(duet.pcc_violations > 0, "{duet}");
    }

    #[test]
    fn conn_capacity_scales_with_trace() {
        let cfg = silkroad_cfg(256, true, Duration::from_millis(1), 200_000, 1_000_000.0);
        assert!(cfg.conn_capacity >= 200_000);
        let small = silkroad_cfg(256, true, Duration::from_millis(1), 200_000, 100.0);
        assert_eq!(small.conn_capacity, 20_000);
    }
}
