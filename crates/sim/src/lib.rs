//! Deterministic flow-level discrete-event simulation (§3.2, §6.2).
//!
//! This crate reproduces the paper's simulation methodology: traces from
//! `sr-workload` are replayed against a load balancer behind the
//! [`LoadBalancer`] trait, and per-connection consistency is measured by
//! *probing* each connection's mapping at the instants it would actually
//! have a packet on the wire:
//!
//! * its first packet (SYN) and last packet (FIN);
//! * its natural next packets after any event that could remap it — a
//!   DIP-pool update to its VIP, or the balancer reporting a VIP remap
//!   (Duet's migrate-back);
//! * its early packets while its ConnTable entry is still being installed
//!   (SilkRoad's pending window).
//!
//! A connection that observes two different DIPs is **broken** — exactly
//! the paper's PCC-violation definition. Probing at real packet times
//! (derived from each flow's rate) rather than continuously is what makes
//! paper-scale traces tractable, and is faithful: a remap that no packet
//! ever observes does not break the connection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapters;
pub mod fleet;
pub mod harness;
pub mod lb;
pub mod metrics;
pub mod scenarios;
pub mod wheel;

pub use adapters::{DuetAdapter, EcmpAdapter, HybridAdapter, SilkRoadAdapter, SlbAdapter};
pub use fleet::{run_fleet, FleetOp, FleetParams, FleetReport};
pub use harness::{Harness, HarnessConfig};
pub use lb::{LoadBalancer, PacketVerdict, ASIC_LATENCY};
pub use metrics::{LatencyHist, RunMetrics};
pub use scenarios::{run_scenario, Scenario, SystemKind};
pub use wheel::TimerWheel;
