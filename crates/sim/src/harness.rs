//! The discrete-event harness.
//!
//! Replays one [`TraceIter`] against one [`LoadBalancer`], measuring PCC
//! violations and software load. See the crate docs for the probing model.

use crate::lb::{LoadBalancer, PacketVerdict};
use crate::metrics::RunMetrics;
use silkroad::PoolUpdate;
use sr_types::{Dip, Duration, Nanos, PacketMeta, Vip};
use sr_workload::trace::{dip_addr, vip_addr};
use sr_workload::updates::DipOp;
use sr_workload::{ConnSpec, TraceConfig, TraceEvent, TraceIter};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Harness tuning.
#[derive(Clone, Copy, Debug)]
pub struct HarnessConfig {
    /// Extra early probes per connection after the SYN, one packet-gap
    /// apart — covers the pending-insertion window.
    pub early_probes: u32,
    /// Periodic balancer tick (drives policies with no self-scheduled
    /// wakeups, e.g. Duet's Migrate-PCC).
    pub periodic_tick: Duration,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            early_probes: 2,
            periodic_tick: Duration::from_secs(1),
        }
    }
}

#[derive(PartialEq, Eq, Debug)]
enum Ev {
    /// Connection close (FIN + teardown).
    Close(u64),
    /// A mid-life packet of connection `0` (field); `1` = remaining early
    /// chain length after this probe.
    Probe(u64, u32),
    /// Balancer-scheduled wakeup.
    Wakeup,
    /// Harness periodic tick.
    Tick,
}

#[derive(PartialEq, Eq, Debug)]
struct QueuedEvent {
    at: Nanos,
    seq: u64,
    ev: Ev,
}

impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Clone, Copy)]
struct ConnState {
    spec: ConnSpec,
    assigned: Option<Dip>,
    violated: bool,
    dropped: bool,
    /// The connection's assigned DIP was removed from the pool: the
    /// connection is dead regardless of the balancer, so a later remap is
    /// not a PCC violation (the paper's accounting — a broken connection is
    /// one moved *between live DIPs*).
    doomed: bool,
}

/// Pool membership as a word bitset — replaces the old per-VIP
/// `HashSet<u32>`: membership checks on the open path touch one cache
/// line instead of hashing, and a pool of 128 DIPs costs 16 bytes.
#[derive(Clone, Debug, Default)]
struct DipSet {
    words: Vec<u64>,
    count: u32,
}

impl DipSet {
    /// The full pool `{0, .., n-1}`.
    fn full(n: u32) -> DipSet {
        let mut s = DipSet {
            words: vec![0; (n as usize).div_ceil(64)],
            count: 0,
        };
        for i in 0..n {
            s.insert(i);
        }
        s
    }

    fn contains(&self, i: u32) -> bool {
        self.words
            .get((i / 64) as usize)
            .is_some_and(|w| w >> (i % 64) & 1 == 1)
    }

    /// Insert; `true` if newly present (HashSet::insert semantics).
    fn insert(&mut self, i: u32) -> bool {
        let w = (i / 64) as usize;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let Some(word) = self.words.get_mut(w) else {
            return false;
        };
        let bit = 1u64 << (i % 64);
        if *word & bit != 0 {
            return false;
        }
        *word |= bit;
        self.count += 1;
        true
    }

    /// Remove; `true` if it was present (HashSet::remove semantics).
    fn remove(&mut self, i: u32) -> bool {
        let Some(word) = self.words.get_mut((i / 64) as usize) else {
            return false;
        };
        let bit = 1u64 << (i % 64);
        if *word & bit == 0 {
            return false;
        }
        *word &= !bit;
        self.count -= 1;
        true
    }

    fn len(&self) -> u32 {
        self.count
    }
}

/// The harness. Owns the run state; borrow the balancer for the run.
///
/// ```
/// use sr_sim::{Harness, HarnessConfig, SilkRoadAdapter};
/// use silkroad::SilkRoadConfig;
/// use sr_workload::TraceConfig;
/// use sr_types::Duration;
///
/// let mut trace = TraceConfig::pop_scaled(0.0005, 1); // tiny doc-sized run
/// trace.updates_per_min = 5.0;
/// let mut lb = SilkRoadAdapter::new(SilkRoadConfig::default());
/// let metrics = Harness::new(trace, HarnessConfig::default()).run(&mut lb);
/// assert_eq!(metrics.pcc_violations, 0);
/// assert!(metrics.conns_total > 0);
/// ```
pub struct Harness {
    cfg: HarnessConfig,
    trace_cfg: TraceConfig,
    heap: BinaryHeap<Reverse<QueuedEvent>>,
    event_seq: u64,
    /// Connection states, slot-addressed with free-list reuse: the hot
    /// per-packet state stays in one contiguous, recycled arena instead
    /// of a `HashMap<u64, ConnState>` of scattered buckets.
    slab: Vec<ConnState>,
    slab_free: Vec<u32>,
    /// Trace seq -> live slab slot (events address connections by seq).
    conn_index: HashMap<u64, u32>,
    /// Live connections per VIP index (lazily compacted).
    per_vip: Vec<Vec<u64>>,
    /// VIP address -> index (for balancer-reported remaps).
    vip_index: HashMap<Vip, u32>,
    /// DIP address -> index within its VIP (doomed-connection checks).
    dip_index: HashMap<Dip, u32>,
    /// Current pool membership per VIP (no-op update filtering and
    /// doomed-connection checks).
    membership: Vec<DipSet>,
    next_wakeup_scheduled: Option<Nanos>,
    metrics: RunMetrics,
}

impl Harness {
    /// Build a harness for one trace configuration.
    pub fn new(trace_cfg: TraceConfig, cfg: HarnessConfig) -> Harness {
        Harness {
            cfg,
            trace_cfg,
            heap: BinaryHeap::new(),
            event_seq: 0,
            slab: Vec::new(),
            slab_free: Vec::new(),
            conn_index: HashMap::new(),
            per_vip: vec![Vec::new(); trace_cfg.vips as usize],
            vip_index: HashMap::new(),
            dip_index: HashMap::new(),
            membership: Vec::new(),
            next_wakeup_scheduled: None,
            metrics: RunMetrics::default(),
        }
    }

    fn push(&mut self, at: Nanos, ev: Ev) {
        self.event_seq += 1;
        self.heap.push(Reverse(QueuedEvent {
            at,
            seq: self.event_seq,
            ev,
        }));
    }

    /// Park `state` in a recycled slab slot, indexed by trace seq.
    fn conn_insert(&mut self, seq: u64, state: ConnState) {
        let slot = match self.slab_free.pop() {
            Some(s) => {
                if let Some(cell) = self.slab.get_mut(s as usize) {
                    *cell = state;
                }
                s
            }
            None => {
                self.slab.push(state);
                (self.slab.len() - 1) as u32
            }
        };
        self.conn_index.insert(seq, slot);
    }

    /// Remove a live connection, recycling its slot.
    fn conn_remove(&mut self, seq: u64) -> Option<ConnState> {
        let slot = self.conn_index.remove(&seq)?;
        self.slab_free.push(slot);
        self.slab.get(slot as usize).copied()
    }

    /// Run the trace to completion and return the metrics.
    pub fn run(mut self, lb: &mut dyn LoadBalancer) -> RunMetrics {
        // Register every VIP with its full initial pool.
        let family = self.trace_cfg.family;
        for v in 0..self.trace_cfg.vips {
            let dips: Vec<Dip> = (0..self.trace_cfg.dips_per_vip)
                .map(|d| dip_addr(family, v, d))
                .collect();
            let vip = vip_addr(family, v);
            for (i, d) in dips.iter().enumerate() {
                self.dip_index.insert(*d, i as u32);
            }
            lb.add_vip(vip, dips);
            self.vip_index.insert(vip, v);
            self.membership
                .push(DipSet::full(self.trace_cfg.dips_per_vip));
        }
        self.metrics.sim_secs = self.trace_cfg.duration.as_secs_f64();

        let mut trace = TraceIter::new(self.trace_cfg).peekable();
        self.push(Nanos::ZERO + self.cfg.periodic_tick, Ev::Tick);

        loop {
            let trace_at = trace.peek().map(|e| e.at());
            let heap_at = self.heap.peek().map(|qe| qe.0.at);
            match (trace_at, heap_at) {
                (None, None) => break,
                (Some(t), h) if h.is_none_or(|h| t <= h) => {
                    let ev = trace.next().expect("peeked");
                    match ev {
                        TraceEvent::ConnOpen(c) => self.on_open(c, lb),
                        TraceEvent::Update(u) => self.on_update(u, lb),
                    }
                    self.schedule_lb_wakeup(t, lb);
                }
                (_, Some(_)) => {
                    let Reverse(qe) = self.heap.pop().expect("peeked");
                    let at = qe.at;
                    let more_coming = trace.peek().is_some();
                    self.dispatch(qe, lb, more_coming);
                    // Once the trace is drained and every connection is
                    // closed, stop feeding balancer wakeups — otherwise a
                    // periodic policy (Duet) keeps the run alive forever.
                    if more_coming || !self.conn_index.is_empty() {
                        self.schedule_lb_wakeup(at, lb);
                    }
                }
                // (Some, None) with a false guard cannot happen: the guard
                // is always true when the heap is empty.
                (Some(_), None) => unreachable!(),
            }
        }
        self.metrics
    }

    fn dispatch(&mut self, qe: QueuedEvent, lb: &mut dyn LoadBalancer, trace_active: bool) {
        let now = qe.at;
        match qe.ev {
            Ev::Close(seq) => self.on_close(seq, now, lb),
            Ev::Probe(seq, chain) => self.on_probe(seq, chain, now, lb),
            Ev::Wakeup => {
                if self.next_wakeup_scheduled == Some(now) {
                    self.next_wakeup_scheduled = None;
                }
                let remapped = lb.tick(now);
                self.probe_remapped(remapped, now);
            }
            Ev::Tick => {
                let remapped = lb.tick(now);
                self.probe_remapped(remapped, now);
                if trace_active || !self.conn_index.is_empty() {
                    self.push(now + self.cfg.periodic_tick, Ev::Tick);
                }
            }
        }
    }

    fn schedule_lb_wakeup(&mut self, _now: Nanos, lb: &mut dyn LoadBalancer) {
        if let Some(w) = lb.next_wakeup() {
            let need = match self.next_wakeup_scheduled {
                Some(s) => w < s,
                None => true,
            };
            if need {
                self.next_wakeup_scheduled = Some(w);
                self.push(w, Ev::Wakeup);
            }
        }
    }

    fn on_open(&mut self, c: ConnSpec, lb: &mut dyn LoadBalancer) {
        self.metrics.conns_total += 1;
        let verdict = lb.packet(&PacketMeta::syn(c.tuple), c.opened);
        let mut state = ConnState {
            spec: c,
            assigned: None,
            violated: false,
            dropped: false,
            doomed: false,
        };
        observe(
            &mut self.metrics,
            &self.dip_index,
            &self.membership,
            &mut state,
            verdict,
        );
        let seq = c.seq.0;
        self.push(c.closes(), Ev::Close(seq));
        if self.cfg.early_probes > 0 {
            let first = c.opened + c.pkt_gap;
            if first < c.closes() {
                self.push(first, Ev::Probe(seq, self.cfg.early_probes - 1));
            }
        }
        if let Some(list) = self.per_vip.get_mut(c.vip.0 as usize) {
            list.push(seq);
        }
        self.conn_insert(seq, state);
    }

    fn on_probe(&mut self, seq: u64, chain: u32, now: Nanos, lb: &mut dyn LoadBalancer) {
        let Some(&slot) = self.conn_index.get(&seq) else {
            return;
        };
        let Some(spec) = self.slab.get(slot as usize).map(|s| s.spec) else {
            return;
        };
        let verdict = lb.packet(&PacketMeta::data(spec.tuple, spec.pkt_len), now);
        if let Some(state) = self.slab.get_mut(slot as usize) {
            observe(
                &mut self.metrics,
                &self.dip_index,
                &self.membership,
                state,
                verdict,
            );
        }
        if chain > 0 {
            let next = now + spec.pkt_gap;
            if next < spec.closes() {
                self.push(next, Ev::Probe(seq, chain - 1));
            }
        }
    }

    fn on_close(&mut self, seq: u64, now: Nanos, lb: &mut dyn LoadBalancer) {
        let Some(mut state) = self.conn_remove(seq) else {
            return;
        };
        let verdict = lb.packet(&PacketMeta::fin(state.spec.tuple), now);
        observe(
            &mut self.metrics,
            &self.dip_index,
            &self.membership,
            &mut state,
            verdict,
        );
        let vip = vip_addr(self.trace_cfg.family, state.spec.vip.0);
        lb.conn_closed(vip, &state.spec.tuple, now);
        self.metrics.conns_completed += 1;
        let bytes = state.spec.bytes();
        self.metrics.total_bytes += bytes;
        let share = lb.software_share(vip, state.spec.opened, now);
        self.metrics.software_bytes += (bytes as f64 * share) as u64;
    }

    fn on_update(&mut self, u: sr_workload::UpdateEvent, lb: &mut dyn LoadBalancer) {
        let vidx = u.vip.0;
        let Some(members) = self.membership.get_mut(vidx as usize) else {
            return;
        };
        // Filter no-ops and never empty a pool (operators keep capacity up).
        let effective = match u.op {
            DipOp::Remove => members.len() > 1 && members.remove(u.dip.0),
            DipOp::Add => members.insert(u.dip.0),
        };
        if !effective {
            return;
        }
        self.metrics.updates += 1;
        let family = self.trace_cfg.family;
        let vip = vip_addr(family, vidx);
        let dip = dip_addr(family, vidx, u.dip.0);
        let op = match u.op {
            DipOp::Remove => PoolUpdate::Remove(dip),
            DipOp::Add => PoolUpdate::Add(dip),
        };
        lb.apply_update(vip, op, u.at);
        if let PoolUpdate::Remove(removed) = op {
            self.doom_conns(vidx, removed);
        }
        self.probe_vip_conns(vidx, u.at);
    }

    /// Mark live connections assigned to a just-removed DIP as dead.
    fn doom_conns(&mut self, vip_idx: u32, removed: Dip) {
        let Some(list) = self.per_vip.get(vip_idx as usize) else {
            return;
        };
        for seq in list {
            let Some(&slot) = self.conn_index.get(seq) else {
                continue;
            };
            if let Some(state) = self.slab.get_mut(slot as usize) {
                if state.assigned == Some(removed) {
                    state.doomed = true;
                }
            }
        }
    }

    fn probe_remapped(&mut self, remapped: Vec<Vip>, now: Nanos) {
        for vip in remapped {
            if let Some(&idx) = self.vip_index.get(&vip) {
                self.probe_vip_conns(idx, now);
            }
        }
    }

    /// Schedule a probe for every live connection of a VIP at its natural
    /// next packet time after `after`.
    fn probe_vip_conns(&mut self, vip_idx: u32, after: Nanos) {
        let mut to_push: Vec<(Nanos, u64)> = Vec::new();
        {
            let conns = &self.conn_index;
            let slab = &self.slab;
            let Some(list) = self.per_vip.get_mut(vip_idx as usize) else {
                return;
            };
            list.retain(|seq| conns.contains_key(seq));
            for seq in list.iter() {
                let Some(state) = conns.get(seq).and_then(|&s| slab.get(s as usize)) else {
                    continue;
                };
                let c = &state.spec;
                if state.violated {
                    continue; // already counted; probing again changes nothing
                }
                let gap = c.pkt_gap.0.max(1);
                let since_open = after.since(c.opened).0;
                let k = since_open / gap + 1;
                let p = c.opened + Duration(gap.saturating_mul(k));
                if p < c.closes() {
                    to_push.push((p, *seq));
                }
            }
        }
        for (p, seq) in to_push {
            self.push(p, Ev::Probe(seq, 0));
        }
    }
}

/// Record one packet verdict against a connection's state. A free
/// function (not `&mut self`) so callers can hold a slab borrow.
fn observe(
    metrics: &mut RunMetrics,
    dip_index: &HashMap<Dip, u32>,
    membership: &[DipSet],
    state: &mut ConnState,
    verdict: PacketVerdict,
) {
    metrics.probes += 1;
    metrics.latency.record(verdict.latency);
    match verdict.dip {
        None => {
            if !state.dropped {
                state.dropped = true;
                metrics.drops += 1;
            }
        }
        Some(d) => match state.assigned {
            None => {
                state.assigned = Some(d);
                // Assigned to a DIP whose removal was already requested
                // (the balancer may still be draining the update): the
                // connection dies with that server — an administrative
                // death, not a PCC violation.
                let vip_idx = state.spec.vip.0 as usize;
                if let (Some(&idx), Some(members)) = (dip_index.get(&d), membership.get(vip_idx)) {
                    if !members.contains(idx) {
                        state.doomed = true;
                    }
                }
            }
            Some(a) => {
                if a != d && !state.violated && !state.doomed {
                    state.violated = true;
                    metrics.pcc_violations += 1;
                }
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapters::{DuetAdapter, EcmpAdapter, SilkRoadAdapter, SlbAdapter};
    use silkroad::SilkRoadConfig;
    use sr_baselines::{DuetConfig, MigrationPolicy, SlbConfig};
    use sr_types::AddrFamily;

    fn trace(upm: f64, mins: u64) -> TraceConfig {
        TraceConfig {
            vips: 8,
            dips_per_vip: 6,
            new_conns_per_min: 3000.0,
            median_flow_secs: 10.0,
            flow_sigma: 1.0,
            median_rate_bps: 100_000.0,
            rate_sigma: 0.5,
            median_pkt_bytes: 800.0,
            pkt_sigma: 0.35,
            updates_per_min: upm,
            shared_dip_upgrades: false,
            duration: Duration::from_mins(mins),
            family: AddrFamily::V4,
            seed: 11,
        }
    }

    #[test]
    fn slb_never_violates_and_is_all_software() {
        let mut lb = SlbAdapter::new(SlbConfig::default());
        let m = Harness::new(trace(20.0, 2), HarnessConfig::default()).run(&mut lb);
        assert!(m.conns_total > 50);
        assert_eq!(m.pcc_violations, 0, "SLB must be PCC-safe");
        assert!(m.software_traffic_fraction() > 0.99);
        assert!(m.updates > 5);
    }

    #[test]
    fn silkroad_never_violates() {
        let cfg = SilkRoadConfig {
            conn_capacity: 50_000,
            ..Default::default()
        };
        let mut lb = SilkRoadAdapter::new(cfg);
        let m = Harness::new(trace(30.0, 2), HarnessConfig::default()).run(&mut lb);
        assert!(m.conns_total > 50);
        assert_eq!(m.pcc_violations, 0, "SilkRoad must be PCC-safe: {m}");
        assert!(m.software_traffic_fraction() < 0.01);
        assert_eq!(m.drops, 0);
    }

    #[test]
    fn ecmp_violates_heavily_under_updates() {
        let mut lb = EcmpAdapter::new(5);
        let m = Harness::new(trace(30.0, 2), HarnessConfig::default()).run(&mut lb);
        assert!(
            m.violation_fraction() > 0.02,
            "stateless ECMP should break many connections: {m}"
        );
    }

    #[test]
    fn duet_periodic_violates_some_but_less_than_ecmp() {
        let mk = |policy| {
            let mut lb = DuetAdapter::new(DuetConfig { policy, seed: 3 });
            Harness::new(trace(30.0, 3), HarnessConfig::default()).run(&mut lb)
        };
        let duet = mk(MigrationPolicy::Periodic(Duration::from_mins(1)));
        let mut ecmp = EcmpAdapter::new(5);
        let ecmp_m = Harness::new(trace(30.0, 3), HarnessConfig::default()).run(&mut ecmp);
        assert!(
            duet.pcc_violations > 0,
            "periodic Duet should break some: {duet}"
        );
        assert!(
            duet.violation_fraction() < ecmp_m.violation_fraction(),
            "duet {duet} vs ecmp {ecmp_m}"
        );
        assert!(duet.software_traffic_fraction() > 0.01);
    }

    #[test]
    fn duet_wait_pcc_never_violates_but_loads_slb() {
        let mut lb = DuetAdapter::new(DuetConfig {
            policy: MigrationPolicy::WaitPcc,
            seed: 3,
        });
        let m = Harness::new(trace(30.0, 2), HarnessConfig::default()).run(&mut lb);
        assert_eq!(m.pcc_violations, 0, "{m}");
        let mut lb10 = DuetAdapter::new(DuetConfig {
            policy: MigrationPolicy::Periodic(Duration::from_mins(10)),
            seed: 3,
        });
        let m10 = Harness::new(trace(30.0, 2), HarnessConfig::default()).run(&mut lb10);
        // WaitPcc keeps at least as much traffic in SLBs as 10-min periodic.
        assert!(
            m.software_traffic_fraction() >= m10.software_traffic_fraction() * 0.8,
            "waitpcc {m} vs periodic10 {m10}"
        );
    }

    #[test]
    fn determinism() {
        let run = || {
            let mut lb = EcmpAdapter::new(5);
            Harness::new(trace(10.0, 1), HarnessConfig::default()).run(&mut lb)
        };
        let a = run();
        let b = run();
        assert_eq!(a.pcc_violations, b.pcc_violations);
        assert_eq!(a.conns_total, b.conns_total);
        assert_eq!(a.probes, b.probes);
    }

    #[test]
    fn no_updates_no_violations_anywhere() {
        for name in ["silkroad", "duet", "ecmp", "slb"] {
            let m = match name {
                "silkroad" => {
                    let mut lb = SilkRoadAdapter::new(SilkRoadConfig::small_test());
                    Harness::new(trace(0.0, 1), HarnessConfig::default()).run(&mut lb)
                }
                "duet" => {
                    let mut lb = DuetAdapter::new(DuetConfig::default());
                    Harness::new(trace(0.0, 1), HarnessConfig::default()).run(&mut lb)
                }
                "ecmp" => {
                    let mut lb = EcmpAdapter::new(5);
                    Harness::new(trace(0.0, 1), HarnessConfig::default()).run(&mut lb)
                }
                _ => {
                    let mut lb = SlbAdapter::new(SlbConfig::default());
                    Harness::new(trace(0.0, 1), HarnessConfig::default()).run(&mut lb)
                }
            };
            assert_eq!(m.pcc_violations, 0, "{name}: {m}");
            assert_eq!(m.updates, 0, "{name}");
        }
    }
}
