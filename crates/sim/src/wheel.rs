//! Hierarchical timer wheel — O(events due) expiry for millions of
//! in-flight connections.
//!
//! The fleet engine closes flows by deadline. A scan-based expiry pass
//! touches every live flow every tick (O(live) per tick — millions of
//! loads to fire a handful of closes), and a `BinaryHeap` costs a
//! 16-byte entry plus O(log n) re-heapification per event. This wheel
//! is the classic hashed hierarchical design instead:
//!
//! * **4 levels × 256 slots.** Level 0 ticks at 2^24 ns ≈ 16.8 ms;
//!   each higher level is 256× coarser. The wheel natively spans
//!   256^4 ticks ≈ 2.3 years of simulated time; deadlines beyond that
//!   park in the furthest level-3 slot and re-cascade (they never fire
//!   early).
//! * **Intrusive links.** Flows are addressed by their [`FlowStore`]
//!   slot index, so per-flow wheel state is one `u32` link plus the
//!   `u64` deadline — 12 bytes, in two dense arrays indexed by slot.
//!   No per-event allocation, ever.
//! * **O(events due) per advance.** Firing a tick pops one list;
//!   cascading redistributes one coarser slot every 256 ticks. Flows
//!   that never expire inside the run are never touched after
//!   scheduling.
//!
//! Deadlines are bucketed to tick granularity, rounding *up*: a flow
//! fires on the first [`TimerWheel::advance`] whose target tick reaches
//! the deadline rounded up to a tick boundary — never before its exact
//! deadline, at most one tick after (deadlines at or before the current
//! tick fire on the next tick). Within a tick, flows fire in LIFO
//! schedule order — deterministic, like everything else here.
//!
//! [`FlowStore`]: sr_workload::FlowStore

/// No-link sentinel in the intrusive lists.
const NIL: u32 = u32::MAX;

/// log2 of the level-0 tick, in nanoseconds (2^24 ns ≈ 16.8 ms).
pub const GRANULARITY_BITS: u32 = 24;
/// Slots per level (and the per-level fan-out between levels).
pub const SLOTS_PER_LEVEL: u64 = 256;
const LEVELS: usize = 4;
/// Ticks spanned by the wheel before far deadlines start parking.
const SPAN_TICKS: u64 = SLOTS_PER_LEVEL.pow(LEVELS as u32);

/// Hierarchical 4-level timer wheel keyed by dense `u32` ids.
#[derive(Clone, Debug)]
pub struct TimerWheel {
    /// `LEVELS * 256` list heads, flattened (`level * 256 + slot`).
    heads: Vec<u32>,
    /// Intrusive next-links, indexed by id.
    next: Vec<u32>,
    /// Scheduled deadline (ns), indexed by id; needed when cascading.
    deadline: Vec<u64>,
    /// Current tick (absolute, level-0 granularity).
    cur: u64,
    /// Scheduled-but-not-fired events.
    pending: u64,
}

impl TimerWheel {
    /// An empty wheel at tick 0, with room for ids `< cap`.
    pub fn with_capacity(cap: usize) -> TimerWheel {
        TimerWheel {
            heads: vec![NIL; LEVELS * SLOTS_PER_LEVEL as usize],
            next: vec![NIL; cap],
            deadline: vec![0; cap],
            cur: 0,
            pending: 0,
        }
    }

    /// Schedule id `id` to fire once `advance` reaches `deadline_ns`.
    /// Deadlines at or before the current tick fire on the next tick.
    /// `id` must not already be scheduled (ids are flow-store slots;
    /// the engine schedules each exactly once per occupancy).
    pub fn schedule(&mut self, id: u32, deadline_ns: u64) {
        let i = id as usize;
        if i >= self.next.len() {
            let cap = (i + 1).max(self.next.len() * 2).max(64);
            self.next.resize(cap, NIL);
            self.deadline.resize(cap, 0);
        }
        if let Some(d) = self.deadline.get_mut(i) {
            *d = deadline_ns;
        }
        self.insert_at(id, deadline_ns, self.cur + 1);
        self.pending += 1;
    }

    /// Link `id` into the slot for `max(fire_tick(deadline_ns),
    /// min_tick)`. Deadlines round *up* to the next tick boundary, so an
    /// event never fires before its deadline. Cascading passes
    /// `min_tick = cur` (the tick being processed may still fire); fresh
    /// schedules pass `cur + 1`.
    fn insert_at(&mut self, id: u32, deadline_ns: u64, min_tick: u64) {
        let gran = 1u64 << GRANULARITY_BITS;
        let tick =
            (deadline_ns / gran + u64::from(!deadline_ns.is_multiple_of(gran))).max(min_tick);
        let idx = self.slot_index(tick);
        if let (Some(head), Some(link)) = (self.heads.get_mut(idx), self.next.get_mut(id as usize))
        {
            *link = *head;
            *head = id;
        }
    }

    /// The flattened slot for an event at `tick` (> `self.cur`).
    fn slot_index(&self, tick: u64) -> usize {
        let tick = tick.min(self.cur + SPAN_TICKS - 1);
        let delta = tick - self.cur;
        let level = match delta {
            0..=0xff => 0,
            0x100..=0xffff => 1,
            0x1_0000..=0xff_ffff => 2,
            _ => 3,
        };
        let slot = (tick >> (8 * level)) & (SLOTS_PER_LEVEL - 1);
        level as usize * SLOTS_PER_LEVEL as usize + slot as usize
    }

    /// Advance to `now_ns`, calling `fire(id, deadline_ns)` for every
    /// event due. Cost is O(ticks crossed + events due), independent of
    /// how many events remain scheduled.
    pub fn advance(&mut self, now_ns: u64, mut fire: impl FnMut(u32, u64)) {
        let target = now_ns >> GRANULARITY_BITS;
        while self.cur < target {
            self.cur += 1;
            let c = self.cur;
            // Crossing a coarser boundary: pull the matching coarse slot
            // down before firing (its events belong to the next 256 finer
            // ticks, including this one).
            if c & 0xff == 0 {
                if c & 0xffff == 0 {
                    if c & 0xff_ffff == 0 {
                        self.cascade(3, ((c >> 24) & 0xff) as usize);
                    }
                    self.cascade(2, ((c >> 16) & 0xff) as usize);
                }
                self.cascade(1, ((c >> 8) & 0xff) as usize);
            }
            let idx = (c & 0xff) as usize;
            let mut id = self.heads.get(idx).copied().unwrap_or(NIL);
            if let Some(h) = self.heads.get_mut(idx) {
                *h = NIL;
            }
            while id != NIL {
                let i = id as usize;
                let nxt = self.next.get(i).copied().unwrap_or(NIL);
                if let Some(link) = self.next.get_mut(i) {
                    *link = NIL;
                }
                let due = self.deadline.get(i).copied().unwrap_or(0);
                self.pending -= 1;
                fire(id, due);
                id = nxt;
            }
        }
    }

    /// Re-distribute one coarse slot into finer levels.
    fn cascade(&mut self, level: usize, slot: usize) {
        let idx = level * SLOTS_PER_LEVEL as usize + slot;
        let mut id = self.heads.get(idx).copied().unwrap_or(NIL);
        if let Some(h) = self.heads.get_mut(idx) {
            *h = NIL;
        }
        while id != NIL {
            let i = id as usize;
            let nxt = self.next.get(i).copied().unwrap_or(NIL);
            let due = self.deadline.get(i).copied().unwrap_or(0);
            self.insert_at(id, due, self.cur);
            id = nxt;
        }
    }

    /// Current tick (level-0 granularity).
    pub fn current_tick(&self) -> u64 {
        self.cur
    }

    /// Events scheduled and not yet fired.
    pub fn pending(&self) -> u64 {
        self.pending
    }

    /// Heap bytes held (link + deadline arrays plus the fixed slot
    /// heads) — the wheel's entire footprint.
    pub fn allocated_bytes(&self) -> u64 {
        (self.heads.capacity() * 4 + self.next.capacity() * 4 + self.deadline.capacity() * 8) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    const TICK: u64 = 1 << GRANULARITY_BITS;

    /// Oracle semantics: an event scheduled at deadline `d` (while the
    /// wheel sat at tick 0) fires on the first advance whose target tick
    /// reaches `max(ceil(d / TICK), 1)`.
    #[test]
    fn matches_binary_heap_oracle_under_random_advances() {
        let mut rng = SmallRng::seed_from_u64(0x5eed);
        let mut wheel = TimerWheel::with_capacity(64);
        let mut oracle: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
        let n = 5_000u32;
        for id in 0..n {
            // Mix of near (same tick), mid (minutes) and far deadlines.
            let d = match id % 5 {
                0 => rng.gen_range(0..TICK * 2),
                4 => rng.gen_range(TICK * 100_000..TICK * 200_000),
                _ => rng.gen_range(0..TICK * 4_000),
            };
            wheel.schedule(id, d);
            oracle.push(Reverse(((d / TICK + u64::from(d % TICK != 0)).max(1), id)));
        }
        assert_eq!(wheel.pending(), u64::from(n));
        let mut now = 0u64;
        while wheel.pending() > 0 {
            now += rng.gen_range(1..TICK * 700);
            let mut fired: Vec<u32> = Vec::new();
            wheel.advance(now, |id, _| fired.push(id));
            let mut expect: Vec<u32> = Vec::new();
            while let Some(&Reverse((t, id))) = oracle.peek() {
                if t <= now >> GRANULARITY_BITS {
                    expect.push(id);
                    oracle.pop();
                } else {
                    break;
                }
            }
            fired.sort_unstable();
            expect.sort_unstable();
            assert_eq!(fired, expect, "at now={now}");
        }
        assert!(oracle.is_empty());
    }

    #[test]
    fn fires_with_bucketed_deadline_not_early() {
        let mut w = TimerWheel::with_capacity(4);
        w.schedule(0, TICK * 10 + 5);
        let mut fired = Vec::new();
        w.advance(TICK * 10 + 4, |id, d| fired.push((id, d)));
        assert!(fired.is_empty(), "tick 10 not reached yet");
        w.advance(TICK * 11, |id, d| fired.push((id, d)));
        assert_eq!(fired, [(0, TICK * 10 + 5)], "deadline passes through");
    }

    #[test]
    fn past_deadlines_fire_next_tick() {
        let mut w = TimerWheel::with_capacity(4);
        w.advance(TICK * 100, |_, _| panic!("nothing scheduled"));
        w.schedule(1, 0);
        w.schedule(2, TICK * 100); // == current tick
        let mut fired = Vec::new();
        w.advance(TICK * 101, |id, _| fired.push(id));
        fired.sort_unstable();
        assert_eq!(fired, [1, 2]);
    }

    #[test]
    fn far_deadlines_park_without_firing() {
        let mut w = TimerWheel::with_capacity(4);
        // Beyond the native span (~2.3 years): must park, not wrap into
        // an early slot.
        w.schedule(0, TICK * (SPAN_TICKS * 3));
        let mut fired = Vec::new();
        w.advance(TICK * 2_000_000, |id, _| fired.push(id));
        assert!(fired.is_empty());
        assert_eq!(w.pending(), 1);
    }

    #[test]
    fn twelve_bytes_per_id_plus_fixed_slots() {
        let w = TimerWheel::with_capacity(1_000);
        assert_eq!(w.allocated_bytes(), 12 * 1_000 + 4 * 4 * 256);
    }
}
