//! A live fabric of SilkRoad switches (§5.3 + §7 end-to-end).
//!
//! [`SilkRoadFabric`] instantiates one [`SilkRoadSwitch`] per
//! SilkRoad-enabled switch in a [`Topology`], assigns each VIP to a layer,
//! and sprays that VIP's connections across the layer's switches with
//! *resilient* hashing (so a switch failure only re-sprays the failed
//! switch's flows). All switches share one configuration seed, so they
//! compute identical VIPTable-path mappings — which is exactly why §7's
//! failover preserves PCC for connections on the latest pool version: the
//! takeover switch's miss path reproduces the failed switch's decision.

use crate::topo::{Layer, Topology};
use silkroad::{ForwardDecision, PoolUpdate, SilkRoadConfig, SilkRoadSwitch};
use sr_hash::resilient::ResilientTable;
use sr_types::{Dip, FiveTuple, Nanos, PacketMeta, SwitchId, TypeError, Vip};
use std::collections::HashMap;

struct LayerState {
    members: Vec<SwitchId>,
    spray: ResilientTable,
}

/// The fabric.
///
/// ```
/// use sr_netwide::{Layer, SilkRoadFabric, Topology};
/// use silkroad::SilkRoadConfig;
/// use sr_types::{Addr, Dip, Nanos, PacketMeta, FiveTuple, Vip};
///
/// let topo = Topology::clos(4, 2, 2, 50 << 20, 6400.0);
/// let mut fabric = SilkRoadFabric::new(&topo, &SilkRoadConfig::small_test());
/// let vip = Vip(Addr::v4(20, 0, 0, 1, 80));
/// fabric.assign_vip(vip, vec![Dip(Addr::v4(10, 0, 0, 1, 20))], Layer::ToR).unwrap();
/// let conn = FiveTuple::tcp(Addr::v4(1, 2, 3, 4, 999), vip.0);
/// let (switch, decision) = fabric.process_packet(&PacketMeta::syn(conn), Nanos::ZERO).unwrap();
/// assert!(decision.dip.is_some());
/// assert_eq!(fabric.switch_for(&conn), Some(switch));
/// ```
pub struct SilkRoadFabric {
    switches: HashMap<SwitchId, SilkRoadSwitch>,
    layers: HashMap<Layer, LayerState>,
    layer_of_vip: HashMap<Vip, Layer>,
    /// Switch failures so far.
    pub failures: u64,
}

impl SilkRoadFabric {
    /// Build the fabric: one switch per SilkRoad-enabled position. Every
    /// switch uses the same `cfg` (and crucially the same seed).
    pub fn new(topo: &Topology, cfg: &SilkRoadConfig) -> SilkRoadFabric {
        let mut switches = HashMap::new();
        let mut layers = HashMap::new();
        for layer in Layer::ALL {
            let members: Vec<SwitchId> = topo.enabled_at(layer).iter().map(|s| s.id).collect();
            if members.is_empty() {
                continue;
            }
            for id in &members {
                switches.insert(*id, SilkRoadSwitch::new(cfg.clone()));
            }
            let spray = ResilientTable::new(members.len(), members.len() * 64, cfg.seed);
            layers.insert(layer, LayerState { members, spray });
        }
        SilkRoadFabric {
            switches,
            layers,
            layer_of_vip: HashMap::new(),
            failures: 0,
        }
    }

    /// Number of live switches.
    pub fn live_switches(&self) -> usize {
        self.switches.len()
    }

    /// Assign a VIP to a layer: it is registered on every switch of that
    /// layer ("each switch announces routes for all the VIPs").
    pub fn assign_vip(&mut self, vip: Vip, dips: Vec<Dip>, layer: Layer) -> Result<(), TypeError> {
        let state = self.layers.get(&layer).ok_or(TypeError::NotFound {
            what: "layer has no SilkRoad switches",
        })?;
        for id in &state.members {
            if let Some(sw) = self.switches.get_mut(id) {
                sw.add_vip(vip, dips.clone())?;
            }
        }
        self.layer_of_vip.insert(vip, layer);
        Ok(())
    }

    /// The switch a connection's packets land on right now.
    pub fn switch_for(&self, tuple: &FiveTuple) -> Option<SwitchId> {
        let layer = self.layer_of_vip.get(&Vip(tuple.dst))?;
        let state = self.layers.get(layer)?;
        let member = state.spray.select(tuple.tuple_key().as_slice())?;
        let id = state.members[member];
        self.switches.contains_key(&id).then_some(id)
    }

    /// Process a packet on whichever switch ECMP sprays it to.
    pub fn process_packet(
        &mut self,
        pkt: &PacketMeta,
        now: Nanos,
    ) -> Option<(SwitchId, ForwardDecision)> {
        let id = self.switch_for(&pkt.tuple)?;
        let sw = self.switches.get_mut(&id)?;
        Some((id, sw.process_packet(pkt, now)))
    }

    /// Apply a DIP-pool update to every switch serving the VIP (the paper:
    /// "all the switches use the same latest VIPTable").
    pub fn request_update(
        &mut self,
        vip: Vip,
        op: PoolUpdate,
        now: Nanos,
    ) -> Result<(), TypeError> {
        let layer = self
            .layer_of_vip
            .get(&vip)
            .ok_or(TypeError::NotFound { what: "VIP" })?;
        let members = self.layers[layer].members.clone();
        for id in members {
            if let Some(sw) = self.switches.get_mut(&id) {
                sw.request_update(vip, op, now)?;
            }
        }
        Ok(())
    }

    /// Run every switch's control plane up to `now`.
    pub fn advance(&mut self, now: Nanos) {
        for sw in self.switches.values_mut() {
            sw.advance(now);
        }
    }

    /// A connection ended; tell the switch that owns it.
    pub fn close_connection(&mut self, tuple: &FiveTuple, now: Nanos) {
        if let Some(id) = self.switch_for(tuple) {
            if let Some(sw) = self.switches.get_mut(&id) {
                sw.close_connection(tuple, now);
            }
        }
    }

    /// Kill a switch: its ConnTable is lost and its flows re-spray onto the
    /// layer's survivors (resilient hashing: only its flows move).
    pub fn fail_switch(&mut self, id: SwitchId) -> bool {
        if self.switches.remove(&id).is_none() {
            return false;
        }
        self.failures += 1;
        for state in self.layers.values_mut() {
            if let Some(member) = state.members.iter().position(|m| *m == id) {
                state.spray.fail_member(member);
            }
        }
        true
    }

    /// Borrow one switch (stats, memory).
    pub fn switch(&self, id: SwitchId) -> Option<&SilkRoadSwitch> {
        self.switches.get(&id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_types::{Addr, Duration};

    fn vip() -> Vip {
        Vip(Addr::v4(20, 0, 0, 1, 80))
    }

    fn dips() -> Vec<Dip> {
        (1..=8).map(|i| Dip(Addr::v4(10, 0, 0, i, 20))).collect()
    }

    fn conn(i: u32) -> FiveTuple {
        FiveTuple::tcp(Addr::v4_indexed(1, i, 30_000), Addr::v4(20, 0, 0, 1, 80))
    }

    fn fabric() -> SilkRoadFabric {
        let topo = Topology::clos(4, 2, 2, 50 << 20, 6400.0);
        let mut f = SilkRoadFabric::new(&topo, &SilkRoadConfig::small_test());
        f.assign_vip(vip(), dips(), Layer::ToR).unwrap();
        f
    }

    #[test]
    fn spraying_is_deterministic_and_spread() {
        let mut f = fabric();
        let mut per_switch: HashMap<SwitchId, u32> = HashMap::new();
        for i in 0..400 {
            let (id, d) = f
                .process_packet(&PacketMeta::syn(conn(i)), Nanos::ZERO)
                .unwrap();
            assert!(d.dip.is_some());
            *per_switch.entry(id).or_insert(0) += 1;
            // Same connection always lands on the same switch.
            assert_eq!(f.switch_for(&conn(i)), Some(id));
        }
        assert_eq!(per_switch.len(), 4, "should use all 4 ToR switches");
    }

    #[test]
    fn updates_reach_every_switch_consistently() {
        let mut f = fabric();
        let mut t = Nanos::ZERO;
        let mut assigned = Vec::new();
        for i in 0..400 {
            assigned.push(
                f.process_packet(&PacketMeta::syn(conn(i)), t)
                    .unwrap()
                    .1
                    .dip,
            );
            t += Duration::from_micros(50);
        }
        t += Duration::from_millis(50);
        f.advance(t);
        f.request_update(vip(), PoolUpdate::Remove(Dip(Addr::v4(10, 0, 0, 3, 20))), t)
            .unwrap();
        t += Duration::from_millis(50);
        f.advance(t);
        // Installed connections keep their mapping on their own switch.
        for (i, before) in assigned.iter().enumerate() {
            let (_, d) = f
                .process_packet(&PacketMeta::data(conn(i as u32), 800), t)
                .unwrap();
            assert_eq!(d.dip, *before, "conn {i} moved during fabric-wide update");
        }
        // New connections avoid the removed DIP on every switch.
        for i in 1000..1200 {
            let (_, d) = f.process_packet(&PacketMeta::syn(conn(i)), t).unwrap();
            assert_ne!(d.dip, Some(Dip(Addr::v4(10, 0, 0, 3, 20))));
        }
    }

    #[test]
    fn switch_failure_preserves_latest_version_conns() {
        let mut f = fabric();
        let mut t = Nanos::ZERO;
        // Install a population, all on the (only) current version.
        let mut before = HashMap::new();
        for i in 0..600u32 {
            let (id, d) = f.process_packet(&PacketMeta::syn(conn(i)), t).unwrap();
            before.insert(i, (id, d.dip.unwrap()));
            t += Duration::from_micros(20);
        }
        t += Duration::from_millis(50);
        f.advance(t);

        // Kill the switch hosting conn 0.
        let victim = before[&0].0;
        assert!(f.fail_switch(victim));
        assert!(!f.fail_switch(victim), "double failure is a no-op");
        assert_eq!(f.live_switches(), 7);

        let mut moved_switch = 0;
        for i in 0..600u32 {
            let (id0, dip0) = before[&i];
            let (id1, d) = f
                .process_packet(&PacketMeta::data(conn(i), 800), t)
                .unwrap();
            if id0 == victim {
                moved_switch += 1;
                assert_ne!(id1, victim);
                // Latest-version connection: the takeover switch's miss
                // path computes the same DIP — PCC preserved (§7).
                assert_eq!(d.dip, Some(dip0), "conn {i} remapped after failover");
            } else {
                assert_eq!(id1, id0, "resilient spray moved an unaffected flow");
                assert_eq!(d.dip, Some(dip0));
            }
        }
        assert!(
            moved_switch > 50,
            "victim hosted too few flows: {moved_switch}"
        );
    }

    #[test]
    fn old_version_conns_are_at_risk_on_failover() {
        let mut f = fabric();
        let mut t = Nanos::ZERO;
        // Install a population, then update the pool so these become
        // old-version connections.
        let mut before = HashMap::new();
        for i in 0..600u32 {
            let (id, d) = f.process_packet(&PacketMeta::syn(conn(i)), t).unwrap();
            before.insert(i, (id, d.dip.unwrap()));
            t += Duration::from_micros(20);
        }
        t += Duration::from_millis(50);
        f.advance(t);
        f.request_update(vip(), PoolUpdate::Remove(Dip(Addr::v4(10, 0, 0, 5, 20))), t)
            .unwrap();
        t += Duration::from_millis(50);
        f.advance(t);

        let victim = before[&0].0;
        f.fail_switch(victim);
        let mut remapped = 0;
        let mut survived = 0;
        for i in 0..600u32 {
            let (id0, dip0) = before[&i];
            if id0 != victim {
                continue;
            }
            let (_, d) = f
                .process_packet(&PacketMeta::data(conn(i), 800), t)
                .unwrap();
            if d.dip == Some(dip0) {
                survived += 1;
            } else {
                remapped += 1;
            }
        }
        // Old-version connections on the failed switch may break (their
        // state is gone and the new pool hashes differently) — but most
        // survive because most hash positions coincide.
        assert!(remapped > 0, "expected some §7 failover breakage");
        assert!(
            survived > remapped,
            "survived {survived} vs remapped {remapped}"
        );
    }

    #[test]
    fn unknown_vip_and_empty_layer() {
        let topo = Topology::clos(2, 0, 0, 1 << 20, 100.0);
        let mut f = SilkRoadFabric::new(&topo, &SilkRoadConfig::small_test());
        assert!(
            f.assign_vip(vip(), dips(), Layer::Core).is_err(),
            "no Core switches exist"
        );
        let other = FiveTuple::tcp(Addr::v4(1, 1, 1, 1, 1), Addr::v4(9, 9, 9, 9, 53));
        assert!(f
            .process_packet(&PacketMeta::syn(other), Nanos::ZERO)
            .is_none());
    }
}
