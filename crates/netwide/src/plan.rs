//! Measured-occupancy SRAM-fit planning.
//!
//! Fig 12's SRAM figures are *analytic*: each cluster's provisioning
//! target (`conns_per_tor_p99`) feeds the [`silkroad::memory`] model
//! directly. The fleet engine (`sr-sim`'s `run_fleet`) gives us a second,
//! *measured* route to the same question: it actually holds a scaled-down
//! live population per cluster and reports each cluster's peak occupancy.
//! This module maps those measured peaks back onto paper scale and asks
//! the deployment question again — how many clusters fit a per-switch
//! SRAM budget when sized from what the engine *held*, rather than from
//! the synthesis formula?
//!
//! The scale factor is fleet-wide: the measured run targets some total
//! live-connection count, so every cluster's peak is multiplied by
//! `Σ total_conns_p99 / Σ measured_peak` before being divided across the
//! cluster's ToRs. Skews the engine introduces (arrival jitter, storm
//! windows, heavy-tailed residuals) therefore survive into the fit check,
//! which is the point — a planner should tolerate the occupancy the
//! system exhibits, not the occupancy the formula promises.

use silkroad::memory::{cost, MemoryDesign, MemoryInputs};
use sr_workload::dists::percentile;
use sr_workload::ClusterSpec;

/// The committed SilkRoad table layout (16-bit digests, 6-bit versions),
/// matching Fig 12/14's headline design.
const DESIGN: MemoryDesign = MemoryDesign::DigestVersion {
    digest_bits: 16,
    version_bits: 6,
};

/// One SRAM-fit check over measured per-cluster occupancy.
#[derive(Clone, Debug)]
pub struct SramFitReport {
    /// Per-switch SRAM budget the fit was checked against, MB.
    pub budget_mb: f64,
    /// Clusters considered.
    pub clusters: usize,
    /// Clusters whose worst ToR fits the budget.
    pub fitting: usize,
    /// Median per-ToR SRAM across clusters, MB.
    pub median_mb: f64,
    /// The worst cluster's per-ToR SRAM, MB.
    pub max_mb: f64,
    /// The fleet-wide scale factor applied to measured peaks.
    pub scale: f64,
}

impl SramFitReport {
    /// Whether every cluster fits the budget.
    pub fn all_fit(&self) -> bool {
        self.fitting == self.clusters
    }
}

/// Per-ToR SRAM (MB) for one cluster holding `conns_per_tor` measured
/// connections, under the committed table layout.
fn tor_mb(spec: &ClusterSpec, conns_per_tor: u64) -> f64 {
    cost(
        DESIGN,
        &MemoryInputs {
            connections: conns_per_tor,
            vips: spec.vips as u64,
            // Every live version re-lists the pool members it holds.
            total_pool_members: spec.total_dips() * spec.live_versions_per_vip as u64,
            pool_rows: spec.vips as u64 * spec.live_versions_per_vip as u64,
            family: spec.family,
        },
    )
    .total_mb()
}

/// Check how many clusters fit `budget_mb` of per-switch SRAM when sized
/// from `measured_peak` (one peak-occupancy sample per cluster, indexed
/// like `specs`). Peaks are scaled fleet-wide to paper occupancy before
/// the per-ToR division; missing entries count as zero occupancy.
pub fn sram_fit(specs: &[ClusterSpec], measured_peak: &[u64], budget_mb: f64) -> SramFitReport {
    let paper_total: u64 = specs.iter().map(|s| s.total_conns_p99()).sum();
    let measured_total: u64 = measured_peak.iter().sum();
    let scale = paper_total as f64 / measured_total.max(1) as f64;
    let mut mbs: Vec<f64> = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let peak = measured_peak.get(i).copied().unwrap_or(0);
            let per_tor = (peak as f64 * scale / spec.tors.max(1) as f64) as u64;
            tor_mb(spec, per_tor)
        })
        .collect();
    let fitting = mbs.iter().filter(|&&m| m <= budget_mb).count();
    mbs.sort_by(f64::total_cmp);
    SramFitReport {
        budget_mb,
        clusters: specs.len(),
        fitting,
        median_mb: percentile(&mbs, 50.0),
        max_mb: mbs.last().copied().unwrap_or(0.0),
        scale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_workload::{synthesize_fleet, FleetConfig};

    #[test]
    fn exact_formula_occupancy_matches_fig12_fit() {
        // Feeding the synthesis targets back in as "measurements" (scale
        // factor 1) must reproduce the Fig 12 deployment claim: every
        // cluster fits modern 100 MB SRAM, not the 2012-era 15 MB.
        let fleet = synthesize_fleet(FleetConfig::default());
        let peaks: Vec<u64> = fleet.iter().map(|c| c.total_conns_p99()).collect();
        let fit = sram_fit(&fleet, &peaks, 100.0);
        assert!((fit.scale - 1.0).abs() < 1e-9, "scale {}", fit.scale);
        assert_eq!(fit.clusters, fleet.len());
        assert!(fit.all_fit(), "{}/{} fit", fit.fitting, fit.clusters);
        let tight = sram_fit(&fleet, &peaks, 15.0);
        assert!(!tight.all_fit(), "15 MB should not fit every cluster");
        assert!(fit.max_mb > fit.median_mb);
    }

    #[test]
    fn scaled_down_measurements_are_mapped_back_up() {
        // A run holding 1/1000th of the fleet's connections must produce
        // the same fit verdict as the full-occupancy check.
        let fleet = synthesize_fleet(FleetConfig::default());
        let full: Vec<u64> = fleet.iter().map(|c| c.total_conns_p99()).collect();
        let small: Vec<u64> = full.iter().map(|p| (p / 1000).max(1)).collect();
        let a = sram_fit(&fleet, &full, 100.0);
        let b = sram_fit(&fleet, &small, 100.0);
        assert_eq!(a.fitting, b.fitting);
        assert!(b.scale > 900.0 && b.scale < 1100.0, "scale {}", b.scale);
        // Per-ToR conns differ only by integer truncation of tiny peaks.
        assert!((a.max_mb - b.max_mb).abs() / a.max_mb < 0.05);
    }
}
