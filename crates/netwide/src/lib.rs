//! Network-wide SilkRoad deployment (§5.3, §7).
//!
//! A single SilkRoad handles one switch's worth of connections; a data
//! center deploys it across a Clos fabric and must decide **which layer
//! serves each VIP** ("rather than blindly serving a VIP traffic at the
//! first hop switch, we can decide which layer (e.g., ToR, aggregation,
//! and core) to handle a specific VIP and thus split traffic across
//! multiple switches").
//!
//! * [`topo`] — the Clos fabric model with per-switch SRAM budgets;
//! * [`assign`] — the VIP-to-layer assignment as a greedy bin-packing that
//!   minimizes the maximum SRAM utilization subject to forwarding capacity,
//!   with incremental-deployment support (only SilkRoad-enabled switches
//!   count);
//! * [`failover`] — the §7 switch-failure analysis: connections on the
//!   newest pool version survive re-ECMP to surviving switches, old-version
//!   connections are the PCC casualties;
//! * [`plan`] — the measured-occupancy SRAM-fit check: per-cluster peak
//!   occupancy observed by the fleet engine, scaled back to paper load,
//!   against a per-switch SRAM budget.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assign;
pub mod fabric;
pub mod failover;
pub mod plan;
pub mod topo;

pub use assign::{assign_vips, Assignment, VipDemand};
pub use fabric::SilkRoadFabric;
pub use failover::{switch_failure_impact, FailoverReport};
pub use plan::{sram_fit, SramFitReport};
pub use topo::{Layer, Switch, Topology};
