//! VIP-to-layer assignment (§5.3).
//!
//! "The adaptive VIP assignment problem can be formulated as a bin-packing
//! problem... The objective is to find the VIP-to-layer assignment that
//! minimizes the maximum SRAM utilization across switches while not
//! exceeding the forwarding capacity and SRAM budget at each switch."
//!
//! Assigning a VIP to a layer splits its traffic and connection state
//! evenly (via ECMP) across that layer's SilkRoad-enabled switches. We use
//! greedy first-fit-decreasing: VIPs in decreasing memory order, each
//! placed on the feasible layer that minimizes the resulting maximum SRAM
//! utilization. Bin-packing is NP-hard; FFD is the standard 11/9-OPT
//! heuristic and matches the paper's "can be formulated as" framing.

use crate::topo::{Layer, Topology};
use sr_types::{TypeError, VipId};
use std::collections::HashMap;

/// One VIP's resource demand.
#[derive(Clone, Copy, Debug)]
pub struct VipDemand {
    /// VIP id.
    pub vip: VipId,
    /// Peak traffic, Gbit/s.
    pub traffic_gbps: f64,
    /// ConnTable bytes its connections need.
    pub memory_bytes: u64,
}

/// The result of an assignment.
#[derive(Clone, Debug)]
pub struct Assignment {
    /// Chosen layer per VIP.
    pub layer_of: HashMap<VipId, Layer>,
    /// SRAM utilization per layer (fraction of per-switch budget used on
    /// each switch of that layer).
    pub sram_utilization: HashMap<Layer, f64>,
    /// Traffic utilization per layer.
    pub traffic_utilization: HashMap<Layer, f64>,
}

impl Assignment {
    /// The maximum per-switch SRAM utilization — the objective value.
    pub fn max_sram_utilization(&self) -> f64 {
        self.sram_utilization
            .values()
            .fold(0.0f64, |a, b| a.max(*b))
    }
}

struct LayerState {
    layer: Layer,
    switches: f64,
    sram_budget: f64,
    capacity_gbps: f64,
    used_sram: f64,
    used_gbps: f64,
}

impl LayerState {
    fn utilization_with(&self, mem: f64) -> f64 {
        (self.used_sram + mem) / (self.switches * self.sram_budget)
    }

    fn fits(&self, mem: f64, gbps: f64) -> bool {
        self.used_sram + mem <= self.switches * self.sram_budget
            && self.used_gbps + gbps <= self.switches * self.capacity_gbps
    }
}

/// Assign every VIP to a layer. Fails if some VIP fits no layer.
pub fn assign_vips(topo: &Topology, demands: &[VipDemand]) -> Result<Assignment, TypeError> {
    let mut layers: Vec<LayerState> = Layer::ALL
        .iter()
        .filter_map(|&layer| {
            let enabled = topo.enabled_at(layer);
            if enabled.is_empty() {
                return None;
            }
            // Homogeneous per-layer budgets: take the minimum to stay safe
            // with heterogeneous switches.
            let sram = enabled.iter().map(|s| s.sram_budget).min().unwrap_or(0);
            let cap = enabled
                .iter()
                .map(|s| s.capacity_gbps)
                .fold(f64::INFINITY, f64::min);
            Some(LayerState {
                layer,
                switches: enabled.len() as f64,
                sram_budget: sram as f64,
                capacity_gbps: cap,
                used_sram: 0.0,
                used_gbps: 0.0,
            })
        })
        .collect();
    if layers.is_empty() {
        return Err(TypeError::InvalidState {
            what: "no SilkRoad-enabled switches",
        });
    }

    let mut order: Vec<&VipDemand> = demands.iter().collect();
    order.sort_by_key(|d| std::cmp::Reverse(d.memory_bytes));

    let mut layer_of = HashMap::new();
    for d in order {
        let mem = d.memory_bytes as f64;
        let best = layers
            .iter_mut()
            .filter(|l| l.fits(mem, d.traffic_gbps))
            .min_by(|a, b| a.utilization_with(mem).total_cmp(&b.utilization_with(mem)));
        match best {
            Some(l) => {
                l.used_sram += mem;
                l.used_gbps += d.traffic_gbps;
                layer_of.insert(d.vip, l.layer);
            }
            None => {
                return Err(TypeError::CapacityExceeded {
                    what: "no layer can host VIP",
                })
            }
        }
    }

    let mut sram_utilization = HashMap::new();
    let mut traffic_utilization = HashMap::new();
    for l in &layers {
        sram_utilization.insert(l.layer, l.used_sram / (l.switches * l.sram_budget));
        traffic_utilization.insert(l.layer, l.used_gbps / (l.switches * l.capacity_gbps));
    }
    Ok(Assignment {
        layer_of,
        sram_utilization,
        traffic_utilization,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(i: u32, gbps: f64, mem_mb: u64) -> VipDemand {
        VipDemand {
            vip: VipId(i),
            traffic_gbps: gbps,
            memory_bytes: mem_mb << 20,
        }
    }

    #[test]
    fn all_vips_assigned_and_balanced() {
        let topo = Topology::clos(16, 8, 4, 50 << 20, 6400.0);
        let demands: Vec<VipDemand> = (0..100).map(|i| demand(i, 5.0, 10)).collect();
        let a = assign_vips(&topo, &demands).unwrap();
        assert_eq!(a.layer_of.len(), 100);
        // Total memory 1000 MB over 28 switches x 50 MB = 71% if evenly
        // spread; max layer utilization must be sane.
        assert!(a.max_sram_utilization() <= 1.0);
        assert!(a.max_sram_utilization() > 0.5);
    }

    #[test]
    fn big_vip_lands_on_wide_layer() {
        // A huge VIP only fits the ToR layer (most aggregate SRAM).
        let topo = Topology::clos(32, 2, 2, 10 << 20, 6400.0);
        let demands = vec![demand(0, 1.0, 200)]; // 200 MB: needs ≥20 switches
        let a = assign_vips(&topo, &demands).unwrap();
        assert_eq!(a.layer_of[&VipId(0)], Layer::ToR);
    }

    #[test]
    fn infeasible_demand_rejected() {
        let topo = Topology::clos(2, 2, 2, 1 << 20, 100.0);
        let demands = vec![demand(0, 1.0, 1000)];
        assert!(assign_vips(&topo, &demands).is_err());
    }

    #[test]
    fn capacity_constraint_enforced() {
        let topo = Topology::clos(2, 0, 0, 1 << 30, 10.0); // tiny capacity
        let demands = vec![demand(0, 100.0, 1)];
        assert!(assign_vips(&topo, &demands).is_err());
    }

    #[test]
    fn incremental_deployment_respected() {
        let mut topo = Topology::clos(4, 0, 0, 10 << 20, 1000.0);
        for s in topo.switches_mut() {
            s.silkroad_enabled = false;
        }
        let demands = vec![demand(0, 1.0, 1)];
        assert!(assign_vips(&topo, &demands).is_err());
        // Enable one switch: fits again.
        topo.switches_mut()[0].silkroad_enabled = true;
        assert!(assign_vips(&topo, &demands).is_ok());
    }

    #[test]
    fn spreads_to_minimize_max_utilization() {
        // Two layers with equal budget; 2 equal VIPs should not pile onto
        // one layer.
        let topo = Topology::clos(4, 4, 0, 10 << 20, 6400.0);
        let demands = vec![demand(0, 1.0, 20), demand(1, 1.0, 20)];
        let a = assign_vips(&topo, &demands).unwrap();
        assert_ne!(a.layer_of[&VipId(0)], a.layer_of[&VipId(1)]);
    }
}
