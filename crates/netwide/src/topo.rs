//! The Clos fabric model.

use sr_types::SwitchId;

/// Fabric layer a switch sits at.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Layer {
    /// Top-of-rack.
    ToR,
    /// Aggregation.
    Agg,
    /// Core / spine.
    Core,
}

impl Layer {
    /// All layers.
    pub const ALL: [Layer; 3] = [Layer::ToR, Layer::Agg, Layer::Core];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Layer::ToR => "ToR",
            Layer::Agg => "Agg",
            Layer::Core => "Core",
        }
    }
}

/// One switch.
#[derive(Clone, Copy, Debug)]
pub struct Switch {
    /// Fabric-unique id.
    pub id: SwitchId,
    /// Layer.
    pub layer: Layer,
    /// SRAM budget the operator allows load balancing to use, bytes.
    pub sram_budget: u64,
    /// Forwarding capacity, Gbit/s.
    pub capacity_gbps: f64,
    /// Whether SilkRoad is enabled here (incremental deployment).
    pub silkroad_enabled: bool,
}

/// A Clos fabric.
#[derive(Clone, Debug)]
pub struct Topology {
    switches: Vec<Switch>,
}

impl Topology {
    /// Build a fabric from explicit switches.
    pub fn new(switches: Vec<Switch>) -> Topology {
        Topology { switches }
    }

    /// A regular 3-layer Clos: `tors`/`aggs`/`cores` switches with the
    /// given per-switch SRAM budget (bytes) and capacity (Gbit/s).
    pub fn clos(
        tors: u32,
        aggs: u32,
        cores: u32,
        sram_budget: u64,
        capacity_gbps: f64,
    ) -> Topology {
        let mut switches = Vec::new();
        let mut id = 0u32;
        for (n, layer) in [(tors, Layer::ToR), (aggs, Layer::Agg), (cores, Layer::Core)] {
            for _ in 0..n {
                switches.push(Switch {
                    id: SwitchId(id),
                    layer,
                    sram_budget,
                    capacity_gbps,
                    silkroad_enabled: true,
                });
                id += 1;
            }
        }
        Topology { switches }
    }

    /// All switches.
    pub fn switches(&self) -> &[Switch] {
        &self.switches
    }

    /// Mutable switch access (enable/disable SilkRoad, budgets).
    pub fn switches_mut(&mut self) -> &mut [Switch] {
        &mut self.switches
    }

    /// SilkRoad-enabled switches of one layer.
    pub fn enabled_at(&self, layer: Layer) -> Vec<&Switch> {
        self.switches
            .iter()
            .filter(|s| s.layer == layer && s.silkroad_enabled)
            .collect()
    }

    /// Number of SilkRoad-enabled switches of one layer.
    pub fn enabled_count(&self, layer: Layer) -> usize {
        self.enabled_at(layer).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clos_builds_layers() {
        let t = Topology::clos(8, 4, 2, 50 << 20, 6400.0);
        assert_eq!(t.switches().len(), 14);
        assert_eq!(t.enabled_count(Layer::ToR), 8);
        assert_eq!(t.enabled_count(Layer::Agg), 4);
        assert_eq!(t.enabled_count(Layer::Core), 2);
        // Unique ids.
        let mut ids: Vec<u32> = t.switches().iter().map(|s| s.id.0).collect();
        ids.dedup();
        assert_eq!(ids.len(), 14);
    }

    #[test]
    fn incremental_deployment_filters() {
        let mut t = Topology::clos(4, 2, 2, 1 << 20, 100.0);
        t.switches_mut()[0].silkroad_enabled = false;
        assert_eq!(t.enabled_count(Layer::ToR), 3);
    }

    #[test]
    fn layer_names() {
        assert_eq!(Layer::ToR.name(), "ToR");
        assert_eq!(Layer::Core.name(), "Core");
        assert_eq!(Layer::ALL.len(), 3);
    }
}
