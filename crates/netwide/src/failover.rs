//! Switch-failure handling (§7, "Handle switch failures").
//!
//! "If a SilkRoad switch fails, the existing connections on this switch get
//! redirected to other switches via ECMP and get load balanced there
//! because all the switches use the same latest VIPTable. Thus if a
//! connection was using the latest version of VIPTable at the failed
//! switch, it would get the same VIPTable at the new switch and thus ensure
//! PCC. However, since we lose the ConnTable at the failed switch, those
//! connections that used an old DIP pool version may break PCC."
//!
//! This module quantifies that: given the per-version connection breakdown
//! of a failed switch, how many connections survive re-spraying.

use sr_hash::HashFn;
use sr_types::{FiveTuple, PoolVersion};

/// Impact of one switch failure.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FailoverReport {
    /// Connections that were on the failed switch.
    pub affected: u64,
    /// Connections pinned to the newest version — PCC preserved after
    /// re-ECMP (the surviving switch computes the same mapping).
    pub preserved: u64,
    /// Connections pinned to older versions — their state is lost and the
    /// new switch maps them with the newest version: potential breakage.
    pub at_risk: u64,
}

impl FailoverReport {
    /// Fraction of affected connections at risk.
    pub fn at_risk_fraction(&self) -> f64 {
        if self.affected == 0 {
            0.0
        } else {
            self.at_risk as f64 / self.affected as f64
        }
    }
}

/// Analyse a failed switch's connection population: `conns_by_version` maps
/// pool versions to connection counts, `newest` is the VIP's current
/// version.
pub fn switch_failure_impact(
    conns_by_version: &[(PoolVersion, u64)],
    newest: PoolVersion,
) -> FailoverReport {
    let mut r = FailoverReport::default();
    for (v, n) in conns_by_version {
        r.affected += n;
        if *v == newest {
            r.preserved += n;
        } else {
            r.at_risk += n;
        }
    }
    r
}

/// Re-spray a failed switch's flows across `survivors` switches via ECMP
/// (used by the failover example/bench to pick the takeover switch).
pub fn respray_switch(tuple: &FiveTuple, survivors: usize, seed: u64) -> Option<usize> {
    sr_hash::ecmp_select(
        HashFn::new(seed ^ 0xfa11).hash(tuple.tuple_key().as_slice()),
        survivors,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_types::Addr;

    #[test]
    fn latest_version_conns_survive() {
        let newest = PoolVersion(3);
        let r = switch_failure_impact(
            &[
                (PoolVersion(3), 900),
                (PoolVersion(2), 80),
                (PoolVersion(1), 20),
            ],
            newest,
        );
        assert_eq!(r.affected, 1000);
        assert_eq!(r.preserved, 900);
        assert_eq!(r.at_risk, 100);
        assert!((r.at_risk_fraction() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_population() {
        let r = switch_failure_impact(&[], PoolVersion(0));
        assert_eq!(r, FailoverReport::default());
        assert_eq!(r.at_risk_fraction(), 0.0);
    }

    #[test]
    fn respray_is_deterministic_and_in_range() {
        let t = FiveTuple::tcp(Addr::v4(1, 2, 3, 4, 99), Addr::v4(20, 0, 0, 1, 80));
        let a = respray_switch(&t, 7, 1).unwrap();
        assert!(a < 7);
        assert_eq!(respray_switch(&t, 7, 1), Some(a));
        assert_eq!(respray_switch(&t, 0, 1), None);
    }
}
