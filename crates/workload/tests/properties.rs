//! Property-based tests for the workload generators.

use proptest::prelude::*;
use sr_types::{AddrFamily, Duration, Nanos};
use sr_workload::{
    flow_attrs, synthesize_fleet, FleetConfig, FlowGen, FlowOpen, FlowRecord, FlowStore,
    StreamConfig, TraceConfig, TraceEvent, TraceIter, UpdatePlanConfig, UpdatePlanner,
};

fn small_trace(seed: u64, conns_per_min: f64, upm: f64, mins: u64) -> TraceConfig {
    TraceConfig {
        vips: 6,
        dips_per_vip: 5,
        new_conns_per_min: conns_per_min,
        median_flow_secs: 10.0,
        flow_sigma: 1.0,
        median_rate_bps: 100_000.0,
        rate_sigma: 0.5,
        median_pkt_bytes: 800.0,
        pkt_sigma: 0.35,
        updates_per_min: upm,
        shared_dip_upgrades: false,
        duration: Duration::from_mins(mins),
        family: AddrFamily::V4,
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Traces are time-sorted, in-window, and all connection tuples are
    /// unique — for any seed and rates.
    #[test]
    fn trace_wellformed(
        seed: u64,
        conns_per_min in 0.0f64..2_000.0,
        upm in 0.0f64..30.0,
    ) {
        let cfg = small_trace(seed, conns_per_min, upm, 2);
        let mut last = Nanos::ZERO;
        let mut tuples = std::collections::HashSet::new();
        let mut count = 0u32;
        for e in TraceIter::new(cfg) {
            prop_assert!(e.at() >= last);
            last = e.at();
            prop_assert!(e.at().since(Nanos::ZERO) < cfg.duration);
            if let TraceEvent::ConnOpen(c) = e {
                prop_assert!(tuples.insert(c.tuple.key_bytes()));
                prop_assert!(c.vip.0 < cfg.vips);
                prop_assert!(c.rate_bps >= 1_000);
            }
            count += 1;
            prop_assert!(count < 1_000_000, "runaway trace");
        }
    }

    /// Identical configs produce identical traces; different seeds differ.
    #[test]
    fn trace_seed_determinism(seed: u64) {
        let cfg = small_trace(seed, 500.0, 5.0, 1);
        let a: Vec<Nanos> = TraceIter::new(cfg).map(|e| e.at()).collect();
        let b: Vec<Nanos> = TraceIter::new(cfg).map(|e| e.at()).collect();
        prop_assert_eq!(&a, &b);
        let mut cfg2 = cfg;
        cfg2.seed = seed.wrapping_add(1);
        let c: Vec<Nanos> = TraceIter::new(cfg2).map(|e| e.at()).collect();
        // Nonempty traces from different seeds should differ.
        if !a.is_empty() && !c.is_empty() {
            prop_assert_ne!(a, c);
        }
    }

    /// Update plans stay sorted, in-window and respect id ranges.
    #[test]
    fn update_plan_wellformed(seed: u64, upm in 0.1f64..100.0, vips in 1u32..50, dips in 1u32..50) {
        let plan = UpdatePlanner::new(UpdatePlanConfig::dedicated(
            vips,
            dips,
            upm,
            Duration::from_mins(10),
            seed,
        ))
        .generate();
        let mut last = Nanos::ZERO;
        for e in &plan {
            prop_assert!(e.at >= last);
            last = e.at;
            prop_assert!(e.vip.0 < vips);
            prop_assert!(e.dip.0 < dips);
        }
    }

    /// Packed flow records round-trip exactly within the stored widths,
    /// and oversized fields truncate to the documented masks (seq: 48
    /// bits, close_ns: 60 bits, flags: low 4 bits) rather than smearing
    /// into neighbouring fields.
    #[test]
    fn flow_record_pack_roundtrip(
        seq: u64,
        vip: u16,
        dip: u8,
        version: u8,
        close_ns: u64,
        flags: u8,
    ) {
        let rec = FlowRecord { seq, vip, dip, version, close_ns, flags };
        let (w0, w1, w2) = rec.pack();
        let back = FlowRecord::unpack(w0, w1, w2);
        prop_assert_eq!(back.seq, seq & ((1u64 << 48) - 1));
        prop_assert_eq!(back.close_ns, close_ns & ((1u64 << 60) - 1));
        prop_assert_eq!(back.flags, flags & 0x0f);
        prop_assert_eq!(back.vip, vip);
        prop_assert_eq!(back.dip, dip);
        prop_assert_eq!(back.version, version);
        // In-width records round-trip identically.
        let tight = FlowRecord {
            seq: back.seq,
            close_ns: back.close_ns,
            flags: back.flags,
            ..rec
        };
        let (t0, t1, t2) = tight.pack();
        prop_assert_eq!(FlowRecord::unpack(t0, t1, t2), tight);
    }

    /// Under arbitrary insert/remove churn the store matches a
    /// `HashMap` model and recycles freed slots: capacity stays bounded
    /// by the *peak* live population, not the total insert count.
    #[test]
    fn flow_store_churn_matches_model(
        ops in proptest::collection::vec((any::<bool>(), 0u64..1 << 40), 1..200),
    ) {
        let mut store = FlowStore::default();
        let mut model: std::collections::HashMap<u32, FlowRecord> =
            std::collections::HashMap::new();
        let mut slots: Vec<u32> = Vec::new();
        let mut peak_live = 0usize;
        for (i, &(is_insert, x)) in ops.iter().enumerate() {
            if is_insert || slots.is_empty() {
                let rec = FlowRecord {
                    seq: i as u64,
                    vip: (x & 0xffff) as u16,
                    dip: (x >> 16) as u8,
                    version: (x >> 24) as u8,
                    close_ns: x,
                    flags: ((x >> 32) as u8) & sr_workload::flow_store::FLAG_USER_MASK,
                };
                let slot = store.insert(rec);
                prop_assert_ne!(slot, sr_workload::flow_store::NO_SLOT);
                prop_assert!(model.insert(slot, rec).is_none(), "live slot handed out twice");
                slots.push(slot);
                peak_live = peak_live.max(slots.len());
            } else {
                let slot = slots.swap_remove((x as usize) % slots.len());
                let expect = model.remove(&slot).unwrap();
                prop_assert_eq!(store.remove(slot), Some(expect));
                prop_assert_eq!(store.get(slot), None, "removed slot still readable");
            }
            prop_assert_eq!(store.live(), slots.len() as u64);
        }
        for (&slot, &rec) in &model {
            prop_assert_eq!(store.get(slot), Some(rec));
        }
        // Slot recycling: growth only happens when the free list is
        // empty and doubles (min 64), so capacity is bounded by the
        // peak concurrent population — not by total inserts.
        prop_assert!(
            store.capacity() <= (peak_live * 2).max(64),
            "capacity {} exceeds churn bound for peak live {}",
            store.capacity(),
            peak_live
        );
    }

    /// The streaming generator is a pure function of `(seed, cluster)`:
    /// sharding the cluster set across any number of workers — each
    /// drawing its clusters' streams independently — reproduces the
    /// single-worker arrival sequence and per-flow attributes exactly.
    #[test]
    fn stream_identical_for_any_shard_count(
        seed: u64,
        clusters in 1usize..8,
        draws in 1usize..40,
    ) {
        let cfg_for = |cluster: usize| StreamConfig {
            seed: seed ^ (cluster as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            vips: 16,
            arrivals_per_sec: 500.0,
            median_flow_secs: 5.0,
            flow_sigma: 0.8,
        };
        let draw_cluster = |cluster: usize| -> Vec<(FlowOpen, u16, u64)> {
            let cfg = cfg_for(cluster);
            let mut g = FlowGen::new(cfg, 0);
            (0..draws)
                .map(|_| {
                    let open = g.next_open();
                    let attrs = flow_attrs(&cfg, open.seq);
                    (open, attrs.vip, attrs.dip_hash)
                })
                .collect()
        };
        let baseline: Vec<Vec<(FlowOpen, u16, u64)>> =
            (0..clusters).map(draw_cluster).collect();
        for workers in 1..=4usize {
            // Round-robin sharding, each worker drawing its own
            // clusters in ownership order — the fleet engine's layout.
            let mut merged: Vec<Vec<(FlowOpen, u16, u64)>> = vec![Vec::new(); clusters];
            for w in 0..workers {
                for cluster in (w..clusters).step_by(workers) {
                    merged[cluster] = draw_cluster(cluster);
                }
            }
            prop_assert_eq!(&merged, &baseline, "shard count {} diverged", workers);
        }
    }

    /// Fleet synthesis is deterministic and each cluster is internally
    /// consistent for any seed.
    #[test]
    fn fleet_consistency(seed: u64) {
        let cfg = FleetConfig { pops: 5, frontends: 5, backends: 5, seed };
        let fleet = synthesize_fleet(cfg);
        prop_assert_eq!(fleet.len(), 15);
        for c in &fleet {
            prop_assert!(c.conns_per_tor_median <= c.conns_per_tor_p99);
            prop_assert!(c.updates_per_min_median <= c.updates_per_min_p99);
            prop_assert!(c.tors > 0 && c.vips > 0 && c.dips_per_vip > 0);
            prop_assert!(c.peak_gbps > 0.0 && c.peak_pps > 0.0);
            prop_assert!(c.median_flow_secs > 0.0);
        }
        let again = synthesize_fleet(cfg);
        prop_assert_eq!(fleet[3].conns_per_tor_p99, again[3].conns_per_tor_p99);
    }
}
