//! Property-based tests for the workload generators.

use proptest::prelude::*;
use sr_types::{AddrFamily, Duration, Nanos};
use sr_workload::{
    synthesize_fleet, FleetConfig, TraceConfig, TraceEvent, TraceIter, UpdatePlanConfig,
    UpdatePlanner,
};

fn small_trace(seed: u64, conns_per_min: f64, upm: f64, mins: u64) -> TraceConfig {
    TraceConfig {
        vips: 6,
        dips_per_vip: 5,
        new_conns_per_min: conns_per_min,
        median_flow_secs: 10.0,
        flow_sigma: 1.0,
        median_rate_bps: 100_000.0,
        rate_sigma: 0.5,
        median_pkt_bytes: 800.0,
        pkt_sigma: 0.35,
        updates_per_min: upm,
        shared_dip_upgrades: false,
        duration: Duration::from_mins(mins),
        family: AddrFamily::V4,
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Traces are time-sorted, in-window, and all connection tuples are
    /// unique — for any seed and rates.
    #[test]
    fn trace_wellformed(
        seed: u64,
        conns_per_min in 0.0f64..2_000.0,
        upm in 0.0f64..30.0,
    ) {
        let cfg = small_trace(seed, conns_per_min, upm, 2);
        let mut last = Nanos::ZERO;
        let mut tuples = std::collections::HashSet::new();
        let mut count = 0u32;
        for e in TraceIter::new(cfg) {
            prop_assert!(e.at() >= last);
            last = e.at();
            prop_assert!(e.at().since(Nanos::ZERO) < cfg.duration);
            if let TraceEvent::ConnOpen(c) = e {
                prop_assert!(tuples.insert(c.tuple.key_bytes()));
                prop_assert!(c.vip.0 < cfg.vips);
                prop_assert!(c.rate_bps >= 1_000);
            }
            count += 1;
            prop_assert!(count < 1_000_000, "runaway trace");
        }
    }

    /// Identical configs produce identical traces; different seeds differ.
    #[test]
    fn trace_seed_determinism(seed: u64) {
        let cfg = small_trace(seed, 500.0, 5.0, 1);
        let a: Vec<Nanos> = TraceIter::new(cfg).map(|e| e.at()).collect();
        let b: Vec<Nanos> = TraceIter::new(cfg).map(|e| e.at()).collect();
        prop_assert_eq!(&a, &b);
        let mut cfg2 = cfg;
        cfg2.seed = seed.wrapping_add(1);
        let c: Vec<Nanos> = TraceIter::new(cfg2).map(|e| e.at()).collect();
        // Nonempty traces from different seeds should differ.
        if !a.is_empty() && !c.is_empty() {
            prop_assert_ne!(a, c);
        }
    }

    /// Update plans stay sorted, in-window and respect id ranges.
    #[test]
    fn update_plan_wellformed(seed: u64, upm in 0.1f64..100.0, vips in 1u32..50, dips in 1u32..50) {
        let plan = UpdatePlanner::new(UpdatePlanConfig::dedicated(
            vips,
            dips,
            upm,
            Duration::from_mins(10),
            seed,
        ))
        .generate();
        let mut last = Nanos::ZERO;
        for e in &plan {
            prop_assert!(e.at >= last);
            last = e.at;
            prop_assert!(e.vip.0 < vips);
            prop_assert!(e.dip.0 < dips);
        }
    }

    /// Fleet synthesis is deterministic and each cluster is internally
    /// consistent for any seed.
    #[test]
    fn fleet_consistency(seed: u64) {
        let cfg = FleetConfig { pops: 5, frontends: 5, backends: 5, seed };
        let fleet = synthesize_fleet(cfg);
        prop_assert_eq!(fleet.len(), 15);
        for c in &fleet {
            prop_assert!(c.conns_per_tor_median <= c.conns_per_tor_p99);
            prop_assert!(c.updates_per_min_median <= c.updates_per_min_p99);
            prop_assert!(c.tors > 0 && c.vips > 0 && c.dips_per_vip > 0);
            prop_assert!(c.peak_gbps > 0.0 && c.peak_pps > 0.0);
            prop_assert!(c.median_flow_secs > 0.0);
        }
        let again = synthesize_fleet(cfg);
        prop_assert_eq!(fleet[3].conns_per_tor_p99, again[3].conns_per_tor_p99);
    }
}
