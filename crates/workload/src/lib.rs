//! Synthetic production workloads.
//!
//! The paper's evaluation uses traffic and operation traces from "a large
//! web service provider" — about a hundred clusters of three kinds (PoPs,
//! Frontends, Backends). Those traces are proprietary; this crate
//! synthesizes a fleet and traces whose *published marginal distributions*
//! match the paper:
//!
//! | Paper figure | What we calibrate |
//! |---|---|
//! | Fig 2 | DIP-pool updates/min per cluster (median & p99 minute) |
//! | Fig 3 | root-cause mix of DIP changes (82.7 % service upgrades) |
//! | Fig 4 | DIP downtime: median 3 min, p99 100 min, provisioning ≈ 0 |
//! | Fig 6 | active connections per ToR (PoPs ≤ ~11 M, Backends ≤ 15 M) |
//! | Fig 8 | new connections per VIP-minute (up to ~50 M) |
//!
//! Everything is seeded and deterministic. Traces are *iterators*, not
//! vectors: paper-scale runs stream hundreds of millions of events.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod dists;
pub mod flow_store;
pub mod stream;
pub mod trace;
pub mod updates;

pub use cluster::{synthesize_fleet, ClusterKind, ClusterSpec, FleetConfig};
pub use flow_store::{FlowRecord, FlowStore};
pub use stream::{flow_attrs, prewarm_close_ns, FlowAttrs, FlowGen, FlowOpen, StreamConfig};
pub use trace::{ConnSpec, TraceConfig, TraceEvent, TraceIter};
pub use updates::{DipOp, UpdateCause, UpdateEvent, UpdatePlanConfig, UpdatePlanner};
