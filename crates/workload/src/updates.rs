//! DIP-pool update event generation (§3.1, Figures 2–4).
//!
//! Updates are structured the way the paper describes operations, not as
//! i.i.d. coin flips:
//!
//! * **Service upgrades** (82.7 % of DIP changes) are *rolling reboots*: a
//!   VIP's DIPs go down in small batches ("two DIPs every five minutes"),
//!   each coming back after a Fig 4 downtime (median 3 min, p99 100 min).
//! * In **PoP/Frontend-style clusters a DIP is shared by most VIPs**, so
//!   one physical reboot emits a *burst* of updates across every VIP — the
//!   reason some PoPs see >100 updates in their 99th-percentile minute
//!   (Fig 2), and the reason Duet's Migrate-PCC can never drain (Fig 5a).
//! * Failures/preemptions hit one DIP with a longer downtime; provisioning
//!   and removal are one-way changes.
//!
//! Cause *initiation* probabilities are derived from Fig 3's event shares
//! divided by each cause's events-per-initiation, so the generated event
//! mix matches the paper's measured distribution.

use crate::dists::{exponential, lognormal_median, sigma_for_p99};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sr_types::{DipId, Duration, Nanos, VipId};

/// Root cause of a DIP change (Fig 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UpdateCause {
    /// Rolling service upgrade (82.7 % of changes).
    Upgrade,
    /// Canary/testing reboot of a DIP subset.
    Testing,
    /// Failure (lost control, crash): remove now, return much later.
    Failure,
    /// Preemption (maintenance, resource contention).
    Preempting,
    /// Capacity addition: a brand-new DIP appears.
    Provisioning,
    /// Capacity removal: a DIP leaves for good.
    Removing,
}

impl UpdateCause {
    /// All causes, in Fig 3 order.
    pub const ALL: [UpdateCause; 6] = [
        UpdateCause::Upgrade,
        UpdateCause::Testing,
        UpdateCause::Failure,
        UpdateCause::Preempting,
        UpdateCause::Provisioning,
        UpdateCause::Removing,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            UpdateCause::Upgrade => "upgrade",
            UpdateCause::Testing => "testing",
            UpdateCause::Failure => "failure",
            UpdateCause::Preempting => "preempting",
            UpdateCause::Provisioning => "provisioning",
            UpdateCause::Removing => "removing",
        }
    }

    /// Fig 3 probability mass (share of all DIP addition/removal *events*).
    pub fn share(self) -> f64 {
        match self {
            UpdateCause::Upgrade => 0.827,
            UpdateCause::Testing => 0.055,
            UpdateCause::Failure => 0.040,
            UpdateCause::Preempting => 0.033,
            UpdateCause::Provisioning => 0.025,
            UpdateCause::Removing => 0.020,
        }
    }

    /// Whether the cause takes the DIP down (and later back up) versus a
    /// one-way add/remove.
    pub fn has_downtime(self) -> bool {
        !matches!(self, UpdateCause::Provisioning | UpdateCause::Removing)
    }

    /// Sample the downtime (reboot-to-alive) for this cause, Fig 4.
    /// Provisioning causes no downtime.
    pub fn sample_downtime<R: Rng>(self, rng: &mut R) -> Duration {
        let (median_min, p99_min) = match self {
            // Upgrades: median 3 min, p99 100 min (Fig 4's headline).
            UpdateCause::Upgrade => (3.0, 100.0),
            UpdateCause::Testing => (5.0, 120.0),
            // Failures take longer to return (migration/repair).
            UpdateCause::Failure => (12.0, 400.0),
            UpdateCause::Preempting => (8.0, 240.0),
            UpdateCause::Provisioning | UpdateCause::Removing => return Duration::ZERO,
        };
        let mins = lognormal_median(rng, median_min, sigma_for_p99(median_min, p99_min));
        Duration::from_secs_f64(mins * 60.0)
    }
}

/// The operation an update performs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DipOp {
    /// Take the DIP out of its VIP's pool.
    Remove,
    /// Put the DIP into its VIP's pool.
    Add,
}

/// One DIP change event.
#[derive(Clone, Copy, Debug)]
pub struct UpdateEvent {
    /// When.
    pub at: Nanos,
    /// Which VIP's pool changes.
    pub vip: VipId,
    /// Which DIP (index within the VIP's pool universe).
    pub dip: DipId,
    /// Remove or add.
    pub op: DipOp,
    /// Root cause.
    pub cause: UpdateCause,
}

/// Parameters for an update plan.
#[derive(Clone, Copy, Debug)]
pub struct UpdatePlanConfig {
    /// VIPs in the cluster.
    pub vips: u32,
    /// DIPs per VIP.
    pub dips_per_vip: u32,
    /// Target average update events per minute (removes + adds, in-window,
    /// steady state).
    pub updates_per_min: f64,
    /// Window to fill.
    pub window: Duration,
    /// PoP/Frontend-style shared backends (§3.1): one physical DIP change
    /// bursts across every VIP at once.
    pub shared_dips: bool,
    /// Rolling-reboot batch size for dedicated pools (paper example: 2).
    pub reboot_batch: u32,
    /// Period between rolling-reboot batches (paper example: 5 minutes).
    pub reboot_period: Duration,
    /// Seed.
    pub seed: u64,
}

impl UpdatePlanConfig {
    /// A dedicated-pool (Backend-style) plan with the paper's rolling
    /// parameters.
    pub fn dedicated(
        vips: u32,
        dips_per_vip: u32,
        updates_per_min: f64,
        window: Duration,
        seed: u64,
    ) -> UpdatePlanConfig {
        UpdatePlanConfig {
            vips,
            dips_per_vip,
            updates_per_min,
            window,
            shared_dips: false,
            reboot_batch: 2,
            reboot_period: Duration::from_mins(5),
            seed,
        }
    }

    /// A shared-DIP (PoP-style) plan.
    pub fn shared(
        vips: u32,
        dips_per_vip: u32,
        updates_per_min: f64,
        window: Duration,
        seed: u64,
    ) -> UpdatePlanConfig {
        UpdatePlanConfig {
            shared_dips: true,
            ..UpdatePlanConfig::dedicated(vips, dips_per_vip, updates_per_min, window, seed)
        }
    }

    /// Expected events one initiation of `cause` produces.
    fn events_per_initiation(&self, cause: UpdateCause) -> f64 {
        let v = self.vips.max(1) as f64;
        let d = self.dips_per_vip.max(1) as f64;
        match cause {
            UpdateCause::Upgrade => {
                if self.shared_dips {
                    // One shared machine reboots: remove+add on every VIP.
                    2.0 * v
                } else {
                    // Roll the whole pool of one VIP.
                    2.0 * d
                }
            }
            UpdateCause::Testing => 2.0 * (d / 4.0).max(1.0),
            UpdateCause::Failure | UpdateCause::Preempting => {
                if self.shared_dips {
                    2.0 * v
                } else {
                    2.0
                }
            }
            UpdateCause::Provisioning | UpdateCause::Removing => {
                if self.shared_dips {
                    v
                } else {
                    1.0
                }
            }
        }
    }
}

/// Generates a time-sorted update plan for a window.
pub struct UpdatePlanner {
    cfg: UpdatePlanConfig,
}

impl UpdatePlanner {
    /// Create a planner.
    pub fn new(cfg: UpdatePlanConfig) -> UpdatePlanner {
        UpdatePlanner { cfg }
    }

    /// Generate the plan. Initiations are Poisson and may *start before the
    /// window* (a rolling upgrade lasts up to hours), so the in-window
    /// event rate is steady-state; only events inside `[0, window)` are
    /// returned, time-sorted.
    pub fn generate(&self) -> Vec<UpdateEvent> {
        let cfg = &self.cfg;
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x0bda7e5);
        let mut events: Vec<UpdateEvent> = Vec::new();
        if cfg.updates_per_min <= 0.0 || cfg.vips == 0 || cfg.dips_per_vip == 0 {
            return events;
        }

        // Initiation mix: i_c ∝ share_c / events_c so event shares match
        // Fig 3. E[events/initiation] = 1 / Σ(share_c / events_c).
        let weights: Vec<(UpdateCause, f64)> = UpdateCause::ALL
            .iter()
            .map(|&c| (c, c.share() / self.cfg.events_per_initiation(c)))
            .collect();
        let z: f64 = weights.iter().map(|(_, w)| w).sum();
        let expected_events_per_initiation = 1.0 / z;
        let initiation_rate_per_sec = cfg.updates_per_min / 60.0 / expected_events_per_initiation;

        // Lead-in: the longest-running structure is a dedicated rolling
        // upgrade; also cover long downtimes so adds from pre-window
        // removals land in-window.
        let roll_steps = cfg.dips_per_vip.div_ceil(cfg.reboot_batch.max(1)) as u64;
        let lead = cfg
            .reboot_period
            .saturating_mul(roll_steps)
            .0
            .max(Duration::from_mins(120).0) as f64
            / 1e9;
        let window_secs = cfg.window.as_secs_f64();

        let mut t = -lead;
        loop {
            t += exponential(&mut rng, initiation_rate_per_sec);
            if t >= window_secs {
                break;
            }
            let cause = sample_weighted(&mut rng, &weights, z);
            self.emit_initiation(&mut rng, cause, t, &mut events);
        }
        events.sort_by_key(|e| e.at);
        events
    }

    fn emit_initiation(
        &self,
        rng: &mut SmallRng,
        cause: UpdateCause,
        t_secs: f64,
        out: &mut Vec<UpdateEvent>,
    ) {
        let cfg = &self.cfg;
        let push = |out: &mut Vec<UpdateEvent>, at_secs: f64, vip: u32, dip: u32, op: DipOp| {
            if at_secs < 0.0 || at_secs >= cfg.window.as_secs_f64() {
                return;
            }
            out.push(UpdateEvent {
                at: Nanos::ZERO + Duration::from_secs_f64(at_secs),
                vip: VipId(vip),
                dip: DipId(dip),
                op,
                cause,
            });
        };

        match cause {
            UpdateCause::Upgrade if cfg.shared_dips => {
                // One shared machine reboots: every VIP loses the DIP now
                // (small per-VIP jitter) and regains it after one downtime.
                let dip = rng.gen_range(0..cfg.dips_per_vip);
                let down = cause.sample_downtime(rng).as_secs_f64();
                for vip in 0..cfg.vips {
                    let jitter = rng.gen_range(0.0..2.0);
                    push(out, t_secs + jitter, vip, dip, DipOp::Remove);
                    push(out, t_secs + jitter + down, vip, dip, DipOp::Add);
                }
            }
            UpdateCause::Upgrade => {
                // Rolling reboot of one VIP's pool: `reboot_batch` DIPs per
                // `reboot_period`, each back after its own downtime.
                let vip = rng.gen_range(0..cfg.vips);
                let period = cfg.reboot_period.as_secs_f64();
                for (i, dip) in (0..cfg.dips_per_vip).enumerate() {
                    let step = (i as u32 / cfg.reboot_batch.max(1)) as f64;
                    let start = t_secs + step * period + rng.gen_range(0.0..5.0);
                    let down = cause.sample_downtime(rng).as_secs_f64();
                    push(out, start, vip, dip, DipOp::Remove);
                    push(out, start + down, vip, dip, DipOp::Add);
                }
            }
            UpdateCause::Testing => {
                // Canary: roll a quarter of one VIP's pool.
                let vip = rng.gen_range(0..cfg.vips);
                let subset = (cfg.dips_per_vip / 4).max(1);
                let first = rng.gen_range(0..cfg.dips_per_vip);
                for i in 0..subset {
                    let dip = (first + i) % cfg.dips_per_vip;
                    let start = t_secs + i as f64 * 30.0;
                    let down = cause.sample_downtime(rng).as_secs_f64();
                    push(out, start, vip, dip, DipOp::Remove);
                    push(out, start + down, vip, dip, DipOp::Add);
                }
            }
            UpdateCause::Failure | UpdateCause::Preempting => {
                let dip = rng.gen_range(0..cfg.dips_per_vip);
                let down = cause.sample_downtime(rng).as_secs_f64();
                if cfg.shared_dips {
                    for vip in 0..cfg.vips {
                        let jitter = rng.gen_range(0.0..2.0);
                        push(out, t_secs + jitter, vip, dip, DipOp::Remove);
                        push(out, t_secs + jitter + down, vip, dip, DipOp::Add);
                    }
                } else {
                    let vip = rng.gen_range(0..cfg.vips);
                    push(out, t_secs, vip, dip, DipOp::Remove);
                    push(out, t_secs + down, vip, dip, DipOp::Add);
                }
            }
            UpdateCause::Provisioning | UpdateCause::Removing => {
                let op = if cause == UpdateCause::Provisioning {
                    DipOp::Add
                } else {
                    DipOp::Remove
                };
                let dip = rng.gen_range(0..cfg.dips_per_vip);
                if cfg.shared_dips {
                    for vip in 0..cfg.vips {
                        push(out, t_secs + rng.gen_range(0.0..2.0), vip, dip, op);
                    }
                } else {
                    let vip = rng.gen_range(0..cfg.vips);
                    push(out, t_secs, vip, dip, op);
                }
            }
        }
    }
}

fn sample_weighted(rng: &mut SmallRng, weights: &[(UpdateCause, f64)], z: f64) -> UpdateCause {
    let x: f64 = rng.gen_range(0.0..z);
    let mut acc = 0.0;
    for (c, w) in weights {
        acc += w;
        if x < acc {
            return *c;
        }
    }
    UpdateCause::Upgrade
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(upm: f64, mins: u64, shared: bool) -> Vec<UpdateEvent> {
        let cfg = if shared {
            UpdatePlanConfig::shared(100, 20, upm, Duration::from_mins(mins), 7)
        } else {
            UpdatePlanConfig::dedicated(100, 20, upm, Duration::from_mins(mins), 7)
        };
        UpdatePlanner::new(cfg).generate()
    }

    #[test]
    fn shares_sum_to_one() {
        let total: f64 = UpdateCause::ALL.iter().map(|c| c.share()).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rate_matches_target_dedicated() {
        let events = plan(30.0, 120, false);
        let per_min = events.len() as f64 / 120.0;
        assert!((15.0..45.0).contains(&per_min), "rate {per_min}");
    }

    #[test]
    fn rate_matches_target_shared() {
        let events = plan(30.0, 240, true);
        let per_min = events.len() as f64 / 240.0;
        assert!((12.0..48.0).contains(&per_min), "rate {per_min}");
    }

    #[test]
    fn events_sorted_and_in_window() {
        for shared in [false, true] {
            let events = plan(20.0, 60, shared);
            assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
            let window = Duration::from_mins(60);
            assert!(events.iter().all(|e| e.at.since(Nanos::ZERO) < window));
        }
    }

    #[test]
    fn cause_mix_matches_fig3() {
        let events = plan(60.0, 1200, false);
        assert!(events.len() > 10_000, "not enough events: {}", events.len());
        for cause in UpdateCause::ALL {
            let n = events.iter().filter(|e| e.cause == cause).count() as f64;
            let share = n / events.len() as f64;
            assert!(
                (share - cause.share()).abs() < 0.06,
                "{}: generated {share} vs target {}",
                cause.name(),
                cause.share()
            );
        }
    }

    #[test]
    fn shared_bursts_touch_many_vips_at_once() {
        let events = plan(50.0, 240, true);
        // Group upgrade removals by second; bursts must span many VIPs.
        use std::collections::HashMap;
        let mut by_sec: HashMap<u64, std::collections::HashSet<u32>> = HashMap::new();
        for e in &events {
            if e.cause == UpdateCause::Upgrade && e.op == DipOp::Remove {
                by_sec
                    .entry(e.at.0 / 2_000_000_000)
                    .or_default()
                    .insert(e.vip.0);
            }
        }
        let max_burst = by_sec.values().map(|s| s.len()).max().unwrap_or(0);
        assert!(max_burst > 30, "largest burst only {max_burst} VIPs");
    }

    #[test]
    fn dedicated_upgrades_roll_one_vip() {
        let events = plan(40.0, 240, false);
        // Upgrade events concentrate: for some vip, count distinct dips
        // removed — a rolling upgrade touches many dips of the same vip.
        use std::collections::HashMap;
        let mut per_vip: HashMap<u32, std::collections::HashSet<u32>> = HashMap::new();
        for e in &events {
            if e.cause == UpdateCause::Upgrade && e.op == DipOp::Remove {
                per_vip.entry(e.vip.0).or_default().insert(e.dip.0);
            }
        }
        let max_dips = per_vip.values().map(|s| s.len()).max().unwrap_or(0);
        assert!(max_dips >= 10, "rolling upgrade too narrow: {max_dips}");
    }

    #[test]
    fn downtime_distribution_fig4() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut mins: Vec<f64> = (0..20_000)
            .map(|_| UpdateCause::Upgrade.sample_downtime(&mut rng).as_secs_f64() / 60.0)
            .collect();
        mins.sort_by(f64::total_cmp);
        let med = mins[mins.len() / 2];
        let p99 = mins[(mins.len() as f64 * 0.99) as usize];
        assert!((2.5..3.5).contains(&med), "median {med}");
        assert!((60.0..160.0).contains(&p99), "p99 {p99}");
        assert_eq!(
            UpdateCause::Provisioning.sample_downtime(&mut rng),
            Duration::ZERO
        );
    }

    #[test]
    fn degenerate_configs_yield_empty() {
        assert!(plan(0.0, 10, false).is_empty());
        let p = UpdatePlanner::new(UpdatePlanConfig::dedicated(
            0,
            10,
            10.0,
            Duration::from_mins(10),
            1,
        ));
        assert!(p.generate().is_empty());
    }
}
