//! Flow-level traffic traces (§3.2, §6.2).
//!
//! A trace is a time-sorted stream of connection arrivals (Poisson, split
//! across VIPs) interleaved with DIP-pool update events from
//! [`crate::updates`]. Traces are **lazy iterators**: the paper's reference
//! PoP workload is 2.77 M new connections per minute per ToR for an hour —
//! 166 M events — which streams fine but must never be collected.
//!
//! The reference configuration ([`TraceConfig::pop_reference`]) matches the
//! §3.2 cluster: 149 VIPs, 18.7 K new connections/min/VIP, Hadoop-style
//! flows with a 10-second median duration.

use crate::dists::{exponential, lognormal_median};
use crate::updates::{UpdateEvent, UpdatePlanConfig, UpdatePlanner};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sr_types::{Addr, AddrFamily, ConnSeq, Dip, Duration, FiveTuple, Nanos, Vip, VipId};

/// The synthetic VIP address for index `i`.
pub fn vip_addr(family: AddrFamily, i: u32) -> Vip {
    match family {
        AddrFamily::V4 => Vip(Addr::v4_indexed(20, i, 80)),
        AddrFamily::V6 => Vip(Addr::v6_indexed(0x20, i, 80)),
    }
}

/// The synthetic DIP address for `(vip, dip)` indices.
pub fn dip_addr(family: AddrFamily, vip: u32, dip: u32) -> Dip {
    // Pack VIP and DIP indices into disjoint address bits.
    let idx = vip
        .checked_mul(4096)
        .and_then(|x| x.checked_add(dip))
        .expect("dip index overflow");
    match family {
        AddrFamily::V4 => Dip(Addr::v4_indexed(10, idx, 20)),
        AddrFamily::V6 => Dip(Addr::v6_indexed(0x10, idx, 20)),
    }
}

/// One connection in a trace.
#[derive(Clone, Copy, Debug)]
pub struct ConnSpec {
    /// Trace-unique sequence number.
    pub seq: ConnSeq,
    /// VIP index.
    pub vip: VipId,
    /// The connection 5-tuple (destination = the VIP).
    pub tuple: FiveTuple,
    /// Arrival time.
    pub opened: Nanos,
    /// Flow duration.
    pub duration: Duration,
    /// Average flow rate, bits/s (constant-rate model).
    pub rate_bps: u64,
    /// The flow's packet size in bytes, drawn per flow from the trace's
    /// lognormal packet-size model ([`TraceConfig::median_pkt_bytes`],
    /// [`TraceConfig::pkt_sigma`]) and clamped to Ethernet norms
    /// (64..=1500).
    pub pkt_len: u32,
    /// Mean gap between the flow's packets (derived from the rate and the
    /// flow's [`pkt_len`](ConnSpec::pkt_len)).
    pub pkt_gap: Duration,
}

impl ConnSpec {
    /// When the flow ends.
    pub fn closes(&self) -> Nanos {
        self.opened + self.duration
    }

    /// Total bytes the flow carries.
    pub fn bytes(&self) -> u64 {
        (self.rate_bps as f64 / 8.0 * self.duration.as_secs_f64()) as u64
    }

    /// Approximate number of data packets the flow carries.
    pub fn packets(&self) -> u64 {
        (self.bytes() / u64::from(self.pkt_len.max(1))).max(1)
    }
}

/// One trace event.
#[derive(Clone, Copy, Debug)]
pub enum TraceEvent {
    /// A new connection opens.
    ConnOpen(ConnSpec),
    /// A DIP-pool change.
    Update(UpdateEvent),
}

impl TraceEvent {
    /// Event timestamp.
    pub fn at(&self) -> Nanos {
        match self {
            TraceEvent::ConnOpen(c) => c.opened,
            TraceEvent::Update(u) => u.at,
        }
    }
}

/// Trace parameters.
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// VIPs in the cluster slice this trace covers (one ToR's view).
    pub vips: u32,
    /// DIPs per VIP.
    pub dips_per_vip: u32,
    /// Aggregate new connections per minute (across all VIPs).
    pub new_conns_per_min: f64,
    /// Median flow duration, seconds (§3.2: 10 s Hadoop, 270 s cache).
    pub median_flow_secs: f64,
    /// Log-space sd of flow duration.
    pub flow_sigma: f64,
    /// Median flow rate, bits/s.
    pub median_rate_bps: f64,
    /// Log-space sd of flow rate.
    pub rate_sigma: f64,
    /// Median packet size, bytes (§3.2 reports ~800-byte average packets).
    pub median_pkt_bytes: f64,
    /// Log-space sd of the per-flow packet size (0 pins every flow to the
    /// median, reproducing the old fixed-size model).
    pub pkt_sigma: f64,
    /// Update events per minute (0 disables updates).
    pub updates_per_min: f64,
    /// PoP-style shared DIPs: one physical change bursts across every VIP
    /// (§3.1). The reference PoP workload sets this.
    pub shared_dip_upgrades: bool,
    /// Trace length.
    pub duration: Duration,
    /// Address family.
    pub family: AddrFamily,
    /// Seed.
    pub seed: u64,
}

impl TraceConfig {
    /// The §3.2 reference PoP workload at full paper scale (2.77 M new
    /// connections/min, Hadoop flows).
    pub fn pop_reference() -> TraceConfig {
        TraceConfig {
            vips: 149,
            dips_per_vip: 20,
            new_conns_per_min: 2_770_000.0,
            median_flow_secs: 10.0,
            flow_sigma: 1.0,
            // ~19.6 Mbps per VIP per ToR spread over its live flows.
            median_rate_bps: 40_000.0,
            rate_sigma: 1.0,
            median_pkt_bytes: 800.0,
            pkt_sigma: 0.35,
            updates_per_min: 10.0,
            shared_dip_upgrades: true,
            duration: Duration::from_mins(60),
            family: AddrFamily::V4,
            seed: 0x7ace,
        }
    }

    /// The reference workload with arrival rate and duration scaled — the
    /// `repro` harness default keeps every per-minute rate but shortens the
    /// window.
    pub fn pop_scaled(rate_factor: f64, minutes: u64) -> TraceConfig {
        let mut c = TraceConfig::pop_reference();
        c.new_conns_per_min *= rate_factor;
        c.duration = Duration::from_mins(minutes);
        c
    }

    /// The §3.2 cache-traffic variant: 4.5-minute median flows.
    pub fn cache_flows(self) -> TraceConfig {
        TraceConfig {
            median_flow_secs: 270.0,
            ..self
        }
    }

    /// Expected total connection arrivals.
    pub fn expected_conns(&self) -> f64 {
        self.new_conns_per_min * self.duration.as_secs_f64() / 60.0
    }
}

/// The lazy, time-sorted trace stream.
pub struct TraceIter {
    cfg: TraceConfig,
    rng: SmallRng,
    next_arrival_secs: f64,
    seq: u64,
    updates: std::vec::IntoIter<UpdateEvent>,
    pending_update: Option<UpdateEvent>,
}

impl TraceIter {
    /// Build the stream (generates the update plan eagerly — it is small —
    /// and the arrivals lazily).
    pub fn new(cfg: TraceConfig) -> TraceIter {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let plan_cfg = if cfg.shared_dip_upgrades {
            UpdatePlanConfig::shared(
                cfg.vips,
                cfg.dips_per_vip,
                cfg.updates_per_min,
                cfg.duration,
                cfg.seed ^ 0xdeed,
            )
        } else {
            UpdatePlanConfig::dedicated(
                cfg.vips,
                cfg.dips_per_vip,
                cfg.updates_per_min,
                cfg.duration,
                cfg.seed ^ 0xdeed,
            )
        };
        let updates = UpdatePlanner::new(plan_cfg).generate().into_iter();
        let rate_per_sec = cfg.new_conns_per_min / 60.0;
        let next_arrival_secs = if rate_per_sec > 0.0 {
            exponential(&mut rng, rate_per_sec)
        } else {
            f64::INFINITY
        };
        TraceIter {
            cfg,
            rng,
            next_arrival_secs,
            seq: 0,
            updates,
            pending_update: None,
        }
    }

    fn make_conn(&mut self, at_secs: f64) -> ConnSpec {
        let cfg = &self.cfg;
        let seq = self.seq;
        self.seq += 1;
        let vip_idx = self.rng.gen_range(0..cfg.vips);
        let vip = vip_addr(cfg.family, vip_idx);
        // Unique client endpoint per connection.
        let port = 1024 + (seq % 60_000) as u16;
        let host = (seq / 60_000) as u32;
        let src = match cfg.family {
            AddrFamily::V4 => Addr::v4_indexed(100, host, port),
            AddrFamily::V6 => Addr::v6_indexed(0x100, host, port),
        };
        let duration = Duration::from_secs_f64(lognormal_median(
            &mut self.rng,
            cfg.median_flow_secs,
            cfg.flow_sigma,
        ));
        let rate_bps =
            lognormal_median(&mut self.rng, cfg.median_rate_bps, cfg.rate_sigma).max(1_000.0);
        let pkt_len = per_flow_pkt_len(cfg, seq);
        let pkt_gap = Duration::from_secs_f64(f64::from(pkt_len) * 8.0 / rate_bps);
        ConnSpec {
            seq: ConnSeq(seq),
            vip: VipId(vip_idx),
            tuple: FiveTuple::tcp(src, vip.0),
            opened: Nanos::ZERO + Duration::from_secs_f64(at_secs),
            duration,
            rate_bps: rate_bps as u64,
            pkt_len,
            pkt_gap,
        }
    }
}

/// Draw the flow's packet size from the trace's lognormal size model.
///
/// Sampled from a *separate* RNG keyed by `(seed, seq)` rather than the
/// trace's main stream, so adding the size model left every previously
/// published arrival/duration/rate stream bit-identical.
fn per_flow_pkt_len(cfg: &TraceConfig, seq: u64) -> u32 {
    let key = cfg
        .seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(seq.wrapping_mul(0xb5ad_4ece_da1c_e2a9))
        ^ 0x00c0_ffee_5a1e_u64;
    let mut rng = SmallRng::seed_from_u64(key);
    lognormal_median(&mut rng, cfg.median_pkt_bytes, cfg.pkt_sigma)
        .round()
        .clamp(64.0, 1500.0) as u32
}

impl Iterator for TraceIter {
    type Item = TraceEvent;

    fn next(&mut self) -> Option<TraceEvent> {
        let window = self.cfg.duration.as_secs_f64();
        if self.pending_update.is_none() {
            self.pending_update = self.updates.next();
        }
        let arrival_due = self.next_arrival_secs < window;
        match (arrival_due, self.pending_update) {
            (false, None) => None,
            (true, Some(u)) if u.at.since(Nanos::ZERO).as_secs_f64() <= self.next_arrival_secs => {
                self.pending_update = None;
                Some(TraceEvent::Update(u))
            }
            (false, Some(u)) => {
                self.pending_update = None;
                Some(TraceEvent::Update(u))
            }
            (true, _) => {
                let at = self.next_arrival_secs;
                let rate = self.cfg.new_conns_per_min / 60.0;
                self.next_arrival_secs += exponential(&mut self.rng, rate);
                Some(TraceEvent::ConnOpen(self.make_conn(at)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> TraceConfig {
        TraceConfig {
            vips: 10,
            dips_per_vip: 5,
            new_conns_per_min: 600.0,
            median_flow_secs: 10.0,
            flow_sigma: 1.0,
            median_rate_bps: 50_000.0,
            rate_sigma: 0.5,
            median_pkt_bytes: 800.0,
            pkt_sigma: 0.35,
            updates_per_min: 5.0,
            shared_dip_upgrades: false,
            duration: Duration::from_mins(5),
            family: AddrFamily::V4,
            seed: 1,
        }
    }

    #[test]
    fn events_are_time_sorted() {
        let mut last = Nanos::ZERO;
        for e in TraceIter::new(small_cfg()) {
            assert!(e.at() >= last, "out of order");
            last = e.at();
        }
    }

    #[test]
    fn arrival_count_matches_rate() {
        let conns = TraceIter::new(small_cfg())
            .filter(|e| matches!(e, TraceEvent::ConnOpen(_)))
            .count() as f64;
        let expected = small_cfg().expected_conns();
        assert!(
            (conns / expected - 1.0).abs() < 0.15,
            "{conns} vs {expected}"
        );
    }

    #[test]
    fn connections_are_unique_and_well_formed() {
        let mut seen = std::collections::HashSet::new();
        for e in TraceIter::new(small_cfg()) {
            if let TraceEvent::ConnOpen(c) = e {
                assert!(seen.insert(c.tuple.key_bytes()), "duplicate tuple");
                assert!(c.vip.0 < 10);
                assert!(c.duration > Duration::ZERO);
                assert!(c.rate_bps >= 1000);
                assert!(c.closes() > c.opened);
                assert!((64..=1500).contains(&c.pkt_len), "pkt_len {}", c.pkt_len);
                assert!(c.packets() >= 1);
                let gap = c.pkt_gap.as_secs_f64();
                // rate_bps is truncated to u64 after the gap is computed,
                // so allow a small relative error.
                let expect = f64::from(c.pkt_len) * 8.0 / c.rate_bps as f64;
                assert!((gap / expect - 1.0).abs() < 1e-3, "{gap} vs {expect}");
                assert_eq!(c.tuple.dst, vip_addr(AddrFamily::V4, c.vip.0).0);
            }
        }
    }

    #[test]
    fn pkt_sigma_zero_pins_sizes_to_the_median() {
        let mut cfg = small_cfg();
        cfg.pkt_sigma = 0.0;
        for e in TraceIter::new(cfg).take(200) {
            if let TraceEvent::ConnOpen(c) = e {
                assert_eq!(c.pkt_len, 800);
            }
        }
    }

    #[test]
    fn pkt_size_model_does_not_shift_main_streams() {
        // Changing only the packet-size parameters must leave arrivals,
        // durations, and rates bit-identical (separate RNG stream).
        let mut wide = small_cfg();
        wide.pkt_sigma = 1.5;
        wide.median_pkt_bytes = 200.0;
        let a: Vec<(Nanos, u64)> = TraceIter::new(small_cfg())
            .filter_map(|e| match e {
                TraceEvent::ConnOpen(c) => Some((c.opened, c.rate_bps)),
                _ => None,
            })
            .take(300)
            .collect();
        let b: Vec<(Nanos, u64)> = TraceIter::new(wide)
            .filter_map(|e| match e {
                TraceEvent::ConnOpen(c) => Some((c.opened, c.rate_bps)),
                _ => None,
            })
            .take(300)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn updates_interleaved() {
        let updates = TraceIter::new(small_cfg())
            .filter(|e| matches!(e, TraceEvent::Update(_)))
            .count();
        // ~5/min * 5 min = ~25, minus truncated adds.
        assert!((10..=40).contains(&updates), "updates {updates}");
    }

    #[test]
    fn deterministic_across_runs() {
        let a: Vec<Nanos> = TraceIter::new(small_cfg())
            .map(|e| e.at())
            .take(100)
            .collect();
        let b: Vec<Nanos> = TraceIter::new(small_cfg())
            .map(|e| e.at())
            .take(100)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_rates_yield_update_only_or_empty() {
        let mut cfg = small_cfg();
        cfg.new_conns_per_min = 0.0;
        assert!(TraceIter::new(cfg).all(|e| matches!(e, TraceEvent::Update(_))));
        cfg.updates_per_min = 0.0;
        assert_eq!(TraceIter::new(cfg).count(), 0);
    }

    #[test]
    fn reference_config_scale() {
        let c = TraceConfig::pop_reference();
        assert_eq!(c.vips, 149);
        assert!((c.expected_conns() - 166_200_000.0).abs() < 1e6);
        let s = TraceConfig::pop_scaled(0.1, 2);
        assert!((s.expected_conns() - 554_000.0).abs() < 1e3);
        assert_eq!(s.cache_flows().median_flow_secs, 270.0);
    }

    #[test]
    fn address_helpers_distinct() {
        assert_ne!(vip_addr(AddrFamily::V4, 1), vip_addr(AddrFamily::V4, 2));
        assert_ne!(
            dip_addr(AddrFamily::V6, 1, 1),
            dip_addr(AddrFamily::V6, 1, 2)
        );
        assert_ne!(
            dip_addr(AddrFamily::V4, 1, 2),
            dip_addr(AddrFamily::V4, 2, 1)
        );
    }
}
