//! Cluster fleet synthesis (§3.1, §6).
//!
//! The paper studies "about a hundred clusters" of three kinds. Each kind
//! has a distinct traffic personality that drives every evaluation figure:
//!
//! * **PoPs** — user-facing, many short TCP connections, moderate volume,
//!   IPv4; up to ~11 M active connections per ToR.
//! * **Frontends** — few but fat persistent connections from PoPs (PoPs
//!   "merge many user-facing TCP connections to a few persistent
//!   connections"), small connection counts, IPv4.
//! * **Backends** — volume-centric service-to-service traffic, persistent
//!   connections, IPv6, the largest connection counts (up to 15 M/ToR) and
//!   the most frequent updates ("a continuous evolution of backend
//!   services").

use crate::dists::{log_uniform, lognormal_median, sigma_for_p99};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sr_types::{AddrFamily, ClusterId};

/// Cluster kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ClusterKind {
    /// Point of presence (user-facing edge).
    PoP,
    /// Frontend serving PoPs.
    Frontend,
    /// Backend services.
    Backend,
}

impl ClusterKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ClusterKind::PoP => "PoP",
            ClusterKind::Frontend => "Frontend",
            ClusterKind::Backend => "Backend",
        }
    }
}

/// A synthesized cluster.
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    /// Fleet-unique id.
    pub id: ClusterId,
    /// Kind.
    pub kind: ClusterKind,
    /// Address family of its VIP traffic ("Most Backends use IPv6 ... most
    /// PoPs and Frontends use IPv4").
    pub family: AddrFamily,
    /// Top-of-rack switches.
    pub tors: u32,
    /// VIPs hosted.
    pub vips: u32,
    /// DIPs per VIP (average).
    pub dips_per_vip: u32,
    /// Active connections per ToR in the *median* minute (Fig 6).
    pub conns_per_tor_median: u64,
    /// Active connections per ToR in the *99th-percentile* minute — the
    /// provisioning target for Fig 12.
    pub conns_per_tor_p99: u64,
    /// New connections per VIP per minute at peak (Fig 8).
    pub new_conns_per_vip_min: u64,
    /// DIP-pool updates per minute in the cluster's median minute (Fig 2).
    pub updates_per_min_median: f64,
    /// Updates per minute in the 99th-percentile minute (Fig 2).
    pub updates_per_min_p99: f64,
    /// Peak throughput per ToR switch, Gbit/s (Fig 13 sizing).
    pub peak_gbps: f64,
    /// Peak packet rate per ToR switch, packets/s (Fig 13 sizing).
    pub peak_pps: f64,
    /// Median flow duration, seconds (drives PCC exposure windows).
    pub median_flow_secs: f64,
    /// Live pool versions per VIP at steady state (DIPPoolTable sizing).
    pub live_versions_per_vip: u32,
}

impl ClusterSpec {
    /// Total active connections at the p99 minute, cluster-wide.
    pub fn total_conns_p99(&self) -> u64 {
        self.conns_per_tor_p99 * self.tors as u64
    }

    /// Total DIPs in the cluster.
    pub fn total_dips(&self) -> u64 {
        self.vips as u64 * self.dips_per_vip as u64
    }
}

/// Fleet synthesis parameters.
#[derive(Clone, Copy, Debug)]
pub struct FleetConfig {
    /// Number of PoP clusters.
    pub pops: u32,
    /// Number of Frontend clusters.
    pub frontends: u32,
    /// Number of Backend clusters.
    pub backends: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        // "about a hundred clusters"
        FleetConfig {
            pops: 28,
            frontends: 24,
            backends: 44,
            seed: 0xf1ee7,
        }
    }
}

/// Synthesize the fleet.
pub fn synthesize_fleet(cfg: FleetConfig) -> Vec<ClusterSpec> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut out = Vec::new();
    let mut id = 0u32;
    for _ in 0..cfg.pops {
        out.push(synth_one(ClusterId(id), ClusterKind::PoP, &mut rng));
        id += 1;
    }
    for _ in 0..cfg.frontends {
        out.push(synth_one(ClusterId(id), ClusterKind::Frontend, &mut rng));
        id += 1;
    }
    for _ in 0..cfg.backends {
        out.push(synth_one(ClusterId(id), ClusterKind::Backend, &mut rng));
        id += 1;
    }
    out
}

fn synth_one(id: ClusterId, kind: ClusterKind, rng: &mut SmallRng) -> ClusterSpec {
    match kind {
        ClusterKind::PoP => {
            // Fig 6/12: median cluster ~4M conns/ToR (14 MB), peak ~9M (32 MB).
            let conns_p99 = log_uniform(rng, 1.2e6, 9.2e6);
            let tors = rng.gen_range(8..=32);
            // The §3.2 reference PoP: 149 VIPs, 18.7K new conns/min/VIP,
            // 2.77M new conns/min/ToR at peak.
            let vips = rng.gen_range(80..=240);
            let new_per_vip = log_uniform(rng, 4e3, 9e5);
            let updates_p99 = fig2_updates_p99(rng, kind);
            // Per-ToR: one SilkRoad replaces 2-3 SLBs in PoPs (Fig 13).
            let gbps = log_uniform(rng, 12.0, 60.0);
            ClusterSpec {
                id,
                kind,
                family: AddrFamily::V4,
                tors,
                vips,
                dips_per_vip: rng.gen_range(8..=60),
                conns_per_tor_median: (conns_p99 * rng.gen_range(0.35..0.6)) as u64,
                conns_per_tor_p99: conns_p99 as u64,
                new_conns_per_vip_min: new_per_vip as u64,
                updates_per_min_median: updates_p99 * rng.gen_range(0.02..0.15),
                updates_per_min_p99: updates_p99,
                peak_gbps: gbps,
                // Short user-facing flows: small packets dominate.
                peak_pps: gbps * 1e9 / 8.0 / 420.0,
                median_flow_secs: lognormal_median(rng, 8.0, 0.4),
                live_versions_per_vip: rng.gen_range(2..=8),
            }
        }
        ClusterKind::Frontend => {
            // Few persistent connections: <2 MB of ConnTable SRAM.
            let conns_p99 = log_uniform(rng, 4e4, 5.5e5);
            let tors = rng.gen_range(8..=24);
            let vips = rng.gen_range(20..=120);
            let updates_p99 = fig2_updates_p99(rng, kind);
            // Large volume per connection (ratio 11 SLBs per SilkRoad in
            // the median, Fig 13); per-ToR.
            let gbps = log_uniform(rng, 60.0, 400.0);
            ClusterSpec {
                id,
                kind,
                family: AddrFamily::V4,
                tors,
                vips,
                dips_per_vip: rng.gen_range(10..=80),
                conns_per_tor_median: (conns_p99 * rng.gen_range(0.4..0.7)) as u64,
                conns_per_tor_p99: conns_p99 as u64,
                new_conns_per_vip_min: log_uniform(rng, 50.0, 5e3) as u64,
                updates_per_min_median: updates_p99 * rng.gen_range(0.02..0.1),
                updates_per_min_p99: updates_p99,
                peak_gbps: gbps,
                peak_pps: gbps * 1e9 / 8.0 / 1100.0,
                median_flow_secs: lognormal_median(rng, 300.0, 0.5),
                live_versions_per_vip: rng.gen_range(2..=6),
            }
        }
        ClusterKind::Backend => {
            // Fig 6/12: median ~4.3M conns/ToR (15 MB), peak 15M (58 MB).
            let conns_p99 = log_uniform(rng, 8e5, 1.5e7);
            let tors = rng.gen_range(16..=64);
            let vips = rng.gen_range(100..=600);
            let updates_p99 = fig2_updates_p99(rng, kind);
            // Volume-centric with a heavy tail: the peak Backend ToR needs
            // hundreds of SLBs (Fig 13 peak 277).
            let gbps = lognormal_median(rng, 35.0, sigma_for_p99(35.0, 2800.0)).min(5600.0);
            ClusterSpec {
                id,
                kind,
                family: AddrFamily::V6,
                tors,
                vips,
                dips_per_vip: rng.gen_range(8..=120),
                conns_per_tor_median: (conns_p99 * rng.gen_range(0.25..0.5)) as u64,
                conns_per_tor_p99: conns_p99 as u64,
                new_conns_per_vip_min: log_uniform(rng, 1e3, 5e7) as u64,
                updates_per_min_median: updates_p99 * rng.gen_range(0.05..0.25),
                updates_per_min_p99: updates_p99,
                peak_gbps: gbps,
                peak_pps: gbps * 1e9 / 8.0 / 900.0,
                // The §3.2 cache-style traffic: median 4.5 minutes.
                median_flow_secs: lognormal_median(rng, 200.0, 0.6),
                live_versions_per_vip: rng.gen_range(2..=8),
            }
        }
    }
}

/// Sample a cluster's p99-minute update rate so the fleet reproduces Fig 2:
/// overall 32 % of clusters above 10/min and 3 % above 50/min at p99;
/// "half of the Backends have more than 16"; some PoPs/Frontends exceed 100
/// (shared-DIP bursts).
fn fig2_updates_p99(rng: &mut SmallRng, kind: ClusterKind) -> f64 {
    match kind {
        ClusterKind::Backend => {
            // Median 16, heavy tail to ~60.
            lognormal_median(rng, 16.0, sigma_for_p99(16.0, 60.0))
        }
        ClusterKind::PoP | ClusterKind::Frontend => {
            // Mostly quiet, but 10% burst beyond 100 (a shared DIP flaps
            // every VIP at once).
            if rng.gen_bool(0.10) {
                log_uniform(rng, 60.0, 150.0)
            } else {
                log_uniform(rng, 0.3, 8.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dists::percentile;

    fn fleet() -> Vec<ClusterSpec> {
        synthesize_fleet(FleetConfig::default())
    }

    #[test]
    fn fleet_size_and_determinism() {
        let f = fleet();
        assert_eq!(f.len(), 96);
        let g = fleet();
        assert_eq!(f[17].conns_per_tor_p99, g[17].conns_per_tor_p99);
        // Distinct ids.
        let mut ids: Vec<u32> = f.iter().map(|c| c.id.0).collect();
        ids.dedup();
        assert_eq!(ids.len(), 96);
    }

    #[test]
    fn kinds_have_paper_families() {
        for c in fleet() {
            match c.kind {
                ClusterKind::Backend => assert_eq!(c.family, AddrFamily::V6),
                _ => assert_eq!(c.family, AddrFamily::V4),
            }
        }
    }

    #[test]
    fn fig6_connection_ranges() {
        let f = fleet();
        let max_pop = f
            .iter()
            .filter(|c| c.kind == ClusterKind::PoP)
            .map(|c| c.conns_per_tor_p99)
            .max()
            .unwrap();
        let max_backend = f
            .iter()
            .filter(|c| c.kind == ClusterKind::Backend)
            .map(|c| c.conns_per_tor_p99)
            .max()
            .unwrap();
        let max_frontend = f
            .iter()
            .filter(|c| c.kind == ClusterKind::Frontend)
            .map(|c| c.conns_per_tor_p99)
            .max()
            .unwrap();
        // "the most loaded clusters have around 10M connections" (PoPs),
        // Backends up to 15M, Frontends far fewer.
        assert!((6_000_000..=11_000_000).contains(&max_pop), "pop {max_pop}");
        assert!(
            (9_000_000..=15_000_000).contains(&max_backend),
            "backend {max_backend}"
        );
        assert!(max_frontend < 600_000, "frontend {max_frontend}");
    }

    #[test]
    fn fig2_update_rate_shape() {
        let f = fleet();
        let over10 = f.iter().filter(|c| c.updates_per_min_p99 > 10.0).count();
        let over50 = f.iter().filter(|c| c.updates_per_min_p99 > 50.0).count();
        let frac10 = over10 as f64 / f.len() as f64;
        let frac50 = over50 as f64 / f.len() as f64;
        // Paper: 32% over 10, 3% over 50. Allow sampling slack.
        assert!((0.2..0.55).contains(&frac10), "frac10 {frac10}");
        assert!((0.01..0.15).contains(&frac50), "frac50 {frac50}");
        // Half the Backends above ~16 at p99.
        let mut backend_rates: Vec<f64> = f
            .iter()
            .filter(|c| c.kind == ClusterKind::Backend)
            .map(|c| c.updates_per_min_p99)
            .collect();
        backend_rates.sort_by(f64::total_cmp);
        let med = percentile(&backend_rates, 50.0);
        assert!((10.0..25.0).contains(&med), "backend median {med}");
    }

    #[test]
    fn median_below_p99() {
        for c in fleet() {
            assert!(c.updates_per_min_median <= c.updates_per_min_p99);
            assert!(c.conns_per_tor_median <= c.conns_per_tor_p99);
        }
    }

    #[test]
    fn totals_consistent() {
        let c = &fleet()[0];
        assert_eq!(c.total_conns_p99(), c.conns_per_tor_p99 * c.tors as u64);
        assert_eq!(c.total_dips(), (c.vips * c.dips_per_vip) as u64);
    }
}
