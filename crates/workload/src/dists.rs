//! Sampling primitives.
//!
//! Implemented on top of plain `rand` uniforms (no `rand_distr` dependency)
//! so the whole workload layer needs only one external crate. All samplers
//! take `&mut impl Rng`, and every generator in this crate seeds its own
//! `SmallRng`, keeping experiments reproducible.

use rand::Rng;

/// Exponential sample with the given rate (events per unit). Returns the
/// inter-event gap in the same unit. Rate must be positive.
pub fn exponential<R: Rng>(rng: &mut R, rate: f64) -> f64 {
    debug_assert!(rate > 0.0);
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate
}

/// Standard normal sample (Box–Muller).
pub fn std_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Log-normal sample parameterised by its *median* and the log-space
/// standard deviation `sigma` (a natural way to express the paper's
/// "median 3 min, p99 100 min" style distributions).
pub fn lognormal_median<R: Rng>(rng: &mut R, median: f64, sigma: f64) -> f64 {
    debug_assert!(median > 0.0 && sigma >= 0.0);
    (median.ln() + sigma * std_normal(rng)).exp()
}

/// The sigma that makes a log-normal with the given median hit `p99` at its
/// 99th percentile (z₀.₉₉ ≈ 2.3263).
pub fn sigma_for_p99(median: f64, p99: f64) -> f64 {
    debug_assert!(p99 >= median && median > 0.0);
    (p99 / median).ln() / 2.3263
}

/// A log-uniform sample in `[lo, hi]` — used where the paper's CDFs span
/// orders of magnitude with roughly straight lines on a log axis.
pub fn log_uniform<R: Rng>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    debug_assert!(0.0 < lo && lo <= hi);
    (rng.gen_range(lo.ln()..=hi.ln())).exp()
}

/// Empirical percentile (nearest-rank) of a data set. `p` in `[0, 100]`.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut r = rng();
        let n = 50_000;
        let rate = 4.0;
        let mean: f64 = (0..n).map(|_| exponential(&mut r, rate)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn std_normal_moments() {
        let mut r = rng();
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| std_normal(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn lognormal_median_is_median() {
        let mut r = rng();
        let n = 50_001;
        let mut xs: Vec<f64> = (0..n).map(|_| lognormal_median(&mut r, 3.0, 1.5)).collect();
        xs.sort_by(f64::total_cmp);
        let med = xs[n / 2];
        assert!((med - 3.0).abs() < 0.15, "median {med}");
    }

    #[test]
    fn sigma_for_p99_roundtrip() {
        // The paper's downtime: median 3 min, p99 100 min.
        let sigma = sigma_for_p99(3.0, 100.0);
        let mut r = rng();
        let n = 100_000;
        let mut xs: Vec<f64> = (0..n)
            .map(|_| lognormal_median(&mut r, 3.0, sigma))
            .collect();
        xs.sort_by(f64::total_cmp);
        let p99 = percentile(&xs, 99.0);
        assert!((p99 / 100.0 - 1.0).abs() < 0.25, "p99 {p99}");
    }

    #[test]
    fn log_uniform_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let x = log_uniform(&mut r, 0.1, 1000.0);
            assert!((0.1..=1000.0).contains(&x));
        }
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
    }
}
