//! Compact SoA flow store — millions of live connections in tens of
//! bytes each.
//!
//! The fleet engine holds millions of concurrent connections per run;
//! a `HashMap<u64, BigStruct>` costs hundreds of bytes per entry once
//! bucket overhead and padding are counted, and pointer-chasing through
//! it wrecks cache locality on the close path. This store keeps exactly
//! the state that cannot be regenerated from the flow's seed — 20 bytes
//! per slot, split across three parallel arrays (structure-of-arrays, so
//! a scan touching only close times streams one array):
//!
//! ```text
//! w0: u64   close_ns:60 | flags:4      (expiry scans touch only this)
//! w1: u64   seq:48      | vip:16
//! w2: u32   dip:8  | version:8 | user:16
//! ```
//!
//! Everything else about a flow — its duration, DIP-selection hash,
//! packet sizes — is a pure function of `(seed, seq)` (see
//! [`crate::stream`]), so storing `seq` stores the whole flow.
//!
//! Slots are recycled through an index-linked free list threaded through
//! `w1` of free slots (a free slot's `w1` holds the next free index, so
//! the list costs zero extra memory). Slot indices are dense `u32`s,
//! which is what lets the timer wheel address flows with 4-byte links.

/// Flag bit: the slot holds a live flow (clear = free-list member).
pub const FLAG_LIVE: u8 = 0b0001;
/// Flag bits callers may use freely (e.g. "probed", "doomed").
pub const FLAG_USER_MASK: u8 = 0b1110;

/// Sentinel for "no slot" in free-list links and caller-side handles.
pub const NO_SLOT: u32 = u32::MAX;

const CLOSE_BITS: u32 = 60;
const CLOSE_MASK: u64 = (1 << CLOSE_BITS) - 1;
const SEQ_BITS: u32 = 48;
const SEQ_MASK: u64 = (1 << SEQ_BITS) - 1;

/// One flow, unpacked. The packed form is three words (20 bytes); this
/// struct is the ergonomic view used at insert/remove boundaries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowRecord {
    /// Trace-unique sequence number (48 bits stored).
    pub seq: u64,
    /// VIP index within the flow's cluster (16 bits stored).
    pub vip: u16,
    /// Selected DIP index within the VIP's pool (8 bits stored).
    pub dip: u8,
    /// DIP-pool version the selection was made against (8 bits stored).
    pub version: u8,
    /// Absolute close time, nanoseconds (60 bits stored).
    pub close_ns: u64,
    /// User flag bits ([`FLAG_USER_MASK`]; [`FLAG_LIVE`] is managed by
    /// the store and ignored on input).
    pub flags: u8,
}

impl FlowRecord {
    /// Pack into the three stored words. Fields wider than their stored
    /// width are truncated (callers stay within the documented budgets;
    /// the round-trip property test pins the widths).
    pub fn pack(&self) -> (u64, u64, u32) {
        let w0 = (self.close_ns & CLOSE_MASK) | (u64::from(self.flags & 0x0f) << CLOSE_BITS);
        let w1 = (self.seq & SEQ_MASK) | (u64::from(self.vip) << SEQ_BITS);
        let w2 = u32::from(self.dip) | (u32::from(self.version) << 8);
        (w0, w1, w2)
    }

    /// Unpack from the three stored words.
    pub fn unpack(w0: u64, w1: u64, w2: u32) -> FlowRecord {
        FlowRecord {
            seq: w1 & SEQ_MASK,
            vip: (w1 >> SEQ_BITS) as u16,
            dip: (w2 & 0xff) as u8,
            version: ((w2 >> 8) & 0xff) as u8,
            close_ns: w0 & CLOSE_MASK,
            flags: ((w0 >> CLOSE_BITS) & 0x0f) as u8,
        }
    }
}

/// The SoA store. See the module docs for the layout.
#[derive(Clone, Debug)]
pub struct FlowStore {
    w0: Vec<u64>,
    w1: Vec<u64>,
    w2: Vec<u32>,
    /// Head of the index-linked free list (threaded through `w1`).
    free_head: u32,
    live: u64,
}

impl Default for FlowStore {
    /// An empty store. The derive would leave `free_head` at `0` — a
    /// phantom free slot with no backing words — so `Default` must route
    /// through [`FlowStore::with_capacity`].
    fn default() -> FlowStore {
        FlowStore::with_capacity(0)
    }
}

impl FlowStore {
    /// An empty store (first insert allocates the initial 64 slots).
    pub fn new() -> FlowStore {
        FlowStore::with_capacity(0)
    }

    /// An empty store with room for `cap` flows before regrowing.
    pub fn with_capacity(cap: usize) -> FlowStore {
        let mut s = FlowStore {
            w0: Vec::with_capacity(cap),
            w1: Vec::with_capacity(cap),
            w2: Vec::with_capacity(cap),
            free_head: NO_SLOT,
            live: 0,
        };
        s.grow_to(cap);
        s
    }

    /// Append fresh slots up to `cap`, threading them onto the free list
    /// in reverse so the head ends at the lowest new index (allocation
    /// fills low indices first — friendlier to the wheel's link arrays).
    fn grow_to(&mut self, cap: usize) {
        let cap = cap.min(NO_SLOT as usize);
        let old_len = self.w0.len();
        if cap <= old_len {
            return;
        }
        self.w0.resize(cap, 0);
        self.w1.resize(cap, 0);
        self.w2.resize(cap, 0);
        let mut head = self.free_head;
        for i in (old_len..cap).rev() {
            if let Some(w) = self.w1.get_mut(i) {
                *w = u64::from(head);
            }
            head = i as u32;
        }
        self.free_head = head;
    }

    /// Insert a flow, returning its slot index.
    pub fn insert(&mut self, rec: FlowRecord) -> u32 {
        if self.free_head == NO_SLOT {
            let cap = (self.w0.len() * 2).max(64);
            self.grow_to(cap);
        }
        let slot = self.free_head;
        let i = slot as usize;
        self.free_head = self.w1.get(i).map_or(NO_SLOT, |w| *w as u32);
        let (w0, w1, w2) = rec.pack();
        if let (Some(a), Some(b), Some(c)) =
            (self.w0.get_mut(i), self.w1.get_mut(i), self.w2.get_mut(i))
        {
            *a = w0 | (u64::from(FLAG_LIVE) << CLOSE_BITS);
            *b = w1;
            *c = w2;
        }
        self.live += 1;
        slot
    }

    /// The flow in `slot`, if live.
    pub fn get(&self, slot: u32) -> Option<FlowRecord> {
        let i = slot as usize;
        let w0 = *self.w0.get(i)?;
        if (w0 >> CLOSE_BITS) as u8 & FLAG_LIVE == 0 {
            return None;
        }
        let mut rec = FlowRecord::unpack(w0, *self.w1.get(i)?, *self.w2.get(i)?);
        rec.flags &= FLAG_USER_MASK; // LIVE is store-internal
        Some(rec)
    }

    /// Set or clear user flag bits on a live slot. Returns `false` if the
    /// slot is not live.
    pub fn set_flags(&mut self, slot: u32, flags: u8, on: bool) -> bool {
        let i = slot as usize;
        let Some(w0) = self.w0.get_mut(i) else {
            return false;
        };
        if (*w0 >> CLOSE_BITS) as u8 & FLAG_LIVE == 0 {
            return false;
        }
        let bits = u64::from(flags & FLAG_USER_MASK) << CLOSE_BITS;
        if on {
            *w0 |= bits;
        } else {
            *w0 &= !bits;
        }
        true
    }

    /// Remove the flow in `slot`, returning it and recycling the slot.
    pub fn remove(&mut self, slot: u32) -> Option<FlowRecord> {
        let rec = self.get(slot)?;
        let i = slot as usize;
        if let (Some(a), Some(b)) = (self.w0.get_mut(i), self.w1.get_mut(i)) {
            *a = 0; // clears FLAG_LIVE
            *b = u64::from(self.free_head);
        }
        self.free_head = slot;
        self.live -= 1;
        Some(rec)
    }

    /// Live flows.
    pub fn live(&self) -> u64 {
        self.live
    }

    /// Slots allocated (live + free).
    pub fn capacity(&self) -> usize {
        self.w0.len()
    }

    /// Heap bytes held by the three arrays (the store's entire footprint).
    pub fn allocated_bytes(&self) -> u64 {
        (self.w0.capacity() * 8 + self.w1.capacity() * 8 + self.w2.capacity() * 4) as u64
    }

    /// Visit every live slot: `f(slot, record)`.
    pub fn for_each_live(&self, mut f: impl FnMut(u32, FlowRecord)) {
        for (i, &w0) in self.w0.iter().enumerate() {
            if (w0 >> CLOSE_BITS) as u8 & FLAG_LIVE != 0 {
                let w1 = self.w1.get(i).copied().unwrap_or(0);
                let w2 = self.w2.get(i).copied().unwrap_or(0);
                f(i as u32, FlowRecord::unpack(w0, w1, w2));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64) -> FlowRecord {
        FlowRecord {
            seq,
            vip: (seq % 149) as u16,
            dip: (seq % 37) as u8,
            version: (seq % 11) as u8,
            close_ns: seq.wrapping_mul(1_000_003) & CLOSE_MASK,
            flags: 0,
        }
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let mut s = FlowStore::with_capacity(4);
        let a = s.insert(rec(1));
        let b = s.insert(rec(2));
        assert_ne!(a, b);
        assert_eq!(s.live(), 2);
        let got = s.get(a).unwrap();
        assert_eq!(got.seq, 1);
        assert_eq!(got.flags & FLAG_LIVE, 0, "LIVE is store-internal");
        assert_eq!(s.remove(a).unwrap().seq, 1);
        assert!(s.get(a).is_none());
        assert!(s.remove(a).is_none(), "double remove is a no-op");
        assert_eq!(s.live(), 1);
    }

    #[test]
    fn slots_are_recycled_lifo() {
        let mut s = FlowStore::with_capacity(2);
        let a = s.insert(rec(1));
        let _b = s.insert(rec(2));
        s.remove(a);
        let c = s.insert(rec(3));
        assert_eq!(c, a, "freed slot must be reused before growth");
        assert_eq!(s.capacity(), 2);
    }

    #[test]
    fn grows_when_full_and_keeps_contents() {
        let mut s = FlowStore::with_capacity(2);
        let slots: Vec<u32> = (0..100).map(|i| s.insert(rec(i))).collect();
        assert_eq!(s.live(), 100);
        for (i, &slot) in slots.iter().enumerate() {
            assert_eq!(s.get(slot).unwrap().seq, i as u64);
        }
    }

    #[test]
    fn user_flags_set_and_clear() {
        let mut s = FlowStore::with_capacity(2);
        let a = s.insert(rec(7));
        assert!(s.set_flags(a, 0b0010, true));
        assert_eq!(s.get(a).unwrap().flags & 0b0010, 0b0010);
        assert!(s.set_flags(a, 0b0010, false));
        assert_eq!(s.get(a).unwrap().flags & 0b0010, 0);
        // LIVE cannot be touched through the user-flag API.
        assert!(s.set_flags(a, FLAG_LIVE, false));
        assert!(s.get(a).is_some());
        s.remove(a);
        assert!(!s.set_flags(a, 0b0010, true));
    }

    #[test]
    fn for_each_live_visits_exactly_the_live_set() {
        let mut s = FlowStore::with_capacity(8);
        let slots: Vec<u32> = (0..6).map(|i| s.insert(rec(i))).collect();
        s.remove(slots[1]);
        s.remove(slots[4]);
        let mut seen = Vec::new();
        s.for_each_live(|slot, r| seen.push((slot, r.seq)));
        assert_eq!(seen.len(), 4);
        assert!(seen.iter().all(|&(_, q)| q != 1 && q != 4));
    }

    #[test]
    fn twenty_bytes_per_slot() {
        let s = FlowStore::with_capacity(1_000);
        assert_eq!(s.allocated_bytes(), 20 * 1_000);
    }
}
