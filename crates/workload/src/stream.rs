//! Streaming seeded flow generation — flows materialize lazily, and
//! every per-flow attribute is regenerable from `(seed, seq)` alone.
//!
//! The fleet engine cannot afford to *store* millions of flows' worth of
//! attributes, and it cannot afford to *pre-generate* them either. This
//! module splits a flow into two independent randomness streams:
//!
//! * **Arrival times** come from one sequential `SmallRng` per generator
//!   (Poisson process — inter-arrival gaps are a running sum, inherently
//!   sequential). This is the only sequential state: 16 bytes of RNG
//!   plus a cursor, regardless of how many flows have been emitted.
//! * **Everything else** (VIP pick, DIP-selection hash, duration) comes
//!   from a fresh `SmallRng` keyed by `(seed, seq)` — the
//!   `per_flow_pkt_len` idiom from [`crate::trace`]. Any consumer can
//!   recompute a flow's attributes at any time from its `seq`, without
//!   replaying the stream — which is what lets the fleet engine's close
//!   path re-derive a flow's VIP and DIP choice for its PCC check while
//!   storing only 20 bytes ([`crate::flow_store`]).
//!
//! Because attributes never touch the arrival RNG, the flow sequence a
//! generator emits is byte-identical for a fixed seed no matter how the
//! fleet is sharded across workers: each cluster owns one generator
//! keyed by `(fleet seed, cluster id)`, and worker assignment cannot
//! perturb it. The determinism test below pins exactly that.

use crate::dists::{exponential, lognormal_median};
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use sr_types::Nanos;

/// Parameters of one cluster's flow stream.
#[derive(Clone, Copy, Debug)]
pub struct StreamConfig {
    /// Stream seed (distinct per cluster: mix the fleet seed with the
    /// cluster id before constructing).
    pub seed: u64,
    /// VIPs in the cluster (the per-flow VIP pick is uniform over these).
    pub vips: u16,
    /// New-flow arrivals per second (Poisson).
    pub arrivals_per_sec: f64,
    /// Median flow duration, seconds.
    pub median_flow_secs: f64,
    /// Log-space sd of flow duration.
    pub flow_sigma: f64,
}

/// Per-flow attributes, regenerable from `(seed, seq)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowAttrs {
    /// VIP index within the cluster.
    pub vip: u16,
    /// DIP-selection hash: the engine maps it onto whatever pool version
    /// is current at open time (`dip_hash % pool_size`-style), so the
    /// *selection inputs* are reproducible even though the selected DIP
    /// depends on pool state.
    pub dip_hash: u64,
    /// Flow duration, nanoseconds.
    pub duration_ns: u64,
}

/// Keyed RNG for flow `seq` of stream `seed` (the `per_flow_pkt_len`
/// mixing constants, with a distinct salt per purpose).
fn keyed_rng(seed: u64, seq: u64, salt: u64) -> SmallRng {
    let key = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(seq.wrapping_mul(0xb5ad_4ece_da1c_e2a9))
        ^ salt;
    SmallRng::seed_from_u64(key)
}

/// Regenerate flow `seq`'s attributes. Pure function of the config's
/// `(seed, vips, median_flow_secs, flow_sigma)` and `seq`.
pub fn flow_attrs(cfg: &StreamConfig, seq: u64) -> FlowAttrs {
    let mut rng = keyed_rng(cfg.seed, seq, 0x00f1_0a77_0a77_u64);
    let vip = (rng.gen_range(0..u32::from(cfg.vips.max(1)))) as u16;
    let dip_hash: u64 = rng.next_u64();
    let duration_ns = duration_ns(cfg, &mut rng, 1.0);
    FlowAttrs {
        vip,
        dip_hash,
        duration_ns,
    }
}

fn duration_ns(cfg: &StreamConfig, rng: &mut SmallRng, median_scale: f64) -> u64 {
    let secs = lognormal_median(
        rng,
        (cfg.median_flow_secs * median_scale).max(1e-9),
        cfg.flow_sigma,
    );
    (secs.clamp(0.0, 3.0e10) * 1e9) as u64
}

/// Residual lifetime for a flow already live at t = 0 (the steady-state
/// prewarm population).
///
/// Sampling `u * duration` with durations drawn like arrivals would
/// undercount long flows: the population alive at a random instant is
/// *length-biased*. For a lognormal, the length-biased distribution is
/// again lognormal with the median scaled by `e^{sigma^2}`, so the
/// prewarm draw scales the median accordingly and then takes a uniform
/// residual fraction — the live count then holds near target instead of
/// sagging while fresh arrivals rebuild the tail.
pub fn prewarm_close_ns(cfg: &StreamConfig, seq: u64) -> u64 {
    let mut rng = keyed_rng(cfg.seed, seq, 0x00c0_1d57_a57e_u64);
    let bias = (cfg.flow_sigma * cfg.flow_sigma).exp();
    let d = duration_ns(cfg, &mut rng, bias);
    let u: f64 = rng.gen_range(0.0..1.0);
    (d as f64 * u) as u64
}

/// One flow arrival.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowOpen {
    /// Stream-unique sequence number (also the regeneration key).
    pub seq: u64,
    /// Arrival time.
    pub at: Nanos,
}

/// The lazy arrival stream. Constant-size state: one `SmallRng`, the
/// next arrival time, and the sequence cursor.
#[derive(Clone, Debug)]
pub struct FlowGen {
    cfg: StreamConfig,
    rng: SmallRng,
    next_at_secs: f64,
    seq: u64,
}

impl FlowGen {
    /// Build the stream. `first_seq` offsets the sequence space (the
    /// fleet engine reserves `[0, prewarm)` for the prewarm population).
    pub fn new(cfg: StreamConfig, first_seq: u64) -> FlowGen {
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x0000_a11c_0de5_eed5_u64);
        let next_at_secs = if cfg.arrivals_per_sec > 0.0 {
            exponential(&mut rng, cfg.arrivals_per_sec)
        } else {
            f64::INFINITY
        };
        FlowGen {
            cfg,
            rng,
            next_at_secs,
            seq: first_seq,
        }
    }

    /// The stream's config (attribute regeneration needs it).
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    /// Arrival time of the next flow without consuming it.
    pub fn peek_at(&self) -> Nanos {
        if self.next_at_secs.is_finite() {
            Nanos((self.next_at_secs * 1e9) as u64)
        } else {
            Nanos::MAX
        }
    }

    /// Consume and return the next arrival.
    pub fn next_open(&mut self) -> FlowOpen {
        let open = FlowOpen {
            seq: self.seq,
            at: self.peek_at(),
        };
        self.seq += 1;
        if self.next_at_secs.is_finite() {
            self.next_at_secs += exponential(&mut self.rng, self.cfg.arrivals_per_sec);
        }
        open
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(seed: u64) -> StreamConfig {
        StreamConfig {
            seed,
            vips: 32,
            arrivals_per_sec: 1_000.0,
            median_flow_secs: 10.0,
            flow_sigma: 0.8,
        }
    }

    #[test]
    fn arrivals_are_monotone_and_match_rate() {
        let mut g = FlowGen::new(cfg(7), 0);
        let mut last = Nanos::ZERO;
        let mut n = 0u64;
        loop {
            let o = g.next_open();
            if o.at > Nanos::from_secs(10) {
                break;
            }
            assert!(o.at >= last);
            last = o.at;
            n += 1;
        }
        // ~10_000 expected; Poisson sd ~100.
        assert!((9_000..=11_000).contains(&n), "{n} arrivals");
    }

    #[test]
    fn attrs_are_pure_functions_of_seed_and_seq() {
        let c = cfg(42);
        for seq in [0u64, 1, 17, 1 << 40] {
            assert_eq!(flow_attrs(&c, seq), flow_attrs(&c, seq));
        }
        assert_ne!(flow_attrs(&c, 1), flow_attrs(&cfg(43), 1));
        let a = flow_attrs(&c, 5);
        assert!(a.vip < 32);
        assert!(a.duration_ns > 0);
    }

    #[test]
    fn attrs_do_not_depend_on_stream_consumption() {
        // Regenerating attributes mid-stream must not perturb arrivals.
        let mut g1 = FlowGen::new(cfg(9), 0);
        let mut g2 = FlowGen::new(cfg(9), 0);
        let mut a = Vec::new();
        let mut b = Vec::new();
        for i in 0..500 {
            a.push(g1.next_open());
            if i % 3 == 0 {
                let _ = flow_attrs(g2.config(), i);
                let _ = prewarm_close_ns(g2.config(), i);
            }
            b.push(g2.next_open());
        }
        assert_eq!(a, b);
    }

    #[test]
    fn prewarm_residuals_are_fractions_of_biased_durations() {
        let c = cfg(3);
        let n = 20_000u64;
        let mean_residual =
            (0..n).map(|q| prewarm_close_ns(&c, q)).sum::<u64>() as f64 / n as f64 / 1e9;
        // Equilibrium mean residual life = E[d^2] / (2 E[d]); for our
        // lognormal (median 10, sigma 0.8) that is
        // 10 e^{sigma^2/2} * e^{sigma^2} / 2 ~ 12.9 s.
        let s2 = 0.8f64 * 0.8;
        let expect = 10.0 * (s2 / 2.0).exp() * s2.exp() / 2.0;
        assert!(
            (mean_residual / expect - 1.0).abs() < 0.1,
            "mean residual {mean_residual:.2}s vs {expect:.2}s"
        );
    }

    #[test]
    fn zero_rate_streams_never_fire() {
        let mut c = cfg(1);
        c.arrivals_per_sec = 0.0;
        let mut g = FlowGen::new(c, 0);
        assert_eq!(g.peek_at(), Nanos::MAX);
        assert_eq!(g.next_open().at, Nanos::MAX);
    }
}
