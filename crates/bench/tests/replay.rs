//! End-to-end check of the pcap replay path against the in-memory switch.
//!
//! The claim under test (ISSUE acceptance): replaying an exported capture
//! through `sr_bench::replay` — parse from raw bytes, steer, resolve,
//! rewrite — produces **bit-identical per-flow DIP choices** to a
//! `MultiPipeSwitch` fed the very same packet stream directly from the
//! trace exporter's callback, never touching the wire format. The only
//! shared inputs are the trace config and the batching discipline; the
//! pcap side additionally round-trips every packet through frame
//! synthesis, microsecond timestamp truncation, file bytes, and the
//! zero-copy parser.

use silkroad::{DataPath, ForwardDecision, MultiPipeSwitch, PoolUpdate, SilkRoadConfig};
use sr_bench::replay::{self, export_profile, DIPS_PER_VIP, EXPORT_DATA_PKTS};
use sr_types::{Addr, Nanos, PacketMeta, RewriteMode, Vip};
use sr_wire::{export_trace, PcapWriter};
use std::collections::{BTreeSet, HashMap};

const BATCH: usize = 1_024;

/// FNV-1a 64, mirroring the replay driver's digest recipe.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

fn digest_decision(fnv: &mut Fnv, d: &ForwardDecision) {
    fnv.write(&[match d.path {
        DataPath::AsicConnTable => 0,
        DataPath::AsicVipTable => 1,
        DataPath::SoftwareRedirect => 2,
        DataPath::Dropped => 3,
        DataPath::NotVip => 4,
    }]);
    if let Some(dip) = d.dip {
        let mut buf = [0u8; 18];
        let n = dip.0.encode_to(&mut buf, 0);
        fnv.write(&buf[..n]);
    }
    if let Some(v) = d.version {
        fnv.write(&v.0.to_be_bytes());
    }
    fnv.write(&[u8::from(d.conn_table_hit)]);
}

/// Export the smoke trace, capturing the exporter's own packet stream.
fn smoke_capture() -> (Vec<u8>, Vec<(Nanos, PacketMeta)>) {
    let mut metas = Vec::new();
    let mut w = PcapWriter::new(Vec::new()).unwrap();
    export_trace(&export_profile(true), EXPORT_DATA_PKTS, &mut w, |ts, m| {
        // pcap timestamps round down to microseconds; the in-memory twin
        // must see the same clock the replay side reads back.
        metas.push((Nanos(ts.0 / 1_000 * 1_000), *m));
    })
    .unwrap();
    (w.finish().unwrap(), metas)
}

/// Run the exporter's packet stream through a switch configured exactly
/// like the replay driver's, with the same batching and the same
/// mid-capture DIP-pool update, collecting every decision.
fn in_memory_decisions(metas: &[(Nanos, PacketMeta)], pipes: usize) -> Vec<ForwardDecision> {
    let dsts: BTreeSet<Addr> = metas.iter().map(|(_, m)| m.tuple.dst).collect();
    let conns: BTreeSet<Vec<u8>> = metas.iter().map(|(_, m)| m.tuple.key_bytes()).collect();
    let cfg = SilkRoadConfig {
        conn_capacity: (conns.len() * 2).max(4_096),
        digest_bits: 24,
        transit_bytes: 4_096,
        ..Default::default()
    };
    let mut sw = MultiPipeSwitch::inline(cfg, pipes);
    let vips: Vec<(Vip, Addr)> = dsts.iter().map(|a| (Vip(*a), *a)).collect();
    for (i, (vip, addr)) in vips.iter().enumerate() {
        let dips = (0..DIPS_PER_VIP)
            .map(|d| sr_workload::trace::dip_addr(addr.family(), i as u32, d))
            .collect();
        sw.add_vip(*vip, dips).unwrap();
    }
    let update_at = metas.len() as u64 / 2;
    let update_vip = vips[0].0;
    let update_dip = sr_workload::trace::dip_addr(vips[0].1.family(), 0, 0);

    let mut out = Vec::new();
    let mut batch = Vec::with_capacity(BATCH);
    let mut injected = false;
    let mut i = 0usize;
    while i < metas.len() {
        let end = (i + BATCH).min(metas.len());
        let now = metas[i].0;
        if !injected && i as u64 >= update_at {
            sw.request_update(update_vip, PoolUpdate::Remove(update_dip), now)
                .unwrap();
            injected = true;
        }
        sw.advance(now);
        batch.clear();
        batch.extend(metas[i..end].iter().map(|(_, m)| *m));
        sw.process_batch_into(&batch, now, &mut out);
        i = end;
    }
    assert!(injected, "the mid-trace update must have fired");
    assert!(
        sw.stats().updates_completed >= 1,
        "the pool update must complete within the capture"
    );
    out
}

#[test]
fn pcap_replay_matches_in_memory_switch_bit_for_bit() {
    let (pcap, metas) = smoke_capture();
    let report = replay::replay(&pcap, 2, RewriteMode::Nat).unwrap();
    assert_eq!(report.frames as usize, metas.len());
    assert_eq!(report.parse_errors, 0);
    assert!(report.ok(), "{}", report.to_json());

    let decisions = in_memory_decisions(&metas, 2);
    assert_eq!(decisions.len(), metas.len());
    let mut fnv = Fnv::new();
    for d in &decisions {
        digest_decision(&mut fnv, d);
    }
    assert_eq!(
        fnv.0, report.decision_digest,
        "wire-replayed decisions diverged from the in-memory switch"
    );
}

#[test]
fn pcc_holds_across_the_injected_pool_update() {
    let (pcap, metas) = smoke_capture();
    let report = replay::replay(&pcap, 2, RewriteMode::Nat).unwrap();
    assert_eq!(report.pcc_violations, 0);

    // Reconstruct the per-flow DIP history from the in-memory twin and
    // show the update was not vacuous: connections pinned to the removed
    // DIP before the update keep it afterwards, while the removed DIP
    // stops receiving *new* connections once the update completes.
    let decisions = in_memory_decisions(&metas, 2);
    let update_at = metas.len() / 2;
    let removed = sr_workload::trace::dip_addr(metas[0].1.tuple.dst.family(), 0, 0);
    let mut pinned: HashMap<Vec<u8>, (Addr, usize)> = HashMap::new();
    let mut survivors = 0u64;
    for (i, ((_, m), d)) in metas.iter().zip(&decisions).enumerate() {
        let Some(dip) = d.dip else { continue };
        match pinned.get(&m.tuple.key_bytes()) {
            None => {
                pinned.insert(m.tuple.key_bytes(), (dip.0, i));
            }
            Some(&(first, opened)) => {
                assert_eq!(first, dip.0, "PCC violation at frame {i}");
                if first == removed.0 && opened < update_at && i > update_at {
                    survivors += 1;
                }
            }
        }
    }
    assert!(
        survivors > 0,
        "no pre-update connection on the removed DIP survived past the \
         update — the PCC check never exercised a live migration window"
    );
}

#[test]
fn smoke_golden_digest_is_stable() {
    // The CI gate pins this digest (crates/bench/golden/replay_smoke.digest);
    // keep the in-tree copy honest so a drift shows up locally first.
    let (pcap, _) = smoke_capture();
    let report = replay::replay(&pcap, 2, RewriteMode::Nat).unwrap();
    let pinned = include_str!("../golden/replay_smoke.digest").trim();
    assert_eq!(
        format!("{:016x}", report.decision_digest),
        pinned,
        "smoke decision digest drifted — regenerate crates/bench/golden/ \
         (repro export + replay --smoke) if the change is intentional"
    );
}
