//! CLI contract for the `repro` driver: bad flags must fail fast with a
//! usage error (exit code 2) *before* any work starts — a misspelled or
//! nonsensical flag silently falling back to full-scale defaults is how
//! an overnight benchmark run gets wasted.

use std::process::Command;

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro")
}

fn stderr(out: &std::process::Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn zero_jobs_is_a_usage_error() {
    let out = repro(&["table1", "--jobs", "0"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("positive integer"),
        "unhelpful error: {}",
        stderr(&out)
    );
}

#[test]
fn zero_pipes_is_a_usage_error() {
    for args in [
        &["replay", "x.pcap", "--pipes", "0"][..],
        &["replay", "x.pcap", "--pipes=0"][..],
    ] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
        assert!(stderr(&out).contains("positive integer"), "args {args:?}");
    }
}

#[test]
fn non_numeric_counts_are_usage_errors() {
    for args in [
        &["table1", "--jobs", "many"][..],
        &["table1", "--jobs=-3"][..],
        &["replay", "x.pcap", "--pipes", "4x"][..],
    ] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
        assert!(
            stderr(&out).contains("positive integer"),
            "args {args:?}: {}",
            stderr(&out)
        );
    }
}

#[test]
fn missing_count_value_is_a_usage_error() {
    let out = repro(&["table1", "--jobs"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("needs a value"));
}

#[test]
fn unknown_flags_are_rejected_not_ignored() {
    for args in [
        &["table1", "--job", "4"][..],
        &["scale", "--smok"][..],
        &["wall", "--pin"][..],
        &["fleet", "--smok"][..],
        &["fleet", "--workers", "4"][..],
    ] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
        assert!(
            stderr(&out).contains("unknown flag"),
            "args {args:?}: {}",
            stderr(&out)
        );
    }
}

#[test]
fn unknown_targets_are_rejected() {
    let out = repro(&["fig99"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown target"));
}

#[test]
fn help_lists_the_verification_targets() {
    let out = repro(&["help"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    for target in ["check", "scale", "wall", "fleet", "export", "replay"] {
        assert!(stdout.contains(target), "help omits '{target}'");
    }
}
