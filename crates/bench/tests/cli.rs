//! CLI contract for the `repro` driver: bad flags must fail fast with a
//! usage error (exit code 2) *before* any work starts — a misspelled or
//! nonsensical flag silently falling back to full-scale defaults is how
//! an overnight benchmark run gets wasted.

use std::process::Command;

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro")
}

fn stderr(out: &std::process::Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn zero_jobs_is_a_usage_error() {
    let out = repro(&["table1", "--jobs", "0"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("positive integer"),
        "unhelpful error: {}",
        stderr(&out)
    );
}

#[test]
fn zero_pipes_is_a_usage_error() {
    for args in [
        &["replay", "x.pcap", "--pipes", "0"][..],
        &["replay", "x.pcap", "--pipes=0"][..],
    ] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
        assert!(stderr(&out).contains("positive integer"), "args {args:?}");
    }
}

#[test]
fn non_numeric_counts_are_usage_errors() {
    for args in [
        &["table1", "--jobs", "many"][..],
        &["table1", "--jobs=-3"][..],
        &["replay", "x.pcap", "--pipes", "4x"][..],
    ] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
        assert!(
            stderr(&out).contains("positive integer"),
            "args {args:?}: {}",
            stderr(&out)
        );
    }
}

#[test]
fn missing_count_value_is_a_usage_error() {
    let out = repro(&["table1", "--jobs"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("needs a value"));
}

#[test]
fn unknown_flags_are_rejected_not_ignored() {
    for args in [
        &["table1", "--job", "4"][..],
        &["scale", "--smok"][..],
        &["wall", "--pin"][..],
        &["fleet", "--smok"][..],
        &["fleet", "--workers", "4"][..],
        &["churn", "--smok"][..],
        &["churn", "--floo"][..],
        &["churn", "--storm", "10"][..],
        &["compare", "--smok"][..],
        &["compare", "--algos", "concury"][..],
    ] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
        assert!(
            stderr(&out).contains("unknown flag"),
            "args {args:?}: {}",
            stderr(&out)
        );
    }
}

#[test]
fn p4_flag_without_a_path_is_a_usage_error() {
    let out = repro(&["check", "--p4"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("needs a value"));
}

#[test]
fn p4_flag_with_an_unreadable_path_is_a_usage_error() {
    for args in [
        &["check", "--p4", "no_such_file.p4"][..],
        &["check", "--p4=no_such_file.p4"][..],
    ] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
        assert!(
            stderr(&out).contains("failed to read"),
            "args {args:?}: {}",
            stderr(&out)
        );
    }
}

#[test]
fn misspelled_p4_flag_is_rejected() {
    for args in [&["check", "--p"][..], &["check", "--p4file", "x.p4"][..]] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
        assert!(stderr(&out).contains("unknown flag"), "args {args:?}");
    }
}

/// A semantically broken program must fail `check --p4` with exit 1 and
/// the SRC diagnostic on stdout — not exit 0, and not a usage error.
#[test]
fn semantic_diagnostics_fail_the_p4_check() {
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../p4/tests/fixtures/src104_undeclared_ref.p4");
    let path = dir.to_str().expect("fixture path is utf-8");
    let out = repro(&["check", "--p4", path]);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("SRC104"), "diagnostic missing: {stdout}");
    assert!(stderr(&out).contains("rejected"));
}

/// The bundled sources pass `check --p4` end to end: parse, semantic,
/// lowering, and srcheck placement.
#[test]
fn bundled_p4_sources_pass_the_p4_check() {
    let p4_dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../p4");
    for name in ["silkroad.p4", "charon_lb.p4"] {
        let path = p4_dir.join(name);
        let out = repro(&["check", "--p4", path.to_str().expect("utf-8 path")]);
        assert_eq!(
            out.status.code(),
            Some(0),
            "{name} stderr: {}",
            stderr(&out)
        );
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        for phase in ["parse     : OK", "semantic  : OK", "lowering  : OK"] {
            assert!(stdout.contains(phase), "{name} missing '{phase}': {stdout}");
        }
    }
}

/// The default `repro check` is routed through the bundled P4 source and
/// reports parity against the hand-built reference program.
#[test]
fn default_check_compiles_bundled_p4_and_reports_parity() {
    let out = repro(&["check"]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("p4/silkroad.p4"), "stdout: {stdout}");
    assert!(stdout.contains("p4/charon_lb.p4"), "stdout: {stdout}");
    assert!(
        stdout.contains("IDENTICAL"),
        "parity line missing: {stdout}"
    );
}

/// `compare --algo` is a closed registry: an unknown algorithm name is a
/// usage error that lists the valid zoo members, so a typo cannot
/// silently fall back to running the full (long) matrix.
#[test]
fn unknown_algorithms_are_usage_errors() {
    for args in [
        &["compare", "--algo", "maglev"][..],
        &["compare", "--algo=maglev"][..],
        &["compare", "--algo", "SilkRoad"][..], // names are exact, lowercase
    ] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
        let err = stderr(&out);
        assert!(err.contains("unknown algorithm"), "args {args:?}: {err}");
        for name in ["silkroad", "concury", "cucotrack", "hybrid"] {
            assert!(err.contains(name), "args {args:?} omits '{name}': {err}");
        }
    }
}

#[test]
fn algo_flag_without_a_value_is_a_usage_error() {
    let out = repro(&["compare", "--algo"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("needs a value"));
}

#[test]
fn unknown_targets_are_rejected() {
    let out = repro(&["fig99"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown target"));
}

#[test]
fn help_lists_the_verification_targets() {
    let out = repro(&["help"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    for target in [
        "check", "scale", "wall", "fleet", "churn", "compare", "export", "replay",
    ] {
        assert!(stdout.contains(target), "help omits '{target}'");
    }
}
