//! Criterion microbenchmarks for the hot primitives.
//!
//! * `cuckoo/*` — the §5.2 insertion-throughput claim (200 K conn/s is a
//!   *CPU* budget; the in-memory structure must be far faster);
//! * `dataplane/*` — per-packet SilkRoad processing;
//! * `bloom`, `digest`, `maglev`, `meter` — supporting primitives.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use silkroad::{FlowSteering, MultiPipeSwitch, PoolUpdate, SilkRoadConfig, SilkRoadSwitch};
use sr_asic::{Meter, MeterConfig};
use sr_hash::cuckoo::{CuckooConfig, CuckooTable};
use sr_hash::maglev::MaglevTable;
use sr_hash::{BloomFilter, DigestFn, HashFn};
use sr_types::{Addr, Dip, FiveTuple, Nanos, PacketMeta, Vip};

fn key(i: u64) -> [u8; 13] {
    let mut k = [0u8; 13];
    k[..8].copy_from_slice(&i.to_be_bytes());
    k
}

fn bench_cuckoo(c: &mut Criterion) {
    let mut g = c.benchmark_group("cuckoo");
    g.throughput(Throughput::Elements(1));

    g.bench_function("insert_at_70pct_load", |b| {
        let cfg = CuckooConfig::for_capacity(100_000, 4, 4, 7);
        let mut t: CuckooTable<u32> = CuckooTable::new(cfg);
        let target = (t.config().total_slots() as f64 * 0.7) as u64;
        for i in 0..target {
            let _ = t.insert(&key(i), 0);
        }
        let mut i = target;
        b.iter(|| {
            i += 1;
            let _ = t.insert(&key(i), 0);
            let _ = t.remove(&key(i));
        });
    });

    g.bench_function("lookup_hit", |b| {
        let cfg = CuckooConfig::for_capacity(100_000, 4, 4, 7);
        let mut t: CuckooTable<u32> = CuckooTable::new(cfg);
        for i in 0..80_000u64 {
            let _ = t.insert(&key(i), 0);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 80_000;
            criterion::black_box(t.lookup(&key(i)));
        });
    });

    g.finish();
}

fn bench_primitives(c: &mut Criterion) {
    c.bench_function("hash_13B", |b| {
        let h = HashFn::new(1);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            criterion::black_box(h.hash(&key(criterion::black_box(i))))
        });
    });

    c.bench_function("digest_16bit", |b| {
        let d = DigestFn::new(1, 16);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            criterion::black_box(d.digest(&key(criterion::black_box(i))))
        });
    });

    c.bench_function("bloom_insert_query", |b| {
        let mut f = BloomFilter::new(256, 4, 1);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            f.insert(&key(i));
            criterion::black_box(f.contains(&key(i)))
        });
    });

    c.bench_function("maglev_build_100_backends", |b| {
        let keys: Vec<Vec<u8>> = (0..100).map(|i| format!("dip-{i}").into_bytes()).collect();
        b.iter(|| criterion::black_box(MaglevTable::build(&keys, 65_537, 3)));
    });

    c.bench_function("meter_mark", |b| {
        let mut m = Meter::new(MeterConfig::gbps(4.0, 4.0, 1.0));
        let mut t = 0u64;
        b.iter(|| {
            t += 1200; // ~1500B at 10 Gbps
            criterion::black_box(m.mark(Nanos(t), 1500))
        });
    });
}

fn bench_dataplane(c: &mut Criterion) {
    let mut g = c.benchmark_group("dataplane");
    g.throughput(Throughput::Elements(1));

    fn setup_with(
        conns: u64,
        vip_addr: Addr,
        dips: Vec<Dip>,
        client: impl Fn(u64) -> Addr,
    ) -> (SilkRoadSwitch, Vec<FiveTuple>) {
        let cfg = SilkRoadConfig {
            conn_capacity: (conns as usize * 2).max(4096),
            ..Default::default()
        };
        let mut sw = SilkRoadSwitch::new(cfg);
        sw.add_vip(Vip(vip_addr), dips).unwrap();
        let tuples: Vec<FiveTuple> = (0..conns)
            .map(|i| FiveTuple::tcp(client(i), vip_addr))
            .collect();
        // Every SYN carries the same timestamp, so the batched entry point
        // is interchangeable with a per-packet loop here.
        let syns: Vec<PacketMeta> = tuples.iter().map(|t| PacketMeta::syn(*t)).collect();
        sw.process_batch(&syns, Nanos::ZERO);
        sw.advance(Nanos::from_secs(10));
        (sw, tuples)
    }

    fn setup(conns: u64) -> (SilkRoadSwitch, Vec<FiveTuple>) {
        setup_with(
            conns,
            Addr::v4(20, 0, 0, 1, 80),
            (1..=16).map(|i| Dip(Addr::v4(10, 0, 0, i, 20))).collect(),
            |i| Addr::v4_indexed(100, (i / 60_000) as u32, 1024 + (i % 60_000) as u16),
        )
    }

    g.bench_function("conn_table_hit_100k_resident", |b| {
        let (mut sw, tuples) = setup(100_000);
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % tuples.len();
            criterion::black_box(
                sw.process_packet(&PacketMeta::data(tuples[i], 800), Nanos::from_secs(20)),
            )
        });
    });

    const BATCH: usize = 1024;

    g.throughput(Throughput::Elements(BATCH as u64));
    g.bench_function("process_batch_hit_100k_resident", |b| {
        let (mut sw, tuples) = setup(100_000);
        let pkts: Vec<PacketMeta> = tuples.iter().map(|t| PacketMeta::data(*t, 800)).collect();
        let mut out = Vec::with_capacity(BATCH);
        let mut off = 0usize;
        b.iter(|| {
            off = (off + BATCH) % (pkts.len() - BATCH);
            out.clear();
            sw.process_batch_into(&pkts[off..off + BATCH], Nanos::from_secs(20), &mut out);
            criterion::black_box(out.len())
        });
    });

    g.bench_function("process_batch_hit_v6_resident", |b| {
        let (mut sw, tuples) = setup_with(
            100_000,
            Addr::v6_indexed(0x0a0a, 1, 443),
            (1..=16u32)
                .map(|i| Dip(Addr::v6_indexed(0x0d1b, i, 20)))
                .collect(),
            |i| Addr::v6_indexed(0xc11e, i as u32, 1024),
        );
        let pkts: Vec<PacketMeta> = tuples.iter().map(|t| PacketMeta::data(*t, 800)).collect();
        let mut out = Vec::with_capacity(BATCH);
        let mut off = 0usize;
        b.iter(|| {
            off = (off + BATCH) % (pkts.len() - BATCH);
            out.clear();
            sw.process_batch_into(&pkts[off..off + BATCH], Nanos::from_secs(20), &mut out);
            criterion::black_box(out.len())
        });
    });

    g.throughput(Throughput::Elements(1));

    g.bench_function("miss_path_with_learn", |b| {
        let (mut sw, _) = setup(10_000);
        let mut i = 1_000_000u64;
        b.iter(|| {
            i += 1;
            let t = FiveTuple::tcp(
                Addr::v4_indexed(101, (i / 60_000) as u32, 1024 + (i % 60_000) as u16),
                Addr::v4(20, 0, 0, 1, 80),
            );
            criterion::black_box(sw.process_packet(&PacketMeta::syn(t), Nanos::from_secs(20)))
        });
    });

    g.bench_function("dip_pool_update_cycle", |b| {
        let (mut sw, _) = setup(10_000);
        let vip = Vip(Addr::v4(20, 0, 0, 1, 80));
        let dip = Dip(Addr::v4(10, 0, 0, 1, 20));
        let mut t = Nanos::from_secs(30);
        b.iter_batched(
            || (),
            |()| {
                t += sr_types::Duration::from_millis(50);
                sw.request_update(vip, PoolUpdate::Remove(dip), t).unwrap();
                t += sr_types::Duration::from_millis(50);
                sw.request_update(vip, PoolUpdate::Add(dip), t).unwrap();
                sw.advance(t + sr_types::Duration::from_millis(50));
            },
            BatchSize::SmallInput,
        );
    });

    g.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    const BATCH: usize = 1024;

    // SYNs arrive in sub-filter-capacity waves with an advance between
    // each, so every flow is learned and installed (one monolithic burst
    // would overflow the 2K learning filter and leave most of the trace
    // on the fallback path).
    fn setup(pipes: usize, conns: u64) -> (MultiPipeSwitch, Vec<PacketMeta>) {
        let cfg = SilkRoadConfig {
            conn_capacity: (conns as usize) * 2,
            ..Default::default()
        };
        let mut sw = MultiPipeSwitch::inline(cfg, pipes);
        let vip_addr = Addr::v4(20, 0, 0, 1, 80);
        sw.add_vip(
            Vip(vip_addr),
            (1..=16).map(|i| Dip(Addr::v4(10, 0, 0, i, 20))).collect(),
        )
        .unwrap();
        let syns: Vec<PacketMeta> = (0..conns)
            .map(|i| {
                PacketMeta::syn(FiveTuple::tcp(
                    Addr::v4_indexed(100, (i / 60_000) as u32, 1024 + (i % 60_000) as u16),
                    vip_addr,
                ))
            })
            .collect();
        let mut now = Nanos::ZERO;
        for wave in syns.chunks(1_024) {
            sw.process_batch(wave, now);
            now = now.saturating_add(sr_types::Duration::from_millis(10));
            sw.advance(now);
        }
        sw.advance(Nanos::from_secs(10));
        let pkts = syns
            .iter()
            .map(|p| PacketMeta::data(p.tuple, 800))
            .collect();
        (sw, pkts)
    }

    g.throughput(Throughput::Elements(BATCH as u64));
    for pipes in [1usize, 4] {
        g.bench_function(&format!("multipipe_batch_hit_{pipes}p"), |b| {
            let (mut sw, pkts) = setup(pipes, 100_000);
            let mut out = Vec::with_capacity(BATCH);
            let mut off = 0usize;
            b.iter(|| {
                off = (off + BATCH) % (pkts.len() - BATCH);
                out.clear();
                sw.process_batch_into(&pkts[off..off + BATCH], Nanos::from_secs(20), &mut out);
                criterion::black_box(out.len())
            });
        });
    }

    g.throughput(Throughput::Elements(1));
    g.bench_function("steering_pipe_for", |b| {
        let s = FlowSteering::new(1, 4);
        let tuples: Vec<FiveTuple> = (0..4_096u32)
            .map(|i| {
                FiveTuple::tcp(
                    Addr::v4_indexed(100, i, 1024 + (i % 251) as u16),
                    Addr::v4(20, 0, 0, 1, 80),
                )
            })
            .collect();
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % tuples.len();
            criterion::black_box(s.pipe_for(&tuples[i]))
        });
    });

    g.finish();
}

fn bench_wire(c: &mut Criterion) {
    use sr_types::{FrameView, RewriteMode, TcpFlags};
    use sr_wire::{build_frame, parse_frame, rewrite_frame, FrameSpec, ENCAP_HEADROOM};

    let mut g = c.benchmark_group("wire");
    const BATCH: usize = 1024;

    fn frames_for(tuples: &[FiveTuple], wire_len: u32) -> Vec<Vec<u8>> {
        tuples
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let mut buf = vec![0u8; 2048];
                let n = build_frame(
                    &FrameSpec {
                        tuple: *t,
                        flags: TcpFlags::ACK,
                        wire_len,
                        seq: i as u64,
                    },
                    &mut buf,
                )
                .unwrap();
                buf.truncate(n);
                buf
            })
            .collect()
    }

    fn tuples(n: u32) -> Vec<FiveTuple> {
        (0..n)
            .map(|i| {
                FiveTuple::tcp(
                    Addr::v4_indexed(100, i, 1024 + (i % 251) as u16),
                    Addr::v4(20, 0, 0, 1, 80),
                )
            })
            .collect()
    }

    g.throughput(Throughput::Elements(1));
    g.bench_function("parse", |b| {
        let frames = frames_for(&tuples(4_096), 400);
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % frames.len();
            criterion::black_box(parse_frame(&frames[i]).unwrap())
        });
    });

    g.bench_function("rewrite", |b| {
        let ts = tuples(4_096);
        let frames = frames_for(&ts, 400);
        let parsed: Vec<FrameView> = frames
            .iter()
            .map(|f| parse_frame(f).unwrap().view)
            .collect();
        let dip = Dip(Addr::v4(10, 0, 0, 1, 20));
        let op = sr_types::RewriteOp {
            dip,
            mode: RewriteMode::Nat,
        };
        let mut out = [0u8; 2048];
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % frames.len();
            criterion::black_box(rewrite_frame(&frames[i], &parsed[i], &op, &mut out).unwrap())
        });
    });

    // Whole replay hot path per batch: parse 1024 frames, steer + resolve
    // them through a 4-pipe switch, rewrite every decision. The same
    // composition `repro replay` times end to end.
    g.throughput(Throughput::Elements(BATCH as u64));
    g.bench_function("replay_batch", |b| {
        let ts = tuples(32_768);
        let frames = frames_for(&ts, 400);
        let cfg = SilkRoadConfig {
            conn_capacity: ts.len() * 2,
            ..Default::default()
        };
        let mut sw = MultiPipeSwitch::inline(cfg, 4);
        let vip_addr = Addr::v4(20, 0, 0, 1, 80);
        sw.add_vip(
            Vip(vip_addr),
            (1..=16).map(|i| Dip(Addr::v4(10, 0, 0, i, 20))).collect(),
        )
        .unwrap();
        let mut now = Nanos::ZERO;
        for wave in ts.chunks(1_024) {
            let syns: Vec<PacketMeta> = wave.iter().map(|t| PacketMeta::syn(*t)).collect();
            sw.process_batch(&syns, now);
            now = now.saturating_add(sr_types::Duration::from_millis(10));
            sw.advance(now);
        }
        sw.advance(Nanos::from_secs(10));

        let mut metas: Vec<PacketMeta> = Vec::with_capacity(BATCH);
        let mut views: Vec<FrameView> = Vec::with_capacity(BATCH);
        let mut out: Vec<silkroad::ForwardDecision> = Vec::with_capacity(BATCH);
        let mut rewritten = [0u8; 2048 + ENCAP_HEADROOM];
        let mut off = 0usize;
        b.iter(|| {
            off = (off + BATCH) % (frames.len() - BATCH);
            metas.clear();
            views.clear();
            out.clear();
            for f in &frames[off..off + BATCH] {
                let p = parse_frame(f).unwrap();
                metas.push(p.meta);
                views.push(p.view);
            }
            sw.process_batch_into(&metas, Nanos::from_secs(20), &mut out);
            let mut n = 0usize;
            for ((f, v), d) in frames[off..off + BATCH].iter().zip(&views).zip(&out) {
                if let Some(op) = d.rewrite_op(RewriteMode::Nat) {
                    n += rewrite_frame(f, v, &op, &mut rewritten).unwrap();
                }
            }
            criterion::black_box(n)
        });
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_cuckoo, bench_primitives, bench_dataplane, bench_engine, bench_wire
}
criterion_main!(benches);
