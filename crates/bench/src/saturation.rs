//! `repro scale` — multi-pipe saturation sweep (`BENCH_throughput.json`).
//!
//! Sweeps the [`MultiPipeSwitch`] over 1..N pipes on one steady-state
//! trace and reports aggregate packets-per-second per pipe count.
//!
//! ## What the numbers mean
//!
//! On a real chip the pipes are independent hardware: each drains its own
//! share of the trace concurrently, so chip throughput is limited by the
//! steering stage plus the *slowest single pipe*. This harness measures
//! exactly those components — a serial steering pass over the whole
//! trace, then each pipe's drain timed in isolation — and models
//!
//! ```text
//! pps = packets / (steer_time + max_over_pipes(busy_time))
//! ```
//!
//! That equals the wall-clock rate of a host with >= N cores and is
//! reported as `pps` (with its ratio to the 1-pipe point as
//! `modeled_speedup`). The single-threaded wall-clock rate — every pipe
//! drained back to back on one core, which is what a 1-CPU CI container
//! can actually observe — is reported separately as `wall_pps` (ratio:
//! `wall_speedup`). Both are recorded in the JSON; the >= 3x speedup
//! target applies to the modeled aggregate. *Measured* wall-clock
//! scaling through the run-to-completion engine's worker threads is the
//! job of `repro wall` (`BENCH_wall.json`), not this model.
//!
//! The sweep also cross-checks decision identity: every pipe count must
//! produce bit-identical per-flow [`ForwardDecision`]s on the same trace
//! (the stronger version of this property, including across a DIP-pool
//! update, is asserted by `tests/multi_pipe.rs`).

use silkroad::{ForwardDecision, MultiPipeSwitch, SilkRoadConfig};
use sr_types::{Addr, Dip, FiveTuple, Nanos, PacketMeta, Vip};

/// One pipe count's measurement.
#[derive(Clone, Debug)]
pub struct ScalePoint {
    /// Pipes in the engine.
    pub pipes: usize,
    /// Packets timed (flows x passes).
    pub packets: u64,
    /// Serial steering pass over the whole trace, nanoseconds.
    pub steer_ns: u64,
    /// The slowest pipe's drain time, nanoseconds.
    pub max_pipe_busy_ns: u64,
    /// Sum of every pipe's drain time, nanoseconds.
    pub total_busy_ns: u64,
    /// Modeled aggregate packets/s: `packets / (steer + max_busy)`.
    pub pps: f64,
    /// Single-threaded wall-clock packets/s (steer + *sum* of drains).
    pub wall_pps: f64,
}

/// A full sweep result.
#[derive(Clone, Debug)]
pub struct ScaleSweep {
    /// Flows in the trace.
    pub flows: u32,
    /// Steady-state passes over the trace.
    pub passes: u32,
    /// Batch size fed to `process_batch_into`.
    pub batch: usize,
    /// Whether every pipe count produced identical per-flow decisions.
    pub decisions_match: bool,
    /// Cores on the host that ran the sweep.
    pub host_cores: usize,
    /// Peak resident set of the process (`None` off-Linux).
    pub peak_rss_bytes: Option<u64>,
    /// One point per swept pipe count.
    pub points: Vec<ScalePoint>,
}

impl ScaleSweep {
    /// Speedup of `pipes` over the 1-pipe point in the *modeled* chip
    /// aggregate (`pps`): what N independent hardware pipes would do.
    pub fn modeled_speedup(&self, pipes: usize) -> Option<f64> {
        let base = self.points.iter().find(|p| p.pipes == 1)?;
        let p = self.points.iter().find(|p| p.pipes == pipes)?;
        Some(p.pps / base.pps)
    }

    /// Speedup of `pipes` over the 1-pipe point in the single-threaded
    /// wall-clock rate (`wall_pps`). On one core this hovers near 1.0 —
    /// that is precisely the scaling bug the run-to-completion engine
    /// exists to fix; see `repro wall` for measured multi-core scaling.
    pub fn wall_speedup(&self, pipes: usize) -> Option<f64> {
        let base = self.points.iter().find(|p| p.pipes == 1)?;
        let p = self.points.iter().find(|p| p.pipes == pipes)?;
        Some(p.wall_pps / base.wall_pps)
    }

    /// Render as the committed `BENCH_throughput.json` document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"bench\": \"scale\",\n");
        s.push_str(&format!("  \"flows\": {},\n", self.flows));
        s.push_str(&format!("  \"passes\": {},\n", self.passes));
        s.push_str(&format!("  \"batch\": {},\n", self.batch));
        s.push_str(&format!(
            "  \"decisions_match\": {},\n",
            self.decisions_match
        ));
        s.push_str(&format!("  \"host_cores\": {},\n", self.host_cores));
        s.push_str(&format!(
            "  \"peak_rss_bytes\": {},\n",
            crate::rss::rss_json(self.peak_rss_bytes)
        ));
        s.push_str(
            "  \"note\": \"pps models N independent hardware pipes: packets / (steer + max \
             per-pipe busy); wall_pps is the single-threaded rate (steer + sum of busies)\",\n",
        );
        s.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"pipes\": {}, \"packets\": {}, \"steer_ns\": {}, \
                 \"max_pipe_busy_ns\": {}, \"total_busy_ns\": {}, \"pps\": {:.0}, \
                 \"wall_pps\": {:.0}, \"modeled_speedup\": {:.3}, \
                 \"wall_speedup\": {:.3}}}{}\n",
                p.pipes,
                p.packets,
                p.steer_ns,
                p.max_pipe_busy_ns,
                p.total_busy_ns,
                p.pps,
                p.wall_pps,
                self.modeled_speedup(p.pipes).unwrap_or(1.0),
                self.wall_speedup(p.pipes).unwrap_or(1.0),
                if i + 1 == self.points.len() { "" } else { "," }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

fn vip() -> Vip {
    Vip(Addr::v4(20, 0, 0, 1, 80))
}

fn trace_cfg(flows: u32) -> SilkRoadConfig {
    SilkRoadConfig {
        conn_capacity: (flows as usize) * 2,
        // 24-bit digests: collision geometry differs between shard sizes,
        // so drive false hits to ~zero to keep the identity check sharp.
        digest_bits: 24,
        transit_bytes: 4_096,
        ..Default::default()
    }
}

/// Build an engine with `flows` established v4 connections.
///
/// SYNs are paced in sub-filter-capacity waves with an advance between
/// each: the learning filter holds 2K events, and a single monolithic
/// burst overflows it differently than four half-empty shard filters
/// would, which would make the installed flow sets — and therefore the
/// steady-state decisions — depend on the pipe count.
fn established(flows: u32, pipes: usize) -> (MultiPipeSwitch, Vec<PacketMeta>) {
    let mut sw = MultiPipeSwitch::inline(trace_cfg(flows), pipes);
    sw.add_vip(
        vip(),
        (1..=16).map(|i| Dip(Addr::v4(10, 0, 0, i, 20))).collect(),
    )
    .unwrap();
    let syns: Vec<PacketMeta> = (0..flows)
        .map(|i| {
            PacketMeta::syn(FiveTuple::tcp(
                Addr::v4_indexed(100, i, 1024 + (i % 251) as u16),
                vip().0,
            ))
        })
        .collect();
    let mut now = Nanos::ZERO;
    for wave in syns.chunks(1_024) {
        sw.process_batch(wave, now);
        now = now.saturating_add(sr_types::Duration::from_millis(10));
        sw.advance(now);
    }
    sw.advance(Nanos::from_secs(10));
    let data: Vec<PacketMeta> = syns
        .iter()
        .map(|p| PacketMeta::data(p.tuple, 800))
        .collect();
    (sw, data)
}

/// Measure one pipe count. Wall-clock timing is banned in model crates
/// (clippy.toml) but is the entire point of this harness.
#[allow(clippy::disallowed_methods)]
fn measure(
    flows: u32,
    passes: u32,
    batch: usize,
    pipes: usize,
) -> (ScalePoint, Vec<ForwardDecision>) {
    use std::time::Instant;
    let (mut sw, data) = established(flows, pipes);
    let now = Nanos::from_secs(20);
    let mut out: Vec<ForwardDecision> = Vec::with_capacity(batch);

    // Warm pass: lane/output buffers reach steady-state capacity, caches
    // and hit bits settle. Also the decision-identity record.
    let mut first_pass: Vec<ForwardDecision> = Vec::with_capacity(data.len());
    for chunk in data.chunks(batch) {
        out.clear();
        sw.process_batch_into(chunk, now, &mut out);
        first_pass.extend_from_slice(&out);
    }

    // Steering pass, serial: the fan-in stage every packet crosses
    // before its pipe can work on it. One untimed warmup iteration first:
    // lane buffers reach steady-state capacity and the steering code and
    // data go hot before the clock starts — without it the process's
    // first measured pipe count absorbs cold caches and page faults (the
    // recorded 495 K pps 1-pipe artifact that inflated modeled_speedup
    // to 20x).
    let mut lanes: Vec<Vec<PacketMeta>> = (0..pipes).map(|_| Vec::new()).collect();
    for pkt in &data {
        let p = sw.steering().pipe_for(&pkt.tuple);
        lanes[p].push(*pkt);
    }
    let t0 = Instant::now();
    for _ in 0..passes {
        for lane in &mut lanes {
            lane.clear();
        }
        for pkt in &data {
            let p = sw.steering().pipe_for(&pkt.tuple);
            lanes[p].push(*pkt);
        }
    }
    let steer_ns = (t0.elapsed().as_nanos() / passes as u128) as u64;

    // Per-pipe drains, each timed in isolation: on hardware (or an
    // >=N-core host) these run concurrently, so the slowest bounds the
    // chip. `switch_mut` bypasses re-steering — the lanes above already
    // routed every packet to its home pipe.
    let mut busy_ns: Vec<u64> = Vec::with_capacity(pipes);
    for (p, lane) in lanes.iter().enumerate() {
        let pipe = sw.pipe_mut(p).expect("pipe exists").switch_mut();
        // Untimed warmup drain, same reasoning as the steering warmup.
        for chunk in lane.chunks(batch.max(1)) {
            out.clear();
            pipe.process_batch_into(chunk, now, &mut out);
        }
        let t0 = Instant::now();
        for _ in 0..passes {
            for chunk in lane.chunks(batch.max(1)) {
                out.clear();
                pipe.process_batch_into(chunk, now, &mut out);
            }
        }
        busy_ns.push((t0.elapsed().as_nanos() / passes as u128) as u64);
    }
    let max_busy = busy_ns.iter().copied().max().unwrap_or(0);
    let total_busy: u64 = busy_ns.iter().sum();

    let packets = data.len() as u64;
    let modeled = steer_ns + max_busy;
    let wall = steer_ns + total_busy;
    let point = ScalePoint {
        pipes,
        packets,
        steer_ns,
        max_pipe_busy_ns: max_busy,
        total_busy_ns: total_busy,
        pps: packets as f64 / (modeled.max(1) as f64 / 1e9),
        wall_pps: packets as f64 / (wall.max(1) as f64 / 1e9),
    };
    (point, first_pass)
}

/// Run the sweep: `flows` established connections, `passes` steady-state
/// passes per measurement, over each pipe count.
pub fn sweep(flows: u32, passes: u32, batch: usize, pipe_counts: &[usize]) -> ScaleSweep {
    let mut points = Vec::with_capacity(pipe_counts.len());
    let mut reference: Option<Vec<ForwardDecision>> = None;
    let mut decisions_match = true;
    for &pipes in pipe_counts {
        let (point, decisions) = measure(flows, passes, batch, pipes);
        match &reference {
            None => reference = Some(decisions),
            Some(r) => decisions_match &= r == &decisions,
        }
        points.push(point);
    }
    ScaleSweep {
        flows,
        passes,
        batch,
        decisions_match,
        host_cores: sr_exec::available_cores(),
        peak_rss_bytes: crate::rss::peak_rss_bytes(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_reports_sane_points() {
        let s = sweep(2_048, 1, 256, &[1, 2]);
        assert_eq!(s.points.len(), 2);
        assert!(s.decisions_match, "pipe counts diverged on the same trace");
        for p in &s.points {
            assert_eq!(p.packets, 2_048);
            assert!(p.pps > 0.0 && p.wall_pps > 0.0);
            assert!(p.pps >= p.wall_pps, "modeled rate cannot be below wall");
        }
        let json = s.to_json();
        assert!(json.contains("\"bench\": \"scale\""));
        assert!(json.contains("\"pipes\": 2"));
        assert!(json.contains("decisions_match\": true"));
        // The two speedup figures are distinct, honestly-named keys; the
        // old ambiguous `speedup_vs_1` must not come back.
        assert!(json.contains("\"modeled_speedup\""));
        assert!(json.contains("\"wall_speedup\""));
        assert!(!json.contains("speedup_vs_1"));
        // Host metadata rides on every committed bench document.
        assert!(json.contains("\"host_cores\""));
        assert!(json.contains("\"peak_rss_bytes\""));
    }
}
