//! Ablations of SilkRoad's design choices beyond the paper's own sweeps.
//!
//! * **Cuckoo geometry** — achievable load factor vs stage count, the
//!   hidden assumption behind "10 M connections fit";
//! * **Insertion-rate sweep** — how fast a switch CPU must be before the
//!   no-TransitTable design's violations fade (they never reach zero,
//!   which is the paper's argument for TransitTable);
//! * **Per-stage digest widths** (§7) — false-positive reduction from
//!   spending more digest bits in the stages that fill first.

use crate::exec::Exec;
use crate::scale::Scale;
use sr_hash::cuckoo::{CuckooConfig, CuckooTable, MatchMode};
use sr_sim::{run_scenario, RunMetrics, Scenario, SystemKind};
use sr_types::Duration;
use sr_workload::TraceConfig;

/// One cuckoo-geometry measurement.
#[derive(Clone, Copy, Debug)]
pub struct CuckooPoint {
    /// Pipeline stages.
    pub stages: usize,
    /// Entries per word.
    pub ways: usize,
    /// Achieved load factor at first insertion failure.
    pub load_factor: f64,
    /// Average BFS moves per insertion over the run.
    pub avg_moves: f64,
}

/// Fill tables of several geometries to failure.
pub fn cuckoo_geometry(exec: &Exec, seed: u64) -> Vec<CuckooPoint> {
    let geometries = vec![(2usize, 1usize), (2, 4), (4, 1), (4, 4), (8, 4)];
    exec.run(geometries, |(stages, ways)| {
        let slots = 32_768;
        let cfg = CuckooConfig {
            stages,
            words_per_stage: slots / stages / ways,
            entries_per_word: ways,
            match_mode: MatchMode::FullKey,
            seed,
            max_bfs_depth: 8,
            max_bfs_nodes: 4096,
        };
        let total = cfg.total_slots();
        let mut t: CuckooTable<u32> = CuckooTable::new(cfg);
        let mut inserted = 0u32;
        for i in 0..total as u32 {
            if t.insert(&i.to_be_bytes(), i).is_err() {
                break;
            }
            inserted += 1;
        }
        CuckooPoint {
            stages,
            ways,
            load_factor: inserted as f64 / total as f64,
            avg_moves: t.total_moves() as f64 / inserted.max(1) as f64,
        }
    })
}

/// One insertion-rate measurement.
#[derive(Clone, Debug)]
pub struct InsertRatePoint {
    /// CPU insertions per second.
    pub insertions_per_sec: u64,
    /// SilkRoad-without-TransitTable result.
    pub no_tt: RunMetrics,
    /// Full SilkRoad result.
    pub with_tt: RunMetrics,
}

/// Sweep the switch-CPU insertion rate at 50 updates/min over a
/// concentrated 12-VIP workload (updates must actually overlap pending
/// connections of *their* VIP; spreading the same arrivals over 149 VIPs
/// dilutes the overlap to nothing).
pub fn insertion_rate_sweep(exec: &Exec, scale: Scale, rates: &[u64]) -> Vec<InsertRatePoint> {
    let mut t = TraceConfig::pop_scaled(scale.rate_factor, scale.minutes);
    t.vips = 12;
    t.dips_per_vip = 8;
    t.updates_per_min = 50.0;
    t.seed = scale.seed;
    // Chatty flows so pending windows contain packets.
    t.median_rate_bps = 2_000_000.0;
    // One job per (rate, design): both designs of a rate run concurrently.
    let mut jobs = Vec::new();
    for &r in rates {
        jobs.push((r, false));
        jobs.push((r, true));
    }
    let runs = exec.run(jobs, |(r, with_tt)| {
        let sys = if with_tt {
            SystemKind::SilkRoad {
                transit_bytes: 256,
                learning_timeout: Duration::from_millis(1),
                insertions_per_sec: r,
            }
        } else {
            SystemKind::SilkRoadNoTransit {
                learning_timeout: Duration::from_millis(1),
                insertions_per_sec: r,
            }
        };
        run_scenario(Scenario::new(t, sys))
    });
    rates
        .iter()
        .zip(runs.chunks_exact(2))
        .map(|(&r, pair)| InsertRatePoint {
            insertions_per_sec: r,
            no_tt: pair[0].clone(),
            with_tt: pair[1].clone(),
        })
        .collect()
}

/// One digest-layout measurement.
#[derive(Clone, Copy, Debug)]
pub struct DigestLayoutPoint {
    /// Human label.
    pub label: &'static str,
    /// Table fill fraction at measurement time.
    pub fill: f64,
    /// False hits observed over 400 K probe lookups.
    pub false_hits: u64,
}

/// Compare uniform digests against the §7 wider-early-stages layout at
/// equal *average* width, across fill levels. The §7 claim is about the
/// lightly-loaded regime: while connections fit in the wide-digest stages,
/// false positives are far below the uniform layout; as the narrow stages
/// fill, the advantage fades (and eventually inverts) — exactly the
/// scale-up trade the paper describes.
pub fn digest_layouts(exec: &Exec, seed: u64) -> Vec<DigestLayoutPoint> {
    let layouts: Vec<(&'static str, MatchMode)> = vec![
        ("uniform 16b", MatchMode::Digest { bits: 16 }),
        (
            "mixed 22/18/14/10",
            MatchMode::DigestPerStage {
                bits: vec![22, 18, 14, 10],
            },
        ),
    ];
    let per_layout = exec.run(layouts, |(label, mode)| {
        let mut t: CuckooTable<u32> = CuckooTable::new(CuckooConfig {
            stages: 4,
            words_per_stage: 2048,
            entries_per_word: 4,
            match_mode: mode,
            seed,
            max_bfs_depth: 8,
            max_bfs_nodes: 4096,
        });
        let total = t.config().total_slots();
        let mut inserted = 0u32;
        let mut points = Vec::new();
        for &fill in &[0.2f64, 0.5, 0.9] {
            let target = (total as f64 * fill) as u32;
            while inserted < target {
                let _ = t.insert(&inserted.to_be_bytes(), inserted);
                inserted += 1;
            }
            let mut false_hits = 0u64;
            for probe in 10_000_000..10_400_000u32 {
                if let Some(h) = t.lookup(&probe.to_be_bytes()) {
                    if !h.exact {
                        false_hits += 1;
                    }
                }
            }
            points.push(DigestLayoutPoint {
                label,
                fill,
                false_hits,
            });
        }
        points
    });
    per_layout.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_ways_pack_tighter() {
        let points = cuckoo_geometry(&Exec::available(), 1);
        let get = |s, w| {
            points
                .iter()
                .find(|p| p.stages == s && p.ways == w)
                .unwrap()
                .load_factor
        };
        // 4-way words beat single-entry words; more stages help too.
        assert!(get(4, 4) > get(4, 1), "{points:?}");
        assert!(get(4, 4) > get(2, 4), "{points:?}");
        assert!(get(4, 4) > 0.9, "{points:?}");
        assert!(get(2, 1) < 0.95, "{points:?}");
    }

    #[test]
    fn slower_cpu_hurts_no_tt_only() {
        // 200 inserts/s stretches each connection's pending window to
        // several ms (vs the 1 ms learning-timeout floor at 200 K/s), so
        // updates overlap far more pending connections. (Dropping *below*
        // the arrival rate instead grows the backlog without bound and
        // saturates the 256-B bloom across back-to-back updates — Fig 18's
        // failure regime, where both designs break.)
        let points = insertion_rate_sweep(&Exec::available(), Scale::test(), &[200, 200_000]);
        let slow = &points[0];
        let fast = &points[1];
        assert!(
            slow.no_tt.pcc_violations >= fast.no_tt.pcc_violations,
            "slow {} vs fast {}",
            slow.no_tt,
            fast.no_tt
        );
        assert!(slow.no_tt.pcc_violations > 0, "{}", slow.no_tt);
        assert_eq!(slow.with_tt.pcc_violations, 0, "{}", slow.with_tt);
        assert_eq!(fast.with_tt.pcc_violations, 0, "{}", fast.with_tt);
    }

    #[test]
    fn wider_early_digests_win_when_lightly_loaded() {
        let points = digest_layouts(&Exec::available(), 7);
        let get = |label: &str, fill: f64| {
            points
                .iter()
                .find(|p| p.label.starts_with(label) && p.fill == fill)
                .unwrap()
                .false_hits
        };
        // §7's regime: at 20% fill everything sits in the wide stages.
        assert!(
            get("mixed", 0.2) < get("uniform", 0.2),
            "mixed {} vs uniform {} at 0.2",
            get("mixed", 0.2),
            get("uniform", 0.2)
        );
        // The advantage shrinks as the narrow stages fill.
        let adv_low = get("uniform", 0.2) as f64 / get("mixed", 0.2).max(1) as f64;
        let adv_high = get("uniform", 0.9) as f64 / get("mixed", 0.9).max(1) as f64;
        assert!(adv_low > adv_high, "low {adv_low} vs high {adv_high}");
    }
}
