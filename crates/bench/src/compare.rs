//! `repro compare [--smoke] [--algo <name>]` — the cross-algorithm
//! comparison matrix (`BENCH_compare.json`).
//!
//! Every member of the `sr-algo` zoo — SilkRoad (the paper's design, run
//! on its production `silkroad::SilkRoadSwitch` chassis), Concury
//! (version-in-packet), CuCoTrack (cuckoo-filter fingerprints), and the
//! Cohen-style hybrid (stateless ECMP + update-window pinning) — is
//! driven through the *identical* deterministic workload: waves of new
//! connections with data and closes riding along, plus two mid-run
//! DIP-pool updates that put each design's consistency story to the
//! test. The output is the paper-style matrix the zoo exists for:
//!
//! * **SRAM bytes per connection** — measured per-connection state at its
//!   peak, divided by the live connections it covered, next to the
//!   analytic bits/entry from [`sr_algo::cost`] (one cost model, three
//!   consumers: the figures, the baselines, this matrix).
//! * **PCC violations** — unique connections whose DIP changed mid-life.
//!   SilkRoad must record zero; the hybrid's idle-through-window
//!   remappings and CuCoTrack's fingerprint aliases show up honestly.
//! * **Audited false hits** — CuCoTrack's fingerprint collisions, every
//!   one audited against the oracle (never silently mis-steered).
//! * **Insert fraction** — how much of the churn each design pushes
//!   through its install path (SilkRoad ~1.0, Concury only
//!   transition-window newborns, the hybrid only update-crossing flows).
//! * **Steady-state throughput** — wall-clock packets/s over the settled
//!   population, where the version-in-packet fast path earns its keep.
//! * **srcheck placement** — each algorithm's [`AlgoName::layout`] must
//!   place on the Tofino-class chip model.
//!
//! The Concury arm also closes the loop with `sr_wire::stamp`: a sample
//! of every arm's stamped tags is round-tripped through a real frame
//! (stamp → parse, checksums verified) and any loss is reported as
//! `stamp_failures` — gated to zero.
//!
//! Gate logic lives in the `repro` binary; this module only measures.

use silkroad::{PoolUpdate, SilkRoadConfig, SilkRoadSwitch};
use sr_algo::{
    concury_lb, conn_entry_bits, cucotrack_lb, hybrid_lb, AlgoEngine, AlgoName, ConnState,
    ConnStateDesign, Steering,
};
use sr_asic::ChipSpec;
use sr_hash::FxHashMap;
use sr_types::{Addr, AddrFamily, Dip, Duration, FiveTuple, Nanos, PacketMeta, TcpFlags, Vip};

/// How many freshly recorded stamps are round-tripped through a real
/// frame per arm (`sr_wire::stamp` spot checks).
const STAMP_SPOT_CHECKS: u64 = 64;

/// Workload shape for one comparison run.
#[derive(Clone, Debug)]
pub struct CompareParams {
    /// Waves of new connections.
    pub waves: u32,
    /// Brand-new flows per wave.
    pub flows_per_wave: u32,
    /// Timed passes over the settled population for the throughput
    /// column.
    pub steady_passes: u32,
}

/// The committed full or CI-sized smoke profile.
pub fn compare_params(smoke: bool) -> CompareParams {
    if smoke {
        CompareParams {
            waves: 6,
            flows_per_wave: 256,
            steady_passes: 4,
        }
    } else {
        CompareParams {
            waves: 18,
            flows_per_wave: 1_024,
            steady_passes: 8,
        }
    }
}

/// One algorithm's row of the matrix.
#[derive(Clone, Debug)]
pub struct AlgoPoint {
    /// Which algorithm.
    pub algo: AlgoName,
    /// Packets processed (waves + steady passes; closes excluded).
    pub packets: u64,
    /// New connections set up.
    pub setups: u64,
    /// Connection entries the design installed.
    pub inserts: u64,
    /// `inserts / setups` — how much churn hits the install path.
    pub insert_fraction: f64,
    /// Peak installed entries observed at wave boundaries.
    pub entries_peak: usize,
    /// Peak live connections at the same sample points.
    pub live_peak: u64,
    /// Peak per-connection state bytes (SRAM-packed).
    pub state_bytes_peak: u64,
    /// Live connections at the state peak (the ratio's denominator).
    pub live_at_state_peak: u64,
    /// `state_bytes_peak / live_at_state_peak`.
    pub sram_bytes_per_conn: f64,
    /// Analytic bits per installed entry ([`sr_algo::cost`], IPv4).
    pub model_bits_per_entry: u32,
    /// Steering-table bytes (VIP rows + pool rows) at run end.
    pub table_bytes: u64,
    /// Unique connections whose DIP changed mid-life.
    pub pcc_violations: u64,
    /// Audited false-positive hits (fingerprint/digest aliases).
    pub false_hits: u64,
    /// Stamped tags round-tripped through `sr_wire::stamp`.
    pub stamp_checks: u64,
    /// Round trips that lost the tag or broke the frame (must be 0).
    pub stamp_failures: u64,
    /// Wall-clock packets/s over the settled population.
    pub steady_pps: f64,
    /// Whether [`AlgoName::layout`] places on the Tofino-class chip.
    pub placeable: bool,
    /// The layout's total SRAM bytes (srcheck resource model).
    pub layout_sram_bytes: u64,
}

/// A full comparison run.
#[derive(Clone, Debug)]
pub struct CompareBench {
    /// Whether this was the CI-sized smoke profile.
    pub smoke: bool,
    /// Parameters the run used.
    pub params: CompareParams,
    /// Cores on the host that ran the bench.
    pub host_cores: usize,
    /// One row per algorithm (matrix order, or a single `--algo` row).
    pub points: Vec<AlgoPoint>,
}

impl CompareBench {
    /// The row for one algorithm, if it ran.
    pub fn point(&self, algo: AlgoName) -> Option<&AlgoPoint> {
        self.points.iter().find(|p| p.algo == algo)
    }

    /// Whether all four zoo members ran (cross-algorithm gates apply).
    pub fn has_all(&self) -> bool {
        AlgoName::all().iter().all(|&a| self.point(a).is_some())
    }

    /// Total stamp round-trip failures (must be 0).
    pub fn stamp_failures(&self) -> u64 {
        self.points.iter().map(|p| p.stamp_failures).sum()
    }

    /// Render as the committed `BENCH_compare.json` document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"bench\": \"compare\",\n");
        s.push_str(&format!("  \"smoke\": {},\n", self.smoke));
        s.push_str(&format!("  \"waves\": {},\n", self.params.waves));
        s.push_str(&format!(
            "  \"flows_per_wave\": {},\n",
            self.params.flows_per_wave
        ));
        s.push_str(&format!(
            "  \"steady_passes\": {},\n",
            self.params.steady_passes
        ));
        s.push_str(&format!("  \"host_cores\": {},\n", self.host_cores));
        s.push_str(
            "  \"note\": \"identical deterministic workload (waves of new flows + data + \
             closes, two mid-run DIP-pool updates) through every sr-algo zoo member; \
             sram_bytes_per_conn is measured peak state over the live connections it \
             covered; model_bits_per_entry is the shared sr_algo::cost formula; \
             pcc_violations counts unique remapped connections; steady_pps is wall-clock \
             and host-dependent, everything else is deterministic\",\n",
        );
        s.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"algo\": \"{}\", \"packets\": {}, \"setups\": {}, \"inserts\": {}, \
                 \"insert_fraction\": {:.4}, \"entries_peak\": {}, \"live_peak\": {}, \
                 \"state_bytes_peak\": {}, \"live_at_state_peak\": {}, \
                 \"sram_bytes_per_conn\": {:.3}, \"model_bits_per_entry\": {}, \
                 \"table_bytes\": {}, \"pcc_violations\": {}, \"false_hits\": {}, \
                 \"stamp_checks\": {}, \"stamp_failures\": {}, \"steady_pps\": {:.0}, \
                 \"placeable\": {}, \"layout_sram_bytes\": {}}}{}\n",
                p.algo,
                p.packets,
                p.setups,
                p.inserts,
                p.insert_fraction,
                p.entries_peak,
                p.live_peak,
                p.state_bytes_peak,
                p.live_at_state_peak,
                p.sram_bytes_per_conn,
                p.model_bits_per_entry,
                p.table_bytes,
                p.pcc_violations,
                p.false_hits,
                p.stamp_checks,
                p.stamp_failures,
                p.steady_pps,
                p.placeable,
                p.layout_sram_bytes,
                if i + 1 == self.points.len() { "" } else { "," }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

fn vip() -> Vip {
    Vip(Addr::v4(20, 0, 0, 1, 80))
}

fn dip(i: u8) -> Dip {
    Dip(Addr::v4(10, 0, 0, i, 20))
}

/// The `g`-th brand-new flow of the run (globally unique tuples).
fn flow_tuple(g: u32) -> FiveTuple {
    FiveTuple::tcp(Addr::v4_indexed(100, g, 1024 + (g % 251) as u16), vip().0)
}

/// One wave of the prebuilt workload.
struct Wave {
    /// Full target membership to install at this wave's boundary, if any
    /// (the two mid-run updates).
    update: Option<Vec<Dip>>,
    /// This wave's brand-new cohort.
    syns: Vec<PacketMeta>,
    /// Data for this wave's flows plus the two previous cohorts still
    /// open — the witnesses that stretch connections across the updates.
    data: Vec<PacketMeta>,
    /// The wave w-2 cohort, closed once its last data packet is served.
    closes: Vec<FiveTuple>,
}

/// Prebuild the whole workload so every arm sees identical packets.
fn build_waves(p: &CompareParams) -> Vec<Wave> {
    let flows = p.flows_per_wave;
    let base: Vec<Dip> = (1..=16).map(dip).collect();
    let grown: Vec<Dip> = (1..=17).map(dip).collect();
    (0..p.waves)
        .map(|w| {
            // Two full-membership updates land mid-run: grow by one DIP
            // at a third of the way, shrink back at two thirds.
            let update = if w == p.waves / 3 {
                Some(grown.clone())
            } else if w == 2 * p.waves / 3 {
                Some(base.clone())
            } else {
                None
            };
            let cohort_base = w * flows;
            let syns = (0..flows)
                .map(|f| PacketMeta::syn(flow_tuple(cohort_base + f)))
                .collect();
            let mut data = Vec::with_capacity((flows * 3) as usize);
            for back in (0..=2u32).rev() {
                if back > w {
                    continue;
                }
                let b = (w - back) * flows;
                data.extend((0..flows).map(|f| PacketMeta::data(flow_tuple(b + f), 800)));
            }
            let closes: Vec<FiveTuple> = if w >= 2 {
                (0..flows)
                    .map(|f| flow_tuple((w - 2) * flows + f))
                    .collect()
            } else {
                Vec::new()
            };
            Wave {
                update,
                syns,
                data,
                closes,
            }
        })
        .collect()
}

/// The settled population the throughput passes replay: data for the two
/// cohorts still open after the final wave.
fn build_steady(p: &CompareParams) -> Vec<PacketMeta> {
    let flows = p.flows_per_wave;
    let mut steady = Vec::with_capacity((flows * 2) as usize);
    for w in [p.waves.saturating_sub(2), p.waves.saturating_sub(1)] {
        steady.extend((0..flows).map(|f| PacketMeta::data(flow_tuple(w * flows + f), 800)));
    }
    steady
}

/// One packet's outcome at the arm boundary.
struct StepOut {
    dip: Option<Dip>,
    stamp: Option<u8>,
}

/// The uniform arm interface the driver speaks — the harness-side mirror
/// of `sr_algo`'s `ConnState` + `Steering` split, object-safe so all
/// four arms share one drive loop.
trait CompareArm {
    /// Install a full target membership (the arms translate to their own
    /// update machinery — SilkRoad diffs into `PoolUpdate` deltas).
    fn update_pool(&mut self, dips: &[Dip], now: Nanos);
    /// Advance time: settle update windows, drain install pipelines,
    /// expire idle entries.
    fn advance(&mut self, now: Nanos);
    /// Process one packet. `tag` is the stamp the edge recovered from
    /// the flow's previous packets, if the design stamps at all.
    fn process(&mut self, pkt: &PacketMeta, tag: Option<u8>, now: Nanos) -> StepOut;
    /// Close a connection (FIN/RST semantics, outside the PCC count).
    fn close(&mut self, t: &FiveTuple, now: Nanos);
    /// Installed entries right now.
    fn entries(&self) -> usize;
    /// Per-connection state bytes right now (SRAM-packed).
    fn state_bytes(&self) -> u64;
    /// Steering-table bytes right now.
    fn table_bytes(&self) -> u64;
    /// Entries installed so far.
    fn inserts(&self) -> u64;
    /// Audited false-positive hits so far.
    fn false_hits(&self) -> u64;
    /// Analytic bits per installed entry (IPv4).
    fn model_bits(&self) -> u32;
}

/// The paper's design on its production chassis: learning filter, 3-step
/// updates, TransitTable — the same code path every other bench drives.
struct SilkroadArm {
    sw: SilkRoadSwitch,
}

impl SilkroadArm {
    fn new(p: &CompareParams) -> SilkroadArm {
        let cfg = SilkRoadConfig {
            conn_capacity: (p.flows_per_wave as usize) * 8,
            transit_bytes: 4_096,
            ..Default::default()
        };
        let mut sw = SilkRoadSwitch::new(cfg);
        sw.add_vip(vip(), (1..=16).map(dip).collect())
            .expect("compare VIP registers");
        SilkroadArm { sw }
    }
}

impl CompareArm for SilkroadArm {
    fn update_pool(&mut self, dips: &[Dip], now: Nanos) {
        // Full membership → delta ops, exactly the diff the trait adapter
        // (`silkroad::algo_impl`) proves equivalent.
        let current: Vec<Dip> = self
            .sw
            .current_dips(vip())
            .map(<[Dip]>::to_vec)
            .unwrap_or_default();
        for d in current.iter().filter(|d| !dips.contains(d)) {
            let _ = self.sw.request_update(vip(), PoolUpdate::Remove(*d), now);
        }
        for d in dips.iter().filter(|d| !current.contains(d)) {
            let _ = self.sw.request_update(vip(), PoolUpdate::Add(*d), now);
        }
    }

    fn advance(&mut self, now: Nanos) {
        self.sw.advance(now);
        self.sw.expire_idle(now);
    }

    fn process(&mut self, pkt: &PacketMeta, _tag: Option<u8>, now: Nanos) -> StepOut {
        let d = self.sw.process_packet(pkt, now);
        StepOut {
            dip: d.dip,
            stamp: None,
        }
    }

    fn close(&mut self, t: &FiveTuple, now: Nanos) {
        self.sw.close_connection(t, now);
    }

    fn entries(&self) -> usize {
        self.sw.conn_count()
    }

    fn state_bytes(&self) -> u64 {
        self.sw.memory().conn_table
    }

    fn table_bytes(&self) -> u64 {
        let m = self.sw.memory();
        m.vip_table + m.dip_pool_table
    }

    fn inserts(&self) -> u64 {
        self.sw.stats().installs
    }

    fn false_hits(&self) -> u64 {
        self.sw.stats().digest_false_hits
    }

    fn model_bits(&self) -> u32 {
        let cfg = self.sw.config();
        conn_entry_bits(
            ConnStateDesign::DigestVersion {
                digest_bits: cfg.digest_bits,
                version_bits: cfg.version_bits,
            },
            AddrFamily::V4,
        )
    }
}

/// Any trait-composed zoo member (`AlgoEngine` over its `ConnState` and
/// `Steering` halves).
struct EngineArm<C: ConnState, S: Steering> {
    e: AlgoEngine<C, S>,
}

impl<C: ConnState, S: Steering> EngineArm<C, S> {
    fn new(mut e: AlgoEngine<C, S>) -> EngineArm<C, S> {
        assert!(
            e.add_vip(vip(), &(1..=16).map(dip).collect::<Vec<_>>()),
            "compare VIP registers"
        );
        EngineArm { e }
    }
}

impl<C: ConnState, S: Steering> CompareArm for EngineArm<C, S> {
    fn update_pool(&mut self, dips: &[Dip], now: Nanos) {
        self.e.update_pool(vip(), dips, now);
    }

    fn advance(&mut self, now: Nanos) {
        self.e.advance(now);
    }

    fn process(&mut self, pkt: &PacketMeta, tag: Option<u8>, now: Nanos) -> StepOut {
        let d = self.e.process(pkt, tag, now);
        StepOut {
            dip: d.dip,
            stamp: d.stamp,
        }
    }

    fn close(&mut self, t: &FiveTuple, now: Nanos) {
        // Engine arms express closes on the packet path (FIN); the tag is
        // withheld so version-in-packet designs hit their state and free
        // any pinned entry instead of riding the tagged fast path.
        self.e.process(&PacketMeta::fin(*t), None, now);
    }

    fn entries(&self) -> usize {
        self.e.conn_state().entries()
    }

    fn state_bytes(&self) -> u64 {
        self.e.conn_state().state_bytes()
    }

    fn table_bytes(&self) -> u64 {
        self.e.steering().table_bytes()
    }

    fn inserts(&self) -> u64 {
        self.e.stats().inserts
    }

    fn false_hits(&self) -> u64 {
        self.e.stats().false_hits
    }

    fn model_bits(&self) -> u32 {
        conn_entry_bits(self.e.conn_state().design(), AddrFamily::V4)
    }
}

/// Round-trip one stamped tag through a real frame: build, stamp, parse
/// back, verify checksums, confirm the steering tuple is untouched.
fn stamp_round_trips(tuple: &FiveTuple, version: u8) -> bool {
    let spec = sr_wire::FrameSpec {
        tuple: *tuple,
        flags: TcpFlags::NONE,
        wire_len: 0,
        seq: 0,
    };
    let mut buf = [0u8; 256];
    let Ok(n) = sr_wire::build_frame(&spec, &mut buf) else {
        return false;
    };
    let Some(frame) = buf.get_mut(..n) else {
        return false;
    };
    if sr_wire::stamp_version(frame, version).is_err() {
        return false;
    }
    sr_wire::parse_version(frame) == Ok(version)
        && sr_wire::verify_checksums(frame).is_ok()
        && sr_wire::parse_frame(frame).is_ok_and(|p| p.meta.tuple == *tuple)
}

/// Mutable driver state shared by every packet step.
struct DriveCtx {
    /// Edge stamp memory: the tag each flow's packets would carry.
    stamps: FxHashMap<FiveTuple, u8>,
    /// First DIP per connection + whether it ever changed.
    first: FxHashMap<FiveTuple, (Dip, bool)>,
    packets: u64,
    stamp_checks: u64,
    stamp_failures: u64,
}

impl DriveCtx {
    fn step(&mut self, arm: &mut dyn CompareArm, pkt: &PacketMeta, now: Nanos) {
        let tag = self.stamps.get(&pkt.tuple).copied();
        let out = arm.process(pkt, tag, now);
        self.packets += 1;
        if let Some(s) = out.stamp {
            let fresh = self.stamps.insert(pkt.tuple, s) != Some(s);
            if fresh && self.stamp_checks < STAMP_SPOT_CHECKS {
                self.stamp_checks += 1;
                if !stamp_round_trips(&pkt.tuple, s) {
                    self.stamp_failures += 1;
                }
            }
        }
        if let Some(d) = out.dip {
            match self.first.entry(pkt.tuple) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let v = e.get_mut();
                    if v.0 != d {
                        v.1 = true;
                    }
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert((d, false));
                }
            }
        }
    }
}

/// What one arm's drive produced (measured halves of an [`AlgoPoint`]).
struct DriveOut {
    packets: u64,
    pcc_violations: u64,
    stamp_checks: u64,
    stamp_failures: u64,
    entries_peak: usize,
    live_peak: u64,
    state_bytes_peak: u64,
    live_at_state_peak: u64,
    steady_pps: f64,
}

/// Drive the prebuilt workload plus steady passes through one arm.
/// Wall-clock reads are banned in model crates (clippy.toml) but the
/// throughput column is exactly a wall-clock measurement.
#[allow(clippy::disallowed_methods)]
fn drive(
    arm: &mut dyn CompareArm,
    p: &CompareParams,
    waves: &[Wave],
    steady: &[PacketMeta],
) -> DriveOut {
    use std::time::Instant;
    let mut ctx = DriveCtx {
        stamps: FxHashMap::default(),
        first: FxHashMap::default(),
        packets: 0,
        stamp_checks: 0,
        stamp_failures: 0,
    };
    let mut live = 0u64;
    let mut entries_peak = 0usize;
    let mut live_peak = 0u64;
    let mut state_bytes_peak = 0u64;
    let mut live_at_state_peak = 0u64;
    // Per-wave drain budget mirroring the churn bench: the learning
    // filter's notification latency plus the switch CPU's install time
    // for a full cohort, with slack. Doubles as the update-window /
    // settle horizon for the window-pinning designs.
    let drain = Duration::from_millis(1)
        + Duration::from_micros(5 * u64::from(p.flows_per_wave))
        + Duration::from_millis(1);
    let mut now = Nanos::ZERO;
    for wave in waves {
        if let Some(m) = &wave.update {
            arm.update_pool(m, now);
        }
        for pkt in &wave.syns {
            ctx.step(arm, pkt, now);
        }
        live += wave.syns.len() as u64;
        now = now.saturating_add(drain);
        arm.advance(now);
        for pkt in &wave.data {
            ctx.step(arm, pkt, now);
        }
        // Sample at the wave's population peak: every cohort installed,
        // nothing closed yet.
        entries_peak = entries_peak.max(arm.entries());
        live_peak = live_peak.max(live);
        let state = arm.state_bytes();
        if state > state_bytes_peak {
            state_bytes_peak = state;
            live_at_state_peak = live;
        }
        for t in &wave.closes {
            arm.close(t, now);
            ctx.stamps.remove(t);
        }
        live -= wave.closes.len() as u64;
        now = now.saturating_add(Duration::from_millis(1));
    }
    // Steady state: timed passes over the settled population. Decisions
    // still feed the PCC check (a design that remaps settled flows must
    // show it), but each connection counts at most once.
    let t0 = Instant::now();
    for _ in 0..p.steady_passes {
        for pkt in steady {
            ctx.step(arm, pkt, now);
        }
    }
    let elapsed_ns = t0.elapsed().as_nanos().max(1);
    let steady_packets = steady.len() as u64 * u64::from(p.steady_passes);
    let steady_pps = steady_packets as f64 / (elapsed_ns as f64 / 1e9);
    DriveOut {
        packets: ctx.packets,
        pcc_violations: ctx.first.values().filter(|v| v.1).count() as u64,
        stamp_checks: ctx.stamp_checks,
        stamp_failures: ctx.stamp_failures,
        entries_peak,
        live_peak,
        state_bytes_peak,
        live_at_state_peak,
        steady_pps,
    }
}

/// Build one algorithm's arm at SilkRoad-comparable parameters.
fn build_arm(algo: AlgoName, p: &CompareParams) -> Box<dyn CompareArm> {
    let seed = 7;
    let settle = Duration::from_millis(1)
        + Duration::from_micros(5 * u64::from(p.flows_per_wave))
        + Duration::from_millis(1);
    match algo {
        AlgoName::Silkroad => Box::new(SilkroadArm::new(p)),
        AlgoName::Concury => Box::new(EngineArm::new(concury_lb(seed, AddrFamily::V4, settle))),
        AlgoName::Cucotrack => Box::new(EngineArm::new(cucotrack_lb(
            seed,
            AddrFamily::V4,
            (p.flows_per_wave as usize) * 8,
            Duration::from_secs(30),
        ))),
        AlgoName::Hybrid => Box::new(EngineArm::new(hybrid_lb(seed, AddrFamily::V4, settle))),
    }
}

/// Measure one algorithm's full row.
fn measure(algo: AlgoName, p: &CompareParams, waves: &[Wave], steady: &[PacketMeta]) -> AlgoPoint {
    let mut arm = build_arm(algo, p);
    let d = drive(arm.as_mut(), p, waves, steady);
    let layout = algo.layout();
    let report = layout.check(&ChipSpec::tofino_class());
    let setups = u64::from(p.waves) * u64::from(p.flows_per_wave);
    AlgoPoint {
        algo,
        packets: d.packets,
        setups,
        inserts: arm.inserts(),
        insert_fraction: arm.inserts() as f64 / setups.max(1) as f64,
        entries_peak: d.entries_peak,
        live_peak: d.live_peak,
        state_bytes_peak: d.state_bytes_peak,
        live_at_state_peak: d.live_at_state_peak,
        sram_bytes_per_conn: d.state_bytes_peak as f64 / d.live_at_state_peak.max(1) as f64,
        model_bits_per_entry: arm.model_bits(),
        table_bytes: arm.table_bytes(),
        pcc_violations: d.pcc_violations,
        false_hits: arm.false_hits(),
        stamp_checks: d.stamp_checks,
        stamp_failures: d.stamp_failures,
        steady_pps: d.steady_pps,
        placeable: report.is_placeable(),
        layout_sram_bytes: layout.resource_usage().sram_bytes as u64,
    }
}

/// Run a comparison with explicit parameters (tests use tiny workloads).
/// `only` restricts the matrix to a single algorithm (`--algo`).
pub fn run_with(params: CompareParams, smoke: bool, only: Option<AlgoName>) -> CompareBench {
    let waves = build_waves(&params);
    let steady = build_steady(&params);
    let algos: Vec<AlgoName> = match only {
        Some(a) => vec![a],
        None => AlgoName::all().to_vec(),
    };
    let points = algos
        .into_iter()
        .map(|a| measure(a, &params, &waves, &steady))
        .collect();
    CompareBench {
        smoke,
        params,
        host_cores: sr_exec::available_cores(),
        points,
    }
}

/// Run the committed full or smoke profile.
pub fn run(smoke: bool, only: Option<AlgoName>) -> CompareBench {
    run_with(compare_params(smoke), smoke, only)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CompareParams {
        // 5 waves puts the two updates at waves 1 and 3, so the
        // window-pinning designs see a minority of cohorts born inside a
        // transition window (2/5) — the same shape as the real profiles.
        CompareParams {
            waves: 5,
            flows_per_wave: 128,
            steady_passes: 2,
        }
    }

    #[test]
    fn tiny_matrix_has_the_acceptance_shape() {
        let b = run_with(tiny(), true, None);
        assert_eq!(b.points.len(), 4);
        assert!(b.has_all());
        let silk = b.point(AlgoName::Silkroad).unwrap();
        let conc = b.point(AlgoName::Concury).unwrap();
        let cuco = b.point(AlgoName::Cucotrack).unwrap();
        let hyb = b.point(AlgoName::Hybrid).unwrap();
        // SilkRoad: every flow pinned, zero PCC violations — the paper's
        // claim, now measured against three competitors.
        assert_eq!(silk.pcc_violations, 0, "SilkRoad broke PCC: {silk:#?}");
        assert!(silk.insert_fraction > 0.9, "SilkRoad pins everything");
        assert!(silk.sram_bytes_per_conn > 0.0);
        // Concury: per-connection SRAM collapses to the transition
        // window; the stamped tags survive the wire round trip.
        assert!(
            conc.sram_bytes_per_conn < silk.sram_bytes_per_conn,
            "concury {} vs silkroad {}",
            conc.sram_bytes_per_conn,
            silk.sram_bytes_per_conn
        );
        assert!(conc.insert_fraction < 0.5, "only window newborns pin");
        assert!(conc.stamp_checks > 0, "no stamps were spot-checked");
        // CuCoTrack: denser entries, but the aliases are real and every
        // one is audited.
        assert!(cuco.false_hits > 0, "dense filter never aliased: {cuco:#?}");
        assert!(cuco.model_bits_per_entry < silk.model_bits_per_entry);
        // Hybrid: only update-crossing flows pin entries.
        assert!(hyb.entries_peak > 0, "window pinning never fired");
        assert!(hyb.insert_fraction < 0.5);
        assert_eq!(b.stamp_failures(), 0);
        assert!(b.points.iter().all(|p| p.placeable), "a layout failed");
        for p in &b.points {
            assert_eq!(p.setups, 5 * 128);
            assert!(p.steady_pps > 0.0);
            assert!(p.live_peak >= p.live_at_state_peak);
        }
        let json = b.to_json();
        for key in [
            "\"bench\": \"compare\"",
            "\"algo\": \"silkroad\"",
            "\"algo\": \"concury\"",
            "\"algo\": \"cucotrack\"",
            "\"algo\": \"hybrid\"",
            "\"sram_bytes_per_conn\"",
            "\"model_bits_per_entry\"",
            "\"stamp_failures\": 0",
            "\"placeable\": true",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn single_algo_filter_runs_one_row() {
        let b = run_with(tiny(), true, Some(AlgoName::Concury));
        assert_eq!(b.points.len(), 1);
        assert_eq!(b.points[0].algo, AlgoName::Concury);
        assert!(!b.has_all());
    }
}
