//! Parallel experiment execution.
//!
//! Every simulation-backed figure is a list of *independent* jobs — one
//! per (data point, system, seed) — whose results are reduced into a
//! table afterwards. [`Exec::run`] fans a job list across a scoped thread
//! pool and returns the results **in submission order**, keyed by each
//! job's slot index, so rendered tables are byte-identical to a
//! sequential run regardless of worker count or scheduling.
//!
//! Built on `std::thread::scope` plus a `parking_lot` work queue: no
//! executor dependency, no `'static` bounds, and a panicking job
//! propagates out of `run` exactly like it would sequentially.

use parking_lot::Mutex;
use std::collections::VecDeque;

/// A scoped worker pool for independent experiment jobs.
#[derive(Clone, Copy, Debug)]
pub struct Exec {
    workers: usize,
}

impl Exec {
    /// A pool with `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Exec {
        Exec {
            workers: workers.max(1),
        }
    }

    /// Single-worker pool: jobs run inline on the caller's thread.
    pub fn sequential() -> Exec {
        Exec::new(1)
    }

    /// One worker per available core (the `--jobs` default).
    pub fn available() -> Exec {
        Exec::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run every job and return the outputs in input order.
    ///
    /// Jobs are handed to workers front-to-back (submission order), which
    /// keeps wall-clock short when costs are skewed; the *results* are
    /// written into per-job slots, so ordering — and therefore any table
    /// rendered from them — never depends on scheduling.
    pub fn run<I, O, F>(&self, inputs: Vec<I>, job: F) -> Vec<O>
    where
        I: Send,
        O: Send,
        F: Fn(I) -> O + Sync,
    {
        let n = inputs.len();
        if self.workers == 1 || n <= 1 {
            return inputs.into_iter().map(job).collect();
        }
        let queue: Mutex<VecDeque<(usize, I)>> =
            Mutex::new(inputs.into_iter().enumerate().collect());
        let slots: Mutex<Vec<Option<O>>> = Mutex::new((0..n).map(|_| None).collect());
        std::thread::scope(|s| {
            for _ in 0..self.workers.min(n) {
                s.spawn(|| loop {
                    let next = queue.lock().pop_front();
                    let Some((slot, input)) = next else { break };
                    let out = job(input);
                    slots.lock()[slot] = Some(out);
                });
            }
        });
        slots
            .into_inner()
            .into_iter()
            .map(|o| o.expect("every job ran to completion"))
            .collect()
    }
}

impl Default for Exec {
    fn default() -> Exec {
        Exec::available()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Table;
    use crate::{fig_pcc, Scale};
    use sr_types::Duration;

    #[test]
    // Real sleeps are banned workspace-wide (clippy.toml); this test needs
    // them precisely to force out-of-order completion.
    #[allow(clippy::disallowed_methods)]
    fn results_keep_submission_order() {
        // Jobs finish out of order (later jobs are cheaper) but the
        // output order must match the input order.
        let inputs: Vec<u64> = (0..32).collect();
        let out = Exec::new(4).run(inputs.clone(), |i| {
            std::thread::sleep(std::time::Duration::from_micros((32 - i) * 50));
            i * 10
        });
        assert_eq!(out, inputs.iter().map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn more_workers_than_jobs() {
        let out = Exec::new(16).run(vec![1, 2], |i| i + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn sequential_path_matches() {
        let inputs: Vec<u32> = (0..10).collect();
        let a = Exec::sequential().run(inputs.clone(), |i| i * i);
        let b = Exec::new(3).run(inputs, |i| i * i);
        assert_eq!(a, b);
    }

    // std::thread::scope replaces the payload with its own ("a scoped
    // thread panicked"), so only the fact of the panic is asserted.
    #[test]
    #[should_panic]
    fn job_panics_propagate() {
        Exec::new(2).run(vec![0, 1, 2, 3], |i| {
            if i == 2 {
                panic!("job failed");
            }
            i
        });
    }

    /// The acceptance property behind `--jobs`: a quick figure rendered
    /// from a 4-worker run is byte-identical to the sequential run.
    #[test]
    fn figure_output_is_worker_count_invariant() {
        let render = |exec: &Exec| {
            let sizes = [8usize, 256];
            let timeouts = [Duration::from_millis(5)];
            let points = fig_pcc::fig18(exec, Scale::test(), &sizes, &timeouts);
            let mut t = Table::new(
                "determinism probe",
                &["TransitTable", "violations", "metrics"],
            );
            for p in &points {
                t.row(vec![
                    format!("{} B", p.transit_bytes),
                    p.metrics.pcc_violations.to_string(),
                    format!("{}", p.metrics),
                ]);
            }
            t.render()
        };
        let seq = render(&Exec::sequential());
        let par = render(&Exec::new(4));
        assert_eq!(seq, par, "parallel run diverged from sequential");
    }
}
