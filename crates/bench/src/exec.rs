//! Parallel experiment execution — re-exported from [`sr_exec`].
//!
//! The [`Exec`] scoped worker pool moved to its own crate (`sr-exec`) so
//! the multi-pipe packet engine (`silkroad::engine`) can fan per-pipe
//! batches across the same pool without a dependency cycle (this crate
//! depends on `silkroad`). The canonical `sr_bench::exec::Exec` path and
//! semantics are unchanged; see the `sr_exec` crate docs for the pool's
//! ordering and panic guarantees.

pub use sr_exec::Exec;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Table;
    use crate::{fig_pcc, Scale};
    use sr_types::Duration;

    /// The acceptance property behind `--jobs`: a quick figure rendered
    /// from a 4-worker run is byte-identical to the sequential run.
    #[test]
    fn figure_output_is_worker_count_invariant() {
        let render = |exec: &Exec| {
            let sizes = [8usize, 256];
            let timeouts = [Duration::from_millis(5)];
            let points = fig_pcc::fig18(exec, Scale::test(), &sizes, &timeouts);
            let mut t = Table::new(
                "determinism probe",
                &["TransitTable", "violations", "metrics"],
            );
            for p in &points {
                t.row(vec![
                    format!("{} B", p.transit_bytes),
                    p.metrics.pcc_violations.to_string(),
                    format!("{}", p.metrics),
                ]);
            }
            t.render()
        };
        let seq = render(&Exec::sequential());
        let par = render(&Exec::new(4));
        assert_eq!(seq, par, "parallel run diverged from sequential");
    }
}
