//! `repro` — regenerate every table and figure of the SilkRoad evaluation.
//!
//! ```text
//! cargo run --release -p sr-bench --bin repro -- all
//! cargo run --release -p sr-bench --bin repro -- fig16 [--full] [--jobs N]
//! ```
//!
//! `--full` runs the simulation-backed figures at paper scale (2.77 M new
//! connections/min for one hour per data point) — expect long runtimes.
//!
//! `--jobs N` fans each figure's independent simulation jobs across N
//! worker threads (default: available cores). Results are reduced in job
//! order, so stdout is byte-identical for every N; per-figure wall-clock
//! goes to stderr, which is the only output that differs.

use sr_bench::report::{mb, pct, Table};
use sr_bench::{extras, fig_memory, fig_meta, fig_pcc, fig_version, tables, Exec, Scale};
use sr_types::Duration;

/// Parse `--<flag> V` / `--<flag>=V` as a raw string; `None` means
/// "not given". A bare flag with no value is a usage error.
fn parse_value_flag(args: &[String], flag: &str) -> Option<String> {
    let bare = format!("--{flag}");
    let eq = format!("--{flag}=");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if *a == bare {
            let v = it.next().unwrap_or_else(|| {
                eprintln!("{bare} needs a value");
                std::process::exit(2);
            });
            return Some(v.clone());
        }
        if let Some(v) = a.strip_prefix(&eq) {
            return Some(v.to_string());
        }
    }
    None
}

/// Parse `--<flag> N` / `--<flag>=N`; `None` means "not given".
fn parse_count_flag(args: &[String], flag: &str) -> Option<usize> {
    parse_value_flag(args, flag).map(|v| parse_count_value(&format!("--{flag}"), &v))
}

fn parse_count_value(flag: &str, v: &str) -> usize {
    match v.parse::<usize>() {
        Ok(n) if n >= 1 => n,
        _ => {
            eprintln!("{flag} wants a positive integer, got '{v}'");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let scale = if full { Scale::full() } else { Scale::quick() };
    let exec = match parse_count_flag(&args, "jobs") {
        Some(n) => Exec::new(n),
        None => Exec::available(),
    };
    // Flags are a closed set: a misspelled flag must fail loudly, not
    // silently run the full-scale defaults it was meant to override.
    const BOOL_FLAGS: [&str; 5] = ["--full", "--smoke", "--encap", "--flood", "--help"];
    const VALUE_FLAGS: [&str; 4] = ["--jobs", "--pipes", "--p4", "--algo"];
    let mut cmds: Vec<&str> = Vec::new();
    let mut skip_next = false;
    for a in &args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if VALUE_FLAGS.contains(&a.as_str()) {
            skip_next = true;
            continue;
        }
        if a.starts_with("--") {
            let known = BOOL_FLAGS.contains(&a.as_str())
                || VALUE_FLAGS
                    .iter()
                    .any(|f| a.strip_prefix(*f).is_some_and(|r| r.starts_with('=')));
            if !known {
                eprintln!("unknown flag '{a}' — try: repro help");
                std::process::exit(2);
            }
            continue;
        }
        cmds.push(a.as_str());
    }
    let cmd = cmds.first().copied().unwrap_or("help");

    let all = [
        "table1",
        "table2",
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig8",
        "fig12",
        "fig13",
        "fig14",
        "fig15",
        "fig16",
        "fig17",
        "fig18",
        "meters",
        "digests",
        "cost",
        "ablations",
        "pipeline",
        "latency",
    ];
    match cmd {
        "all" => {
            for c in all {
                run_timed(c, scale, &exec);
                println!();
            }
        }
        "help" | "-h" | "--help" => {
            println!("usage: repro <target> [--full] [--jobs N]");
            println!(
                "targets: all {} check scale wall fleet churn compare export replay",
                all.join(" ")
            );
            println!("scale/wall/fleet/churn/compare options: --smoke (small trace, CI-sized)");
            println!("check usage: repro check [--p4 <file.p4>]");
            println!("churn usage: repro churn [--smoke] [--flood]");
            println!("compare usage: repro compare [--smoke] [--algo <name>]");
            println!("export usage: repro export <file.pcap> [--smoke]");
            println!("replay usage: repro replay <file.pcap> [--pipes N] [--smoke] [--encap]");
        }
        // `check` is deliberately not part of `all`: it is the srcheck
        // verification gate (placement reports + pass/fail exit code), not
        // an evaluation figure. `scale` is excluded too: its output is
        // timing-dependent, and `all`'s stdout must stay byte-identical
        // across hosts and `--jobs` settings. `export`/`replay` take a
        // file argument and are likewise part of the verification surface,
        // not the figure set.
        "check" => run_check(parse_value_flag(&args, "p4").as_deref()),
        "scale" => run_scale(args.iter().any(|a| a == "--smoke")),
        "wall" => run_wall(args.iter().any(|a| a == "--smoke")),
        "fleet" => run_fleet(args.iter().any(|a| a == "--smoke")),
        "churn" => run_churn(
            args.iter().any(|a| a == "--smoke"),
            args.iter().any(|a| a == "--flood"),
        ),
        "compare" => run_compare(
            args.iter().any(|a| a == "--smoke"),
            parse_value_flag(&args, "algo").as_deref(),
        ),
        "export" => run_export(
            cmds.get(1).copied().unwrap_or_else(|| {
                eprintln!("export needs a destination: repro export <file.pcap> [--smoke]");
                std::process::exit(2);
            }),
            args.iter().any(|a| a == "--smoke"),
        ),
        "replay" => run_replay(
            cmds.get(1).copied().unwrap_or_else(|| {
                eprintln!("replay needs a capture: repro replay <file.pcap> [--pipes N]");
                std::process::exit(2);
            }),
            parse_count_flag(&args, "pipes").unwrap_or(2),
            args.iter().any(|a| a == "--smoke"),
            args.iter().any(|a| a == "--encap"),
        ),
        c if all.contains(&c) => run_timed(c, scale, &exec),
        other => {
            eprintln!("unknown target '{other}' — try: repro help");
            std::process::exit(2);
        }
    }
}

/// Compile one P4 source through the sr-p4 front-end and print its
/// parse -> semantic -> placement report. Returns `false` if any phase
/// rejects the program: a syntax error, a non-empty SRC101+ diagnostic
/// set, a lowering failure, or an unplaceable srcheck layout.
fn check_p4(label: &str, source: &str, chip: &sr_asic::ChipSpec) -> bool {
    println!("== P4 front-end: {label} ==");
    let program = match sr_p4::parse(source) {
        Ok(p) => p,
        Err(e) => {
            println!("parse     : FAILED");
            println!("{e}");
            return false;
        }
    };
    println!(
        "parse     : OK ({} header(s), {} struct(s), {} parser(s), {} control(s))",
        program.headers.len(),
        program.structs.len(),
        program.parsers.len(),
        program.controls.len()
    );
    let analysis = sr_p4::analyze(&program);
    if !analysis.is_clean() {
        println!("semantic  : {} diagnostic(s)", analysis.diags.len());
        println!("{}", analysis.render());
        return false;
    }
    println!("semantic  : OK (0 diagnostics)");
    let lowered = match sr_p4::lower(&program, &analysis.env) {
        Ok(p) => p,
        Err(e) => {
            println!("lowering  : FAILED");
            println!("{e}");
            return false;
        }
    };
    println!(
        "lowering  : OK ({} table(s), {} register(s), {} dependency edge(s))",
        lowered.tables.len(),
        lowered.registers.len(),
        lowered.deps.len()
    );
    let report = lowered.check(chip);
    println!("{}", report.render());
    report.is_placeable()
}

/// `repro check [--p4 <file.p4>]` — the srcheck pipeline-layout
/// verification gate. The default run checks the hand-built switch.p4
/// baseline model, compiles both bundled P4 programs through the sr-p4
/// front-end (parse -> semantic -> lower -> placement), and asserts the
/// lowered `p4/silkroad.p4` is resource-for-resource identical to the
/// hand-built reference. `--p4 <file>` instead compiles and checks one
/// P4 source from disk. Exits non-zero if anything is rejected, so
/// `tools/verify.sh` can gate on it; an unreadable `--p4` path is a
/// usage error (exit 2).
fn run_check(p4_path: Option<&str>) {
    use sr_asic::{ChipSpec, PipelineProgram};
    let chip = ChipSpec::tofino_class();
    if let Some(path) = p4_path {
        let source = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("failed to read {path}: {e}");
            std::process::exit(2);
        });
        if !check_p4(path, &source, &chip) {
            eprintln!("repro check: {path} rejected");
            std::process::exit(1);
        }
        return;
    }
    let mut rejected = 0;
    // The base switch.p4 profile is a resource model with no bundled
    // source; it still gates directly.
    let baseline = PipelineProgram::baseline_switch_p4().check(&chip);
    println!("{}", baseline.render());
    println!();
    if !baseline.is_placeable() {
        rejected += 1;
    }
    // The SilkRoad programs are compiled from their checked-in P4 source.
    for (label, source) in [
        ("p4/silkroad.p4", sr_p4::SILKROAD_P4),
        ("p4/charon_lb.p4", sr_p4::CHARON_P4),
    ] {
        if !check_p4(label, source, &chip) {
            rejected += 1;
        }
        println!();
    }
    // Parity gate: the lowered bundled source must match the hand-built
    // reference field-for-field, or the P4 text has drifted from the
    // program the rest of the workspace evaluates.
    let hand_built = PipelineProgram::silkroad(1_000_000, 4, 16, 6, 1_000, 4_000, 144, 256, 4);
    match sr_p4::compile(sr_p4::SILKROAD_P4) {
        Ok(lowered) if format!("{lowered:#?}") == format!("{hand_built:#?}") => {
            println!("parity    : p4/silkroad.p4 == hand-built reference (IDENTICAL)");
        }
        Ok(_) => {
            println!("parity    : p4/silkroad.p4 != hand-built reference (DRIFTED)");
            rejected += 1;
        }
        // Compile failures were already reported (and counted) above.
        Err(_) => {}
    }
    if rejected > 0 {
        eprintln!("repro check: {rejected} program(s) rejected");
        std::process::exit(1);
    }
}

/// `repro scale [--smoke]` — the multi-pipe saturation sweep. Prints a
/// throughput table and writes `BENCH_throughput.json` to the current
/// directory. `--smoke` shrinks the trace for CI; the committed JSON
/// comes from the full run.
fn run_scale(smoke: bool) {
    use sr_bench::saturation;
    let (flows, passes) = if smoke { (16_384, 4) } else { (65_536, 16) };
    let pipe_counts = [1usize, 2, 4];
    let sweep = saturation::sweep(flows, passes, 1_024, &pipe_counts);
    let mut t = Table::new(
        format!("Saturation — multi-pipe aggregate throughput ({flows} flows, {passes} passes)"),
        &[
            "pipes",
            "pps (modeled)",
            "wall pps",
            "max pipe busy",
            "modeled speedup",
            "wall speedup",
        ],
    );
    for p in &sweep.points {
        t.row(vec![
            p.pipes.to_string(),
            format!("{:.2} Mpps", p.pps / 1e6),
            format!("{:.2} Mpps", p.wall_pps / 1e6),
            format!("{:.2} ms", p.max_pipe_busy_ns as f64 / 1e6),
            format!("{:.2}x", sweep.modeled_speedup(p.pipes).unwrap_or(1.0)),
            format!("{:.2}x", sweep.wall_speedup(p.pipes).unwrap_or(1.0)),
        ]);
    }
    println!("{}", t.render());
    println!(
        "decision identity across pipe counts: {}",
        if sweep.decisions_match {
            "OK"
        } else {
            "DIVERGED"
        }
    );
    let json = sweep.to_json();
    let path = "BENCH_throughput.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
    }
    if !sweep.decisions_match {
        eprintln!("repro scale: per-flow decisions diverged across pipe counts");
        std::process::exit(1);
    }
    // The >=3x acceptance target applies to the full run; the CI smoke
    // trace is small enough that we only sanity-check the direction. The
    // target is about the *modeled* chip aggregate — measured wall-clock
    // scaling is `repro wall`'s gate.
    let target = if smoke { 1.0 } else { 3.0 };
    let speedup = sweep.modeled_speedup(4).unwrap_or(0.0);
    if speedup < target {
        eprintln!("repro scale: 4-pipe modeled speedup {speedup:.2}x below the {target}x target");
        std::process::exit(1);
    }
}

/// `repro wall [--smoke]` — measured wall-clock scaling of the
/// run-to-completion engine. Streams a steady-state trace through the
/// threaded backend at each pipe count and writes `BENCH_wall.json`.
///
/// Gates: the decision digest must be bit-identical across pipe counts
/// (always). On hosts with >= 4 cores the full run requires 4 pipes to
/// sustain >= 2.5x the 1-pipe wall rate; the smoke run only requires
/// that adding pipes never loses throughput. On smaller hosts the
/// scaling gate is skipped — there is nothing to scale onto — and the
/// JSON records `host_cores` so readers can tell.
fn run_wall(smoke: bool) {
    use sr_bench::wall;
    let (flows, passes) = if smoke { (8_192, 4) } else { (65_536, 16) };
    let pipe_counts = [1usize, 2, 4];
    let sweep = wall::sweep(flows, passes, 1_024, &pipe_counts);
    let mut t = Table::new(
        format!(
            "Wall — run-to-completion engine, measured ({flows} flows, {passes} passes, \
             {} core(s), pinning {})",
            sweep.host_cores,
            if sweep.pinned { "on" } else { "unavailable" }
        ),
        &["pipes", "wall pps", "wall speedup", "digest"],
    );
    for p in &sweep.points {
        t.row(vec![
            p.pipes.to_string(),
            format!("{:.2} Mpps", p.wall_pps / 1e6),
            format!("{:.2}x", sweep.wall_speedup(p.pipes).unwrap_or(1.0)),
            format!("{:016x}", p.digest),
        ]);
    }
    println!("{}", t.render());
    println!(
        "decision digest identity across pipe counts: {}",
        if sweep.digests_match {
            "OK"
        } else {
            "DIVERGED"
        }
    );
    let json = sweep.to_json();
    let path = "BENCH_wall.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
    }
    if !sweep.digests_match {
        eprintln!("repro wall: decision digests diverged across pipe counts");
        std::process::exit(1);
    }
    if sweep.host_cores < 4 {
        println!(
            "note: {} core(s) — wall-clock scaling gate skipped (needs >= 4)",
            sweep.host_cores
        );
        return;
    }
    if smoke {
        for &pipes in &pipe_counts[1..] {
            let s = sweep.wall_speedup(pipes).unwrap_or(0.0);
            if s < 1.0 {
                eprintln!(
                    "repro wall: {pipes} pipes ran {s:.2}x the 1-pipe wall rate — adding \
                     pipes lost throughput"
                );
                std::process::exit(1);
            }
        }
        return;
    }
    let speedup = sweep.wall_speedup(4).unwrap_or(0.0);
    if speedup < 2.5 {
        eprintln!("repro wall: 4-pipe wall speedup {speedup:.2}x below the 2.5x target");
        std::process::exit(1);
    }
}

/// `repro fleet [--smoke]` — the fleet-scale steady-state bench. Holds a
/// live population across the ~100-cluster fleet under continuous DIP
/// churn plus a mid-run update storm, and writes `BENCH_fleet.json`.
///
/// Gates: PCC violations must be 0 and per-connection state must stay
/// within 64 bytes at every scale. The full run additionally requires at
/// least 100 clusters and a held median of at least 2 M live
/// connections — the paper-scale claim the committed JSON records.
fn run_fleet(smoke: bool) {
    use sr_bench::fleet;
    let b = fleet::run(smoke);
    let r = &b.report;
    let mut t = Table::new(
        format!(
            "Fleet — {} clusters, {} epochs of {} ms, storm x{} ({})",
            r.clusters,
            r.epochs,
            b.params.epoch_ms,
            b.params.storm_factor,
            if smoke { "smoke" } else { "full" }
        ),
        &["metric", "value"],
    );
    t.row(vec![
        "held (median/peak/final)".into(),
        format!(
            "{:.2}M / {:.2}M / {:.2}M",
            r.held_median as f64 / 1e6,
            r.held_peak as f64 / 1e6,
            r.held_final as f64 / 1e6
        ),
    ]);
    t.row(vec![
        "opens".into(),
        format!("{} ({:.0}/s)", r.opens, r.opens_per_sec),
    ]);
    t.row(vec!["closes".into(), r.closes.to_string()]);
    t.row(vec!["PCC violations".into(), r.pcc_violations.to_string()]);
    t.row(vec![
        "updates applied/skipped".into(),
        format!("{} / {}", r.updates_applied, r.updates_skipped),
    ]);
    t.row(vec![
        "bytes/conn".into(),
        format!("{:.1} ({} total)", r.bytes_per_conn, mb(r.state_bytes)),
    ]);
    t.row(vec!["control bytes".into(), mb(r.control_bytes)]);
    t.row(vec![
        "SRAM fit (measured)".into(),
        format!(
            "{}/{} clusters within {:.0} MB (max {:.1} MB)",
            b.fit.fitting, b.fit.clusters, b.fit.budget_mb, b.fit.max_mb
        ),
    ]);
    t.row(vec!["digest".into(), format!("{:016x}", r.digest)]);
    println!("{}", t.render());
    let json = b.to_json();
    let path = "BENCH_fleet.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
    }
    if r.pcc_violations > 0 {
        eprintln!("repro fleet: {} PCC violations", r.pcc_violations);
        std::process::exit(1);
    }
    if r.bytes_per_conn > 64.0 {
        eprintln!(
            "repro fleet: {:.1} bytes/conn exceeds the 64 B budget",
            r.bytes_per_conn
        );
        std::process::exit(1);
    }
    if !smoke {
        if r.clusters < 100 {
            eprintln!("repro fleet: {} clusters, need >= 100", r.clusters);
            std::process::exit(1);
        }
        if r.held_median < 2_000_000 {
            eprintln!(
                "repro fleet: held median {} below the 2M-connection target",
                r.held_median
            );
            std::process::exit(1);
        }
    }
}

/// `repro churn [--smoke] [--flood]` — the batched connection-setup
/// sweep. Paces waves of brand-new connections through the full
/// learn→insert→promote pipeline under 1×/10× SYN storms, paired
/// against the per-packet legacy-install baseline, and writes
/// `BENCH_churn.json`.
///
/// Gates (both profiles): 0 PCC violations, 0 learning-filter overflow
/// drops, and bit-identical decision digests batched-vs-per-packet and
/// across 1/2/4 pipes. The full run additionally gates the batched arm's
/// clean-handshake (storm 1) speedup over the per-packet baseline at the
/// [`churn::SPEEDUP_FLOOR`] regression floor, reporting the measured
/// ratio against the [`churn::SPEEDUP_TARGET`] stretch goal; the smoke
/// profile skips the timing gate (CI hosts are too noisy to promise
/// ratios) but still prints the measured speedup.
///
/// `--flood` runs the adversarial scenario instead: a deterministic
/// storm of never-completing SYNs far beyond the learning filter's
/// capacity, with an established background population serving traffic
/// throughout. Gates: the filter sheds load (overflow_drops > 0),
/// installed state stays within the model-derived bound, and the
/// background flows see 0 PCC violations. No JSON is written — the
/// flood is a pass/fail scenario, not a recorded figure.
fn run_churn(smoke: bool, flood: bool) {
    use sr_bench::churn;
    if flood {
        let r = churn::flood(smoke);
        let mut t = Table::new(
            format!(
                "Churn flood — {} waves x {} unique SYNs, {} background flows ({})",
                r.waves,
                r.syns_per_wave,
                r.background_flows,
                if smoke { "smoke" } else { "full" }
            ),
            &["metric", "value"],
        );
        t.row(vec!["flood SYNs".into(), r.flood_syns.to_string()]);
        t.row(vec![
            "filter overflow drops".into(),
            r.overflow_drops.to_string(),
        ]);
        t.row(vec![
            "installed peak / bound".into(),
            format!("{} / {}", r.installed_peak, r.live_bound),
        ]);
        t.row(vec![
            "installed final".into(),
            r.installed_final.to_string(),
        ]);
        t.row(vec!["idle-expired".into(), r.expired.to_string()]);
        t.row(vec![
            "background PCC violations".into(),
            r.pcc_violations.to_string(),
        ]);
        println!("{}", t.render());
        if r.overflow_drops == 0 {
            eprintln!("repro churn --flood: learning filter never shed load");
            std::process::exit(1);
        }
        if !r.bounded() {
            eprintln!(
                "repro churn --flood: installed peak {} escaped the bound {}",
                r.installed_peak, r.live_bound
            );
            std::process::exit(1);
        }
        if r.pcc_violations > 0 {
            eprintln!(
                "repro churn --flood: {} PCC violations on background flows",
                r.pcc_violations
            );
            std::process::exit(1);
        }
        return;
    }
    let b = churn::run(smoke);
    let mut t = Table::new(
        format!(
            "Churn — {} waves x {} new flows, batch {} ({})",
            b.params.waves,
            b.params.flows_per_wave,
            b.params.batch,
            if smoke { "smoke" } else { "full" }
        ),
        &[
            "storm",
            "setups",
            "baseline setups/s",
            "batched setups/s",
            "speedup",
            "learn p50/p90/max",
            "transit peak",
            "digest",
        ],
    );
    for p in &b.points {
        t.row(vec![
            format!("{}x", p.storm),
            p.setups.to_string(),
            format!("{:.0}K", p.baseline_setups_per_sec / 1e3),
            format!("{:.0}K", p.batched_setups_per_sec / 1e3),
            format!("{:.2}x", p.speedup),
            format!(
                "{}/{}/{}",
                p.learn_depth_p50, p.learn_depth_p90, p.learn_depth_max
            ),
            format!("{:.2}%", 100.0 * p.transit_fill_peak),
            format!("{:016x}", p.digest),
        ]);
    }
    println!("{}", t.render());
    println!(
        "decision digest identity (arms, pipe counts): {}",
        if b.digests_ok() { "OK" } else { "DIVERGED" }
    );
    let json = b.to_json();
    let path = "BENCH_churn.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
    }
    if !b.digests_ok() {
        eprintln!("repro churn: decision digests diverged across arms or pipe counts");
        std::process::exit(1);
    }
    if b.pcc_violations() > 0 {
        eprintln!("repro churn: {} PCC violations", b.pcc_violations());
        std::process::exit(1);
    }
    if let Some(p) = b.points.iter().find(|p| p.overflow_drops > 0) {
        eprintln!(
            "repro churn: {} learning-filter overflow drops at storm {}x",
            p.overflow_drops, p.storm
        );
        std::process::exit(1);
    }
    if !smoke {
        let speedup = b.gate_speedup();
        if speedup < churn::SPEEDUP_FLOOR {
            eprintln!(
                "repro churn: batched setup speedup {speedup:.2}x fell below the {:.1}x \
                 regression floor",
                churn::SPEEDUP_FLOOR
            );
            std::process::exit(1);
        }
        if speedup < churn::SPEEDUP_TARGET {
            println!(
                "note: batched setup speedup {speedup:.2}x (floor {:.1}x) is below the \
                 {:.0}x stretch target — see EXPERIMENTS.md for why the paired baseline \
                 already amortizes most batching wins",
                churn::SPEEDUP_FLOOR,
                churn::SPEEDUP_TARGET
            );
        }
    }
}

/// `repro compare [--smoke] [--algo <name>]` — the cross-algorithm LB
/// matrix: every sr-algo zoo member through the identical churn +
/// pool-update workload, with the paper-style columns (SRAM bytes/conn,
/// PCC violations, insert fraction, steady pps, srcheck placement) and
/// the acceptance gates. Writes `BENCH_compare.json`.
fn run_compare(smoke: bool, only: Option<&str>) {
    use sr_algo::AlgoName;
    use sr_bench::compare;
    let only = only.map(|s| {
        AlgoName::parse(s).unwrap_or_else(|| {
            let names: Vec<&str> = AlgoName::all().iter().map(|a| a.label()).collect();
            eprintln!(
                "unknown algorithm '{s}' — valid names: {}",
                names.join(", ")
            );
            std::process::exit(2);
        })
    });
    let b = compare::run(smoke, only);
    let mut t = Table::new(
        format!(
            "Algorithm comparison — {} waves x {} new flows, 2 pool updates ({})",
            b.params.waves,
            b.params.flows_per_wave,
            if smoke { "smoke" } else { "full" }
        ),
        &[
            "algo",
            "SRAM B/conn",
            "model bits",
            "entries peak",
            "insert frac",
            "PCC viol",
            "false hits",
            "steady pps",
            "placeable",
        ],
    );
    for p in &b.points {
        t.row(vec![
            p.algo.to_string(),
            format!("{:.2}", p.sram_bytes_per_conn),
            p.model_bits_per_entry.to_string(),
            p.entries_peak.to_string(),
            format!("{:.3}", p.insert_fraction),
            p.pcc_violations.to_string(),
            p.false_hits.to_string(),
            format!("{:.0}K", p.steady_pps / 1e3),
            if p.placeable { "yes" } else { "NO" }.to_string(),
        ]);
    }
    println!("{}", t.render());
    let json = b.to_json();
    let path = "BENCH_compare.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
    }
    if let Some(p) = b.points.iter().find(|p| !p.placeable) {
        eprintln!("repro compare: {} layout is not srcheck-placeable", p.algo);
        std::process::exit(1);
    }
    if b.stamp_failures() > 0 {
        eprintln!(
            "repro compare: {} version stamps lost in the wire round trip",
            b.stamp_failures()
        );
        std::process::exit(1);
    }
    // The cross-algorithm gates need the full matrix; a single `--algo`
    // row is a debugging view.
    if b.has_all() {
        let silk = b.point(AlgoName::Silkroad).expect("silkroad row");
        let conc = b.point(AlgoName::Concury).expect("concury row");
        let cuco = b.point(AlgoName::Cucotrack).expect("cucotrack row");
        if silk.pcc_violations > 0 {
            eprintln!(
                "repro compare: SilkRoad broke PCC ({} violations)",
                silk.pcc_violations
            );
            std::process::exit(1);
        }
        if conc.sram_bytes_per_conn >= silk.sram_bytes_per_conn {
            eprintln!(
                "repro compare: concury SRAM/conn {:.2} did not beat silkroad {:.2}",
                conc.sram_bytes_per_conn, silk.sram_bytes_per_conn
            );
            std::process::exit(1);
        }
        if cuco.false_hits == 0 {
            eprintln!("repro compare: cucotrack recorded no audited false hits");
            std::process::exit(1);
        }
    }
}

/// `repro export <file.pcap> [--smoke]` — materialize the deterministic
/// replay trace as a pcap capture. `--smoke` writes the small CI profile
/// (the bytes behind `crates/bench/golden/replay_smoke.pcap`); the full
/// profile produces the 100K+-frame capture the committed
/// `BENCH_replay.json` replays.
fn run_export(path: &str, smoke: bool) {
    use sr_bench::replay::{export_profile, EXPORT_DATA_PKTS};
    let file = match std::fs::File::create(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("failed to create {path}: {e}");
            std::process::exit(1);
        }
    };
    let mut writer = match sr_wire::PcapWriter::new(std::io::BufWriter::new(file)) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("failed to write pcap header: {e}");
            std::process::exit(1);
        }
    };
    let cfg = export_profile(smoke);
    let stats = match sr_wire::export_trace(&cfg, EXPORT_DATA_PKTS, &mut writer, |_, _| {}) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("export failed: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = writer.finish().and_then(|mut w| {
        use std::io::Write;
        w.flush()
    }) {
        eprintln!("failed to flush {path}: {e}");
        std::process::exit(1);
    }
    println!(
        "wrote {path}: {} frames, {} conns, {} bytes ({})",
        stats.frames,
        stats.conns,
        stats.bytes,
        if smoke {
            "smoke profile"
        } else {
            "full profile"
        }
    );
}

/// `repro replay <file.pcap> [--pipes N] [--smoke] [--encap]` — stream a
/// capture through the multi-pipe switch, rewrite every forwarded frame,
/// and write `BENCH_replay.json` to the current directory. Exits non-zero
/// on parse errors, checksum failures, or PCC violations. The full
/// (non-`--smoke`) run additionally requires a 100K+-frame capture, so a
/// committed `BENCH_replay.json` always reflects paper-scale replay.
fn run_replay(path: &str, pipes: usize, smoke: bool, encap: bool) {
    use sr_bench::replay;
    use sr_types::RewriteMode;
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("failed to read {path}: {e}");
            std::process::exit(1);
        }
    };
    let mode = if encap {
        RewriteMode::Encap
    } else {
        RewriteMode::Nat
    };
    let report = match replay::replay(&bytes, pipes, mode) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("replay failed: {e}");
            std::process::exit(1);
        }
    };
    let mut t = Table::new(
        format!(
            "Replay — {path} through {pipes} pipe(s), {} mode",
            mode.label()
        ),
        &["metric", "value"],
    );
    t.row(vec!["frames".into(), report.frames.to_string()]);
    t.row(vec!["connections".into(), report.conns.to_string()]);
    t.row(vec!["VIPs".into(), report.vips.to_string()]);
    t.row(vec!["rewritten".into(), report.rewritten.to_string()]);
    t.row(vec!["skipped".into(), report.skipped.to_string()]);
    t.row(vec![
        "throughput".into(),
        format!("{:.2} Mpps", report.pps / 1e6),
    ]);
    t.row(vec![
        "bytes in/out".into(),
        format!("{} / {}", report.bytes_in, report.bytes_out),
    ]);
    t.row(vec![
        "decision digest".into(),
        format!("{:016x}", report.decision_digest),
    ]);
    t.row(vec![
        "checksum failures".into(),
        report.checksum_failures.to_string(),
    ]);
    t.row(vec![
        "PCC violations".into(),
        report.pcc_violations.to_string(),
    ]);
    println!("{}", t.render());
    let json = report.to_json();
    let out = "BENCH_replay.json";
    match std::fs::write(out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => {
            eprintln!("failed to write {out}: {e}");
            std::process::exit(1);
        }
    }
    if !smoke && report.frames < 100_000 {
        eprintln!(
            "repro replay: full run needs a 100K+-frame capture, got {} (use --smoke for small captures)",
            report.frames
        );
        std::process::exit(1);
    }
    if !report.ok() {
        eprintln!(
            "repro replay: correctness failure ({} parse errors, {} checksum failures, {} PCC violations)",
            report.parse_errors, report.checksum_failures, report.pcc_violations
        );
        std::process::exit(1);
    }
}

/// Run one target and report its wall-clock on stderr (stdout must stay
/// byte-identical across `--jobs` settings; timing is the one thing that
/// legitimately differs).
fn run_timed(cmd: &str, scale: Scale, exec: &Exec) {
    // Wall-clock is banned in the model (clippy.toml) but fine here: the
    // timing goes to stderr only, never into the byte-stable stdout.
    #[allow(clippy::disallowed_methods)]
    let t0 = std::time::Instant::now();
    run(cmd, scale, exec);
    eprintln!(
        "[{cmd}: {:.2}s, {} worker{}]",
        t0.elapsed().as_secs_f64(),
        exec.workers(),
        if exec.workers() == 1 { "" } else { "s" }
    );
}

fn run(cmd: &str, scale: Scale, exec: &Exec) {
    match cmd {
        "table1" => println!("{}", tables::table1().render()),
        "table2" => println!("{}", tables::table2_table(1_000_000).render()),
        "fig2" => {
            let fleet = fig_meta::default_fleet();
            println!("{}", fig_meta::fig2_table(&fig_meta::fig2(&fleet)).render());
        }
        "fig3" => {
            let mut t = Table::new(
                "Fig 3 — root causes of DIP additions/removals",
                &["cause", "paper share", "generated share"],
            );
            for r in fig_meta::fig3(scale.seed) {
                t.row(vec![
                    r.cause.name().to_string(),
                    pct(r.target_share),
                    pct(r.generated_share),
                ]);
            }
            println!("{}", t.render());
        }
        "fig4" => {
            let mut t = Table::new(
                "Fig 4 — DIP downtime duration by root cause (minutes)",
                &["cause", "p50", "p90", "p99"],
            );
            for r in fig_meta::fig4(scale.seed) {
                t.row(vec![
                    r.cause.name().to_string(),
                    format!("{:.1}", r.p50_min),
                    format!("{:.1}", r.p90_min),
                    format!("{:.1}", r.p99_min),
                ]);
            }
            println!("{}", t.render());
        }
        "fig5" => {
            let freqs = [1.0, 10.0, 20.0, 30.0, 40.0, 50.0];
            let points = fig_pcc::fig5(exec, scale, &freqs);
            let mut a = Table::new(
                "Fig 5a — traffic handled in SLBs (Duet migrate-back dilemma)",
                &["upd/min", "Duet-10min", "Duet-1min", "Duet-PCC"],
            );
            let mut b = Table::new(
                "Fig 5b — connections with PCC violations",
                &["upd/min", "Duet-10min", "Duet-1min", "Duet-PCC"],
            );
            for &f in &freqs {
                let find = |label: &str| {
                    points
                        .iter()
                        .find(|p| p.updates_per_min == f && p.system == label)
                        .expect("point exists")
                };
                a.row(vec![
                    format!("{f:.0}"),
                    pct(find("Duet-10min").metrics.software_traffic_fraction()),
                    pct(find("Duet-1min").metrics.software_traffic_fraction()),
                    pct(find("Duet-PCC").metrics.software_traffic_fraction()),
                ]);
                b.row(vec![
                    format!("{f:.0}"),
                    pct(find("Duet-10min").metrics.violation_fraction()),
                    pct(find("Duet-1min").metrics.violation_fraction()),
                    pct(find("Duet-PCC").metrics.violation_fraction()),
                ]);
            }
            println!("{}", a.render());
            println!("{}", b.render());
        }
        "fig6" => {
            let mut t = Table::new(
                "Fig 6 — active connections per ToR switch across clusters",
                &["kind", "p50", "p90", "max"],
            );
            for r in fig_meta::fig6(&fig_meta::default_fleet()) {
                t.row(vec![
                    r.kind.name().to_string(),
                    format!("{:.2}M", r.p50 / 1e6),
                    format!("{:.2}M", r.p90 / 1e6),
                    format!("{:.2}M", r.max / 1e6),
                ]);
            }
            println!("{}", t.render());
        }
        "fig8" => {
            let mut t = Table::new(
                "Fig 8 — new connections per VIP per minute across clusters",
                &["kind", "p50", "p90", "max"],
            );
            for r in fig_meta::fig8(&fig_meta::default_fleet()) {
                t.row(vec![
                    r.kind.name().to_string(),
                    format!("{:.0}K", r.p50 / 1e3),
                    format!("{:.0}K", r.p90 / 1e3),
                    format!("{:.1}M", r.max / 1e6),
                ]);
            }
            println!("{}", t.render());
        }
        "fig12" => {
            let mut t = Table::new(
                "Fig 12 — SilkRoad SRAM usage per ToR switch (MB)",
                &["kind", "p50", "p90", "max"],
            );
            for r in fig_memory::fig12(exec, &fig_meta::default_fleet()) {
                t.row(vec![
                    r.kind.name().to_string(),
                    format!("{:.1}", r.p50),
                    format!("{:.1}", r.p90),
                    format!("{:.1}", r.max),
                ]);
            }
            println!("{}", t.render());
            let fleet = fig_meta::default_fleet();
            println!(
                "clusters fitting 100 MB SRAM: {}/{}",
                fig_memory::clusters_fitting(&fleet, 100.0),
                fleet.len()
            );
        }
        "fig13" => {
            let mut t = Table::new(
                "Fig 13 — SLBs replaced by one SilkRoad",
                &["kind", "p50", "p90", "max"],
            );
            for r in fig_memory::fig13(exec, &fig_meta::default_fleet()) {
                t.row(vec![
                    r.kind.name().to_string(),
                    format!("{:.1}", r.p50),
                    format!("{:.1}", r.p90),
                    format!("{:.0}", r.max),
                ]);
            }
            println!("{}", t.render());
        }
        "fig14" => {
            let fleet = fig_meta::default_fleet();
            let digest = fig_memory::fig14(exec, &fleet, fig_memory::Fig14Design::DigestOnly);
            let version = fig_memory::fig14(exec, &fleet, fig_memory::Fig14Design::DigestVersion);
            let mut t = Table::new(
                "Fig 14 — ConnTable memory saving vs naive layout",
                &[
                    "kind",
                    "digest-only p50",
                    "digest+version p50",
                    "digest+version max",
                ],
            );
            for (d, v) in digest.iter().zip(&version) {
                t.row(vec![
                    d.kind.name().to_string(),
                    pct(d.p50),
                    pct(v.p50),
                    pct(v.max),
                ]);
            }
            println!("{}", t.render());
        }
        "fig15" => {
            let mut t = Table::new(
                "Fig 15 — versions needed per 10-min window, before/after reuse",
                &["updates", "naive versions", "with reuse"],
            );
            for p in fig_version::fig15(exec, &[1.0, 5.0, 10.0, 20.0, 33.0], 16, scale.seed) {
                t.row(vec![
                    p.updates.to_string(),
                    p.versions_naive.to_string(),
                    p.versions_with_reuse.to_string(),
                ]);
            }
            println!("{}", t.render());
        }
        "fig16" => {
            let freqs = [1.0, 10.0, 20.0, 30.0, 40.0, 50.0];
            let points = fig_pcc::fig16(exec, scale, &freqs);
            let mut t = Table::new(
                format!(
                    "Fig 16 — PCC violations vs update frequency ({:.0}K conns/min, {} min)",
                    2770.0 * scale.rate_factor,
                    scale.minutes
                ),
                &["upd/min", "Duet-10min", "SilkRoad-noTT", "SilkRoad"],
            );
            for &f in &freqs {
                let find = |label: &str| {
                    points
                        .iter()
                        .find(|p| p.updates_per_min == f && p.system.contains(label))
                        .expect("point exists")
                };
                t.row(vec![
                    format!("{f:.0}"),
                    pct(find("Duet").metrics.violation_fraction()),
                    pct(find("noTT").metrics.violation_fraction()),
                    pct(find("SilkRoad(").metrics.violation_fraction()),
                ]);
            }
            println!("{}", t.render());
        }
        "fig17" => {
            let factors = [0.1, 0.25, 0.5, 1.0, 1.5, 2.0];
            let points = fig_pcc::fig17(exec, scale, &factors);
            let mut t = Table::new(
                "Fig 17 — PCC violations/min vs arrival rate (10 upd/min)",
                &["rate x", "Duet-10min", "SilkRoad-noTT", "SilkRoad"],
            );
            for &f in &factors {
                let find = |label: &str| {
                    points
                        .iter()
                        .find(|p| p.rate_factor == f && p.system.contains(label))
                        .expect("point exists")
                };
                t.row(vec![
                    format!("{f:.2}"),
                    format!("{:.2}", find("Duet").metrics.violations_per_min()),
                    format!("{:.2}", find("noTT").metrics.violations_per_min()),
                    format!("{:.2}", find("SilkRoad(").metrics.violations_per_min()),
                ]);
            }
            println!("{}", t.render());
        }
        "fig18" => {
            let sizes = [8usize, 64, 256];
            let timeouts = [
                Duration::from_micros(500),
                Duration::from_millis(1),
                Duration::from_millis(5),
            ];
            let points = fig_pcc::fig18(exec, scale, &sizes, &timeouts);
            let mut t = Table::new(
                "Fig 18 — PCC violations vs TransitTable size (10 upd/min)",
                &[
                    "TransitTable",
                    "timeout 0.5ms",
                    "timeout 1ms",
                    "timeout 5ms",
                ],
            );
            for &s in &sizes {
                let find = |to: Duration| {
                    points
                        .iter()
                        .find(|p| p.transit_bytes == s && p.timeout == to)
                        .expect("point exists")
                };
                t.row(vec![
                    format!("{s} B"),
                    find(timeouts[0]).metrics.pcc_violations.to_string(),
                    find(timeouts[1]).metrics.pcc_violations.to_string(),
                    find(timeouts[2]).metrics.pcc_violations.to_string(),
                ]);
            }
            println!("{}", t.render());
        }
        "meters" => {
            let mut t = Table::new(
                "§5.2 — trTCM marking accuracy at 10 Gbps offered",
                &["CIR Gbps", "EIR Gbps", "avg error"],
            );
            for p in extras::meter_accuracy(exec) {
                t.row(vec![
                    format!("{:.0}", p.cir_gbps),
                    format!("{:.0}", p.eir_gbps),
                    pct(p.avg_error()),
                ]);
            }
            println!("{}", t.render());
        }
        "digests" => {
            let conns = if scale.rate_factor >= 1.0 {
                2_770_000
            } else {
                60_000
            };
            let mut t = Table::new(
                format!("§6.1 — digest size vs false positives ({conns} conns/min)"),
                &[
                    "digest",
                    "false hits",
                    "SYN repairs",
                    "fp rate",
                    "ConnTable SRAM",
                ],
            );
            for p in extras::digest_tradeoff(exec, conns, scale.seed) {
                t.row(vec![
                    format!("{}-bit", p.digest_bits),
                    p.false_hits.to_string(),
                    p.syn_repairs.to_string(),
                    pct(p.false_hit_fraction()),
                    mb(p.conn_table_bytes),
                ]);
            }
            println!("{}", t.render());
        }
        "cost" => {
            let c = extras::cost_comparison();
            println!("== §6.1 — cost/power of SilkRoad vs SLB ==");
            println!("power saving factor: {:.0}x (paper ~500x)", c.power_factor);
            println!("capex saving factor: {:.0}x (paper ~250x)", c.capex_factor);
        }
        "latency" => {
            let mut t = Table::new(
                "§2.2/§5.2 — per-packet LB processing latency (10 upd/min)",
                &["system", "p50", "p99"],
            );
            for p in extras::latency_comparison(exec, scale) {
                t.row(vec![p.system, format!("{}", p.p50), format!("{}", p.p99)]);
            }
            println!("{}", t.render());
        }
        "pipeline" => {
            use sr_asic::PipelineProgram;
            let base = PipelineProgram::baseline_switch_p4().resource_usage();
            let silk = PipelineProgram::silkroad(1_000_000, 4, 16, 6, 1_000, 4_000, 144, 256, 4)
                .resource_usage();
            let mut t = Table::new(
                "Pipeline resource report — switch.p4 baseline vs SilkRoad addition",
                &["resource", "switch.p4", "SilkRoad", "added %"],
            );
            let rows: [(&str, f64, f64); 7] = [
                ("crossbar bits", base.crossbar_bits, silk.crossbar_bits),
                ("SRAM bytes", base.sram_bytes, silk.sram_bytes),
                ("TCAM bytes", base.tcam_bytes, silk.tcam_bytes),
                ("VLIW actions", base.vliw_actions, silk.vliw_actions),
                ("hash bits", base.hash_bits, silk.hash_bits),
                ("stateful ALUs", base.stateful_alus, silk.stateful_alus),
                ("PHV bits", base.phv_bits, silk.phv_bits),
            ];
            for (name, b, s_) in rows {
                t.row(vec![
                    name.to_string(),
                    format!("{b:.0}"),
                    format!("{s_:.0}"),
                    if b > 0.0 {
                        format!("{:.1}%", 100.0 * s_ / b)
                    } else {
                        "-".to_string()
                    },
                ]);
            }
            println!("{}", t.render());
        }
        "ablations" => {
            use sr_bench::ablations;
            let mut t = Table::new(
                "Ablation — cuckoo geometry vs achievable load factor",
                &["stages", "ways", "load factor", "avg moves/insert"],
            );
            for p in ablations::cuckoo_geometry(exec, scale.seed) {
                t.row(vec![
                    p.stages.to_string(),
                    p.ways.to_string(),
                    format!("{:.1}%", 100.0 * p.load_factor),
                    format!("{:.3}", p.avg_moves),
                ]);
            }
            println!("{}", t.render());

            let mut t = Table::new(
                "Ablation — switch-CPU insertion rate (12 VIPs, 50 upd/min)",
                &["inserts/s", "noTT violations", "SilkRoad violations"],
            );
            // Keep the slow point *above* the arrival rate: below it the
            // backlog grows without bound and both designs break (the
            // bloom-saturation regime the fig18 discussion covers).
            let arrivals = 2_770_000.0 * scale.rate_factor / 60.0;
            let rates = [(arrivals * 1.2) as u64, (arrivals * 10.0) as u64, 200_000];
            for p in ablations::insertion_rate_sweep(exec, scale, &rates) {
                t.row(vec![
                    p.insertions_per_sec.to_string(),
                    p.no_tt.pcc_violations.to_string(),
                    p.with_tt.pcc_violations.to_string(),
                ]);
            }
            println!("{}", t.render());

            let mut t = Table::new(
                "Ablation — §7 per-stage digest widths (16-bit average)",
                &["layout", "fill", "false hits / 400K probes"],
            );
            for p in ablations::digest_layouts(exec, scale.seed) {
                t.row(vec![
                    p.label.to_string(),
                    format!("{:.0}%", 100.0 * p.fill),
                    p.false_hits.to_string(),
                ]);
            }
            println!("{}", t.render());
        }
        other => unreachable!("unknown target {other}"),
    }
}
