//! Figures 5, 16, 17 and 18 — the simulation-backed PCC figures.
//!
//! Each figure builds a flat list of independent (data point, system)
//! jobs and fans them across [`Exec`]; results come back in job order, so
//! the rendered tables do not depend on the worker count.

use crate::exec::Exec;
use crate::scale::Scale;
use sr_baselines::MigrationPolicy;
use sr_sim::{run_scenario, RunMetrics, Scenario, SystemKind};
use sr_types::Duration;
use sr_workload::TraceConfig;

fn base_trace(scale: Scale, updates_per_min: f64) -> TraceConfig {
    let mut t = TraceConfig::pop_scaled(scale.rate_factor, scale.minutes);
    t.updates_per_min = updates_per_min;
    t.seed = scale.seed;
    t
}

/// One measured point: a system at an update frequency.
#[derive(Clone, Debug)]
pub struct PccPoint {
    /// System label.
    pub system: String,
    /// Updates per minute.
    pub updates_per_min: f64,
    /// Run results.
    pub metrics: RunMetrics,
}

/// Fig 5: the Duet dilemma. For each update frequency, runs Migrate-10min,
/// Migrate-1min and Migrate-PCC and reports SLB load (5a) and broken
/// connections (5b).
pub fn fig5(exec: &Exec, scale: Scale, freqs: &[f64]) -> Vec<PccPoint> {
    let systems = [
        SystemKind::Duet(MigrationPolicy::Periodic(Duration::from_mins(10))),
        SystemKind::Duet(MigrationPolicy::Periodic(Duration::from_mins(1))),
        SystemKind::Duet(MigrationPolicy::WaitPcc),
    ];
    sweep(exec, scale, freqs, &systems)
}

/// Fig 16: PCC violations vs update frequency for Duet-10min,
/// SilkRoad-without-TransitTable, and SilkRoad.
pub fn fig16(exec: &Exec, scale: Scale, freqs: &[f64]) -> Vec<PccPoint> {
    let systems = [
        SystemKind::Duet(MigrationPolicy::Periodic(Duration::from_mins(10))),
        SystemKind::SilkRoadNoTransit {
            learning_timeout: Duration::from_millis(1),
            insertions_per_sec: 200_000,
        },
        SystemKind::silkroad_default(),
    ];
    sweep(exec, scale, freqs, &systems)
}

fn sweep(exec: &Exec, scale: Scale, freqs: &[f64], systems: &[SystemKind]) -> Vec<PccPoint> {
    let mut jobs = Vec::new();
    for &f in freqs {
        for &sys in systems {
            jobs.push((f, sys));
        }
    }
    exec.run(jobs, |(f, sys)| PccPoint {
        system: sys.label(),
        updates_per_min: f,
        metrics: run_scenario(Scenario::new(base_trace(scale, f), sys)),
    })
}

/// Fig 17 point: a system at an arrival-rate factor.
#[derive(Clone, Debug)]
pub struct Fig17Point {
    /// System label.
    pub system: String,
    /// Arrival-rate multiplier on the reference 2.77 M conns/min.
    pub rate_factor: f64,
    /// Run results.
    pub metrics: RunMetrics,
}

/// Fig 17: PCC violations vs new-connection arrival rate at 10 updates/min.
pub fn fig17(exec: &Exec, scale: Scale, factors: &[f64]) -> Vec<Fig17Point> {
    let systems = [
        SystemKind::Duet(MigrationPolicy::Periodic(Duration::from_mins(10))),
        SystemKind::SilkRoadNoTransit {
            learning_timeout: Duration::from_millis(1),
            insertions_per_sec: 200_000,
        },
        SystemKind::silkroad_default(),
    ];
    let mut jobs = Vec::new();
    for &f in factors {
        for &sys in &systems {
            jobs.push((f, sys));
        }
    }
    exec.run(jobs, |(f, sys)| {
        let mut s = scale;
        s.rate_factor *= f;
        Fig17Point {
            system: sys.label(),
            rate_factor: f,
            metrics: run_scenario(Scenario::new(base_trace(s, 10.0), sys)),
        }
    })
}

/// Fig 18 point: TransitTable size × learning-filter timeout.
#[derive(Clone, Debug)]
pub struct Fig18Point {
    /// TransitTable bytes.
    pub transit_bytes: usize,
    /// Learning-filter timeout.
    pub timeout: Duration,
    /// Run results.
    pub metrics: RunMetrics,
}

/// Fig 18: violations vs TransitTable size for several learning timeouts,
/// at 10 updates/min.
pub fn fig18(exec: &Exec, scale: Scale, sizes: &[usize], timeouts: &[Duration]) -> Vec<Fig18Point> {
    let mut jobs = Vec::new();
    for &timeout in timeouts {
        for &bytes in sizes {
            jobs.push((timeout, bytes));
        }
    }
    exec.run(jobs, |(timeout, bytes)| {
        let sys = SystemKind::SilkRoad {
            transit_bytes: bytes,
            learning_timeout: timeout,
            insertions_per_sec: 200_000,
        };
        Fig18Point {
            transit_bytes: bytes,
            timeout,
            metrics: run_scenario(Scenario::new(base_trace(scale, 10.0), sys)),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig16_ordering_holds() {
        let points = fig16(&Exec::available(), Scale::test(), &[30.0]);
        let get = |label: &str| {
            points
                .iter()
                .find(|p| p.system.contains(label))
                .unwrap()
                .metrics
                .clone()
        };
        let duet = get("Duet");
        let silkroad = get("SilkRoad(");
        assert_eq!(silkroad.pcc_violations, 0, "SilkRoad: {silkroad}");
        assert!(duet.pcc_violations > 0, "Duet should violate: {duet}");
    }

    #[test]
    fn fig5_dilemma_holds() {
        let points = fig5(&Exec::available(), Scale::test(), &[30.0]);
        let get = |label: &str| {
            points
                .iter()
                .find(|p| p.system == label)
                .unwrap()
                .metrics
                .clone()
        };
        let m10 = get("Duet-10min");
        let m1 = get("Duet-1min");
        let pcc = get("Duet-PCC");
        // Migrate-PCC never breaks a connection...
        assert_eq!(pcc.pcc_violations, 0, "{pcc}");
        // ...but keeps the most traffic in SLBs.
        assert!(
            pcc.software_traffic_fraction() >= m1.software_traffic_fraction(),
            "pcc {pcc} vs 1min {m1}"
        );
        // Faster migration moves less traffic through SLBs than 10-min.
        assert!(
            m1.software_traffic_fraction() <= m10.software_traffic_fraction() + 0.05,
            "1min {m1} vs 10min {m10}"
        );
    }

    #[test]
    fn fig18_bigger_filter_never_worse() {
        let points = fig18(
            &Exec::available(),
            Scale::test(),
            &[8, 256],
            &[Duration::from_millis(5)],
        );
        let small = points.iter().find(|p| p.transit_bytes == 8).unwrap();
        let big = points.iter().find(|p| p.transit_bytes == 256).unwrap();
        assert!(
            big.metrics.pcc_violations <= small.metrics.pcc_violations,
            "256B {} vs 8B {}",
            big.metrics,
            small.metrics
        );
        assert_eq!(big.metrics.pcc_violations, 0, "{}", big.metrics);
    }
}
