//! `repro wall` — sustained wall-clock throughput of the
//! run-to-completion engine (`BENCH_wall.json`).
//!
//! Where `repro scale` *models* chip scaling (serial steering plus each
//! pipe's drain timed in isolation), this harness *measures* it: the
//! threaded [`MultiPipeSwitch`] backend runs one resident worker per
//! pipe (core-pinned where the OS allows), the steer thread streams
//! batches through [`MultiPipeSwitch::stream_batch`] without waiting for
//! completions, and the reported rate is packets over elapsed
//! wall-clock — spawn/join, ring transfer, and adoption costs included.
//! This is exactly the figure engine v1's per-batch fan-out could not
//! scale: its thread spawn/join per batch swamped the per-pipe wins.
//!
//! Correctness rides along: every streamed decision folds into a
//! commutative digest ([`silkroad::StreamStats`]), and the sweep
//! hard-fails unless every pipe count produces the identical digest —
//! decision identity checked at full speed, not on a side trace.
//!
//! Host honesty: wall-clock scaling needs cores. The report records
//! `host_cores`; callers gate the ≥2.5× 4-pipe target only when the host
//! has ≥4 cores (a 1-core CI box can only verify digests and that the
//! engine sustains traffic).

use silkroad::{EngineOptions, MultiPipeSwitch, SilkRoadConfig};
use sr_types::{Addr, Dip, FiveTuple, Nanos, PacketMeta, Vip};

/// One pipe count's measured point.
#[derive(Clone, Debug)]
pub struct WallPoint {
    /// Pipes (= resident worker threads).
    pub pipes: usize,
    /// Packets streamed during the timed window (flows × passes).
    pub packets: u64,
    /// Elapsed wall-clock for the timed window, nanoseconds.
    pub elapsed_ns: u64,
    /// Sustained packets/s over the wall clock.
    pub wall_pps: f64,
    /// Commutative decision digest of the timed window.
    pub digest: u64,
}

/// A full wall sweep.
#[derive(Clone, Debug)]
pub struct WallSweep {
    /// Flows in the trace.
    pub flows: u32,
    /// Steady-state passes over the trace per timed window.
    pub passes: u32,
    /// Packets per streamed batch.
    pub batch: usize,
    /// CPUs the OS reports available to this process.
    pub host_cores: usize,
    /// Whether worker pinning was requested (it is, always) and the
    /// pinning probe succeeded on this host.
    pub pinned: bool,
    /// Peak resident set of the process (`None` off-Linux).
    pub peak_rss_bytes: Option<u64>,
    /// Whether every pipe count produced the identical decision digest.
    pub digests_match: bool,
    /// One point per swept pipe count.
    pub points: Vec<WallPoint>,
}

impl WallSweep {
    /// Measured wall-clock speedup of `pipes` over the 1-pipe point.
    pub fn wall_speedup(&self, pipes: usize) -> Option<f64> {
        let base = self.points.iter().find(|p| p.pipes == 1)?;
        let p = self.points.iter().find(|p| p.pipes == pipes)?;
        Some(p.wall_pps / base.wall_pps)
    }

    /// Render as the `BENCH_wall.json` document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"bench\": \"wall\",\n");
        s.push_str(&format!("  \"flows\": {},\n", self.flows));
        s.push_str(&format!("  \"passes\": {},\n", self.passes));
        s.push_str(&format!("  \"batch\": {},\n", self.batch));
        s.push_str(&format!("  \"host_cores\": {},\n", self.host_cores));
        s.push_str(&format!("  \"pinned\": {},\n", self.pinned));
        s.push_str(&format!(
            "  \"peak_rss_bytes\": {},\n",
            crate::rss::rss_json(self.peak_rss_bytes)
        ));
        s.push_str(&format!("  \"digests_match\": {},\n", self.digests_match));
        s.push_str(
            "  \"note\": \"measured wall-clock rate of the run-to-completion engine: resident \
             per-pipe workers fed by SPSC rings, decisions folded into a commutative digest; \
             the >=2.5x 4-pipe target applies on hosts with >=4 cores\",\n",
        );
        s.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"pipes\": {}, \"packets\": {}, \"elapsed_ns\": {}, \
                 \"wall_pps\": {:.0}, \"wall_speedup\": {:.3}, \"digest\": \"{:016x}\"}}{}\n",
                p.pipes,
                p.packets,
                p.elapsed_ns,
                p.wall_pps,
                self.wall_speedup(p.pipes).unwrap_or(1.0),
                p.digest,
                if i + 1 == self.points.len() { "" } else { "," }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

fn vip() -> Vip {
    Vip(Addr::v4(20, 0, 0, 1, 80))
}

fn trace_cfg(flows: u32) -> SilkRoadConfig {
    SilkRoadConfig {
        conn_capacity: (flows as usize) * 2,
        // Wide digests, big transit bloom: keep the decision stream free
        // of collision noise so the digest-identity gate is sharp (same
        // geometry as the saturation sweep).
        digest_bits: 24,
        transit_bytes: 4_096,
        ..Default::default()
    }
}

/// Build a threaded engine with `flows` established v4 connections and
/// return the steady-state data trace. SYNs are paced in
/// sub-filter-capacity waves (see `saturation::established` for why).
fn established(flows: u32, pipes: usize) -> (MultiPipeSwitch, Vec<PacketMeta>) {
    let mut sw = MultiPipeSwitch::with_options(
        trace_cfg(flows),
        pipes,
        EngineOptions {
            threaded: true,
            pin_cores: true,
            ..EngineOptions::default()
        },
    );
    sw.add_vip(
        vip(),
        (1..=16).map(|i| Dip(Addr::v4(10, 0, 0, i, 20))).collect(),
    )
    .unwrap();
    let syns: Vec<PacketMeta> = (0..flows)
        .map(|i| {
            PacketMeta::syn(FiveTuple::tcp(
                Addr::v4_indexed(100, i, 1024 + (i % 251) as u16),
                vip().0,
            ))
        })
        .collect();
    let mut now = Nanos::ZERO;
    for wave in syns.chunks(1_024) {
        sw.process_batch(wave, now);
        now = now.saturating_add(sr_types::Duration::from_millis(10));
        sw.advance(now);
    }
    sw.advance(Nanos::from_secs(10));
    let data: Vec<PacketMeta> = syns
        .iter()
        .map(|p| PacketMeta::data(p.tuple, 800))
        .collect();
    (sw, data)
}

/// Measure one pipe count: stream `passes` full-trace passes through the
/// resident workers and time the whole window, drain included.
/// Wall-clock reads are banned in model crates (clippy.toml) but are the
/// entire point of this harness.
#[allow(clippy::disallowed_methods)]
fn measure(flows: u32, passes: u32, batch: usize, pipes: usize) -> WallPoint {
    use std::time::Instant;
    let (mut sw, data) = established(flows, pipes);
    let now = Nanos::from_secs(20);

    // Warm pass: batch buffers reach steady-state capacity, rings and
    // caches settle; its fold is discarded by the drain.
    for chunk in data.chunks(batch) {
        sw.stream_batch(chunk, now);
    }
    sw.stream_drain();

    let t0 = Instant::now();
    for _ in 0..passes {
        for chunk in data.chunks(batch) {
            sw.stream_batch(chunk, now);
        }
    }
    let stats = sw.stream_drain();
    let elapsed_ns = t0.elapsed().as_nanos() as u64;

    WallPoint {
        pipes,
        packets: stats.packets,
        elapsed_ns,
        wall_pps: stats.packets as f64 / (elapsed_ns.max(1) as f64 / 1e9),
        digest: stats.digest,
    }
}

/// Probe whether thread pinning works on this host (best-effort, from a
/// scratch thread so the caller's affinity is untouched).
fn pin_probe() -> bool {
    std::thread::spawn(|| sr_exec::pin_current_thread(0))
        .join()
        .unwrap_or(false)
}

/// Run the wall sweep over each pipe count.
pub fn sweep(flows: u32, passes: u32, batch: usize, pipe_counts: &[usize]) -> WallSweep {
    let mut points = Vec::with_capacity(pipe_counts.len());
    for &pipes in pipe_counts {
        points.push(measure(flows, passes, batch, pipes));
    }
    let digests_match = points
        .windows(2)
        .all(|w| w[0].digest == w[1].digest && w[0].packets == w[1].packets);
    WallSweep {
        flows,
        passes,
        batch,
        host_cores: sr_exec::available_cores(),
        pinned: pin_probe(),
        peak_rss_bytes: crate::rss::peak_rss_bytes(),
        digests_match,
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_sustains_traffic_and_digests_agree() {
        let s = sweep(2_048, 2, 256, &[1, 2]);
        assert_eq!(s.points.len(), 2);
        assert!(
            s.digests_match,
            "pipe counts produced different decision digests at full speed"
        );
        for p in &s.points {
            assert_eq!(p.packets, 2 * 2_048, "streamed window lost packets");
            assert!(p.wall_pps > 0.0);
        }
        assert!(s.host_cores >= 1);
        let json = s.to_json();
        assert!(json.contains("\"bench\": \"wall\""));
        assert!(json.contains("\"host_cores\""));
        assert!(json.contains("\"peak_rss_bytes\""));
        assert!(json.contains("\"wall_speedup\""));
        assert!(json.contains("\"digests_match\": true"));
    }
}
