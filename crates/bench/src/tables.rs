//! Tables 1 and 2.

use crate::report::Table;
use sr_asic::resources::{SilkRoadGeometry, ASIC_GENERATIONS};
use sr_asic::{ResourceModel, ResourcePercent};

/// Render Table 1 (ASIC SRAM/capacity trend).
pub fn table1() -> Table {
    let mut t = Table::new(
        "Table 1 — trend of SRAM size and switching capacity in ASICs",
        &["ASIC generation", "Year", "Tbps", "SRAM (MB)"],
    );
    for g in ASIC_GENERATIONS {
        t.row(vec![
            g.label.to_string(),
            g.year.to_string(),
            format!("{:.1}", g.capacity_tbps),
            format!("{}-{}", g.sram_mb_low, g.sram_mb_high),
        ]);
    }
    t
}

/// Compute Table 2 percentages for `conn_entries` connections.
pub fn table2(conn_entries: u64) -> ResourcePercent {
    let mut geom = SilkRoadGeometry::table2_config();
    geom.conn_entries = conn_entries;
    ResourceModel::default().table2(&geom)
}

/// Render Table 2 next to the paper's published values.
pub fn table2_table(conn_entries: u64) -> Table {
    let p = table2(conn_entries);
    let mut t = Table::new(
        format!("Table 2 — additional H/W resources, {conn_entries} connection entries (% of baseline switch.p4)"),
        &["Resource", "Model", "Paper"],
    );
    let rows: [(&str, f64, &str); 7] = [
        ("Match Crossbar", p.crossbar, "37.53%"),
        ("SRAM", p.sram, "27.92%"),
        ("TCAM", p.tcam, "0%"),
        ("VLIW Actions", p.vliw, "18.89%"),
        ("Hash Bits", p.hash_bits, "34.17%"),
        ("Stateful ALUs", p.stateful_alus, "44.44%"),
        ("Packet Header Vector", p.phv, "0.98%"),
    ];
    for (name, v, paper) in rows {
        t.row(vec![
            name.to_string(),
            format!("{v:.2}%"),
            paper.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_renders_three_generations() {
        let s = table1().render();
        assert!(s.contains("2012") && s.contains("2016"));
        assert!(s.contains("50-100"));
    }

    #[test]
    fn table2_one_million_under_fifty_percent() {
        let p = table2(1_000_000);
        for v in [
            p.crossbar,
            p.sram,
            p.tcam,
            p.vliw,
            p.hash_bits,
            p.stateful_alus,
            p.phv,
        ] {
            assert!(v < 60.0, "resource exceeds the paper's <50% headline: {v}");
        }
        assert!(table2_table(1_000_000).render().contains("Stateful ALUs"));
    }

    #[test]
    fn table2_scales_only_sram_with_connections() {
        let one = table2(1_000_000);
        let ten = table2(10_000_000);
        assert!(ten.sram > one.sram * 5.0);
        assert_eq!(ten.stateful_alus, one.stateful_alus);
        assert_eq!(ten.vliw, one.vliw);
    }
}
