//! Peak resident-set sampling for the `BENCH_*.json` writers.
//!
//! Every committed benchmark document stamps the host it ran on
//! (`host_cores`) and the process's peak resident set
//! (`peak_rss_bytes`), so a reader comparing two JSON files can tell a
//! small-host run from a paper-scale one without trusting the filename.
//!
//! The measurement is Linux's `VmHWM` ("high-water mark") from
//! `/proc/self/status` — the kernel's own peak-RSS counter, covering the
//! whole process since start. There is no portable equivalent, so on
//! other platforms the value is `None` and the JSON records `null`
//! rather than a fabricated number.

/// The process's peak resident set in bytes (`VmHWM`), or `None` where
/// `/proc/self/status` does not exist or cannot be parsed.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// Render an optional byte count as a JSON value (`null` when absent).
pub fn rss_json(v: Option<u64>) -> String {
    match v {
        Some(b) => b.to_string(),
        None => "null".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn linux_reports_a_positive_peak() {
        // Touch a few megabytes so the high-water mark is unambiguous.
        let buf = vec![1u8; 4 << 20];
        assert!(buf.iter().map(|&b| b as u64).sum::<u64>() > 0);
        let rss = peak_rss_bytes().expect("VmHWM exists on Linux");
        assert!(rss > 4 << 20, "peak rss {rss} implausibly small");
    }

    #[test]
    fn json_renders_null_and_numbers() {
        assert_eq!(rss_json(None), "null");
        assert_eq!(rss_json(Some(1024)), "1024");
    }
}
