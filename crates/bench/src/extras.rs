//! The remaining §5/§6 experiments: meter accuracy, digest-size
//! false-positive tradeoffs, and the cost/power comparison.

use crate::exec::Exec;
use silkroad::{SilkRoadConfig, SilkRoadSwitch};
use sr_asic::{Meter, MeterConfig};
use sr_baselines::CostModel;
use sr_types::{Duration, Nanos, PacketMeta};
use sr_workload::{TraceConfig, TraceEvent, TraceIter};

/// One meter-accuracy measurement (§5.2).
#[derive(Clone, Copy, Debug)]
pub struct MeterPoint {
    /// Committed rate threshold, Gbit/s.
    pub cir_gbps: f64,
    /// Excess rate threshold, Gbit/s.
    pub eir_gbps: f64,
    /// Offered load, Gbit/s.
    pub offered_gbps: f64,
    /// Absolute error of the green fraction vs ideal.
    pub green_err: f64,
    /// Absolute error of the yellow fraction vs ideal.
    pub yellow_err: f64,
    /// Absolute error of the red fraction vs ideal.
    pub red_err: f64,
}

impl MeterPoint {
    /// Mean absolute marking error.
    pub fn avg_error(&self) -> f64 {
        (self.green_err + self.yellow_err + self.red_err) / 3.0
    }
}

/// §5.2: offer 10 Gbps to a VIP meter across threshold settings and
/// measure marking accuracy (paper: <1 % average error).
pub fn meter_accuracy(exec: &Exec) -> Vec<MeterPoint> {
    let offered = 10.0;
    let settings = vec![(2.0, 2.0), (4.0, 4.0), (6.0, 2.0), (8.0, 4.0), (3.0, 6.0)];
    exec.run(settings, |(cir, eir)| {
        let mut m = Meter::new(MeterConfig::gbps(cir, eir, 1.0));
        let (g, y, r) = m.measure_cbr(
            Nanos::ZERO,
            (offered * 1e9 / 8.0) as u64,
            1500,
            Duration::from_millis(200),
        );
        let total = (g + y + r) as f64;
        let ideal_g = (cir / offered).min(1.0);
        let ideal_y = ((eir) / offered).min(1.0 - ideal_g);
        let ideal_r = 1.0 - ideal_g - ideal_y;
        MeterPoint {
            cir_gbps: cir,
            eir_gbps: eir,
            offered_gbps: offered,
            green_err: (g as f64 / total - ideal_g).abs(),
            yellow_err: (y as f64 / total - ideal_y).abs(),
            red_err: (r as f64 / total - ideal_r).abs(),
        }
    })
}

/// One digest-size measurement (§6.1).
#[derive(Clone, Copy, Debug)]
pub struct DigestPoint {
    /// Digest width in bits.
    pub digest_bits: u8,
    /// Connections offered.
    pub conns: u64,
    /// Digest false hits observed.
    pub false_hits: u64,
    /// SYN repairs performed.
    pub syn_repairs: u64,
    /// ConnTable SRAM provisioned, bytes.
    pub conn_table_bytes: u64,
}

impl DigestPoint {
    /// False hits as a fraction of connections.
    pub fn false_hit_fraction(&self) -> f64 {
        if self.conns == 0 {
            0.0
        } else {
            self.false_hits as f64 / self.conns as f64
        }
    }
}

/// §6.1: drive the same connection load through 16-bit and 24-bit digest
/// ConnTables and count false positives (paper: 0.01 % vs 0.00004 % per
/// minute at 2.77 M new connections/min).
pub fn digest_tradeoff(exec: &Exec, conns_target: u64, seed: u64) -> Vec<DigestPoint> {
    exec.run(vec![16u8, 24], |bits| {
        let cfg = SilkRoadConfig {
            digest_bits: bits,
            conn_capacity: (conns_target as usize * 2).max(4096),
            seed,
            ..Default::default()
        };
        let mut sw = SilkRoadSwitch::new(cfg);

        let mut trace_cfg = TraceConfig::pop_reference();
        trace_cfg.updates_per_min = 0.0;
        trace_cfg.new_conns_per_min = conns_target as f64; // one minute
        trace_cfg.duration = Duration::from_mins(1);
        trace_cfg.median_flow_secs = 120.0; // stay alive: maximise residency
        trace_cfg.seed = seed;

        for v in 0..trace_cfg.vips {
            let vip = sr_workload::trace::vip_addr(trace_cfg.family, v);
            let dips = (0..trace_cfg.dips_per_vip)
                .map(|d| sr_workload::trace::dip_addr(trace_cfg.family, v, d))
                .collect();
            sw.add_vip(vip, dips).unwrap();
        }
        let mut conns = 0u64;
        for ev in TraceIter::new(trace_cfg) {
            if let TraceEvent::ConnOpen(c) = ev {
                conns += 1;
                sw.process_packet(&PacketMeta::syn(c.tuple), c.opened);
                // Second packet after installation: exercises lookups
                // against a full table.
                sw.process_packet(
                    &PacketMeta::data(c.tuple, c.pkt_len),
                    c.opened + Duration::from_millis(20),
                );
            }
        }
        sw.advance(Nanos::from_mins(2));
        DigestPoint {
            digest_bits: bits,
            conns,
            false_hits: sw.stats().digest_false_hits,
            syn_repairs: sw.stats().syn_repairs,
            conn_table_bytes: sw.memory().conn_table,
        }
    })
}

/// One latency measurement (§2.2/§2.3: SLBs add 50 µs – 1 ms; Duet keeps
/// most packets in hardware; SilkRoad everything).
#[derive(Clone, Debug)]
pub struct LatencyPoint {
    /// System label.
    pub system: String,
    /// Median processing latency.
    pub p50: Duration,
    /// 99th percentile.
    pub p99: Duration,
}

/// Compare per-packet load-balancer latency across systems under the same
/// updating workload.
pub fn latency_comparison(exec: &Exec, scale: crate::Scale) -> Vec<LatencyPoint> {
    use sr_baselines::MigrationPolicy;
    use sr_sim::{run_scenario, Scenario, SystemKind};
    let mut trace = sr_workload::TraceConfig::pop_scaled(scale.rate_factor, scale.minutes);
    trace.updates_per_min = 10.0;
    trace.seed = scale.seed;
    let systems = vec![
        SystemKind::silkroad_default(),
        SystemKind::Duet(MigrationPolicy::Periodic(Duration::from_mins(10))),
        SystemKind::Slb,
    ];
    exec.run(systems, |sys| {
        let m = run_scenario(Scenario::new(trace, sys));
        LatencyPoint {
            system: sys.label(),
            p50: m.latency.percentile(50.0),
            p99: m.latency.percentile(99.0),
        }
    })
}

/// The §6.1 cost comparison.
#[derive(Clone, Copy, Debug)]
pub struct CostPoint {
    /// Power saving factor (paper ≈ 500×).
    pub power_factor: f64,
    /// Capital-cost saving factor (paper ≈ 250×).
    pub capex_factor: f64,
}

/// Compute the cost comparison.
pub fn cost_comparison() -> CostPoint {
    let m = CostModel::default();
    CostPoint {
        power_factor: m.power_saving_factor(),
        capex_factor: m.capex_saving_factor(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_error_below_one_percent() {
        for p in meter_accuracy(&Exec::available()) {
            assert!(
                p.avg_error() < 0.01,
                "avg marking error {} at CIR {} EIR {}",
                p.avg_error(),
                p.cir_gbps,
                p.eir_gbps
            );
        }
    }

    #[test]
    fn digest_16_vs_24() {
        let points = digest_tradeoff(&Exec::available(), 30_000, 3);
        let p16 = points.iter().find(|p| p.digest_bits == 16).unwrap();
        let p24 = points.iter().find(|p| p.digest_bits == 24).unwrap();
        // More digest bits: fewer false hits, more memory.
        assert!(
            p24.false_hits <= p16.false_hits,
            "24-bit {} vs 16-bit {}",
            p24.false_hits,
            p16.false_hits
        );
        assert!(p24.conn_table_bytes > p16.conn_table_bytes);
        // The false-hit rate at 16 bits stays tiny (paper: 0.01%). Allow an
        // order of magnitude of slack at this reduced population.
        assert!(
            p16.false_hit_fraction() < 0.002,
            "{}",
            p16.false_hit_fraction()
        );
    }

    #[test]
    fn latency_ordering_matches_paper() {
        let points = latency_comparison(&Exec::available(), crate::Scale::test());
        let get = |label: &str| {
            points
                .iter()
                .find(|p| p.system.contains(label))
                .unwrap()
                .clone()
        };
        let silkroad = get("SilkRoad");
        let slb = get("SLB");
        let duet = get("Duet");
        // SilkRoad: sub-microsecond. SLB: 50µs-1ms. Duet in between at p50
        // (most packets in hardware) but SLB-like at p99 during redirects.
        assert!(silkroad.p50 < Duration::from_micros(2), "{silkroad:?}");
        assert!(silkroad.p99 < Duration::from_micros(10), "{silkroad:?}");
        assert!(slb.p50 >= Duration::from_micros(50), "{slb:?}");
        assert!(duet.p50 < slb.p50, "{duet:?} vs {slb:?}");
    }

    #[test]
    fn cost_factors_match_paper() {
        let c = cost_comparison();
        assert!(
            (450.0..650.0).contains(&c.power_factor),
            "{}",
            c.power_factor
        );
        assert!(
            (200.0..300.0).contains(&c.capex_factor),
            "{}",
            c.capex_factor
        );
    }
}
