//! Figures 12, 13 and 14 — memory and deployment-size figures.
//!
//! All three are analytic over the synthetic fleet: per-cluster connection
//! counts feed the `silkroad::memory` model (Fig 12, 14) and the
//! `sr_baselines::cost` model (Fig 13).

use crate::exec::Exec;
use silkroad::memory::{cost, saving_vs_naive, MemoryDesign, MemoryInputs};
use sr_baselines::CostModel;
use sr_workload::dists::percentile;
use sr_workload::{ClusterKind, ClusterSpec};

/// Per-kind summary of a per-cluster metric.
#[derive(Clone, Copy, Debug)]
pub struct KindSummary {
    /// Cluster kind.
    pub kind: ClusterKind,
    /// Median across clusters of this kind.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// Maximum ("peak cluster").
    pub max: f64,
}

fn summarize(
    exec: &Exec,
    fleet: &[ClusterSpec],
    f: impl Fn(&ClusterSpec) -> f64 + Sync,
) -> Vec<KindSummary> {
    [
        ClusterKind::PoP,
        ClusterKind::Frontend,
        ClusterKind::Backend,
    ]
    .iter()
    .map(|&kind| {
        let clusters: Vec<&ClusterSpec> = fleet.iter().filter(|c| c.kind == kind).collect();
        let mut xs: Vec<f64> = exec.run(clusters, &f);
        xs.sort_by(f64::total_cmp);
        KindSummary {
            kind,
            p50: percentile(&xs, 50.0),
            p90: percentile(&xs, 90.0),
            max: *xs.last().unwrap_or(&0.0),
        }
    })
    .collect()
}

/// The memory-model inputs for one cluster's worst-loaded ToR.
pub fn cluster_memory_inputs(c: &ClusterSpec) -> MemoryInputs {
    MemoryInputs {
        connections: c.conns_per_tor_p99,
        vips: c.vips as u64,
        // Every live version re-lists the pool members it holds.
        total_pool_members: c.total_dips() * c.live_versions_per_vip as u64,
        pool_rows: c.vips as u64 * c.live_versions_per_vip as u64,
        family: c.family,
    }
}

/// Fig 12: SilkRoad SRAM usage per ToR switch (MB) across clusters.
pub fn fig12(exec: &Exec, fleet: &[ClusterSpec]) -> Vec<KindSummary> {
    summarize(exec, fleet, |c| {
        cost(
            MemoryDesign::DigestVersion {
                digest_bits: 16,
                version_bits: 6,
            },
            &cluster_memory_inputs(c),
        )
        .total_mb()
    })
}

/// Fig 13: SLBs replaced by one SilkRoad. Sized per ToR switch — the
/// deployment unit on both sides is "the load one switch position sees".
pub fn fig13(exec: &Exec, fleet: &[ClusterSpec]) -> Vec<KindSummary> {
    let model = CostModel::default();
    summarize(exec, fleet, |c| {
        model
            .size(c.peak_pps, c.peak_gbps * 1e9, c.conns_per_tor_p99 as f64)
            .replacement_ratio()
    })
}

/// Fig 14 designs compared.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fig14Design {
    /// 16-bit digest, full DIP action.
    DigestOnly,
    /// 16-bit digest + 6-bit version.
    DigestVersion,
}

/// Fig 14: memory saving vs the naive layout, per cluster kind.
pub fn fig14(exec: &Exec, fleet: &[ClusterSpec], design: Fig14Design) -> Vec<KindSummary> {
    let d = match design {
        Fig14Design::DigestOnly => MemoryDesign::DigestOnly { digest_bits: 16 },
        Fig14Design::DigestVersion => MemoryDesign::DigestVersion {
            digest_bits: 16,
            version_bits: 6,
        },
    };
    summarize(exec, fleet, |c| {
        saving_vs_naive(d, &cluster_memory_inputs(c))
    })
}

/// How many clusters fit within a given per-switch SRAM budget (Fig 12's
/// "can fit into switch SRAM for all the clusters we studied").
pub fn clusters_fitting(fleet: &[ClusterSpec], budget_mb: f64) -> usize {
    fleet
        .iter()
        .filter(|c| {
            cost(
                MemoryDesign::DigestVersion {
                    digest_bits: 16,
                    version_bits: 6,
                },
                &cluster_memory_inputs(c),
            )
            .total_mb()
                <= budget_mb
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig_meta::default_fleet;

    #[test]
    fn fig12_matches_paper_anchors() {
        let fleet = default_fleet();
        let rows = fig12(&Exec::available(), &fleet);
        let get = |k| *rows.iter().find(|r| r.kind == k).unwrap();
        // Paper: PoPs 14 MB median / 32 MB peak; Backends 15 MB / 58 MB;
        // Frontends < 2 MB.
        let pop = get(ClusterKind::PoP);
        assert!((5.0..25.0).contains(&pop.p50), "pop p50 {}", pop.p50);
        assert!((20.0..45.0).contains(&pop.max), "pop max {}", pop.max);
        let be = get(ClusterKind::Backend);
        assert!((5.0..30.0).contains(&be.p50), "backend p50 {}", be.p50);
        assert!((40.0..70.0).contains(&be.max), "backend max {}", be.max);
        let fe = get(ClusterKind::Frontend);
        assert!(fe.max < 4.0, "frontend max {}", fe.max);
    }

    #[test]
    fn fig12_all_clusters_fit_modern_sram() {
        // "SilkRoad can fit into ASIC SRAM with 50-100 MB".
        let fleet = default_fleet();
        assert_eq!(clusters_fitting(&fleet, 100.0), fleet.len());
        // But NOT into the 2012-generation 10-20 MB.
        assert!(clusters_fitting(&fleet, 15.0) < fleet.len());
    }

    #[test]
    fn fig13_matches_paper_anchors() {
        let rows = fig13(&Exec::available(), &default_fleet());
        let get = |k| *rows.iter().find(|r| r.kind == k).unwrap();
        // PoPs: one SilkRoad replaces 2-3 SLBs; Frontends ~11 median;
        // Backends 3 median, up to 277 peak.
        let pop = get(ClusterKind::PoP);
        assert!((1.0..8.0).contains(&pop.p50), "pop {}", pop.p50);
        let fe = get(ClusterKind::Frontend);
        assert!((5.0..30.0).contains(&fe.p50), "frontend {}", fe.p50);
        let be = get(ClusterKind::Backend);
        assert!((1.0..15.0).contains(&be.p50), "backend p50 {}", be.p50);
        assert!((100.0..600.0).contains(&be.max), "backend max {}", be.max);
    }

    #[test]
    fn fig14_matches_paper_anchors() {
        let fleet = default_fleet();
        let digest = fig14(&Exec::available(), &fleet, Fig14Design::DigestOnly);
        let version = fig14(&Exec::available(), &fleet, Fig14Design::DigestVersion);
        for (d, v) in digest.iter().zip(&version) {
            // Version design always saves at least as much as digest-only.
            assert!(v.p50 >= d.p50, "{:?}", d.kind);
        }
        // "All the clusters have more than 40% of memory reduction" with
        // the full design; Backends reach 95%.
        let be = version
            .iter()
            .find(|r| r.kind == ClusterKind::Backend)
            .unwrap();
        assert!(be.max > 0.9, "backend max saving {}", be.max);
        for v in &version {
            assert!(v.p50 > 0.4, "{:?} saves only {}", v.kind, v.p50);
        }
    }
}
