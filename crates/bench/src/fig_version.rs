//! Figure 15 — the benefit of version reuse.
//!
//! "For each ten-minute time window, we count the number of DIP pool
//! versions before and after version reuse mechanism... a VIP can have up
//! to 330 DIP pool updates in ten minutes and thus need 330 versions and 9
//! version bits. With version reuse, we only need to use 6 version bits to
//! handle up to 51 DIP pool versions."
//!
//! We replay generated update plans for a single hot Backend VIP through a
//! [`VersionManager`] with and without reuse. Connections are modelled by
//! pinning every version for the window (the paper's windows are chosen
//! "to cover the lifetime for most of the connections", i.e. versions stay
//! referenced within a window).

use crate::exec::Exec;
use silkroad::pool::{DipPool, PoolUpdate};
use silkroad::version::VersionManager;
use sr_types::{Addr, Dip, Duration, Vip};
use sr_workload::updates::DipOp;
use sr_workload::{UpdatePlanConfig, UpdatePlanner};

/// One window's measurement.
#[derive(Clone, Copy, Debug)]
pub struct Fig15Point {
    /// Pool-changing updates in the 10-minute window.
    pub updates: u64,
    /// Versions needed without reuse (one per pool change, plus the
    /// initial).
    pub versions_naive: u64,
    /// Versions needed with reuse (allocations only).
    pub versions_with_reuse: u64,
}

/// Sweep update rates and measure versions needed per 10-minute window.
/// `version_bits` is made wide (12) so the count is not clipped by ring
/// exhaustion — the figure is about how many versions *would* be needed.
pub fn fig15(exec: &Exec, rates_per_min: &[f64], dips: u32, seed: u64) -> Vec<Fig15Point> {
    let vip = Vip(Addr::v4(20, 0, 0, 1, 80));
    let window = Duration::from_mins(10);
    let mut out = exec.run(rates_per_min.to_vec(), |rate| {
        let events = UpdatePlanner::new(UpdatePlanConfig::dedicated(
            1,
            dips,
            rate,
            window,
            seed ^ (rate as u64),
        ))
        .generate();

        let pool: Vec<Dip> = (0..dips)
            .map(|i| Dip(Addr::v4(10, 0, 0, i as u8, 20)))
            .collect();
        let mut with_reuse = VersionManager::new(vip, DipPool::new(pool.clone()), 12, true);
        let mut naive = VersionManager::new(vip, DipPool::new(pool), 12, false);

        let drive = |m: &mut VersionManager| {
            for e in &events {
                let dip = Dip(Addr::v4(10, 0, 0, e.dip.0 as u8, 20));
                let op = match e.op {
                    DipOp::Add => PoolUpdate::Add(dip),
                    DipOp::Remove => PoolUpdate::Remove(dip),
                };
                if let Ok(Some(p)) = m.prepare(op) {
                    // Window-long connections: every version stays pinned.
                    m.retain(p.new_version);
                    m.commit(p.new_version);
                }
            }
        };
        drive(&mut with_reuse);
        drive(&mut naive);

        Fig15Point {
            // The two managers can disagree slightly on which events are
            // no-ops (reuse substitutes membership); report the naive
            // manager's count — it matches "updates applied" exactly.
            updates: naive.pool_changes,
            versions_naive: naive.allocations,
            versions_with_reuse: with_reuse.allocations,
        }
    });
    out.sort_by_key(|p| p.updates);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_reduces_versions() {
        let points = fig15(&Exec::available(), &[5.0, 33.0], 16, 7);
        for p in &points {
            assert!(
                p.versions_with_reuse <= p.versions_naive,
                "reuse made it worse: {p:?}"
            );
        }
        // At the paper's hot end (~330 updates per window) the reduction is
        // large: 330 naive vs ≤64 with reuse is the paper's anchor; demand
        // at least a 2x reduction at the high-rate point.
        let hot = points.last().unwrap();
        assert!(hot.updates > 100, "hot window too quiet: {hot:?}");
        assert!(
            (hot.versions_with_reuse as f64) < hot.versions_naive as f64 / 2.0,
            "{hot:?}"
        );
    }

    #[test]
    fn six_bits_suffice_with_reuse_at_paper_rates() {
        // The paper: up to 51 versions with reuse -> 6 bits.
        let points = fig15(&Exec::sequential(), &[33.0], 16, 7);
        let hot = &points[0];
        assert!(hot.versions_with_reuse <= 64, "{hot:?}");
    }

    #[test]
    fn naive_tracks_update_count() {
        let points = fig15(&Exec::sequential(), &[10.0], 16, 3);
        let p = &points[0];
        // One allocation per pool change plus the initial version.
        assert_eq!(p.versions_naive, p.updates + 1, "{p:?}");
    }
}
