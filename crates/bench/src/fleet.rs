//! `repro fleet` — fleet-scale steady-state bench (`BENCH_fleet.json`).
//!
//! Drives `sr-sim`'s fleet engine over the paper's ~100-cluster fleet:
//! prewarm a live population to the target occupancy, stream arrivals and
//! DIP-pool churn (with a mid-run update storm) for the simulated
//! duration, and verify per-connection consistency on every close. The
//! committed full profile holds 2.6 M live connections across 100
//! clusters; the smoke profile is the same machinery CI-sized.
//!
//! The report folds in the measured-occupancy SRAM fit
//! ([`sr_netwide::sram_fit`]): the engine's per-cluster peak occupancy is
//! scaled back to paper load and pushed through the `silkroad::memory`
//! model against the 100 MB per-switch budget — the deployment claim of
//! Fig 12, re-derived from held state instead of the synthesis formula.
//!
//! Gate logic lives in the `repro` binary; this module only measures.

use crate::rss::{peak_rss_bytes, rss_json};
use sr_netwide::{sram_fit, SramFitReport};
use sr_sim::{run_fleet, FleetParams, FleetReport};
use sr_workload::{synthesize_fleet, FleetConfig};

/// Per-switch SRAM budget the fit check uses (Fig 12's "modern ASIC").
pub const SRAM_BUDGET_MB: f64 = 100.0;

/// The fleet the bench simulates: 100 clusters (the default synthesis
/// mix is 96; the acceptance gate wants a round "about a hundred").
fn bench_fleet() -> FleetConfig {
    FleetConfig {
        pops: 30,
        frontends: 24,
        backends: 46,
        seed: 0xf1ee7,
    }
}

/// Engine parameters for the full or smoke profile.
pub fn fleet_params(smoke: bool) -> FleetParams {
    if smoke {
        FleetParams {
            fleet: bench_fleet(),
            seed: 0x0051_1c0a,
            target_conns: 150_000,
            sim_secs: 10,
            epoch_ms: 250,
            storm_factor: 10.0,
            workers: sr_exec::available_cores(),
        }
    } else {
        FleetParams {
            fleet: bench_fleet(),
            seed: 0x0051_1c0a,
            target_conns: 2_600_000,
            sim_secs: 60,
            epoch_ms: 100,
            storm_factor: 10.0,
            workers: sr_exec::available_cores(),
        }
    }
}

/// One fleet-bench run: the engine report plus host metadata and the
/// measured-occupancy SRAM fit.
#[derive(Clone, Debug)]
pub struct FleetBench {
    /// Whether this was the CI-sized smoke profile.
    pub smoke: bool,
    /// Parameters the engine ran with.
    pub params: FleetParams,
    /// What the engine measured.
    pub report: FleetReport,
    /// Measured-occupancy SRAM fit at [`SRAM_BUDGET_MB`].
    pub fit: SramFitReport,
    /// Cores on the host that ran the bench.
    pub host_cores: usize,
    /// Peak resident set of the process (`null` off-Linux).
    pub peak_rss_bytes: Option<u64>,
    /// Wall-clock of the engine run, nanoseconds.
    pub elapsed_ns: u64,
}

/// Run the bench with explicit parameters (tests use tiny fleets).
#[allow(clippy::disallowed_methods)] // wall-clock is bench metadata
pub fn run_with(params: FleetParams, smoke: bool) -> FleetBench {
    let t0 = std::time::Instant::now();
    let report = run_fleet(&params);
    let elapsed_ns = t0.elapsed().as_nanos() as u64;
    let specs = synthesize_fleet(params.fleet);
    let fit = sram_fit(&specs, &report.per_cluster_peak, SRAM_BUDGET_MB);
    FleetBench {
        smoke,
        params,
        report,
        fit,
        host_cores: sr_exec::available_cores(),
        peak_rss_bytes: peak_rss_bytes(),
        elapsed_ns,
    }
}

/// Run the committed full or smoke profile.
pub fn run(smoke: bool) -> FleetBench {
    run_with(fleet_params(smoke), smoke)
}

impl FleetBench {
    /// Render as the committed `BENCH_fleet.json` document.
    pub fn to_json(&self) -> String {
        let r = &self.report;
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"bench\": \"fleet\",\n");
        s.push_str(&format!("  \"smoke\": {},\n", self.smoke));
        s.push_str(&format!("  \"host_cores\": {},\n", self.host_cores));
        s.push_str(&format!(
            "  \"peak_rss_bytes\": {},\n",
            rss_json(self.peak_rss_bytes)
        ));
        s.push_str(&format!(
            "  \"target_conns\": {},\n",
            self.params.target_conns
        ));
        s.push_str(&format!("  \"sim_secs\": {},\n", self.params.sim_secs));
        s.push_str(&format!("  \"epoch_ms\": {},\n", self.params.epoch_ms));
        s.push_str(&format!(
            "  \"storm_factor\": {},\n",
            self.params.storm_factor
        ));
        s.push_str(&format!("  \"clusters\": {},\n", r.clusters));
        s.push_str(&format!("  \"workers\": {},\n", r.workers));
        s.push_str(&format!("  \"epochs\": {},\n", r.epochs));
        s.push_str(&format!("  \"held_median\": {},\n", r.held_median));
        s.push_str(&format!("  \"held_peak\": {},\n", r.held_peak));
        s.push_str(&format!("  \"held_final\": {},\n", r.held_final));
        s.push_str(&format!("  \"opens\": {},\n", r.opens));
        s.push_str(&format!("  \"closes\": {},\n", r.closes));
        s.push_str(&format!("  \"opens_per_sec\": {:.0},\n", r.opens_per_sec));
        s.push_str(&format!("  \"pcc_violations\": {},\n", r.pcc_violations));
        s.push_str(&format!("  \"updates_applied\": {},\n", r.updates_applied));
        s.push_str(&format!("  \"updates_skipped\": {},\n", r.updates_skipped));
        s.push_str(&format!("  \"state_bytes\": {},\n", r.state_bytes));
        s.push_str(&format!("  \"bytes_per_conn\": {:.2},\n", r.bytes_per_conn));
        s.push_str(&format!("  \"control_bytes\": {},\n", r.control_bytes));
        s.push_str(&format!("  \"digest\": \"{:016x}\",\n", r.digest));
        s.push_str(&format!("  \"elapsed_ns\": {},\n", self.elapsed_ns));
        s.push_str(
            "  \"note\": \"bytes_per_conn = (flow stores + timer wheels) / held_peak; \
             sram_fit scales measured per-cluster peaks to paper occupancy\",\n",
        );
        s.push_str(&format!(
            "  \"sram_fit\": {{\"budget_mb\": {:.0}, \"clusters\": {}, \"fitting\": {}, \
             \"median_mb\": {:.1}, \"max_mb\": {:.1}, \"scale\": {:.1}}}\n",
            self.fit.budget_mb,
            self.fit.clusters,
            self.fit.fitting,
            self.fit.median_mb,
            self.fit.max_mb,
            self.fit.scale
        ));
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_fleet_bench_reports_sane_json() {
        let params = FleetParams {
            fleet: FleetConfig {
                pops: 2,
                frontends: 1,
                backends: 2,
                seed: 0xf1ee7,
            },
            seed: 42,
            target_conns: 10_000,
            sim_secs: 4,
            epoch_ms: 250,
            storm_factor: 10.0,
            workers: 1,
        };
        let b = run_with(params, true);
        assert_eq!(b.report.pcc_violations, 0);
        assert_eq!(b.fit.clusters, 5);
        assert!(b.report.bytes_per_conn <= 64.0);
        let json = b.to_json();
        for key in [
            "\"bench\": \"fleet\"",
            "\"smoke\": true",
            "\"host_cores\"",
            "\"peak_rss_bytes\"",
            "\"pcc_violations\": 0",
            "\"sram_fit\"",
            "\"digest\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn committed_profiles_are_paper_shaped() {
        // The full profile must satisfy the acceptance gate's shape
        // (without running it here): 100 clusters, >= 2 M target.
        let full = fleet_params(false);
        let specs = synthesize_fleet(full.fleet);
        assert_eq!(specs.len(), 100);
        assert!(full.target_conns >= 2_000_000);
        let smoke = fleet_params(true);
        assert_eq!(synthesize_fleet(smoke.fleet).len(), 100);
        assert!(smoke.target_conns < full.target_conns);
        assert!(smoke.sim_secs < full.sim_secs);
    }
}
