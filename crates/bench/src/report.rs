//! Plain-text table rendering for the `repro` binary.

/// A printable table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Title line.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a fraction as a percentage with sensible precision.
pub fn pct(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x < 0.0001 {
        format!("{:.5}%", 100.0 * x)
    } else if x < 0.01 {
        format!("{:.3}%", 100.0 * x)
    } else {
        format!("{:.1}%", 100.0 * x)
    }
}

/// Format a byte count as MB.
pub fn mb(bytes: u64) -> String {
    format!("{:.1} MB", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-name"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.0), "0");
        assert_eq!(pct(0.5), "50.0%");
        assert_eq!(pct(0.001), "0.100%");
        assert_eq!(pct(0.00001), "0.00100%");
        assert_eq!(mb(14 << 20), "14.0 MB");
    }
}
