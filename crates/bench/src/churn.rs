//! `repro churn` — paced new-connection saturation sweep over the
//! batched setup pipeline (`BENCH_churn.json`).
//!
//! SilkRoad's headline claim is surviving Fig 8 churn rates — up to tens
//! of millions of *new* connections per VIP-minute — while the switch
//! CPU inserts ConnTable entries at only ~200 K/s. This harness drives
//! exactly that path: waves of brand-new flows (each SYN optionally
//! replicated by a `storm` factor, modelling retransmitted handshakes)
//! go through miss → learning filter → CPU queue → cuckoo install →
//! TransitTable promote, with data packets and closes riding along and
//! two DIP-pool updates landing mid-run so the PCC machinery is live.
//!
//! Two paired arms process the identical workload:
//!
//! - **baseline** — the pre-change pipeline: one `process_packet` call
//!   per packet, with `legacy_setup` routing installs through the
//!   re-hashing lookup+insert path.
//! - **batched** — `process_batch_into` with the fused setup stage:
//!   hash-once misses, bulk bloom precompute, in-chunk learn dedup, and
//!   hash-reusing (`*_pre`) installs.
//!
//! Timing and verification are separate passes over the same workload:
//! the timed arms only move packets (plus learn-queue depth and transit
//! occupancy samples at wave boundaries), while untimed verification
//! runs fold every decision into the engine's commutative digest and
//! check per-connection consistency (first DIP never changes). The
//! digest must be bit-identical batched-vs-per-packet and across
//! 1/2/4-pipe engines — the proof that the fast path changed *nothing*
//! observable. Gate logic lives in the `repro` binary; this module only
//! measures.
//!
//! `flood` is the adversarial variant: a deterministic storm of
//! never-completing SYNs (each 5-tuple seen exactly once, far beyond
//! the learning filter's capacity) hammers the setup path while a small
//! established background population keeps serving traffic. The filter
//! must shed the excess (`overflow_drops > 0`), idle expiry must bound
//! installed state, and the background flows must see zero PCC
//! violations.

use silkroad::{
    DataPath, FlowSteering, ForwardDecision, MultiPipeSwitch, PoolUpdate, SilkRoadConfig,
};
use sr_hash::{splitmix64, FxHashMap};
use sr_types::{Addr, Dip, Duration, FiveTuple, Nanos, PacketMeta, Vip};

/// Enforced full-run floor for [`ChurnBench::gate_speedup`]: a regression
/// tripwire, not the goal. Quiet 1-core runs measure 1.9–2.2×, but a
/// loaded host can shave ~25% off the batched arm, so the floor leaves
/// that much headroom while still tripping on any real regression back
/// toward parity.
pub const SPEEDUP_FLOOR: f64 = 1.3;

/// The aspirational batched-over-per-packet ratio the sweep reports
/// against. Measured runs land around ~2.2× on a quiet 1-core host: the
/// hash-once/inline-key plumbing that earlier milestones added to *both*
/// arms already amortized much of what batching buys, and the remaining
/// per-setup work (key hashing, cuckoo probes, learn-gate membership) is
/// shared — see EXPERIMENTS.md for the breakdown.
pub const SPEEDUP_TARGET: f64 = 3.0;

/// Workload shape for one churn sweep.
#[derive(Clone, Debug)]
pub struct ChurnParams {
    /// Untimed warmup waves before the clock starts (buffers, caches,
    /// and the install path all go hot — same reasoning as the
    /// saturation sweep's warmup pass).
    pub warmup_waves: u32,
    /// Timed waves of new connections.
    pub waves: u32,
    /// Brand-new flows per wave (kept under the learning filter's 2K
    /// capacity so no setup is shed in the non-flood sweep).
    pub flows_per_wave: u32,
    /// Batch size fed to `process_batch_into` in the batched arm.
    pub batch: usize,
    /// SYN replication factors to sweep (1 = clean handshakes, 10 =
    /// retransmission storm).
    pub storms: Vec<u32>,
    /// Pipe counts the digest-identity check runs across.
    pub pipe_counts: Vec<usize>,
}

/// The committed full or CI-sized smoke profile.
pub fn churn_params(smoke: bool) -> ChurnParams {
    if smoke {
        ChurnParams {
            warmup_waves: 1,
            waves: 6,
            flows_per_wave: 512,
            batch: 256,
            storms: vec![1, 10],
            pipe_counts: vec![1, 2, 4],
        }
    } else {
        ChurnParams {
            warmup_waves: 2,
            waves: 24,
            flows_per_wave: 1_024,
            batch: 256,
            storms: vec![1, 10],
            pipe_counts: vec![1, 2, 4],
        }
    }
}

/// One storm factor's paired measurement.
#[derive(Clone, Debug)]
pub struct ChurnPoint {
    /// SYN replication factor.
    pub storm: u32,
    /// New connections set up during the timed window.
    pub setups: u64,
    /// Packets processed per arm during the timed window.
    pub packets: u64,
    /// Timed window of the per-packet baseline arm, nanoseconds.
    pub baseline_ns: u64,
    /// Timed window of the batched arm, nanoseconds.
    pub batched_ns: u64,
    /// Setups/s through the baseline arm.
    pub baseline_setups_per_sec: f64,
    /// Setups/s through the batched arm.
    pub batched_setups_per_sec: f64,
    /// `batched_setups_per_sec / baseline_setups_per_sec`.
    pub speedup: f64,
    /// Learn-queue depth percentiles, sampled after each wave's burst.
    pub learn_depth_p50: usize,
    /// 90th percentile of the same samples.
    pub learn_depth_p90: usize,
    /// Maximum sampled learn-queue depth.
    pub learn_depth_max: usize,
    /// Peak TransitTable fill ratio observed at wave boundaries.
    pub transit_fill_peak: f64,
    /// Per-connection consistency violations across every verification
    /// run (must be 0).
    pub pcc_violations: u64,
    /// Learning-filter overflow drops (must be 0 in the non-flood
    /// sweep — every setup completes).
    pub overflow_drops: u64,
    /// Commutative decision digest of the whole workload (batched,
    /// 1 pipe).
    pub digest: u64,
    /// Whether the per-packet arm produced the identical digest.
    pub digests_match_arms: bool,
    /// Whether every swept pipe count produced the identical digest.
    pub digests_match_pipes: bool,
}

/// A full churn sweep.
#[derive(Clone, Debug)]
pub struct ChurnBench {
    /// Whether this was the CI-sized smoke profile.
    pub smoke: bool,
    /// Parameters the sweep ran with.
    pub params: ChurnParams,
    /// Cores on the host that ran the bench.
    pub host_cores: usize,
    /// Peak resident set of the process (`None` off-Linux).
    pub peak_rss_bytes: Option<u64>,
    /// One point per storm factor.
    pub points: Vec<ChurnPoint>,
}

impl ChurnBench {
    /// The smallest speedup across storm points.
    pub fn min_speedup(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.speedup)
            .fold(f64::INFINITY, f64::min)
    }

    /// The gated speedup: the lowest storm factor's point (unreplicated
    /// SYNs — the pure new-connection saturation rate). Storm-replicated
    /// points compress toward 1× in *both* arms because duplicate SYNs
    /// pay the same learn-dedup probes either way; they are reported for
    /// PCC/depth behaviour, not gated on ratio.
    pub fn gate_speedup(&self) -> f64 {
        self.points
            .iter()
            .min_by_key(|p| p.storm)
            .map(|p| p.speedup)
            .unwrap_or(0.0)
    }

    /// Whether every point's digests agree batched-vs-per-packet and
    /// across pipe counts.
    pub fn digests_ok(&self) -> bool {
        self.points
            .iter()
            .all(|p| p.digests_match_arms && p.digests_match_pipes)
    }

    /// Total PCC violations across points (must be 0).
    pub fn pcc_violations(&self) -> u64 {
        self.points.iter().map(|p| p.pcc_violations).sum()
    }

    /// Render as the committed `BENCH_churn.json` document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"bench\": \"churn\",\n");
        s.push_str(&format!("  \"smoke\": {},\n", self.smoke));
        s.push_str(&format!(
            "  \"warmup_waves\": {},\n",
            self.params.warmup_waves
        ));
        s.push_str(&format!("  \"waves\": {},\n", self.params.waves));
        s.push_str(&format!(
            "  \"flows_per_wave\": {},\n",
            self.params.flows_per_wave
        ));
        s.push_str(&format!("  \"batch\": {},\n", self.params.batch));
        s.push_str(&format!(
            "  \"pipe_counts\": [{}],\n",
            self.params
                .pipe_counts
                .iter()
                .map(|p| p.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ));
        s.push_str(&format!("  \"host_cores\": {},\n", self.host_cores));
        s.push_str(&format!(
            "  \"peak_rss_bytes\": {},\n",
            crate::rss::rss_json(self.peak_rss_bytes)
        ));
        s.push_str(
            "  \"note\": \"paired arms over one workload: per-packet legacy-install baseline \
             vs batched fused-setup path; setups/s covers the full miss -> learn -> CPU insert \
             -> promote pipeline including advance(); digests are the engine's commutative \
             decision fold and must match across arms and pipe counts\",\n",
        );
        s.push_str(&format!(
            "  \"gate_speedup\": {:.3},\n  \"speedup_floor\": {:.1},\n  \
             \"speedup_target\": {:.1},\n",
            self.gate_speedup(),
            SPEEDUP_FLOOR,
            SPEEDUP_TARGET,
        ));
        s.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"storm\": {}, \"setups\": {}, \"packets\": {}, \
                 \"baseline_ns\": {}, \"batched_ns\": {}, \
                 \"baseline_setups_per_sec\": {:.0}, \"batched_setups_per_sec\": {:.0}, \
                 \"speedup\": {:.3}, \"learn_depth_p50\": {}, \"learn_depth_p90\": {}, \
                 \"learn_depth_max\": {}, \"transit_fill_peak\": {:.4}, \
                 \"pcc_violations\": {}, \"overflow_drops\": {}, \"digest\": \"{:016x}\", \
                 \"digests_match_arms\": {}, \"digests_match_pipes\": {}}}{}\n",
                p.storm,
                p.setups,
                p.packets,
                p.baseline_ns,
                p.batched_ns,
                p.baseline_setups_per_sec,
                p.batched_setups_per_sec,
                p.speedup,
                p.learn_depth_p50,
                p.learn_depth_p90,
                p.learn_depth_max,
                p.transit_fill_peak,
                p.pcc_violations,
                p.overflow_drops,
                p.digest,
                p.digests_match_arms,
                p.digests_match_pipes,
                if i + 1 == self.points.len() { "" } else { "," }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

fn vip() -> Vip {
    Vip(Addr::v4(20, 0, 0, 1, 80))
}

fn dip(i: u8) -> Dip {
    Dip(Addr::v4(10, 0, 0, i, 20))
}

/// The `g`-th brand-new flow of the sweep (globally unique tuples; the
/// port spread keeps source endpoints from colliding on one address).
fn flow_tuple(g: u32) -> FiveTuple {
    FiveTuple::tcp(Addr::v4_indexed(100, g, 1024 + (g % 251) as u16), vip().0)
}

fn churn_cfg(total_flows: u32, legacy: bool) -> SilkRoadConfig {
    SilkRoadConfig {
        conn_capacity: (total_flows as usize) * 2,
        // Same geometry as the saturation/wall sweeps: wide digests and
        // a big transit bloom keep collision noise out of the
        // digest-identity gate.
        digest_bits: 24,
        transit_bytes: 4_096,
        legacy_setup: legacy,
        ..Default::default()
    }
}

/// One wave of the prebuilt workload.
struct Wave {
    /// SYN burst: `storm` copies of each new flow, round-major so one
    /// flow's duplicates are spread across the burst (retransmissions
    /// interleave with other handshakes, they don't arrive back to
    /// back).
    syns: Vec<PacketMeta>,
    /// Data for this wave's flows plus the two previous cohorts still
    /// open — the witnesses that stretch connections across the mid-run
    /// pool updates and make the PCC check bite.
    data: Vec<PacketMeta>,
    /// The wave w-2 cohort, closed once its last data packet is served.
    closes: Vec<FiveTuple>,
    /// Whether this wave is inside the timed window.
    timed: bool,
}

/// Prebuild the whole workload so the timed loops never allocate or
/// synthesize packets.
fn build_waves(p: &ChurnParams, storm: u32) -> Vec<Wave> {
    let flows = p.flows_per_wave;
    (0..p.warmup_waves + p.waves)
        .map(|w| {
            let base = w * flows;
            let cohort: Vec<FiveTuple> = (0..flows).map(|f| flow_tuple(base + f)).collect();
            let mut syns = Vec::with_capacity((flows * storm) as usize);
            for _ in 0..storm {
                syns.extend(cohort.iter().map(|t| PacketMeta::syn(*t)));
            }
            let mut data = Vec::with_capacity((flows * 3) as usize);
            for back in (0..=2u32).rev() {
                if back > w {
                    continue;
                }
                let b = (w - back) * flows;
                data.extend((0..flows).map(|f| PacketMeta::data(flow_tuple(b + f), 800)));
            }
            let closes: Vec<FiveTuple> = if w >= 2 {
                (0..flows)
                    .map(|f| flow_tuple((w - 2) * flows + f))
                    .collect()
            } else {
                Vec::new()
            };
            Wave {
                syns,
                data,
                closes,
                timed: w >= p.warmup_waves,
            }
        })
        .collect()
}

/// A stable 64-bit encoding of a decision's externally visible fields —
/// the same fold as the engine's streaming digest
/// ([`silkroad::StreamStats`]) and the replay driver, so churn digests
/// are comparable across every harness.
fn decision_word(d: &ForwardDecision) -> u64 {
    let path = match d.path {
        DataPath::AsicConnTable => 1u64,
        DataPath::AsicVipTable => 2,
        DataPath::SoftwareRedirect => 3,
        DataPath::Dropped => 4,
        DataPath::NotVip => 5,
    };
    let mut w = splitmix64(path | (u64::from(d.conn_table_hit) << 3));
    if let Some(v) = d.version {
        w ^= splitmix64(0x7665_7273 ^ u64::from(v.0));
    }
    if let Some(dip) = d.dip {
        // 18 bytes holds the longest encoded address (v6 + port).
        let mut bytes = [0u8; 18];
        let n = dip.0.encode_to(&mut bytes, 0);
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes.get(..n).unwrap_or(&[]) {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        w ^= h;
    }
    w
}

/// Decision folder for verification runs: commutative digest plus the
/// per-connection consistency check (a flow's first DIP is its DIP
/// forever — across retransmissions, data, and pool updates).
struct Folder {
    steer: FlowSteering,
    first_dip: FxHashMap<FiveTuple, Dip>,
    digest: u64,
    pcc_violations: u64,
}

impl Folder {
    fn new(seed: u64) -> Folder {
        Folder {
            steer: FlowSteering::new(seed, 1),
            first_dip: FxHashMap::default(),
            digest: 0,
            pcc_violations: 0,
        }
    }

    fn note(&mut self, pkt: &PacketMeta, d: &ForwardDecision) {
        self.digest = self.digest.wrapping_add(splitmix64(
            self.steer.flow_hash(&pkt.tuple) ^ decision_word(d),
        ));
        if let Some(chosen) = d.dip {
            match self.first_dip.entry(pkt.tuple) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    if *e.get() != chosen {
                        self.pcc_violations += 1;
                    }
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(chosen);
                }
            }
        }
    }
}

/// Push one span of packets through the engine on the selected arm,
/// folding decisions when a `folder` is supplied (verification runs).
fn process_span(
    sw: &mut MultiPipeSwitch,
    span: &[PacketMeta],
    now: Nanos,
    batch: usize,
    batched: bool,
    out: &mut Vec<ForwardDecision>,
    mut folder: Option<&mut Folder>,
) {
    if batched {
        for chunk in span.chunks(batch) {
            out.clear();
            sw.process_batch_into(chunk, now, out);
            if let Some(f) = folder.as_deref_mut() {
                for (pkt, d) in chunk.iter().zip(out.iter()) {
                    f.note(pkt, d);
                }
            }
        }
    } else {
        for pkt in span {
            let d = sw.process_packet(pkt, now);
            if let Some(f) = folder.as_deref_mut() {
                f.note(pkt, &d);
            }
        }
    }
}

/// What one run over the workload produced. `elapsed_ns` covers only the
/// timed waves' *setup path* — the SYN bursts plus the drain `advance`
/// that pushes them through learn→insert→promote. Witness data packets
/// and closes are correctness machinery (PCC/digest folding happens in
/// the verify runs) and stay outside the measured windows.
struct RunOut {
    elapsed_ns: u64,
    packets: u64,
    digest: u64,
    pcc_violations: u64,
    depth_samples: Vec<usize>,
    transit_peak: f64,
    overflow_drops: u64,
}

/// Drive the prebuilt workload through one engine configuration.
///
/// `batched` selects the arm (chunked `process_batch_into` vs one
/// `process_packet` per packet) *and* the install path (`legacy_setup`
/// re-hashing for the baseline). `verify` folds every decision instead
/// of timing — verification work stays out of the measured windows.
/// Wall-clock reads are banned in model crates (clippy.toml) but are
/// the entire point of this harness.
#[allow(clippy::disallowed_methods)]
fn run_workload(
    p: &ChurnParams,
    waves: &[Wave],
    pipes: usize,
    batched: bool,
    verify: bool,
) -> RunOut {
    use std::time::Instant;
    let total_flows = (p.warmup_waves + p.waves) * p.flows_per_wave;
    let cfg = churn_cfg(total_flows, !batched);
    let seed = cfg.seed;
    let mut sw = MultiPipeSwitch::inline(cfg, pipes);
    sw.add_vip(vip(), (1..=16).map(dip).collect())
        .expect("churn VIP registers");
    let mut folder = Folder::new(seed);
    let mut out: Vec<ForwardDecision> = Vec::with_capacity(p.batch);
    let mut depth_samples = Vec::with_capacity(p.waves as usize);
    let mut transit_peak = 0f64;
    let mut packets = 0u64;
    let mut now = Nanos::ZERO;
    // Per-wave drain budget: the learning filter's 1 ms notification,
    // the CPU's 5 µs per install for a full cohort, plus slack.
    let drain = Duration::from_millis(1)
        + Duration::from_micros(5 * u64::from(p.flows_per_wave))
        + Duration::from_millis(1);
    let mut setup_ns = 0u128;
    let mut timed_idx = 0u32;
    for wave in waves {
        let mut update: Option<PoolUpdate> = None;
        if wave.timed {
            // Two pool updates land mid-run so the transit/PCC
            // machinery is exercised while connections are in flight.
            // Add-then-Remove of the *same* DIP: a Remove followed by an
            // Add of a different DIP would trigger §4.2 version reuse,
            // which substitutes the new DIP into the redeemed version and
            // legitimately remaps live connections — not what a PCC
            // witness should count as a violation.
            if timed_idx == p.waves / 3 {
                update = Some(PoolUpdate::Add(dip(17)));
            }
            if timed_idx == 2 * p.waves / 3 {
                update = Some(PoolUpdate::Remove(dip(17)));
            }
            timed_idx += 1;
        }
        // Updates are requested *mid-burst*: at a wave boundary nothing is
        // outstanding and the 3-step protocol collapses to an immediate
        // flip (empty step 1). With part of the cohort pending, step 1
        // opens a real window and the TransitTable records the rest of
        // the burst. The split point is deterministic, so both arms and
        // every pipe count see the identical packet/update interleaving.
        let split = if update.is_some() {
            p.batch.min(wave.syns.len())
        } else {
            0
        };
        let t_burst = Instant::now();
        process_span(
            &mut sw,
            &wave.syns[..split],
            now,
            p.batch,
            batched,
            &mut out,
            verify.then_some(&mut folder),
        );
        if let Some(op) = update {
            let _ = sw.request_update(vip(), op, now);
        }
        process_span(
            &mut sw,
            &wave.syns[split..],
            now,
            p.batch,
            batched,
            &mut out,
            verify.then_some(&mut folder),
        );
        if wave.timed {
            setup_ns += t_burst.elapsed().as_nanos();
        }
        packets += wave.syns.len() as u64;
        // Sample the learn queue and transit bloom at their wave peak
        // (after the burst, before the drain), then run the pipeline so
        // every setup is installed before data arrives.
        if wave.timed && !verify {
            depth_samples.push(
                (0..pipes)
                    .filter_map(|i| sw.pipe(i))
                    .map(|pi| pi.switch().learn_queue_depth())
                    .sum(),
            );
            let fill = (0..pipes)
                .filter_map(|i| sw.pipe(i))
                .map(|pi| pi.switch().transit_fill_ratio())
                .fold(0f64, f64::max);
            transit_peak = transit_peak.max(fill);
        }
        now = now.saturating_add(drain);
        let t_drain = Instant::now();
        sw.advance(now);
        if wave.timed {
            setup_ns += t_drain.elapsed().as_nanos();
        }
        process_span(
            &mut sw,
            &wave.data,
            now,
            p.batch,
            batched,
            &mut out,
            verify.then_some(&mut folder),
        );
        packets += wave.data.len() as u64;
        for t in &wave.closes {
            sw.close_connection(t, now);
        }
        now = now.saturating_add(Duration::from_millis(1));
    }
    let elapsed_ns = setup_ns as u64;
    let overflow_drops = (0..pipes)
        .filter_map(|i| sw.pipe(i))
        .map(|pi| pi.switch().learn_overflow_drops())
        .sum();
    RunOut {
        elapsed_ns,
        packets,
        digest: folder.digest,
        pcc_violations: folder.pcc_violations,
        depth_samples,
        transit_peak,
        overflow_drops,
    }
}

fn percentile(sorted: &[usize], q: f64) -> usize {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted.get(idx).copied().unwrap_or(0)
}

/// Measure one storm factor: verification runs first (they also warm
/// the process — the saturation sweep's cold-start lesson), then the
/// paired timed arms.
fn measure_storm(p: &ChurnParams, storm: u32) -> ChurnPoint {
    let waves = build_waves(p, storm);
    // Verification: per-packet baseline, then the batched path at every
    // swept pipe count. All must agree bit-for-bit.
    let vbase = run_workload(p, &waves, 1, false, true);
    let mut pipe_digests = Vec::with_capacity(p.pipe_counts.len());
    let mut pcc_violations = vbase.pcc_violations;
    for &pipes in &p.pipe_counts {
        let v = run_workload(p, &waves, pipes, true, true);
        pcc_violations += v.pcc_violations;
        pipe_digests.push(v.digest);
    }
    let digest = pipe_digests.first().copied().unwrap_or(0);
    let digests_match_arms = vbase.digest == digest;
    let digests_match_pipes = pipe_digests.iter().all(|&d| d == digest);
    // Timed arms, 1 pipe each, identical workload.
    let base = run_workload(p, &waves, 1, false, false);
    let bat = run_workload(p, &waves, 1, true, false);
    let setups = u64::from(p.waves) * u64::from(p.flows_per_wave);
    let mut depths = bat.depth_samples.clone();
    depths.sort_unstable();
    let secs = |ns: u64| ns.max(1) as f64 / 1e9;
    let baseline_setups_per_sec = setups as f64 / secs(base.elapsed_ns);
    let batched_setups_per_sec = setups as f64 / secs(bat.elapsed_ns);
    ChurnPoint {
        storm,
        setups,
        packets: bat.packets,
        baseline_ns: base.elapsed_ns,
        batched_ns: bat.elapsed_ns,
        baseline_setups_per_sec,
        batched_setups_per_sec,
        speedup: batched_setups_per_sec / baseline_setups_per_sec.max(f64::MIN_POSITIVE),
        learn_depth_p50: percentile(&depths, 0.50),
        learn_depth_p90: percentile(&depths, 0.90),
        learn_depth_max: depths.last().copied().unwrap_or(0),
        transit_fill_peak: bat.transit_peak.max(base.transit_peak),
        pcc_violations,
        overflow_drops: bat.overflow_drops.max(base.overflow_drops),
        digest,
        digests_match_arms,
        digests_match_pipes,
    }
}

/// Run a sweep with explicit parameters (tests use tiny workloads).
pub fn run_with(params: ChurnParams, smoke: bool) -> ChurnBench {
    let points = params
        .storms
        .iter()
        .map(|&s| measure_storm(&params, s))
        .collect();
    ChurnBench {
        smoke,
        params,
        host_cores: sr_exec::available_cores(),
        peak_rss_bytes: crate::rss::peak_rss_bytes(),
        points,
    }
}

/// Run the committed full or smoke profile.
pub fn run(smoke: bool) -> ChurnBench {
    run_with(churn_params(smoke), smoke)
}

// ---- SYN flood ---------------------------------------------------------

/// What the SYN-flood scenario observed.
#[derive(Clone, Debug)]
pub struct FloodReport {
    /// Flood waves replayed.
    pub waves: u32,
    /// Unique never-completing SYNs per wave (deliberately beyond the
    /// learning filter's capacity).
    pub syns_per_wave: u32,
    /// Established background connections serving traffic throughout.
    pub background_flows: u32,
    /// Total flood SYNs replayed.
    pub flood_syns: u64,
    /// SYNs the learning filter shed (must be > 0 — the filter is the
    /// bound on learn-path state).
    pub overflow_drops: u64,
    /// Peak installed connections observed at wave boundaries.
    pub installed_peak: usize,
    /// Installed connections after the final expiry pass.
    pub installed_final: usize,
    /// Connections reclaimed by idle expiry during the flood.
    pub expired: usize,
    /// The model-derived ceiling `installed_peak` must stay under:
    /// background + filter capacity x (waves per idle timeout + 2).
    pub live_bound: usize,
    /// PCC violations on the background flows (must be 0).
    pub pcc_violations: u64,
}

impl FloodReport {
    /// Whether installed state stayed within the model-derived bound.
    pub fn bounded(&self) -> bool {
        self.installed_peak <= self.live_bound
    }
}

/// Replay a deterministic SYN flood with explicit shape (tests shrink
/// it). Each flood tuple is seen exactly once — no retransmissions, no
/// data, no close — so nothing but the learning filter and idle expiry
/// stands between the flood and ConnTable exhaustion.
pub fn flood_with(waves: u32, syns_per_wave: u32, background: u32) -> FloodReport {
    let idle = Duration::from_millis(200);
    let wave_period = Duration::from_millis(50);
    let cfg = SilkRoadConfig {
        conn_capacity: 32_768,
        digest_bits: 24,
        transit_bytes: 4_096,
        idle_timeout: idle,
        ..Default::default()
    };
    let filter_capacity = cfg.learning.capacity;
    let mut sw = MultiPipeSwitch::inline(cfg, 1);
    sw.add_vip(vip(), (1..=16).map(dip).collect())
        .expect("flood VIP registers");

    // Establish the background population (flow ids far above the flood
    // range) and record each flow's DIP.
    let bg: Vec<FiveTuple> = (0..background)
        .map(|i| FiveTuple::tcp(Addr::v4_indexed(200, i, 1024 + (i % 251) as u16), vip().0))
        .collect();
    let mut now = Nanos::ZERO;
    for chunk in bg.chunks(1_024) {
        let syns: Vec<PacketMeta> = chunk.iter().map(|t| PacketMeta::syn(*t)).collect();
        sw.process_batch(&syns, now);
        now = now.saturating_add(Duration::from_millis(10));
        sw.advance(now);
    }
    let bg_data: Vec<PacketMeta> = bg.iter().map(|t| PacketMeta::data(*t, 800)).collect();
    let mut first_dip: FxHashMap<FiveTuple, Dip> = FxHashMap::default();
    let mut pcc_violations = 0u64;
    let check_bg = |sw: &mut MultiPipeSwitch,
                    first_dip: &mut FxHashMap<FiveTuple, Dip>,
                    pcc: &mut u64,
                    now: Nanos| {
        for chunk in bg_data.chunks(1_024) {
            for (pkt, d) in chunk.iter().zip(sw.process_batch(chunk, now)) {
                if let Some(chosen) = d.dip {
                    match first_dip.entry(pkt.tuple) {
                        std::collections::hash_map::Entry::Occupied(e) => {
                            if *e.get() != chosen {
                                *pcc += 1;
                            }
                        }
                        std::collections::hash_map::Entry::Vacant(v) => {
                            v.insert(chosen);
                        }
                    }
                }
            }
        }
    };
    check_bg(&mut sw, &mut first_dip, &mut pcc_violations, now);

    // The flood: every wave is a fresh block of unique SYNs, replayed
    // in one burst at the wave timestamp.
    let mut installed_peak = 0usize;
    let mut expired = 0usize;
    for w in 0..waves {
        let base = w * syns_per_wave;
        let syns: Vec<PacketMeta> = (0..syns_per_wave)
            .map(|i| {
                PacketMeta::syn(FiveTuple::tcp(
                    Addr::v4_indexed(60, base + i, 1024 + ((base + i) % 251) as u16),
                    vip().0,
                ))
            })
            .collect();
        // One burst per wave: `process_batch` advances the learning
        // filter at batch boundaries, so chunking the flood would drain
        // the at-capacity filter between chunks and never overflow it.
        sw.process_batch(&syns, now);
        now = now.saturating_add(wave_period);
        sw.advance(now);
        expired += sw.expire_idle(now);
        // Background keeps serving (and refreshing its idle timers)
        // through the flood.
        check_bg(&mut sw, &mut first_dip, &mut pcc_violations, now);
        installed_peak = installed_peak.max(sw.conn_count());
    }
    // Let everything the flood installed go idle and reclaim it.
    now = now.saturating_add(idle).saturating_add(wave_period);
    sw.advance(now);
    expired += sw.expire_idle(now);
    check_bg(&mut sw, &mut first_dip, &mut pcc_violations, now);

    let waves_per_idle = idle.div_duration(wave_period) as usize;
    FloodReport {
        waves,
        syns_per_wave,
        background_flows: background,
        flood_syns: u64::from(waves) * u64::from(syns_per_wave),
        overflow_drops: sw
            .pipe(0)
            .map(|p| p.switch().learn_overflow_drops())
            .unwrap_or(0),
        installed_peak,
        installed_final: sw.conn_count(),
        expired,
        live_bound: background as usize + filter_capacity * (waves_per_idle + 2),
        pcc_violations,
    }
}

/// Run the committed flood profile.
pub fn flood(smoke: bool) -> FloodReport {
    let waves = if smoke { 6 } else { 16 };
    flood_with(waves, 4_096, 512)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_is_consistent_and_json_shaped() {
        let params = ChurnParams {
            warmup_waves: 1,
            waves: 3,
            flows_per_wave: 128,
            batch: 64,
            storms: vec![1, 4],
            pipe_counts: vec![1, 2],
        };
        let b = run_with(params, true);
        assert_eq!(b.points.len(), 2);
        assert!(b.digests_ok(), "digest identity broke: {:#?}", b.points);
        assert_eq!(b.pcc_violations(), 0);
        for p in &b.points {
            assert_eq!(p.setups, 3 * 128);
            assert_eq!(p.overflow_drops, 0, "non-flood sweep shed setups");
            assert!(p.baseline_setups_per_sec > 0.0);
            assert!(p.batched_setups_per_sec > 0.0);
            assert!(p.learn_depth_max >= p.learn_depth_p50);
            // Every wave buffers its full cohort before the drain.
            assert_eq!(p.learn_depth_max, 128);
            // The mid-run updates put the transit bloom to work.
            assert!(p.transit_fill_peak > 0.0, "transit never recorded");
        }
        let json = b.to_json();
        for key in [
            "\"bench\": \"churn\"",
            "\"smoke\": true",
            "\"host_cores\"",
            "\"peak_rss_bytes\"",
            "\"speedup\"",
            "\"learn_depth_p90\"",
            "\"transit_fill_peak\"",
            "\"pcc_violations\": 0",
            "\"digests_match_arms\": true",
            "\"digests_match_pipes\": true",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn storm_replication_multiplies_packets_not_setups() {
        let params = ChurnParams {
            warmup_waves: 0,
            waves: 2,
            flows_per_wave: 64,
            batch: 32,
            storms: vec![1, 3],
            pipe_counts: vec![1],
        };
        let b = run_with(params, true);
        let (p1, p3) = (&b.points[0], &b.points[1]);
        assert_eq!(p1.setups, p3.setups);
        // Extra packets are exactly the duplicated SYNs.
        assert_eq!(p3.packets - p1.packets, 2 * 2 * 64);
    }

    #[test]
    fn flood_is_bounded_sheds_load_and_preserves_background() {
        let r = flood_with(3, 4_096, 128);
        assert!(r.overflow_drops > 0, "filter never shed: {r:?}");
        assert_eq!(r.pcc_violations, 0, "background flows broke: {r:?}");
        assert!(r.bounded(), "installed state escaped the bound: {r:?}");
        assert!(r.expired > 0, "idle expiry never reclaimed: {r:?}");
        assert!(r.installed_final < r.installed_peak);
    }
}
