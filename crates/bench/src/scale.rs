//! Experiment scale control.
//!
//! The paper's PCC experiments replay one hour of a 2.77 M-connections-per-
//! minute trace per data point — ~166 M connections. The default scale
//! keeps every *rate* and *ratio* intact but shrinks the arrival volume and
//! window so the whole figure regenerates in minutes on a laptop;
//! `--full` restores paper scale.

/// Scaling knobs shared by the simulation-backed figures.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Multiplier on the reference arrival rate (1.0 = 2.77 M conns/min).
    pub rate_factor: f64,
    /// Trace window, minutes (paper: 60).
    pub minutes: u64,
    /// Base RNG seed.
    pub seed: u64,
}

impl Scale {
    /// Quick default: 0.5 % of the reference rate for 12 minutes
    /// (~166 K connections per data point). The window must straddle the
    /// 10-minute Duet migration boundary or Duet-10min shows no
    /// migrations at all.
    pub fn quick() -> Scale {
        Scale {
            rate_factor: 0.005,
            minutes: 12,
            seed: 0x5ca1e,
        }
    }

    /// Paper scale.
    pub fn full() -> Scale {
        Scale {
            rate_factor: 1.0,
            minutes: 60,
            seed: 0x5ca1e,
        }
    }

    /// A scale for in-tree tests: small enough for debug builds, still
    /// straddling the 10-minute migration boundary.
    pub fn test() -> Scale {
        Scale {
            rate_factor: 0.0012,
            minutes: 12,
            seed: 0x5ca1e,
        }
    }

    /// Expected connections per data point at this scale.
    pub fn expected_conns(&self) -> f64 {
        2_770_000.0 * self.rate_factor * self.minutes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales() {
        assert!((Scale::full().expected_conns() - 166_200_000.0).abs() < 1e3);
        assert!(Scale::quick().expected_conns() < 200_000.0);
        assert!(Scale::test().expected_conns() < 50_000.0);
    }
}
