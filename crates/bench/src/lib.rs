//! Benchmark harness: regenerates every table and figure of the SilkRoad
//! evaluation.
//!
//! Each `figN`/`tableN` function returns structured rows; the `repro`
//! binary prints them. The absolute numbers come from our simulator and
//! synthetic fleet, so they will not match the paper digit-for-digit — the
//! *shape* (who wins, by what factor, where crossovers sit) is the
//! reproduction target, and the unit tests in this crate assert exactly
//! those shapes. `EXPERIMENTS.md` records a run next to the paper values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod churn;
pub mod compare;
pub mod exec;
pub mod extras;
pub mod fig_memory;
pub mod fig_meta;
pub mod fig_pcc;
pub mod fig_version;
pub mod fleet;
pub mod replay;
pub mod report;
pub mod rss;
pub mod saturation;
pub mod scale;
pub mod tables;
pub mod wall;

pub use exec::Exec;
pub use scale::Scale;
