//! Figures 2, 3, 4, 6 and 8 — the workload-characterisation figures.
//!
//! These reproduce the measurement-study plots from the synthetic fleet,
//! demonstrating that the generator matches the published marginals the
//! simulation figures depend on.

use crate::report::Table;
use sr_types::Duration;
use sr_workload::dists::percentile;
use sr_workload::{
    synthesize_fleet, ClusterKind, ClusterSpec, FleetConfig, UpdateCause, UpdatePlanConfig,
    UpdatePlanner,
};

/// Fig 2 row: share of clusters with more than `threshold` updates/min.
#[derive(Clone, Copy, Debug)]
pub struct Fig2Row {
    /// Updates-per-minute threshold.
    pub threshold: f64,
    /// Fraction of clusters whose *median* minute exceeds it.
    pub median_exceeds: f64,
    /// Fraction of clusters whose *p99* minute exceeds it.
    pub p99_exceeds: f64,
    /// Fraction of Backends whose p99 minute exceeds it.
    pub backend_p99_exceeds: f64,
}

/// Compute Fig 2 from a fleet.
pub fn fig2(fleet: &[ClusterSpec]) -> Vec<Fig2Row> {
    let total = fleet.len() as f64;
    let backends: Vec<&ClusterSpec> = fleet
        .iter()
        .filter(|c| c.kind == ClusterKind::Backend)
        .collect();
    [1.0, 2.0, 5.0, 10.0, 16.0, 20.0, 50.0, 100.0]
        .iter()
        .map(|&threshold| Fig2Row {
            threshold,
            median_exceeds: fleet
                .iter()
                .filter(|c| c.updates_per_min_median > threshold)
                .count() as f64
                / total,
            p99_exceeds: fleet
                .iter()
                .filter(|c| c.updates_per_min_p99 > threshold)
                .count() as f64
                / total,
            backend_p99_exceeds: backends
                .iter()
                .filter(|c| c.updates_per_min_p99 > threshold)
                .count() as f64
                / backends.len().max(1) as f64,
        })
        .collect()
}

/// Fig 3 row: one root cause's share of DIP changes.
#[derive(Clone, Copy, Debug)]
pub struct Fig3Row {
    /// Cause.
    pub cause: UpdateCause,
    /// Target share (the paper's measured distribution).
    pub target_share: f64,
    /// Share measured in a generated month of updates.
    pub generated_share: f64,
}

/// Compute Fig 3: target vs generated cause mix.
pub fn fig3(seed: u64) -> Vec<Fig3Row> {
    let events = UpdatePlanner::new(UpdatePlanConfig::dedicated(
        200,
        40,
        30.0,
        Duration::from_mins(24 * 60), // one synthetic day
        seed,
    ))
    .generate();
    let total = events.len().max(1) as f64;
    UpdateCause::ALL
        .iter()
        .map(|&cause| Fig3Row {
            cause,
            target_share: cause.share(),
            generated_share: events.iter().filter(|e| e.cause == cause).count() as f64 / total,
        })
        .collect()
}

/// Fig 4 row: downtime percentiles for one cause, minutes.
#[derive(Clone, Copy, Debug)]
pub struct Fig4Row {
    /// Cause.
    pub cause: UpdateCause,
    /// Median downtime, minutes.
    pub p50_min: f64,
    /// 90th percentile.
    pub p90_min: f64,
    /// 99th percentile.
    pub p99_min: f64,
}

/// Compute Fig 4 by sampling each cause's downtime distribution.
pub fn fig4(seed: u64) -> Vec<Fig4Row> {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let mut rng = SmallRng::seed_from_u64(seed);
    UpdateCause::ALL
        .iter()
        .filter(|c| c.has_downtime())
        .map(|&cause| {
            let mut mins: Vec<f64> = (0..20_000)
                .map(|_| cause.sample_downtime(&mut rng).as_secs_f64() / 60.0)
                .collect();
            mins.sort_by(f64::total_cmp);
            Fig4Row {
                cause,
                p50_min: percentile(&mins, 50.0),
                p90_min: percentile(&mins, 90.0),
                p99_min: percentile(&mins, 99.0),
            }
        })
        .collect()
}

/// Fig 6 / Fig 8 row: a distribution summary for one cluster kind.
#[derive(Clone, Copy, Debug)]
pub struct KindCdfRow {
    /// Cluster kind.
    pub kind: ClusterKind,
    /// Median across clusters.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// Maximum.
    pub max: f64,
}

fn kind_cdf(fleet: &[ClusterSpec], f: impl Fn(&ClusterSpec) -> f64) -> Vec<KindCdfRow> {
    [
        ClusterKind::PoP,
        ClusterKind::Frontend,
        ClusterKind::Backend,
    ]
    .iter()
    .map(|&kind| {
        let mut xs: Vec<f64> = fleet.iter().filter(|c| c.kind == kind).map(&f).collect();
        xs.sort_by(f64::total_cmp);
        KindCdfRow {
            kind,
            p50: percentile(&xs, 50.0),
            p90: percentile(&xs, 90.0),
            max: *xs.last().unwrap_or(&0.0),
        }
    })
    .collect()
}

/// Fig 6: active connections per ToR (p99 minute) across clusters.
pub fn fig6(fleet: &[ClusterSpec]) -> Vec<KindCdfRow> {
    kind_cdf(fleet, |c| c.conns_per_tor_p99 as f64)
}

/// Fig 8: new connections per VIP per minute across clusters.
pub fn fig8(fleet: &[ClusterSpec]) -> Vec<KindCdfRow> {
    kind_cdf(fleet, |c| c.new_conns_per_vip_min as f64)
}

/// The default fleet used by every fleet-based figure.
pub fn default_fleet() -> Vec<ClusterSpec> {
    synthesize_fleet(FleetConfig::default())
}

/// Render Fig 2 as a table.
pub fn fig2_table(rows: &[Fig2Row]) -> Table {
    let mut t = Table::new(
        "Fig 2 — clusters with more than X DIP-pool updates per minute",
        &[">X upd/min", "median-minute", "p99-minute", "Backends p99"],
    );
    for r in rows {
        t.row(vec![
            format!("{:.0}", r.threshold),
            format!("{:.0}%", 100.0 * r.median_exceeds),
            format!("{:.0}%", 100.0 * r.p99_exceeds),
            format!("{:.0}%", 100.0 * r.backend_p99_exceeds),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_matches_paper_anchors() {
        let rows = fig2(&default_fleet());
        let at = |x: f64| rows.iter().find(|r| r.threshold == x).unwrap();
        // Paper: 32% of clusters >10 at p99; 3% >50.
        assert!((0.20..0.55).contains(&at(10.0).p99_exceeds));
        assert!((0.01..0.15).contains(&at(50.0).p99_exceeds));
        // Half of Backends above 16 at p99.
        assert!((0.3..0.7).contains(&at(16.0).backend_p99_exceeds));
        // Monotone decreasing in threshold.
        for w in rows.windows(2) {
            assert!(w[0].p99_exceeds >= w[1].p99_exceeds);
        }
    }

    #[test]
    fn fig3_generated_matches_target() {
        for r in fig3(1) {
            assert!(
                (r.generated_share - r.target_share).abs() < 0.04,
                "{:?}: {} vs {}",
                r.cause,
                r.generated_share,
                r.target_share
            );
        }
    }

    #[test]
    fn fig4_upgrade_anchors() {
        let rows = fig4(2);
        let upgrade = rows
            .iter()
            .find(|r| r.cause == UpdateCause::Upgrade)
            .unwrap();
        assert!((2.5..3.5).contains(&upgrade.p50_min), "{}", upgrade.p50_min);
        assert!(
            (60.0..160.0).contains(&upgrade.p99_min),
            "{}",
            upgrade.p99_min
        );
        // Failures take longer than upgrades at the median.
        let failure = rows
            .iter()
            .find(|r| r.cause == UpdateCause::Failure)
            .unwrap();
        assert!(failure.p50_min > upgrade.p50_min);
    }

    #[test]
    fn fig6_ordering() {
        let rows = fig6(&default_fleet());
        let get = |k| rows.iter().find(|r| r.kind == k).unwrap().max;
        assert!(get(ClusterKind::Backend) > get(ClusterKind::PoP) * 0.8);
        assert!(get(ClusterKind::Frontend) < get(ClusterKind::PoP) / 10.0);
        assert!(get(ClusterKind::Backend) <= 15_000_000.0);
    }

    #[test]
    fn fig8_backends_reach_tens_of_millions() {
        let rows = fig8(&default_fleet());
        let backend = rows
            .iter()
            .find(|r| r.kind == ClusterKind::Backend)
            .unwrap();
        assert!(backend.max > 10_000_000.0, "{}", backend.max);
    }

    #[test]
    fn fig2_table_renders() {
        let t = fig2_table(&fig2(&default_fleet()));
        assert!(t.render().contains("Fig 2"));
    }
}
