//! `repro replay` / `repro export` — stream a pcap capture through the
//! multi-pipe switch and rewrite every frame (`BENCH_replay.json`).
//!
//! This is the closest the reproduction gets to a packet-in/packet-out
//! load balancer: real Ethernet frames are parsed zero-copy
//! ([`sr_wire::parse_frame`]), steered and resolved by
//! [`MultiPipeSwitch::process_batch_into`], and carried to their DIP by
//! the [`sr_wire::rewrite_frame`] engine (L4 NAT or IP-in-IP encap).
//!
//! Two passes over the capture:
//!
//! 1. a **timed pass** — parse → steer → resolve → rewrite, nothing else —
//!    which produces the pps/Gbps numbers;
//! 2. an untimed **verification pass** on a fresh switch that recomputes
//!    the same decisions while folding them into a FNV-1a *decision
//!    digest*, folding every rewritten frame into a *rewrite digest*,
//!    validating each rewritten frame's checksums by full recomputation
//!    (independent of the RFC 1624 incremental math the rewriter used),
//!    and checking per-connection consistency: once a flow is pinned to a
//!    DIP, every later packet must keep it.
//!
//! Halfway through the capture a DIP-pool update (remove the first VIP's
//! first DIP) is injected, so the PCC check exercises the paper's central
//! guarantee: connections established before the update keep their DIP
//! while the pool changes underneath them. The digests are deterministic
//! for a given capture, so CI pins the smoke capture's decision digest.

use silkroad::{DataPath, ForwardDecision, MultiPipeSwitch, PoolUpdate, SilkRoadConfig};
use sr_types::{Addr, AddrFamily, Dip, Nanos, PacketMeta, RewriteMode, Vip};
use sr_wire::{parse_frame, rewrite_frame, verify_checksums, Parsed, PcapReader, ENCAP_HEADROOM};
use std::collections::{BTreeSet, HashMap, HashSet};

/// DIPs registered per discovered VIP (pools are synthesized from the
/// workload address plan, so tests can reconstruct them independently).
pub const DIPS_PER_VIP: u32 = 8;
/// Frames per engine batch.
const BATCH: usize = 1_024;
/// Largest frame the rewrite buffer accommodates (pcap snap length).
const MAX_FRAME: usize = 65_535 + ENCAP_HEADROOM;

/// One replay run's results: throughput, correctness counters, digests.
#[derive(Clone, Debug)]
pub struct ReplayReport {
    /// Pipes in the engine.
    pub pipes: usize,
    /// Rewrite mode applied to forwarded frames.
    pub mode: RewriteMode,
    /// Frames in the capture.
    pub frames: u64,
    /// Frames that failed to parse (skipped).
    pub parse_errors: u64,
    /// Unique connections (5-tuples) seen.
    pub conns: u64,
    /// VIPs discovered (unique destination endpoints).
    pub vips: u64,
    /// Capture bytes in.
    pub bytes_in: u64,
    /// Rewritten bytes out (encap grows frames, NAT preserves length).
    pub bytes_out: u64,
    /// Frames rewritten toward a DIP.
    pub rewritten: u64,
    /// Frames with no rewrite (dropped / not-VIP decisions).
    pub skipped: u64,
    /// Rewritten frames whose checksums failed full recomputation.
    pub checksum_failures: u64,
    /// Packets whose DIP differed from their flow's pinned DIP.
    pub pcc_violations: u64,
    /// Frame index where the DIP-pool update was injected.
    pub update_at: u64,
    /// Timed-pass duration, nanoseconds.
    pub elapsed_ns: u64,
    /// Timed-pass throughput, packets/s.
    pub pps: f64,
    /// FNV-1a digest of the decision stream (path, DIP, version).
    pub decision_digest: u64,
    /// FNV-1a digest of every rewritten output frame's bytes.
    pub rewrite_digest: u64,
    /// ConnTable hits during the verification pass.
    pub conn_table_hits: u64,
    /// VIPTable miss-path packets during the verification pass.
    pub vip_table_misses: u64,
    /// SYNs redirected to software during the verification pass.
    pub syn_redirects: u64,
    /// Cores on the host that ran the replay.
    pub host_cores: usize,
    /// Peak resident set of the process (`None` off-Linux).
    pub peak_rss_bytes: Option<u64>,
}

impl ReplayReport {
    /// Whether the replay was fully correct.
    pub fn ok(&self) -> bool {
        self.parse_errors == 0 && self.checksum_failures == 0 && self.pcc_violations == 0
    }

    /// Render as the `BENCH_replay.json` document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"bench\": \"replay\",\n");
        s.push_str(&format!("  \"pipes\": {},\n", self.pipes));
        s.push_str(&format!("  \"mode\": \"{}\",\n", self.mode.label()));
        s.push_str(&format!("  \"frames\": {},\n", self.frames));
        s.push_str(&format!("  \"parse_errors\": {},\n", self.parse_errors));
        s.push_str(&format!("  \"conns\": {},\n", self.conns));
        s.push_str(&format!("  \"vips\": {},\n", self.vips));
        s.push_str(&format!("  \"bytes_in\": {},\n", self.bytes_in));
        s.push_str(&format!("  \"bytes_out\": {},\n", self.bytes_out));
        s.push_str(&format!("  \"rewritten\": {},\n", self.rewritten));
        s.push_str(&format!("  \"skipped\": {},\n", self.skipped));
        s.push_str(&format!(
            "  \"checksum_failures\": {},\n",
            self.checksum_failures
        ));
        s.push_str(&format!("  \"pcc_violations\": {},\n", self.pcc_violations));
        s.push_str(&format!("  \"update_at\": {},\n", self.update_at));
        s.push_str(&format!("  \"elapsed_ns\": {},\n", self.elapsed_ns));
        s.push_str(&format!("  \"pps\": {:.0},\n", self.pps));
        s.push_str(&format!(
            "  \"decision_digest\": \"{:016x}\",\n",
            self.decision_digest
        ));
        s.push_str(&format!(
            "  \"rewrite_digest\": \"{:016x}\",\n",
            self.rewrite_digest
        ));
        s.push_str(&format!(
            "  \"conn_table_hits\": {},\n",
            self.conn_table_hits
        ));
        s.push_str(&format!(
            "  \"vip_table_misses\": {},\n",
            self.vip_table_misses
        ));
        s.push_str(&format!("  \"syn_redirects\": {},\n", self.syn_redirects));
        s.push_str(&format!("  \"host_cores\": {},\n", self.host_cores));
        s.push_str(&format!(
            "  \"peak_rss_bytes\": {},\n",
            crate::rss::rss_json(self.peak_rss_bytes)
        ));
        s.push_str(&format!("  \"ok\": {}\n", self.ok()));
        s.push_str("}\n");
        s
    }
}

/// FNV-1a 64-bit fold.
#[derive(Clone, Copy, Debug)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u8(&mut self, b: u8) {
        self.write(&[b]);
    }
}

/// The synthetic DIP pool registered for the `i`-th discovered VIP.
/// Reuses the workload generator's address plan so pool membership is a
/// pure function of the capture.
fn pool_for(vip_index: u32, family: AddrFamily) -> Vec<Dip> {
    (0..DIPS_PER_VIP)
        .map(|d| sr_workload::trace::dip_addr(family, vip_index, d))
        .collect()
}

/// One parsed capture, ready to stream.
struct Capture<'a> {
    /// (timestamp, parse result, raw frame) per record, capture order.
    recs: Vec<(Nanos, Option<Parsed>, &'a [u8])>,
    /// Discovered VIPs (sorted destination endpoints) with their pools.
    vips: Vec<(Vip, Vec<Dip>)>,
    frames: u64,
    parse_errors: u64,
    conns: u64,
    bytes_in: u64,
}

fn scan(bytes: &[u8]) -> Result<Capture<'_>, String> {
    let reader = PcapReader::new(bytes).map_err(|e| format!("pcap: {e}"))?;
    let mut recs = Vec::new();
    let mut dsts: BTreeSet<Addr> = BTreeSet::new();
    let mut tuples: HashSet<Vec<u8>> = HashSet::new();
    let mut frames = 0u64;
    let mut parse_errors = 0u64;
    let mut bytes_in = 0u64;
    for rec in reader {
        let rec = rec.map_err(|e| format!("pcap record {frames}: {e}"))?;
        frames += 1;
        bytes_in += rec.data.len() as u64;
        match parse_frame(rec.data) {
            Ok(p) => {
                dsts.insert(p.meta.tuple.dst);
                tuples.insert(p.meta.tuple.key_bytes());
                recs.push((rec.ts, Some(p), rec.data));
            }
            Err(_) => {
                parse_errors += 1;
                recs.push((rec.ts, None, rec.data));
            }
        }
    }
    let vips = dsts
        .iter()
        .enumerate()
        .map(|(i, a)| (Vip(*a), pool_for(i as u32, a.family())))
        .collect();
    Ok(Capture {
        recs,
        vips,
        frames,
        parse_errors,
        conns: tuples.len() as u64,
        bytes_in,
    })
}

fn build_switch(cap: &Capture<'_>, pipes: usize) -> Result<MultiPipeSwitch, String> {
    let cfg = SilkRoadConfig {
        conn_capacity: (cap.conns as usize * 2).max(4_096),
        // Wide digests keep the replay's decision stream free of
        // collision noise, as in the saturation sweep.
        digest_bits: 24,
        transit_bytes: 4_096,
        ..Default::default()
    };
    let mut sw = MultiPipeSwitch::inline(cfg, pipes);
    for (vip, dips) in &cap.vips {
        sw.add_vip(*vip, dips.clone())
            .map_err(|e| format!("add_vip: {e:?}"))?;
    }
    Ok(sw)
}

/// Stream the capture through `sw` batch by batch, invoking `sink` for
/// every (frame index, timestamp, parsed, raw frame, decision). Injects
/// the mid-capture DIP-pool update at the batch boundary nearest
/// `update_at`. Returns nothing the sink didn't keep.
fn stream<'a>(
    cap: &Capture<'a>,
    sw: &mut MultiPipeSwitch,
    update_at: u64,
    mut sink: impl FnMut(u64, Nanos, &Parsed, &'a [u8], &ForwardDecision),
) {
    let (update_vip, update_dip) = match cap.vips.first() {
        Some((v, dips)) => (Some(*v), dips.first().copied()),
        None => (None, None),
    };
    let mut batch_meta: Vec<PacketMeta> = Vec::with_capacity(BATCH);
    let mut batch_idx: Vec<usize> = Vec::with_capacity(BATCH);
    let mut decisions: Vec<ForwardDecision> = Vec::with_capacity(BATCH);
    let mut injected = false;
    let mut i = 0usize;
    while i < cap.recs.len() {
        let end = (i + BATCH).min(cap.recs.len());
        batch_meta.clear();
        batch_idx.clear();
        decisions.clear();
        let now = cap.recs[i].0;
        if !injected && i as u64 >= update_at {
            if let (Some(v), Some(d)) = (update_vip, update_dip) {
                // Ignore scheduling conflicts (another update in flight
                // cannot happen here; there is exactly one).
                let _ = sw.request_update(v, PoolUpdate::Remove(d), now);
            }
            injected = true;
        }
        sw.advance(now);
        for (ts_p, parsed, _) in &cap.recs[i..end] {
            let _ = ts_p;
            if let Some(p) = parsed {
                batch_idx.push(batch_meta.len());
                batch_meta.push(p.meta);
            } else {
                batch_idx.push(usize::MAX);
            }
        }
        sw.process_batch_into(&batch_meta, now, &mut decisions);
        for (off, (ts, parsed, raw)) in cap.recs[i..end].iter().enumerate() {
            let Some(p) = parsed else { continue };
            let Some(&di) = batch_idx.get(off) else {
                continue;
            };
            let Some(d) = decisions.get(di) else {
                continue;
            };
            sink((i + off) as u64, *ts, p, raw, d);
        }
        i = end;
    }
}

/// Replay `bytes` (a classic pcap capture) through a `pipes`-pipe switch,
/// rewriting every forwarded frame in `mode`.
#[allow(clippy::disallowed_methods)] // wall-clock is the point of a bench
pub fn replay(bytes: &[u8], pipes: usize, mode: RewriteMode) -> Result<ReplayReport, String> {
    let cap = scan(bytes)?;
    let update_at = cap.frames / 2;

    // Timed pass: parse already done (zero-copy scan); steer + resolve +
    // rewrite is what we meter. Rewrite output goes to one reused buffer.
    let mut sw = build_switch(&cap, pipes)?;
    let mut out = vec![0u8; MAX_FRAME];
    let mut bytes_out = 0u64;
    let mut rewritten = 0u64;
    let mut skipped = 0u64;
    let t0 = std::time::Instant::now();
    stream(&cap, &mut sw, update_at, |_, _, p, raw, d| {
        match d.rewrite_op(mode) {
            Some(op) => match rewrite_frame(raw, &p.view, &op, &mut out) {
                Ok(n) => {
                    bytes_out += n as u64;
                    rewritten += 1;
                }
                Err(_) => skipped += 1,
            },
            None => skipped += 1,
        }
    });
    let elapsed_ns = t0.elapsed().as_nanos() as u64;

    // Verification pass: fresh switch, same stream; digests, full
    // checksum recomputation, and the PCC ledger.
    let mut sw2 = build_switch(&cap, pipes)?;
    let mut decision_digest = Fnv::new();
    let mut rewrite_digest = Fnv::new();
    let mut checksum_failures = 0u64;
    let mut pcc_violations = 0u64;
    let mut pinned: HashMap<Vec<u8>, Addr> = HashMap::new();
    let mut out2 = vec![0u8; MAX_FRAME];
    let mut addr_buf = [0u8; 18];
    stream(&cap, &mut sw2, update_at, |_, _, p, raw, d| {
        // Decision digest: path, DIP endpoint, pool version, hit flag.
        decision_digest.write_u8(match d.path {
            DataPath::AsicConnTable => 0,
            DataPath::AsicVipTable => 1,
            DataPath::SoftwareRedirect => 2,
            DataPath::Dropped => 3,
            DataPath::NotVip => 4,
        });
        if let Some(dip) = d.dip {
            let n = dip.0.encode_to(&mut addr_buf, 0);
            decision_digest.write(&addr_buf[..n]);
        }
        if let Some(v) = d.version {
            decision_digest.write(&v.0.to_be_bytes());
        }
        decision_digest.write_u8(u8::from(d.conn_table_hit));

        // PCC ledger: a flow's first resolved DIP is binding.
        if let Some(dip) = d.dip {
            let key = p.meta.tuple.key_bytes();
            match pinned.get(&key) {
                None => {
                    pinned.insert(key, dip.0);
                }
                Some(prev) if *prev != dip.0 => pcc_violations += 1,
                Some(_) => {}
            }
        }

        // Rewrite + independent full-recompute checksum validation.
        if let Some(op) = d.rewrite_op(mode) {
            if let Ok(n) = rewrite_frame(raw, &p.view, &op, &mut out2) {
                rewrite_digest.write(&out2[..n]);
                if verify_checksums(&out2[..n]).is_err() {
                    checksum_failures += 1;
                }
            } else {
                checksum_failures += 1;
            }
        }
    });
    let stats = sw2.stats();

    let secs = (elapsed_ns as f64 / 1e9).max(1e-9);
    Ok(ReplayReport {
        pipes,
        mode,
        frames: cap.frames,
        parse_errors: cap.parse_errors,
        conns: cap.conns,
        vips: cap.vips.len() as u64,
        bytes_in: cap.bytes_in,
        bytes_out,
        rewritten,
        skipped,
        checksum_failures,
        pcc_violations,
        update_at,
        elapsed_ns,
        pps: cap.frames as f64 / secs,
        decision_digest: decision_digest.0,
        rewrite_digest: rewrite_digest.0,
        conn_table_hits: stats.conn_table_hits,
        vip_table_misses: stats.vip_table_misses,
        syn_redirects: stats.syn_repairs + stats.transit_syn_redirects,
        host_cores: sr_exec::available_cores(),
        peak_rss_bytes: crate::rss::peak_rss_bytes(),
    })
}

/// The deterministic trace profile `repro export` materializes.
///
/// The smoke profile is small enough for CI (a few thousand frames) and
/// is pinned byte-for-byte as `crates/bench/golden/replay_smoke.pcap`;
/// the full profile produces the 100K+-frame capture behind the
/// committed `BENCH_replay.json`.
pub fn export_profile(smoke: bool) -> sr_workload::TraceConfig {
    use sr_types::Duration;
    let mut cfg = sr_workload::TraceConfig {
        vips: 4,
        dips_per_vip: DIPS_PER_VIP,
        new_conns_per_min: 600.0,
        median_flow_secs: 5.0,
        flow_sigma: 0.8,
        median_rate_bps: 100_000.0,
        rate_sigma: 0.5,
        median_pkt_bytes: 800.0,
        pkt_sigma: 0.35,
        updates_per_min: 0.0,
        shared_dip_upgrades: false,
        duration: Duration::from_secs(30),
        family: AddrFamily::V4,
        seed: 0x0051_1c0a,
    };
    if !smoke {
        cfg.vips = 16;
        cfg.new_conns_per_min = 20_000.0;
        cfg.duration = Duration::from_secs(60);
    }
    cfg
}

/// Data frames per flow in exported captures (SYN and FIN ride on top).
pub const EXPORT_DATA_PKTS: u32 = 4;

#[cfg(test)]
mod tests {
    use super::*;
    use sr_wire::{export_trace, PcapWriter};

    fn smoke_pcap() -> Vec<u8> {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        export_trace(&export_profile(true), EXPORT_DATA_PKTS, &mut w, |_, _| {}).unwrap();
        w.finish().unwrap()
    }

    #[test]
    fn smoke_replay_is_clean_and_deterministic() {
        let pcap = smoke_pcap();
        let a = replay(&pcap, 2, RewriteMode::Nat).unwrap();
        assert!(a.ok(), "{}", a.to_json());
        assert_eq!(a.parse_errors, 0);
        assert!(a.frames > 500, "frames {}", a.frames);
        assert_eq!(a.rewritten + a.skipped, a.frames);
        assert!(a.rewritten > 0);
        let b = replay(&pcap, 2, RewriteMode::Nat).unwrap();
        assert_eq!(a.decision_digest, b.decision_digest);
        assert_eq!(a.rewrite_digest, b.rewrite_digest);
    }

    #[test]
    fn decision_digest_is_pipe_invariant() {
        let pcap = smoke_pcap();
        let one = replay(&pcap, 1, RewriteMode::Nat).unwrap();
        let four = replay(&pcap, 4, RewriteMode::Nat).unwrap();
        assert_eq!(one.decision_digest, four.decision_digest);
        assert_eq!(one.rewrite_digest, four.rewrite_digest);
        assert!(four.ok());
    }

    #[test]
    fn encap_mode_grows_frames_and_stays_valid() {
        let pcap = smoke_pcap();
        let nat = replay(&pcap, 2, RewriteMode::Nat).unwrap();
        let enc = replay(&pcap, 2, RewriteMode::Encap).unwrap();
        assert!(enc.ok(), "{}", enc.to_json());
        assert_eq!(nat.rewritten, enc.rewritten);
        assert_eq!(
            enc.bytes_out,
            nat.bytes_out + nat.rewritten * sr_types::frame::IPV4_HDR_LEN as u64
        );
        assert_ne!(nat.rewrite_digest, enc.rewrite_digest);
        // The forwarding decisions do not depend on the carrier mode.
        assert_eq!(nat.decision_digest, enc.decision_digest);
    }

    #[test]
    fn report_json_shape() {
        let pcap = smoke_pcap();
        let r = replay(&pcap, 1, RewriteMode::Nat).unwrap();
        let json = r.to_json();
        for key in [
            "\"bench\": \"replay\"",
            "\"decision_digest\"",
            "\"rewrite_digest\"",
            "\"pcc_violations\": 0",
            "\"host_cores\"",
            "\"peak_rss_bytes\"",
            "\"ok\": true",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
