//! Resilient hashing (§7, "Handle DIP failures").
//!
//! Fixed-function switches offer "resilient ECMP": a fixed-size indirection
//! table maps hash buckets to members. When a member fails, only that
//! member's buckets are remapped (to surviving members); all other flows
//! keep their assignment. The paper suggests this as an alternative to
//! allocating a new DIP-pool version on failure.

use crate::hasher::HashFn;

/// A resilient-hashing indirection table.
#[derive(Clone, Debug)]
pub struct ResilientTable {
    /// `slots[i] = member index`, `usize::MAX` when unassigned.
    slots: Vec<usize>,
    /// Liveness per member.
    alive: Vec<bool>,
    select: HashFn,
    redistribute: HashFn,
}

impl ResilientTable {
    /// Build a table of `slots` buckets over `members` initially-live
    /// members, assigned round-robin from a hashed start (balanced and
    /// deterministic).
    pub fn new(members: usize, slots: usize, seed: u64) -> ResilientTable {
        let slots_n = slots.max(members.max(1));
        let mut slot_vec = vec![usize::MAX; slots_n];
        if members > 0 {
            for (i, s) in slot_vec.iter_mut().enumerate() {
                *s = i % members;
            }
        }
        ResilientTable {
            slots: slot_vec,
            alive: vec![true; members],
            select: HashFn::new(seed ^ 0x7e51),
            redistribute: HashFn::new(seed ^ 0x7e52),
        }
    }

    /// Number of member positions (live or dead).
    pub fn members(&self) -> usize {
        self.alive.len()
    }

    /// Number of live members.
    pub fn live_members(&self) -> usize {
        self.alive.iter().filter(|a| **a).count()
    }

    /// Select the member for a flow key, or `None` if no live members.
    pub fn select(&self, flow_key: &[u8]) -> Option<usize> {
        if self.slots.is_empty() {
            return None;
        }
        let slot = (self.select.hash(flow_key) % self.slots.len() as u64) as usize;
        let m = self.slots[slot];
        if m == usize::MAX {
            None
        } else {
            Some(m)
        }
    }

    /// Mark a member failed, remapping *only its slots* onto live members.
    /// Returns the number of remapped slots.
    pub fn fail_member(&mut self, member: usize) -> usize {
        if member >= self.alive.len() || !self.alive[member] {
            return 0;
        }
        self.alive[member] = false;
        let live: Vec<usize> = (0..self.alive.len()).filter(|&m| self.alive[m]).collect();
        let mut remapped = 0;
        for (i, s) in self.slots.iter_mut().enumerate() {
            if *s == member {
                *s = if live.is_empty() {
                    usize::MAX
                } else {
                    // Deterministic per-slot spread across survivors.
                    live[(self.redistribute.hash_u64(i as u64) % live.len() as u64) as usize]
                };
                remapped += 1;
            }
        }
        remapped
    }

    /// Revive a member (e.g. a DIP finishing its rolling reboot), giving it
    /// back approximately its fair share of slots. Only slots are taken from
    /// over-loaded members, so unaffected flows stay put.
    pub fn revive_member(&mut self, member: usize) -> usize {
        if member >= self.alive.len() || self.alive[member] {
            return 0;
        }
        self.alive[member] = true;
        let live = self.live_members();
        let fair = self.slots.len() / live;
        // Count current ownership.
        let mut owned = vec![0usize; self.alive.len()];
        for &s in &self.slots {
            if s != usize::MAX {
                owned[s] += 1;
            }
        }
        let mut taken = 0;
        for (i, s) in self.slots.iter_mut().enumerate() {
            if taken >= fair {
                break;
            }
            match *s {
                usize::MAX => {
                    *s = member;
                    taken += 1;
                }
                owner
                    if owner != member && owned[owner] > fair
                    // Take deterministically-spread slots from the rich.
                    && self.redistribute.hash_u64(i as u64).is_multiple_of(2) =>
                {
                    owned[owner] -= 1;
                    *s = member;
                    taken += 1;
                }
                _ => {}
            }
        }
        taken
    }

    /// Ownership share per member (diagnostic).
    pub fn ownership(&self) -> Vec<f64> {
        let mut counts = vec![0usize; self.alive.len()];
        for &s in &self.slots {
            if s != usize::MAX {
                counts[s] += 1;
            }
        }
        counts
            .into_iter()
            .map(|c| c as f64 / self.slots.len() as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_in_range() {
        let t = ResilientTable::new(4, 256, 0);
        for i in 0..100u32 {
            let m = t.select(&i.to_be_bytes()).unwrap();
            assert!(m < 4);
        }
    }

    #[test]
    fn failure_only_moves_failed_members_flows() {
        let mut t = ResilientTable::new(8, 1024, 1);
        let flows: Vec<Vec<u8>> = (0..5000u32).map(|i| i.to_be_bytes().to_vec()).collect();
        let before: Vec<usize> = flows.iter().map(|f| t.select(f).unwrap()).collect();
        t.fail_member(3);
        for (f, &b) in flows.iter().zip(&before) {
            let a = t.select(f).unwrap();
            if b != 3 {
                assert_eq!(a, b, "flow moved although its member survived");
            } else {
                assert_ne!(a, 3, "flow still routed to failed member");
            }
        }
    }

    #[test]
    fn all_members_fail() {
        let mut t = ResilientTable::new(2, 16, 0);
        t.fail_member(0);
        t.fail_member(1);
        assert_eq!(t.select(b"x"), None);
        assert_eq!(t.live_members(), 0);
    }

    #[test]
    fn double_fail_is_noop() {
        let mut t = ResilientTable::new(4, 64, 0);
        assert!(t.fail_member(1) > 0);
        assert_eq!(t.fail_member(1), 0);
        assert_eq!(t.fail_member(99), 0);
    }

    #[test]
    fn revive_restores_share() {
        let mut t = ResilientTable::new(4, 1024, 7);
        t.fail_member(2);
        assert_eq!(t.ownership()[2], 0.0);
        let taken = t.revive_member(2);
        assert!(taken > 0);
        let share = t.ownership()[2];
        assert!(share > 0.1, "revived member owns only {share}");
        assert_eq!(t.revive_member(2), 0, "double revive should be a no-op");
    }

    #[test]
    fn initial_balance() {
        let t = ResilientTable::new(4, 1024, 0);
        for share in t.ownership() {
            assert!((share - 0.25).abs() < 0.01);
        }
    }
}
