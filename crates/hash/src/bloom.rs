//! Bloom filter — the membership structure behind TransitTable (§4.3).
//!
//! On the ASIC this lives in *transactional memory* (register arrays):
//! read-check-modify-write completes in one clock cycle, so unlike the
//! cuckoo ConnTable it needs no CPU involvement and can absorb new
//! connections at line rate during a DIP-pool update. The price is false
//! positives, which the paper keeps negligible with just 256 bytes.

use crate::hasher::HashFn;

/// A plain bitset bloom filter with `k` hash functions.
///
/// ```
/// use sr_hash::BloomFilter;
/// let mut f = BloomFilter::new(256, 4, 42);
/// f.insert(b"pending-conn");
/// assert!(f.contains(b"pending-conn"));   // never a false negative
/// f.clear();                              // step 3 of the PCC update
/// assert!(!f.contains(b"pending-conn"));
/// ```
#[derive(Clone, Debug)]
pub struct BloomFilter {
    bits: Vec<u64>,
    nbits: usize,
    hashes: Vec<HashFn>,
    inserted: u64,
}

impl BloomFilter {
    /// Create a filter of `bytes` size with `k` hash functions.
    ///
    /// `bytes` is clamped to at least 1 (the paper sweeps 8 B – 256 B).
    pub fn new(bytes: usize, k: usize, seed: u64) -> BloomFilter {
        let bytes = bytes.max(1);
        let nbits = bytes * 8;
        BloomFilter {
            bits: vec![0u64; bytes.div_ceil(8)],
            nbits,
            hashes: HashFn::family(seed ^ 0xb100_f11e, k.max(1)),
            inserted: 0,
        }
    }

    /// Size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.nbits / 8
    }

    /// Number of hash functions.
    pub fn k(&self) -> usize {
        self.hashes.len()
    }

    /// Number of `insert` calls since the last `clear`.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// The k hash functions, in the order [`BloomFilter::insert_hashed`] and
    /// [`BloomFilter::contains_hashed`] expect their outputs.
    pub fn hash_fns(&self) -> &[HashFn] {
        &self.hashes
    }

    /// Map one 64-bit hash output to a bit index below `nbits`
    /// (multiply-shift scaling, same rationale as `ecmp_select`). The
    /// result is always `< nbits`, so the word accessors below never miss.
    fn bit_index(nbits: usize, h: u64) -> usize {
        ((h as u128 * nbits as u128) >> 64) as usize
    }

    /// Set bit `p` (hot path: `p` is in range by construction).
    fn set_bit(&mut self, p: usize) {
        if let Some(w) = self.bits.get_mut(p / 64) {
            *w |= 1u64 << (p % 64);
        }
    }

    /// Test bit `p`.
    fn test_bit(&self, p: usize) -> bool {
        self.bits
            .get(p / 64)
            .is_some_and(|w| w & (1u64 << (p % 64)) != 0)
    }

    /// Insert a key.
    pub fn insert(&mut self, key: &[u8]) {
        for i in 0..self.hashes.len() {
            let Some(f) = self.hashes.get(i) else { break };
            let p = Self::bit_index(self.nbits, f.hash(key));
            self.set_bit(p);
        }
        self.inserted += 1;
    }

    /// Query membership. May return true for keys never inserted (false
    /// positive); never returns false for an inserted key.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.hashes
            .iter()
            .all(|h| self.test_bit(Self::bit_index(self.nbits, h.hash(key))))
    }

    /// [`BloomFilter::insert`] from precomputed hashes: `hashes[i]` must be
    /// the output of `self.hash_fns()[i]` over the key.
    ///
    /// # Panics
    /// If `hashes.len() != self.k()`.
    pub fn insert_hashed(&mut self, hashes: &[u64]) {
        assert_eq!(hashes.len(), self.hashes.len(), "insert_hashed: wrong k");
        for &h in hashes {
            let p = Self::bit_index(self.nbits, h);
            self.set_bit(p);
        }
        self.inserted += 1;
    }

    /// [`BloomFilter::contains`] from precomputed hashes (same contract as
    /// [`BloomFilter::insert_hashed`]).
    pub fn contains_hashed(&self, hashes: &[u64]) -> bool {
        assert_eq!(hashes.len(), self.hashes.len(), "contains_hashed: wrong k");
        hashes
            .iter()
            .all(|&h| self.test_bit(Self::bit_index(self.nbits, h)))
    }

    /// Reset to empty (step 3 of the PCC update protocol).
    pub fn clear(&mut self) {
        self.bits.fill(0);
        self.inserted = 0;
    }

    /// Fraction of bits currently set.
    pub fn fill_ratio(&self) -> f64 {
        let set: u32 = self.bits.iter().map(|w| w.count_ones()).sum();
        set as f64 / self.nbits as f64
    }

    /// Analytic false-positive probability after `n` inserts:
    /// `(1 - e^{-kn/m})^k`.
    pub fn theoretical_fp_rate(&self, n: u64) -> f64 {
        let k = self.k() as f64;
        let m = self.nbits as f64;
        (1.0 - (-(k * n as f64) / m).exp()).powf(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u32) -> Vec<u8> {
        i.to_be_bytes().to_vec()
    }

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::new(256, 4, 1);
        for i in 0..100 {
            f.insert(&key(i));
        }
        for i in 0..100 {
            assert!(f.contains(&key(i)), "false negative for {i}");
        }
    }

    #[test]
    fn clear_resets() {
        let mut f = BloomFilter::new(64, 4, 1);
        f.insert(&key(1));
        assert!(f.contains(&key(1)));
        assert_eq!(f.inserted(), 1);
        f.clear();
        assert!(!f.contains(&key(1)));
        assert_eq!(f.inserted(), 0);
        assert_eq!(f.fill_ratio(), 0.0);
    }

    #[test]
    fn fp_rate_close_to_theory() {
        // 256-byte filter (2048 bits), k=4, 100 inserted: theory ~2.6e-4.
        let mut f = BloomFilter::new(256, 4, 7);
        for i in 0..100 {
            f.insert(&key(i));
        }
        let probes = 100_000u32;
        let fps = (1000..1000 + probes)
            .filter(|i| f.contains(&key(*i)))
            .count();
        let measured = fps as f64 / probes as f64;
        let theory = f.theoretical_fp_rate(100);
        assert!(
            measured < theory * 5.0 + 1e-3,
            "measured {measured} vs theory {theory}"
        );
    }

    #[test]
    fn tiny_filter_saturates() {
        // 8-byte filter with many inserts becomes mostly-true — this is the
        // regime Fig 18 probes.
        let mut f = BloomFilter::new(8, 2, 3);
        for i in 0..500 {
            f.insert(&key(i));
        }
        assert!(f.fill_ratio() > 0.9);
        let fps = (10_000..11_000).filter(|i| f.contains(&key(*i))).count();
        assert!(fps > 500, "expected heavy false positives, got {fps}/1000");
    }

    #[test]
    fn size_clamped_and_reported() {
        let f = BloomFilter::new(0, 0, 0);
        assert_eq!(f.size_bytes(), 1);
        assert_eq!(f.k(), 1);
        assert_eq!(BloomFilter::new(256, 4, 0).size_bytes(), 256);
    }

    #[test]
    fn hashed_variants_match_byte_variants() {
        let mut a = BloomFilter::new(256, 4, 9);
        let mut b = BloomFilter::new(256, 4, 9);
        let mut hashes = vec![0u64; a.k()];
        for i in 0..200u32 {
            let k = key(i);
            a.insert(&k);
            crate::hasher::hash_all(b.hash_fns(), &k, &mut hashes);
            b.insert_hashed(&hashes);
        }
        for i in 0..1000u32 {
            let k = key(i);
            crate::hasher::hash_all(a.hash_fns(), &k, &mut hashes);
            assert_eq!(a.contains(&k), b.contains(&k), "filters diverged at {i}");
            assert_eq!(a.contains(&k), a.contains_hashed(&hashes));
        }
        assert_eq!(a.inserted(), b.inserted());
        assert_eq!(a.fill_ratio(), b.fill_ratio());
    }

    #[test]
    fn theoretical_fp_monotone_in_n() {
        let f = BloomFilter::new(256, 4, 0);
        assert!(f.theoretical_fp_rate(10) < f.theoretical_fp_rate(100));
        assert!(f.theoretical_fp_rate(100) < f.theoretical_fp_rate(10_000));
    }
}
