//! Compact connection digests (§4.2).
//!
//! SilkRoad stores an n-bit hash digest of the 5-tuple in ConnTable instead
//! of the full key: 16 bits instead of 37 bytes for IPv6. Two connections
//! that land in the same cuckoo bucket *and* share a digest produce a false
//! positive, which the switch software repairs by relocating the resident
//! entry to a different pipeline stage.

use crate::hasher::HashFn;

/// An n-bit digest function (8..=32 bits).
#[derive(Clone, Copy, Debug)]
pub struct DigestFn {
    hash: HashFn,
    bits: u8,
}

impl DigestFn {
    /// Create a digest function of `bits` width (clamped to 8..=32).
    pub fn new(seed: u64, bits: u8) -> DigestFn {
        DigestFn {
            hash: HashFn::new(seed ^ 0x00d1_6e57),
            bits: bits.clamp(8, 32),
        }
    }

    /// The digest width in bits.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Number of distinct digest values.
    pub fn space(&self) -> u64 {
        1u64 << self.bits
    }

    /// Compute the digest of a key.
    pub fn digest(&self, key: &[u8]) -> u32 {
        self.digest_of(self.hash.hash(key))
    }

    /// Derive the digest from an already-computed 64-bit hash of the key
    /// (the output of [`DigestFn::hash_fn`] over the same bytes). The
    /// hash-once packet path computes that hash a single time and feeds it
    /// to every stage's digest.
    pub fn digest_of(&self, h: u64) -> u32 {
        // Take high bits: the low bits of the same hash are often consumed
        // by bucket addressing, and reusing them would correlate digest
        // collisions with bucket collisions.
        (h >> (64 - self.bits)) as u32
    }

    /// The underlying 64-bit hash function whose output [`DigestFn::digest_of`]
    /// truncates. Digest functions built from the same seed share it
    /// regardless of width.
    pub fn hash_fn(&self) -> HashFn {
        self.hash
    }

    /// Analytic false-positive probability for a lookup against one resident
    /// entry that shares the bucket: `2^-bits`.
    pub fn collision_probability(&self) -> f64 {
        1.0 / self.space() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_fits_width() {
        let d = DigestFn::new(1, 16);
        for i in 0u32..1000 {
            assert!(d.digest(&i.to_be_bytes()) < 1 << 16);
        }
    }

    #[test]
    fn width_clamped() {
        assert_eq!(DigestFn::new(0, 4).bits(), 8);
        assert_eq!(DigestFn::new(0, 60).bits(), 32);
        assert_eq!(DigestFn::new(0, 24).bits(), 24);
    }

    #[test]
    fn deterministic_and_seeded() {
        let a = DigestFn::new(5, 16);
        let b = DigestFn::new(6, 16);
        assert_eq!(a.digest(b"conn"), a.digest(b"conn"));
        assert_ne!(a.digest(b"conn"), b.digest(b"conn"));
    }

    #[test]
    fn collision_rate_matches_theory() {
        // With 12-bit digests and n random keys, expected pairwise collision
        // rate between a probe and a fixed resident is 2^-12.
        let d = DigestFn::new(9, 12);
        let n = 200_000u32;
        let mut counts = vec![0u32; 1 << 12];
        for i in 0..n {
            counts[d.digest(&i.to_be_bytes()) as usize] += 1;
        }
        // Chi-square-ish sanity: each of 4096 cells expects ~48.8.
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max < 110 && min > 10, "digest skew: min={min} max={max}");
        assert!((d.collision_probability() - 1.0 / 4096.0).abs() < 1e-12);
    }

    #[test]
    fn space() {
        assert_eq!(DigestFn::new(0, 16).space(), 65536);
    }

    #[test]
    fn digest_of_matches_digest() {
        for bits in [8u8, 12, 16, 24, 32] {
            let d = DigestFn::new(7, bits);
            for i in 0u32..500 {
                let key = i.to_be_bytes();
                let h = d.hash_fn().hash(&key);
                assert_eq!(d.digest_of(h), d.digest(&key));
            }
        }
    }

    #[test]
    fn same_seed_shares_hash_fn_across_widths() {
        // The per-stage hash-once derivation relies on this: one 64-bit
        // hash serves every stage width.
        assert_eq!(
            DigestFn::new(3, 16).hash_fn(),
            DigestFn::new(3, 24).hash_fn()
        );
    }
}
