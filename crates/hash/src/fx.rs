//! A fast, deterministic hasher for software-side maps on the packet path.
//!
//! The data plane consults several small `HashMap`s per packet (VIPTable,
//! per-VIP meters, per-VIP state for version resolution). `std`'s default
//! SipHash is keyed for HashDoS resistance, which these maps do not need:
//! their keys are operator-configured VIPs, not attacker-controlled
//! 5-tuples, and the tables hold at most a few thousand entries. A
//! multiply-rotate hash (the `FxHash` construction from the Firefox/rustc
//! lineage) cuts the per-lookup cost several-fold.
//!
//! Determinism is also a feature here: iteration order no longer varies
//! run-to-run, though nothing in the repo may *depend* on map order (the
//! repro figures were already byte-stable under `RandomState`'s per-process
//! random keys, which proves order independence).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the FxHash construction (a 64-bit odd constant with
/// well-mixed bits; the golden-ratio-derived value used by rustc).
const K: u64 = 0x517c_c1b7_2722_0a95;

/// A non-cryptographic multiply-rotate hasher.
///
/// Not HashDoS-resistant — only use for maps whose keys are not
/// attacker-controlled (VIPs, versions, internal identifiers).
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold the length in so "ab" + "c" != "a" + "bc".
            self.add(u64::from_le_bytes(tail) ^ (rest.len() as u64));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add(i as u64);
        self.add((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`] — for hot, trusted-key maps.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`] — for hot, trusted-key sets.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(bytes: &[u8]) -> u64 {
        let mut h = FxHasher::default();
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(hash_of(b"hello"), hash_of(b"hello"));
        assert_ne!(hash_of(b"hello"), hash_of(b"hellp"));
        assert_ne!(hash_of(b""), hash_of(b"\0"));
        // Chunk-boundary discrimination.
        assert_ne!(hash_of(b"12345678"), hash_of(b"1234567"));
        assert_ne!(hash_of(b"123456789"), hash_of(b"12345678"));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(format!("key-{i}"), i);
        }
        for i in 0..1000u32 {
            assert_eq!(m.get(&format!("key-{i}")), Some(&i));
        }
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }
}
