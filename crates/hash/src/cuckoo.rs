//! Multi-stage cuckoo exact-match table (§4.1).
//!
//! Modern switching ASICs instantiate large exact-match tables across
//! multiple physical pipeline stages. Each stage owns a slab of SRAM divided
//! into *words*; word packing puts several entries in one word (SilkRoad
//! packs four 28-bit ConnTable entries per 112-bit word). Each stage hashes
//! the key with its own hash function to select one word, and all entries in
//! the word are compared in parallel.
//!
//! Insertion is a *software* job: the switch CPU runs a breadth-first search
//! over eviction paths ("a complex search algorithm (breadth-first graph
//! traversal) to find an empty slot") and sends the resulting move sequence
//! to the ASIC. This module implements the table and the BFS; the *timing*
//! of insertions (the 200 K/s CPU budget, learning-filter batching) is
//! modelled by `sr-asic`'s switch CPU on top of this.
//!
//! The table supports two match modes:
//!
//! * [`MatchMode::FullKey`] — entries store the whole key (a conventional
//!   exact-match table; no false positives);
//! * [`MatchMode::Digest`] — entries store only an n-bit digest of the key
//!   (SilkRoad's ConnTable); a probe that finds an entry with an equal
//!   digest in the probed word *hits*, even if the underlying key differs —
//!   that is the paper's false-positive case, repaired via
//!   [`CuckooTable::relocate`].

use crate::digest::DigestFn;
use crate::hasher::HashFn;
use std::collections::VecDeque;

/// Sentinel in the match-field plane for a vacant slot. Digest-mode match
/// fields are at most 32 bits wide, so they can never collide with it;
/// full-key fingerprints are clamped one below it by [`stored_mf`], which
/// is safe because full-key mode always verifies the stored key bytes on a
/// match-field hit.
const EMPTY_MF: u64 = u64::MAX;

/// Sentinel in the 16-bit match-field *plane* for a vacant slot.
/// [`plane_mf`] clamps stored values one below it.
const EMPTY_PLANE: u16 = u16::MAX;

/// The 16-bit plane image of a match field: a prefilter, not the decision.
/// A probe compares plane lanes first and confirms any lane hit against the
/// entry's full [`stored_mf`] value, so the accept set is exactly the full
/// comparison's — equal fields always have equal plane images, and unequal
/// plane images imply unequal fields. Sixteen bits keep the scanned plane
/// four times denser than `u64` lanes (the paper's ConnTable digests are
/// 16 bits anyway), so the hot probe loop stays cache-resident.
fn plane_mf(mf: u64) -> u16 {
    let t = stored_mf(mf) as u16;
    if t == EMPTY_PLANE {
        EMPTY_PLANE - 1
    } else {
        t
    }
}

/// Longest key the table stores, in bytes. Covers a v6 5-tuple key
/// (37 bytes) with headroom. Keys are kept inline in the slot array so the
/// verify-on-hit compare reads the same cache lines as the entry itself
/// instead of chasing a per-entry heap pointer.
pub const MAX_KEY_LEN: usize = 40;

/// Stage-count bound for the probe's stack-resident word-index array
/// (tables with more stages fall back to the serial walk; the paper's
/// configurations use 2–4).
const MAX_PROBE_STAGES: usize = 8;

/// A key stored inline in its slot (no heap indirection).
#[derive(Clone, Copy, Debug)]
struct InlineKey {
    len: u8,
    buf: [u8; MAX_KEY_LEN],
}

impl InlineKey {
    fn new(key: &[u8]) -> InlineKey {
        assert!(
            key.len() <= MAX_KEY_LEN,
            "cuckoo keys are at most {MAX_KEY_LEN} bytes, got {}",
            key.len()
        );
        let mut buf = [0u8; MAX_KEY_LEN];
        buf[..key.len()].copy_from_slice(key);
        InlineKey {
            len: key.len() as u8,
            buf,
        }
    }

    #[inline]
    fn as_slice(&self) -> &[u8] {
        &self.buf[..self.len as usize]
    }
}

/// The canonical stored form of a match field: what a plane-lane hit is
/// confirmed against, and the domain [`plane_mf`] projects into.
fn stored_mf(mf: u64) -> u64 {
    mf.min(EMPTY_MF - 1)
}

/// How entries are matched against probe keys.
#[derive(Clone, Debug)]
pub enum MatchMode {
    /// Store and compare the full key. No false positives.
    FullKey,
    /// Store and compare only an n-bit digest (SilkRoad ConnTable mode).
    Digest {
        /// Digest width in bits (8..=32).
        bits: u8,
    },
    /// Per-stage digest widths (§7: "we can use different digest sizes in
    /// different stages to reduce the overall false positives") — one entry
    /// per stage, padded with the last value if shorter. Insertion prefers
    /// earlier stages, so put the wider digests first: entries land in
    /// low-false-positive stages while the table is lightly loaded.
    DigestPerStage {
        /// Digest width per stage, 8..=32 each.
        bits: Vec<u8>,
    },
}

/// Static geometry of a cuckoo table.
#[derive(Clone, Debug)]
pub struct CuckooConfig {
    /// Number of pipeline stages the table spans. Each stage has an
    /// independent bucket-hash function.
    pub stages: usize,
    /// Words (buckets) per stage.
    pub words_per_stage: usize,
    /// Entries packed into one word.
    pub entries_per_word: usize,
    /// Match mode (full key vs digest).
    pub match_mode: MatchMode,
    /// Seed from which all per-stage hash functions are derived.
    pub seed: u64,
    /// BFS limit: maximum eviction-path length.
    pub max_bfs_depth: usize,
    /// BFS limit: maximum nodes explored before declaring the table full.
    pub max_bfs_nodes: usize,
}

impl CuckooConfig {
    /// A table sized to hold at least `capacity` entries at ~`target_load`
    /// utilization, spread over `stages` stages.
    pub fn for_capacity(
        capacity: usize,
        stages: usize,
        entries_per_word: usize,
        seed: u64,
    ) -> CuckooConfig {
        let stages = stages.max(2);
        let entries_per_word = entries_per_word.max(1);
        // Size for ~95% achievable load factor (multi-way multi-stage cuckoo
        // packs well past 90%).
        let slots = (capacity as f64 / 0.95).ceil() as usize;
        let words_total = slots.div_ceil(entries_per_word);
        let words_per_stage = words_total.div_ceil(stages).max(1);
        CuckooConfig {
            stages,
            words_per_stage,
            entries_per_word,
            match_mode: MatchMode::Digest { bits: 16 },
            seed,
            max_bfs_depth: 8,
            max_bfs_nodes: 4096,
        }
    }

    /// Total entry slots.
    pub fn total_slots(&self) -> usize {
        self.stages * self.words_per_stage * self.entries_per_word
    }
}

/// One stored entry.
#[derive(Clone, Debug)]
struct Entry<V> {
    /// Full key, kept by the *software shadow* of the table — the paper:
    /// "The switch software has complete 5-tuple information for each
    /// entry". The ASIC itself matches only on `match_field`. Stored
    /// inline (max [`MAX_KEY_LEN`] bytes) so a probe's verify compare
    /// stays within the entry's own cache lines.
    key: InlineKey,
    /// What the ASIC compares: the full-key bytes hashed down to a digest,
    /// or a 64-bit fingerprint of the full key in `FullKey` mode (the model
    /// compares `key` exactly in that mode; the fingerprint accelerates it).
    match_field: u64,
    /// Per-entry hit bit, as real exact-match tables provide for idle
    /// aging: set by marking lookups, read and cleared by
    /// [`CuckooTable::retain_hits`].
    hit: bool,
    value: V,
}

/// Result of a lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LookupHit<'a, V> {
    /// Value of the entry that matched.
    pub value: &'a V,
    /// Full key of the *resident* entry that matched (software shadow
    /// information — used by the false-positive repair path to relocate
    /// the resident).
    pub resident_key: &'a [u8],
    /// Whether the stored full key equals the probe key. In digest mode a
    /// hit with `exact == false` is a *false positive*: the data plane
    /// cannot see this flag — the simulator uses it to model misdelivery
    /// and the SYN-repair path.
    pub exact: bool,
    /// Stage the hit was found in.
    pub stage: usize,
}

/// Outcome of a successful insert.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InsertOutcome {
    /// Number of resident entries the BFS had to move (0 = direct insert).
    pub moves: usize,
    /// Stage the new entry finally landed in.
    pub stage: usize,
}

/// Errors from table mutation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CuckooError {
    /// BFS could not find an empty slot within its limits: table full.
    Full,
    /// The key was already present (inserts must be preceded by a lookup).
    Duplicate,
    /// The key was not present.
    NotFound,
}

/// A multi-stage, word-packed cuckoo hash table.
///
/// ```
/// use sr_hash::cuckoo::{CuckooConfig, CuckooTable, MatchMode};
/// let mut t: CuckooTable<u32> = CuckooTable::new(
///     CuckooConfig::for_capacity(1_000, 4, 4, 7),
/// );
/// t.insert(b"conn-1", 99).unwrap();
/// let hit = t.lookup(b"conn-1").unwrap();
/// assert_eq!(*hit.value, 99);
/// assert!(hit.exact);
/// assert_eq!(t.remove(b"conn-1").unwrap(), 99);
/// ```
pub struct CuckooTable<V> {
    cfg: CuckooConfig,
    stage_hash: Vec<HashFn>,
    /// Per-stage digest function (None in full-key mode).
    digests: Option<Vec<DigestFn>>,
    fingerprint: HashFn,
    /// `slots[stage][word * entries_per_word + way]`
    slots: Vec<Vec<Option<Entry<V>>>>,
    /// Dense match-field plane mirroring `slots`: the ASIC's view of a
    /// word is its packed match fields, compared in parallel against the
    /// probe field. Keeping them in their own flat array means a probe
    /// touches one cache line per stage instead of `entries_per_word` full
    /// entry structs; the entry itself is only dereferenced on a
    /// match-field hit (and the hit confirmed against the full field — see
    /// [`plane_mf`]). `EMPTY_PLANE` marks vacant slots.
    mfs: Vec<Vec<u16>>,
    len: usize,
    /// Cumulative count of BFS-driven entry moves (for CPU-cost stats).
    total_moves: u64,
    /// Layout generation: bumped by every mutation that can move, add, or
    /// remove entries. A pipelined caller that located a slot with
    /// [`CuckooTable::locate_pre`] compares epochs to detect that its
    /// coordinates may have gone stale before resolving them.
    epoch: u64,
    /// Software-side index of resident keys by collision class (digest mode
    /// only). Stage digests are prefixes of one shared hash, so any two keys
    /// that alias at *any* stage share the narrowest-width digest; indexing
    /// by it makes "who could this entry shadow?" an O(class) question.
    alias: Option<AliasIndex>,
    /// Cumulative count of relocations performed by the resident-shadowing
    /// repair (see [`CuckooTable::shadow_repairs`]).
    shadow_repairs: u64,
    /// Shared mutation workspace (see [`InsertScratch`]).
    scratch: InsertScratch,
}

/// Resident keys grouped by narrowest-stage digest (see `CuckooTable.alias`).
/// Members are inline keys, a class whose last member leaves keeps its
/// (empty) slot, and the map is pre-sized for the worst case at
/// construction: class bookkeeping sits on the connection-setup path, and
/// both choices keep registering/deregistering a key off the allocator.
/// The retained footprint is bounded by the digest space (at most
/// `2^bits` classes) and the table capacity.
struct AliasIndex {
    digest: DigestFn,
    classes: crate::FxHashMap<u32, AliasClass>,
}

/// One digest-collision class. At realistic digest widths almost every
/// class holds one resident (~99.7% of inserts land in an empty class at
/// 24 bits) and two covers the stray birthday pair, so the first two
/// members live inline and the spill `Vec` is only allocated for a
/// three-way collision. Combined with the pre-reserved `classes` map,
/// registering a key on the connection-setup path stays off the
/// allocator.
#[derive(Default)]
struct AliasClass {
    /// First two members, oldest first; filled before `rest` is touched.
    inline: [Option<InlineKey>; 2],
    /// Spill for third-and-later members (three-way digest collisions are
    /// birthday-cubed rare), oldest first.
    rest: Vec<InlineKey>,
}

impl AliasClass {
    fn is_empty(&self) -> bool {
        self.inline[0].is_none()
    }

    /// Append a member, preserving insertion order (members always read
    /// oldest-first, so shadowing repair visits keys in the same order
    /// the old flat-`Vec` layout did).
    fn push(&mut self, key: InlineKey) {
        for slot in &mut self.inline {
            if slot.is_none() {
                *slot = Some(key);
                return;
            }
        }
        self.rest.push(key);
    }

    /// Drop every member equal to `key`, compacting survivors forward so
    /// the oldest-first order is maintained.
    fn retain_not(&mut self, key: &[u8]) {
        self.rest.retain(|k| k.as_slice() != key);
        for slot in &mut self.inline {
            if slot.is_some_and(|k| k.as_slice() == key) {
                *slot = None;
            }
        }
        if self.inline[0].is_none() {
            self.inline[0] = self.inline[1].take();
        }
        for slot in &mut self.inline {
            if slot.is_none() && !self.rest.is_empty() {
                *slot = Some(self.rest.remove(0));
            }
        }
    }

    /// Copy the members, oldest first, into `out`.
    fn extend_into(&self, out: &mut Vec<InlineKey>) {
        out.extend(self.inline.iter().flatten());
        out.extend_from_slice(&self.rest);
    }
}

/// One BFS node: a `(stage, slot)` whose resident the search would displace.
#[derive(Clone)]
struct Node {
    stage: usize,
    slot: usize,
    parent: usize, // index into the node arena, usize::MAX for roots
}

/// Reusable workspace for insertion, relocation, and the shadowing repair.
///
/// The BFS node arena, its frontier and visited set, and every key list the
/// repair plumbing used to allocate per insert live here instead. A mutating
/// call takes the workspace out of the table (`std::mem::take`) for its
/// duration and puts it back, so once the buffers have grown to their working
/// size, connection setup performs no per-insert heap allocation.
#[derive(Default)]
struct InsertScratch {
    /// BFS node arena.
    nodes: Vec<Node>,
    /// BFS frontier: (node index, depth).
    queue: VecDeque<(usize, usize)>,
    /// (stage, slot) positions already enqueued.
    visited: crate::FxHashSet<(usize, usize)>,
    /// Candidate word per stage for the entry being placed.
    cand: Vec<usize>,
    /// Keys displaced by the most recent BFS unwind.
    moved: Vec<InlineKey>,
    /// Shadowing-repair work queue: keys whose position just changed.
    touched: VecDeque<InlineKey>,
    /// Snapshot of one collision class while the repair relocates members.
    members: Vec<InlineKey>,
}

impl<V: Clone> CuckooTable<V> {
    /// Build an empty table.
    pub fn new(cfg: CuckooConfig) -> CuckooTable<V> {
        let stage_hash = HashFn::family(cfg.seed, cfg.stages);
        let digests: Option<Vec<DigestFn>> = match &cfg.match_mode {
            MatchMode::Digest { bits } => Some(
                (0..cfg.stages)
                    .map(|_| DigestFn::new(cfg.seed ^ 0xd1e5, *bits))
                    .collect(),
            ),
            MatchMode::DigestPerStage { bits } => Some(
                (0..cfg.stages)
                    .map(|i| {
                        let b = bits.get(i).or(bits.last()).copied().unwrap_or(16);
                        DigestFn::new(cfg.seed ^ 0xd1e5, b)
                    })
                    .collect(),
            ),
            MatchMode::FullKey => None,
        };
        let per_stage = cfg.words_per_stage * cfg.entries_per_word;
        let alias = digests.as_ref().map(|ds| {
            let bits = ds.iter().map(|d| d.bits()).min().unwrap_or(16);
            // Pre-size the class map for the worst case it can ever reach
            // (one class per resident, capped by the digest space), so
            // class registration on the connection-setup path never grows
            // the map mid-flight.
            let max_classes = (per_stage * cfg.stages).min(1usize << bits.min(31));
            AliasIndex {
                digest: DigestFn::new(cfg.seed ^ 0xd1e5, bits),
                classes: crate::FxHashMap::with_capacity_and_hasher(
                    max_classes,
                    Default::default(),
                ),
            }
        });
        CuckooTable {
            stage_hash,
            digests,
            fingerprint: HashFn::new(cfg.seed ^ 0xf19e),
            slots: (0..cfg.stages).map(|_| vec![None; per_stage]).collect(),
            mfs: (0..cfg.stages)
                .map(|_| vec![EMPTY_PLANE; per_stage])
                .collect(),
            len: 0,
            total_moves: 0,
            epoch: 0,
            alias,
            shadow_repairs: 0,
            scratch: InsertScratch::default(),
            cfg,
        }
    }

    /// The table geometry.
    pub fn config(&self) -> &CuckooConfig {
        &self.cfg
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Occupancy as a fraction of total slots.
    pub fn load_factor(&self) -> f64 {
        self.len as f64 / self.cfg.total_slots() as f64
    }

    /// Cumulative number of entry moves performed by BFS insertions.
    pub fn total_moves(&self) -> u64 {
        self.total_moves
    }

    fn word_of(&self, stage: usize, key: &[u8]) -> usize {
        self.word_from(self.stage_hash[stage].hash(key))
    }

    /// Map a stage-hash output to its word index (multiply-shift scaling,
    /// same rationale as `ecmp_select`).
    fn word_from(&self, h: u64) -> usize {
        ((h as u128 * self.cfg.words_per_stage as u128) >> 64) as usize
    }

    /// The per-stage bucket-hash functions, in stage order. A prehashed
    /// probe ([`CuckooTable::lookup_pre`]) supplies one output per function.
    pub fn stage_fns(&self) -> &[HashFn] {
        &self.stage_hash
    }

    /// The single hash function behind the match field: the shared digest
    /// hash in digest mode (every stage truncates the same 64-bit value to
    /// its own width), or the fingerprint in full-key mode.
    pub fn match_fn(&self) -> HashFn {
        match &self.digests {
            Some(ds) => {
                debug_assert!(ds.windows(2).all(|w| w[0].hash_fn() == w[1].hash_fn()));
                ds[0].hash_fn()
            }
            None => self.fingerprint,
        }
    }

    /// The ASIC-visible match field at a stage, from the precomputed output
    /// of [`CuckooTable::match_fn`] over the key.
    fn match_field_from(&self, stage: usize, match_hash: u64) -> u64 {
        match &self.digests {
            Some(ds) => ds[stage].digest_of(match_hash) as u64,
            None => match_hash,
        }
    }

    /// The ASIC-visible match field for a key *at a given stage*. In digest
    /// mode this is that stage's n-bit digest; in full-key mode a 64-bit
    /// fingerprint of the key (the model additionally compares the stored
    /// key bytes, so the fingerprint is only an accelerator and cannot
    /// cause false positives).
    fn match_field_at(&self, stage: usize, key: &[u8]) -> u64 {
        match &self.digests {
            Some(ds) => ds[stage].digest(key) as u64,
            None => self.fingerprint.hash(key),
        }
    }

    fn is_digest_mode(&self) -> bool {
        self.digests.is_some()
    }

    fn slot_range(&self, word: usize) -> std::ops::Range<usize> {
        let e = self.cfg.entries_per_word;
        word * e..(word + 1) * e
    }

    // srlint: hot-path begin
    /// Scan one word for a match-field hit; returns `(slot, exact)`. The
    /// scan reads the dense match-field plane — the ASIC compares a word's
    /// packed fields in parallel — and dereferences a full entry only on
    /// field equality. Full-key clamping (see [`stored_mf`]) can alias two
    /// fingerprints at the plane level; the key comparison disambiguates.
    fn probe_word(&self, stage: usize, word: usize, mf: u64, key: &[u8]) -> Option<(usize, bool)> {
        let probe64 = stored_mf(mf);
        let probe = plane_mf(mf);
        let mfs = &self.mfs[stage];
        for slot in self.slot_range(word) {
            if mfs[slot] != probe {
                continue;
            }
            let e = self.slots[stage][slot]
                .as_ref()
                .expect("match field set on vacant slot");
            // The plane lane is a 16-bit prefilter; confirm on the full
            // stored field before accepting (see `plane_mf`).
            if stored_mf(e.match_field) != probe64 {
                continue;
            }
            let exact = e.key.as_slice() == key;
            if exact || self.is_digest_mode() {
                return Some((slot, exact));
            }
        }
        None
    }

    /// Pipeline-order probe; returns `(stage, slot, exact)` of the first
    /// match-field hit, hashing the key once per stage.
    fn probe(&self, key: &[u8]) -> Option<(usize, usize, bool)> {
        for stage in 0..self.cfg.stages {
            let mf = self.match_field_at(stage, key);
            let word = self.word_of(stage, key);
            if let Some((slot, exact)) = self.probe_word(stage, word, mf, key) {
                return Some((stage, slot, exact));
            }
        }
        None
    }

    /// [`CuckooTable::probe`] from precomputed hashes: `stage_hashes[i]`
    /// must be `self.stage_fns()[i]` over the key, `match_hash` the output
    /// of [`CuckooTable::match_fn`]. No hashing happens here.
    fn probe_pre(
        &self,
        key: &[u8],
        stage_hashes: &[u64],
        match_hash: u64,
    ) -> Option<(usize, usize, bool)> {
        debug_assert_eq!(stage_hashes.len(), self.cfg.stages);
        // Resolve every stage's word index first and touch its match-field
        // word before any comparisons: the loads are independent, so their
        // cache misses overlap instead of serializing stage by stage the
        // way the comparison loop below would force on its own.
        let mut words = [0usize; MAX_PROBE_STAGES];
        if self.cfg.stages <= MAX_PROBE_STAGES {
            for (stage, &h) in stage_hashes.iter().enumerate().take(self.cfg.stages) {
                let w = self.word_from(h);
                words[stage] = w;
                std::hint::black_box(self.mfs[stage][w * self.cfg.entries_per_word]);
            }
            for (stage, &word) in words.iter().enumerate().take(self.cfg.stages) {
                let mf = self.match_field_from(stage, match_hash);
                if let Some((slot, exact)) = self.probe_word(stage, word, mf, key) {
                    return Some((stage, slot, exact));
                }
            }
            return None;
        }
        for (stage, &h) in stage_hashes.iter().enumerate().take(self.cfg.stages) {
            let mf = self.match_field_from(stage, match_hash);
            let word = self.word_from(h);
            if let Some((slot, exact)) = self.probe_word(stage, word, mf, key) {
                return Some((stage, slot, exact));
            }
        }
        None
    }

    fn hit_at(&self, stage: usize, slot: usize, exact: bool) -> LookupHit<'_, V> {
        let e = self.slots[stage][slot].as_ref().expect("occupied");
        LookupHit {
            value: &e.value,
            resident_key: e.key.as_slice(),
            exact,
            stage,
        }
    }

    /// Probe the table the way the ASIC does: check the hashed word of each
    /// stage in pipeline order; first match-field equality wins.
    pub fn lookup(&self, key: &[u8]) -> Option<LookupHit<'_, V>> {
        let (stage, slot, exact) = self.probe(key)?;
        Some(self.hit_at(stage, slot, exact))
    }

    /// [`CuckooTable::lookup`] with all hashing done by the caller — the
    /// hash-once packet path. Produces identical results to `lookup` when
    /// the precomputed hashes honour the `probe_pre` contract.
    pub fn lookup_pre(
        &self,
        key: &[u8],
        stage_hashes: &[u64],
        match_hash: u64,
    ) -> Option<LookupHit<'_, V>> {
        let (stage, slot, exact) = self.probe_pre(key, stage_hashes, match_hash)?;
        Some(self.hit_at(stage, slot, exact))
    }

    /// Data-plane lookup: additionally sets the matched entry's hit bit on
    /// an exact match (the per-entry hit bit that drives idle aging).
    pub fn lookup_marking(&mut self, key: &[u8]) -> Option<LookupHit<'_, V>> {
        let (stage, slot, exact) = self.probe(key)?;
        if exact {
            self.slots[stage][slot].as_mut().expect("occupied").hit = true;
        }
        Some(self.hit_at(stage, slot, exact))
    }

    /// Warm the match-field words a prehashed probe will read: one plain
    /// load per stage, kept observable with [`std::hint::black_box`] so the
    /// optimizer cannot drop it. A batched caller issues these for several
    /// packets ahead of their probes, turning the per-packet chain of
    /// dependent cache misses into overlapping independent ones.
    pub fn prefetch_words_pre(&self, stage_hashes: &[u64]) {
        for (stage, &h) in stage_hashes.iter().enumerate().take(self.cfg.stages) {
            let base = self.word_from(h) * self.cfg.entries_per_word;
            std::hint::black_box(self.mfs[stage][base]);
        }
    }

    /// Warm the entry a prehashed probe would dereference: replays the
    /// match-field scan (cheap once [`CuckooTable::prefetch_words_pre`] has
    /// pulled the words in) and touches the winning slot's entry, whose
    /// inline key the real probe will compare. Pure reads — no hit-bit or
    /// stats side effects.
    pub fn prefetch_entry_pre(&self, stage_hashes: &[u64], match_hash: u64) {
        for (stage, &h) in stage_hashes.iter().enumerate().take(self.cfg.stages) {
            let mf = self.match_field_from(stage, match_hash);
            let probe64 = stored_mf(mf);
            let probe = plane_mf(mf);
            let word = self.word_from(h);
            for slot in self.slot_range(word) {
                if self.mfs[stage][slot] == probe {
                    if let Some(e) = &self.slots[stage][slot] {
                        std::hint::black_box(e.key.len);
                        if stored_mf(e.match_field) != probe64 {
                            continue;
                        }
                    }
                    return;
                }
            }
        }
    }

    /// [`CuckooTable::lookup_marking`] from precomputed hashes.
    pub fn lookup_marking_pre(
        &mut self,
        key: &[u8],
        stage_hashes: &[u64],
        match_hash: u64,
    ) -> Option<LookupHit<'_, V>> {
        let (stage, slot, exact) = self.probe_pre(key, stage_hashes, match_hash)?;
        if exact {
            self.slots[stage][slot].as_mut().expect("occupied").hit = true;
        }
        Some(self.hit_at(stage, slot, exact))
    }

    /// The table's current layout generation (see the `epoch` field).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// First half of a split probe: find the `(stage, slot)` a prehashed
    /// probe would hit, scanning only the match-field plane, and touch the
    /// winning entry's first cache line so its load is in flight by the
    /// time [`CuckooTable::lookup_marking_at`] dereferences it. No side
    /// effects — a pipelined caller runs `locate_pre` for a whole chunk of
    /// packets, then resolves each, overlapping the entries' cache misses.
    ///
    /// In digest mode the slot choice depends only on the match-field
    /// plane, exactly like [`CuckooTable::probe_pre`]; full-key mode also
    /// needs the key compare to skip fingerprint aliases, so it falls back
    /// to the fused probe. Coordinates are only valid while
    /// [`CuckooTable::epoch`] is unchanged.
    pub fn locate_pre(
        &self,
        key: &[u8],
        stage_hashes: &[u64],
        match_hash: u64,
    ) -> Option<(u32, u32)> {
        if !self.is_digest_mode() {
            return self
                .probe_pre(key, stage_hashes, match_hash)
                .map(|(stage, slot, _)| (stage as u32, slot as u32));
        }
        debug_assert_eq!(stage_hashes.len(), self.cfg.stages);
        let mut words = [0usize; MAX_PROBE_STAGES];
        if self.cfg.stages <= MAX_PROBE_STAGES {
            // Same independent-load warm-up as `probe_pre`.
            for (stage, &h) in stage_hashes.iter().enumerate().take(self.cfg.stages) {
                let w = self.word_from(h);
                words[stage] = w;
                std::hint::black_box(self.mfs[stage][w * self.cfg.entries_per_word]);
            }
        } else {
            for (stage, &h) in stage_hashes.iter().enumerate().take(self.cfg.stages) {
                words[stage] = self.word_from(h);
            }
        }
        for (stage, &word) in words.iter().enumerate().take(self.cfg.stages) {
            let mf = self.match_field_from(stage, match_hash);
            let probe64 = stored_mf(mf);
            let probe = plane_mf(mf);
            let mfs = &self.mfs[stage];
            for slot in self.slot_range(word) {
                if mfs[slot] == probe {
                    let e = self.slots[stage][slot]
                        .as_ref()
                        .expect("match field set on vacant slot");
                    // Plane lanes are a prefilter; confirm on the full
                    // stored field (see `plane_mf`).
                    if stored_mf(e.match_field) != probe64 {
                        continue;
                    }
                    // Touch both ends of the entry: it is wider than one
                    // cache line, and the resolve half reads the key,
                    // the value, and the hit flag.
                    std::hint::black_box(e.key.len);
                    std::hint::black_box(e.key.buf[MAX_KEY_LEN - 1]);
                    std::hint::black_box(e.hit);
                    return Some((stage as u32, slot as u32));
                }
            }
        }
        None
    }

    /// Second half of a split probe: resolve coordinates returned by
    /// [`CuckooTable::locate_pre`] — dereference the entry, compare the
    /// full key for exactness, and set the hit bit on an exact match,
    /// producing the same result the fused marking lookup would have.
    /// Callers must verify the epoch is unchanged since `locate_pre`.
    pub fn lookup_marking_at(&mut self, stage: u32, slot: u32, key: &[u8]) -> LookupHit<'_, V> {
        let (stage, slot) = (stage as usize, slot as usize);
        let e = self.slots[stage][slot]
            .as_mut()
            .expect("located slot must be occupied at unchanged epoch");
        let exact = e.key.as_slice() == key;
        if exact {
            e.hit = true;
        }
        self.hit_at(stage, slot, exact)
    }
    // srlint: hot-path end

    /// Look up with mutable access to the value (exact-key match only —
    /// this is a software-side helper, not an ASIC path).
    pub fn lookup_exact_mut(&mut self, key: &[u8]) -> Option<&mut V> {
        let (stage, slot) = self.find_exact(key)?;
        Some(&mut self.slots[stage][slot].as_mut().expect("occupied").value)
    }

    fn find_exact(&self, key: &[u8]) -> Option<(usize, usize)> {
        for stage in 0..self.cfg.stages {
            let word = self.word_of(stage, key);
            for slot in self.slot_range(word) {
                if let Some(e) = &self.slots[stage][slot] {
                    if e.key.as_slice() == key {
                        return Some((stage, slot));
                    }
                }
            }
        }
        None
    }

    // srlint: hot-path begin
    /// [`CuckooTable::find_exact`] from precomputed stage hashes — no
    /// hashing. `word_from(stage_hashes[s])` addresses the same word as
    /// `word_of(s, key)` when the hashes honour the `probe_pre` contract.
    fn find_exact_pre(&self, key: &[u8], stage_hashes: &[u64]) -> Option<(usize, usize)> {
        for (stage, (&h, stage_slots)) in stage_hashes.iter().zip(&self.slots).enumerate() {
            let range = self.slot_range(self.word_from(h));
            let base = range.start;
            for (off, slot) in stage_slots.get(range).unwrap_or(&[]).iter().enumerate() {
                if let Some(e) = slot {
                    if e.key.as_slice() == key {
                        return Some((stage, base + off));
                    }
                }
            }
        }
        None
    }
    // srlint: hot-path end

    /// Insert a key/value pair, running the BFS move search if every
    /// candidate slot is taken. Fails with [`CuckooError::Full`] when no
    /// eviction path exists within the configured limits, or
    /// [`CuckooError::Duplicate`] if the exact key is already stored.
    pub fn insert(&mut self, key: &[u8], value: V) -> Result<InsertOutcome, CuckooError> {
        if self.find_exact(key).is_some() {
            return Err(CuckooError::Duplicate);
        }
        self.insert_new(key, None, value, false)
    }

    /// [`CuckooTable::insert`] with all hashing of the *inserted* key done
    /// by the caller: `stage_hashes[i]` must be `self.stage_fns()[i]` over
    /// the key and `match_hash` the output of [`CuckooTable::match_fn`] —
    /// the hashes the packet path already computed when the connection first
    /// missed. Placement is bit-identical to [`CuckooTable::insert`]
    /// (candidate words and match fields derive from the same hash outputs);
    /// only residents displaced by the BFS are re-hashed, since their
    /// packet-time hashes are long gone.
    pub fn insert_pre(
        &mut self,
        key: &[u8],
        stage_hashes: &[u64],
        match_hash: u64,
        value: V,
    ) -> Result<InsertOutcome, CuckooError> {
        debug_assert_eq!(stage_hashes.len(), self.cfg.stages);
        if self.find_exact_pre(key, stage_hashes).is_some() {
            return Err(CuckooError::Duplicate);
        }
        self.insert_new(key, Some((stage_hashes, match_hash)), value, false)
    }

    /// [`CuckooTable::insert_pre`] for a caller that has *just probed*
    /// these exact hashes (via [`CuckooTable::lookup_pre`]) and found no
    /// hit of any kind, with the table untouched since. The probe already
    /// proved what the duplicate pre-scan would — an exact duplicate is
    /// also a match-field hit, so none can be stored — and it narrows the
    /// §4.2 repair: no digest-colliding resident sits in any of the key's
    /// candidate buckets, so when the insert lands in a free slot (no BFS
    /// displacements) and the key's collision class has no other member,
    /// no resident's lookup can have changed and the repair re-probe is
    /// skipped. Displacing inserts, and keys whose digest class already
    /// has members, repair exactly as [`CuckooTable::insert_pre`] does.
    /// Placement is bit-identical to the checked variants.
    pub fn insert_vacant_pre(
        &mut self,
        key: &[u8],
        stage_hashes: &[u64],
        match_hash: u64,
        value: V,
    ) -> Result<InsertOutcome, CuckooError> {
        debug_assert_eq!(stage_hashes.len(), self.cfg.stages);
        debug_assert!(
            self.lookup_pre(key, stage_hashes, match_hash).is_none(),
            "insert_vacant_pre requires a just-probed miss"
        );
        self.insert_new(key, Some((stage_hashes, match_hash)), value, true)
    }

    /// Shared tail of [`CuckooTable::insert`] / [`CuckooTable::insert_pre`]:
    /// place the entry, register its collision class, and repair any
    /// shadowing — all through the table's reusable scratch.
    fn insert_new(
        &mut self,
        key: &[u8],
        pre: Option<(&[u64], u64)>,
        value: V,
        probed_miss: bool,
    ) -> Result<InsertOutcome, CuckooError> {
        let entry = Entry {
            key: InlineKey::new(key),
            // Placeholder; `insert_entry` stamps the landing stage's field.
            match_field: 0,
            hit: false,
            value,
        };
        let ikey = entry.key;
        let digest_mode = self.alias.is_some();
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.moved.clear();
        let result = match self.insert_entry(entry, None, pre, &mut scratch, digest_mode) {
            Ok(out) => {
                if digest_mode {
                    let lone = self.alias_add(key, pre.map(|(_, mh)| mh));
                    if probed_miss && out.moves == 0 && lone {
                        // The caller's probe missed everywhere, the entry
                        // landed in a free slot, and its collision class
                        // holds only itself: no resident's lookup changed
                        // and the repair would merely re-confirm the fresh
                        // key's own exact hit. Skip the re-probe.
                        scratch.moved.clear();
                        scratch.touched.clear();
                    } else {
                        {
                            let InsertScratch { moved, touched, .. } = &mut scratch;
                            touched.clear();
                            touched.extend(moved.drain(..));
                        }
                        scratch.touched.push_back(ikey);
                        self.repair_shadowed(&mut scratch, pre.map(|(hs, mh)| (key, hs, mh)));
                    }
                }
                Ok(out)
            }
            Err((e, _)) => Err(e),
        };
        self.scratch = scratch;
        result
    }

    /// Record a resident key in its collision class, reusing the caller's
    /// match hash when it has one (the class digest truncates that same
    /// hash). Returns whether the class held no other member — the signal
    /// that lets a probed-miss insert skip the shadowing repair.
    fn alias_add(&mut self, key: &[u8], match_hash: Option<u64>) -> bool {
        let Some(a) = &mut self.alias else {
            return true;
        };
        let class = match match_hash {
            Some(mh) => a.digest.digest_of(mh),
            None => a.digest.digest(key),
        };
        let members = a.classes.entry(class).or_default();
        let lone = members.is_empty();
        members.push(InlineKey::new(key));
        lone
    }

    /// Drop a key from its collision class. The class `Vec` is kept even
    /// when emptied so churn over the same digest space reuses its capacity
    /// (see [`AliasIndex`]).
    fn alias_remove(&mut self, key: &[u8]) {
        if let Some(a) = &mut self.alias {
            let class = a.digest.digest(key);
            if let Some(members) = a.classes.get_mut(&class) {
                members.retain_not(key);
            }
        }
    }

    /// Restore the invariant that every *resident* key's own lookup is an
    /// exact hit. Placing or moving an entry can shadow a digest-colliding
    /// resident probed later in the pipeline; the switch software holds the
    /// full keys, detects this at insertion time (§4.2), and relocates the
    /// shadowing entry. `scratch.touched` is the queue of keys that just
    /// changed position; only their collision classes can have new
    /// shadowing. `pre` carries the just-inserted key's precomputed hashes
    /// so checking *it* for shadowing costs no re-hash.
    fn repair_shadowed(&mut self, scratch: &mut InsertScratch, pre: Option<(&[u8], &[u64], u64)>) {
        if self.alias.is_none() {
            scratch.touched.clear();
            return; // full-key mode has no false hits
        }
        // Bounds the (astronomically unlikely) case of keys aliasing in
        // every stage, where relocation cannot separate them.
        let mut budget = 64usize;
        while let Some(k) = scratch.touched.pop_front() {
            scratch.members.clear();
            {
                let a = self.alias.as_ref().expect("checked above");
                let class = match pre {
                    Some((pk, _, mh)) if pk == k.as_slice() => a.digest.digest_of(mh),
                    _ => a.digest.digest(k.as_slice()),
                };
                match a.classes.get(&class) {
                    Some(m) => m.extend_into(&mut scratch.members),
                    None => continue,
                }
            }
            for mi in 0..scratch.members.len() {
                let resident = scratch.members[mi];
                let shadower = {
                    let hit = match pre {
                        Some((pk, hs, mh)) if pk == resident.as_slice() => {
                            self.lookup_pre(resident.as_slice(), hs, mh)
                        }
                        _ => self.lookup(resident.as_slice()),
                    };
                    match hit {
                        Some(h) if !h.exact => Some(InlineKey::new(h.resident_key)),
                        _ => None,
                    }
                };
                let Some(shadower) = shadower else { continue };
                if budget == 0 {
                    scratch.touched.clear();
                    return;
                }
                budget -= 1;
                scratch.moved.clear();
                if self.relocate_raw(shadower.as_slice(), scratch).is_ok() {
                    self.shadow_repairs += 1;
                    let InsertScratch { moved, touched, .. } = &mut *scratch;
                    touched.extend(moved.drain(..));
                    scratch.touched.push_back(shadower);
                }
                // On failure (table too full to separate them) the false
                // hit persists, as it would on a real switch out of room.
            }
        }
    }

    /// Relocations performed by the resident-shadowing repair.
    pub fn shadow_repairs(&self) -> u64 {
        self.shadow_repairs
    }

    /// Insert `entry`, optionally excluding one stage (used by relocation).
    /// The candidate words and match fields of the *entry's own* key come
    /// from the caller's precomputed hashes when `pre` is supplied —
    /// `word_from`/`match_field_from` over the same hash outputs that
    /// `word_of`/`match_field_at` would compute, so placement is
    /// bit-identical either way. Keys of residents displaced by the BFS
    /// unwind are appended to `scratch.moved` when `record_moves` is set
    /// (only the digest-mode shadowing repair wants them). On failure the
    /// entry is handed back so the caller can restore it without having
    /// cloned it up front.
    fn insert_entry(
        &mut self,
        entry: Entry<V>,
        exclude_stage: Option<usize>,
        pre: Option<(&[u64], u64)>,
        scratch: &mut InsertScratch,
        record_moves: bool,
    ) -> Result<InsertOutcome, (CuckooError, Entry<V>)> {
        self.epoch += 1;
        scratch.cand.clear();
        for stage in 0..self.cfg.stages {
            scratch.cand.push(match pre {
                Some((hs, _)) => self.word_from(hs[stage]),
                None => self.word_of(stage, entry.key.as_slice()),
            });
        }
        // Fast path: a free slot in one of the candidate words. Stage order
        // doubles as a preference order (wider digests first in the
        // per-stage mode). Vacancy is read off the dense match-field plane
        // (`EMPTY_PLANE` marks free slots) — the same cache lines a caller
        // that just probed these words still has warm — instead of the
        // wide entry array.
        for stage in 0..self.cfg.stages {
            if Some(stage) == exclude_stage {
                continue;
            }
            let word = scratch.cand[stage];
            let mut landing = None;
            for slot in self.slot_range(word) {
                if self.mfs[stage][slot] == EMPTY_PLANE {
                    landing = Some(slot);
                    break;
                }
            }
            if let Some(slot) = landing {
                debug_assert!(self.slots[stage][slot].is_none());
                let mut entry = entry;
                entry.match_field = match pre {
                    Some((_, mh)) => self.match_field_from(stage, mh),
                    None => self.match_field_at(stage, entry.key.as_slice()),
                };
                self.mfs[stage][slot] = plane_mf(entry.match_field);
                self.slots[stage][slot] = Some(entry);
                self.len += 1;
                return Ok(InsertOutcome { moves: 0, stage });
            }
        }
        // BFS over eviction paths. Nodes are (stage, slot) positions whose
        // resident entry we would displace; we search for a resident that
        // has a free alternative slot in another stage.
        scratch.nodes.clear();
        scratch.queue.clear();
        scratch.visited.clear();

        for stage in 0..self.cfg.stages {
            if Some(stage) == exclude_stage {
                continue;
            }
            let word = scratch.cand[stage];
            for slot in self.slot_range(word) {
                if scratch.visited.insert((stage, slot)) {
                    scratch.nodes.push(Node {
                        stage,
                        slot,
                        parent: usize::MAX,
                    });
                    scratch.queue.push_back((scratch.nodes.len() - 1, 1));
                }
            }
        }

        let mut found: Option<(usize, usize, usize)> = None; // (node, free_stage, free_slot)
        'bfs: while let Some((ni, depth)) = scratch.queue.pop_front() {
            if scratch.nodes.len() > self.cfg.max_bfs_nodes {
                break;
            }
            let (from_stage, from_slot) = (scratch.nodes[ni].stage, scratch.nodes[ni].slot);
            // Borrow the resident's key in place — the BFS only reads the
            // table, so no clone is needed to keep probing with it. The
            // resident's packet-time hashes are long gone, so (unlike the
            // entry being placed) displaced residents are re-hashed.
            let resident_key: &[u8] = match &self.slots[from_stage][from_slot] {
                Some(e) => e.key.as_slice(),
                // Shouldn't happen (fast path would have used it), but a
                // concurrent delete could free it: use directly.
                None => {
                    found = Some((ni, from_stage, from_slot));
                    break 'bfs;
                }
            };
            // Where can this resident move? Any other stage's candidate word.
            for alt_stage in 0..self.cfg.stages {
                if alt_stage == from_stage {
                    continue;
                }
                let word = self.word_of(alt_stage, resident_key);
                for slot in self.slot_range(word) {
                    if self.slots[alt_stage][slot].is_none() {
                        found = Some((ni, alt_stage, slot));
                        break 'bfs;
                    }
                    if depth < self.cfg.max_bfs_depth && scratch.visited.insert((alt_stage, slot)) {
                        scratch.nodes.push(Node {
                            stage: alt_stage,
                            slot,
                            parent: ni,
                        });
                        scratch
                            .queue
                            .push_back((scratch.nodes.len() - 1, depth + 1));
                    }
                }
            }
        }

        let (mut ni, free_stage, free_slot) = match found {
            Some(f) => f,
            None => return Err((CuckooError::Full, entry)),
        };

        // Unwind the path: move the chain of residents one hop each,
        // starting from the far end (the free slot).
        let mut dest = (free_stage, free_slot);
        let mut moves = 0usize;
        loop {
            let src = (scratch.nodes[ni].stage, scratch.nodes[ni].slot);
            let moved = self.slots[src.0][src.1].take();
            self.mfs[src.0][src.1] = EMPTY_PLANE;
            if let Some(mut m) = moved {
                debug_assert!(self.slots[dest.0][dest.1].is_none());
                // Moving across stages re-stamps the stage's match field
                // (stages may use different digest widths).
                if dest.0 != src.0 {
                    m.match_field = self.match_field_at(dest.0, m.key.as_slice());
                }
                if record_moves {
                    scratch.moved.push(m.key);
                }
                self.mfs[dest.0][dest.1] = plane_mf(m.match_field);
                self.slots[dest.0][dest.1] = Some(m);
                moves += 1;
            }
            dest = src;
            if scratch.nodes[ni].parent == usize::MAX {
                break;
            }
            ni = scratch.nodes[ni].parent;
        }
        debug_assert!(self.slots[dest.0][dest.1].is_none());
        let landed = dest.0;
        let mut entry = entry;
        entry.match_field = match pre {
            Some((_, mh)) => self.match_field_from(landed, mh),
            None => self.match_field_at(landed, entry.key.as_slice()),
        };
        self.mfs[dest.0][dest.1] = plane_mf(entry.match_field);
        self.slots[dest.0][dest.1] = Some(entry);
        self.len += 1;
        self.total_moves += moves as u64;
        Ok(InsertOutcome {
            moves,
            stage: landed,
        })
    }

    /// Remove an entry by exact key.
    pub fn remove(&mut self, key: &[u8]) -> Result<V, CuckooError> {
        self.epoch += 1;
        match self.find_exact(key) {
            Some((stage, slot)) => {
                let e = self.slots[stage][slot].take().expect("occupied");
                self.mfs[stage][slot] = EMPTY_PLANE;
                self.len -= 1;
                self.alias_remove(key);
                Ok(e.value)
            }
            None => Err(CuckooError::NotFound),
        }
    }

    /// Relocate the entry stored under `key` to a *different* stage — the
    /// paper's false-positive repair (§4.2): when a SYN falsely hits a
    /// resident entry, software moves the resident so that the two colliding
    /// keys live in words addressed by different hash functions.
    ///
    /// Returns the stage the entry moved to.
    pub fn relocate(&mut self, key: &[u8]) -> Result<usize, CuckooError> {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.moved.clear();
        let result = self.relocate_raw(key, &mut scratch);
        if result.is_ok() {
            {
                let InsertScratch { moved, touched, .. } = &mut scratch;
                touched.clear();
                touched.extend(moved.drain(..));
            }
            scratch.touched.push_back(InlineKey::new(key));
            self.repair_shadowed(&mut scratch, None);
        }
        self.scratch = scratch;
        result
    }

    /// [`CuckooTable::relocate`] without the shadowing repair — the repair
    /// itself relocates entries through this to avoid recursion. Displaced
    /// residents are appended to `scratch.moved` in digest mode.
    fn relocate_raw(
        &mut self,
        key: &[u8],
        scratch: &mut InsertScratch,
    ) -> Result<usize, CuckooError> {
        let (stage, slot) = self.find_exact(key).ok_or(CuckooError::NotFound)?;
        let entry = self.slots[stage][slot].take().expect("occupied");
        self.mfs[stage][slot] = EMPTY_PLANE;
        self.len -= 1;
        let record_moves = self.alias.is_some();
        match self.insert_entry(entry, Some(stage), None, scratch, record_moves) {
            Ok(out) => Ok(out.stage),
            Err((e, entry)) => {
                // Roll back: the failed insert hands the entry back, so it
                // goes where it was without ever having been cloned.
                self.mfs[stage][slot] = plane_mf(entry.match_field);
                self.slots[stage][slot] = Some(entry);
                self.len += 1;
                Err(e)
            }
        }
    }

    /// Iterate over stored (key, value) pairs (software-side, e.g. expiry
    /// scans). Order is unspecified but deterministic.
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], &V)> {
        self.slots
            .iter()
            .flat_map(|s| s.iter())
            .filter_map(|e| e.as_ref().map(|e| (e.key.as_slice(), &e.value)))
    }

    /// Remove every entry for which `pred` returns false, returning the
    /// removed (key, value) pairs. Used for idle-connection expiry.
    pub fn retain<F: FnMut(&[u8], &V) -> bool>(&mut self, mut pred: F) -> Vec<(Box<[u8]>, V)> {
        self.epoch += 1;
        let mut removed = Vec::new();
        for (stage, stage_mfs) in self.slots.iter_mut().zip(self.mfs.iter_mut()) {
            for (slot, mf) in stage.iter_mut().zip(stage_mfs.iter_mut()) {
                if let Some(e) = slot {
                    if !pred(e.key.as_slice(), &e.value) {
                        let e = slot.take().expect("occupied");
                        *mf = EMPTY_PLANE;
                        removed.push((Box::<[u8]>::from(e.key.as_slice()), e.value));
                        self.len -= 1;
                    }
                }
            }
        }
        for (key, _) in &removed {
            self.alias_remove(key);
        }
        removed
    }

    /// Clock-algorithm aging sweep: `pred` sees each entry's key, value, and
    /// current hit bit, and decides whether it survives. Survivors get their
    /// hit bit cleared (arming the next sweep); non-survivors are removed
    /// and returned.
    pub fn retain_hits<F: FnMut(&[u8], &V, bool) -> bool>(
        &mut self,
        mut pred: F,
    ) -> Vec<(Box<[u8]>, V)> {
        self.epoch += 1;
        let mut removed = Vec::new();
        for (stage, stage_mfs) in self.slots.iter_mut().zip(self.mfs.iter_mut()) {
            for (slot, mf) in stage.iter_mut().zip(stage_mfs.iter_mut()) {
                if let Some(e) = slot {
                    if pred(e.key.as_slice(), &e.value, e.hit) {
                        e.hit = false;
                    } else {
                        let e = slot.take().expect("occupied");
                        *mf = EMPTY_PLANE;
                        removed.push((Box::<[u8]>::from(e.key.as_slice()), e.value));
                        self.len -= 1;
                    }
                }
            }
        }
        for (key, _) in &removed {
            self.alias_remove(key);
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(match_mode: MatchMode) -> CuckooTable<u32> {
        CuckooTable::new(CuckooConfig {
            stages: 4,
            words_per_stage: 64,
            entries_per_word: 4,
            match_mode,
            seed: 42,
            max_bfs_depth: 8,
            max_bfs_nodes: 4096,
        })
    }

    fn key(i: u32) -> Vec<u8> {
        i.to_be_bytes().to_vec()
    }

    #[test]
    fn insert_lookup_remove_roundtrip() {
        let mut t = small(MatchMode::FullKey);
        for i in 0..100 {
            t.insert(&key(i), i).unwrap();
        }
        assert_eq!(t.len(), 100);
        for i in 0..100 {
            let hit = t.lookup(&key(i)).expect("present");
            assert_eq!(*hit.value, i);
            assert!(hit.exact);
        }
        for i in 0..100 {
            assert_eq!(t.remove(&key(i)).unwrap(), i);
        }
        assert!(t.is_empty());
        assert!(t.lookup(&key(0)).is_none());
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut t = small(MatchMode::FullKey);
        t.insert(&key(1), 1).unwrap();
        assert_eq!(t.insert(&key(1), 2), Err(CuckooError::Duplicate));
    }

    #[test]
    fn remove_missing_rejected() {
        let mut t = small(MatchMode::FullKey);
        assert_eq!(t.remove(&key(9)), Err(CuckooError::NotFound));
    }

    #[test]
    fn high_load_factor_achievable() {
        // 4 stages x 4 ways should pack well above 90%.
        let mut t = small(MatchMode::FullKey);
        let total = t.config().total_slots();
        let mut inserted = 0;
        for i in 0..total as u32 {
            if t.insert(&key(i), i).is_ok() {
                inserted += 1;
            } else {
                break;
            }
        }
        let load = inserted as f64 / total as f64;
        assert!(load > 0.90, "load factor only {load}");
        // Everything inserted must still be found.
        for i in 0..inserted as u32 {
            assert!(t.lookup(&key(i)).is_some(), "lost key {i} after moves");
        }
    }

    #[test]
    fn full_table_reports_full() {
        let mut t: CuckooTable<u32> = CuckooTable::new(CuckooConfig {
            stages: 2,
            words_per_stage: 2,
            entries_per_word: 1,
            match_mode: MatchMode::FullKey,
            seed: 7,
            max_bfs_depth: 8,
            max_bfs_nodes: 64,
        });
        let mut full_seen = false;
        for i in 0..100 {
            if t.insert(&key(i), i) == Err(CuckooError::Full) {
                full_seen = true;
                break;
            }
        }
        assert!(full_seen);
        assert!(t.len() <= 4);
    }

    #[test]
    fn digest_mode_false_positive_and_relocation() {
        // 1-bit-equivalent tiny digest space forced via 8-bit digests and
        // many keys: find two keys that collide (same stage-0 word, same
        // digest), verify the false hit, repair via relocate, verify fixed.
        let mut t: CuckooTable<u32> = CuckooTable::new(CuckooConfig {
            stages: 4,
            words_per_stage: 8,
            entries_per_word: 2,
            match_mode: MatchMode::Digest { bits: 8 },
            seed: 3,
            max_bfs_depth: 8,
            max_bfs_nodes: 4096,
        });
        // Insert one resident key.
        t.insert(&key(0), 0).unwrap();
        // Find a probe key that false-hits it.
        let mut probe = None;
        for i in 1u32..200_000 {
            if let Some(hit) = t.lookup(&key(i)) {
                if !hit.exact {
                    probe = Some(i);
                    break;
                }
            }
        }
        let probe = probe.expect("no digest collision found in 200k keys");
        // Repair: relocate the resident; afterwards the probe must miss.
        t.relocate(&key(0)).unwrap();
        let hit_after = t.lookup(&key(probe));
        assert!(
            hit_after.is_none() || hit_after.unwrap().exact,
            "false positive survived relocation"
        );
        // The resident is still present and correct.
        let r = t.lookup(&key(0)).expect("resident lost");
        assert!(r.exact);
        assert_eq!(*r.value, 0);
    }

    #[test]
    fn relocate_moves_stage() {
        let mut t = small(MatchMode::FullKey);
        t.insert(&key(5), 5).unwrap();
        let before = t.lookup(&key(5)).unwrap().stage;
        let after = t.relocate(&key(5)).unwrap();
        assert_ne!(before, after);
        assert_eq!(*t.lookup(&key(5)).unwrap().value, 5);
    }

    #[test]
    fn retain_expires_entries() {
        let mut t = small(MatchMode::FullKey);
        for i in 0..50 {
            t.insert(&key(i), i).unwrap();
        }
        let removed = t.retain(|_, v| *v % 2 == 0);
        assert_eq!(removed.len(), 25);
        assert_eq!(t.len(), 25);
        assert!(t.lookup(&key(1)).is_none());
        assert!(t.lookup(&key(2)).is_some());
    }

    #[test]
    fn iter_sees_everything() {
        let mut t = small(MatchMode::FullKey);
        for i in 0..20 {
            t.insert(&key(i), i).unwrap();
        }
        let mut vals: Vec<u32> = t.iter().map(|(_, v)| *v).collect();
        vals.sort_unstable();
        assert_eq!(vals, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn lookup_exact_mut_updates() {
        let mut t = small(MatchMode::FullKey);
        t.insert(&key(1), 10).unwrap();
        *t.lookup_exact_mut(&key(1)).unwrap() = 99;
        assert_eq!(*t.lookup(&key(1)).unwrap().value, 99);
        assert!(t.lookup_exact_mut(&key(2)).is_none());
    }

    #[test]
    fn for_capacity_sizing() {
        let cfg = CuckooConfig::for_capacity(10_000, 4, 4, 1);
        assert!(cfg.total_slots() >= 10_000);
        // Should not over-provision by more than ~2x.
        assert!(cfg.total_slots() < 21_000, "slots={}", cfg.total_slots());
    }

    #[test]
    fn per_stage_digests_roundtrip_under_moves() {
        // Mixed widths; heavy load forces BFS moves across stages, which
        // must re-stamp match fields so lookups still hit exactly.
        let mut t: CuckooTable<u32> = CuckooTable::new(CuckooConfig {
            stages: 4,
            words_per_stage: 64,
            entries_per_word: 4,
            match_mode: MatchMode::DigestPerStage {
                bits: vec![24, 20, 16, 12],
            },
            seed: 5,
            max_bfs_depth: 8,
            max_bfs_nodes: 4096,
        });
        let total = t.config().total_slots();
        let n = (total * 9 / 10) as u32;
        for i in 0..n {
            t.insert(&key(i), i).unwrap();
        }
        assert!(t.total_moves() > 0, "load too low to test moves");
        for i in 0..n {
            let hit = t.lookup(&key(i)).expect("present");
            assert_eq!(*hit.value, i, "wrong value after cross-stage move");
        }
    }

    #[test]
    fn wider_early_stages_reduce_false_hits() {
        // Compare false-positive counts: uniform 12-bit vs 20-bit-first
        // mixed digests, same population and probes.
        let build = |mode: MatchMode| {
            let mut t: CuckooTable<u32> = CuckooTable::new(CuckooConfig {
                stages: 4,
                words_per_stage: 128,
                entries_per_word: 4,
                match_mode: mode,
                seed: 9,
                max_bfs_depth: 8,
                max_bfs_nodes: 4096,
            });
            for i in 0..1200u32 {
                t.insert(&key(i), i).unwrap();
            }
            let mut fps = 0;
            for probe in 1_000_000..1_200_000u32 {
                if let Some(h) = t.lookup(&key(probe)) {
                    if !h.exact {
                        fps += 1;
                    }
                }
            }
            fps
        };
        let uniform = build(MatchMode::Digest { bits: 12 });
        let mixed = build(MatchMode::DigestPerStage {
            bits: vec![20, 20, 12, 12],
        });
        assert!(
            mixed < uniform,
            "mixed {mixed} should beat uniform {uniform}"
        );
    }

    #[test]
    fn residents_never_shadow_each_other() {
        // Narrow digests + heavy load: without the insertion-time repair,
        // some resident's probe sequence would find a digest-colliding
        // entry in an earlier stage first (a false hit on its OWN key,
        // observed as a mid-life DIP flip by the simulator). The repair
        // must keep every resident's lookup exact through inserts, BFS
        // moves, relocations, and removals.
        let mut t: CuckooTable<u32> = CuckooTable::new(CuckooConfig {
            stages: 4,
            words_per_stage: 64,
            entries_per_word: 4,
            match_mode: MatchMode::Digest { bits: 8 },
            seed: 12,
            max_bfs_depth: 8,
            max_bfs_nodes: 4096,
        });
        let n = (t.config().total_slots() * 8 / 10) as u32;
        for i in 0..n {
            t.insert(&key(i), i).unwrap();
        }
        // Churn: delete a third, reinsert under new keys, relocate some.
        for i in (0..n).step_by(3) {
            t.remove(&key(i)).unwrap();
        }
        for i in n..n + n / 3 {
            let _ = t.insert(&key(i), i);
        }
        for i in (1..n).step_by(7) {
            let _ = t.relocate(&key(i));
        }
        assert!(
            t.shadow_repairs() > 0,
            "population too small to exercise the repair"
        );
        let keys: Vec<Box<[u8]>> = t.iter().map(|(k, _)| k.into()).collect();
        for k in keys {
            let hit = t.lookup(&k).expect("resident present");
            assert!(hit.exact, "resident key shadowed by a digest collision");
        }
    }

    #[test]
    fn lookup_pre_matches_lookup() {
        for mode in [
            MatchMode::FullKey,
            MatchMode::Digest { bits: 8 },
            MatchMode::DigestPerStage {
                bits: vec![24, 16, 12, 8],
            },
        ] {
            let mut t = small(mode);
            let n = (t.config().total_slots() * 8 / 10) as u32;
            for i in 0..n {
                let _ = t.insert(&key(i), i);
            }
            let stage_fns = t.stage_fns().to_vec();
            let match_fn = t.match_fn();
            let mut hashes = vec![0u64; stage_fns.len()];
            // Probe residents and strangers alike: stage, exactness, value
            // must agree with the byte-hashing path.
            for i in 0..n * 2 {
                let k = key(i);
                crate::hasher::hash_all(&stage_fns, &k, &mut hashes);
                let mh = match_fn.hash(&k);
                let a = t.lookup(&k);
                let b = t.lookup_pre(&k, &hashes, mh);
                match (a, b) {
                    (None, None) => {}
                    (Some(x), Some(y)) => {
                        assert_eq!(x.exact, y.exact);
                        assert_eq!(x.stage, y.stage);
                        assert_eq!(x.value, y.value);
                        assert_eq!(x.resident_key, y.resident_key);
                    }
                    (a, b) => panic!("lookup {a:?} != lookup_pre {b:?} for {i}"),
                }
            }
        }
    }

    #[test]
    fn insert_pre_places_identically_to_insert() {
        // The batched setup path installs entries through `insert_pre` with
        // the hashes the packet path computed; the per-packet baseline goes
        // through `insert`. Decision-digest identity between the two arms
        // rests on the two entry points producing bit-identical layouts.
        for mode in [
            MatchMode::FullKey,
            MatchMode::Digest { bits: 8 },
            MatchMode::DigestPerStage {
                bits: vec![24, 16, 12, 8],
            },
        ] {
            let mut a = small(mode.clone());
            let mut b = small(mode);
            let stage_fns = b.stage_fns().to_vec();
            let match_fn = b.match_fn();
            let mut hashes = vec![0u64; stage_fns.len()];
            // 90% load forces BFS moves and (at 8-bit digests) repairs.
            let n = (a.config().total_slots() * 9 / 10) as u32;
            for i in 0..n {
                let k = key(i);
                crate::hasher::hash_all(&stage_fns, &k, &mut hashes);
                let mh = match_fn.hash(&k);
                let ra = a.insert(&k, i);
                let rb = b.insert_pre(&k, &hashes, mh, i);
                assert_eq!(ra, rb, "outcome diverged at key {i}");
                if i % 5 == 0 {
                    // Duplicate detection must agree too.
                    assert_eq!(
                        b.insert_pre(&k, &hashes, mh, i),
                        Err(CuckooError::Duplicate)
                    );
                }
            }
            assert_eq!(a.len(), b.len());
            assert_eq!(a.total_moves(), b.total_moves(), "BFS paths diverged");
            assert_eq!(a.shadow_repairs(), b.shadow_repairs());
            for stage in 0..a.cfg.stages {
                assert_eq!(a.mfs[stage], b.mfs[stage], "plane differs at {stage}");
                for (slot, (x, y)) in a.slots[stage].iter().zip(&b.slots[stage]).enumerate() {
                    match (x, y) {
                        (None, None) => {}
                        (Some(x), Some(y)) => {
                            assert_eq!(x.key.as_slice(), y.key.as_slice(), "{stage}/{slot}");
                            assert_eq!(x.match_field, y.match_field, "{stage}/{slot}");
                            assert_eq!(x.value, y.value, "{stage}/{slot}");
                        }
                        _ => panic!("occupancy differs at {stage}/{slot}"),
                    }
                }
            }
        }
    }

    #[test]
    fn hit_bits_mark_and_age() {
        let mut t = small(MatchMode::FullKey);
        for i in 0..10 {
            t.insert(&key(i), i).unwrap();
        }
        // Mark only even keys.
        for i in (0..10).step_by(2) {
            assert!(t.lookup_marking(&key(i)).unwrap().exact);
        }
        // Plain lookup must not mark.
        let _ = t.lookup(&key(1));
        let removed = t.retain_hits(|_, _, hit| hit);
        assert_eq!(removed.len(), 5);
        assert_eq!(t.len(), 5);
        assert!(t.lookup(&key(1)).is_none());
        assert!(t.lookup(&key(2)).is_some());
        // Bits were cleared: a second sweep with the same predicate removes
        // everything left.
        let removed = t.retain_hits(|_, _, hit| hit);
        assert_eq!(removed.len(), 5);
        assert!(t.is_empty());
    }

    #[test]
    fn marking_pre_sets_hit_bit() {
        let mut t = small(MatchMode::Digest { bits: 16 });
        t.insert(&key(3), 3).unwrap();
        let stage_fns = t.stage_fns().to_vec();
        let match_fn = t.match_fn();
        let k = key(3);
        let mut hashes = vec![0u64; stage_fns.len()];
        crate::hasher::hash_all(&stage_fns, &k, &mut hashes);
        let hit = t
            .lookup_marking_pre(&k, &hashes, match_fn.hash(&k))
            .unwrap();
        assert!(hit.exact);
        assert!(
            t.retain_hits(|_, _, hit| hit).is_empty(),
            "marked entry aged out"
        );
    }

    #[test]
    fn moves_counted() {
        let mut t = small(MatchMode::FullKey);
        let total = t.config().total_slots();
        for i in 0..(total as u32 * 9 / 10) {
            let _ = t.insert(&key(i), i);
        }
        // At 90% load, at least some inserts must have required moves.
        assert!(t.total_moves() > 0);
    }
}
