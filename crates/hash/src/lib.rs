//! Hashing substrate for the SilkRoad reproduction.
//!
//! Switching ASICs expose *generic hash units* (§2.3) that feed ECMP, link
//! aggregation, exact-match table addressing, and bloom filters. This crate
//! provides the software equivalents, all fully deterministic and seedable so
//! every experiment is reproducible:
//!
//! * [`HashFn`] — a seeded 64-bit hash family over byte strings;
//! * [`digest`] — compact n-bit connection digests (§4.2);
//! * [`cuckoo`] — the multi-stage cuckoo exact-match table used for
//!   ConnTable, with the BFS move-search the switch CPU runs (§4.1);
//! * [`bloom`] — the TransitTable membership structure (§4.3);
//! * [`maglev`] — Maglev consistent hashing for the SLB baseline;
//! * [`resilient`] — resilient ECMP hashing (§7, "Handle DIP failures").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bloom;
pub mod cuckoo;
pub mod digest;
pub mod fx;
pub mod hasher;
pub mod maglev;
pub mod resilient;

pub use bloom::BloomFilter;
pub use cuckoo::{CuckooConfig, CuckooTable, InsertOutcome, LookupHit, MatchMode};
pub use digest::DigestFn;
pub use fx::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use hasher::{hash_all, splitmix64, HashFn};

/// Stateless ECMP member selection: map a flow hash onto one of `n` members.
///
/// This is the hash-scaled selection fixed-function switches use; any change
/// in `n` reshuffles ~all flows, which is exactly the PCC hazard the paper
/// describes for VIPTable-only designs.
pub fn ecmp_select(flow_hash: u64, n: usize) -> Option<usize> {
    if n == 0 {
        None
    } else {
        // Multiply-shift instead of modulo: avoids bias when n is not a
        // power of two and matches how ASIC hash units scale a hash into a
        // member index.
        Some(((flow_hash as u128 * n as u128) >> 64) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecmp_select_empty_pool() {
        assert_eq!(ecmp_select(123, 0), None);
    }

    #[test]
    fn ecmp_select_in_range() {
        for h in [0u64, 1, u64::MAX, 0xdead_beef] {
            for n in [1usize, 2, 3, 7, 100] {
                let i = ecmp_select(h, n).unwrap();
                assert!(i < n, "h={h} n={n} i={i}");
            }
        }
    }

    #[test]
    fn ecmp_select_is_roughly_uniform() {
        let n = 8;
        let mut counts = vec![0u32; n];
        let f = HashFn::new(42);
        for i in 0u32..8000 {
            let h = f.hash(&i.to_be_bytes());
            counts[ecmp_select(h, n).unwrap()] += 1;
        }
        for &c in &counts {
            // Expect ~1000 per bucket; allow generous slack.
            assert!((700..1300).contains(&c), "counts={counts:?}");
        }
    }
}
