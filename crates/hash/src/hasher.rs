//! A seeded 64-bit hash family over byte strings.
//!
//! Implemented from scratch (FNV-1a core with a splitmix64 finalizer) so the
//! reproduction has zero dependence on platform hashers and produces
//! identical experiment outputs everywhere. Quality matters here: the
//! paper's false-positive numbers (§6.1) assume well-distributed digests,
//! and cuckoo packing ratios assume independent per-stage bucket hashes.

/// One member of a seeded hash family.
///
/// Two `HashFn`s with different seeds behave as independent hash functions —
/// this is how per-stage cuckoo hashes and the k bloom-filter hashes are
/// derived.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HashFn {
    seed: u64,
}

impl HashFn {
    /// Create the family member with the given seed.
    pub fn new(seed: u64) -> HashFn {
        HashFn {
            // Pre-mix the seed so that consecutive small seeds (0, 1, 2...)
            // still yield unrelated functions.
            seed: splitmix64(seed ^ 0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Derive a family of `n` independent functions from a base seed.
    pub fn family(base_seed: u64, n: usize) -> Vec<HashFn> {
        (0..n)
            .map(|i| {
                HashFn::new(
                    base_seed.wrapping_add(0xa076_1d64_78bd_642f_u64.wrapping_mul(i as u64 + 1)),
                )
            })
            .collect()
    }

    /// Hash a byte string to 64 bits.
    pub fn hash(&self, bytes: &[u8]) -> u64 {
        // FNV-1a with seeded offset basis, then a strong finalizer to fix
        // FNV's weak high bits.
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ self.seed;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        splitmix64(h)
    }

    /// Hash a `u64` (pre-encoded key) to 64 bits.
    pub fn hash_u64(&self, x: u64) -> u64 {
        splitmix64(x ^ self.seed)
    }
}

/// Evaluate many hash functions over the same key in one pass.
///
/// Each `HashFn` seeds its own FNV accumulator, so the seeds cannot be
/// factored out algebraically — but the key bytes only need to be walked
/// once, updating every accumulator per byte. Output `out[i]` is
/// bit-identical to `fns[i].hash(bytes)`; tests enforce this, and the whole
/// hash-once hot path depends on it.
///
/// # Panics
/// If `out.len() != fns.len()`.
pub fn hash_all(fns: &[HashFn], bytes: &[u8], out: &mut [u64]) {
    assert_eq!(fns.len(), out.len(), "hash_all: out length mismatch");
    // Dispatch to a fixed-lane instantiation: with a const lane count the
    // accumulators live in registers for the whole byte walk instead of
    // round-tripping through `out` every byte (~2.5x on the packet path's
    // 6-lane pass).
    match fns.len() {
        0 => {}
        1 => hash_all_n::<1>(fns, bytes, out),
        2 => hash_all_n::<2>(fns, bytes, out),
        3 => hash_all_n::<3>(fns, bytes, out),
        4 => hash_all_n::<4>(fns, bytes, out),
        5 => hash_all_n::<5>(fns, bytes, out),
        6 => hash_all_n::<6>(fns, bytes, out),
        7 => hash_all_n::<7>(fns, bytes, out),
        8 => hash_all_n::<8>(fns, bytes, out),
        _ => {
            for (o, f) in out.iter_mut().zip(fns) {
                *o = f.hash(bytes);
            }
        }
    }
}

/// [`hash_all`] with a compile-time lane count (`N == fns.len()`).
#[inline]
fn hash_all_n<const N: usize>(fns: &[HashFn], bytes: &[u8], out: &mut [u64]) {
    let mut acc = [0u64; N];
    for (a, f) in acc.iter_mut().zip(fns) {
        *a = 0xcbf2_9ce4_8422_2325u64 ^ f.seed;
    }
    for &b in bytes {
        for a in acc.iter_mut() {
            *a ^= b as u64;
            *a = a.wrapping_mul(0x1000_0000_01b3);
        }
    }
    for (o, a) in out.iter_mut().zip(acc) {
        *o = splitmix64(a);
    }
}

/// splitmix64 finalizer: full-avalanche 64-bit mixer.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let f = HashFn::new(7);
        assert_eq!(f.hash(b"hello"), f.hash(b"hello"));
        assert_eq!(HashFn::new(7).hash(b"hello"), f.hash(b"hello"));
    }

    #[test]
    fn seed_changes_function() {
        let a = HashFn::new(1);
        let b = HashFn::new(2);
        assert_ne!(a.hash(b"hello"), b.hash(b"hello"));
    }

    #[test]
    fn family_members_differ() {
        let fam = HashFn::family(99, 4);
        assert_eq!(fam.len(), 4);
        let hs: Vec<u64> = fam.iter().map(|f| f.hash(b"x")).collect();
        for i in 0..hs.len() {
            for j in i + 1..hs.len() {
                assert_ne!(hs[i], hs[j]);
            }
        }
    }

    #[test]
    fn single_bit_avalanche() {
        // Flipping one input bit should flip roughly half the output bits.
        let f = HashFn::new(0);
        let mut total = 0u32;
        let trials = 64;
        for bit in 0..trials {
            let a = f.hash(&1234u64.to_be_bytes());
            let flipped = 1234u64 ^ (1 << (bit % 64));
            let b = f.hash(&flipped.to_be_bytes());
            total += (a ^ b).count_ones();
        }
        let mean = total as f64 / trials as f64;
        assert!((24.0..40.0).contains(&mean), "poor avalanche: {mean}");
    }

    #[test]
    fn low_bits_usable() {
        // FNV alone has weak low-order mixing for short keys; the finalizer
        // must fix it. Check bucket distribution over low 10 bits.
        let f = HashFn::new(3);
        let buckets = 1024;
        let mut counts = vec![0u32; buckets];
        for i in 0u32..buckets as u32 * 16 {
            let h = f.hash(&i.to_be_bytes());
            counts[(h & (buckets as u64 - 1)) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        assert!(max < 48, "low-bit clustering: max bucket {max}");
    }

    #[test]
    fn hash_u64_matches_quality() {
        let f = HashFn::new(11);
        assert_ne!(f.hash_u64(1), f.hash_u64(2));
        assert_eq!(f.hash_u64(5), f.hash_u64(5));
    }

    #[test]
    fn empty_input_is_fine() {
        let f = HashFn::new(0);
        let _ = f.hash(b"");
    }

    #[test]
    fn hash_all_matches_individual_hashes() {
        let fns = HashFn::family(0x51_1c, 9);
        let keys: [&[u8]; 4] = [
            b"",
            b"x",
            b"13-byte-key!!",
            b"a-37-byte-key-like-an-ipv6-five-tuple",
        ];
        for key in keys {
            let mut out = vec![0u64; fns.len()];
            hash_all(&fns, key, &mut out);
            for (i, f) in fns.iter().enumerate() {
                assert_eq!(out[i], f.hash(key), "fn {i} diverged on {key:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out length mismatch")]
    fn hash_all_length_checked() {
        let fns = HashFn::family(1, 2);
        let mut out = [0u64; 3];
        hash_all(&fns, b"k", &mut out);
    }
}
