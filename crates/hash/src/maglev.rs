//! Maglev consistent hashing (Eisenbud et al., NSDI 2016).
//!
//! The software-load-balancer baseline (`sr-baselines::slb`) selects DIPs
//! with Maglev's permutation-filled lookup table: each backend fills table
//! slots in its own permutation order, giving near-perfect balance and
//! minimal disruption when the backend set changes. This is the
//! "consistent hashing" the paper credits SLBs with (§8, Related work).

use crate::hasher::HashFn;

/// A Maglev lookup table over an ordered set of backends.
///
/// ```
/// use sr_hash::maglev::MaglevTable;
/// let backends: Vec<Vec<u8>> = (0..4).map(|i| format!("dip-{i}").into_bytes()).collect();
/// let t = MaglevTable::build(&backends, 4099, 1);
/// let b = t.select(b"flow").unwrap();
/// assert!(b < 4);
/// assert_eq!(t.select(b"flow"), Some(b)); // deterministic
/// ```
#[derive(Clone, Debug)]
pub struct MaglevTable {
    /// `table[slot] = backend index`, or `usize::MAX` when no backends.
    table: Vec<usize>,
    backends: usize,
    select: HashFn,
}

/// Smallest prime ≥ 100×typical pool size used by default; callers can pass
/// their own size (must be ≥ 1; primality improves balance but is not
/// required for correctness).
pub const DEFAULT_TABLE_SIZE: usize = 65_537;

impl MaglevTable {
    /// Build the lookup table for `backend_keys` (one stable identity byte
    /// string per backend, e.g. the DIP's canonical encoding).
    pub fn build(backend_keys: &[Vec<u8>], table_size: usize, seed: u64) -> MaglevTable {
        let m = table_size.max(1);
        let n = backend_keys.len();
        let select = HashFn::new(seed ^ 0x5e1ec7);
        if n == 0 {
            return MaglevTable {
                table: vec![usize::MAX; m],
                backends: 0,
                select,
            };
        }
        let h_offset = HashFn::new(seed ^ 0x0ff5e7);
        let h_skip = HashFn::new(seed ^ 0x5817);
        let mut offset = Vec::with_capacity(n);
        let mut skip = Vec::with_capacity(n);
        for k in backend_keys {
            offset.push((h_offset.hash(k) % m as u64) as usize);
            skip.push((h_skip.hash(k) % (m as u64 - 1).max(1) + 1) as usize);
        }
        let mut next = vec![0usize; n];
        let mut table = vec![usize::MAX; m];
        let mut filled = 0usize;
        'fill: loop {
            for b in 0..n {
                // Find backend b's next preferred slot that is still free.
                loop {
                    let slot = (offset[b] + next[b] * skip[b]) % m;
                    next[b] += 1;
                    if table[slot] == usize::MAX {
                        table[slot] = b;
                        filled += 1;
                        break;
                    }
                }
                if filled == m {
                    break 'fill;
                }
            }
        }
        MaglevTable {
            table,
            backends: n,
            select,
        }
    }

    /// Number of backends.
    pub fn backends(&self) -> usize {
        self.backends
    }

    /// Table size.
    pub fn table_size(&self) -> usize {
        self.table.len()
    }

    /// Select a backend index for a flow key, or `None` if no backends.
    pub fn select(&self, flow_key: &[u8]) -> Option<usize> {
        if self.backends == 0 {
            return None;
        }
        let slot = (self.select.hash(flow_key) % self.table.len() as u64) as usize;
        Some(self.table[slot])
    }

    /// Fraction of table slots owned by each backend (balance diagnostic).
    pub fn ownership(&self) -> Vec<f64> {
        let mut counts = vec![0usize; self.backends];
        for &b in &self.table {
            if b != usize::MAX {
                counts[b] += 1;
            }
        }
        counts
            .into_iter()
            .map(|c| c as f64 / self.table.len() as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("dip-{i}").into_bytes()).collect()
    }

    #[test]
    fn empty_pool_selects_none() {
        let t = MaglevTable::build(&[], 101, 0);
        assert_eq!(t.select(b"flow"), None);
    }

    #[test]
    fn selection_in_range_and_deterministic() {
        let t = MaglevTable::build(&keys(5), 101, 0);
        for i in 0..100u32 {
            let k = i.to_be_bytes();
            let a = t.select(&k).unwrap();
            assert!(a < 5);
            assert_eq!(t.select(&k), Some(a));
        }
    }

    #[test]
    fn balance_is_tight() {
        // Maglev's headline property: each backend owns ~1/n of the table.
        let n = 10;
        let t = MaglevTable::build(&keys(n), 10_007, 0);
        for share in t.ownership() {
            assert!((share - 0.1).abs() < 0.02, "share {share}");
        }
    }

    #[test]
    fn minimal_disruption_on_removal() {
        // Removing one of 10 backends should remap only ~1/10 of flows
        // (plus a small Maglev reshuffle factor), not ~all like hash-mod.
        let n = 10;
        let before = MaglevTable::build(&keys(n), 10_007, 0);
        let mut fewer = keys(n);
        fewer.remove(3);
        let after = MaglevTable::build(&fewer, 10_007, 0);

        let flows = 20_000u32;
        let mut moved = 0;
        for i in 0..flows {
            let k = i.to_be_bytes();
            let a = before.select(&k).unwrap();
            let b = after.select(&k).unwrap();
            // Map index in `after` back to original identity.
            let b_orig = if b >= 3 { b + 1 } else { b };
            if a != 3 && a != b_orig {
                moved += 1;
            }
        }
        let frac = moved as f64 / flows as f64;
        assert!(frac < 0.25, "disruption too large: {frac}");
    }

    #[test]
    fn table_fully_filled() {
        let t = MaglevTable::build(&keys(3), 101, 9);
        assert!(t.ownership().iter().sum::<f64>() > 0.999);
    }
}
