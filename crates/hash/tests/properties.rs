//! Property-based tests for the hashing substrate.

use proptest::prelude::*;
use sr_hash::cuckoo::{CuckooConfig, CuckooTable, MatchMode};
use sr_hash::maglev::MaglevTable;
use sr_hash::resilient::ResilientTable;
use sr_hash::{ecmp_select, BloomFilter, DigestFn, HashFn};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn hash_deterministic_any_input(bytes in proptest::collection::vec(any::<u8>(), 0..256), seed: u64) {
        let f = HashFn::new(seed);
        prop_assert_eq!(f.hash(&bytes), f.hash(&bytes));
    }

    #[test]
    fn ecmp_select_always_in_range(h: u64, n in 1usize..10_000) {
        let i = ecmp_select(h, n).unwrap();
        prop_assert!(i < n);
    }

    #[test]
    fn digest_fits_declared_width(key: u64, seed: u64, bits in 8u8..=32) {
        let d = DigestFn::new(seed, bits);
        let v = d.digest(&key.to_be_bytes()) as u64;
        prop_assert!(v < d.space());
    }

    #[test]
    fn bloom_inserted_keys_always_found(
        keys in proptest::collection::hash_set(any::<u32>(), 1..100),
        bytes in 8usize..512,
        k in 1usize..8,
        seed: u64,
    ) {
        let mut f = BloomFilter::new(bytes, k, seed);
        for key in &keys {
            f.insert(&key.to_be_bytes());
        }
        for key in &keys {
            prop_assert!(f.contains(&key.to_be_bytes()));
        }
    }

    #[test]
    fn cuckoo_relocate_preserves_contents(
        keys in proptest::collection::hash_set(any::<u32>(), 2..60),
        pick in any::<prop::sample::Index>(),
    ) {
        let mut t: CuckooTable<u32> = CuckooTable::new(CuckooConfig {
            stages: 4,
            words_per_stage: 32,
            entries_per_word: 4,
            match_mode: MatchMode::FullKey,
            seed: 7,
            max_bfs_depth: 8,
            max_bfs_nodes: 4096,
        });
        let keys: Vec<u32> = keys.into_iter().collect();
        for k in &keys {
            t.insert(&k.to_be_bytes(), *k).unwrap();
        }
        let victim = keys[pick.index(keys.len())];
        t.relocate(&victim.to_be_bytes()).unwrap();
        for k in &keys {
            let hit = t.lookup(&k.to_be_bytes()).expect("key lost after relocate");
            prop_assert_eq!(*hit.value, *k);
            prop_assert!(hit.exact);
        }
        prop_assert_eq!(t.len(), keys.len());
    }

    #[test]
    fn maglev_stable_under_irrelevant_order(
        n in 2usize..12,
        flows in proptest::collection::vec(any::<u64>(), 1..50),
    ) {
        // Same backend set, same seed => identical assignments, regardless
        // of how many times we build.
        let keys: Vec<Vec<u8>> = (0..n).map(|i| format!("b{i}").into_bytes()).collect();
        let a = MaglevTable::build(&keys, 4099, 3);
        let b = MaglevTable::build(&keys, 4099, 3);
        for f in &flows {
            prop_assert_eq!(a.select(&f.to_be_bytes()), b.select(&f.to_be_bytes()));
        }
    }

    #[test]
    fn resilient_failure_never_routes_to_failed(
        members in 2usize..16,
        fail in any::<prop::sample::Index>(),
        flows in proptest::collection::vec(any::<u64>(), 1..80),
    ) {
        let mut t = ResilientTable::new(members, 1024, 5);
        let failed = fail.index(members);
        t.fail_member(failed);
        for f in &flows {
            let m = t.select(&f.to_be_bytes()).unwrap();
            prop_assert_ne!(m, failed);
        }
    }

    #[test]
    fn resilient_unrelated_flows_pinned(
        members in 3usize..12,
        fail in any::<prop::sample::Index>(),
        flows in proptest::collection::vec(any::<u64>(), 1..80),
    ) {
        let mut t = ResilientTable::new(members, 2048, 9);
        let before: Vec<usize> = flows
            .iter()
            .map(|f| t.select(&f.to_be_bytes()).unwrap())
            .collect();
        let failed = fail.index(members);
        t.fail_member(failed);
        for (f, b) in flows.iter().zip(before) {
            if b != failed {
                prop_assert_eq!(t.select(&f.to_be_bytes()), Some(b));
            }
        }
    }
}
