//! Property-based tests for the algorithm zoo.
//!
//! The acceptance-critical property: CuCoTrack's fingerprint false
//! positives are **always audited, never silent**. A cuckoo-filter lookup
//! can alias two distinct 5-tuples onto one (bucket, fingerprint) pair;
//! when that happens the probe flow is honestly mis-steered — and the
//! audit oracle must count exactly those events.

use proptest::prelude::*;
use sr_algo::{ConnRecord, ConnState, CuckooFilterState, CucotrackLb, MAX_PACKET_HASHES};
use sr_hash::HashFn;
use sr_types::{Addr, AddrFamily, Dip, Duration, FiveTuple, Nanos, PacketMeta, PoolVersion, Vip};

fn vip() -> Vip {
    Vip(Addr::v4(20, 0, 0, 1, 80))
}

fn flow(g: u32, port: u16) -> FiveTuple {
    FiveTuple::tcp(Addr::v4_indexed(100, g, port), vip().0)
}

/// Hash a key the way `AlgoEngine` does for a 2-stage ConnState.
fn hash_for(fns: &[HashFn], key: &sr_types::TupleKey) -> (sr_algo::ConnHashes, u64) {
    let mut vals = [0u64; MAX_PACKET_HASHES];
    sr_hash::hash_all(fns, key.as_slice(), &mut vals[..fns.len()]);
    let mut stage_hashes = [0u64; MAX_PACKET_HASHES];
    stage_hashes[..2].copy_from_slice(&vals[..2]);
    (
        sr_algo::ConnHashes::from_parts(stage_hashes, 2, vals[2]),
        vals[3],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every inexact cuckoo-filter hit increments the collision audit:
    /// probing a dense filter with keys that were never inserted, the
    /// number of lookups that *return a record* equals the number of
    /// audited fingerprint collisions — no alias is ever served silently.
    #[test]
    fn cucotrack_fp_hits_are_always_audited(
        seed in any::<u64>(),
        resident in 24usize..64,
        probes in 256usize..1024,
    ) {
        let mut filter = CuckooFilterState::new(64, 8, 6, AddrFamily::V4, Duration::from_secs(60));
        let fns = HashFn::family(seed, 4);
        let record = ConnRecord {
            vip: vip(),
            version: PoolVersion(0),
            dip: Dip(Addr::v4(10, 0, 0, 1, 20)),
            arrived: Nanos(0),
        };
        for g in 0..resident {
            let key = flow(g as u32, 1024).tuple_key();
            let (hashes, _) = hash_for(&fns, &key);
            // Dense filters may refuse inserts; only resident keys matter.
            let _ = filter.insert(&key, &hashes, record);
        }
        let before = filter.fp_collisions();
        let mut aliased = 0u64;
        for g in 0..probes {
            // Disjoint flow-group range: none of these were inserted.
            let key = flow(1_000_000 + g as u32, 2048).tuple_key();
            let (hashes, _) = hash_for(&fns, &key);
            if let Some(hit) = filter.lookup(&key, &hashes) {
                prop_assert!(!hit.exact, "never-inserted key cannot match exactly");
                aliased += 1;
            }
        }
        prop_assert_eq!(
            filter.fp_collisions() - before,
            aliased,
            "every aliased hit must be audited"
        );
    }

    /// Inserted keys always read back exactly (no false *negatives* while
    /// resident), and removal restores a clean miss.
    #[test]
    fn cucotrack_resident_keys_read_back_exactly(
        seed in any::<u64>(),
        groups_raw in prop::collection::vec(0u32..10_000, 1..24),
    ) {
        let groups: std::collections::BTreeSet<u32> = groups_raw.into_iter().collect();
        let mut filter =
            CuckooFilterState::new(256, 8, 6, AddrFamily::V4, Duration::from_secs(60));
        let fns = HashFn::family(seed, 4);
        let record = ConnRecord {
            vip: vip(),
            version: PoolVersion(3),
            dip: Dip(Addr::v4(10, 0, 0, 2, 20)),
            arrived: Nanos(7),
        };
        let mut stored = Vec::new();
        for &g in &groups {
            let key = flow(g, 443).tuple_key();
            let (hashes, _) = hash_for(&fns, &key);
            if filter.insert(&key, &hashes, record).is_ok() {
                stored.push((key, hashes));
            }
        }
        for (key, hashes) in &stored {
            let hit = filter.lookup(key, hashes).expect("resident key must hit");
            prop_assert!(hit.exact);
            prop_assert_eq!(hit.record, record);
        }
        for (key, _) in &stored {
            prop_assert!(filter.remove(key).is_some());
        }
        prop_assert_eq!(filter.entries(), 0);
    }

    /// End-to-end through the engine: the `false_hits` stat equals the
    /// filter's audited collision count — the engine surfaces every
    /// mis-steer the filter detects.
    #[test]
    fn engine_false_hit_stat_matches_filter_audit(
        seed in any::<u64>(),
        probes in 128usize..512,
    ) {
        let mut e: CucotrackLb =
            sr_algo::cucotrack_lb(seed, AddrFamily::V4, 64, Duration::from_secs(60));
        prop_assert!(e.add_vip(vip(), &[Dip(Addr::v4(10, 0, 0, 1, 20))]));
        // Fill the tiny filter with long-lived flows.
        for g in 0..48u32 {
            e.process(&PacketMeta::syn(flow(g, 1024)), None, Nanos(0));
        }
        // Probe with data packets of never-seen flows: any conn-state hit
        // is a fingerprint alias.
        for g in 0..probes {
            e.process(
                &PacketMeta::data(flow(500_000 + g as u32, 2048), 100),
                None,
                Nanos(10),
            );
        }
        prop_assert_eq!(e.stats().false_hits, e.conn_state().fp_collisions());
    }
}
