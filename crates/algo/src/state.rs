//! The [`ConnState`] trait — per-connection lookup state — plus the
//! shared record type and a map-backed reference implementation.

use crate::cost::{conn_entry_bits, ConnStateDesign};
use crate::hashes::ConnHashes;
use sr_asic::sram::SramSpec;
use sr_hash::FxHashMap;
use sr_types::{AddrFamily, Dip, Duration, Nanos, PoolVersion, TupleKey, Vip};

/// Value tracked per connection — shared by every [`ConnState`]
/// implementation (SilkRoad's ConnTable stores exactly this; `sr-core`
/// aliases its `ConnValue` to it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConnRecord {
    /// The VIP the connection targets.
    pub vip: Vip,
    /// The DIP-pool version the connection is pinned to (always tracked for
    /// refcounting, even in direct-DIP mode).
    pub version: PoolVersion,
    /// The DIP resolved at learn time (authoritative in
    /// [`ConnMapping::DirectDip`] mode).
    ///
    /// [`ConnMapping::DirectDip`]: ConnStateDesign::Digest
    pub dip: Dip,
    /// First-packet arrival time (drives the 3-step update bookkeeping).
    pub arrived: Nanos,
}

/// Result of a [`ConnState::lookup`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConnHit {
    /// The stored record the match resolved to.
    pub record: ConnRecord,
    /// Whether the match is known to belong to the probed key. `false`
    /// means the structure matched on compressed identity (digest /
    /// fingerprint) for a *different* flow — a false positive the caller
    /// must count (and may honestly mis-steer on, as the real ASIC would).
    pub exact: bool,
}

/// Insertion failed: the structure is full (cuckoo kicks exhausted,
/// capacity reached). Mirrors the ASIC reality that inserts are the
/// fallible, software-assisted path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StateFull;

/// The per-connection state seam. Implementations range from SilkRoad's
/// digest ConnTable through CuCoTrack's cuckoo filter to a plain exact
/// map; all consume the same packet-time [`ConnHashes`] so the hash-once
/// discipline survives the abstraction.
pub trait ConnState {
    /// Look `key` up, marking the entry as hit where the implementation
    /// tracks liveness. Implementations that can alias (digest /
    /// fingerprint keys) return `exact: false` on a collision and are
    /// required to count it — never to absorb it silently.
    fn lookup(&mut self, key: &TupleKey, hashes: &ConnHashes) -> Option<ConnHit>;

    /// Install a record for `key`, reusing the packet-time hashes where the
    /// layout allows.
    fn insert(
        &mut self,
        key: &TupleKey,
        hashes: &ConnHashes,
        record: ConnRecord,
    ) -> Result<(), StateFull>;

    /// Note activity on `key` at `now` for idle accounting. Implementations
    /// whose liveness tracking is already folded into [`ConnState::lookup`]
    /// (hit bits, as in SilkRoad's ConnTable) keep the default no-op.
    fn touch(&mut self, key: &TupleKey, now: Nanos) {
        let _ = (key, now);
    }

    /// Remove `key`'s entry (connection close), returning the record if one
    /// was held.
    fn remove(&mut self, key: &TupleKey) -> Option<ConnRecord>;

    /// Expire idle entries as of `now`; returns how many were evicted.
    fn expire_idle(&mut self, now: Nanos) -> usize;

    /// Live entries held.
    fn entries(&self) -> usize;

    /// SRAM bytes the live entries occupy under this design's entry
    /// layout (word-packed, as the ASIC stores them). Audit-only shadow
    /// structures (full-key oracles) are excluded — they model switch-CPU
    /// memory, not SRAM.
    fn state_bytes(&self) -> u64;

    /// The entry layout, for the shared cost model.
    fn design(&self) -> ConnStateDesign;
}

/// A plain exact-match map with declared-layout SRAM accounting.
///
/// Models the "small side table" several designs carry: Concury's
/// transition-window entries, the hybrid's update-crossing entries. The
/// in-memory map stores full keys (it *is* exact — no false positives);
/// the SRAM figure is computed from the declared [`ConnStateDesign`], which
/// is what the corresponding ASIC table would store.
pub struct MapConnState {
    map: FxHashMap<TupleKey, (ConnRecord, Nanos)>,
    design: ConnStateDesign,
    family: AddrFamily,
    idle_timeout: Duration,
}

impl MapConnState {
    /// Build with the given SRAM entry layout and idle timeout.
    pub fn new(
        design: ConnStateDesign,
        family: AddrFamily,
        idle_timeout: Duration,
    ) -> MapConnState {
        MapConnState {
            map: FxHashMap::default(),
            design,
            family,
            idle_timeout,
        }
    }
}

impl ConnState for MapConnState {
    fn lookup(&mut self, key: &TupleKey, _hashes: &ConnHashes) -> Option<ConnHit> {
        let (record, _) = self.map.get(key)?;
        Some(ConnHit {
            record: *record,
            exact: true,
        })
    }

    fn touch(&mut self, key: &TupleKey, now: Nanos) {
        if let Some((_, touched)) = self.map.get_mut(key) {
            *touched = now;
        }
    }

    fn insert(
        &mut self,
        key: &TupleKey,
        _hashes: &ConnHashes,
        record: ConnRecord,
    ) -> Result<(), StateFull> {
        self.map.insert(*key, (record, record.arrived));
        Ok(())
    }

    fn remove(&mut self, key: &TupleKey) -> Option<ConnRecord> {
        self.map.remove(key).map(|(r, _)| r)
    }

    fn expire_idle(&mut self, now: Nanos) -> usize {
        let timeout = self.idle_timeout;
        let before = self.map.len();
        self.map
            .retain(|_, (_, touched)| now.since(*touched) < timeout);
        before - self.map.len()
    }

    fn entries(&self) -> usize {
        self.map.len()
    }

    fn state_bytes(&self) -> u64 {
        SramSpec {
            entry_bits: conn_entry_bits(self.design, self.family),
        }
        .bytes_for(self.map.len() as u64)
    }

    fn design(&self) -> ConnStateDesign {
        self.design
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_types::{Addr, FiveTuple};

    fn rec(i: u8) -> ConnRecord {
        ConnRecord {
            vip: Vip(Addr::v4(20, 0, 0, 1, 80)),
            version: PoolVersion(1),
            dip: Dip(Addr::v4(10, 0, 0, i, 20)),
            arrived: Nanos(100),
        }
    }

    fn key(i: u32) -> TupleKey {
        FiveTuple::tcp(Addr::v4_indexed(100, i, 1024), Addr::v4(20, 0, 0, 1, 80)).tuple_key()
    }

    fn map_state() -> MapConnState {
        MapConnState::new(
            ConnStateDesign::DigestVersion {
                digest_bits: 16,
                version_bits: 6,
            },
            AddrFamily::V4,
            Duration::from_secs(1),
        )
    }

    #[test]
    fn map_state_round_trips() {
        let mut s = map_state();
        let h = ConnHashes::empty();
        assert!(s.lookup(&key(1), &h).is_none());
        s.insert(&key(1), &h, rec(1)).unwrap();
        let hit = s.lookup(&key(1), &h).unwrap();
        assert!(hit.exact);
        assert_eq!(hit.record.dip, rec(1).dip);
        assert_eq!(s.entries(), 1);
        assert_eq!(s.remove(&key(1)).unwrap().dip, rec(1).dip);
        assert_eq!(s.entries(), 0);
    }

    #[test]
    fn map_state_expires_idle() {
        let mut s = map_state();
        let h = ConnHashes::empty();
        s.insert(&key(1), &h, rec(1)).unwrap();
        assert_eq!(s.expire_idle(Nanos(100)), 0);
        assert_eq!(s.expire_idle(Nanos(100 + 2_000_000_000)), 1);
        assert_eq!(s.entries(), 0);
    }

    #[test]
    fn map_state_accounts_declared_layout() {
        let mut s = map_state();
        let h = ConnHashes::empty();
        for i in 0..8 {
            s.insert(&key(i), &h, rec(1)).unwrap();
        }
        // 28-bit entries pack 4/word: 8 entries = 2 words = 28 bytes.
        assert_eq!(s.state_bytes(), 28);
    }
}
