//! Packet-time connection hashes — the currency of the algorithm boundary.
//!
//! Every [`crate::ConnState`] implementation consumes the same packet-time
//! hash bundle: per-stage bucket hashes plus a match-field hash, computed
//! once per packet and carried (by value, `Copy`, allocation-free) through
//! whatever learn→install pipeline the algorithm uses. This module is the
//! home of that bundle; `sr-core`'s `dataplane` re-exports it so the
//! SilkRoad switch's hash-once path and the zoo's engines share one type.

/// Upper bound on the hash functions the packet path evaluates *eagerly*
/// (ConnTable stages + digest + ECMP select). The paper's switch uses
/// 4 + 1 + 1; the bound is kept tight because the hashed-key carriers live
/// on the hot path's stack.
pub const MAX_PACKET_HASHES: usize = 8;

/// [`MAX_PACKET_HASHES`] as the `u8` lane counter the carriers store.
const MAX_LANES: u8 = MAX_PACKET_HASHES as u8;

/// The ConnTable hash values a learn event carries from packet time to
/// install time. `Copy` and fixed-size so the whole learn→CPU→install
/// journey stays allocation-free.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConnHashes {
    stage_hashes: [u64; MAX_PACKET_HASHES],
    stages: u8,
    match_hash: u64,
}

impl ConnHashes {
    /// A placeholder with no usable hashes (`stages() == 0`); install paths
    /// fall back to re-hashing the key when they meet one.
    pub fn empty() -> ConnHashes {
        ConnHashes {
            stage_hashes: [0u64; MAX_PACKET_HASHES],
            stages: 0,
            match_hash: 0,
        }
    }

    /// Assemble from a packet-time hash pass: the first `stages` lanes of
    /// `stage_hashes` are per-stage bucket hashes, `match_hash` is the
    /// match-field (digest/fingerprint) hash. Lane counts beyond
    /// [`MAX_PACKET_HASHES`] are clamped — callers size their hash layouts
    /// at construction, so the clamp is unreachable in practice.
    // srlint: hot-path begin
    pub fn from_parts(
        stage_hashes: [u64; MAX_PACKET_HASHES],
        stages: u8,
        match_hash: u64,
    ) -> ConnHashes {
        ConnHashes {
            stage_hashes,
            stages: stages.min(MAX_LANES),
            match_hash,
        }
    }

    /// Per-stage ConnTable bucket hashes.
    pub fn stage_hashes(&self) -> &[u64] {
        &self.stage_hashes[..usize::from(self.stages)]
    }

    /// The ConnTable match-field (digest) hash.
    pub fn match_hash(&self) -> u64 {
        self.match_hash
    }

    /// Number of stage hashes captured (0 for [`ConnHashes::empty`]).
    pub fn stages(&self) -> usize {
        usize::from(self.stages)
    }
    // srlint: hot-path end
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_has_no_stages() {
        let h = ConnHashes::empty();
        assert_eq!(h.stages(), 0);
        assert!(h.stage_hashes().is_empty());
        assert_eq!(h.match_hash(), 0);
    }

    #[test]
    fn from_parts_round_trips() {
        let mut lanes = [0u64; MAX_PACKET_HASHES];
        lanes[0] = 7;
        lanes[1] = 9;
        let h = ConnHashes::from_parts(lanes, 2, 0xfeed);
        assert_eq!(h.stages(), 2);
        assert_eq!(h.stage_hashes(), &[7, 9]);
        assert_eq!(h.match_hash(), 0xfeed);
    }

    #[test]
    fn from_parts_clamps_stage_count() {
        let h = ConnHashes::from_parts([1u64; MAX_PACKET_HASHES], 200, 0);
        assert_eq!(h.stages(), MAX_PACKET_HASHES);
    }
}
