//! The [`Steering`] trait — the miss-path seam of the algorithm boundary.

use crate::pools::VersionedPools;
use sr_types::{Dip, Nanos, PoolVersion, Vip};

/// A miss-path steering decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Steer {
    /// The chosen backend.
    pub dip: Dip,
    /// The pool version the choice was made under.
    pub version: PoolVersion,
    /// Whether the decision must be pinned in [`crate::ConnState`] to
    /// survive pool updates. SilkRoad pins every flow; Concury only
    /// transition-window flows; the hybrid only update-crossing flows.
    pub needs_entry: bool,
    /// What the edge should stamp into the packet so later packets of the
    /// flow can be steered statelessly (`None` for algorithms that encode
    /// nothing — the wire realization is `sr_wire::stamp`).
    pub stamp: Option<u8>,
}

/// The miss-path policy: DIP selection for flows with no connection entry,
/// plus the control-plane hooks (VIP registration, pool updates, time).
pub trait Steering {
    /// Whether `vip` is registered — non-VIP traffic bypasses the LB.
    fn is_vip(&self, vip: Vip) -> bool;

    /// Steer a packet that carries a stamped tag (version-in-packet
    /// designs). `None` falls through to the stateful lookup + miss path;
    /// the default ignores tags entirely.
    fn steer_tagged(&mut self, vip: Vip, select_hash: u64, tag: u8) -> Option<Steer> {
        let _ = (vip, select_hash, tag);
        None
    }

    /// Steer a flow with no connection entry. `None` means drop (empty or
    /// unknown pool).
    fn steer_miss(&mut self, vip: Vip, select_hash: u64, now: Nanos) -> Option<Steer>;

    /// Register a VIP with its initial pool. Returns `false` if already
    /// present.
    fn add_vip(&mut self, vip: Vip, dips: &[Dip]) -> bool;

    /// Replace `vip`'s pool membership (the compare harness expresses
    /// add/remove as full-membership updates). Returns the version the new
    /// membership was installed under, or `None` for an unknown VIP.
    fn update_pool(&mut self, vip: Vip, dips: &[Dip], now: Nanos) -> Option<PoolVersion>;

    /// Advance time-driven state (update-window settling). Default no-op.
    fn advance(&mut self, now: Nanos) {
        let _ = now;
    }

    /// SRAM bytes of the steering tables (VIPTable + versioned DIP pool
    /// rows) — the non-per-connection side of the memory matrix.
    fn table_bytes(&self) -> u64;
}

/// Fully stateful steering over versioned immutable pools: every new flow
/// is pinned in [`crate::ConnState`]. This is the trait-level model of
/// SilkRoad's miss path (the production implementation, with learning
/// filter and 3-step update protocol, is `silkroad::SilkRoadSwitch`);
/// the CuCoTrack zoo member composes it with a cuckoo-filter
/// [`crate::ConnState`].
pub struct StatefulSteering {
    pools: VersionedPools,
}

impl StatefulSteering {
    /// Build over pools with `version_bits`-wide version rings.
    pub fn new(version_bits: u8) -> StatefulSteering {
        StatefulSteering {
            pools: VersionedPools::new(version_bits),
        }
    }

    /// The underlying pools (matrix accounting).
    pub fn pools(&self) -> &VersionedPools {
        &self.pools
    }
}

impl Steering for StatefulSteering {
    fn is_vip(&self, vip: Vip) -> bool {
        self.pools.contains(vip)
    }

    fn steer_miss(&mut self, vip: Vip, select_hash: u64, _now: Nanos) -> Option<Steer> {
        let version = self.pools.current(vip)?;
        let dip = self.pools.select(vip, version, select_hash)?;
        Some(Steer {
            dip,
            version,
            needs_entry: true,
            stamp: None,
        })
    }

    fn add_vip(&mut self, vip: Vip, dips: &[Dip]) -> bool {
        self.pools.add_vip(vip, dips)
    }

    fn update_pool(&mut self, vip: Vip, dips: &[Dip], _now: Nanos) -> Option<PoolVersion> {
        self.pools.update(vip, dips)
    }

    fn table_bytes(&self) -> u64 {
        self.pools.table_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_types::Addr;

    fn vip() -> Vip {
        Vip(Addr::v4(20, 0, 0, 1, 80))
    }

    fn dips(n: u8) -> Vec<Dip> {
        (1..=n).map(|i| Dip(Addr::v4(10, 0, 0, i, 20))).collect()
    }

    #[test]
    fn stateful_pins_every_flow() {
        let mut s = StatefulSteering::new(6);
        assert!(s.add_vip(vip(), &dips(4)));
        assert!(s.is_vip(vip()));
        let st = s.steer_miss(vip(), 42, Nanos::ZERO).unwrap();
        assert!(st.needs_entry);
        assert!(st.stamp.is_none());
        assert!(dips(4).contains(&st.dip));
    }

    #[test]
    fn update_bumps_version() {
        let mut s = StatefulSteering::new(6);
        s.add_vip(vip(), &dips(4));
        let v0 = s.steer_miss(vip(), 42, Nanos::ZERO).unwrap().version;
        let v1 = s.update_pool(vip(), &dips(5), Nanos::ZERO).unwrap();
        assert_ne!(v0, v1);
        assert_eq!(s.steer_miss(vip(), 42, Nanos::ZERO).unwrap().version, v1);
    }

    #[test]
    fn unknown_vip_drops() {
        let mut s = StatefulSteering::new(6);
        assert!(!s.is_vip(vip()));
        assert!(s.steer_miss(vip(), 42, Nanos::ZERO).is_none());
    }
}
