//! The algorithm registry: names, parsing, and per-algorithm physical
//! pipeline layouts for `srcheck` validation.

use sr_asic::{MatchKind, PipelineProgram, RegisterDecl, TableDecl, TableDependency};

/// The four algorithms in the comparison zoo.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AlgoName {
    /// The paper's design: digest+version ConnTable for every flow.
    Silkroad,
    /// Version-in-packet steering; ConnTable only for transition windows.
    Concury,
    /// Cuckoo-filter fingerprint ConnTable; denser, audited false positives.
    Cucotrack,
    /// Stateless ECMP + entries only for update-crossing flows.
    Hybrid,
}

impl AlgoName {
    /// All algorithms, matrix order (SilkRoad first — the baseline row).
    pub fn all() -> [AlgoName; 4] {
        [
            AlgoName::Silkroad,
            AlgoName::Concury,
            AlgoName::Cucotrack,
            AlgoName::Hybrid,
        ]
    }

    /// The CLI/JSON name.
    pub fn label(self) -> &'static str {
        match self {
            AlgoName::Silkroad => "silkroad",
            AlgoName::Concury => "concury",
            AlgoName::Cucotrack => "cucotrack",
            AlgoName::Hybrid => "hybrid",
        }
    }

    /// Parse a CLI name (exact, lowercase).
    pub fn parse(s: &str) -> Option<AlgoName> {
        AlgoName::all().into_iter().find(|a| a.label() == s)
    }

    /// The algorithm's physical pipeline layout at comparison scale
    /// (1 M-connection class, 1 K VIPs), for `srcheck` placement
    /// validation. SilkRoad's is the paper layout; the others follow the
    /// same declaration discipline with their own table shapes.
    pub fn layout(self) -> PipelineProgram {
        match self {
            AlgoName::Silkroad => {
                PipelineProgram::silkroad(1_000_000, 4, 16, 6, 1_000, 4_000, 144, 256, 4)
            }
            AlgoName::Concury => concury_layout(),
            AlgoName::Cucotrack => cucotrack_layout(),
            AlgoName::Hybrid => hybrid_layout(),
        }
    }
}

impl std::fmt::Display for AlgoName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Concury: the version arrives *parsed from the packet* (DSCP), so the
/// pipeline needs no per-flow ConnTable at scale — a small transition
/// table covers window-born flows. The DIPPoolTable is the big structure:
/// per-version compact maps deep enough for a 64-version ring.
fn concury_layout() -> PipelineProgram {
    PipelineProgram {
        name: "concury",
        tables: vec![
            TableDecl {
                name: "TransitionTable",
                kind: MatchKind::Exact,
                key_bits: 104,
                stored_key_bits: 16,
                action_bits: 6,
                entries: 65_536,
                first_stage: 0,
                stages: 2,
                action_slots: 4,
            },
            TableDecl {
                name: "VIPTable",
                kind: MatchKind::Exact,
                key_bits: 152,
                stored_key_bits: 152,
                action_bits: 2 * 6,
                entries: 1_000,
                first_stage: 3,
                stages: 1,
                action_slots: 3,
            },
            // Versioned membership for the whole ring: the structure that
            // replaces per-connection state.
            TableDecl {
                name: "DIPPoolTable",
                kind: MatchKind::Exact,
                key_bits: 32 + 6,
                stored_key_bits: 32 + 6,
                action_bits: 144,
                entries: 64_000,
                first_stage: 4,
                stages: 2,
                action_slots: 6,
            },
        ],
        registers: vec![
            // Stamp validity counters: per-version liveness refcounts the
            // control plane reads before retiring a ring slot.
            RegisterDecl {
                name: "VersionRefcounts",
                cells: 64_000,
                width_bits: 32,
                alus: 2,
                index_hash_bits: 16,
                first_stage: 6,
                stages: 1,
                transactional: false,
            },
        ],
        deps: vec![
            TableDependency {
                before: "TransitionTable",
                after: "VIPTable",
            },
            TableDependency {
                before: "VIPTable",
                after: "DIPPoolTable",
            },
            TableDependency {
                before: "DIPPoolTable",
                after: "VersionRefcounts",
            },
        ],
        // Parsed DSCP version (6) + validity flag + select hash + digest.
        metadata_bits: 40,
        selector_hash_bits: 64,
        pipes: 1,
    }
}

/// CuCoTrack: a 2-way cuckoo-filter ConnTable storing 8-bit fingerprints +
/// 6-bit versions — denser words than SilkRoad (5 entries per 112-bit word
/// vs 4), provisioned for the same 1 M connections, plus an audit counter
/// register for the false-positive accounting the design owes its users.
fn cucotrack_layout() -> PipelineProgram {
    PipelineProgram {
        name: "cucotrack",
        tables: vec![
            TableDecl {
                name: "CuckooFilter",
                kind: MatchKind::Exact,
                key_bits: 104,
                stored_key_bits: 8,
                action_bits: 6,
                entries: 1_000_000,
                first_stage: 0,
                stages: 2,
                action_slots: 4,
            },
            TableDecl {
                name: "VIPTable",
                kind: MatchKind::Exact,
                key_bits: 152,
                stored_key_bits: 152,
                action_bits: 2 * 6,
                entries: 1_000,
                first_stage: 3,
                stages: 1,
                action_slots: 3,
            },
            TableDecl {
                name: "DIPPoolTable",
                kind: MatchKind::Exact,
                key_bits: 32 + 6,
                stored_key_bits: 32 + 6,
                action_bits: 144,
                entries: 4_000,
                first_stage: 4,
                stages: 1,
                action_slots: 6,
            },
        ],
        registers: vec![
            // False-positive audit counters (per-stage collision tallies
            // the switch CPU samples).
            RegisterDecl {
                name: "FpAuditCounters",
                cells: 4_096,
                width_bits: 32,
                alus: 2,
                index_hash_bits: 12,
                first_stage: 2,
                stages: 1,
                transactional: false,
            },
        ],
        deps: vec![
            TableDependency {
                before: "CuckooFilter",
                after: "FpAuditCounters",
            },
            TableDependency {
                before: "FpAuditCounters",
                after: "VIPTable",
            },
            TableDependency {
                before: "VIPTable",
                after: "DIPPoolTable",
            },
        ],
        // fingerprint (8) + version (6) + audit flag + select hash slice.
        metadata_bits: 32,
        selector_hash_bits: 64,
        pipes: 1,
    }
}

/// Hybrid: almost no match infrastructure — a VIPTable, one flat member
/// map, the ECMP selector hash, and a small exact table for the handful of
/// update-crossing flows (full 5-tuple keys: there is no digest path).
fn hybrid_layout() -> PipelineProgram {
    PipelineProgram {
        name: "hybrid",
        tables: vec![
            TableDecl {
                name: "PinnedFlowTable",
                kind: MatchKind::Exact,
                key_bits: 104,
                stored_key_bits: 104,
                action_bits: 144,
                entries: 65_536,
                first_stage: 0,
                stages: 2,
                action_slots: 4,
            },
            TableDecl {
                name: "VIPTable",
                kind: MatchKind::Exact,
                key_bits: 152,
                stored_key_bits: 152,
                action_bits: 2 * 6,
                entries: 1_000,
                first_stage: 3,
                stages: 1,
                action_slots: 3,
            },
            TableDecl {
                name: "EcmpMemberTable",
                kind: MatchKind::Exact,
                key_bits: 32,
                stored_key_bits: 32,
                action_bits: 144,
                entries: 16_000,
                first_stage: 4,
                stages: 1,
                action_slots: 6,
            },
        ],
        registers: vec![],
        deps: vec![
            TableDependency {
                before: "PinnedFlowTable",
                after: "VIPTable",
            },
            TableDependency {
                before: "VIPTable",
                after: "EcmpMemberTable",
            },
        ],
        // Window flag + generation + select hash.
        metadata_bits: 24,
        selector_hash_bits: 64,
        pipes: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_asic::ChipSpec;

    #[test]
    fn parse_round_trips_all_names() {
        for a in AlgoName::all() {
            assert_eq!(AlgoName::parse(a.label()), Some(a));
        }
        assert_eq!(AlgoName::parse("nosuch"), None);
        assert_eq!(AlgoName::parse("SILKROAD"), None, "names are lowercase");
    }

    #[test]
    fn all_four_layouts_place_on_the_papers_chip() {
        let chip = ChipSpec::tofino_class();
        for a in AlgoName::all() {
            let report = a.layout().check(&chip);
            assert!(
                report.is_placeable(),
                "{} not placeable:\n{}",
                a.label(),
                report.render()
            );
        }
    }

    #[test]
    fn concury_spends_sram_on_pools_not_connections() {
        let concury = AlgoName::Concury.layout().resource_usage();
        let silkroad = AlgoName::Silkroad.layout().resource_usage();
        // Concury's whole footprint is below SilkRoad's even though its
        // 64K-row versioned pool table dominates it: trading 1M conn
        // entries for deep pools is the design's honest bargain.
        assert!(
            concury.sram_bytes < silkroad.sram_bytes * 0.7,
            "concury {} vs silkroad {}",
            concury.sram_bytes,
            silkroad.sram_bytes
        );
    }

    #[test]
    fn cucotrack_conn_entries_are_denser_than_silkroads() {
        let cuco = AlgoName::Cucotrack.layout();
        let silk = AlgoName::Silkroad.layout();
        let cuco_conn = cuco
            .tables
            .iter()
            .find(|t| t.name == "CuckooFilter")
            .unwrap();
        let silk_conn = silk.tables.iter().find(|t| t.name == "ConnTable").unwrap();
        assert_eq!(cuco_conn.entries, silk_conn.entries);
        assert!(cuco_conn.sram_bytes() < silk_conn.sram_bytes());
    }
}
