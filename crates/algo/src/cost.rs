//! The shared SRAM entry-layout model — one formula for every figure.
//!
//! SilkRoad's memory figures (`silkroad::memory`, Figures 12/14), the
//! baseline cost models (`sr-baselines`), and the comparison matrix
//! (`repro compare`) must agree on what one connection entry costs. This
//! module is the single source of truth: entry layouts in bits per
//! [`ConnStateDesign`], plus the auxiliary row layouts (VIPTable,
//! DIPPoolTable) the versioned designs carry.

use sr_types::AddrFamily;

/// Per-entry packing overhead bits (instruction + next-table address, §6).
pub const OVERHEAD_BITS: u32 = 6;

/// How a design encodes one connection entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnStateDesign {
    /// Full 5-tuple key + full DIP+port action (software LBs, and the
    /// naive ASIC strawman of Fig 14).
    NaiveExact,
    /// Digest key + full DIP+port action (SilkRoad's §4.2 fallback).
    Digest {
        /// Digest width in bits.
        digest_bits: u8,
    },
    /// Digest key + version action + DIPPoolTable indirection (SilkRoad's
    /// primary design: 16 + 6 + overhead = 28 bits).
    DigestVersion {
        /// Digest width in bits.
        digest_bits: u8,
        /// Version width in bits.
        version_bits: u8,
    },
    /// Cuckoo-filter fingerprint key + version action (CuCoTrack: denser
    /// than a digest entry, at the price of audited false positives).
    Fingerprint {
        /// Fingerprint width in bits.
        fp_bits: u8,
        /// Version width in bits.
        version_bits: u8,
    },
    /// No per-connection switch state at all (ECMP, Concury's
    /// steady-state flows, the hybrid's stable-version flows).
    Stateless,
}

/// Bits one connection entry occupies under `design` for `family` keys.
///
/// `Stateless` costs zero — the whole point of the designs that encode
/// the decision in the packet or the hash function instead of SRAM.
pub fn conn_entry_bits(design: ConnStateDesign, family: AddrFamily) -> u32 {
    let key_bits = 8 * family.five_tuple_bytes() as u32;
    let action_full = 8 * family.dip_action_bytes() as u32;
    match design {
        ConnStateDesign::NaiveExact => key_bits + action_full + OVERHEAD_BITS,
        ConnStateDesign::Digest { digest_bits } => {
            u32::from(digest_bits) + action_full + OVERHEAD_BITS
        }
        ConnStateDesign::DigestVersion {
            digest_bits,
            version_bits,
        } => u32::from(digest_bits) + u32::from(version_bits) + OVERHEAD_BITS,
        ConnStateDesign::Fingerprint {
            fp_bits,
            version_bits,
        } => u32::from(fp_bits) + u32::from(version_bits) + OVERHEAD_BITS,
        ConnStateDesign::Stateless => 0,
    }
}

/// SRAM bits of one VIPTable row for `family`: VIP key (addr + port +
/// proto) plus old/new version actions.
pub fn vip_row_bits(family: AddrFamily) -> u32 {
    let vip_key_bits = 8 * (family.addr_bytes() as u32 + 2) + 8;
    vip_key_bits + 2 * 6 + OVERHEAD_BITS
}

/// SRAM bits of one DIPPoolTable row header: (VIP index, version) key.
pub fn pool_row_bits(version_bits: u8) -> u32 {
    32 + u32::from(version_bits) + OVERHEAD_BITS
}

/// SRAM bits of one DIPPoolTable member (DIP + port action datum).
pub fn pool_member_bits(family: AddrFamily) -> u32 {
    8 * family.dip_action_bytes() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silkroad_entry_is_28_bits() {
        // The paper's headline: 16-bit digest + 6-bit version + 6 overhead.
        assert_eq!(
            conn_entry_bits(
                ConnStateDesign::DigestVersion {
                    digest_bits: 16,
                    version_bits: 6
                },
                AddrFamily::V6
            ),
            28
        );
    }

    #[test]
    fn naive_ipv6_entry_is_446_bits() {
        // 37 B key + 18 B action + 6 b overhead.
        assert_eq!(
            conn_entry_bits(ConnStateDesign::NaiveExact, AddrFamily::V6),
            446
        );
    }

    #[test]
    fn fingerprint_is_denser_than_digest_version() {
        let fp = conn_entry_bits(
            ConnStateDesign::Fingerprint {
                fp_bits: 8,
                version_bits: 6,
            },
            AddrFamily::V6,
        );
        let dv = conn_entry_bits(
            ConnStateDesign::DigestVersion {
                digest_bits: 16,
                version_bits: 6,
            },
            AddrFamily::V6,
        );
        assert_eq!(fp, 20);
        assert!(fp < dv);
    }

    #[test]
    fn stateless_costs_nothing_everywhere() {
        for family in [AddrFamily::V4, AddrFamily::V6] {
            assert_eq!(conn_entry_bits(ConnStateDesign::Stateless, family), 0);
        }
    }

    #[test]
    fn family_sizes_orderings() {
        // Entry layouts keyed on full tuples must grow with the family.
        assert!(
            conn_entry_bits(ConnStateDesign::NaiveExact, AddrFamily::V6)
                > conn_entry_bits(ConnStateDesign::NaiveExact, AddrFamily::V4)
        );
        // Digest-keyed layouts are family-independent on the key side.
        assert_eq!(
            conn_entry_bits(
                ConnStateDesign::DigestVersion {
                    digest_bits: 16,
                    version_bits: 6
                },
                AddrFamily::V4
            ),
            conn_entry_bits(
                ConnStateDesign::DigestVersion {
                    digest_bits: 16,
                    version_bits: 6
                },
                AddrFamily::V6
            ),
        );
    }
}
