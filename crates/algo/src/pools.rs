//! Versioned immutable DIP pools — the steering substrate the zoo shares.
//!
//! SilkRoad, Concury, and CuCoTrack all steer new flows through versioned
//! immutable pool membership: an update *creates a new version* rather than
//! mutating the live one, so any flow pinned to (or stamped with) an old
//! version keeps resolving against the membership it was born under.
//! Selection within a pool is `sr_hash::ecmp_select` — the same
//! multiply-shift kernel `sr-baselines`' ECMP and the hybrid's stateless
//! path use, so cross-algorithm DIP choices are comparable by construction.

use crate::cost::{pool_member_bits, pool_row_bits, vip_row_bits};
use sr_asic::sram::SramSpec;
use sr_hash::{ecmp_select, FxHashMap};
use sr_types::{AddrFamily, Dip, PoolVersion, Vip};

struct VipPools {
    /// Live `(version, membership)` rows, oldest first.
    versions: Vec<(PoolVersion, Vec<Dip>)>,
    current: PoolVersion,
}

/// Per-VIP versioned immutable pools with SRAM row accounting.
pub struct VersionedPools {
    vips: FxHashMap<Vip, VipPools>,
    version_bits: u8,
}

impl VersionedPools {
    /// Build with `version_bits`-wide version rings (SilkRoad uses 6).
    pub fn new(version_bits: u8) -> VersionedPools {
        VersionedPools {
            vips: FxHashMap::default(),
            version_bits,
        }
    }

    /// Register `vip` at version 0. Returns `false` if already present.
    pub fn add_vip(&mut self, vip: Vip, dips: &[Dip]) -> bool {
        if self.vips.contains_key(&vip) {
            return false;
        }
        self.vips.insert(
            vip,
            VipPools {
                versions: vec![(PoolVersion(0), dips.to_vec())],
                current: PoolVersion(0),
            },
        );
        true
    }

    /// Whether `vip` is registered.
    pub fn contains(&self, vip: Vip) -> bool {
        self.vips.contains_key(&vip)
    }

    /// Install a new membership under the next ring version and make it
    /// current. Old versions stay resolvable (immutable pools) until the
    /// ring wraps onto them.
    pub fn update(&mut self, vip: Vip, dips: &[Dip]) -> Option<PoolVersion> {
        let bits = self.version_bits;
        let state = self.vips.get_mut(&vip)?;
        let next = state.current.next_in_ring(bits);
        // Ring reuse: a wrap onto a still-live row replaces it.
        state.versions.retain(|(v, _)| *v != next);
        state.versions.push((next, dips.to_vec()));
        state.current = next;
        Some(next)
    }

    /// The current (steering) version of `vip`.
    pub fn current(&self, vip: Vip) -> Option<PoolVersion> {
        Some(self.vips.get(&vip)?.current)
    }

    /// Resolve a DIP in `vip`'s pool at `version` by flow hash. `None` if
    /// the VIP, the version row, or any member is missing.
    pub fn select(&self, vip: Vip, version: PoolVersion, select_hash: u64) -> Option<Dip> {
        let state = self.vips.get(&vip)?;
        let (_, members) = state.versions.iter().find(|(v, _)| *v == version)?;
        let idx = ecmp_select(select_hash, members.len())?;
        members.get(idx).copied()
    }

    /// Membership of `vip` at `version` (tests, diffing).
    pub fn members(&self, vip: Vip, version: PoolVersion) -> Option<&[Dip]> {
        let state = self.vips.get(&vip)?;
        state
            .versions
            .iter()
            .find(|(v, _)| *v == version)
            .map(|(_, m)| m.as_slice())
    }

    /// Live `(VIP, version)` rows.
    pub fn rows(&self) -> u64 {
        self.vips.values().map(|s| s.versions.len() as u64).sum()
    }

    /// Total members across live rows.
    pub fn total_members(&self) -> u64 {
        self.vips
            .values()
            .flat_map(|s| s.versions.iter())
            .map(|(_, m)| m.len() as u64)
            .sum()
    }

    /// SRAM bytes of the steering tables: VIPTable rows + DIPPoolTable row
    /// headers + member words, under the shared [`crate::cost`] layouts.
    /// Membership is family-homogeneous per deployment; the dominant V4/V6
    /// family of the stored DIPs sizes the rows (V4 when empty).
    pub fn table_bytes(&self) -> u64 {
        let family = self
            .vips
            .values()
            .flat_map(|s| s.versions.iter())
            .flat_map(|(_, m)| m.first())
            .map(|d| d.family())
            .next()
            .unwrap_or(AddrFamily::V4);
        let vip_rows = SramSpec {
            entry_bits: vip_row_bits(family),
        }
        .bytes_for(self.vips.len() as u64);
        let pool_rows = SramSpec {
            entry_bits: pool_row_bits(self.version_bits),
        }
        .bytes_for(self.rows());
        let members = SramSpec {
            entry_bits: pool_member_bits(family),
        }
        .bytes_for(self.total_members());
        vip_rows + pool_rows + members
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_types::Addr;

    fn vip() -> Vip {
        Vip(Addr::v4(20, 0, 0, 1, 80))
    }

    fn dips(n: u8) -> Vec<Dip> {
        (1..=n).map(|i| Dip(Addr::v4(10, 0, 0, i, 20))).collect()
    }

    #[test]
    fn old_versions_stay_resolvable() {
        let mut p = VersionedPools::new(6);
        assert!(p.add_vip(vip(), &dips(4)));
        let v0 = p.current(vip()).unwrap();
        let d0 = p.select(vip(), v0, 12345).unwrap();
        let v1 = p.update(vip(), &dips(5)).unwrap();
        assert_ne!(v0, v1);
        // The old row still resolves to the same DIP after the update —
        // immutability is what makes version-in-packet steering PCC-safe.
        assert_eq!(p.select(vip(), v0, 12345).unwrap(), d0);
        assert_eq!(p.rows(), 2);
        assert_eq!(p.total_members(), 9);
    }

    #[test]
    fn ring_wrap_replaces_rows() {
        let mut p = VersionedPools::new(2); // ring of 4
        p.add_vip(vip(), &dips(2));
        for _ in 0..5 {
            p.update(vip(), &dips(3)).unwrap();
        }
        assert!(p.rows() <= 4, "rows {}", p.rows());
    }

    #[test]
    fn table_bytes_grow_with_rows() {
        let mut p = VersionedPools::new(6);
        p.add_vip(vip(), &dips(4));
        let b0 = p.table_bytes();
        p.update(vip(), &dips(5)).unwrap();
        assert!(p.table_bytes() > b0);
    }

    #[test]
    fn select_is_the_shared_ecmp_kernel() {
        let mut p = VersionedPools::new(6);
        p.add_vip(vip(), &dips(4));
        let v = p.current(vip()).unwrap();
        for h in [0u64, 1, u64::MAX, 0xdead_beef] {
            let want = ecmp_select(h, 4).map(|i| dips(4)[i]);
            assert_eq!(p.select(vip(), v, h), want);
        }
    }
}
