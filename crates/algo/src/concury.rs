//! Concury-style version-in-packet steering.
//!
//! Concury's observation: if the pool version a flow was born under rides
//! *in the packet* (stamped into the DSCP field at the edge —
//! `sr_wire::stamp` is the wire realization), then the switch can resolve
//! every subsequent packet against the immutable pool of that version with
//! **zero** per-connection SRAM. The ConnTable shrinks to a transition
//! window: only flows born while an update is settling (before the edge
//! reliably stamps the new version) get pinned entries, and those expire
//! once the window closes.
//!
//! PCC comes from pool immutability: a stamped version always resolves
//! against the membership it named when the flow was born, as long as the
//! version ring is deep enough to outlive the flow (64 versions at
//! SilkRoad's 6-bit width; the ring-wrap hazard is shared with SilkRoad
//! itself).

use crate::cost::ConnStateDesign;
use crate::engine::AlgoEngine;
use crate::pools::VersionedPools;
use crate::state::MapConnState;
use crate::steer::{Steer, Steering};
use sr_types::{AddrFamily, Dip, Duration, Nanos, PoolVersion, Vip};

/// Mask for the stamped version tag (6-bit DSCP payload).
const TAG_MASK: u16 = 0x3f;

/// Version-in-packet steering over versioned immutable pools.
pub struct ConcurySteering {
    pools: VersionedPools,
    /// Transition window: while open, newborn flows get pinned entries
    /// because the edge may still stamp the pre-update version.
    window_until: Nanos,
    settle: Duration,
}

impl ConcurySteering {
    /// Build with a 6-bit version ring and the given transition-window
    /// settle time (how long the edge takes to converge on a new version).
    pub fn new(settle: Duration) -> ConcurySteering {
        ConcurySteering {
            pools: VersionedPools::new(6),
            window_until: Nanos::ZERO,
            settle,
        }
    }

    /// The underlying pools (matrix accounting).
    pub fn pools(&self) -> &VersionedPools {
        &self.pools
    }

    /// Whether the transition window is open at `now`.
    pub fn window_open(&self, now: Nanos) -> bool {
        now < self.window_until
    }
}

/// Encode a pool version as the 6-bit on-wire tag.
pub fn version_tag(version: PoolVersion) -> u8 {
    (version.0 & TAG_MASK) as u8
}

impl Steering for ConcurySteering {
    fn is_vip(&self, vip: Vip) -> bool {
        self.pools.contains(vip)
    }

    fn steer_tagged(&mut self, vip: Vip, select_hash: u64, tag: u8) -> Option<Steer> {
        let version = PoolVersion(u16::from(tag) & TAG_MASK);
        let dip = self.pools.select(vip, version, select_hash)?;
        Some(Steer {
            dip,
            version,
            needs_entry: false,
            stamp: Some(tag),
        })
    }

    fn steer_miss(&mut self, vip: Vip, select_hash: u64, now: Nanos) -> Option<Steer> {
        let version = self.pools.current(vip)?;
        let dip = self.pools.select(vip, version, select_hash)?;
        Some(Steer {
            dip,
            version,
            // Only transition-window newborns need SRAM: the stamp has not
            // settled at the edge yet, so the entry pins the decision.
            needs_entry: self.window_open(now),
            stamp: Some(version_tag(version)),
        })
    }

    fn add_vip(&mut self, vip: Vip, dips: &[Dip]) -> bool {
        self.pools.add_vip(vip, dips)
    }

    fn update_pool(&mut self, vip: Vip, dips: &[Dip], now: Nanos) -> Option<PoolVersion> {
        let v = self.pools.update(vip, dips)?;
        self.window_until = now.saturating_add(self.settle);
        Some(v)
    }

    fn table_bytes(&self) -> u64 {
        self.pools.table_bytes()
    }
}

/// The assembled Concury engine: version-in-packet steering + a small
/// digest+version side table for transition-window flows.
pub type ConcuryLb = AlgoEngine<MapConnState, ConcurySteering>;

/// Build a [`ConcuryLb`] with SilkRoad-comparable parameters.
pub fn concury_lb(seed: u64, family: AddrFamily, settle: Duration) -> ConcuryLb {
    let conn = MapConnState::new(
        ConnStateDesign::DigestVersion {
            digest_bits: 16,
            version_bits: 6,
        },
        family,
        // Transition entries only need to outlive the window.
        settle.saturating_mul(2),
    );
    AlgoEngine::new(conn, ConcurySteering::new(settle), seed, 4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::ConnState;
    use sr_types::{Addr, FiveTuple, PacketMeta};

    fn vip() -> Vip {
        Vip(Addr::v4(20, 0, 0, 1, 80))
    }

    fn dips(n: u8) -> Vec<Dip> {
        (1..=n).map(|i| Dip(Addr::v4(10, 0, 0, i, 20))).collect()
    }

    fn flow(g: u32) -> FiveTuple {
        FiveTuple::tcp(Addr::v4_indexed(100, g, 1024), vip().0)
    }

    fn lb() -> ConcuryLb {
        let mut e = concury_lb(7, AddrFamily::V4, Duration::from_millis(10));
        assert!(e.add_vip(vip(), &dips(4)));
        e
    }

    #[test]
    fn steady_state_needs_no_entries() {
        let mut e = lb();
        let d0 = e.process(&PacketMeta::syn(flow(1)), None, Nanos(0));
        let stamp = d0.stamp.expect("first packet returns a stamp");
        assert_eq!(e.conn_state().entries(), 0, "no window, no entry");
        // Later packets carry the stamp and ride the tagged fast path.
        let d1 = e.process(&PacketMeta::data(flow(1), 100), Some(stamp), Nanos(5));
        assert_eq!(d1.dip, d0.dip);
        assert!(!d1.from_conn_state);
        assert_eq!(e.stats().tagged, 1);
    }

    #[test]
    fn stamped_flows_survive_updates() {
        let mut e = lb();
        let d0 = e.process(&PacketMeta::syn(flow(1)), None, Nanos(0));
        let stamp = d0.stamp.unwrap();
        e.update_pool(vip(), &dips(5), Nanos(10)).unwrap();
        e.update_pool(vip(), &[Dip(Addr::v4(10, 9, 9, 9, 20))], Nanos(20))
            .unwrap();
        // The stamp still names the birth version's immutable pool.
        let d1 = e.process(&PacketMeta::data(flow(1), 100), Some(stamp), Nanos(30));
        assert_eq!(d1.dip, d0.dip);
    }

    #[test]
    fn window_newborns_get_pinned() {
        let mut e = lb();
        e.update_pool(vip(), &dips(5), Nanos(0)).unwrap();
        // Born inside the 10 ms window: entry installed.
        e.process(&PacketMeta::syn(flow(2)), None, Nanos(1_000_000));
        assert_eq!(e.conn_state().entries(), 1);
        // Born after the window: stateless again.
        e.process(&PacketMeta::syn(flow(3)), None, Nanos(11_000_000));
        assert_eq!(e.conn_state().entries(), 1);
        assert_eq!(e.stats().inserts, 1);
    }

    #[test]
    fn tag_round_trip_is_lossless_in_ring() {
        for v in 0..64u16 {
            let tag = version_tag(PoolVersion(v));
            assert_eq!(PoolVersion(u16::from(tag)), PoolVersion(v));
        }
    }
}
