//! CuCoTrack-style cuckoo-filter connection tracking.
//!
//! Instead of SilkRoad's 16-bit digest + 6-bit version entries, CuCoTrack
//! stores an 8-bit *fingerprint* + version in a 2-way, 4-slot-per-bucket
//! cuckoo filter — 20 bits/entry to SilkRoad's 28. The price is a much
//! higher aliasing probability: two flows hashing to the same bucket with
//! the same fingerprint are indistinguishable to the ASIC, and the second
//! flow is steered by the first flow's entry.
//!
//! This implementation refuses to launder that: every slot carries the full
//! key as an **audit oracle** (modeling the switch-CPU shadow the real
//! design keeps — it is *not* counted in [`ConnState::state_bytes`]), and
//! every fingerprint match is audited against it. A mismatch is counted in
//! [`CuckooFilterState::fp_collisions`] and surfaced as `exact: false` —
//! the packet is still steered by the aliased entry (as the hardware
//! would), so the PCC damage shows up honestly in the comparison matrix.

use crate::cost::{conn_entry_bits, ConnStateDesign};
use crate::engine::AlgoEngine;
use crate::hashes::ConnHashes;
use crate::state::{ConnHit, ConnRecord, ConnState, StateFull};
use crate::steer::StatefulSteering;
use sr_asic::sram::SramSpec;
use sr_types::{AddrFamily, Duration, Nanos, TupleKey};

/// Slots per bucket (the classic (2,4) cuckoo-filter geometry).
const SLOTS_PER_BUCKET: usize = 4;

/// Bounded kick chain before an insert is declared failed.
const MAX_KICKS: usize = 32;

#[derive(Clone, Copy)]
struct Slot {
    fp: u16,
    /// Audit oracle: the flow the entry was installed for. Switch-CPU
    /// memory in the real design; never counted as SRAM.
    key: TupleKey,
    record: ConnRecord,
    touched: Nanos,
    /// The slot's two candidate buckets (for kick relocation).
    buckets: [u32; 2],
}

/// A 2-way cuckoo-filter [`ConnState`] with fingerprint false-positive
/// accounting.
pub struct CuckooFilterState {
    buckets: Vec<[Option<Slot>; SLOTS_PER_BUCKET]>,
    bucket_mask: u64,
    fp_bits: u8,
    version_bits: u8,
    family: AddrFamily,
    idle_timeout: Duration,
    live: usize,
    fp_collisions: u64,
    kick_seed: u64,
}

impl CuckooFilterState {
    /// Build with capacity for roughly `capacity` entries at the given
    /// fingerprint width. Capacity is rounded up to a power-of-two bucket
    /// count.
    pub fn new(
        capacity: usize,
        fp_bits: u8,
        version_bits: u8,
        family: AddrFamily,
        idle_timeout: Duration,
    ) -> CuckooFilterState {
        assert!(
            (1..=16).contains(&fp_bits),
            "fingerprint width {fp_bits} out of 1..=16"
        );
        let want = capacity.div_ceil(SLOTS_PER_BUCKET).max(2);
        let buckets = want.next_power_of_two();
        CuckooFilterState {
            buckets: vec![[None; SLOTS_PER_BUCKET]; buckets],
            bucket_mask: buckets as u64 - 1,
            fp_bits,
            version_bits,
            family,
            idle_timeout,
            live: 0,
            fp_collisions: 0,
            kick_seed: 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Audited fingerprint collisions: lookups that matched a fingerprint
    /// installed for a *different* flow.
    pub fn fp_collisions(&self) -> u64 {
        self.fp_collisions
    }

    /// Fingerprint width in bits.
    pub fn fp_bits(&self) -> u8 {
        self.fp_bits
    }

    fn fingerprint(&self, hashes: &ConnHashes) -> u16 {
        let mask = (1u32 << self.fp_bits) - 1;
        // Fingerprint 0 is reserved as "no clue either way"; remap to keep
        // every stored fingerprint nonzero without biasing the range much.
        let fp = (hashes.match_hash() as u32) & mask;
        if fp == 0 {
            1
        } else {
            fp as u16
        }
    }

    fn bucket_pair(&self, hashes: &ConnHashes, fp: u16) -> [u32; 2] {
        let lanes = hashes.stage_hashes();
        let b0 = lanes.first().copied().unwrap_or(hashes.match_hash()) & self.bucket_mask;
        // Partial-key displacement: the alternate bucket is derived from
        // the first and the fingerprint, so relocation needs only the slot.
        let b1 = (b0 ^ sr_hash::splitmix64(u64::from(fp))) & self.bucket_mask;
        [b0 as u32, b1 as u32]
    }

    fn slot_scan(&mut self, buckets: [u32; 2], fp: u16, key: &TupleKey) -> Option<(usize, usize)> {
        for &b in &buckets {
            let bucket = self.buckets.get(b as usize)?;
            for (i, slot) in bucket.iter().enumerate() {
                if let Some(s) = slot {
                    if s.fp == fp {
                        if &s.key != key {
                            self.fp_collisions += 1;
                        }
                        return Some((b as usize, i));
                    }
                }
            }
        }
        None
    }
}

impl ConnState for CuckooFilterState {
    fn lookup(&mut self, key: &TupleKey, hashes: &ConnHashes) -> Option<ConnHit> {
        let fp = self.fingerprint(hashes);
        let buckets = self.bucket_pair(hashes, fp);
        let (b, i) = self.slot_scan(buckets, fp, key)?;
        let slot = self.buckets.get(b)?.get(i)?.as_ref()?;
        Some(ConnHit {
            record: slot.record,
            exact: &slot.key == key,
        })
    }

    fn insert(
        &mut self,
        key: &TupleKey,
        hashes: &ConnHashes,
        record: ConnRecord,
    ) -> Result<(), StateFull> {
        let fp = self.fingerprint(hashes);
        let buckets = self.bucket_pair(hashes, fp);
        let mut incoming = Slot {
            fp,
            key: *key,
            record,
            touched: record.arrived,
            buckets,
        };
        // Try both candidate buckets, then kick.
        for &b in &buckets {
            if let Some(bucket) = self.buckets.get_mut(b as usize) {
                if let Some(empty) = bucket.iter_mut().find(|s| s.is_none()) {
                    *empty = Some(incoming);
                    self.live += 1;
                    return Ok(());
                }
            }
        }
        let mut at = buckets[1] as usize;
        for _ in 0..MAX_KICKS {
            self.kick_seed = sr_hash::splitmix64(self.kick_seed);
            let victim_idx = (self.kick_seed as usize) % SLOTS_PER_BUCKET;
            let Some(bucket) = self.buckets.get_mut(at) else {
                return Err(StateFull);
            };
            let Some(victim_slot) = bucket.get_mut(victim_idx) else {
                return Err(StateFull);
            };
            let Some(victim) = victim_slot.replace(incoming) else {
                // Raced onto an empty slot: done.
                self.live += 1;
                return Ok(());
            };
            // Send the victim to its other candidate bucket.
            let other = if victim.buckets[0] as usize == at {
                victim.buckets[1] as usize
            } else {
                victim.buckets[0] as usize
            };
            if let Some(dest) = self.buckets.get_mut(other) {
                if let Some(empty) = dest.iter_mut().find(|s| s.is_none()) {
                    *empty = Some(victim);
                    self.live += 1;
                    return Ok(());
                }
            }
            incoming = victim;
            at = other;
        }
        // Kick budget exhausted: the entry in hand is evicted (one flow
        // lost its state for the one that displaced it — net occupancy is
        // unchanged) and the caller learns the structure is at pressure.
        Err(StateFull)
    }

    fn touch(&mut self, key: &TupleKey, now: Nanos) {
        for bucket in self.buckets.iter_mut() {
            for slot in bucket.iter_mut().flatten() {
                if &slot.key == key {
                    slot.touched = now;
                    return;
                }
            }
        }
    }

    fn remove(&mut self, key: &TupleKey) -> Option<ConnRecord> {
        for bucket in self.buckets.iter_mut() {
            for slot in bucket.iter_mut() {
                if let Some(s) = slot {
                    if &s.key == key {
                        let record = s.record;
                        *slot = None;
                        self.live -= 1;
                        return Some(record);
                    }
                }
            }
        }
        None
    }

    fn expire_idle(&mut self, now: Nanos) -> usize {
        let timeout = self.idle_timeout;
        let mut evicted = 0;
        for bucket in self.buckets.iter_mut() {
            for slot in bucket.iter_mut() {
                if let Some(s) = slot {
                    if now.since(s.touched) >= timeout {
                        *slot = None;
                        evicted += 1;
                    }
                }
            }
        }
        self.live -= evicted;
        evicted
    }

    fn entries(&self) -> usize {
        self.live
    }

    fn state_bytes(&self) -> u64 {
        SramSpec {
            entry_bits: conn_entry_bits(self.design(), self.family),
        }
        .bytes_for(self.live as u64)
    }

    fn design(&self) -> ConnStateDesign {
        ConnStateDesign::Fingerprint {
            fp_bits: self.fp_bits,
            version_bits: self.version_bits,
        }
    }
}

/// The assembled CuCoTrack engine: cuckoo-filter state + fully stateful
/// versioned-pool steering (every flow pinned, like SilkRoad).
pub type CucotrackLb = AlgoEngine<CuckooFilterState, StatefulSteering>;

/// Build a [`CucotrackLb`] with SilkRoad-comparable parameters. The
/// engine's two bucket-hash lanes feed the filter's 2-way geometry.
pub fn cucotrack_lb(
    seed: u64,
    family: AddrFamily,
    capacity: usize,
    idle_timeout: Duration,
) -> CucotrackLb {
    let conn = CuckooFilterState::new(capacity, 8, 6, family, idle_timeout);
    AlgoEngine::new(conn, StatefulSteering::new(6), seed, 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::AlgoHasher;
    use sr_types::{Addr, Dip, FiveTuple, PoolVersion, Vip};

    fn rec(i: u8) -> ConnRecord {
        ConnRecord {
            vip: Vip(Addr::v4(20, 0, 0, 1, 80)),
            version: PoolVersion(0),
            dip: Dip(Addr::v4(10, 0, 0, i, 20)),
            arrived: Nanos(0),
        }
    }

    fn key(g: u32) -> TupleKey {
        FiveTuple::tcp(Addr::v4_indexed(100, g, 1024), Addr::v4(20, 0, 0, 1, 80)).tuple_key()
    }

    fn filter(cap: usize) -> (CuckooFilterState, AlgoHasher) {
        (
            CuckooFilterState::new(cap, 8, 6, AddrFamily::V4, Duration::from_secs(30)),
            AlgoHasher::new(7, 2),
        )
    }

    #[test]
    fn round_trip_and_density() {
        let (mut f, h) = filter(1024);
        for g in 0..100 {
            let k = key(g);
            let (hashes, _) = h.hash(&k);
            f.insert(&k, &hashes, rec((g % 250) as u8)).unwrap();
        }
        assert_eq!(f.entries(), 100);
        let k = key(5);
        let (hashes, _) = h.hash(&k);
        let hit = f.lookup(&k, &hashes).unwrap();
        assert!(hit.exact);
        assert_eq!(hit.record.dip, rec(5).dip);
        // 20-bit entries: 5 per 112-bit word => 100 entries = 20 words.
        assert_eq!(f.state_bytes(), 20 * 14);
    }

    #[test]
    fn collisions_are_counted_never_silent() {
        // Tiny filter + 8-bit fingerprints: aliases are guaranteed across
        // a few thousand distinct probe keys.
        let (mut f, h) = filter(64);
        for g in 0..60 {
            let k = key(g);
            let (hashes, _) = h.hash(&k);
            let _ = f.insert(&k, &hashes, rec(1));
        }
        let mut aliased = 0u64;
        for g in 1000..6000 {
            let k = key(g);
            let (hashes, _) = h.hash(&k);
            if let Some(hit) = f.lookup(&k, &hashes) {
                assert!(!hit.exact, "probe keys were never inserted");
                aliased += 1;
            }
        }
        assert!(aliased > 0, "expected aliases in a dense 8-bit filter");
        assert_eq!(f.fp_collisions(), aliased, "every alias must be counted");
    }

    #[test]
    fn remove_frees_the_slot() {
        let (mut f, h) = filter(64);
        let k = key(1);
        let (hashes, _) = h.hash(&k);
        f.insert(&k, &hashes, rec(1)).unwrap();
        assert_eq!(f.remove(&k).unwrap().dip, rec(1).dip);
        assert_eq!(f.entries(), 0);
        assert!(f.lookup(&k, &hashes).is_none());
    }

    #[test]
    fn fills_beyond_two_choices_via_kicks() {
        let (mut f, h) = filter(32);
        let mut inserted = 0;
        for g in 0..32 {
            let k = key(g);
            let (hashes, _) = h.hash(&k);
            if f.insert(&k, &hashes, rec(1)).is_ok() {
                inserted += 1;
            }
        }
        assert!(inserted >= 24, "kicks should pack well: {inserted}/32");
        assert_eq!(f.entries(), inserted);
    }

    #[test]
    fn idle_entries_expire() {
        let (mut f, h) = filter(64);
        let k = key(1);
        let (hashes, _) = h.hash(&k);
        f.insert(&k, &hashes, rec(1)).unwrap();
        assert_eq!(f.expire_idle(Nanos::from_secs(31)), 1);
        assert_eq!(f.entries(), 0);
    }
}
