//! The generic packet engine composing a [`ConnState`] with a [`Steering`].
//!
//! `AlgoEngine` is the trait-level counterpart of `silkroad::SilkRoadSwitch`'s
//! packet loop: hash once, try the tag fast path (version-in-packet
//! designs), then the connection state, then the miss path — installing an
//! entry only when the steering says the decision needs one. It is the
//! shared chassis of the Concury / CuCoTrack / hybrid zoo members; SilkRoad
//! itself keeps its production chassis (learning filter, 3-step updates)
//! and meets the zoo at the trait boundary instead.

use crate::hashes::{ConnHashes, MAX_PACKET_HASHES};
use crate::state::{ConnRecord, ConnState};
use crate::steer::Steering;
use sr_hash::{hash_all, HashFn};
use sr_types::{Dip, Nanos, PacketMeta, PoolVersion, TupleKey, Vip};

/// The engine's hash-once pass: per-stage bucket hashes + match hash +
/// select hash over the encoded 5-tuple, mirroring `sr-core`'s `KeyHasher`
/// discipline (every table value derives from one pass).
pub struct AlgoHasher {
    fns: Vec<HashFn>,
    stages: u8,
}

impl AlgoHasher {
    /// Build a layout with `stages` bucket lanes plus match and select
    /// lanes, seeded deterministically from `seed`.
    pub fn new(seed: u64, stages: usize) -> AlgoHasher {
        assert!(
            stages + 2 <= MAX_PACKET_HASHES,
            "hash layout needs {} lanes; MAX_PACKET_HASHES is {}",
            stages + 2,
            MAX_PACKET_HASHES
        );
        AlgoHasher {
            fns: HashFn::family(seed, stages + 2),
            stages: stages as u8,
        }
    }

    /// Hash a packet's key once; returns the encoded key, the
    /// [`ConnHashes`] bundle, and the DIP-select hash.
    // srlint: hot-path begin
    pub fn hash(&self, key: &TupleKey) -> (ConnHashes, u64) {
        let mut vals = [0u64; MAX_PACKET_HASHES];
        hash_all(&self.fns, key.as_slice(), &mut vals[..self.fns.len()]);
        let stages = usize::from(self.stages);
        let match_hash = vals[stages];
        let select_hash = vals[stages + 1];
        let mut stage_hashes = [0u64; MAX_PACKET_HASHES];
        stage_hashes[..stages].copy_from_slice(&vals[..stages]);
        (
            ConnHashes::from_parts(stage_hashes, self.stages, match_hash),
            select_hash,
        )
    }
    // srlint: hot-path end
}

/// Counters an engine accumulates while processing a trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Packets processed.
    pub packets: u64,
    /// Decisions served by the stamped-tag stateless fast path.
    pub tagged: u64,
    /// Decisions served by a [`ConnState`] hit.
    pub conn_hits: u64,
    /// [`ConnState`] hits whose match was a digest/fingerprint collision
    /// (honestly mis-steered, always counted).
    pub false_hits: u64,
    /// Miss-path decisions served statelessly (no entry installed).
    pub stateless: u64,
    /// Entries installed.
    pub inserts: u64,
    /// Installs refused by a full [`ConnState`].
    pub insert_failures: u64,
    /// Packets dropped (unknown/empty pool).
    pub drops: u64,
    /// Packets not addressed to a registered VIP.
    pub not_vip: u64,
}

/// One packet's outcome at the trait boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AlgoDecision {
    /// The chosen backend (`None` for drops and non-VIP traffic).
    pub dip: Option<Dip>,
    /// The pool version the decision rode on.
    pub version: Option<PoolVersion>,
    /// Whether the decision came from connection state.
    pub from_conn_state: bool,
    /// Whether the connection-state match was a false positive.
    pub false_hit: bool,
    /// What the edge should stamp into the flow's future packets.
    pub stamp: Option<u8>,
}

impl AlgoDecision {
    fn not_vip() -> AlgoDecision {
        AlgoDecision {
            dip: None,
            version: None,
            from_conn_state: false,
            false_hit: false,
            stamp: None,
        }
    }

    fn dropped() -> AlgoDecision {
        AlgoDecision::not_vip()
    }
}

/// A complete algorithm: connection state + steering + hash-once pass.
pub struct AlgoEngine<C: ConnState, S: Steering> {
    hasher: AlgoHasher,
    conn: C,
    steer: S,
    stats: EngineStats,
}

impl<C: ConnState, S: Steering> AlgoEngine<C, S> {
    /// Compose an engine. `stages` sizes the bucket-hash lanes the
    /// [`ConnState`] consumes (SilkRoad uses 4, the cuckoo filter 2).
    pub fn new(conn: C, steer: S, seed: u64, stages: usize) -> AlgoEngine<C, S> {
        AlgoEngine {
            hasher: AlgoHasher::new(seed, stages),
            conn,
            steer,
            stats: EngineStats::default(),
        }
    }

    /// The steering half (control-plane hooks).
    pub fn steering_mut(&mut self) -> &mut S {
        &mut self.steer
    }

    /// The steering half, read-only (accounting).
    pub fn steering(&self) -> &S {
        &self.steer
    }

    /// The connection-state half (accounting).
    pub fn conn_state(&self) -> &C {
        &self.conn
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Register a VIP with its initial pool.
    pub fn add_vip(&mut self, vip: Vip, dips: &[Dip]) -> bool {
        self.steer.add_vip(vip, dips)
    }

    /// Replace a VIP's pool membership.
    pub fn update_pool(&mut self, vip: Vip, dips: &[Dip], now: Nanos) -> Option<PoolVersion> {
        self.steer.update_pool(vip, dips, now)
    }

    /// Advance time: settle update windows, expire idle entries.
    pub fn advance(&mut self, now: Nanos) {
        self.steer.advance(now);
        self.conn.expire_idle(now);
    }

    /// Process one packet. `tag` is the stamp the edge recovered from the
    /// packet (see `sr_wire::stamp`), if any.
    // srlint: hot-path begin
    pub fn process(&mut self, pkt: &PacketMeta, tag: Option<u8>, now: Nanos) -> AlgoDecision {
        self.stats.packets += 1;
        let vip = Vip(pkt.tuple.dst);
        if !self.steer.is_vip(vip) {
            self.stats.not_vip += 1;
            return AlgoDecision::not_vip();
        }
        let key = pkt.tuple.tuple_key();
        let (hashes, select_hash) = self.hasher.hash(&key);
        let closing = pkt.flags.is_fin() || pkt.flags.is_rst();

        // Version-in-packet fast path: a stamped packet steers without
        // touching connection state at all.
        if let Some(t) = tag {
            if let Some(s) = self.steer.steer_tagged(vip, select_hash, t) {
                self.stats.tagged += 1;
                return AlgoDecision {
                    dip: Some(s.dip),
                    version: Some(s.version),
                    from_conn_state: false,
                    false_hit: false,
                    stamp: s.stamp,
                };
            }
        }

        if let Some(hit) = self.conn.lookup(&key, &hashes) {
            self.stats.conn_hits += 1;
            if !hit.exact {
                self.stats.false_hits += 1;
            }
            if closing {
                self.conn.remove(&key);
            } else {
                self.conn.touch(&key, now);
            }
            return AlgoDecision {
                dip: Some(hit.record.dip),
                version: Some(hit.record.version),
                from_conn_state: true,
                false_hit: !hit.exact,
                stamp: None,
            };
        }

        let Some(s) = self.steer.steer_miss(vip, select_hash, now) else {
            self.stats.drops += 1;
            return AlgoDecision::dropped();
        };
        if s.needs_entry && !closing {
            let record = ConnRecord {
                vip,
                version: s.version,
                dip: s.dip,
                arrived: now,
            };
            if self.conn.insert(&key, &hashes, record).is_ok() {
                self.stats.inserts += 1;
            } else {
                self.stats.insert_failures += 1;
            }
        } else {
            self.stats.stateless += 1;
        }
        AlgoDecision {
            dip: Some(s.dip),
            version: Some(s.version),
            from_conn_state: false,
            false_hit: false,
            stamp: s.stamp,
        }
    }
    // srlint: hot-path end
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::ConnStateDesign;
    use crate::state::MapConnState;
    use crate::steer::StatefulSteering;
    use sr_types::{Addr, AddrFamily, Duration, FiveTuple};

    fn vip() -> Vip {
        Vip(Addr::v4(20, 0, 0, 1, 80))
    }

    fn dips(n: u8) -> Vec<Dip> {
        (1..=n).map(|i| Dip(Addr::v4(10, 0, 0, i, 20))).collect()
    }

    fn flow(g: u32) -> FiveTuple {
        FiveTuple::tcp(Addr::v4_indexed(100, g, 1024), vip().0)
    }

    fn engine() -> AlgoEngine<MapConnState, StatefulSteering> {
        let conn = MapConnState::new(
            ConnStateDesign::DigestVersion {
                digest_bits: 16,
                version_bits: 6,
            },
            AddrFamily::V4,
            Duration::from_secs(30),
        );
        let mut e = AlgoEngine::new(conn, StatefulSteering::new(6), 7, 4);
        assert!(e.add_vip(vip(), &dips(4)));
        e
    }

    #[test]
    fn stateful_flow_is_pinned_across_updates() {
        let mut e = engine();
        let d0 = e.process(&PacketMeta::syn(flow(1)), None, Nanos(0));
        assert!(!d0.from_conn_state);
        assert_eq!(e.stats().inserts, 1);
        e.update_pool(vip(), &dips(5), Nanos(10)).unwrap();
        let d1 = e.process(&PacketMeta::data(flow(1), 100), None, Nanos(20));
        assert!(d1.from_conn_state);
        assert_eq!(d1.dip, d0.dip);
    }

    #[test]
    fn close_removes_the_entry() {
        let mut e = engine();
        e.process(&PacketMeta::syn(flow(1)), None, Nanos(0));
        assert_eq!(e.conn_state().entries(), 1);
        e.process(&PacketMeta::fin(flow(1)), None, Nanos(10));
        assert_eq!(e.conn_state().entries(), 0);
        assert_eq!(e.stats().conn_hits, 1);
    }

    #[test]
    fn non_vip_passes_through() {
        let mut e = engine();
        let other = FiveTuple::tcp(Addr::v4(1, 1, 1, 1, 9), Addr::v4(9, 9, 9, 9, 80));
        let d = e.process(&PacketMeta::syn(other), None, Nanos(0));
        assert!(d.dip.is_none());
        assert_eq!(e.stats().not_vip, 1);
        assert_eq!(e.conn_state().entries(), 0);
    }

    #[test]
    fn hasher_matches_standalone_fns() {
        let h = AlgoHasher::new(7, 4);
        let key = flow(3).tuple_key();
        let (bundle, select) = h.hash(&key);
        let fns = HashFn::family(7, 6);
        for (i, f) in fns.iter().take(4).enumerate() {
            assert_eq!(bundle.stage_hashes()[i], f.hash(key.as_slice()));
        }
        assert_eq!(bundle.match_hash(), fns[4].hash(key.as_slice()));
        assert_eq!(select, fns[5].hash(key.as_slice()));
    }
}
