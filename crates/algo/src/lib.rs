//! sr-algo — the pluggable load-balancing algorithm boundary.
//!
//! SilkRoad's claim is comparative: per-connection state in ASIC SRAM beats
//! the alternatives on memory and per-connection consistency (PCC). This
//! crate turns that comparison into code by defining the two seams every
//! stateful-or-not L4 load balancer decomposes into:
//!
//! * [`ConnState`] — the per-connection lookup structure: lookup / insert /
//!   expire over packet-time [`ConnHashes`], with honest SRAM byte
//!   accounting per entry layout ([`cost`]).
//! * [`Steering`] — the miss path: which DIP a new flow gets, whether that
//!   decision needs a [`ConnState`] entry to survive pool updates, and
//!   what, if anything, is stamped into the packet for later packets to
//!   carry ([`Steer::stamp`]).
//!
//! The generic [`AlgoEngine`] composes any `(ConnState, Steering)` pair
//! into a packet-processing loop, and the zoo provides three published
//! alternatives next to SilkRoad itself (implementation #1, living in
//! `sr-core` behind these same traits):
//!
//! * [`concury`] — Concury-style version-in-packet steering: the pool
//!   version rides in the packet (DSCP), so steady-state flows need **no**
//!   connection entry at all; the ConnTable exists only for flows born
//!   inside an update's transition window.
//! * [`cucotrack`] — CuCoTrack-style cuckoo-filter connection tracking:
//!   a fingerprint-only ConnTable (denser than SilkRoad's digest+version
//!   entries) with an audit oracle that counts every fingerprint
//!   collision — false positives are reported, never silently absorbed.
//! * [`hybrid`] — Cohen-style stateful/stateless hybrid: stable-version
//!   flows ride stateless ECMP (the same `sr_hash::ecmp_select` kernel the
//!   `baselines` crate uses); only flows that cross a pool update get a
//!   stateful entry.
//!
//! [`registry::AlgoName`] names the four algorithms and declares each one's
//! physical [`sr_asic::PipelineProgram`] layout so `srcheck` can validate
//! all four placements; `repro compare` (in `sr-bench`) drives identical
//! traces through the zoo and records the paper-style comparison matrix.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod concury;
pub mod cost;
pub mod cucotrack;
pub mod engine;
pub mod hashes;
pub mod hybrid;
pub mod pools;
pub mod registry;
pub mod state;
pub mod steer;

pub use concury::{concury_lb, version_tag, ConcuryLb, ConcurySteering};
pub use cost::{conn_entry_bits, ConnStateDesign, OVERHEAD_BITS};
pub use cucotrack::{cucotrack_lb, CuckooFilterState, CucotrackLb};
pub use engine::{AlgoDecision, AlgoEngine, AlgoHasher, EngineStats};
pub use hashes::{ConnHashes, MAX_PACKET_HASHES};
pub use hybrid::{hybrid_lb, HybridLb, HybridSteering};
pub use pools::VersionedPools;
pub use registry::AlgoName;
pub use state::{ConnHit, ConnRecord, ConnState, MapConnState, StateFull};
pub use steer::{StatefulSteering, Steer, Steering};
