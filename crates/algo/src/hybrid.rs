//! Cohen-style stateful/stateless hybrid steering.
//!
//! The hybrid observes that per-connection state only *matters* around
//! pool updates: while membership is stable, stateless ECMP (the exact
//! `sr_hash::ecmp_select` kernel `sr-baselines`' ECMP model uses) steers
//! every packet of a flow identically, so entries are pure overhead. The
//! design therefore runs stateless by default and pins entries only for
//! flows seen **during an update window** — steering them by the
//! pre-update membership until they die.
//!
//! The honest cost shows up in the matrix: a flow born before an update
//! that stays idle through the whole window has no entry and no stamp, so
//! its next packet re-resolves against the *new* membership — a real PCC
//! violation that SilkRoad's always-stateful design never has.

use crate::cost::{vip_row_bits, ConnStateDesign};
use crate::engine::AlgoEngine;
use crate::state::MapConnState;
use crate::steer::{Steer, Steering};
use sr_asic::sram::SramSpec;
use sr_hash::{ecmp_select, FxHashMap};
use sr_types::{AddrFamily, Dip, Duration, Nanos, PoolVersion, Vip};

struct HybridPool {
    /// The membership stateless flows resolve against.
    live: Vec<Dip>,
    /// A requested update waiting out its window: `(next membership,
    /// flip time)`. Until the flip, misses steer by `live` *with* pinned
    /// entries; at the flip, `live` is replaced.
    pending: Option<(Vec<Dip>, Nanos)>,
    /// Monotone update generation (reported as the decision version).
    generation: u16,
}

/// Stateless-by-default steering with update-window pinning.
pub struct HybridSteering {
    pools: FxHashMap<Vip, HybridPool>,
    window: Duration,
}

impl HybridSteering {
    /// Build with the given update-window length (how long flows keep
    /// being pinned to the pre-update membership before the flip).
    pub fn new(window: Duration) -> HybridSteering {
        HybridSteering {
            pools: FxHashMap::default(),
            window,
        }
    }

    /// Whether any VIP currently has an update window open.
    pub fn window_open(&self) -> bool {
        self.pools.values().any(|p| p.pending.is_some())
    }
}

impl Steering for HybridSteering {
    fn is_vip(&self, vip: Vip) -> bool {
        self.pools.contains_key(&vip)
    }

    fn steer_miss(&mut self, vip: Vip, select_hash: u64, _now: Nanos) -> Option<Steer> {
        let pool = self.pools.get(&vip)?;
        let idx = ecmp_select(select_hash, pool.live.len())?;
        let dip = pool.live.get(idx).copied()?;
        Some(Steer {
            dip,
            version: PoolVersion(pool.generation),
            // Window open: pin this flow to the pre-update membership.
            needs_entry: pool.pending.is_some(),
            stamp: None,
        })
    }

    fn add_vip(&mut self, vip: Vip, dips: &[Dip]) -> bool {
        if self.pools.contains_key(&vip) {
            return false;
        }
        self.pools.insert(
            vip,
            HybridPool {
                live: dips.to_vec(),
                pending: None,
                generation: 0,
            },
        );
        true
    }

    fn update_pool(&mut self, vip: Vip, dips: &[Dip], now: Nanos) -> Option<PoolVersion> {
        let window = self.window;
        let pool = self.pools.get_mut(&vip)?;
        // A second update inside the window collapses into the pending one
        // (the flip installs the latest membership).
        pool.pending = Some((dips.to_vec(), now.saturating_add(window)));
        pool.generation = pool.generation.wrapping_add(1);
        Some(PoolVersion(pool.generation))
    }

    fn advance(&mut self, now: Nanos) {
        for pool in self.pools.values_mut() {
            let due = matches!(&pool.pending, Some((_, flip_at)) if now >= *flip_at);
            if due {
                if let Some((next, _)) = pool.pending.take() {
                    pool.live = next;
                }
            }
        }
    }

    fn table_bytes(&self) -> u64 {
        // Stateless steering carries only the VIP rows + one flat member
        // list per VIP (no versioned rows).
        let family = self
            .pools
            .values()
            .flat_map(|p| p.live.first())
            .map(|d| d.family())
            .next()
            .unwrap_or(AddrFamily::V4);
        let vip_rows = SramSpec {
            entry_bits: vip_row_bits(family),
        }
        .bytes_for(self.pools.len() as u64);
        let members: u64 = self.pools.values().map(|p| p.live.len() as u64).sum();
        let member_bytes = SramSpec {
            entry_bits: crate::cost::pool_member_bits(family),
        }
        .bytes_for(members);
        vip_rows + member_bytes
    }
}

/// The assembled hybrid engine: stateless ECMP + full-key entries for
/// update-crossing flows only.
pub type HybridLb = AlgoEngine<MapConnState, HybridSteering>;

/// Build a [`HybridLb`]. Pinned entries store the full 5-tuple (there is
/// no digest infrastructure in this design), so each one costs
/// [`ConnStateDesign::NaiveExact`] bits — the matrix shows why only a few
/// may exist.
pub fn hybrid_lb(seed: u64, family: AddrFamily, window: Duration) -> HybridLb {
    let conn = MapConnState::new(
        ConnStateDesign::NaiveExact,
        family,
        // Pinned entries live while their flows do; idle ones age out on
        // the same 30 s horizon the fleet engine uses.
        Duration::from_secs(30),
    );
    AlgoEngine::new(conn, HybridSteering::new(window), seed, 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::ConnState;
    use sr_types::{Addr, FiveTuple, PacketMeta};

    fn vip() -> Vip {
        Vip(Addr::v4(20, 0, 0, 1, 80))
    }

    fn dips(n: u8) -> Vec<Dip> {
        (1..=n).map(|i| Dip(Addr::v4(10, 0, 0, i, 20))).collect()
    }

    fn flow(g: u32) -> FiveTuple {
        FiveTuple::tcp(Addr::v4_indexed(100, g, 1024), vip().0)
    }

    fn lb() -> HybridLb {
        let mut e = hybrid_lb(7, AddrFamily::V4, Duration::from_millis(10));
        assert!(e.add_vip(vip(), &dips(4)));
        e
    }

    #[test]
    fn stable_flows_are_stateless() {
        let mut e = lb();
        let d0 = e.process(&PacketMeta::syn(flow(1)), None, Nanos(0));
        let d1 = e.process(&PacketMeta::data(flow(1), 100), None, Nanos(5));
        assert_eq!(d0.dip, d1.dip, "ECMP is deterministic per flow");
        assert_eq!(e.conn_state().entries(), 0);
        assert_eq!(e.stats().stateless, 2);
    }

    #[test]
    fn window_flows_get_pinned_and_survive_the_flip() {
        let mut e = lb();
        let before = e.process(&PacketMeta::syn(flow(1)), None, Nanos(0));
        e.update_pool(vip(), &dips(8), Nanos(10)).unwrap();
        // Active during the window: pinned to the pre-update membership.
        let pinned = e.process(&PacketMeta::data(flow(1), 100), None, Nanos(1_000_000));
        assert_eq!(pinned.dip, before.dip);
        assert_eq!(e.conn_state().entries(), 1);
        // After the flip the entry still steers the flow.
        e.advance(Nanos(20_000_000));
        let after = e.process(&PacketMeta::data(flow(1), 100), None, Nanos(21_000_000));
        assert!(after.from_conn_state);
        assert_eq!(after.dip, before.dip);
    }

    #[test]
    fn idle_flows_can_be_remapped_after_updates() {
        let mut e = lb();
        // Many flows sample the 4-member pool, then the pool doubles and
        // every flow sleeps through the window.
        let before: Vec<_> = (0..64)
            .map(|g| e.process(&PacketMeta::syn(flow(g)), None, Nanos(0)).dip)
            .collect();
        e.update_pool(vip(), &dips(8), Nanos(10)).unwrap();
        e.advance(Nanos(20_000_000));
        let mut moved = 0;
        for (g, b) in before.iter().enumerate() {
            let d = e.process(
                &PacketMeta::data(flow(g as u32), 100),
                None,
                Nanos(21_000_000),
            );
            if d.dip != *b {
                moved += 1;
            }
        }
        assert!(moved > 0, "growing the pool must remap some idle flows");
        assert_eq!(e.conn_state().entries(), 0, "no window activity, no state");
    }

    #[test]
    fn second_update_collapses_into_the_window() {
        let mut e = lb();
        e.update_pool(vip(), &dips(8), Nanos(0)).unwrap();
        e.update_pool(vip(), &dips(2), Nanos(1_000_000)).unwrap();
        e.advance(Nanos(30_000_000));
        // The flip installed the latest membership.
        let d = e.process(&PacketMeta::syn(flow(9)), None, Nanos(31_000_000));
        assert!(dips(2).contains(&d.dip.unwrap()));
    }
}
