//! Best-effort thread-to-core pinning.
//!
//! The engine's pipe workers benefit from staying on one core (warm
//! L1/L2, no migration jitter), but this workspace links no FFI crate,
//! so there is no direct `sched_setaffinity` call to make. On Linux the
//! kernel exposes the calling thread's id through `/proc/thread-self`,
//! and the ubiquitous `taskset(1)` utility can retarget a thread's
//! affinity mask by tid — so pinning shells out once per worker at
//! startup. This is strictly best-effort: a missing `taskset`, a
//! restricted container, or a non-Linux OS all degrade to "not pinned"
//! and the engine keeps working; callers get a `bool` so benchmarks can
//! report whether pinning actually took.

/// Pin the calling thread to `core` (a zero-based CPU index).
///
/// Returns `true` only if the affinity change was applied and verified
/// by `taskset`'s exit status. Never panics; any failure (unsupported
/// OS, `/proc` unreadable, `taskset` missing or refused) returns
/// `false`.
pub fn pin_current_thread(core: usize) -> bool {
    pin_impl(core)
}

/// How many CPUs the OS reports as available to this process.
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(target_os = "linux")]
fn pin_impl(core: usize) -> bool {
    let Some(tid) = current_tid() else {
        return false;
    };
    std::process::Command::new("taskset")
        .arg("-p")
        .arg("-c")
        .arg(core.to_string())
        .arg(tid.to_string())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .map(|s| s.success())
        .unwrap_or(false)
}

/// The calling thread's kernel tid, read from the `/proc/thread-self`
/// symlink (points at `/proc/<pid>/task/<tid>`).
#[cfg(target_os = "linux")]
fn current_tid() -> Option<u64> {
    let link = std::fs::read_link("/proc/thread-self").ok()?;
    link.file_name()?.to_str()?.parse().ok()
}

#[cfg(not(target_os = "linux"))]
fn pin_impl(_core: usize) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn available_cores_is_positive() {
        assert!(available_cores() >= 1);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn tid_is_readable() {
        // /proc/thread-self exists on every modern kernel; if this ever
        // fails, pinning silently degrades, which is the contract.
        if let Some(tid) = current_tid() {
            assert!(tid > 0);
        }
    }

    #[test]
    fn pinning_is_best_effort() {
        // Whatever the host supports, this must not panic, and pinning
        // to core 0 on a successful host must leave the thread runnable.
        let pinned = pin_current_thread(0);
        if pinned {
            // Still alive and schedulable after the affinity change.
            assert!(available_cores() >= 1);
        }
    }
}
