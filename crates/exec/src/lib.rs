//! Execution primitives for the experiment driver and the packet engine.
//!
//! Two distinct consumers, two distinct shapes:
//!
//! * **Scoped batch fan-out** — [`Exec::run`] fans a job list across a
//!   scoped thread pool and returns the results **in submission order**,
//!   keyed by each job's slot index, so anything rendered from them is
//!   byte-identical to a sequential run regardless of worker count or
//!   scheduling. The experiment driver (`sr-bench`) uses it for
//!   simulation-backed figures: lists of independent (data point,
//!   system, seed) jobs.
//! * **Run-to-completion plumbing** — the multi-pipe packet engine
//!   (`silkroad::engine`) keeps long-lived per-pipe workers fed through
//!   bounded [`ring`] SPSC rings ([`spsc`]), padded with [`CachePadded`]
//!   and optionally pinned to cores with [`pin_current_thread`]. The
//!   old per-batch scoped fan-out it replaced paid a thread
//!   spawn/join per batch and could never scale wall-clock throughput.
//! * **Lockstep control broadcast** — [`EpochLog`] is the engine's
//!   epoch-versioned op-log idiom generalized over the op type: resident
//!   workers adopt immutable `Arc`-shared ops in publication order at
//!   batch boundaries, which keeps sharded state bit-identical across
//!   worker counts. The fleet simulator (`sr-sim::fleet`) drives its
//!   per-cluster shards with it.
//!
//! Built on `std` plus the vendored `parking_lot`: no executor
//! dependency, no `'static` bounds in `Exec::run`, and no `unsafe`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod affinity;
pub mod epoch;
pub mod pad;
pub mod ring;

pub use affinity::{available_cores, pin_current_thread};
pub use epoch::EpochLog;
pub use pad::CachePadded;
pub use ring::{spsc, Consumer, Producer, PushError};

use parking_lot::Mutex;
use std::collections::VecDeque;

/// A scoped worker pool for independent jobs.
#[derive(Clone, Copy, Debug)]
pub struct Exec {
    workers: usize,
}

impl Exec {
    /// A pool with `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Exec {
        Exec {
            workers: workers.max(1),
        }
    }

    /// Single-worker pool: jobs run inline on the caller's thread.
    pub fn sequential() -> Exec {
        Exec::new(1)
    }

    /// One worker per available core (the `--jobs` default).
    pub fn available() -> Exec {
        Exec::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run every job and return the outputs in input order.
    ///
    /// Jobs are handed to workers front-to-back (submission order), which
    /// keeps wall-clock short when costs are skewed; the *results* are
    /// written into per-job slots, so ordering — and therefore any table
    /// rendered from them — never depends on scheduling.
    pub fn run<I, O, F>(&self, inputs: Vec<I>, job: F) -> Vec<O>
    where
        I: Send,
        O: Send,
        F: Fn(I) -> O + Sync,
    {
        let n = inputs.len();
        if self.workers == 1 || n <= 1 {
            return inputs.into_iter().map(job).collect();
        }
        let queue: Mutex<VecDeque<(usize, I)>> =
            Mutex::new(inputs.into_iter().enumerate().collect());
        let slots: Mutex<Vec<Option<O>>> = Mutex::new((0..n).map(|_| None).collect());
        std::thread::scope(|s| {
            for _ in 0..self.workers.min(n) {
                s.spawn(|| loop {
                    let next = queue.lock().pop_front();
                    let Some((slot, input)) = next else { break };
                    let out = job(input);
                    slots.lock()[slot] = Some(out);
                });
            }
        });
        slots
            .into_inner()
            .into_iter()
            .map(|o| o.expect("every job ran to completion"))
            .collect()
    }
}

impl Default for Exec {
    fn default() -> Exec {
        Exec::available()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    // Real sleeps are banned workspace-wide (clippy.toml); this test needs
    // them precisely to force out-of-order completion.
    #[allow(clippy::disallowed_methods)]
    fn results_keep_submission_order() {
        // Jobs finish out of order (later jobs are cheaper) but the
        // output order must match the input order.
        let inputs: Vec<u64> = (0..32).collect();
        let out = Exec::new(4).run(inputs.clone(), |i| {
            std::thread::sleep(std::time::Duration::from_micros((32 - i) * 50));
            i * 10
        });
        assert_eq!(out, inputs.iter().map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn more_workers_than_jobs() {
        let out = Exec::new(16).run(vec![1, 2], |i| i + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn sequential_path_matches() {
        let inputs: Vec<u32> = (0..10).collect();
        let a = Exec::sequential().run(inputs.clone(), |i| i * i);
        let b = Exec::new(3).run(inputs, |i| i * i);
        assert_eq!(a, b);
    }

    // std::thread::scope replaces the payload with its own ("a scoped
    // thread panicked"), so only the fact of the panic is asserted.
    #[test]
    #[should_panic]
    fn job_panics_propagate() {
        Exec::new(2).run(vec![0, 1, 2, 3], |i| {
            if i == 2 {
                panic!("job failed");
            }
            i
        });
    }

    #[test]
    fn mutable_borrows_flow_through_jobs() {
        // The engine's fan-out hands each job an exclusive &mut into
        // caller-owned state; results land back in submission order.
        let mut cells = [0u64; 8];
        let inputs: Vec<(usize, &mut u64)> = cells.iter_mut().enumerate().collect();
        Exec::new(4).run(inputs, |(i, cell)| *cell = i as u64 + 1);
        assert_eq!(cells, [1, 2, 3, 4, 5, 6, 7, 8]);
    }
}
