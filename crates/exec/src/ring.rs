//! Bounded SPSC ring with blocking backpressure and graceful shutdown.
//!
//! The run-to-completion engine (`silkroad::engine`) feeds each pipe
//! worker through one of these rings: the steer thread is the single
//! producer, the pipe worker the single consumer (and a second ring
//! carries completions back). Capacity is fixed at construction, so a
//! slow consumer exerts backpressure on [`Producer::push`] instead of
//! growing a queue; closing either end wakes both sides so shutdown
//! never hangs with batches in flight.
//!
//! The implementation is safe Rust (the crate forbids `unsafe`): each
//! slot is a `Mutex<Option<T>>` that is uncontended by protocol — the
//! producer only locks a slot it owns (between `tail` claim and publish)
//! and the consumer only locks a slot the producer has published — so
//! every lock acquisition is a fast uncontended path. The cursors and
//! slots are [`CachePadded`] so the two ends never false-share. Blocking
//! uses a shared parking mutex + condvar pair; predicates are re-checked
//! under the parking lock, and notifiers acquire it before signalling,
//! which rules out missed wakeups.

use crate::pad::CachePadded;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::SeqCst};
use std::sync::Arc;

/// Why a non-blocking push failed; the rejected value is handed back.
#[derive(Debug)]
pub enum PushError<T> {
    /// The ring is at capacity; retry after the consumer drains.
    Full(T),
    /// The ring is closed; the value will never be accepted.
    Closed(T),
}

impl<T> PushError<T> {
    /// The value the ring refused.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Full(v) | PushError::Closed(v) => v,
        }
    }
}

struct Shared<T> {
    /// Ring storage. Each slot's mutex is uncontended by protocol (see
    /// module docs); `Option` carries occupancy.
    slots: Box<[CachePadded<Mutex<Option<T>>>]>,
    /// Next write position (monotonic; producer-owned, consumer-read).
    tail: CachePadded<AtomicU64>,
    /// Next read position (monotonic; consumer-owned, producer-read).
    head: CachePadded<AtomicU64>,
    /// Set by [`Producer::close`] or either handle's drop; never cleared.
    closed: AtomicBool,
    /// Parking lot for both directions of blocking.
    park: Mutex<()>,
    /// Signalled after a publish (wakes a blocked consumer).
    not_empty: Condvar,
    /// Signalled after a take (wakes a blocked producer).
    not_full: Condvar,
}

impl<T> Shared<T> {
    fn close(&self) {
        self.closed.store(true, SeqCst);
        // Acquire the parking lock before signalling so a thread between
        // its predicate check and its wait cannot miss the wakeup.
        let _g = self.park.lock();
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    fn len(&self) -> usize {
        let t = self.tail.load(SeqCst);
        let h = self.head.load(SeqCst);
        t.saturating_sub(h) as usize
    }
}

/// The sending half of an SPSC ring. Not clonable; `&mut self` methods
/// make single-producer a compile-time property.
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of an SPSC ring. Not clonable; `&mut self` methods
/// make single-consumer a compile-time property.
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
}

/// A bounded SPSC ring of at least one slot (`capacity` is clamped).
pub fn spsc<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(1);
    let shared = Arc::new(Shared {
        slots: (0..cap)
            .map(|_| CachePadded::new(Mutex::new(None)))
            .collect(),
        tail: CachePadded::new(AtomicU64::new(0)),
        head: CachePadded::new(AtomicU64::new(0)),
        closed: AtomicBool::new(false),
        park: Mutex::new(()),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Producer {
            shared: Arc::clone(&shared),
        },
        Consumer { shared },
    )
}

impl<T> Producer<T> {
    // srlint: hot-path begin
    /// Publish one value without blocking. On `Full` or `Closed` the
    /// value is returned inside the error.
    pub fn try_push(&mut self, value: T) -> Result<(), PushError<T>> {
        let sh = &*self.shared;
        if sh.closed.load(SeqCst) {
            return Err(PushError::Closed(value));
        }
        let t = sh.tail.load(SeqCst);
        let h = sh.head.load(SeqCst);
        let cap = sh.slots.len() as u64;
        if t.wrapping_sub(h) >= cap {
            return Err(PushError::Full(value));
        }
        let Some(slot) = sh.slots.get((t % cap) as usize) else {
            // Unreachable: t % cap < cap == slots.len(). Fail closed.
            return Err(PushError::Full(value));
        };
        *slot.lock() = Some(value);
        sh.tail.store(t.wrapping_add(1), SeqCst);
        let _g = sh.park.lock();
        sh.not_empty.notify_one();
        Ok(())
    }
    // srlint: hot-path end

    /// Publish one value, blocking while the ring is full
    /// (backpressure). Returns the value if the ring closed before it
    /// could be accepted.
    pub fn push(&mut self, value: T) -> Result<(), T> {
        let mut v = value;
        loop {
            match self.try_push(v) {
                Ok(()) => return Ok(()),
                Err(PushError::Closed(x)) => return Err(x),
                Err(PushError::Full(x)) => v = x,
            }
            let sh = &*self.shared;
            let mut g = sh.park.lock();
            let full =
                sh.tail.load(SeqCst).wrapping_sub(sh.head.load(SeqCst)) >= sh.slots.len() as u64;
            if !full || sh.closed.load(SeqCst) {
                continue;
            }
            sh.not_full.wait(&mut g);
        }
    }

    /// Close the ring: queued values stay poppable, new pushes fail,
    /// blocked peers wake. Idempotent; also runs on drop.
    pub fn close(&self) {
        self.shared.close();
    }

    /// Whether the ring is closed.
    pub fn is_closed(&self) -> bool {
        self.shared.closed.load(SeqCst)
    }

    /// Occupied slots.
    pub fn len(&self) -> usize {
        self.shared.len()
    }

    /// Whether the ring is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.shared.slots.len()
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        self.shared.close();
    }
}

impl<T> Consumer<T> {
    // srlint: hot-path begin
    /// Take one value without blocking; `None` means currently empty
    /// (check [`Consumer::is_closed`] to distinguish shutdown).
    pub fn try_pop(&mut self) -> Option<T> {
        let sh = &*self.shared;
        let h = sh.head.load(SeqCst);
        let t = sh.tail.load(SeqCst);
        if h == t {
            return None;
        }
        let cap = sh.slots.len() as u64;
        let v = sh.slots.get((h % cap) as usize)?.lock().take()?;
        sh.head.store(h.wrapping_add(1), SeqCst);
        let _g = sh.park.lock();
        sh.not_full.notify_one();
        Some(v)
    }
    // srlint: hot-path end

    /// Take one value, blocking while the ring is empty. `None` means
    /// the ring is closed *and* fully drained — the consumer's loop
    /// condition for graceful shutdown.
    pub fn pop(&mut self) -> Option<T> {
        loop {
            if let Some(v) = self.try_pop() {
                return Some(v);
            }
            if self.shared.closed.load(SeqCst) {
                // One more take: a push may have raced ahead of close.
                return self.try_pop();
            }
            let sh = &*self.shared;
            let mut g = sh.park.lock();
            let empty = sh.head.load(SeqCst) == sh.tail.load(SeqCst);
            if !empty || sh.closed.load(SeqCst) {
                continue;
            }
            sh.not_empty.wait(&mut g);
        }
    }

    /// Close the ring from the consumer side: the producer's next push
    /// fails instead of blocking forever. Idempotent; also runs on drop.
    pub fn close(&self) {
        self.shared.close();
    }

    /// Whether the ring is closed.
    pub fn is_closed(&self) -> bool {
        self.shared.closed.load(SeqCst)
    }

    /// Occupied slots.
    pub fn len(&self) -> usize {
        self.shared.len()
    }

    /// Whether the ring is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.shared.slots.len()
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        self.shared.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_with_wraparound() {
        let (mut tx, mut rx) = spsc::<u32>(3);
        assert_eq!(tx.capacity(), 3);
        for round in 0..10u32 {
            for i in 0..3 {
                tx.try_push(round * 3 + i).unwrap();
            }
            assert!(matches!(tx.try_push(99), Err(PushError::Full(99))));
            for i in 0..3 {
                assert_eq!(rx.try_pop(), Some(round * 3 + i));
            }
            assert_eq!(rx.try_pop(), None);
        }
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let (mut tx, mut rx) = spsc::<u8>(0);
        assert_eq!(tx.capacity(), 1);
        tx.try_push(7).unwrap();
        assert_eq!(rx.try_pop(), Some(7));
    }

    #[test]
    fn close_drains_then_ends() {
        let (mut tx, mut rx) = spsc::<u32>(4);
        tx.try_push(1).unwrap();
        tx.try_push(2).unwrap();
        tx.close();
        assert!(matches!(tx.try_push(3), Err(PushError::Closed(3))));
        // Queued values survive the close; then the ring reports done.
        assert_eq!(rx.pop(), Some(1));
        assert_eq!(rx.pop(), Some(2));
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn dropping_producer_closes() {
        let (tx, mut rx) = spsc::<u32>(2);
        drop(tx);
        assert!(rx.is_closed());
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn dropping_consumer_fails_pushes() {
        let (mut tx, rx) = spsc::<u32>(2);
        drop(rx);
        assert!(matches!(tx.push(1), Err(1)));
    }

    #[test]
    fn blocking_transfer_is_lossless_and_ordered() {
        // Stress the park/notify paths: a tiny ring forces both ends to
        // block repeatedly; every item must arrive exactly once, in order.
        const N: u64 = 20_000;
        let (mut tx, mut rx) = spsc::<u64>(2);
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                tx.push(i).expect("consumer alive");
            }
            // tx drops here, closing the ring.
        });
        let mut expected = 0;
        while let Some(v) = rx.pop() {
            assert_eq!(v, expected);
            expected += 1;
        }
        assert_eq!(expected, N);
        producer.join().unwrap();
    }

    #[test]
    fn backpressure_never_exceeds_capacity() {
        const N: u64 = 5_000;
        const CAP: usize = 4;
        let (mut tx, mut rx) = spsc::<u64>(CAP);
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                assert!(tx.len() <= CAP, "ring overfilled");
                tx.push(i).expect("consumer alive");
            }
        });
        let mut seen = 0;
        while seen < N {
            if let Some(v) = rx.pop() {
                assert!(rx.len() <= CAP, "ring overfilled");
                assert_eq!(v, seen);
                seen += 1;
            }
        }
        producer.join().unwrap();
    }

    #[test]
    fn consumer_close_unblocks_a_full_producer() {
        let (mut tx, rx) = spsc::<u64>(1);
        tx.try_push(0).unwrap();
        let producer = std::thread::spawn(move || {
            // Blocks on the full ring until the consumer closes it.
            tx.push(1)
        });
        rx.close();
        assert!(matches!(producer.join().unwrap(), Err(1)));
    }

    #[test]
    fn producer_close_unblocks_an_empty_consumer() {
        let (tx, mut rx) = spsc::<u64>(1);
        let consumer = std::thread::spawn(move || rx.pop());
        tx.close();
        assert_eq!(consumer.join().unwrap(), None);
        drop(tx);
    }
}
