//! Generic epoch-versioned op log — the lockstep-control idiom shared by
//! the packet engine and the fleet simulator.
//!
//! The multi-pipe packet engine (PR 6) keeps its per-pipe workers
//! bit-identical across worker counts by broadcasting every control-plane
//! change through an append-only log of immutable ops: the log's length
//! is the **epoch**, workers adopt ops in publication order at batch
//! boundaries only, and published entries are shared by `Arc` so a reader
//! never holds the log lock while applying one. That idiom is not
//! engine-specific, so it lives here as [`EpochLog<T>`]: the engine's
//! `ControlLog` shape generalized over the op type, with a blocking
//! [`EpochLog::wait_beyond`] for resident workers that park between
//! epochs instead of spinning.
//!
//! Guarantees:
//!
//! * `epoch()` counts every op ever published; it never goes backwards.
//! * `copy_range(from, to, ..)` returns the ops `[from, to)` in
//!   publication order (clamped to what the log retains — see
//!   [`EpochLog::truncate_to`]).
//! * Every reader that adopts `[cursor, epoch())` batches in cursor order
//!   observes the identical op sequence, regardless of scheduling — the
//!   property that makes per-shard state worker-count invariant.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::SeqCst};
use std::sync::Arc;

/// Append-only, epoch-versioned log of immutable ops.
pub struct EpochLog<T> {
    /// Published-op count; readable without the lock.
    epoch: AtomicU64,
    /// Set once by [`EpochLog::close`]; wakes blocked waiters for good.
    closed: AtomicBool,
    inner: Mutex<Inner<T>>,
    cond: Condvar,
}

struct Inner<T> {
    /// Epoch of the first retained op (earlier ops were truncated).
    base: u64,
    ops: Vec<Arc<T>>,
}

impl<T> EpochLog<T> {
    /// An empty, open log at epoch 0.
    pub fn new() -> EpochLog<T> {
        EpochLog {
            epoch: AtomicU64::new(0),
            closed: AtomicBool::new(false),
            inner: Mutex::new(Inner {
                base: 0,
                ops: Vec::new(),
            }),
            cond: Condvar::new(),
        }
    }

    /// The current epoch (total ops ever published).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(SeqCst)
    }

    /// Whether [`EpochLog::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.closed.load(SeqCst)
    }

    /// Publish one op; returns the epoch that includes it.
    ///
    /// Publishing to a closed log is a caller bug in any lockstep
    /// protocol (late ops would be unobservable by already-exited
    /// readers), so it panics rather than silently dropping the op.
    pub fn publish(&self, op: T) -> u64 {
        let mut g = self.inner.lock();
        assert!(!self.is_closed(), "publish on a closed EpochLog");
        g.ops.push(Arc::new(op));
        let e = g.base + g.ops.len() as u64;
        self.epoch.store(e, SeqCst);
        self.cond.notify_all();
        e
    }

    /// Close the log: no further ops will be published. Wakes every
    /// blocked [`EpochLog::wait_beyond`] caller.
    pub fn close(&self) {
        let _g = self.inner.lock();
        self.closed.store(true, SeqCst);
        self.cond.notify_all();
    }

    /// Block until the epoch exceeds `cursor` or the log is closed.
    /// Returns the epoch observed at wake-up — if it equals `cursor`, the
    /// log closed with nothing further to adopt.
    pub fn wait_beyond(&self, cursor: u64) -> u64 {
        let mut g = self.inner.lock();
        loop {
            let e = self.epoch();
            if e > cursor || self.is_closed() {
                return e;
            }
            self.cond.wait(&mut g);
        }
    }

    /// Copy the `Arc` refs of ops in `[from, to)` into `buf` (clamped to
    /// what the log retains). Callers apply them *after* this returns —
    /// the internal lock is held only for the pointer copies.
    pub fn copy_range(&self, from: u64, to: u64, buf: &mut Vec<Arc<T>>) {
        let g = self.inner.lock();
        let lo = from.max(g.base).saturating_sub(g.base) as usize;
        let hi = (to.max(g.base).saturating_sub(g.base) as usize).min(g.ops.len());
        if let Some(range) = g.ops.get(lo..hi) {
            buf.extend(range.iter().cloned());
        }
    }

    /// Drop every op at epoch ≤ `upto`. Only call once all adopters have
    /// confirmed reaching `upto`.
    pub fn truncate_to(&self, upto: u64) {
        let mut g = self.inner.lock();
        if upto <= g.base {
            return;
        }
        let n = ((upto - g.base) as usize).min(g.ops.len());
        g.ops.drain(..n);
        g.base += n as u64;
    }

    /// Ops currently retained (post-truncation).
    pub fn retained(&self) -> usize {
        self.inner.lock().ops.len()
    }
}

impl<T> Default for EpochLog<T> {
    fn default() -> EpochLog<T> {
        EpochLog::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_bumps_epoch_and_ranges_clamp() {
        let log: EpochLog<u64> = EpochLog::new();
        assert_eq!(log.epoch(), 0);
        for s in 0..10 {
            assert_eq!(log.publish(s), s + 1);
        }
        let mut buf = Vec::new();
        log.copy_range(3, 7, &mut buf);
        assert_eq!(buf.iter().map(|a| **a).collect::<Vec<_>>(), [3, 4, 5, 6]);
        buf.clear();
        log.copy_range(10, 10, &mut buf);
        log.copy_range(7, 3, &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn truncation_keeps_epoch_addressing_stable() {
        let log: EpochLog<u64> = EpochLog::new();
        for s in 0..8 {
            log.publish(s);
        }
        log.truncate_to(5);
        assert_eq!(log.epoch(), 8);
        assert_eq!(log.retained(), 3);
        let mut buf = Vec::new();
        log.copy_range(0, 8, &mut buf);
        assert_eq!(buf.iter().map(|a| **a).collect::<Vec<_>>(), [5, 6, 7]);
        log.truncate_to(2); // monotonic: no-op
        assert_eq!(log.retained(), 3);
    }

    #[test]
    fn wait_beyond_returns_immediately_when_ahead_or_closed() {
        let log: EpochLog<u64> = EpochLog::new();
        log.publish(1);
        assert_eq!(log.wait_beyond(0), 1);
        log.close();
        assert!(log.is_closed());
        assert_eq!(log.wait_beyond(1), 1);
    }

    #[test]
    #[should_panic]
    fn publish_after_close_panics() {
        let log: EpochLog<u64> = EpochLog::new();
        log.close();
        log.publish(1);
    }

    #[test]
    fn blocked_waiters_adopt_every_op_in_order() {
        const OPS: u64 = 2_000;
        const READERS: usize = 4;
        let log: Arc<EpochLog<u64>> = Arc::new(EpochLog::new());
        let mut threads = Vec::new();
        for _ in 0..READERS {
            let log = Arc::clone(&log);
            threads.push(std::thread::spawn(move || {
                let mut cursor = 0u64;
                let mut buf = Vec::new();
                let mut seen = Vec::new();
                loop {
                    let target = log.wait_beyond(cursor);
                    if target == cursor {
                        break; // closed, fully adopted
                    }
                    buf.clear();
                    log.copy_range(cursor, target, &mut buf);
                    assert_eq!(buf.len() as u64, target - cursor, "range short");
                    seen.extend(buf.iter().map(|a| **a));
                    cursor = target;
                }
                seen
            }));
        }
        for s in 0..OPS {
            log.publish(s);
        }
        log.close();
        let expect: Vec<u64> = (0..OPS).collect();
        for t in threads {
            assert_eq!(t.join().unwrap(), expect, "reader lost or reordered ops");
        }
    }
}
