//! Cache-line padding for cross-thread hot fields.
//!
//! The SPSC ring keeps its producer cursor, consumer cursor, and each
//! slot on separate cache lines so the two ends of the ring never
//! false-share: a producer bumping `tail` must not invalidate the line
//! the consumer is spinning on. 128 bytes covers both the common 64-byte
//! line and the 128-byte spatial prefetcher pairs on recent x86 parts
//! (the same constant crossbeam uses).

use std::ops::{Deref, DerefMut};

/// Pads and aligns `T` to 128 bytes so neighbouring values in an array
/// (or struct) land on distinct cache lines.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> CachePadded<T> {
        CachePadded { value }
    }

    /// Unwrap, returning the value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> CachePadded<T> {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn padded_values_do_not_share_lines() {
        assert!(std::mem::align_of::<CachePadded<AtomicU64>>() >= 128);
        assert!(std::mem::size_of::<CachePadded<AtomicU64>>() >= 128);
        let pair: [CachePadded<AtomicU64>; 2] = Default::default();
        let a = &pair[0] as *const _ as usize;
        let b = &pair[1] as *const _ as usize;
        assert!(b - a >= 128);
    }

    #[test]
    fn deref_roundtrip() {
        let mut p = CachePadded::new(41u32);
        *p += 1;
        assert_eq!(*p, 42);
        assert_eq!(p.into_inner(), 42);
    }
}
