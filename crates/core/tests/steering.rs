//! Flow-steering properties: stability, symmetry, and balance.
//!
//! The multi-pipe engine is only correct if every packet of a flow —
//! both directions, for the flow's whole lifetime — lands on the same
//! pipe (stability/symmetry), and only *fast* if a uniform trace spreads
//! evenly across pipes (balance). Stability and symmetry are checked over
//! arbitrary proptest-generated endpoints; balance over large synthetic
//! traces at every pipe count the saturation sweep uses.

use proptest::prelude::*;
use silkroad::FlowSteering;
use sr_types::{Addr, FiveTuple, Protocol};

const SEED: u64 = 0x51_1c_0a_d0;

fn v4_tuple(a: u32, ap: u16, b: u32, bp: u16, tcp: bool) -> FiveTuple {
    FiveTuple {
        src: Addr::v4_indexed(1, a, ap),
        dst: Addr::v4_indexed(20, b, bp),
        proto: if tcp { Protocol::Tcp } else { Protocol::Udp },
    }
}

fn v6_tuple(a: u32, ap: u16, b: u32, bp: u16, tcp: bool) -> FiveTuple {
    FiveTuple {
        src: Addr::v6_indexed(1, a, ap),
        dst: Addr::v6_indexed(20, b, bp),
        proto: if tcp { Protocol::Tcp } else { Protocol::Udp },
    }
}

proptest! {
    /// Same 5-tuple → same pipe, and the reverse direction steers with
    /// it, for every pipe count and both address families.
    #[test]
    fn steering_is_stable_and_symmetric(
        a in any::<u32>(),
        ap in 1u16..u16::MAX,
        b in any::<u32>(),
        bp in 1u16..u16::MAX,
        tcp in any::<bool>(),
        pipes in 1usize..=8,
    ) {
        for t in [v4_tuple(a, ap, b, bp, tcp), v6_tuple(a, ap, b, bp, tcp)] {
            let s = FlowSteering::new(SEED, pipes);
            let p = s.pipe_for(&t);
            prop_assert!(p < pipes);
            // Stable: a fresh steering instance with the same seed agrees,
            // and repeated calls agree.
            prop_assert_eq!(FlowSteering::new(SEED, pipes).pipe_for(&t), p);
            prop_assert_eq!(s.pipe_for(&t), p);
            // Symmetric: the reverse direction of the flow steers with it.
            let rev = FiveTuple { src: t.dst, dst: t.src, proto: t.proto };
            prop_assert_eq!(s.pipe_for(&rev), p);
        }
    }
}

/// A uniform trace spreads within ±10% of the even share across 2, 4,
/// and 8 pipes, for both IPv4 and IPv6 client populations.
#[test]
fn steering_balances_uniform_traces() {
    const FLOWS: u32 = 20_000;
    for pipes in [2usize, 4, 8] {
        let s = FlowSteering::new(SEED, pipes);
        for family in ["v4", "v6"] {
            let mut counts = vec![0u32; pipes];
            for i in 0..FLOWS {
                let t = match family {
                    "v4" => v4_tuple(i, 1024 + (i % 100) as u16, 0, 80, true),
                    _ => v6_tuple(i, 1024 + (i % 100) as u16, 0, 80, true),
                };
                counts[s.pipe_for(&t)] += 1;
            }
            let share = FLOWS as f64 / pipes as f64;
            for (p, &c) in counts.iter().enumerate() {
                let dev = (c as f64 - share).abs() / share;
                assert!(
                    dev <= 0.10,
                    "{family} pipe {p}/{pipes}: {c} flows, {:.1}% off even share {share}",
                    100.0 * dev
                );
            }
        }
    }
}

/// Balance also holds when the trace mixes both directions of each flow —
/// the symmetric hash must not fold the population onto fewer pipes.
#[test]
fn steering_balances_bidirectional_traffic() {
    const FLOWS: u32 = 10_000;
    let pipes = 4usize;
    let s = FlowSteering::new(SEED, pipes);
    let mut counts = vec![0u32; pipes];
    for i in 0..FLOWS {
        let t = v4_tuple(i, 1024 + (i % 100) as u16, 0, 80, true);
        let rev = FiveTuple {
            src: t.dst,
            dst: t.src,
            proto: t.proto,
        };
        let p = s.pipe_for(&t);
        assert_eq!(s.pipe_for(&rev), p);
        counts[p] += 1;
    }
    let share = FLOWS as f64 / pipes as f64;
    for &c in &counts {
        assert!(
            (c as f64 - share).abs() / share <= 0.10,
            "counts={counts:?}"
        );
    }
}
