//! Multi-pipe sharded dataplane: RSS-style flow steering over N pipes.
//!
//! A real switching ASIC carries several independent match-action
//! *pipes*, each with its own stages, SRAM, and stateful memory; the
//! chip's aggregate packet rate is the sum of what each pipe drains. This
//! module models that: a [`Pipe`] owns a full [`SilkRoadSwitch`] shard
//! (its slice of ConnTable capacity plus its own TransitTable bloom and
//! stats), and a [`MultiPipeSwitch`] steers every packet to one pipe by a
//! stable symmetric hash of the 5-tuple ([`FlowSteering`]) and fans
//! per-pipe batches out across an [`Exec`] worker pool.
//!
//! Invariants the steering upholds:
//!
//! * **Stability** — the same 5-tuple always lands on the same pipe, so
//!   each connection's ConnTable entry, TransitTable bits, and learning
//!   state live in exactly one shard.
//! * **Symmetry** — the hash combines src and dst with XOR before
//!   finalization, so both directions of a VIP flow steer identically
//!   (v4 and v6).
//! * **Balance** — the finalized hash is mapped to a pipe by
//!   multiply-shift, the same unbiased scaling [`sr_hash::ecmp_select`]
//!   uses, so a uniform trace spreads evenly across any pipe count.
//!
//! The control plane does *not* shard: VIP registration, DIP-pool
//! updates (the 3-step PCC protocol), health events, meters, and idle
//! expiry broadcast to every pipe, so all pipes hold identical VIPTable
//! and DIPPoolTable contents and run their update state machines in
//! lockstep. Per-pipe counters remain individually addressable through
//! [`MultiPipeSwitch::pipe`] and are aggregated losslessly (sums of event
//! counts, keywise map merges) by the chip-level accessors.

use crate::config::SilkRoadConfig;
use crate::dataplane::ForwardDecision;
use crate::health::HealthEvent;
use crate::memory::MemoryBreakdown;
use crate::pool::PoolUpdate;
use crate::stats::SwitchStats;
use crate::switch::SilkRoadSwitch;
use crate::update::UpdatePhase;
use sr_asic::MeterConfig;
use sr_exec::Exec;
use sr_hash::{splitmix64, HashFn};
use sr_types::{Dip, FiveTuple, Nanos, PacketMeta, PoolVersion, TypeError, Vip};

/// Longest inline address encoding ([`sr_types::Addr::encode_to`]):
/// 16 bytes of IPv6 plus the 2-byte port.
const MAX_ADDR_BYTES: usize = 18;

/// RSS-style flow steering: a stable, symmetric, balanced map from a
/// 5-tuple to a pipe index.
#[derive(Clone, Debug)]
pub struct FlowSteering {
    f: HashFn,
    pipes: usize,
}

impl FlowSteering {
    /// Steering over `pipes` pipes, seeded deterministically. Panics if
    /// `pipes` is zero (a switch with no pipes forwards nothing).
    pub fn new(seed: u64, pipes: usize) -> FlowSteering {
        assert!(pipes > 0, "FlowSteering needs at least one pipe");
        FlowSteering {
            // A distinct stream from the switch's table hashes: steering
            // must not correlate with ConnTable bucket placement.
            f: HashFn::new(splitmix64(seed ^ 0x5152_5353_7465_6572)),
            pipes,
        }
    }

    /// Number of pipes this steering maps onto.
    pub fn pipes(&self) -> usize {
        self.pipes
    }

    // srlint: hot-path begin
    /// The symmetric per-flow hash: src and dst are hashed separately and
    /// combined with XOR, so swapping them (the reverse direction of a
    /// VIP flow) yields the same value. Heap-free and panic-free.
    pub fn flow_hash(&self, tuple: &FiveTuple) -> u64 {
        let mut src = [0u8; MAX_ADDR_BYTES];
        let mut dst = [0u8; MAX_ADDR_BYTES];
        let ns = tuple.src.encode_to(&mut src, 0);
        let nd = tuple.dst.encode_to(&mut dst, 0);
        let hs = self.f.hash(src.get(..ns).unwrap_or(&[]));
        let hd = self.f.hash(dst.get(..nd).unwrap_or(&[]));
        splitmix64(hs ^ hd ^ tuple.proto.number() as u64)
    }

    /// The pipe a flow steers to. Multiply-shift scaling keeps the spread
    /// unbiased for any pipe count, not just powers of two.
    pub fn pipe_for(&self, tuple: &FiveTuple) -> usize {
        ((self.flow_hash(tuple) as u128 * self.pipes as u128) >> 64) as usize
    }
    // srlint: hot-path end
}

/// One hardware pipe: a full SilkRoad switch shard with its own slice of
/// ConnTable capacity, its own TransitTable bloom, and its own counters.
pub struct Pipe {
    id: usize,
    switch: SilkRoadSwitch,
}

impl Pipe {
    /// The pipe's index on the chip.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The shard's switch, for per-pipe inspection.
    pub fn switch(&self) -> &SilkRoadSwitch {
        &self.switch
    }

    /// Mutable access to the shard's switch — for drivers that have
    /// already steered their traffic (e.g. the saturation benchmark times
    /// each pipe's drain in isolation) or per-pipe fault injection.
    /// Feeding packets whose flows steer to a *different* pipe breaks
    /// flow-to-pipe affinity; normal traffic should go through
    /// [`MultiPipeSwitch::process_batch_into`].
    pub fn switch_mut(&mut self) -> &mut SilkRoadSwitch {
        &mut self.switch
    }
}

/// Per-pipe staging buffers for one steered batch. Retained across
/// batches so the steady state allocates nothing.
struct Lane {
    /// Original position of each steered packet in the input batch.
    idx: Vec<u32>,
    /// The steered packets, in input order.
    pkts: Vec<PacketMeta>,
    /// The pipe's decisions, parallel to `pkts`.
    out: Vec<ForwardDecision>,
}

/// A sharded SilkRoad switch: N [`Pipe`]s behind [`FlowSteering`], with
/// broadcast control plane and aggregated counters.
///
/// Per-flow behaviour is identical to a single [`SilkRoadSwitch`] built
/// from the same configuration: every pipe uses the same hash seed, and
/// each flow's entire packet stream lands in exactly one pipe.
pub struct MultiPipeSwitch {
    cfg: SilkRoadConfig,
    steering: FlowSteering,
    pipes: Vec<Pipe>,
    lanes: Vec<Lane>,
    exec: Exec,
}

impl MultiPipeSwitch {
    /// Build a switch with `pipes` pipes and a worker pool sized to match.
    /// The total ConnTable capacity in `cfg` is sharded evenly across
    /// pipes. Panics on an invalid configuration or an unplaceable layout
    /// (the replicated program must verify on the Tofino-class chip,
    /// including the SRC016 pipe-count rule).
    pub fn new(cfg: SilkRoadConfig, pipes: usize) -> MultiPipeSwitch {
        let exec = Exec::new(pipes.min(Exec::available().workers()));
        MultiPipeSwitch::with_exec(cfg, pipes, exec)
    }

    /// [`MultiPipeSwitch::new`] with a caller-provided worker pool —
    /// `Exec::sequential()` fans out inline on the caller's thread
    /// (deterministic, zero extra threads), a wider pool drains pipes
    /// concurrently.
    pub fn with_exec(cfg: SilkRoadConfig, pipes: usize, exec: Exec) -> MultiPipeSwitch {
        assert!(pipes > 0, "MultiPipeSwitch needs at least one pipe");
        let per_pipe = SilkRoadConfig {
            conn_capacity: cfg.conn_capacity.div_ceil(pipes),
            ..cfg.clone()
        };
        // The per-pipe program must place in one pipe's budgets *and*
        // replicate within the chip's pipe count.
        let report = per_pipe
            .pipeline_program()
            .with_pipes(pipes as u32)
            .check(&sr_asic::ChipSpec::tofino_class());
        assert!(
            report.is_placeable(),
            "multi-pipe layout rejected:\n{}",
            report.render()
        );
        let steering = FlowSteering::new(cfg.seed, pipes);
        let pipes: Vec<Pipe> = (0..pipes)
            .map(|id| Pipe {
                id,
                // Same seed in every pipe: hash families (digest, bucket,
                // select, bloom) are identical chip-wide, so a flow's
                // decision does not depend on which pipe it steers to.
                switch: SilkRoadSwitch::new(per_pipe.clone()),
            })
            .collect();
        let lanes = pipes
            .iter()
            .map(|_| Lane {
                idx: Vec::new(),
                pkts: Vec::new(),
                out: Vec::new(),
            })
            .collect();
        MultiPipeSwitch {
            cfg,
            steering,
            pipes,
            lanes,
            exec,
        }
    }

    /// The aggregate configuration (total capacity, before sharding).
    pub fn config(&self) -> &SilkRoadConfig {
        &self.cfg
    }

    /// Number of pipes.
    pub fn pipe_count(&self) -> usize {
        self.pipes.len()
    }

    /// One pipe, for per-pipe (lossless) counter inspection.
    pub fn pipe(&self, id: usize) -> Option<&Pipe> {
        self.pipes.get(id)
    }

    /// One pipe, mutably (see [`Pipe::switch_mut`] for the contract).
    pub fn pipe_mut(&mut self, id: usize) -> Option<&mut Pipe> {
        self.pipes.get_mut(id)
    }

    /// The steering map.
    pub fn steering(&self) -> &FlowSteering {
        &self.steering
    }

    // ---- data plane ----------------------------------------------------

    // srlint: hot-path begin
    /// Process one packet: steer, then run it through its pipe.
    pub fn process_packet(&mut self, pkt: &PacketMeta, now: Nanos) -> ForwardDecision {
        let p = self.steering.pipe_for(&pkt.tuple);
        match self.pipes.get_mut(p) {
            Some(pipe) => pipe.switch.process_packet(pkt, now),
            // Unreachable: pipe_for maps into 0..pipes. Fail closed.
            None => ForwardDecision::dropped(),
        }
    }

    /// Process a batch, returning decisions in input order.
    pub fn process_batch(&mut self, pkts: &[PacketMeta], now: Nanos) -> Vec<ForwardDecision> {
        let mut out = Vec::with_capacity(pkts.len());
        self.process_batch_into(pkts, now, &mut out);
        out
    }

    /// [`MultiPipeSwitch::process_batch`] appending into a caller-owned
    /// buffer. Three passes: steer every packet to its lane, fan the lanes
    /// out across the pipes (inline when the pool is sequential or there
    /// is one pipe; over [`Exec`] workers otherwise), then scatter each
    /// lane's decisions back to input order. Lane buffers are retained, so
    /// the steady state allocates nothing on the inline path.
    pub fn process_batch_into(
        &mut self,
        pkts: &[PacketMeta],
        now: Nanos,
        out: &mut Vec<ForwardDecision>,
    ) {
        for lane in &mut self.lanes {
            lane.idx.clear();
            lane.pkts.clear();
            lane.out.clear();
        }
        for (i, pkt) in pkts.iter().enumerate() {
            let p = self.steering.pipe_for(&pkt.tuple);
            if let Some(lane) = self.lanes.get_mut(p) {
                lane.idx.push(i as u32);
                lane.pkts.push(*pkt);
            }
        }
        if self.exec.workers() <= 1 || self.pipes.len() <= 1 {
            for (pipe, lane) in self.pipes.iter_mut().zip(self.lanes.iter_mut()) {
                pipe.switch
                    .process_batch_into(&lane.pkts, now, &mut lane.out);
            }
        } else {
            let jobs: Vec<(&mut Pipe, &mut Lane)> =
                self.pipes.iter_mut().zip(self.lanes.iter_mut()).collect();
            self.exec.run(jobs, |(pipe, lane)| {
                pipe.switch
                    .process_batch_into(&lane.pkts, now, &mut lane.out);
            });
        }
        let base = out.len();
        out.resize(base + pkts.len(), ForwardDecision::dropped());
        for lane in &self.lanes {
            for (d, &i) in lane.out.iter().zip(lane.idx.iter()) {
                if let Some(slot) = out.get_mut(base + i as usize) {
                    *slot = *d;
                }
            }
        }
    }
    // srlint: hot-path end

    /// Close a connection (steered to its owning pipe).
    pub fn close_connection(&mut self, tuple: &FiveTuple, now: Nanos) {
        let p = self.steering.pipe_for(tuple);
        if let Some(pipe) = self.pipes.get_mut(p) {
            pipe.switch.close_connection(tuple, now);
        }
    }

    // ---- control plane (broadcast) -------------------------------------

    /// Register a VIP on every pipe.
    pub fn add_vip(&mut self, vip: Vip, dips: Vec<Dip>) -> Result<(), TypeError> {
        for pipe in &mut self.pipes {
            pipe.switch.add_vip(vip, dips.clone())?;
        }
        Ok(())
    }

    /// Remove a VIP from every pipe.
    pub fn remove_vip(&mut self, vip: Vip) -> Result<(), TypeError> {
        for pipe in &mut self.pipes {
            pipe.switch.remove_vip(vip)?;
        }
        Ok(())
    }

    /// Request a DIP-pool update on every pipe; each pipe runs the 3-step
    /// PCC protocol over its own shard of connections.
    pub fn request_update(
        &mut self,
        vip: Vip,
        op: PoolUpdate,
        now: Nanos,
    ) -> Result<(), TypeError> {
        for pipe in &mut self.pipes {
            pipe.switch.request_update(vip, op, now)?;
        }
        Ok(())
    }

    /// Apply health transitions on every pipe.
    pub fn apply_health_events(
        &mut self,
        events: &[HealthEvent],
        now: Nanos,
    ) -> Result<(), TypeError> {
        for pipe in &mut self.pipes {
            pipe.switch.apply_health_events(events, now)?;
        }
        Ok(())
    }

    /// Attach a VIP meter on every pipe. Each pipe polices its own share
    /// of the VIP's flows, so a chip-level rate `r` is configured as `r`
    /// per pipe only if the caller wants per-pipe ceilings; pass the
    /// already-divided rate for an aggregate bound.
    pub fn attach_meter(&mut self, vip: Vip, cfg: MeterConfig) {
        for pipe in &mut self.pipes {
            pipe.switch.attach_meter(vip, cfg);
        }
    }

    /// Detach a VIP's meter on every pipe.
    pub fn detach_meter(&mut self, vip: Vip) {
        for pipe in &mut self.pipes {
            pipe.switch.detach_meter(vip);
        }
    }

    /// Run every pipe's control plane up to `now`.
    pub fn advance(&mut self, now: Nanos) {
        for pipe in &mut self.pipes {
            pipe.switch.advance(now);
        }
    }

    /// Earliest pending control-plane wakeup across all pipes.
    pub fn next_wakeup(&self) -> Option<Nanos> {
        self.pipes
            .iter()
            .filter_map(|p| p.switch.next_wakeup())
            .min()
    }

    /// Expire idle connections on every pipe; returns the total expired.
    pub fn expire_idle(&mut self, now: Nanos) -> usize {
        self.pipes
            .iter_mut()
            .map(|p| p.switch.expire_idle(now))
            .sum()
    }

    // ---- aggregated observability --------------------------------------

    /// Chip-level statistics: every pipe's counters merged losslessly
    /// (scalar sums; per-VIP maps merged keywise).
    pub fn stats(&self) -> SwitchStats {
        let mut total = SwitchStats::default();
        for pipe in &self.pipes {
            total.merge(pipe.switch.stats());
        }
        total
    }

    /// Total installed connections across pipes.
    pub fn conn_count(&self) -> usize {
        self.pipes.iter().map(|p| p.switch.conn_count()).sum()
    }

    /// A VIP's update phase. The control plane broadcasts, so all pipes
    /// agree; pipe 0 is authoritative.
    pub fn update_phase(&self, vip: Vip) -> Option<UpdatePhase> {
        self.pipes.first().and_then(|p| p.switch.update_phase(vip))
    }

    /// A VIP's current pool version (pipe 0; see [`Self::update_phase`]).
    pub fn current_version(&self, vip: Vip) -> Option<PoolVersion> {
        self.pipes
            .first()
            .and_then(|p| p.switch.current_version(vip))
    }

    /// The live DIPs of a VIP's newest pool (identical on every pipe;
    /// borrowed from pipe 0).
    pub fn current_dips(&self, vip: Vip) -> Option<&[Dip]> {
        self.pipes.first().and_then(|p| p.switch.current_dips(vip))
    }

    /// Version-manager counters summed across pipes: (allocations, reuses,
    /// pool_changes, live_versions). Each pipe allocates versions for its
    /// own DIPPoolTable, so the sums count chip-wide events and the
    /// summed `live_versions` is the chip-wide pool-row count. Per-pipe
    /// values stay reachable through [`Self::pipe`].
    pub fn version_counters(&self, vip: Vip) -> Option<(u64, u64, u64, usize)> {
        let mut any = false;
        let mut total = (0u64, 0u64, 0u64, 0usize);
        for pipe in &self.pipes {
            if let Some((a, r, c, l)) = pipe.switch.version_counters(vip) {
                any = true;
                total.0 += a;
                total.1 += r;
                total.2 += c;
                total.3 += l;
            }
        }
        any.then_some(total)
    }

    /// TransitTable counters summed across pipes: (recorded, checks, hits,
    /// total_size_bytes).
    pub fn transit_counters(&self) -> (u64, u64, u64, usize) {
        let mut total = (0u64, 0u64, 0u64, 0usize);
        for pipe in &self.pipes {
            let (r, c, h, s) = pipe.switch.transit_counters();
            total.0 += r;
            total.1 += c;
            total.2 += h;
            total.3 += s;
        }
        total
    }

    /// Chip-wide SRAM footprint: the sum of every pipe's breakdown.
    pub fn memory(&self) -> MemoryBreakdown {
        let mut total = MemoryBreakdown::default();
        for pipe in &self.pipes {
            let m = pipe.switch.memory();
            total.conn_table += m.conn_table;
            total.vip_table += m.vip_table;
            total.dip_pool_table += m.dip_pool_table;
            total.transit += m.transit;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_types::Addr;

    fn vip() -> Vip {
        Vip(Addr::v4(20, 0, 0, 1, 80))
    }

    fn dip(i: u8) -> Dip {
        Dip(Addr::v4(10, 0, 0, i, 20))
    }

    fn conn(i: u32) -> FiveTuple {
        FiveTuple::tcp(Addr::v4_indexed(1, i, 1000), vip().0)
    }

    fn engine(pipes: usize) -> MultiPipeSwitch {
        let mut e =
            MultiPipeSwitch::with_exec(SilkRoadConfig::small_test(), pipes, Exec::sequential());
        e.add_vip(vip(), vec![dip(1), dip(2), dip(3)]).unwrap();
        e
    }

    #[test]
    fn steering_is_symmetric_per_direction() {
        let s = FlowSteering::new(7, 4);
        let fwd = FiveTuple::tcp(Addr::v4(1, 2, 3, 4, 1234), Addr::v4(20, 0, 0, 1, 80));
        let rev = FiveTuple::tcp(Addr::v4(20, 0, 0, 1, 80), Addr::v4(1, 2, 3, 4, 1234));
        assert_eq!(s.flow_hash(&fwd), s.flow_hash(&rev));
        assert_eq!(s.pipe_for(&fwd), s.pipe_for(&rev));
    }

    #[test]
    #[should_panic(expected = "at least one pipe")]
    fn zero_pipes_rejected() {
        let _ = FlowSteering::new(1, 0);
    }

    #[test]
    fn batch_decisions_match_per_packet_path() {
        let mut a = engine(4);
        let mut b = engine(4);
        let pkts: Vec<PacketMeta> = (0..64).map(|i| PacketMeta::syn(conn(i))).collect();
        let batch = a.process_batch(&pkts, Nanos::ZERO);
        let single: Vec<ForwardDecision> = pkts
            .iter()
            .map(|p| b.process_packet(p, Nanos::ZERO))
            .collect();
        assert_eq!(batch, single);
        assert_eq!(a.stats().packets, 64);
    }

    #[test]
    fn broadcast_update_runs_on_every_pipe() {
        let mut e = engine(4);
        let pkts: Vec<PacketMeta> = (0..64).map(|i| PacketMeta::syn(conn(i))).collect();
        e.process_batch(&pkts, Nanos::ZERO);
        e.advance(Nanos::from_secs(1));
        e.request_update(vip(), PoolUpdate::Add(dip(9)), Nanos::from_secs(1))
            .unwrap();
        e.advance(Nanos::from_secs(2));
        assert_eq!(e.update_phase(vip()), Some(UpdatePhase::Idle));
        for p in 0..e.pipe_count() {
            let sw = e.pipe(p).unwrap().switch();
            assert!(
                sw.current_dips(vip()).unwrap().contains(&dip(9)),
                "pipe {p}"
            );
            assert_eq!(sw.stats().updates_requested, 1, "pipe {p}");
        }
        // The aggregate view sums the broadcast events.
        assert_eq!(e.stats().updates_requested, 4);
    }

    #[test]
    fn counters_aggregate_losslessly() {
        let mut e = engine(4);
        let pkts: Vec<PacketMeta> = (0..256).map(|i| PacketMeta::syn(conn(i))).collect();
        e.process_batch(&pkts, Nanos::ZERO);
        e.advance(Nanos::from_secs(1));
        let per_pipe: u64 = (0..e.pipe_count())
            .map(|p| e.pipe(p).unwrap().switch().stats().installs)
            .sum();
        assert_eq!(e.stats().installs, per_pipe);
        assert!(per_pipe > 0);
        let conn_sum: usize = (0..e.pipe_count())
            .map(|p| e.pipe(p).unwrap().switch().conn_count())
            .sum();
        assert_eq!(e.conn_count(), conn_sum);
        let mem = e.memory();
        assert!(mem.transit > 0 && mem.conn_table > 0);
    }

    #[test]
    fn layout_check_covers_the_pipes_dimension() {
        // 4 pipes fit the Tofino-class chip; more than the chip has must
        // be rejected by SRC016 at construction.
        let chip_pipes = sr_asic::ChipSpec::tofino_class().pipes as usize;
        let ok = std::panic::catch_unwind(|| {
            MultiPipeSwitch::with_exec(SilkRoadConfig::small_test(), chip_pipes, Exec::sequential())
        });
        assert!(ok.is_ok());
        let too_many = std::panic::catch_unwind(|| {
            MultiPipeSwitch::with_exec(
                SilkRoadConfig::small_test(),
                chip_pipes + 1,
                Exec::sequential(),
            )
        });
        assert!(too_many.is_err());
    }

    #[test]
    fn threaded_fanout_matches_sequential() {
        let mut seq = engine(4);
        let mut thr = MultiPipeSwitch::with_exec(SilkRoadConfig::small_test(), 4, Exec::new(4));
        thr.add_vip(vip(), vec![dip(1), dip(2), dip(3)]).unwrap();
        let pkts: Vec<PacketMeta> = (0..512).map(|i| PacketMeta::syn(conn(i))).collect();
        assert_eq!(
            seq.process_batch(&pkts, Nanos::ZERO),
            thr.process_batch(&pkts, Nanos::ZERO)
        );
        assert_eq!(seq.stats(), thr.stats());
    }
}
