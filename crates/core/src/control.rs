//! Control-plane plumbing: learning filter → switch CPU → ConnTable.
//!
//! Tracks which connections are *pending* (learned but not yet installed) —
//! the population the 3-step update protocol reasons about — and carries
//! per-VIP outstanding counters for the step-transition checks.

use sr_asic::{LearningFilter, LearningFilterConfig, SwitchCpu, SwitchCpuConfig};
use sr_hash::{FxHashMap, FxHashSet};
use sr_types::{Dip, Nanos, PoolVersion, Vip};

/// Metadata captured when the data plane learns a new connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LearnMeta {
    /// The VIP the connection targets.
    pub vip: Vip,
    /// The pool version the data plane selected at first-packet time.
    pub version: PoolVersion,
    /// The DIP that version's pool hashed the connection to.
    pub dip: Dip,
}

/// A pending ConnTable insertion travelling through the CPU queue.
#[derive(Clone, Debug)]
pub struct InstallJob {
    /// Connection key (canonical 5-tuple bytes).
    pub key: Box<[u8]>,
    /// Learn-time metadata.
    pub meta: LearnMeta,
    /// First-packet arrival time.
    pub arrived: Nanos,
}

/// An install that finished its CPU processing.
#[derive(Clone, Debug)]
pub struct CompletedInstall {
    /// The job.
    pub job: InstallJob,
    /// When the entry became visible in ConnTable.
    pub completed_at: Nanos,
}

/// The control plane.
pub struct ControlPlane {
    /// The hardware learning filter.
    pub learning: LearningFilter<LearnMeta>,
    /// The management CPU.
    pub cpu: SwitchCpu<InstallJob>,
    /// Keys anywhere in the learn→install pipeline.
    in_flight: FxHashSet<Box<[u8]>>,
    /// Per-VIP count of in-flight (pending) connections.
    outstanding: FxHashMap<Vip, u64>,
    /// Connections closed before their install completed.
    closed_early: FxHashSet<Box<[u8]>>,
}

impl ControlPlane {
    /// Build from filter and CPU configurations.
    pub fn new(learning: LearningFilterConfig, cpu: SwitchCpuConfig) -> ControlPlane {
        ControlPlane {
            learning: LearningFilter::new(learning),
            cpu: SwitchCpu::new(cpu),
            in_flight: FxHashSet::default(),
            outstanding: FxHashMap::default(),
            closed_early: FxHashSet::default(),
        }
    }

    /// Whether `key` is currently pending (filter or CPU queue).
    pub fn is_pending(&self, key: &[u8]) -> bool {
        self.in_flight.contains(key)
    }

    /// Pending connections for `vip`.
    pub fn outstanding(&self, vip: Vip) -> u64 {
        self.outstanding.get(&vip).copied().unwrap_or(0)
    }

    /// Data-plane learn: returns whether the event entered the pipeline
    /// (false on duplicate or filter overflow — the connection stays
    /// unlearned and retries on its next packet).
    pub fn learn(&mut self, key: &[u8], meta: LearnMeta, now: Nanos) -> bool {
        if self.in_flight.contains(key) {
            return false;
        }
        if !self.learning.learn(key, meta, now) {
            return false;
        }
        self.in_flight.insert(key.into());
        *self.outstanding.entry(meta.vip).or_insert(0) += 1;
        true
    }

    /// Drain the learning filter into the CPU queue if its notification is
    /// due at `now`. Returns how many jobs were submitted.
    pub fn drain_learning(&mut self, now: Nanos) -> usize {
        match self.learning.drain_if_due(now) {
            Some(batch) => {
                let n = batch.len();
                // The CPU starts work when notified, i.e. at the drain time.
                for ev in batch {
                    self.cpu.submit(
                        InstallJob {
                            key: ev.key,
                            meta: ev.meta,
                            arrived: ev.arrived,
                        },
                        now,
                    );
                }
                n
            }
            None => 0,
        }
    }

    /// Pop installs whose CPU processing finished by `now`.
    pub fn pop_installs(&mut self, now: Nanos) -> Vec<CompletedInstall> {
        self.cpu
            .pop_completed(now)
            .into_iter()
            .map(|j| CompletedInstall {
                completed_at: j.completes_at,
                job: j.payload,
            })
            .collect()
    }

    /// Mark a key's pipeline journey finished (installed, dropped, or
    /// failed). Must be called exactly once per completed learn.
    pub fn mark_terminal(&mut self, key: &[u8], vip: Vip) {
        if self.in_flight.remove(key) {
            if let Some(c) = self.outstanding.get_mut(&vip) {
                *c = c.saturating_sub(1);
            }
        }
    }

    /// Note that a connection closed; if it is still pending, its eventual
    /// install must be skipped.
    pub fn note_close(&mut self, key: &[u8]) {
        if self.in_flight.contains(key) {
            self.closed_early.insert(key.into());
        }
    }

    /// Whether `key` closed while pending (consumes the marker).
    pub fn take_closed_early(&mut self, key: &[u8]) -> bool {
        self.closed_early.remove(key)
    }

    /// The next instant at which control-plane work becomes due.
    pub fn next_wakeup(&self) -> Option<Nanos> {
        match (self.learning.notify_deadline(), self.cpu.next_completion()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_types::{Addr, Duration};

    fn meta() -> LearnMeta {
        LearnMeta {
            vip: Vip(Addr::v4(20, 0, 0, 1, 80)),
            version: PoolVersion(0),
            dip: Dip(Addr::v4(10, 0, 0, 1, 20)),
        }
    }

    fn cp() -> ControlPlane {
        ControlPlane::new(
            LearningFilterConfig {
                capacity: 8,
                timeout: Duration::from_millis(1),
            },
            SwitchCpuConfig {
                insertions_per_sec: 200_000,
            },
        )
    }

    #[test]
    fn learn_to_install_pipeline() {
        let mut c = cp();
        assert!(c.learn(b"k1", meta(), Nanos::ZERO));
        assert!(!c.learn(b"k1", meta(), Nanos::ZERO), "duplicate learn");
        assert!(c.is_pending(b"k1"));
        assert_eq!(c.outstanding(meta().vip), 1);

        // Nothing drains before the filter timeout.
        assert_eq!(c.drain_learning(Nanos::from_micros(500)), 0);
        assert_eq!(c.drain_learning(Nanos::from_millis(1)), 1);

        // CPU takes 5 µs after the drain.
        let done = c.pop_installs(Nanos::from_millis(1) + Duration::from_micros(5));
        assert_eq!(done.len(), 1);
        assert_eq!(&*done[0].job.key, b"k1");
        assert_eq!(done[0].job.arrived, Nanos::ZERO);

        c.mark_terminal(b"k1", meta().vip);
        assert!(!c.is_pending(b"k1"));
        assert_eq!(c.outstanding(meta().vip), 0);
    }

    #[test]
    fn close_while_pending() {
        let mut c = cp();
        c.learn(b"k1", meta(), Nanos::ZERO);
        c.note_close(b"k1");
        assert!(c.take_closed_early(b"k1"));
        assert!(!c.take_closed_early(b"k1"), "marker must be consumed");
        // Closing a non-pending key leaves no marker.
        c.note_close(b"k2");
        assert!(!c.take_closed_early(b"k2"));
    }

    #[test]
    fn wakeup_is_min_of_deadlines() {
        let mut c = cp();
        assert_eq!(c.next_wakeup(), None);
        c.learn(b"k1", meta(), Nanos::from_micros(100));
        // Only the filter deadline exists.
        assert_eq!(
            c.next_wakeup(),
            Some(Nanos::from_micros(100) + Duration::from_millis(1))
        );
        c.drain_learning(Nanos::from_millis(2));
        // Now only the CPU completion exists.
        assert_eq!(
            c.next_wakeup(),
            Some(Nanos::from_millis(2) + Duration::from_micros(5))
        );
    }

    #[test]
    fn overflow_rejects_learn_without_tracking() {
        let mut c = cp();
        for i in 0..8u32 {
            assert!(c.learn(&i.to_be_bytes(), meta(), Nanos::ZERO));
        }
        assert!(!c.learn(b"overflow", meta(), Nanos::ZERO));
        assert!(!c.is_pending(b"overflow"));
        assert_eq!(c.outstanding(meta().vip), 8);
    }

    #[test]
    fn mark_terminal_is_idempotent() {
        let mut c = cp();
        c.learn(b"k1", meta(), Nanos::ZERO);
        c.mark_terminal(b"k1", meta().vip);
        c.mark_terminal(b"k1", meta().vip);
        assert_eq!(c.outstanding(meta().vip), 0);
    }
}
