//! Control-plane plumbing: learning filter → switch CPU → ConnTable.
//!
//! Tracks which connections are *pending* (learned but not yet installed) —
//! the population the 3-step update protocol reasons about — and carries
//! per-VIP outstanding counters for the step-transition checks.

use crate::dataplane::ConnHashes;
use sr_asic::{LearningFilter, LearningFilterConfig, SwitchCpu, SwitchCpuConfig};
use sr_hash::{FxHashMap, FxHashSet};
use sr_types::{Dip, Nanos, PoolVersion, TupleKey, Vip};

/// Metadata captured when the data plane learns a new connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LearnMeta {
    /// The VIP the connection targets.
    pub vip: Vip,
    /// The pool version the data plane selected at first-packet time.
    pub version: PoolVersion,
    /// The DIP that version's pool hashed the connection to.
    pub dip: Dip,
    /// The packet-time ConnTable hashes, carried to install time so the
    /// cuckoo insert never re-hashes the key ([`ConnHashes::empty`] when
    /// the producer has no hash pass, e.g. control-plane tests).
    pub hashes: ConnHashes,
}

/// How the control plane disposed of a learn attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LearnOutcome {
    /// The event entered the pipeline (filter → CPU → install).
    Entered,
    /// The key is already somewhere in the pipeline; the attempt is a
    /// duplicate and the connection stays pending.
    AlreadyPending,
    /// The filter was full; the connection stays unlearned and retries on
    /// its next packet.
    Overflow,
}

/// A pending ConnTable insertion travelling through the CPU queue.
#[derive(Clone, Copy, Debug)]
pub struct InstallJob {
    /// Connection key (canonical 5-tuple bytes), stored inline — install
    /// jobs flow through the setup fast path, where a heap key per new
    /// connection would be an allocation per setup.
    pub key: TupleKey,
    /// Learn-time metadata.
    pub meta: LearnMeta,
    /// First-packet arrival time.
    pub arrived: Nanos,
}

/// An install that finished its CPU processing.
#[derive(Clone, Copy, Debug)]
pub struct CompletedInstall {
    /// The job.
    pub job: InstallJob,
    /// When the entry became visible in ConnTable.
    pub completed_at: Nanos,
}

/// The control plane.
pub struct ControlPlane {
    /// The hardware learning filter.
    pub learning: LearningFilter<LearnMeta>,
    /// The management CPU.
    pub cpu: SwitchCpu<InstallJob>,
    /// Keys anywhere in the learn→install pipeline (inline keys — the set
    /// reaches steady state and stops allocating once its table is sized).
    in_flight: FxHashSet<TupleKey>,
    /// Per-VIP count of in-flight (pending) connections.
    outstanding: FxHashMap<Vip, u64>,
    /// Connections closed before their install completed.
    closed_early: FxHashSet<TupleKey>,
}

impl ControlPlane {
    /// Build from filter and CPU configurations.
    pub fn new(learning: LearningFilterConfig, cpu: SwitchCpuConfig) -> ControlPlane {
        ControlPlane {
            learning: LearningFilter::new(learning),
            cpu: SwitchCpu::new(cpu),
            in_flight: FxHashSet::default(),
            outstanding: FxHashMap::default(),
            closed_early: FxHashSet::default(),
        }
    }

    /// Whether `key` is currently pending (filter or CPU queue).
    pub fn is_pending(&self, key: &[u8]) -> bool {
        self.in_flight.contains(key)
    }

    /// Pending connections for `vip`.
    pub fn outstanding(&self, vip: Vip) -> u64 {
        self.outstanding.get(&vip).copied().unwrap_or(0)
    }

    /// Data-plane learn: returns whether the event entered the pipeline
    /// (false on duplicate or filter overflow — the connection stays
    /// unlearned and retries on its next packet).
    pub fn learn(&mut self, key: &[u8], meta: LearnMeta, now: Nanos) -> bool {
        self.learn_gate(key, meta, now) == LearnOutcome::Entered
    }

    /// [`ControlPlane::learn`] with the dedup check fused into the insert:
    /// one hashed operation on `in_flight` decides duplicate-vs-new (the
    /// set covers both the filter and the CPU queue, so the filter's own
    /// dedup probe is skipped), and the distinct outcomes let the miss
    /// path drop its separate `is_pending` probe.
    pub fn learn_gate(&mut self, key: &[u8], meta: LearnMeta, now: Nanos) -> LearnOutcome {
        let inline = TupleKey::from_bytes(key);
        if !self.in_flight.insert(inline) {
            return LearnOutcome::AlreadyPending;
        }
        if !self.learning.learn_preapproved(inline, meta, now) {
            // Rare: the filter was at capacity. Roll back the membership.
            self.in_flight.remove(&inline);
            return LearnOutcome::Overflow;
        }
        *self.outstanding.entry(meta.vip).or_insert(0) += 1;
        LearnOutcome::Entered
    }

    /// Drain the learning filter into the CPU queue if its notification is
    /// due at `now`. Returns how many jobs were submitted. Allocation-free
    /// at steady state: events move straight from the filter's recycled
    /// buffer into the CPU queue.
    pub fn drain_learning(&mut self, now: Nanos) -> usize {
        let ControlPlane { learning, cpu, .. } = self;
        // The CPU starts work when notified, i.e. at the drain time.
        learning.drain_if_due_with(now, |ev| {
            cpu.submit(
                InstallJob {
                    key: ev.key,
                    meta: ev.meta,
                    arrived: ev.arrived,
                },
                now,
            );
        })
    }

    /// Pop installs whose CPU processing finished by `now`.
    pub fn pop_installs(&mut self, now: Nanos) -> Vec<CompletedInstall> {
        let mut out = Vec::new();
        self.pop_installs_into(now, &mut out);
        out
    }

    /// The recycled-buffer form of [`ControlPlane::pop_installs`]: append
    /// completions to `out` (which the caller reuses across batches) and
    /// return how many were popped.
    pub fn pop_installs_into(&mut self, now: Nanos, out: &mut Vec<CompletedInstall>) -> usize {
        self.cpu.pop_completed_with(now, |j| {
            out.push(CompletedInstall {
                completed_at: j.completes_at,
                job: j.payload,
            });
        })
    }

    /// Mark a key's pipeline journey finished (installed, dropped, or
    /// failed). Must be called exactly once per completed learn.
    pub fn mark_terminal(&mut self, key: &[u8], vip: Vip) {
        if self.in_flight.remove(key) {
            if let Some(c) = self.outstanding.get_mut(&vip) {
                *c = c.saturating_sub(1);
            }
        }
    }

    /// Whether an install batch that was just popped emptied the whole
    /// pipeline: nothing buffered in the filter, nothing queued on the
    /// CPU. When it did, every remaining `in_flight` key belongs to the
    /// popped batch, and the batched drain can settle the membership with
    /// one [`ControlPlane::clear_in_flight`] instead of a hashed removal
    /// per job — the dominant per-install cost once the set's table has
    /// grown to its churn high-water mark.
    pub fn drained_pipeline_empty(&self) -> bool {
        self.learning.is_empty() && self.cpu.next_completion().is_none()
    }

    /// The per-VIP half of [`ControlPlane::mark_terminal`] for a job the
    /// batched drain just popped: its key is in `in_flight` by
    /// construction (learns insert it; only terminals remove it; the CPU
    /// queue pops each job once), so the membership check is skipped and
    /// the counter decremented directly. The caller settles the set
    /// itself via [`ControlPlane::clear_in_flight`].
    pub fn mark_terminal_popped(&mut self, vip: Vip) {
        debug_assert!(!self.in_flight.is_empty());
        if let Some(c) = self.outstanding.get_mut(&vip) {
            *c = c.saturating_sub(1);
        }
    }

    /// Bulk-settle the in-flight membership after a drain that emptied
    /// the pipeline (see [`ControlPlane::drained_pipeline_empty`]). Keeps
    /// the set's capacity for the next burst.
    pub fn clear_in_flight(&mut self) {
        debug_assert!(self.drained_pipeline_empty());
        debug_assert!(self.outstanding.values().all(|&c| c == 0));
        self.in_flight.clear();
    }

    /// Note that a connection closed; if it is still pending, its eventual
    /// install must be skipped.
    pub fn note_close(&mut self, key: &[u8]) {
        if self.in_flight.contains(key) {
            self.closed_early.insert(TupleKey::from_bytes(key));
        }
    }

    /// Whether `key` closed while pending (consumes the marker).
    pub fn take_closed_early(&mut self, key: &[u8]) -> bool {
        self.closed_early.remove(key)
    }

    /// Whether any connection closed while its install was pending. The
    /// install drain checks this before hashing each key against the
    /// (almost always empty) early-close set.
    pub fn has_closed_early(&self) -> bool {
        !self.closed_early.is_empty()
    }

    /// The learning filter's next notification deadline, if any — the
    /// batched install drain pops every CPU completion due before it in
    /// one pass.
    pub fn learning_deadline(&self) -> Option<Nanos> {
        self.learning.notify_deadline()
    }

    /// Events currently buffered in the learning filter (the churn bench
    /// samples this as its learn-queue depth).
    pub fn learn_queue_depth(&self) -> usize {
        self.learning.len()
    }

    /// The next instant at which control-plane work becomes due.
    pub fn next_wakeup(&self) -> Option<Nanos> {
        match (self.learning.notify_deadline(), self.cpu.next_completion()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_types::{Addr, Duration};

    fn meta() -> LearnMeta {
        LearnMeta {
            vip: Vip(Addr::v4(20, 0, 0, 1, 80)),
            version: PoolVersion(0),
            dip: Dip(Addr::v4(10, 0, 0, 1, 20)),
            hashes: ConnHashes::empty(),
        }
    }

    fn cp() -> ControlPlane {
        ControlPlane::new(
            LearningFilterConfig {
                capacity: 8,
                timeout: Duration::from_millis(1),
            },
            SwitchCpuConfig {
                insertions_per_sec: 200_000,
            },
        )
    }

    #[test]
    fn learn_to_install_pipeline() {
        let mut c = cp();
        assert!(c.learn(b"k1", meta(), Nanos::ZERO));
        assert!(!c.learn(b"k1", meta(), Nanos::ZERO), "duplicate learn");
        assert!(c.is_pending(b"k1"));
        assert_eq!(c.outstanding(meta().vip), 1);

        // Nothing drains before the filter timeout.
        assert_eq!(c.drain_learning(Nanos::from_micros(500)), 0);
        assert_eq!(c.drain_learning(Nanos::from_millis(1)), 1);

        // CPU takes 5 µs after the drain.
        let done = c.pop_installs(Nanos::from_millis(1) + Duration::from_micros(5));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].job.key.as_slice(), b"k1");
        assert_eq!(done[0].job.arrived, Nanos::ZERO);

        c.mark_terminal(b"k1", meta().vip);
        assert!(!c.is_pending(b"k1"));
        assert_eq!(c.outstanding(meta().vip), 0);
    }

    #[test]
    fn close_while_pending() {
        let mut c = cp();
        c.learn(b"k1", meta(), Nanos::ZERO);
        c.note_close(b"k1");
        assert!(c.take_closed_early(b"k1"));
        assert!(!c.take_closed_early(b"k1"), "marker must be consumed");
        // Closing a non-pending key leaves no marker.
        c.note_close(b"k2");
        assert!(!c.take_closed_early(b"k2"));
    }

    #[test]
    fn wakeup_is_min_of_deadlines() {
        let mut c = cp();
        assert_eq!(c.next_wakeup(), None);
        c.learn(b"k1", meta(), Nanos::from_micros(100));
        // Only the filter deadline exists.
        assert_eq!(
            c.next_wakeup(),
            Some(Nanos::from_micros(100) + Duration::from_millis(1))
        );
        c.drain_learning(Nanos::from_millis(2));
        // Now only the CPU completion exists.
        assert_eq!(
            c.next_wakeup(),
            Some(Nanos::from_millis(2) + Duration::from_micros(5))
        );
    }

    #[test]
    fn overflow_rejects_learn_without_tracking() {
        let mut c = cp();
        for i in 0..8u32 {
            assert!(c.learn(&i.to_be_bytes(), meta(), Nanos::ZERO));
        }
        assert!(!c.learn(b"overflow", meta(), Nanos::ZERO));
        assert!(!c.is_pending(b"overflow"));
        assert_eq!(c.outstanding(meta().vip), 8);
    }

    #[test]
    fn mark_terminal_is_idempotent() {
        let mut c = cp();
        c.learn(b"k1", meta(), Nanos::ZERO);
        c.mark_terminal(b"k1", meta().vip);
        c.mark_terminal(b"k1", meta().vip);
        assert_eq!(c.outstanding(meta().vip), 0);
    }
}
