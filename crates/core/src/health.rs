//! DIP health checking (§7, "Handle DIP failures").
//!
//! "Many switches today offer an ability to offload BFD... To perform the
//! health check for 10K DIPs in every 10 seconds with 100-byte packets,
//! switches only need around 800 Kbps bandwidth."
//!
//! The [`HealthChecker`] schedules per-DIP probes on a fixed interval,
//! declares a DIP down after `fail_threshold` consecutive missed replies,
//! and up again after `rise_threshold` successes. The switch integration
//! turns those verdicts into `Remove`/`Add` pool updates, which the
//! version-reuse machinery then collapses into at most a couple of pool
//! versions per flap.

use sr_hash::FxHashMap;
use sr_types::{Dip, Duration, Nanos, Vip};

/// Health-checker configuration.
#[derive(Clone, Copy, Debug)]
pub struct HealthConfig {
    /// Probe interval per DIP (paper example: 10 s).
    pub interval: Duration,
    /// Probe packet size on the wire, bytes (paper example: 100 B).
    pub probe_bytes: u32,
    /// Consecutive failures before declaring a DIP down (BFD-style).
    pub fail_threshold: u32,
    /// Consecutive successes before declaring it up again.
    pub rise_threshold: u32,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            interval: Duration::from_secs(10),
            probe_bytes: 100,
            fail_threshold: 3,
            rise_threshold: 2,
        }
    }
}

/// A health-state transition the switch must act on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthEvent {
    /// The DIP crossed the failure threshold: remove it from its pool.
    Down(Vip, Dip),
    /// The DIP recovered: add it back.
    Up(Vip, Dip),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Verdict {
    Healthy,
    Failed,
}

struct Target {
    vip: Vip,
    dip: Dip,
    verdict: Verdict,
    consecutive: u32,
    next_probe: Nanos,
}

/// The BFD-offload health checker.
///
/// ```
/// use silkroad::{HealthChecker, HealthConfig, HealthEvent};
/// use sr_types::{Addr, Dip, Nanos, Vip};
/// let mut hc = HealthChecker::new(HealthConfig { fail_threshold: 2, ..Default::default() });
/// let vip = Vip(Addr::v4(20, 0, 0, 1, 80));
/// let dip = Dip(Addr::v4(10, 0, 0, 1, 20));
/// hc.watch(vip, dip, Nanos::ZERO);
/// // Two probe rounds (at 0 s and 10 s) with no reply: declared down.
/// assert!(hc.poll(Nanos::from_secs(5), |_, _| false).is_empty());
/// let events = hc.poll(Nanos::from_secs(15), |_, _| false);
/// assert_eq!(events, vec![HealthEvent::Down(vip, dip)]);
/// ```
pub struct HealthChecker {
    cfg: HealthConfig,
    targets: Vec<Target>,
    /// Index by (vip, dip) into `targets`.
    index: FxHashMap<(Vip, Dip), usize>,
    /// Probes sent (bandwidth accounting).
    pub probes_sent: u64,
}

impl HealthChecker {
    /// Create an empty checker.
    pub fn new(cfg: HealthConfig) -> HealthChecker {
        HealthChecker {
            cfg,
            targets: Vec::new(),
            index: FxHashMap::default(),
            probes_sent: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &HealthConfig {
        &self.cfg
    }

    /// Number of monitored DIPs.
    pub fn monitored(&self) -> usize {
        self.targets.len()
    }

    /// Start monitoring a DIP. Probes are staggered across the interval so
    /// the probe stream is smooth rather than bursty.
    pub fn watch(&mut self, vip: Vip, dip: Dip, now: Nanos) {
        if self.index.contains_key(&(vip, dip)) {
            return;
        }
        let slot = self.targets.len();
        let stagger = if self.cfg.interval.0 == 0 {
            Duration::ZERO
        } else {
            Duration((slot as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) % self.cfg.interval.0)
        };
        self.targets.push(Target {
            vip,
            dip,
            verdict: Verdict::Healthy,
            consecutive: 0,
            next_probe: now + stagger,
        });
        self.index.insert((vip, dip), slot);
    }

    /// Stop monitoring a DIP (it was administratively removed).
    pub fn unwatch(&mut self, vip: Vip, dip: Dip) {
        if let Some(i) = self.index.remove(&(vip, dip)) {
            self.targets.swap_remove(i);
            if i < self.targets.len() {
                let moved = (self.targets[i].vip, self.targets[i].dip);
                self.index.insert(moved, i);
            }
        }
    }

    /// The earliest scheduled probe.
    pub fn next_wakeup(&self) -> Option<Nanos> {
        self.targets.iter().map(|t| t.next_probe).min()
    }

    /// Run all probes due at `now`. `responder` answers whether the DIP
    /// replied (the simulator's ground truth). Returns the state
    /// transitions crossed.
    pub fn poll<F: FnMut(Vip, Dip) -> bool>(
        &mut self,
        now: Nanos,
        mut responder: F,
    ) -> Vec<HealthEvent> {
        let mut events = Vec::new();
        for t in &mut self.targets {
            while t.next_probe <= now {
                t.next_probe += self.cfg.interval;
                self.probes_sent += 1;
                let alive = responder(t.vip, t.dip);
                match (t.verdict, alive) {
                    (Verdict::Healthy, true) | (Verdict::Failed, false) => {
                        t.consecutive = 0;
                    }
                    (Verdict::Healthy, false) => {
                        t.consecutive += 1;
                        if t.consecutive >= self.cfg.fail_threshold {
                            t.verdict = Verdict::Failed;
                            t.consecutive = 0;
                            events.push(HealthEvent::Down(t.vip, t.dip));
                        }
                    }
                    (Verdict::Failed, true) => {
                        t.consecutive += 1;
                        if t.consecutive >= self.cfg.rise_threshold {
                            t.verdict = Verdict::Healthy;
                            t.consecutive = 0;
                            events.push(HealthEvent::Up(t.vip, t.dip));
                        }
                    }
                }
            }
        }
        events
    }

    /// Steady-state probe bandwidth in bits per second.
    pub fn probe_bandwidth_bps(&self) -> f64 {
        if self.cfg.interval.0 == 0 {
            return 0.0;
        }
        self.targets.len() as f64 * self.cfg.probe_bytes as f64 * 8.0
            / self.cfg.interval.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_types::Addr;

    fn vip() -> Vip {
        Vip(Addr::v4(20, 0, 0, 1, 80))
    }

    fn dip(i: u8) -> Dip {
        Dip(Addr::v4(10, 0, 0, i, 20))
    }

    fn checker() -> HealthChecker {
        let mut h = HealthChecker::new(HealthConfig {
            interval: Duration::from_secs(1),
            probe_bytes: 100,
            fail_threshold: 3,
            rise_threshold: 2,
        });
        for i in 1..=4 {
            h.watch(vip(), dip(i), Nanos::ZERO);
        }
        h
    }

    #[test]
    fn healthy_dips_generate_no_events() {
        let mut h = checker();
        let ev = h.poll(Nanos::from_secs(10), |_, _| true);
        assert!(ev.is_empty());
        assert!(h.probes_sent >= 4 * 10);
    }

    #[test]
    fn failure_needs_consecutive_misses() {
        let mut h = checker();
        let mut down_at = None;
        for s in 1..=10 {
            let ev = h.poll(Nanos::from_secs(s), |_, d| d != dip(2));
            for e in ev {
                assert_eq!(e, HealthEvent::Down(vip(), dip(2)));
                assert!(down_at.is_none());
                down_at = Some(s);
            }
        }
        // 3 consecutive misses needed: not before second 3.
        let s = down_at.expect("dip2 never declared down");
        assert!(s >= 3, "declared down after only {s} probes");
    }

    #[test]
    fn flap_recovers_after_rise_threshold() {
        let mut h = checker();
        // Kill dip1 for 5 seconds, then restore.
        let mut events = Vec::new();
        for s in 1..=20 {
            let alive = s > 5;
            events.extend(h.poll(Nanos::from_secs(s), |_, d| d != dip(1) || alive));
        }
        assert_eq!(
            events,
            vec![
                HealthEvent::Down(vip(), dip(1)),
                HealthEvent::Up(vip(), dip(1))
            ]
        );
    }

    #[test]
    fn unwatch_stops_probing() {
        let mut h = checker();
        h.unwatch(vip(), dip(1));
        assert_eq!(h.monitored(), 3);
        let ev = h.poll(Nanos::from_secs(30), |_, d| d != dip(1));
        assert!(ev.is_empty(), "unwatched DIP produced {ev:?}");
        // Double unwatch is a no-op; watch is idempotent.
        h.unwatch(vip(), dip(1));
        h.watch(vip(), dip(2), Nanos::ZERO);
        assert_eq!(h.monitored(), 3);
    }

    #[test]
    fn paper_bandwidth_number() {
        // 10K DIPs, 10 s interval, 100 B probes => ~800 Kbps.
        let mut h = HealthChecker::new(HealthConfig::default());
        for i in 0..10_000u32 {
            h.watch(vip(), Dip(Addr::v4_indexed(10, i, 20)), Nanos::ZERO);
        }
        let bps = h.probe_bandwidth_bps();
        assert!((700_000.0..900_000.0).contains(&bps), "{bps}");
    }

    #[test]
    fn probes_staggered() {
        let mut h = checker();
        // Within the first interval every target fires exactly once.
        let before = h.probes_sent;
        h.poll(Nanos::from_secs(1), |_, _| true);
        assert!(h.probes_sent - before >= 4);
        assert!(h.next_wakeup().is_some());
    }
}
