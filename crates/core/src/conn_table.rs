//! ConnTable — the per-connection state table (§4.2).
//!
//! The ASIC-resident exact-match table keyed by a 16-bit digest of the
//! 5-tuple. Action data is the DIP-pool version (6 bits) in the paper's
//! design, or the DIP itself in the §4.2 fallback mode. The software shadow
//! (full keys, arrival times) rides along in the entry value — the real
//! switch keeps the same information in CPU memory.

use crate::config::{ConnMapping, SilkRoadConfig};
use sr_asic::table::{ExactMatchTable, MatchMode, TableSpec};
use sr_hash::cuckoo::{CuckooError, InsertOutcome, LookupHit};
use sr_types::{Nanos, PoolVersion, TupleKey, Vip};

/// Value stored per connection — field-for-field the algorithm boundary's
/// [`sr_algo::ConnRecord`] (vip, pinned version, learn-time DIP, arrival
/// time), so SilkRoad's table plugs into the zoo without translation.
pub type ConnValue = sr_algo::ConnRecord;

/// The ConnTable.
pub struct ConnTable {
    table: ExactMatchTable<ConnValue>,
    mapping: ConnMapping,
    /// When the last aging scan ran.
    last_scan: Nanos,
}

impl ConnTable {
    /// Build from the switch configuration.
    pub fn new(cfg: &SilkRoadConfig) -> ConnTable {
        let spec = match cfg.mapping {
            ConnMapping::Version => TableSpec {
                match_bits: cfg.digest_bits as u32,
                action_bits: cfg.version_bits as u32,
                overhead_bits: 6,
            },
            // Fallback: action carries a full IPv6 DIP + port.
            ConnMapping::DirectDip => TableSpec {
                match_bits: cfg.digest_bits as u32,
                action_bits: 144,
                overhead_bits: 6,
            },
        };
        let match_mode = match &cfg.digest_bits_per_stage {
            Some(bits) => MatchMode::DigestPerStage { bits: bits.clone() },
            None => MatchMode::Digest {
                bits: cfg.digest_bits,
            },
        };
        ConnTable {
            table: ExactMatchTable::new(
                cfg.conn_capacity,
                cfg.conn_stages,
                spec,
                match_mode,
                cfg.seed ^ 0xc0_44,
            ),
            mapping: cfg.mapping,
            last_scan: Nanos::ZERO,
        }
    }

    /// The configured mapping mode.
    pub fn mapping(&self) -> ConnMapping {
        self.mapping
    }

    /// The per-entry SRAM spec (digest / action / overhead widths).
    pub fn spec(&self) -> &TableSpec {
        self.table.spec()
    }

    /// ASIC lookup.
    pub fn lookup(&self, key: &[u8]) -> Option<LookupHit<'_, ConnValue>> {
        self.table.lookup(key)
    }

    /// [`ConnTable::lookup`] from precomputed hashes (the batched install
    /// path's collision pre-check).
    pub fn lookup_pre(
        &self,
        key: &[u8],
        stage_hashes: &[u64],
        match_hash: u64,
    ) -> Option<LookupHit<'_, ConnValue>> {
        self.table.lookup_pre(key, stage_hashes, match_hash)
    }

    /// ASIC lookup that also sets the entry's hit bit on an exact match
    /// (the data-plane path; plain `lookup` is for software inspection).
    ///
    /// Returns `(value, exact, resident)` where `resident` carries the
    /// resident entry's key *only on a false hit* (the repair path needs it
    /// to relocate the resident); exact hits allocate nothing.
    pub fn lookup_marking(&mut self, key: &[u8]) -> Option<(ConnValue, bool, Option<TupleKey>)> {
        let hit = self.table.lookup_marking(key)?;
        let resident = if hit.exact {
            None
        } else {
            Some(TupleKey::from_bytes(hit.resident_key))
        };
        Some((*hit.value, hit.exact, resident))
    }

    /// [`ConnTable::lookup_marking`] from precomputed hashes (the hash-once
    /// packet path): `stage_hashes[i]` is `stage_fns()[i]` over the key,
    /// `match_hash` is `match_fn()` over the key.
    pub fn lookup_marking_pre(
        &mut self,
        key: &[u8],
        stage_hashes: &[u64],
        match_hash: u64,
    ) -> Option<(ConnValue, bool, Option<TupleKey>)> {
        let hit = self
            .table
            .lookup_marking_pre(key, stage_hashes, match_hash)?;
        let resident = if hit.exact {
            None
        } else {
            Some(TupleKey::from_bytes(hit.resident_key))
        };
        Some((*hit.value, hit.exact, resident))
    }

    /// Warm the cache lines a prehashed lookup will touch: the per-stage
    /// match-field words, then (optionally) the candidate entry itself.
    /// Plain reads with no side effects — the batch path issues these a few
    /// packets ahead so the probes' random-access misses overlap.
    pub fn prefetch_words(&self, stage_hashes: &[u64]) {
        self.table.prefetch_words_pre(stage_hashes);
    }

    /// Warm the entry a prehashed lookup would dereference (run after
    /// [`ConnTable::prefetch_words`] has had time to land).
    pub fn prefetch_entry(&self, stage_hashes: &[u64], match_hash: u64) {
        self.table.prefetch_entry_pre(stage_hashes, match_hash);
    }

    /// The table's layout generation: coordinates from [`ConnTable::locate`]
    /// are valid only while this is unchanged.
    pub fn epoch(&self) -> u64 {
        self.table.epoch()
    }

    /// First half of a split marking lookup: the `(stage, slot)` a prehashed
    /// probe would hit, with the entry's cache line already warming. No side
    /// effects; resolve with [`ConnTable::lookup_marking_at`] while the
    /// epoch is unchanged.
    pub fn locate(&self, key: &[u8], stage_hashes: &[u64], match_hash: u64) -> Option<(u32, u32)> {
        self.table.locate_pre(key, stage_hashes, match_hash)
    }

    /// Second half of a split marking lookup — same result and side effects
    /// (hit bit on exact match) as [`ConnTable::lookup_marking_pre`] at the
    /// located coordinates.
    pub fn lookup_marking_at(
        &mut self,
        stage: u32,
        slot: u32,
        key: &[u8],
    ) -> (ConnValue, bool, Option<TupleKey>) {
        let hit = self.table.lookup_marking_at(stage, slot, key);
        let resident = if hit.exact {
            None
        } else {
            Some(TupleKey::from_bytes(hit.resident_key))
        };
        (*hit.value, hit.exact, resident)
    }

    /// Per-stage bucket-hash functions (for assembling a hash-once list).
    pub fn stage_fns(&self) -> &[sr_hash::HashFn] {
        self.table.stage_fns()
    }

    /// The match-field hash function (shared digest hash or fingerprint).
    pub fn match_fn(&self) -> sr_hash::HashFn {
        self.table.match_fn()
    }

    /// Idle aging (clock algorithm): expire every entry that was installed
    /// before the previous scan and has not been exact-hit since. Returns
    /// the expired entries; resets the hit bits.
    pub fn aging_scan(&mut self, now: Nanos) -> Vec<(Box<[u8]>, ConnValue)> {
        let cutoff = self.last_scan;
        let expired = self
            .table
            .retain_hits(|_, v, hit| v.arrived >= cutoff || hit);
        self.last_scan = now;
        expired
    }

    /// Time of the last aging scan.
    pub fn last_scan(&self) -> Nanos {
        self.last_scan
    }

    /// Install an entry (software path; timing is modelled by the CPU).
    pub fn install(&mut self, key: &[u8], value: ConnValue) -> Result<InsertOutcome, CuckooError> {
        self.table.insert(key, value)
    }

    /// [`ConnTable::install`] from precomputed hashes — the batched setup
    /// path replays the packet-time hash pass carried in the learn event,
    /// so the install itself never re-hashes the key. Placement is
    /// bit-identical to [`ConnTable::install`].
    pub fn install_pre(
        &mut self,
        key: &[u8],
        stage_hashes: &[u64],
        match_hash: u64,
        value: ConnValue,
    ) -> Result<InsertOutcome, CuckooError> {
        self.table.insert_pre(key, stage_hashes, match_hash, value)
    }

    /// [`ConnTable::install_pre`] when the install drain's own collision
    /// pre-check just probed these hashes and missed: the duplicate scan
    /// and (for vacant, alias-free landings) the shadowing re-probe are
    /// provably no-ops and skipped. Placement stays bit-identical.
    pub fn install_vacant_pre(
        &mut self,
        key: &[u8],
        stage_hashes: &[u64],
        match_hash: u64,
        value: ConnValue,
    ) -> Result<InsertOutcome, CuckooError> {
        self.table
            .insert_vacant_pre(key, stage_hashes, match_hash, value)
    }

    /// Remove an entry on connection close/expiry.
    pub fn remove(&mut self, key: &[u8]) -> Result<ConnValue, CuckooError> {
        self.table.remove(key)
    }

    /// Relocate a resident entry to another stage (digest-collision repair).
    pub fn relocate(&mut self, key: &[u8]) -> Result<usize, CuckooError> {
        self.table.relocate(key)
    }

    /// Stored connection count.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Provisioned capacity in entries.
    pub fn capacity(&self) -> usize {
        self.table.capacity()
    }

    /// Occupancy fraction.
    pub fn load_factor(&self) -> f64 {
        self.table.load_factor()
    }

    /// SRAM bytes provisioned.
    pub fn provisioned_bytes(&self) -> u64 {
        self.table.provisioned_bytes()
    }

    /// SRAM bytes for occupied entries.
    pub fn occupied_bytes(&self) -> u64 {
        self.table.occupied_bytes()
    }

    /// Iterate entries (software side — expiry scans, version migration).
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], &ConnValue)> {
        self.table.iter()
    }

    /// Remove all entries pinned to `version` of `vip`, returning them
    /// (version-exhaustion migration to the fallback table).
    pub fn evict_version(&mut self, vip: Vip, version: PoolVersion) -> Vec<(Box<[u8]>, ConnValue)> {
        self.table
            .retain(|_, v| !(v.vip == vip && v.version == version))
    }

    /// Cumulative cuckoo moves (CPU cost diagnostic).
    pub fn total_moves(&self) -> u64 {
        self.table.total_moves()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_types::{Addr, Dip};

    fn value(ver: u16) -> ConnValue {
        ConnValue {
            vip: Vip(Addr::v4(20, 0, 0, 1, 80)),
            version: PoolVersion(ver),
            dip: Dip(Addr::v4(10, 0, 0, 1, 20)),
            arrived: Nanos::ZERO,
        }
    }

    fn table() -> ConnTable {
        ConnTable::new(&SilkRoadConfig::small_test())
    }

    #[test]
    fn install_lookup_remove() {
        let mut t = table();
        t.install(b"conn-1", value(3)).unwrap();
        let hit = t.lookup(b"conn-1").unwrap();
        assert!(hit.exact);
        assert_eq!(hit.value.version, PoolVersion(3));
        assert_eq!(t.len(), 1);
        let removed = t.remove(b"conn-1").unwrap();
        assert_eq!(removed.version, PoolVersion(3));
        assert!(t.is_empty());
    }

    #[test]
    fn evict_version_filters_precisely() {
        let mut t = table();
        let other_vip = Vip(Addr::v4(20, 0, 0, 2, 80));
        t.install(b"a", value(1)).unwrap();
        t.install(b"b", value(2)).unwrap();
        t.install(
            b"c",
            ConnValue {
                vip: other_vip,
                ..value(1)
            },
        )
        .unwrap();
        let evicted = t.evict_version(value(1).vip, PoolVersion(1));
        assert_eq!(evicted.len(), 1);
        assert_eq!(&*evicted[0].0, b"a");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn aging_expires_only_idle_entries() {
        let mut t = table();
        t.install(b"old-idle", value(1)).unwrap();
        t.install(b"old-busy", value(2)).unwrap();
        // First scan at t=1s arms the clock (nothing old enough yet).
        assert!(t.aging_scan(Nanos::from_secs(1)).is_empty());
        // Traffic touches only old-busy.
        assert!(t.lookup_marking(b"old-busy").is_some());
        // A young entry installed after the scan must survive too.
        let mut young = value(3);
        young.arrived = Nanos::from_secs(2);
        t.install(b"young", young).unwrap();
        let expired = t.aging_scan(Nanos::from_secs(120));
        assert_eq!(expired.len(), 1);
        assert_eq!(&*expired[0].0, b"old-idle");
        assert!(t.lookup(b"old-busy").is_some());
        assert!(t.lookup(b"young").is_some());
        // Hit bits reset: old-busy expires next time if untouched.
        let expired = t.aging_scan(Nanos::from_secs(240));
        let keys: Vec<&[u8]> = expired.iter().map(|(k, _)| k.as_ref()).collect();
        assert!(keys.contains(&b"old-busy".as_ref()));
    }

    #[test]
    fn per_stage_digest_mode_roundtrips() {
        let mut cfg = SilkRoadConfig::small_test();
        cfg.digest_bits_per_stage = Some(vec![24, 20, 16, 12]);
        let mut t = ConnTable::new(&cfg);
        for i in 0..500u32 {
            t.install(&i.to_be_bytes(), value(1)).unwrap();
        }
        for i in 0..500u32 {
            assert!(t.lookup(&i.to_be_bytes()).unwrap().exact);
        }
    }

    #[test]
    fn memory_accounting_matches_mode() {
        let version_mode = ConnTable::new(&SilkRoadConfig::small_test());
        let mut cfg = SilkRoadConfig::small_test();
        cfg.mapping = ConnMapping::DirectDip;
        let dip_mode = ConnTable::new(&cfg);
        // Direct-DIP entries are far wider: more SRAM for same capacity.
        assert!(dip_mode.provisioned_bytes() > 3 * version_mode.provisioned_bytes());
    }
}
