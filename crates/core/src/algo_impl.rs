//! SilkRoad behind the `sr-algo` boundary — implementation #1 of the zoo.
//!
//! The production switch keeps its own chassis (learning filter, 3-step
//! updates, TransitTable, batched installs); this module adapts its two
//! halves to the algorithm traits so the comparison harness can drive
//! SilkRoad through the same seam as Concury, CuCoTrack, and the hybrid:
//!
//! * [`ConnTable`] is a [`sr_algo::ConnState`]: the same digest-matched
//!   cuckoo table, the same packet-time hashes (the trait's
//!   [`ConnHashes`] is literally the type the learn→install pipeline
//!   carries), the same SRAM accounting.
//! * [`SilkRoadSwitch`] is a [`sr_algo::Steering`]: the miss path resolves
//!   through the switch's own versioned pools with the identical
//!   `ecmp_select` kernel, and pool-membership updates map onto the 3-step
//!   `request_update` state machine.
//!
//! Nothing here is called from `process_packet` — the switch's hot loop is
//! untouched, which is what keeps the decision digests and zero-alloc
//! gates bit-identical while the boundary exists for the harness.

use crate::conn_table::ConnTable;
use crate::pool::PoolUpdate;
use crate::switch::SilkRoadSwitch;
use sr_algo::{ConnHashes, ConnHit, ConnRecord, ConnState, ConnStateDesign, StateFull};
use sr_algo::{Steer, Steering};
use sr_types::{Dip, Nanos, PoolVersion, TupleKey, Vip};

/// Clamp a table-spec width into the boundary's `u8` bit fields.
fn width_u8(bits: u32) -> u8 {
    u8::try_from(bits).unwrap_or(u8::MAX)
}

impl ConnState for ConnTable {
    fn lookup(&mut self, key: &TupleKey, hashes: &ConnHashes) -> Option<ConnHit> {
        // Reuse the packet-time hash pass when its lane count matches the
        // table's stage layout — the same fast path the switch's install
        // drain takes; otherwise fall back to an in-table re-hash.
        let (value, exact, _resident) = if hashes.stages() == self.stage_fns().len() {
            self.lookup_marking_pre(key.as_slice(), hashes.stage_hashes(), hashes.match_hash())?
        } else {
            self.lookup_marking(key.as_slice())?
        };
        Some(ConnHit {
            record: value,
            exact,
        })
    }

    fn insert(
        &mut self,
        key: &TupleKey,
        hashes: &ConnHashes,
        record: ConnRecord,
    ) -> Result<(), StateFull> {
        let outcome = if hashes.stages() == self.stage_fns().len() {
            self.install_pre(
                key.as_slice(),
                hashes.stage_hashes(),
                hashes.match_hash(),
                record,
            )
        } else {
            self.install(key.as_slice(), record)
        };
        outcome.map(|_| ()).map_err(|_| StateFull)
    }

    fn remove(&mut self, key: &TupleKey) -> Option<ConnRecord> {
        ConnTable::remove(self, key.as_slice()).ok()
    }

    fn expire_idle(&mut self, now: Nanos) -> usize {
        self.aging_scan(now).len()
    }

    fn entries(&self) -> usize {
        self.len()
    }

    fn state_bytes(&self) -> u64 {
        self.occupied_bytes()
    }

    fn design(&self) -> ConnStateDesign {
        let spec = self.spec();
        match self.mapping() {
            crate::config::ConnMapping::Version => ConnStateDesign::DigestVersion {
                digest_bits: width_u8(spec.match_bits),
                version_bits: width_u8(spec.action_bits),
            },
            // Fallback mode stores a digest key with a full-DIP action; the
            // digest is the only per-flow match state.
            crate::config::ConnMapping::DirectDip => ConnStateDesign::Digest {
                digest_bits: width_u8(spec.match_bits),
            },
        }
    }
}

impl Steering for SilkRoadSwitch {
    fn is_vip(&self, vip: Vip) -> bool {
        self.current_dips(vip).is_some()
    }

    fn steer_miss(&mut self, vip: Vip, select_hash: u64, _now: Nanos) -> Option<Steer> {
        let version = self.current_version(vip)?;
        let dips = self.current_dips(vip)?;
        let idx = sr_hash::ecmp_select(select_hash, dips.len())?;
        let dip = dips.get(idx).copied()?;
        Some(Steer {
            dip,
            version,
            // SilkRoad is fully stateful: every flow gets a ConnTable entry.
            needs_entry: true,
            stamp: None,
        })
    }

    fn add_vip(&mut self, vip: Vip, dips: &[Dip]) -> bool {
        SilkRoadSwitch::add_vip(self, vip, dips.to_vec()).is_ok()
    }

    fn update_pool(&mut self, vip: Vip, dips: &[Dip], now: Nanos) -> Option<PoolVersion> {
        // The boundary speaks full memberships; the switch speaks deltas.
        // Diff and feed the 3-step machine one op at a time (extra ops
        // queue behind the active update, exactly as operators' would).
        let current: Vec<Dip> = self.current_dips(vip)?.to_vec();
        for dip in current.iter().filter(|d| !dips.contains(d)) {
            self.request_update(vip, PoolUpdate::Remove(*dip), now)
                .ok()?;
        }
        for dip in dips.iter().filter(|d| !current.contains(d)) {
            self.request_update(vip, PoolUpdate::Add(*dip), now).ok()?;
        }
        self.current_version(vip)
    }

    fn advance(&mut self, now: Nanos) {
        SilkRoadSwitch::advance(self, now);
    }

    fn table_bytes(&self) -> u64 {
        let m = self.memory();
        m.vip_table + m.dip_pool_table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SilkRoadConfig;
    use sr_hash::HashFn;
    use sr_types::{Addr, FiveTuple, PacketMeta};

    fn vip() -> Vip {
        Vip(Addr::v4(20, 0, 0, 1, 80))
    }

    fn dips(n: u8) -> Vec<Dip> {
        (1..=n).map(|i| Dip(Addr::v4(10, 0, 0, i, 20))).collect()
    }

    fn flow(g: u32) -> FiveTuple {
        FiveTuple::tcp(Addr::v4_indexed(100, g, 1024), vip().0)
    }

    fn switch() -> SilkRoadSwitch {
        let mut sw = SilkRoadSwitch::new(SilkRoadConfig::small_test());
        sw.add_vip(vip(), dips(4)).unwrap();
        sw
    }

    /// The trait miss path and the switch's own packet loop choose the
    /// same DIP for the same flow: both run `ecmp_select` with the
    /// switch's select hash over the same current pool.
    #[test]
    fn steer_miss_is_bit_identical_to_the_packet_loop() {
        let mut a = switch();
        let mut b = switch();
        let select_fn = HashFn::new(a.config().seed ^ 0x5e1ec7);
        for g in 0..200 {
            let pkt = PacketMeta::syn(flow(g));
            let want = a.process_packet(&pkt, Nanos(0));
            let select = select_fn.hash(pkt.tuple.tuple_key().as_slice());
            let got = Steering::steer_miss(&mut b, vip(), select, Nanos(0)).unwrap();
            assert_eq!(Some(got.dip), want.dip, "flow {g} diverged");
            assert_eq!(Some(got.version), want.version);
            assert!(got.needs_entry);
        }
    }

    /// Membership-diff updates land on the same current pool the delta
    /// API produces, and bump the version through the 3-step machine.
    #[test]
    fn update_pool_diffs_match_delta_updates() {
        let mut a = switch();
        let mut b = switch();
        let v_before = a.current_version(vip()).unwrap();
        // a: boundary full-membership update; b: explicit deltas.
        let target = dips(6);
        Steering::update_pool(&mut a, vip(), &target, Nanos(10)).unwrap();
        b.request_update(
            vip(),
            PoolUpdate::Add(Dip(Addr::v4(10, 0, 0, 5, 20))),
            Nanos(10),
        )
        .unwrap();
        b.request_update(
            vip(),
            PoolUpdate::Add(Dip(Addr::v4(10, 0, 0, 6, 20))),
            Nanos(10),
        )
        .unwrap();
        assert_eq!(a.current_dips(vip()), b.current_dips(vip()));
        assert_eq!(a.current_version(vip()), b.current_version(vip()));
        assert_ne!(a.current_version(vip()).unwrap(), v_before);
    }

    /// The ConnTable behaves identically through the trait and through its
    /// inherent API: same hit/miss results, same memory accounting.
    #[test]
    fn conn_state_adapter_matches_inherent_api() {
        let cfg = SilkRoadConfig::small_test();
        let mut table = ConnTable::new(&cfg);
        let record = ConnRecord {
            vip: vip(),
            version: PoolVersion(2),
            dip: Dip(Addr::v4(10, 0, 0, 3, 20)),
            arrived: Nanos(5),
        };
        let stage_fns = table.stage_fns().to_vec();
        let match_fn = table.match_fn();
        for g in 0..64u32 {
            let key = flow(g).tuple_key();
            let mut lanes = [0u64; sr_algo::MAX_PACKET_HASHES];
            for (slot, f) in lanes.iter_mut().zip(stage_fns.iter()) {
                *slot = f.hash(key.as_slice());
            }
            let hashes =
                ConnHashes::from_parts(lanes, stage_fns.len() as u8, match_fn.hash(key.as_slice()));
            ConnState::insert(&mut table, &key, &hashes, record).unwrap();
            let hit = ConnState::lookup(&mut table, &key, &hashes).unwrap();
            assert!(hit.exact);
            assert_eq!(hit.record, record);
        }
        assert_eq!(ConnState::entries(&table), 64);
        assert_eq!(ConnState::state_bytes(&table), table.occupied_bytes());
        assert_eq!(
            ConnState::design(&table),
            ConnStateDesign::DigestVersion {
                digest_bits: cfg.digest_bits,
                version_bits: cfg.version_bits,
            }
        );
        let key = flow(0).tuple_key();
        assert!(ConnState::remove(&mut table, &key).is_some());
        assert_eq!(ConnState::entries(&table), 63);
    }
}
