//! Analytic SRAM model — Figures 12 and 14 (§6.1).
//!
//! The simulation figures need memory numbers for connection counts far
//! beyond what is practical to instantiate entry-by-entry (up to 15 M per
//! ToR). This module computes them exactly the way the paper does: entry
//! layouts × word packing, for the three designs compared in Fig 14:
//!
//! * **naive** — full 5-tuple key, full DIP+port action;
//! * **digest** — 16-bit digest key, full DIP+port action;
//! * **digest + version** — 16-bit digest key, 6-bit version action, plus
//!   the DIPPoolTable indirection.

use sr_algo::cost::{self, ConnStateDesign};
use sr_asic::sram::SramSpec;
use sr_types::AddrFamily;

/// Which ConnTable design to cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemoryDesign {
    /// Full key + full action.
    Naive,
    /// Digest key + full action.
    DigestOnly {
        /// Digest width in bits.
        digest_bits: u8,
    },
    /// Digest key + version action + DIPPoolTable.
    DigestVersion {
        /// Digest width in bits.
        digest_bits: u8,
        /// Version width in bits.
        version_bits: u8,
    },
}

impl MemoryDesign {
    /// The algorithm-boundary layout this design costs as. The figures'
    /// designs and the comparison matrix share `sr_algo::cost` as the one
    /// formula for entry bits.
    pub fn conn_design(self) -> ConnStateDesign {
        match self {
            MemoryDesign::Naive => ConnStateDesign::NaiveExact,
            MemoryDesign::DigestOnly { digest_bits } => ConnStateDesign::Digest { digest_bits },
            MemoryDesign::DigestVersion {
                digest_bits,
                version_bits,
            } => ConnStateDesign::DigestVersion {
                digest_bits,
                version_bits,
            },
        }
    }
}

/// Inputs to the memory model.
#[derive(Clone, Copy, Debug)]
pub struct MemoryInputs {
    /// Active connections to store.
    pub connections: u64,
    /// VIPs served.
    pub vips: u64,
    /// Total DIP-pool members across all live `(VIP, version)` pools.
    pub total_pool_members: u64,
    /// Live `(VIP, version)` rows.
    pub pool_rows: u64,
    /// Address family (sizes keys and DIP actions).
    pub family: AddrFamily,
}

/// Byte breakdown of a design's SRAM demand.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoryBreakdown {
    /// ConnTable bytes.
    pub conn_table: u64,
    /// VIPTable bytes.
    pub vip_table: u64,
    /// DIPPoolTable bytes (zero unless versioned).
    pub dip_pool_table: u64,
    /// TransitTable bytes.
    pub transit: u64,
}

impl MemoryBreakdown {
    /// Total bytes.
    pub fn total(&self) -> u64 {
        self.conn_table + self.vip_table + self.dip_pool_table + self.transit
    }

    /// Total mebibytes.
    pub fn total_mb(&self) -> f64 {
        self.total() as f64 / (1024.0 * 1024.0)
    }
}

/// SRAM layout of one VIPTable row for `family`. Shared by the analytic
/// model, the live switch's [`crate::SilkRoadSwitch::memory`] accounting,
/// and the comparison matrix (all delegate to `sr_algo::cost`) so the
/// numbers can never drift apart.
pub(crate) fn vip_row_spec(family: AddrFamily) -> SramSpec {
    SramSpec {
        entry_bits: cost::vip_row_bits(family),
    }
}

/// SRAM layout of one DIPPoolTable row header: (VIP index, version) key.
pub(crate) fn pool_row_spec(version_bits: u8) -> SramSpec {
    SramSpec {
        entry_bits: cost::pool_row_bits(version_bits),
    }
}

/// SRAM layout of one DIPPoolTable member (DIP + port action datum).
pub(crate) fn pool_member_spec(family: AddrFamily) -> SramSpec {
    SramSpec {
        entry_bits: cost::pool_member_bits(family),
    }
}

fn conn_entry_bits(design: MemoryDesign, family: AddrFamily) -> u32 {
    cost::conn_entry_bits(design.conn_design(), family)
}

/// Compute the SRAM demand of a design on the given inputs.
pub fn cost(design: MemoryDesign, inputs: &MemoryInputs) -> MemoryBreakdown {
    let conn_spec = SramSpec {
        entry_bits: conn_entry_bits(design, inputs.family),
    };
    let conn_table = conn_spec.bytes_for(inputs.connections);

    // VIPTable: VIP (addr+port+proto) -> version/action.
    let vip_table = vip_row_spec(inputs.family).bytes_for(inputs.vips);

    // DIPPoolTable exists only in the versioned design: one row header per
    // (VIP, version) plus one member word per pool member (DIP + port).
    let dip_pool_table = match design {
        MemoryDesign::DigestVersion { version_bits, .. } => {
            pool_row_spec(version_bits).bytes_for(inputs.pool_rows)
                + pool_member_spec(inputs.family).bytes_for(inputs.total_pool_members)
        }
        _ => 0,
    };

    let transit = match design {
        MemoryDesign::DigestVersion { .. } => 256,
        _ => 0,
    };

    MemoryBreakdown {
        conn_table,
        vip_table,
        dip_pool_table,
        transit,
    }
}

/// Fractional memory saving of `design` relative to the naive layout
/// (Fig 14's y-axis): `1 - design/naive`.
pub fn saving_vs_naive(design: MemoryDesign, inputs: &MemoryInputs) -> f64 {
    let naive = cost(MemoryDesign::Naive, inputs).total() as f64;
    let d = cost(design, inputs).total() as f64;
    if naive <= 0.0 {
        0.0
    } else {
        1.0 - d / naive
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs_v6(conns: u64) -> MemoryInputs {
        MemoryInputs {
            connections: conns,
            vips: 1000,
            total_pool_members: 4187 * 4, // ~peak Backend, few live versions
            pool_rows: 4000,
            family: AddrFamily::V6,
        }
    }

    #[test]
    fn naive_ten_million_ipv6_exceeds_sram() {
        // §1 footnote: 10M naive IPv6 entries take a few hundred MB.
        let b = cost(MemoryDesign::Naive, &inputs_v6(10_000_000));
        assert!(b.total_mb() > 400.0, "naive total {} MB", b.total_mb());
    }

    #[test]
    fn versioned_ten_million_fits() {
        let b = cost(
            MemoryDesign::DigestVersion {
                digest_bits: 16,
                version_bits: 6,
            },
            &inputs_v6(10_000_000),
        );
        assert!(b.total_mb() < 50.0, "versioned total {} MB", b.total_mb());
    }

    #[test]
    fn entry_bits_match_paper() {
        assert_eq!(
            conn_entry_bits(
                MemoryDesign::DigestVersion {
                    digest_bits: 16,
                    version_bits: 6
                },
                AddrFamily::V6
            ),
            28
        );
        // Naive IPv6: 37B key + 18B action + 6b overhead = 446 bits.
        assert_eq!(conn_entry_bits(MemoryDesign::Naive, AddrFamily::V6), 446);
    }

    #[test]
    fn savings_ordering_matches_fig14() {
        // digest+version saves more than digest-only; both save >40% for
        // IPv6 (the paper: all clusters saved at least ~40%).
        let i = inputs_v6(5_000_000);
        let s_digest = saving_vs_naive(MemoryDesign::DigestOnly { digest_bits: 16 }, &i);
        let s_ver = saving_vs_naive(
            MemoryDesign::DigestVersion {
                digest_bits: 16,
                version_bits: 6,
            },
            &i,
        );
        assert!(s_ver > s_digest, "version {s_ver} vs digest {s_digest}");
        assert!(s_digest > 0.3, "digest-only saving {s_digest}");
        assert!(s_ver > 0.85, "digest+version saving {s_ver}");
    }

    #[test]
    fn ipv4_savings_smaller_but_positive() {
        let i = MemoryInputs {
            family: AddrFamily::V4,
            ..inputs_v6(5_000_000)
        };
        let s = saving_vs_naive(MemoryDesign::DigestOnly { digest_bits: 16 }, &i);
        assert!(s > 0.2 && s < 0.9, "ipv4 digest saving {s}");
    }

    #[test]
    fn pool_table_only_in_versioned_design() {
        let i = inputs_v6(1_000_000);
        assert_eq!(cost(MemoryDesign::Naive, &i).dip_pool_table, 0);
        assert_eq!(
            cost(MemoryDesign::DigestOnly { digest_bits: 16 }, &i).dip_pool_table,
            0
        );
        assert!(
            cost(
                MemoryDesign::DigestVersion {
                    digest_bits: 16,
                    version_bits: 6
                },
                &i
            )
            .dip_pool_table
                > 0
        );
    }

    #[test]
    fn bigger_digest_costs_more() {
        let i = inputs_v6(2_770_000);
        let m16 = cost(
            MemoryDesign::DigestVersion {
                digest_bits: 16,
                version_bits: 6,
            },
            &i,
        );
        let m24 = cost(
            MemoryDesign::DigestVersion {
                digest_bits: 24,
                version_bits: 6,
            },
            &i,
        );
        assert!(m24.total() > m16.total());
    }
}
