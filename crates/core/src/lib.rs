//! **SilkRoad** — stateful layer-4 load balancing in a switching ASIC.
//!
//! Reproduction of Miao, Zeng, Kim, Lee & Yu, *SilkRoad: Making Stateful
//! Layer-4 Load Balancing Fast and Cheap Using Switching ASICs*, SIGCOMM
//! 2017.
//!
//! A [`SilkRoadSwitch`] keeps **all** load-balancing state on-chip:
//!
//! * **ConnTable** ([`conn_table`]) maps a 16-bit *digest* of each
//!   connection to a 6-bit *DIP-pool version* — 28 bits per connection
//!   instead of 440, which is how ten million connections fit in SRAM;
//! * **VIPTable** ([`vip_table`]) maps a VIP to its current pool version
//!   (plus the old version while an update is in flight);
//! * **DIPPoolTable** ([`pool`]) maps `(VIP, version)` to an immutable DIP
//!   pool; versions are allocated from a per-VIP ring by [`version`], with
//!   the paper's *version reuse* optimisation for rolling reboots;
//! * **TransitTable** ([`transit`]) is a 256-byte bloom filter on
//!   transactional memory that remembers *pending* connections so the
//!   3-step update protocol ([`update`]) guarantees per-connection
//!   consistency despite the slow (~200 K/s) software insertion path.
//!
//! The data plane ([`dataplane`]) and control plane ([`control`]) are glued
//! together by [`switch::SilkRoadSwitch`]; [`memory`] carries the analytic
//! SRAM model behind Figures 12 and 14.
//!
//! # Quick example
//!
//! ```
//! use silkroad::{SilkRoadConfig, SilkRoadSwitch, PoolUpdate};
//! use sr_types::{Addr, Dip, Vip, Nanos, PacketMeta, FiveTuple};
//!
//! let mut sw = SilkRoadSwitch::new(SilkRoadConfig::small_test());
//! let vip = Vip(Addr::v4(20, 0, 0, 1, 80));
//! sw.add_vip(vip, vec![Dip(Addr::v4(10, 0, 0, 1, 20)), Dip(Addr::v4(10, 0, 0, 2, 20))])
//!     .unwrap();
//!
//! let conn = FiveTuple::tcp(Addr::v4(1, 2, 3, 4, 1234), Addr::v4(20, 0, 0, 1, 80));
//! let t0 = Nanos::ZERO;
//! let d1 = sw.process_packet(&PacketMeta::syn(conn), t0).dip.unwrap();
//!
//! // A DIP-pool update in flight never remaps the existing connection.
//! sw.request_update(vip, PoolUpdate::Add(Dip(Addr::v4(10, 0, 0, 3, 20))), t0).unwrap();
//! sw.advance(Nanos::from_millis(50));
//! let d2 = sw
//!     .process_packet(&PacketMeta::data(conn, 1460), Nanos::from_millis(50))
//!     .dip
//!     .unwrap();
//! assert_eq!(d1, d2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algo_impl;
pub mod config;
pub mod conn_table;
pub mod control;
pub mod dataplane;
pub mod engine;
pub mod health;
pub mod memory;
pub mod pool;
pub mod stats;
pub mod switch;
pub mod transit;
pub mod update;
pub mod version;
pub mod vip_table;

pub use config::{ConnMapping, SilkRoadConfig};
pub use dataplane::{BloomHashes, DataPath, ForwardDecision, HashedKey, KeyHasher};
pub use engine::{EngineOptions, FlowSteering, MultiPipeSwitch, Pipe, StreamStats};
pub use health::{HealthChecker, HealthConfig, HealthEvent};
pub use pool::{DipPool, PoolUpdate};
pub use stats::SwitchStats;
pub use switch::SilkRoadSwitch;
pub use update::UpdatePhase;
