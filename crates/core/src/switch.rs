//! The SilkRoad switch: data plane + control plane glued together.
//!
//! [`SilkRoadSwitch`] is the crate's main entry point. It is driven by two
//! kinds of calls:
//!
//! * **data plane** — [`SilkRoadSwitch::process_packet`] runs the full
//!   per-packet pipeline (ConnTable → VIPTable/TransitTable → DIPPoolTable)
//!   and returns the forwarding decision;
//! * **control plane** — [`SilkRoadSwitch::request_update`] applies DIP-pool
//!   changes through the 3-step PCC protocol, and
//!   [`SilkRoadSwitch::advance`] runs the software side (learning-filter
//!   drains, CPU insertions, update-phase transitions) up to a point in
//!   simulated time.
//!
//! Every public method takes `now`; the switch never consults a real clock.

use crate::config::{ConnMapping, SilkRoadConfig};
use crate::conn_table::{ConnTable, ConnValue};
use crate::control::{CompletedInstall, ControlPlane, LearnMeta, LearnOutcome};
use crate::dataplane::{BloomHashes, DataPath, ForwardDecision, HashedKey, KeyHasher};
use crate::memory::MemoryBreakdown;
use crate::pool::PoolUpdate;
use crate::stats::SwitchStats;
use crate::transit::TransitTable;
use crate::update::{ActiveUpdate, Transition, UpdatePhase, UpdateState};
use crate::version::VersionManager;
use crate::vip_table::{VersionView, VipTable};
use sr_asic::{Meter, MeterColor, MeterConfig};
use sr_hash::cuckoo::CuckooError;
use sr_hash::{FxHashMap, HashFn};
use sr_types::{Dip, FiveTuple, Nanos, PacketMeta, PoolVersion, TupleKey, TypeError, Vip};

/// Per-VIP control-plane state.
struct VipState {
    manager: VersionManager,
    update: UpdateState,
}

/// A fallback-table connection: pinned directly to a DIP, with the same
/// hit-bit bookkeeping the ConnTable keeps so idle aging covers it too.
struct FallbackConn {
    /// Which VIP the pin belongs to (per-VIP pin accounting).
    vip: Vip,
    dip: Dip,
    /// When the connection entered the fallback table.
    arrived: Nanos,
    /// Hit since the last aging scan.
    hit: bool,
}

/// Inline member bound for [`ResolveMemo`] — covers the pool sizes the
/// experiments sweep; larger pools just skip the memo.
const MEMO_DIPS: usize = 16;

/// Batch chunk length: enough split probes in flight to overlap their
/// entry loads without spilling the chunk's [`HashedKey`]s out of L1. The
/// fused setup stage's scratch arrays are sized by the same constant.
/// Sixteen measures ~10% faster than eight on the churn sweep (deeper
/// memory-level parallelism in the hash/locate passes and one shared-state
/// resolve per sixteen misses in the setup stage); chunk length never
/// changes decisions, only how much work overlaps.
const SETUP_CHUNK: usize = 16;

/// One-entry DIP-resolve memo: the members of the last `(vip, version)`
/// pool consulted by the hit path, copied inline. The ASIC resolves a
/// ConnTable value with a single indexed read of the versioned pool
/// registers; this memo plays that role in the model, sparing the two map
/// probes (VIP state, then pool) per steady-state hit. Pools are immutable
/// between control-plane events, and every packet entry point runs
/// [`SilkRoadSwitch::advance`] first — clearing the memo there means it
/// can never survive a control-plane mutation.
struct ResolveMemo {
    vip: Vip,
    version: PoolVersion,
    len: u8,
    dips: [Dip; MEMO_DIPS],
}

/// A SilkRoad switch instance.
pub struct SilkRoadSwitch {
    cfg: SilkRoadConfig,
    /// Every hash function the packet path consumes, evaluated in one pass
    /// per packet (bucket hashes, digest, ECMP select, bloom indexes).
    hasher: KeyHasher,
    vip_table: VipTable,
    vips: FxHashMap<Vip, VipState>,
    conn_table: ConnTable,
    transit: TransitTable,
    control: ControlPlane,
    /// Software fallback table: connections that could not live in
    /// ConnTable (overflow, version exhaustion) pinned directly to a DIP.
    /// Keyed by the inline tuple key so steady-state probes allocate
    /// nothing.
    fallback: FxHashMap<TupleKey, FallbackConn>,
    /// Per-VIP rate limiters (§5.2 performance isolation): red-marked
    /// packets are dropped before any table lookup.
    meters: FxHashMap<Vip, Meter>,
    /// See [`ResolveMemo`]. Cleared by [`SilkRoadSwitch::advance`].
    resolve_memo: Option<ResolveMemo>,
    /// Recycled buffer for the batched install drain in
    /// [`SilkRoadSwitch::advance`] — completions pop into this instead of
    /// a fresh `Vec` per control-plane wakeup.
    install_scratch: Vec<CompletedInstall>,
    stats: SwitchStats,
}

impl SilkRoadSwitch {
    /// Build a switch. Panics on invalid configuration or on a pipeline
    /// layout the srcheck verifier rejects (validate/check first for
    /// graceful handling).
    pub fn new(cfg: SilkRoadConfig) -> SilkRoadSwitch {
        cfg.validate().expect("invalid SilkRoadConfig");
        let layout = cfg.check_layout();
        if !layout.is_placeable() {
            panic!(
                "SilkRoadConfig is not placeable on the target pipeline:\n{}",
                layout.render()
            );
        }
        // The DIP-select hash: one generic hash unit, shared by every VIP.
        let select_hash = HashFn::new(cfg.seed ^ 0x5e1ec7);
        let conn_table = ConnTable::new(&cfg);
        let transit = TransitTable::new(
            cfg.transit_bytes,
            cfg.transit_hashes,
            cfg.seed,
            cfg.transit_enabled,
        );
        let hasher = KeyHasher::new(
            conn_table.stage_fns(),
            conn_table.match_fn(),
            select_hash,
            transit.hash_fns(),
        );
        SilkRoadSwitch {
            hasher,
            vip_table: VipTable::new(),
            vips: FxHashMap::default(),
            conn_table,
            transit,
            control: ControlPlane::new(cfg.learning, cfg.cpu),
            fallback: FxHashMap::default(),
            meters: FxHashMap::default(),
            resolve_memo: None,
            install_scratch: Vec::new(),
            stats: SwitchStats::default(),
            cfg,
        }
    }

    /// Record a new fallback pin in the stats (global + per-VIP).
    fn note_fallback_insert(stats: &mut SwitchStats, vip: Vip) {
        stats.fallback_entries += 1;
        *stats.fallback_pins_by_vip.entry(vip).or_insert(0) += 1;
    }

    /// Record a fallback pin going away (close or idle expiry).
    fn note_fallback_remove(stats: &mut SwitchStats, vip: Vip) {
        stats.fallback_entries = stats.fallback_entries.saturating_sub(1);
        if let Some(n) = stats.fallback_pins_by_vip.get_mut(&vip) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                stats.fallback_pins_by_vip.remove(&vip);
            }
        }
    }

    /// Attach a rate-limiting meter to a VIP (§5.2: "SilkRoad associates a
    /// meter (rate-limiter) to a VIP to detect and drop excessive traffic").
    /// Red-marked packets are dropped before any table processing.
    pub fn attach_meter(&mut self, vip: Vip, cfg: MeterConfig) {
        self.meters.insert(vip, Meter::new(cfg));
    }

    /// Detach a VIP's meter.
    pub fn detach_meter(&mut self, vip: Vip) {
        self.meters.remove(&vip);
    }

    /// The configuration.
    pub fn config(&self) -> &SilkRoadConfig {
        &self.cfg
    }

    /// Statistics counters.
    pub fn stats(&self) -> &SwitchStats {
        &self.stats
    }

    /// Installed connection count (ConnTable only).
    pub fn conn_count(&self) -> usize {
        self.conn_table.len()
    }

    /// The current update phase of a VIP.
    pub fn update_phase(&self, vip: Vip) -> Option<UpdatePhase> {
        self.vips.get(&vip).map(|s| s.update.phase)
    }

    /// The current pool version of a VIP.
    pub fn current_version(&self, vip: Vip) -> Option<PoolVersion> {
        self.vips.get(&vip).map(|s| s.manager.current_version())
    }

    /// The live DIPs of a VIP's newest pool. Borrows from the pool table —
    /// no per-call clone, so callers may invoke this per packet.
    pub fn current_dips(&self, vip: Vip) -> Option<&[Dip]> {
        self.vips
            .get(&vip)
            .map(|s| s.manager.current_pool().members())
    }

    /// Version-manager counters of a VIP: (allocations, reuses,
    /// pool_changes, live_versions).
    pub fn version_counters(&self, vip: Vip) -> Option<(u64, u64, u64, usize)> {
        self.vips.get(&vip).map(|s| {
            (
                s.manager.allocations,
                s.manager.reuses,
                s.manager.pool_changes,
                s.manager.live_versions(),
            )
        })
    }

    /// Learning-filter queue depth right now (churn-bench telemetry).
    pub fn learn_queue_depth(&self) -> usize {
        self.control.learn_queue_depth()
    }

    /// Learn events lost to learning-filter overflow so far (bounded-state
    /// evidence for the SYN-flood scenario).
    pub fn learn_overflow_drops(&self) -> u64 {
        self.control.learning.overflow_drops()
    }

    /// TransitTable bloom fill ratio (churn-bench telemetry).
    pub fn transit_fill_ratio(&self) -> f64 {
        self.transit.fill_ratio()
    }

    /// TransitTable diagnostics: (recorded, checks, hits, size_bytes).
    pub fn transit_counters(&self) -> (u64, u64, u64, usize) {
        (
            self.transit.recorded,
            self.transit.checks,
            self.transit.hits,
            self.transit.size_bytes(),
        )
    }

    /// Actual SRAM footprint right now. Word layouts come from the same
    /// `crate::memory` specs as the analytic Fig 12/14 model; entry widths
    /// that depend on address size use each VIP's own family, so v4 and v6
    /// VIPs are costed separately.
    pub fn memory(&self) -> MemoryBreakdown {
        use sr_types::AddrFamily;
        let families = [AddrFamily::V4, AddrFamily::V6];
        let mut vips = [0u64; 2];
        let mut members = [0u64; 2];
        let mut rows = 0u64;
        for (vip, s) in &self.vips {
            let f = (vip.family() == AddrFamily::V6) as usize;
            vips[f] += 1;
            members[f] += s.manager.total_pool_members() as u64;
            rows += s.manager.live_versions() as u64;
        }
        let mut vip_table = 0u64;
        let mut dip_pool_table =
            crate::memory::pool_row_spec(self.cfg.version_bits).bytes_for(rows);
        for (i, family) in families.into_iter().enumerate() {
            vip_table += crate::memory::vip_row_spec(family).bytes_for(vips[i]);
            dip_pool_table += crate::memory::pool_member_spec(family).bytes_for(members[i]);
        }
        MemoryBreakdown {
            conn_table: self.conn_table.occupied_bytes(),
            vip_table,
            dip_pool_table,
            transit: self.transit.size_bytes() as u64,
        }
    }

    /// Register a VIP with its initial DIP pool.
    pub fn add_vip(&mut self, vip: Vip, dips: Vec<Dip>) -> Result<(), TypeError> {
        if self.vips.contains_key(&vip) {
            return Err(TypeError::InvalidState {
                what: "VIP already registered",
            });
        }
        let manager = VersionManager::new(
            vip,
            crate::pool::DipPool::new(dips),
            self.cfg.version_bits,
            self.cfg.version_reuse,
        );
        self.vip_table.insert(vip, manager.current_version());
        self.vips.insert(
            vip,
            VipState {
                manager,
                update: UpdateState::new(),
            },
        );
        Ok(())
    }

    /// Deregister a VIP (drops all its state; connections to it become
    /// non-VIP traffic).
    pub fn remove_vip(&mut self, vip: Vip) -> Result<(), TypeError> {
        self.vips
            .remove(&vip)
            .ok_or(TypeError::NotFound { what: "VIP" })?;
        self.vip_table.remove(vip);
        Ok(())
    }

    /// Earliest instant at which [`SilkRoadSwitch::advance`] has work to do.
    pub fn next_wakeup(&self) -> Option<Nanos> {
        self.control.next_wakeup()
    }

    /// Run the control plane up to `now` (inclusive), in event order.
    /// Learn batches and CPU completions drain through recycled buffers —
    /// at steady state a wakeup allocates nothing.
    ///
    /// The batched pipeline (`legacy_setup` off) pops every CPU completion
    /// due before the next learning-filter notification in one pass and
    /// prefetches the next install's ConnTable buckets while the current
    /// one runs; the legacy path wakes per event, which is the pre-change
    /// behaviour the churn bench's baseline arm measures. Both orders
    /// observe identical state: a filter drain only moves events into the
    /// CPU queue (completion times are fixed at submit), and an install
    /// touches neither the filter nor its deadline.
    pub fn advance(&mut self, now: Nanos) {
        // Any control-plane activity may edit pools; drop the resolve memo
        // before it can be consulted again.
        self.resolve_memo = None;
        let mut jobs = std::mem::take(&mut self.install_scratch);
        if self.cfg.legacy_setup {
            while let Some(t) = self.control.next_wakeup() {
                if t > now {
                    break;
                }
                self.control.drain_learning(t);
                jobs.clear();
                self.control.pop_installs_into(t, &mut jobs);
                for inst in jobs.drain(..) {
                    self.handle_install(inst, false);
                }
            }
        } else {
            while let Some(t) = self.control.next_wakeup() {
                if t > now {
                    break;
                }
                self.control.drain_learning(t);
                let bound = match self.control.learning_deadline() {
                    Some(d) if d <= now => d,
                    _ => now,
                };
                jobs.clear();
                self.control.pop_installs_into(bound, &mut jobs);
                // When this batch drained the pipeline dry (the common
                // wave shape: every learned connection's install is due),
                // the popped jobs are exactly the in-flight membership —
                // settle the set with one bulk clear after the loop
                // instead of a hashed removal per job. The per-VIP
                // outstanding counters still step per install: an update
                // transition firing mid-batch snapshots them.
                let bulk = !jobs.is_empty() && self.control.drained_pipeline_empty();
                for i in 0..jobs.len() {
                    if let Some(next) = jobs.get(i + 1) {
                        let h = &next.job.meta.hashes;
                        if h.stages() == self.cfg.conn_stages {
                            self.conn_table
                                .prefetch_entry(h.stage_hashes(), h.match_hash());
                        }
                    }
                    self.handle_install(jobs[i], bulk);
                }
                if bulk {
                    self.control.clear_in_flight();
                }
            }
        }
        jobs.clear();
        self.install_scratch = jobs;
    }

    // srlint: hot-path begin
    /// Process one packet at `now`.
    pub fn process_packet(&mut self, pkt: &PacketMeta, now: Nanos) -> ForwardDecision {
        self.advance(now);
        self.process_packet_inner(pkt, now)
    }

    /// Process a batch of packets sharing one timestamp. The control plane
    /// advances once for the whole batch instead of per packet — the
    /// line-rate entry point for the simulator and benchmarks.
    pub fn process_batch(&mut self, pkts: &[PacketMeta], now: Nanos) -> Vec<ForwardDecision> {
        let mut out = Vec::with_capacity(pkts.len());
        self.process_batch_into(pkts, now, &mut out);
        out
    }

    /// [`SilkRoadSwitch::process_batch`] appending into a caller-owned
    /// buffer, so a driver can recycle one allocation across batches.
    ///
    /// Packets run in three passes per small chunk: hash every key (pure
    /// compute), locate every packet's ConnTable slot (match-field plane
    /// only, leaving each winning entry's cache-line load in flight), then
    /// run the real pipeline, resolving the located slots. Splitting the
    /// probe this way overlaps the per-packet chain of dependent random
    /// reads across the chunk. The first two passes have no side effects;
    /// the third resolves hits in place and sends the chunk's ConnTable
    /// misses through the fused setup stage
    /// ([`SilkRoadSwitch::setup_deferred`]) — so results and stats are
    /// identical to the per-packet path, packet for packet.
    pub fn process_batch_into(
        &mut self,
        pkts: &[PacketMeta],
        now: Nanos,
        out: &mut Vec<ForwardDecision>,
    ) {
        self.advance(now);
        out.reserve(pkts.len());
        let mut chunks = pkts.chunks_exact(SETUP_CHUNK);
        for chunk in chunks.by_ref() {
            // Pass 1: hash every key in the chunk, warming each key's
            // match-field words as its hashes land so the locate pass
            // probes already-inbound cache lines.
            let hashed: [HashedKey; SETUP_CHUNK] = std::array::from_fn(|i| {
                let h = self.hasher.hash_tuple(&chunk[i].tuple);
                self.conn_table.prefetch_words(h.conn_stage_hashes());
                h
            });
            // Pass 2: locate every packet's candidate ConnTable slot.
            let located: [Option<(u32, u32)>; SETUP_CHUNK] = std::array::from_fn(|i| {
                let h = &hashed[i];
                self.conn_table.locate(
                    h.key().as_slice(),
                    h.conn_stage_hashes(),
                    h.conn_match_hash(),
                )
            });
            // Pass 3: hits resolve in place, misses defer into the fused
            // setup stage.
            self.process_chunk(chunk, &hashed, &located, now, out);
        }
        for pkt in chunks.remainder() {
            out.push(self.process_packet_inner(pkt, now));
        }
    }

    /// One batch chunk: admission, the located ConnTable probe, and the
    /// fallback probe run in packet order with hits resolved immediately;
    /// VIPTable misses are deferred into [`SilkRoadSwitch::setup_deferred`].
    /// Deferral is order-safe because hits touch none of the state the miss
    /// path writes (transit bloom, learning filter, pending set). The one
    /// exception — a SYN falsely hitting a resident entry, whose §4.2
    /// repair mutates the table and replays the miss path — flushes the
    /// deferred misses (they precede it in packet order), runs the repair,
    /// and finishes the chunk on the sequential path (the relocate bumped
    /// the table epoch, invalidating the remaining located coordinates).
    fn process_chunk(
        &mut self,
        chunk: &[PacketMeta],
        hashed: &[HashedKey],
        located: &[Option<(u32, u32)>],
        now: Nanos,
        out: &mut Vec<ForwardDecision>,
    ) {
        let base = out.len();
        let mut deferred = [(0usize, VersionView::Stable(PoolVersion(0))); SETUP_CHUNK];
        let mut n_def = 0usize;
        let mut tail = None;
        for (i, ((pkt, h), loc)) in chunk.iter().zip(hashed).zip(located).enumerate() {
            let view = match self.admit(pkt, now) {
                Ok(view) => view,
                Err(d) => {
                    out.push(d);
                    continue;
                }
            };
            if let Some((stage, slot)) = *loc {
                let (value, exact, resident) =
                    self.conn_table
                        .lookup_marking_at(stage, slot, h.key().as_slice());
                if !exact && pkt.flags.is_syn() {
                    self.setup_deferred(chunk, hashed, deferred.get(..n_def), base, now, out);
                    n_def = 0;
                    out.push(self.on_conn_hit(pkt, view, h, value, exact, resident, now));
                    tail = Some(i + 1);
                    break;
                }
                out.push(self.on_conn_hit(pkt, view, h, value, exact, resident, now));
                continue;
            }
            if let Some(d) = self.fallback_hit(h) {
                out.push(d);
                continue;
            }
            // VIPTable miss: reserve the decision slot, run setup later.
            if let Some(slot) = deferred.get_mut(n_def) {
                *slot = (i, view);
            }
            n_def += 1;
            out.push(ForwardDecision::not_vip());
        }
        if let Some(start) = tail {
            for (pkt, h) in chunk.iter().zip(hashed).skip(start) {
                out.push(self.process_packet_hashed(pkt, h, now));
            }
        }
        self.setup_deferred(chunk, hashed, deferred.get(..n_def), base, now, out);
    }

    /// The fused connection-setup stage: run a chunk's deferred VIPTable
    /// misses in packet order. The TransitTable bloom hashes are computed
    /// in one bulk pass first — and skipped entirely while no update holds
    /// the filter, which is every steady-state batch — and the learn gate
    /// dedups repeated keys within the chunk before probing the control
    /// plane. Each decision lands in the placeholder slot pass 3 reserved
    /// for its packet.
    fn setup_deferred(
        &mut self,
        chunk: &[PacketMeta],
        hashed: &[HashedKey],
        deferred: Option<&[(usize, VersionView)]>,
        base: usize,
        now: Nanos,
        out: &mut [ForwardDecision],
    ) {
        let deferred = deferred.unwrap_or(&[]);
        if deferred.is_empty() {
            return;
        }
        if self.setup_chunk_stable(chunk, hashed, deferred, base, now, out) {
            return;
        }
        // Bulk bloom pass, aligned index-for-index with `deferred`.
        let mut blooms: [Option<BloomHashes>; SETUP_CHUNK] = [None; SETUP_CHUNK];
        if self.transit.enabled() && self.transit.active_users() > 0 {
            for (slot, &(i, _)) in blooms.iter_mut().zip(deferred) {
                *slot = hashed.get(i).map(|h| self.hasher.bloom_hashes(h.key()));
            }
        }
        // Packet indices of this chunk's misses whose key is now pending in
        // the setup pipeline: later duplicates skip the control-plane gate.
        // Each slot carries the key's select hash so the dedup scan
        // compares one word per candidate and touches full keys only on a
        // hash match — a chunk of distinct keys (the common case) pays a
        // few integer compares instead of byte-wise key comparisons.
        let mut pending = [(0usize, 0u64); SETUP_CHUNK];
        let mut n_pending = 0usize;
        for (&(i, view), bloom) in deferred.iter().zip(&blooms) {
            let (Some(pkt), Some(h)) = (chunk.get(i), hashed.get(i)) else {
                continue;
            };
            let dup_pending = pending.iter().take(n_pending).any(|&(j, ph)| {
                ph == h.select_hash() && hashed.get(j).is_some_and(|p| p.key() == h.key())
            });
            let (d, pending_after) =
                self.miss_path_setup(pkt, view, h, bloom.as_ref(), dup_pending, now);
            if pending_after {
                if let Some(slot) = pending.get_mut(n_pending) {
                    *slot = (i, h.select_hash());
                    n_pending += 1;
                }
            }
            if let Some(slot) = out.get_mut(base + i) {
                *slot = d;
            }
        }
    }

    /// The steady-state fast path of the fused setup stage: when no update
    /// holds the TransitTable (so no VIP is recording or draining) and
    /// every miss in the chunk targets the same stable VIP view, the VIP
    /// state and its pool resolve *once* for the whole chunk instead of
    /// per packet; each miss then pays only its DIP selection and the
    /// learn gate. With transit disabled an update can technically sit in
    /// its recording phase, but recording into a disabled filter is a
    /// no-op, so skipping it changes nothing. Decisions, stats, and
    /// learn-gate outcomes are identical to the general path, packet for
    /// packet. Returns false when the chunk does not qualify (an update in
    /// flight, mixed VIPs, a non-stable view, or a missing pool).
    fn setup_chunk_stable(
        &mut self,
        chunk: &[PacketMeta],
        hashed: &[HashedKey],
        deferred: &[(usize, VersionView)],
        base: usize,
        now: Nanos,
        out: &mut [ForwardDecision],
    ) -> bool {
        if self.transit.enabled() && self.transit.active_users() > 0 {
            return false;
        }
        let Some(&(i0, view0)) = deferred.first() else {
            return false;
        };
        let VersionView::Stable(version) = view0 else {
            return false;
        };
        let Some(pkt0) = chunk.get(i0) else {
            return false;
        };
        let vip = Vip(pkt0.tuple.dst);
        let uniform = deferred.iter().all(|&(i, view)| {
            matches!(view, VersionView::Stable(v) if v == version)
                && chunk.get(i).is_some_and(|p| p.tuple.dst == pkt0.tuple.dst)
                && hashed.get(i).is_some()
        });
        if !uniform {
            return false;
        }
        // Pass 1 — resolve the shared state once and select every miss's
        // DIP while the pool borrow is live.
        let Some(state) = self.vips.get(&vip) else {
            return false;
        };
        let Some(pool) = state.manager.pool(version) else {
            return false;
        };
        let mut dips: [Option<Dip>; SETUP_CHUNK] = [None; SETUP_CHUNK];
        for (slot, &(i, _)) in dips.iter_mut().zip(deferred) {
            if let Some(h) = hashed.get(i) {
                *slot = pool.select_hashed(h.select_hash());
            }
        }
        // Pass 2 — decisions and learn gates, with the same in-chunk
        // dedup the general path runs.
        let mut pending = [(0usize, 0u64); SETUP_CHUNK];
        let mut n_pending = 0usize;
        for (j, &(i, _)) in deferred.iter().enumerate() {
            let Some(h) = hashed.get(i) else {
                continue;
            };
            self.stats.vip_table_misses += 1;
            let d = match dips.get(j).copied().flatten() {
                Some(dip) => {
                    let dup_pending = pending.iter().take(n_pending).any(|&(k, ph)| {
                        ph == h.select_hash() && hashed.get(k).is_some_and(|p| p.key() == h.key())
                    });
                    let pending_after = if dup_pending {
                        true
                    } else {
                        match self.control.learn_gate(
                            h.key().as_slice(),
                            LearnMeta {
                                vip,
                                version,
                                dip,
                                hashes: h.conn_hashes(),
                            },
                            now,
                        ) {
                            LearnOutcome::Entered => {
                                self.stats.learns += 1;
                                true
                            }
                            LearnOutcome::AlreadyPending => true,
                            LearnOutcome::Overflow => false,
                        }
                    };
                    if pending_after {
                        if let Some(slot) = pending.get_mut(n_pending) {
                            *slot = (i, h.select_hash());
                            n_pending += 1;
                        }
                    }
                    ForwardDecision {
                        dip: Some(dip),
                        path: DataPath::AsicVipTable,
                        version: Some(version),
                        conn_table_hit: false,
                        false_hit: false,
                    }
                }
                // An empty pool drops, exactly like the general path; the
                // dedup list stays empty in that case there too.
                None => ForwardDecision::dropped(),
            };
            if let Some(slot) = out.get_mut(base + i) {
                *slot = d;
            }
        }
        true
    }

    /// The per-packet pipeline, after the control plane has advanced.
    /// Steady-state ConnTable hits allocate nothing: the key lives inline
    /// on the stack and every hash is derived from one pass over it.
    fn process_packet_inner(&mut self, pkt: &PacketMeta, now: Nanos) -> ForwardDecision {
        match self.admit(pkt, now) {
            Ok(view) => {
                // Hash once; every table downstream consumes precomputed
                // values.
                let hashed = self.hasher.hash_tuple(&pkt.tuple);
                self.dispatch(pkt, view, &hashed, now)
            }
            Err(d) => d,
        }
    }

    /// [`SilkRoadSwitch::process_packet_inner`] with the key hashes already
    /// computed (the batch pipeline hashes in its warm-up pass).
    #[inline]
    fn process_packet_hashed(
        &mut self,
        pkt: &PacketMeta,
        hashed: &HashedKey,
        now: Nanos,
    ) -> ForwardDecision {
        match self.admit(pkt, now) {
            Ok(view) => self.dispatch(pkt, view, hashed, now),
            Err(d) => d,
        }
    }

    /// The pre-hash front of the pipeline: VIP-table admission and per-VIP
    /// policing. `Err` carries the early decision for non-VIP or red-marked
    /// packets.
    #[inline]
    fn admit(&mut self, pkt: &PacketMeta, now: Nanos) -> Result<VersionView, ForwardDecision> {
        self.stats.packets += 1;
        let dst = pkt.tuple.dst;
        let Some(view) = self.vip_table.lookup(&dst) else {
            return Err(ForwardDecision::not_vip());
        };
        // Per-VIP policing happens at the front of the pipeline. The
        // emptiness check keeps unpoliced deployments from paying a map
        // probe per packet.
        if self.meters.is_empty() {
            return Ok(view);
        }
        if let Some(meter) = self.meters.get_mut(&Vip(dst)) {
            if meter.mark(now, pkt.len) == MeterColor::Red {
                self.stats.metered_drops += 1;
                return Err(ForwardDecision::dropped());
            }
        }
        Ok(view)
    }

    /// The table pipeline on an admitted packet with precomputed hashes.
    fn dispatch(
        &mut self,
        pkt: &PacketMeta,
        view: VersionView,
        hashed: &HashedKey,
        now: Nanos,
    ) -> ForwardDecision {
        // 1. ConnTable (the marking lookup also sets the entry's hit bit,
        //    which drives idle aging).
        if let Some((value, exact, resident)) = self.conn_table.lookup_marking_pre(
            hashed.key().as_slice(),
            hashed.conn_stage_hashes(),
            hashed.conn_match_hash(),
        ) {
            return self.on_conn_hit(pkt, view, hashed, value, exact, resident, now);
        }
        self.post_conn(pkt, view, hashed, now)
    }

    /// A ConnTable match-field hit: forward by the stored value, or run the
    /// SYN false-hit repair (§4.2).
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn on_conn_hit(
        &mut self,
        pkt: &PacketMeta,
        view: VersionView,
        hashed: &HashedKey,
        value: ConnValue,
        exact: bool,
        resident: Option<TupleKey>,
        now: Nanos,
    ) -> ForwardDecision {
        if exact || !pkt.flags.is_syn() {
            self.stats.conn_table_hits += 1;
            if !exact {
                self.stats.digest_false_hits += 1;
            }
            let (dip, version) = self.resolve_value(hashed.select_hash(), &value);
            return ForwardDecision {
                dip,
                path: DataPath::AsicConnTable,
                version,
                conn_table_hit: true,
                false_hit: !exact,
            };
        }
        // SYN falsely hitting a resident entry: software repair (§4.2).
        self.stats.conn_table_hits += 1;
        self.stats.digest_false_hits += 1;
        self.stats.syn_repairs += 1;
        if let Some(resident) = resident {
            if self.conn_table.relocate(resident.as_slice()).is_ok() {
                self.stats.relocations += 1;
            }
        }
        let mut d = self.miss_path(pkt, view, hashed, now);
        d.path = DataPath::SoftwareRedirect;
        d
    }

    /// Step 2 of the pipeline: the fallback-table probe (overflow /
    /// version-exhaustion connections). Hits set the entry's hit bit, same
    /// as ConnTable: fallback pins age out through `expire_idle` when
    /// their connection goes quiet.
    #[inline]
    fn fallback_hit(&mut self, hashed: &HashedKey) -> Option<ForwardDecision> {
        let entry = self.fallback.get_mut(hashed.key().as_slice())?;
        entry.hit = true;
        self.stats.conn_table_hits += 1;
        Some(ForwardDecision {
            dip: Some(entry.dip),
            path: DataPath::AsicConnTable,
            version: None,
            conn_table_hit: true,
            false_hit: false,
        })
    }

    /// Steps 2–3 of the pipeline, after the ConnTable probe missed.
    #[inline]
    fn post_conn(
        &mut self,
        pkt: &PacketMeta,
        view: VersionView,
        hashed: &HashedKey,
        now: Nanos,
    ) -> ForwardDecision {
        if let Some(d) = self.fallback_hit(hashed) {
            return d;
        }
        // 3. VIPTable miss path.
        self.miss_path(pkt, view, hashed, now)
    }

    /// Resolve a ConnTable value to a DIP per the configured mapping mode.
    /// `select_hash` is the precomputed DIP-select hash of the packet's key.
    #[inline]
    fn resolve_value(
        &mut self,
        select_hash: u64,
        value: &ConnValue,
    ) -> (Option<Dip>, Option<PoolVersion>) {
        match self.cfg.mapping {
            ConnMapping::DirectDip => (Some(value.dip), None),
            ConnMapping::Version => {
                if let Some(m) = &self.resolve_memo {
                    if m.vip == value.vip && m.version == value.version {
                        let dip = sr_hash::ecmp_select(select_hash, usize::from(m.len))
                            .map(|i| m.dips[i])
                            // Empty pool: fall back to the learn-time DIP,
                            // same as the uncached path below.
                            .or(Some(value.dip));
                        return (dip, Some(value.version));
                    }
                }
                let resolved = self
                    .vips
                    .get(&value.vip)
                    .and_then(|s| s.manager.pool(value.version))
                    .map(|p| {
                        let members = p.members();
                        let memo = if members.len() <= MEMO_DIPS {
                            let mut dips = [value.dip; MEMO_DIPS];
                            dips[..members.len()].copy_from_slice(members);
                            Some((members.len() as u8, dips))
                        } else {
                            None
                        };
                        (p.select_hashed(select_hash), memo)
                    });
                let Some((selected, memo)) = resolved else {
                    // The pool should outlive its connections (refcounts);
                    // the learn-time DIP is the defensive fallback.
                    return (Some(value.dip), Some(value.version));
                };
                if let Some((len, dips)) = memo {
                    self.resolve_memo = Some(ResolveMemo {
                        vip: value.vip,
                        version: value.version,
                        len,
                        dips,
                    });
                }
                (selected.or(Some(value.dip)), Some(value.version))
            }
        }
    }

    fn miss_path(
        &mut self,
        pkt: &PacketMeta,
        view: VersionView,
        hashed: &HashedKey,
        now: Nanos,
    ) -> ForwardDecision {
        self.miss_path_setup(pkt, view, hashed, None, false, now).0
    }

    /// The miss path, with the fused setup stage's extras: `bloom` is the
    /// bulk-precomputed TransitTable hash pass (`None` computes lazily, the
    /// per-packet path), and `dup_pending` is the in-chunk dedup verdict —
    /// an earlier miss in the same chunk left this key pending, so the
    /// control-plane gate can be skipped (the key cannot have left the
    /// pipeline mid-batch; installs only happen in `advance`). Returns the
    /// decision plus whether the key is pending in the setup pipeline
    /// afterwards (feeds the next packets' dedup).
    fn miss_path_setup(
        &mut self,
        pkt: &PacketMeta,
        view: VersionView,
        hashed: &HashedKey,
        bloom: Option<&BloomHashes>,
        dup_pending: bool,
        now: Nanos,
    ) -> (ForwardDecision, bool) {
        self.stats.vip_table_misses += 1;
        let vip = Vip(pkt.tuple.dst);
        let key = hashed.key().as_slice();
        let mut software = false;

        // One VIP-state probe serves both the update-phase check and the
        // pool fetch below; the borrow spans only field-local mutations
        // (transit, stats), so it stays live across the match.
        let state = self.vips.get(&vip);
        let version = match view {
            VersionView::Stable(v) => {
                // Step 1 of an in-flight update: remember this connection.
                let recording = state
                    .map(|s| s.update.phase == UpdatePhase::Recording)
                    .unwrap_or(false);
                if recording {
                    // Bloom hashes are computed lazily here unless the
                    // batch path ran its bulk pass — hit packets never
                    // reach the miss path, so they never pay for them.
                    match bloom {
                        Some(b) => self.transit.record_hashed(b.as_slice()),
                        None => {
                            let b = self.hasher.bloom_hashes(hashed.key());
                            self.transit.record_hashed(b.as_slice());
                        }
                    }
                }
                v
            }
            VersionView::Updating { old, new } => {
                let transit_hit = match bloom {
                    Some(b) => self.transit.check_hashed(b.as_slice()),
                    None => {
                        let b = self.hasher.bloom_hashes(hashed.key());
                        self.transit.check_hashed(b.as_slice())
                    }
                };
                if transit_hit {
                    if pkt.flags.is_syn() {
                        // A SYN matching TransitTable in step 2 is redirected
                        // to software (§4.3): software distinguishes a real
                        // pending connection (old version) from a bloom
                        // false positive (new version).
                        self.stats.transit_syn_redirects += 1;
                        software = true;
                        if dup_pending || self.control.is_pending(key) {
                            old
                        } else {
                            new
                        }
                    } else {
                        old
                    }
                } else {
                    new
                }
            }
        };

        let Some(state) = state else {
            return (ForwardDecision::dropped(), dup_pending);
        };
        let Some(pool) = state.manager.pool(version) else {
            return (ForwardDecision::dropped(), dup_pending);
        };
        let Some(dip) = pool.select_hashed(hashed.select_hash()) else {
            return (ForwardDecision::dropped(), dup_pending);
        };

        // Learn the connection (dedup inside the control plane; the batch
        // path pre-dedups repeats within its chunk). The learn event
        // carries the packet-time ConnTable hashes so the eventual install
        // replays them instead of re-hashing. The gate's three outcomes
        // fold the old `is_pending` pre-probe into the insert itself.
        let pending_after = if dup_pending {
            true
        } else {
            match self.control.learn_gate(
                key,
                LearnMeta {
                    vip,
                    version,
                    dip,
                    hashes: hashed.conn_hashes(),
                },
                now,
            ) {
                LearnOutcome::Entered => {
                    self.stats.learns += 1;
                    true
                }
                LearnOutcome::AlreadyPending => true,
                LearnOutcome::Overflow => false,
            }
        };

        (
            ForwardDecision {
                dip: Some(dip),
                path: if software {
                    DataPath::SoftwareRedirect
                } else {
                    DataPath::AsicVipTable
                },
                version: Some(version),
                conn_table_hit: false,
                false_hit: false,
            },
            pending_after,
        )
    }
    // srlint: hot-path end

    /// The connection identified by `tuple` closed (FIN/RST observed or the
    /// flow ended). Frees its ConnTable entry and version reference.
    pub fn close_connection(&mut self, tuple: &FiveTuple, now: Nanos) {
        self.advance(now);
        self.stats.closes += 1;
        let key = tuple.tuple_key();
        match self.conn_table.remove(key.as_slice()) {
            Ok(value) => {
                if let Some(state) = self.vips.get_mut(&value.vip) {
                    state.manager.conn_removed(value.version);
                }
            }
            Err(_) => {
                if let Some(fb) = self.fallback.remove(key.as_slice()) {
                    Self::note_fallback_remove(&mut self.stats, fb.vip);
                } else {
                    // Still pending: skip its install when it completes.
                    self.control.note_close(key.as_slice());
                }
            }
        }
    }

    /// Request a DIP-pool update. Queued behind any in-flight update for the
    /// same VIP.
    pub fn request_update(
        &mut self,
        vip: Vip,
        op: PoolUpdate,
        now: Nanos,
    ) -> Result<(), TypeError> {
        self.advance(now);
        self.stats.updates_requested += 1;
        let state = self
            .vips
            .get_mut(&vip)
            .ok_or(TypeError::NotFound { what: "VIP" })?;
        if !state.update.is_idle() {
            state.update.queue.push_back(op);
            self.stats.updates_queued += 1;
            return Ok(());
        }
        self.start_update(vip, op, now);
        Ok(())
    }

    fn start_update(&mut self, vip: Vip, op: PoolUpdate, now: Nanos) {
        let prepared = {
            let state = self.vips.get_mut(&vip).expect("caller checked");
            match state.manager.prepare(op) {
                Ok(Some(p)) => Some(p),
                Ok(None) => None,
                Err(_) => {
                    // Version-ring exhaustion: migrate the least-referenced
                    // version's connections to the fallback table and retry.
                    self.handle_exhaustion(vip);
                    let state = self.vips.get_mut(&vip).expect("still there");
                    match state.manager.prepare(op) {
                        Ok(p) => p,
                        Err(_) => {
                            // Still exhausted (everything pinned): drop the
                            // update. Counted; the operator would retry.
                            return;
                        }
                    }
                }
            }
        };
        let Some(prepared) = prepared else {
            self.stats.updates_noop += 1;
            return;
        };

        let pending = self.control.outstanding(vip);
        let state = self.vips.get_mut(&vip).expect("caller checked");
        let old = state.manager.current_version();
        state.manager.retain(old);
        state.manager.retain(prepared.new_version);
        state.update.begin(ActiveUpdate {
            op,
            requested_at: now,
            executed_at: None,
            old_version: old,
            new_version: prepared.new_version,
            reused: prepared.reused,
            pending_before_req: pending,
            pending_recorded: 0,
        });
        if self.transit.enabled() {
            self.transit.acquire();
            if pending == 0 {
                // Step 1 is empty: flip immediately.
                self.execute_update(vip, now);
            }
        } else {
            // Ablation (`SilkRoad without TransitTable`): no step 1 — the
            // update executes at request time, pending connections be
            // damned. This is Fig 16/17's middle line.
            self.execute_update(vip, now);
        }
    }

    fn execute_update(&mut self, vip: Vip, t_exec: Nanos) {
        let outstanding = self.control.outstanding(vip);
        let (old, new, done) = {
            let state = self.vips.get_mut(&vip).expect("active update");
            let active = *state.update.active.as_ref().expect("active update");
            let done = state.update.execute(t_exec, outstanding);
            state.manager.commit(active.new_version);
            (active.old_version, active.new_version, done)
        };
        self.vip_table.begin_transition(vip, old, new);
        if done {
            self.finish_update(vip, t_exec);
        }
    }

    fn finish_update(&mut self, vip: Vip, t_finish: Nanos) {
        let next = {
            let state = self.vips.get_mut(&vip).expect("active update");
            let (done, next) = state.update.finish();
            state.manager.release(done.old_version);
            state.manager.release(done.new_version);
            next
        };
        self.vip_table.finish_transition(vip);
        if self.transit.enabled() {
            self.transit.release();
        }
        self.stats.updates_completed += 1;
        if let Some(op) = next {
            self.start_update(vip, op, t_finish);
        }
    }

    /// Run an idle-aging scan (clock algorithm over per-entry hit bits):
    /// every entry installed before the previous scan and not hit since is
    /// expired, releasing its version reference. Operators schedule this on
    /// the order of `config.idle_timeout`; the simulator closes connections
    /// explicitly instead (it only materialises a sample of each flow's
    /// packets, so hit bits would be incomplete).
    pub fn expire_idle(&mut self, now: Nanos) -> usize {
        let cutoff = self.conn_table.last_scan();
        let expired = self.conn_table.aging_scan(now);
        let mut n = expired.len();
        for (_, value) in expired {
            if let Some(state) = self.vips.get_mut(&value.vip) {
                state.manager.conn_removed(value.version);
            }
        }
        // Fallback pins age on the same clock: entries that arrived before
        // the previous scan and were not hit since are expired.
        let fallback = &mut self.fallback;
        let stats = &mut self.stats;
        let before = fallback.len();
        fallback.retain(|_, e| {
            let keep = e.arrived >= cutoff || e.hit;
            e.hit = false;
            if !keep {
                Self::note_fallback_remove(stats, e.vip);
            }
            keep
        });
        n += before - fallback.len();
        self.stats.idle_expired += n as u64;
        n
    }

    /// Apply health-checker verdicts (§7): a `Down` removes the DIP from
    /// its pool, an `Up` re-adds it — both through the normal 3-step PCC
    /// update path, where version reuse absorbs the flap.
    pub fn apply_health_events(
        &mut self,
        events: &[crate::health::HealthEvent],
        now: Nanos,
    ) -> Result<(), TypeError> {
        for e in events {
            match *e {
                crate::health::HealthEvent::Down(vip, dip) => {
                    self.request_update(vip, PoolUpdate::Remove(dip), now)?;
                }
                crate::health::HealthEvent::Up(vip, dip) => {
                    self.request_update(vip, PoolUpdate::Add(dip), now)?;
                }
            }
        }
        Ok(())
    }

    /// Version-ring exhaustion (§4.2 footnote): move the connections of the
    /// least-referenced non-current version into the fallback table so the
    /// version can be destroyed and its number recycled.
    fn handle_exhaustion(&mut self, vip: Vip) {
        self.stats.version_exhaustions += 1;
        let victim = {
            let state = self.vips.get(&vip).expect("caller checked");
            state.manager.victim_version()
        };
        let Some(victim) = victim else { return };
        let evicted = self.conn_table.evict_version(vip, victim);
        let state = self.vips.get_mut(&vip).expect("caller checked");
        for (key, value) in evicted {
            state.manager.conn_removed(victim);
            self.fallback.insert(
                TupleKey::from_bytes(&key),
                FallbackConn {
                    vip,
                    dip: value.dip,
                    arrived: value.arrived,
                    hit: false,
                },
            );
            Self::note_fallback_insert(&mut self.stats, vip);
            self.stats.exhaustion_migrations += 1;
        }
    }

    /// Apply one completed install. `bulk` means the caller is draining a
    /// batch that emptied the pipeline and will settle the in-flight set
    /// with one bulk clear afterwards, so only the per-VIP outstanding
    /// counter is stepped here.
    fn handle_install(&mut self, inst: CompletedInstall, bulk: bool) {
        let CompletedInstall { job, completed_at } = inst;
        let vip = job.meta.vip;
        let key = job.key;
        if bulk {
            self.control.mark_terminal_popped(vip);
        } else {
            self.control.mark_terminal(key.as_slice(), vip);
        }

        if self.control.has_closed_early() && self.control.take_closed_early(key.as_slice()) {
            self.stats.installs_skipped_closed += 1;
        } else if self.vips.contains_key(&vip) {
            // The batched setup path replays the packet-time hash pass the
            // learn event carried instead of re-hashing the key on the
            // CPU; `legacy_setup` (and hash-less producers) re-hash.
            // Placement and decisions are bit-identical either way.
            let hashes = job.meta.hashes;
            let pre = !self.cfg.legacy_setup && hashes.stages() == self.cfg.conn_stages;
            // Install-time collision pre-check: if another resident already
            // aliases this digest+bucket, relocate it first so the new
            // entry's packets do not shadow-match (§4.2).
            let probe = if pre {
                self.conn_table.lookup_pre(
                    key.as_slice(),
                    hashes.stage_hashes(),
                    hashes.match_hash(),
                )
            } else {
                self.conn_table.lookup(key.as_slice())
            };
            let vacant = probe.is_none();
            let resident = match probe {
                Some(hit) if !hit.exact => Some(TupleKey::from_bytes(hit.resident_key)),
                _ => None,
            };
            if let Some(resident) = resident {
                if self.conn_table.relocate(resident.as_slice()).is_ok() {
                    self.stats.relocations += 1;
                }
            }
            let value = ConnValue {
                vip,
                version: job.meta.version,
                dip: job.meta.dip,
                arrived: job.arrived,
            };
            let installed = if pre && vacant {
                // The pre-check above just probed these hashes and missed,
                // and nothing has touched the table since: the insert can
                // skip its duplicate scan and, for alias-free free-slot
                // landings, the shadowing re-probe.
                self.conn_table.install_vacant_pre(
                    key.as_slice(),
                    hashes.stage_hashes(),
                    hashes.match_hash(),
                    value,
                )
            } else if pre {
                self.conn_table.install_pre(
                    key.as_slice(),
                    hashes.stage_hashes(),
                    hashes.match_hash(),
                    value,
                )
            } else {
                self.conn_table.install(key.as_slice(), value)
            };
            match installed {
                Ok(_) => {
                    self.stats.installs += 1;
                    if let Some(state) = self.vips.get_mut(&vip) {
                        state.manager.conn_installed(job.meta.version);
                    }
                }
                Err(CuckooError::Full) => {
                    self.fallback.insert(
                        key,
                        FallbackConn {
                            vip,
                            dip: job.meta.dip,
                            arrived: job.arrived,
                            hit: false,
                        },
                    );
                    self.stats.conn_table_overflows += 1;
                    Self::note_fallback_insert(&mut self.stats, vip);
                }
                Err(_) => {}
            }
        }

        // Drive the 3-step update machine.
        let transition = self
            .vips
            .get_mut(&vip)
            .map(|s| s.update.on_install())
            .unwrap_or(Transition::None);
        match transition {
            Transition::Execute => self.execute_update(vip, completed_at),
            Transition::Finish => self.finish_update(vip, completed_at),
            Transition::None => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_types::Addr;

    fn vip() -> Vip {
        Vip(Addr::v4(20, 0, 0, 1, 80))
    }

    fn dip(i: u8) -> Dip {
        Dip(Addr::v4(10, 0, 0, i, 20))
    }

    fn conn(p: u16) -> FiveTuple {
        FiveTuple::tcp(Addr::v4(1, 2, 3, 4, p), Addr::v4(20, 0, 0, 1, 80))
    }

    fn switch() -> SilkRoadSwitch {
        let mut sw = SilkRoadSwitch::new(SilkRoadConfig::small_test());
        sw.add_vip(vip(), vec![dip(1), dip(2), dip(3), dip(4)])
            .unwrap();
        sw
    }

    /// Drive the control plane until quiescent.
    fn settle(sw: &mut SilkRoadSwitch, upto_ms: u64) -> Nanos {
        let t = Nanos::from_millis(upto_ms);
        sw.advance(t);
        t
    }

    #[test]
    fn non_vip_traffic_passes_through() {
        let mut sw = switch();
        let other = FiveTuple::tcp(Addr::v4(1, 1, 1, 1, 1), Addr::v4(9, 9, 9, 9, 443));
        let d = sw.process_packet(&PacketMeta::syn(other), Nanos::ZERO);
        assert_eq!(d.path, DataPath::NotVip);
    }

    #[test]
    fn first_packet_selects_and_learns() {
        let mut sw = switch();
        let d = sw.process_packet(&PacketMeta::syn(conn(1)), Nanos::ZERO);
        assert_eq!(d.path, DataPath::AsicVipTable);
        assert!(d.dip.is_some());
        assert!(!d.conn_table_hit);
        assert_eq!(sw.stats().learns, 1);
        // After the learning timeout + CPU time the entry is installed.
        settle(&mut sw, 10);
        assert_eq!(sw.conn_count(), 1);
        let d2 = sw.process_packet(&PacketMeta::data(conn(1), 1460), Nanos::from_millis(10));
        assert!(d2.conn_table_hit);
        assert_eq!(d2.dip, d.dip);
    }

    #[test]
    fn duplicate_vip_rejected() {
        let mut sw = switch();
        assert!(sw.add_vip(vip(), vec![dip(1)]).is_err());
        assert!(sw.remove_vip(vip()).is_ok());
        assert!(sw.remove_vip(vip()).is_err());
    }

    #[test]
    fn update_unknown_vip_rejected() {
        let mut sw = switch();
        let unknown = Vip(Addr::v4(99, 0, 0, 1, 80));
        assert!(sw
            .request_update(unknown, PoolUpdate::Add(dip(9)), Nanos::ZERO)
            .is_err());
    }

    #[test]
    fn installed_connection_survives_update() {
        let mut sw = switch();
        let d1 = sw.process_packet(&PacketMeta::syn(conn(7)), Nanos::ZERO);
        settle(&mut sw, 10);
        // Update: remove a different DIP (forces a new pool).
        let victim = sw
            .current_dips(vip())
            .unwrap()
            .iter()
            .copied()
            .find(|d| Some(*d) != d1.dip)
            .unwrap();
        sw.request_update(vip(), PoolUpdate::Remove(victim), Nanos::from_millis(10))
            .unwrap();
        settle(&mut sw, 30);
        assert_eq!(sw.update_phase(vip()), Some(UpdatePhase::Idle));
        let d2 = sw.process_packet(&PacketMeta::data(conn(7), 100), Nanos::from_millis(30));
        assert_eq!(d2.dip, d1.dip, "installed connection remapped by update");
    }

    #[test]
    fn pending_connection_protected_by_transit_table() {
        let mut sw = switch();
        // Packet at t=0; entry not installed before ~1ms (filter timeout).
        let d1 = sw.process_packet(&PacketMeta::syn(conn(42)), Nanos::ZERO);
        // Update requested immediately after: the connection is pending.
        sw.request_update(vip(), PoolUpdate::Remove(dip(1)), Nanos::from_micros(10))
            .unwrap();
        // While pending and mid-update, a data packet must still go to d1.
        let d2 = sw.process_packet(&PacketMeta::data(conn(42), 100), Nanos::from_micros(20));
        assert_eq!(d2.dip, d1.dip, "pending connection broke PCC");
        // After everything settles, still d1.
        settle(&mut sw, 50);
        let d3 = sw.process_packet(&PacketMeta::data(conn(42), 100), Nanos::from_millis(50));
        assert_eq!(d3.dip, d1.dip);
        assert_eq!(sw.update_phase(vip()), Some(UpdatePhase::Idle));
    }

    #[test]
    fn without_transit_table_update_is_immediate() {
        let mut cfg = SilkRoadConfig::small_test();
        cfg.transit_enabled = false;
        let mut sw = SilkRoadSwitch::new(cfg);
        sw.add_vip(vip(), vec![dip(1), dip(2)]).unwrap();
        sw.process_packet(&PacketMeta::syn(conn(1)), Nanos::ZERO);
        sw.request_update(vip(), PoolUpdate::Remove(dip(1)), Nanos::from_micros(5))
            .unwrap();
        // The flip happened at request time even though a connection is
        // pending: the VIP is already Draining (or Idle if drained).
        assert_ne!(sw.update_phase(vip()), Some(UpdatePhase::Recording));
    }

    #[test]
    fn new_connections_use_new_pool_after_update() {
        let mut sw = switch();
        sw.request_update(vip(), PoolUpdate::Remove(dip(2)), Nanos::ZERO)
            .unwrap();
        settle(&mut sw, 10);
        for p in 0..200 {
            let d = sw.process_packet(&PacketMeta::syn(conn(p)), Nanos::from_millis(10));
            assert_ne!(d.dip, Some(dip(2)), "new connection sent to removed DIP");
        }
    }

    #[test]
    fn updates_queue_behind_active_one() {
        let mut sw = switch();
        // Make a connection pending so the first update sits in step 1.
        sw.process_packet(&PacketMeta::syn(conn(1)), Nanos::ZERO);
        sw.request_update(vip(), PoolUpdate::Remove(dip(1)), Nanos::from_micros(1))
            .unwrap();
        sw.request_update(vip(), PoolUpdate::Remove(dip(2)), Nanos::from_micros(2))
            .unwrap();
        assert_eq!(sw.stats().updates_queued, 1);
        settle(&mut sw, 50);
        assert_eq!(sw.stats().updates_completed, 2);
        let dips = sw.current_dips(vip()).unwrap();
        assert!(!dips.contains(&dip(1)) && !dips.contains(&dip(2)));
    }

    #[test]
    fn close_frees_entry_and_version() {
        let mut sw = switch();
        sw.process_packet(&PacketMeta::syn(conn(5)), Nanos::ZERO);
        settle(&mut sw, 10);
        assert_eq!(sw.conn_count(), 1);
        sw.close_connection(&conn(5), Nanos::from_millis(10));
        assert_eq!(sw.conn_count(), 0);
        assert_eq!(sw.stats().closes, 1);
    }

    #[test]
    fn close_while_pending_skips_install() {
        let mut sw = switch();
        sw.process_packet(&PacketMeta::syn(conn(5)), Nanos::ZERO);
        sw.close_connection(&conn(5), Nanos::from_micros(10));
        settle(&mut sw, 10);
        assert_eq!(sw.conn_count(), 0);
        assert_eq!(sw.stats().installs_skipped_closed, 1);
    }

    #[test]
    fn noop_update_counted() {
        let mut sw = switch();
        sw.request_update(vip(), PoolUpdate::Remove(dip(99)), Nanos::ZERO)
            .unwrap();
        assert_eq!(sw.stats().updates_noop, 1);
        assert_eq!(sw.update_phase(vip()), Some(UpdatePhase::Idle));
    }

    #[test]
    fn memory_reflects_connections() {
        let mut sw = switch();
        let m0 = sw.memory();
        for p in 0..100 {
            sw.process_packet(&PacketMeta::syn(conn(p)), Nanos::ZERO);
        }
        settle(&mut sw, 20);
        let m1 = sw.memory();
        assert!(m1.conn_table > m0.conn_table);
        assert_eq!(m1.transit, 256);
    }

    #[test]
    fn fallback_entries_age_on_clock_scan() {
        let mut sw = switch();
        // Pin two connections directly into the fallback table (the paths
        // that populate it — ConnTable overflow and version exhaustion —
        // are exercised by their own tests).
        for p in [1u16, 2] {
            sw.fallback.insert(
                conn(p).tuple_key(),
                FallbackConn {
                    vip: vip(),
                    dip: dip(3),
                    arrived: Nanos::ZERO,
                    hit: false,
                },
            );
            SilkRoadSwitch::note_fallback_insert(&mut sw.stats, vip());
        }
        // First scan only starts the clock: both entries arrived in the
        // current epoch and are kept.
        assert_eq!(sw.expire_idle(Nanos::from_millis(100)), 0);
        assert_eq!(sw.stats().fallback_entries, 2);
        assert_eq!(sw.stats().fallback_pins(vip()), 2);
        // Traffic on conn(1) resolves through the fallback pin and marks it.
        let d = sw.process_packet(&PacketMeta::data(conn(1), 100), Nanos::from_millis(150));
        assert_eq!(d.dip, Some(dip(3)));
        assert!(d.conn_table_hit);
        // Second scan: the quiet pin expires, the busy one survives.
        assert_eq!(sw.expire_idle(Nanos::from_millis(200)), 1);
        assert_eq!(sw.stats().fallback_entries, 1);
        assert_eq!(sw.stats().fallback_pins(vip()), 1);
        assert!(sw.fallback.contains_key(conn(1).key_bytes().as_slice()));
        // Third scan with no traffic in between: the survivor goes too.
        assert_eq!(sw.expire_idle(Nanos::from_millis(300)), 1);
        assert_eq!(sw.stats().fallback_entries, 0);
        assert_eq!(sw.stats().fallback_pins(vip()), 0);
        assert!(
            sw.stats().fallback_pins_by_vip.is_empty(),
            "zeroed VIPs must leave the pin map"
        );
        assert!(sw.fallback.is_empty());
    }

    #[test]
    fn rolling_reboot_reuses_versions_end_to_end() {
        let mut sw = switch();
        // Live connections keep the original version referenced, which is
        // what makes reuse matter (and possible).
        for p in 0..50 {
            sw.process_packet(&PacketMeta::syn(conn(p)), Nanos::ZERO);
        }
        let mut t = Nanos::from_millis(10);
        sw.advance(t);
        let mut port = 1000u16;
        for _ in 0..20 {
            sw.request_update(vip(), PoolUpdate::Remove(dip(1)), t)
                .unwrap();
            t += sr_types::Duration::from_millis(20);
            // Connections arriving while the DIP is down pin the
            // removal-shaped version, as production traffic would.
            for _ in 0..3 {
                sw.process_packet(&PacketMeta::syn(conn(port)), t);
                port += 1;
            }
            t += sr_types::Duration::from_millis(20);
            sw.advance(t);
            sw.request_update(vip(), PoolUpdate::Add(dip(1)), t)
                .unwrap();
            t += sr_types::Duration::from_millis(20);
            sw.advance(t);
        }
        let (allocs, reuses, changes, live) = sw.version_counters(vip()).unwrap();
        assert_eq!(changes, 40);
        assert!(reuses >= 19, "reuses {reuses}");
        assert!(allocs <= 5, "allocations {allocs}");
        assert!(live <= 4, "live versions {live}");
    }

    #[test]
    fn direct_dip_mode_works() {
        let mut cfg = SilkRoadConfig::small_test();
        cfg.mapping = ConnMapping::DirectDip;
        let mut sw = SilkRoadSwitch::new(cfg);
        sw.add_vip(vip(), vec![dip(1), dip(2)]).unwrap();
        let d1 = sw.process_packet(&PacketMeta::syn(conn(3)), Nanos::ZERO);
        sw.advance(Nanos::from_millis(10));
        let d2 = sw.process_packet(&PacketMeta::data(conn(3), 100), Nanos::from_millis(10));
        assert!(d2.conn_table_hit);
        assert_eq!(d1.dip, d2.dip);
        assert_eq!(d2.version, None, "direct mode exposes no version");
    }

    #[test]
    fn meter_polices_a_hot_vip_without_touching_others() {
        use sr_asic::MeterConfig;
        let mut sw = switch();
        let quiet_vip = Vip(Addr::v4(20, 0, 0, 2, 80));
        sw.add_vip(quiet_vip, vec![dip(9)]).unwrap();
        // 1 Mbit/s committed on the hot VIP, nothing on the quiet one.
        sw.attach_meter(
            vip(),
            MeterConfig {
                cir_bps: 125_000,
                cbs: 3_000,
                eir_bps: 0,
                ebs: 0,
            },
        );
        // Flood the hot VIP at ~10x its committed rate.
        let mut t = Nanos::ZERO;
        let mut dropped = 0;
        for i in 0..200u16 {
            let d = sw.process_packet(&PacketMeta::data(conn(i), 1500), t);
            if d.path == DataPath::Dropped {
                dropped += 1;
            }
            t += sr_types::Duration::from_millis(1);
        }
        assert!(dropped > 100, "meter barely dropped: {dropped}");
        assert_eq!(sw.stats().metered_drops, dropped);
        // The quiet VIP is untouched — hardware isolation.
        let q = FiveTuple::tcp(Addr::v4(1, 2, 3, 4, 7), quiet_vip.0);
        let d = sw.process_packet(&PacketMeta::syn(q), t);
        assert!(d.dip.is_some());
        sw.detach_meter(vip());
        let d = sw.process_packet(&PacketMeta::data(conn(9), 1500), t);
        assert_ne!(d.path, DataPath::Dropped);
    }

    #[test]
    fn health_events_drive_updates() {
        use crate::health::{HealthChecker, HealthConfig};
        let mut sw = switch();
        let mut hc = HealthChecker::new(HealthConfig {
            interval: sr_types::Duration::from_secs(1),
            probe_bytes: 100,
            fail_threshold: 2,
            rise_threshold: 1,
        });
        for &d in sw.current_dips(vip()).unwrap() {
            hc.watch(vip(), d, Nanos::ZERO);
        }
        // Live connections pin the pre-failure version so the recovery can
        // reuse it.
        for p in 0..30 {
            sw.process_packet(&PacketMeta::syn(conn(p)), Nanos::ZERO);
        }
        sw.advance(Nanos::from_millis(100));
        // dip(2) stops answering; after two probe rounds it is removed.
        let mut t = Nanos::ZERO;
        for s in 1..=4u64 {
            t = Nanos::from_secs(s);
            let events = hc.poll(t, |_, d| d != dip(2));
            sw.apply_health_events(&events, t).unwrap();
        }
        sw.advance(t + sr_types::Duration::from_millis(50));
        assert!(!sw.current_dips(vip()).unwrap().contains(&dip(2)));
        // It recovers; one healthy round re-adds it.
        for s in 5..=7u64 {
            t = Nanos::from_secs(s);
            let events = hc.poll(t, |_, _| true);
            sw.apply_health_events(&events, t).unwrap();
        }
        sw.advance(t + sr_types::Duration::from_millis(50));
        assert!(sw.current_dips(vip()).unwrap().contains(&dip(2)));
        // The flap reused a version instead of burning two.
        let (_, reuses, _, _) = sw.version_counters(vip()).unwrap();
        assert!(reuses >= 1);
    }

    #[test]
    fn syn_digest_collision_repaired_in_software() {
        // Install one connection, then search the client space for a SYN
        // that falsely hits its digest — the §4.2 repair must kick in:
        // redirect to software, relocate the resident, and leave both
        // connections resolving consistently ever after. An 8-bit digest
        // makes the collision findable in a bounded search.
        let mut cfg = SilkRoadConfig::small_test();
        cfg.digest_bits = 8;
        let mut sw = SilkRoadSwitch::new(cfg);
        sw.add_vip(vip(), vec![dip(1), dip(2), dip(3), dip(4)])
            .unwrap();
        let resident = conn(1);
        let d_res = sw
            .process_packet(&PacketMeta::syn(resident), Nanos::ZERO)
            .dip;
        sw.advance(Nanos::from_millis(10));
        assert_eq!(sw.conn_count(), 1);

        let mut collider = None;
        for i in 0..400_000u32 {
            let probe = FiveTuple::tcp(
                Addr::v4_indexed(7, i / 60_000, 1024 + (i % 60_000) as u16),
                Addr::v4(20, 0, 0, 1, 80),
            );
            let d = sw.process_packet(&PacketMeta::syn(probe), Nanos::from_millis(10));
            if d.path == DataPath::SoftwareRedirect {
                collider = Some(probe);
                break;
            }
            // Keep the table small: drop the learn before it installs.
            sw.close_connection(&probe, Nanos::from_millis(10));
        }
        let collider = collider.expect("no digest collision in 400K probes");
        assert_eq!(sw.stats().syn_repairs, 1);
        assert_eq!(sw.stats().relocations, 1);

        // After the repair both connections are stable and exact.
        sw.advance(Nanos::from_millis(30));
        let r1 = sw.process_packet(&PacketMeta::data(resident, 100), Nanos::from_millis(30));
        assert!(r1.conn_table_hit && !r1.false_hit, "{r1:?}");
        assert_eq!(r1.dip, d_res);
        let r2 = sw.process_packet(&PacketMeta::data(collider, 100), Nanos::from_millis(30));
        assert!(!r2.false_hit, "collider still false-hitting: {r2:?}");
        let r2b = sw.process_packet(&PacketMeta::data(collider, 100), Nanos::from_millis(31));
        assert_eq!(r2.dip, r2b.dip);
    }

    #[test]
    fn empty_pool_drops() {
        let mut sw = SilkRoadSwitch::new(SilkRoadConfig::small_test());
        sw.add_vip(vip(), vec![]).unwrap();
        let d = sw.process_packet(&PacketMeta::syn(conn(1)), Nanos::ZERO);
        assert_eq!(d.path, DataPath::Dropped);
        assert!(d.dip.is_none());
    }
}
