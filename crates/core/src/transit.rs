//! TransitTable — the pending-connection bloom filter (§4.3).
//!
//! During a DIP-pool update, connections that arrived but whose ConnTable
//! entry is not yet installed ("pending connections") must keep mapping to
//! the *old* pool version. TransitTable remembers them in a bloom filter on
//! transactional memory: write-only during step 1 (Recording), read-only
//! during step 2 (Draining), cleared at step 3.
//!
//! One filter is shared by all VIPs under concurrent update (the paper's
//! 256 bytes is a global budget); it can therefore only be cleared when no
//! update is in flight anywhere.

use sr_hash::BloomFilter;

/// The TransitTable.
pub struct TransitTable {
    bloom: BloomFilter,
    enabled: bool,
    /// How many VIP updates are currently in step 1 or 2 (gates clearing).
    active_users: usize,
    /// Stats: keys recorded since last clear.
    pub recorded: u64,
    /// Stats: membership checks served.
    pub checks: u64,
    /// Stats: checks that returned true.
    pub hits: u64,
    /// Stats: clears performed.
    pub clears: u64,
}

impl TransitTable {
    /// Create a TransitTable of `bytes` with `k` hashes. `enabled = false`
    /// models the paper's "SilkRoad without TransitTable" ablation.
    pub fn new(bytes: usize, k: usize, seed: u64, enabled: bool) -> TransitTable {
        TransitTable {
            bloom: BloomFilter::new(bytes, k, seed ^ 0x7a_b1e),
            enabled,
            active_users: 0,
            recorded: 0,
            checks: 0,
            hits: 0,
            clears: 0,
        }
    }

    /// Whether the table participates in updates.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Filter size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bloom.size_bytes()
    }

    /// A VIP update entered step 1 — hold the filter open.
    pub fn acquire(&mut self) {
        self.active_users += 1;
    }

    /// A VIP update finished step 3. When the last user releases, the
    /// filter clears.
    pub fn release(&mut self) {
        debug_assert!(self.active_users > 0);
        self.active_users = self.active_users.saturating_sub(1);
        if self.active_users == 0 && self.enabled {
            self.bloom.clear();
            self.clears += 1;
        }
    }

    /// Updates currently holding the filter.
    pub fn active_users(&self) -> usize {
        self.active_users
    }

    /// The filter's k hash functions, in the order the `_hashed` variants
    /// expect their outputs (for assembling a hash-once list).
    pub fn hash_fns(&self) -> &[sr_hash::HashFn] {
        self.bloom.hash_fns()
    }

    /// Record a pending connection (step 1, write-only phase).
    pub fn record(&mut self, key: &[u8]) {
        if self.enabled {
            self.bloom.insert(key);
            self.recorded += 1;
        }
    }

    /// [`TransitTable::record`] from precomputed bloom hashes.
    pub fn record_hashed(&mut self, hashes: &[u64]) {
        if self.enabled {
            self.bloom.insert_hashed(hashes);
            self.recorded += 1;
        }
    }

    /// Check membership (step 2, read-only phase). Always false when
    /// disabled.
    pub fn check(&mut self, key: &[u8]) -> bool {
        if !self.enabled {
            return false;
        }
        self.checks += 1;
        let hit = self.bloom.contains(key);
        if hit {
            self.hits += 1;
        }
        hit
    }

    /// [`TransitTable::check`] from precomputed bloom hashes.
    pub fn check_hashed(&mut self, hashes: &[u64]) -> bool {
        if !self.enabled {
            return false;
        }
        self.checks += 1;
        let hit = self.bloom.contains_hashed(hashes);
        if hit {
            self.hits += 1;
        }
        hit
    }

    /// Current fill ratio (diagnostic).
    pub fn fill_ratio(&self) -> f64 {
        self.bloom.fill_ratio()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_check_roundtrip() {
        let mut t = TransitTable::new(256, 4, 0, true);
        t.acquire();
        t.record(b"pending-1");
        assert!(t.check(b"pending-1"));
        assert_eq!(t.recorded, 1);
        assert_eq!(t.hits, 1);
    }

    #[test]
    fn disabled_table_is_inert() {
        let mut t = TransitTable::new(256, 4, 0, false);
        t.acquire();
        t.record(b"pending-1");
        assert!(!t.check(b"pending-1"));
        assert_eq!(t.recorded, 0);
    }

    #[test]
    fn clears_only_when_all_users_release() {
        let mut t = TransitTable::new(256, 4, 0, true);
        t.acquire(); // update A
        t.acquire(); // update B
        t.record(b"x");
        t.release(); // A finishes; B still active
        assert!(t.check(b"x"), "cleared while another update active");
        t.release();
        assert_eq!(t.clears, 1);
        assert!(!t.check(b"x"));
        assert_eq!(t.fill_ratio(), 0.0);
    }

    #[test]
    fn small_filter_false_positives_exist() {
        let mut t = TransitTable::new(8, 2, 1, true);
        t.acquire();
        for i in 0..200u32 {
            t.record(&i.to_be_bytes());
        }
        let fp = (10_000..10_200u32)
            .filter(|i| t.check(&i.to_be_bytes()))
            .count();
        assert!(fp > 0, "an 8-byte filter holding 200 keys must alias");
    }
}
