//! VIPTable — the data-plane VIP → version mapping (§4.2, §4.3).
//!
//! The ASIC-visible part of per-VIP state: which pool version new
//! connections should use. While a 3-step update is in flight the entry
//! carries *both* versions ("all the packets that miss ConnTable retrieve
//! both old and new versions from VIPTable and then are checked by
//! TransitTable").

use sr_hash::FxHashMap;
use sr_types::{Addr, PoolVersion, Vip};

/// Data-plane version state of one VIP.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VersionView {
    /// No update in flight: all new connections use this version.
    Stable(PoolVersion),
    /// Step 2 of an update: ConnTable misses consult TransitTable — hit ⇒
    /// `old`, miss ⇒ `new`.
    Updating {
        /// Version before the flip.
        old: PoolVersion,
        /// Version after the flip.
        new: PoolVersion,
    },
}

impl VersionView {
    /// The version a brand-new connection (not in TransitTable) gets.
    pub fn newest(&self) -> PoolVersion {
        match *self {
            VersionView::Stable(v) => v,
            VersionView::Updating { new, .. } => new,
        }
    }
}

/// The VIPTable.
#[derive(Default, Debug)]
pub struct VipTable {
    entries: FxHashMap<Addr, VersionView>,
}

impl VipTable {
    /// Empty table.
    pub fn new() -> VipTable {
        VipTable::default()
    }

    /// Register a VIP at its initial version.
    pub fn insert(&mut self, vip: Vip, version: PoolVersion) {
        self.entries.insert(vip.0, VersionView::Stable(version));
    }

    /// Deregister a VIP.
    pub fn remove(&mut self, vip: Vip) -> Option<VersionView> {
        self.entries.remove(&vip.0)
    }

    /// Data-plane lookup by packet destination address.
    pub fn lookup(&self, dst: &Addr) -> Option<VersionView> {
        self.entries.get(dst).copied()
    }

    /// Whether `dst` is a registered VIP.
    pub fn contains(&self, dst: &Addr) -> bool {
        self.entries.contains_key(dst)
    }

    /// Number of VIPs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no VIPs are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The `t_exec` flip: enter step 2, exposing both versions.
    pub fn begin_transition(&mut self, vip: Vip, old: PoolVersion, new: PoolVersion) {
        self.entries
            .insert(vip.0, VersionView::Updating { old, new });
    }

    /// The `t_finish` step: collapse to the new version only.
    pub fn finish_transition(&mut self, vip: Vip) {
        if let Some(view) = self.entries.get_mut(&vip.0) {
            *view = VersionView::Stable(view.newest());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vip() -> Vip {
        Vip(Addr::v4(20, 0, 0, 1, 80))
    }

    #[test]
    fn lifecycle() {
        let mut t = VipTable::new();
        assert!(t.is_empty());
        t.insert(vip(), PoolVersion(0));
        assert_eq!(
            t.lookup(&vip().0),
            Some(VersionView::Stable(PoolVersion(0)))
        );
        assert!(t.contains(&vip().0));
        assert_eq!(t.len(), 1);
        t.remove(vip());
        assert!(t.lookup(&vip().0).is_none());
    }

    #[test]
    fn transition_flip() {
        let mut t = VipTable::new();
        t.insert(vip(), PoolVersion(0));
        t.begin_transition(vip(), PoolVersion(0), PoolVersion(1));
        match t.lookup(&vip().0).unwrap() {
            VersionView::Updating { old, new } => {
                assert_eq!(old, PoolVersion(0));
                assert_eq!(new, PoolVersion(1));
            }
            other => panic!("unexpected view {other:?}"),
        }
        assert_eq!(t.lookup(&vip().0).unwrap().newest(), PoolVersion(1));
        t.finish_transition(vip());
        assert_eq!(
            t.lookup(&vip().0),
            Some(VersionView::Stable(PoolVersion(1)))
        );
    }

    #[test]
    fn unknown_destination_is_not_vip_traffic() {
        let t = VipTable::new();
        assert!(t.lookup(&Addr::v4(8, 8, 8, 8, 53)).is_none());
    }
}
