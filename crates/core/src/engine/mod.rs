//! Multi-pipe run-to-completion dataplane: RSS-style flow steering over
//! N pipes, each drained by a long-lived worker that owns its shard.
//!
//! A real switching ASIC carries several independent match-action
//! *pipes*, each with its own stages, SRAM, and stateful memory; the
//! chip's aggregate packet rate is the sum of what each pipe drains.
//! Engine v1 modeled the sharding but not the parallelism: it spawned
//! scoped threads per batch and broadcast every control-plane call
//! inline under the caller, so wall-clock throughput barely moved with
//! pipe count. Engine v2 is the real thing:
//!
//! * **Workers** — one long-lived thread per [`Pipe`] (core-pinned where
//!   the OS allows), owning the shard exclusively. The steer thread
//!   never touches pipe state; batches travel through bounded SPSC
//!   rings ([`sr_exec::spsc`]) and buffers are recycled, so the steady
//!   state neither spawns, joins, nor allocates.
//! * **Control plane** — calls are published as immutable ops in an
//!   epoch-versioned `ControlLog`; every job carries an epoch stamp
//!   and workers adopt ops at batch boundaries, exactly up to each
//!   stamp. Op/batch interleaving is therefore caller-sequence
//!   determined — identical in every pipe and for every pipe count —
//!   preserving bit-identical decisions and PCC under concurrent
//!   updates (see `engine/control.rs`).
//! * **Streaming** — [`MultiPipeSwitch::stream_batch`] keeps all pipes
//!   busy without waiting per batch; decisions fold into a commutative
//!   digest so sustained wall-clock benchmarks (`repro wall`) can prove
//!   decision identity across pipe counts at full speed.
//!
//! The [`MultiPipeSwitch::inline`] backend keeps the v1 single-threaded
//! broadcast shape (no worker threads, deterministic, observable via
//! [`MultiPipeSwitch::pipe`]) for harnesses that need it; both backends
//! share the steering, op-application, and fold code, and the test
//! suite pins them decision-identical.
//!
//! Invariants the steering upholds (unchanged from v1):
//!
//! * **Stability** — the same 5-tuple always lands on the same pipe, so
//!   each connection's ConnTable entry, TransitTable bits, and learning
//!   state live in exactly one shard.
//! * **Symmetry** — the hash combines src and dst with XOR before
//!   finalization, so both directions of a VIP flow steer identically
//!   (v4 and v6).
//! * **Balance** — the finalized hash is mapped to a pipe by
//!   multiply-shift, the same unbiased scaling [`sr_hash::ecmp_select`]
//!   uses, so a uniform trace spreads evenly across any pipe count.

mod control;
mod worker;

use crate::config::SilkRoadConfig;
use crate::dataplane::ForwardDecision;
use crate::health::HealthEvent;
use crate::memory::MemoryBreakdown;
use crate::pool::PoolUpdate;
use crate::stats::SwitchStats;
use crate::switch::SilkRoadSwitch;
use crate::update::UpdatePhase;
use control::{apply_op, ControlLog, ControlOp};
use sr_asic::MeterConfig;
use sr_exec::{spsc, Consumer, Producer};
use sr_hash::{splitmix64, HashFn};
use sr_types::{Dip, FiveTuple, Nanos, PacketMeta, PoolVersion, TypeError, Vip};
use std::sync::Arc;
use worker::{answer_query, worker_loop, BatchBuf, Done, Job, Query, QueryReply};

/// Longest inline address encoding ([`sr_types::Addr::encode_to`]):
/// 16 bytes of IPv6 plus the 2-byte port.
const MAX_ADDR_BYTES: usize = 18;

/// RSS-style flow steering: a stable, symmetric, balanced map from a
/// 5-tuple to a pipe index.
#[derive(Clone, Debug)]
pub struct FlowSteering {
    f: HashFn,
    pipes: usize,
}

impl FlowSteering {
    /// Steering over `pipes` pipes, seeded deterministically. Panics if
    /// `pipes` is zero (a switch with no pipes forwards nothing).
    pub fn new(seed: u64, pipes: usize) -> FlowSteering {
        assert!(pipes > 0, "FlowSteering needs at least one pipe");
        FlowSteering {
            // A distinct stream from the switch's table hashes: steering
            // must not correlate with ConnTable bucket placement.
            f: HashFn::new(splitmix64(seed ^ 0x5152_5353_7465_6572)),
            pipes,
        }
    }

    /// Number of pipes this steering maps onto.
    pub fn pipes(&self) -> usize {
        self.pipes
    }

    // srlint: hot-path begin
    /// The symmetric per-flow hash: src and dst are hashed separately and
    /// combined with XOR, so swapping them (the reverse direction of a
    /// VIP flow) yields the same value. Heap-free and panic-free.
    pub fn flow_hash(&self, tuple: &FiveTuple) -> u64 {
        let mut src = [0u8; MAX_ADDR_BYTES];
        let mut dst = [0u8; MAX_ADDR_BYTES];
        let ns = tuple.src.encode_to(&mut src, 0);
        let nd = tuple.dst.encode_to(&mut dst, 0);
        let hs = self.f.hash(src.get(..ns).unwrap_or(&[]));
        let hd = self.f.hash(dst.get(..nd).unwrap_or(&[]));
        splitmix64(hs ^ hd ^ u64::from(tuple.proto.number()))
    }

    /// The pipe a flow steers to. Multiply-shift scaling keeps the spread
    /// unbiased for any pipe count, not just powers of two.
    pub fn pipe_for(&self, tuple: &FiveTuple) -> usize {
        ((self.flow_hash(tuple) as u128 * self.pipes as u128) >> 64) as usize
    }
    // srlint: hot-path end
}

/// One hardware pipe: a full SilkRoad switch shard with its own slice of
/// ConnTable capacity, its own TransitTable bloom, and its own counters.
pub struct Pipe {
    id: usize,
    switch: SilkRoadSwitch,
}

impl Pipe {
    /// The pipe's index on the chip.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The shard's switch, for per-pipe inspection.
    pub fn switch(&self) -> &SilkRoadSwitch {
        &self.switch
    }

    /// Mutable access to the shard's switch — for drivers that have
    /// already steered their traffic (e.g. the saturation benchmark times
    /// each pipe's drain in isolation) or per-pipe fault injection.
    /// Feeding packets whose flows steer to a *different* pipe breaks
    /// flow-to-pipe affinity; normal traffic should go through
    /// [`MultiPipeSwitch::process_batch_into`].
    pub fn switch_mut(&mut self) -> &mut SilkRoadSwitch {
        &mut self.switch
    }
}

/// Construction knobs for [`MultiPipeSwitch::with_options`].
#[derive(Clone, Copy, Debug)]
pub struct EngineOptions {
    /// Spawn per-pipe worker threads (the run-to-completion engine).
    /// `false` keeps everything on the caller's thread (the v1 shape).
    pub threaded: bool,
    /// Ask the OS to pin worker `i` to core `i % cores`. Best-effort:
    /// hosts that refuse (and single-core hosts) run unpinned.
    pub pin_cores: bool,
    /// Slots per worker job ring; also the number of batches a stream
    /// can keep in flight per pipe before backpressure (clamped ≥ 1).
    pub ring_depth: usize,
}

impl Default for EngineOptions {
    fn default() -> EngineOptions {
        EngineOptions {
            threaded: true,
            pin_cores: false,
            ring_depth: 4,
        }
    }
}

/// What a stream processed since the previous drain: a packet count and
/// the commutative decision digest (see `worker::fold_batch`), which is
/// bit-identical across pipe counts and backends for the same traffic
/// and control sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct StreamStats {
    /// Packets processed through the streaming path.
    pub packets: u64,
    /// Order-independent digest of every (flow, decision) pair.
    pub digest: u64,
}

/// The single-threaded backend: pipes and staging lanes owned by the
/// facade, ops applied at publish time.
struct InlineState {
    pipes: Vec<Pipe>,
    lanes: Vec<BatchBuf>,
}

/// One worker's ring endpoints and recycled buffers.
struct WorkerLink {
    id: usize,
    jobs: Producer<Job>,
    done: Consumer<Done>,
    /// Buffers at home (not staged, not in flight). Boxed because the
    /// same allocation shuttles through `Job::Batch`/`Done::Batch` — the
    /// ring moves one pointer, never the buffer's inline storage.
    #[allow(clippy::vec_box)]
    free: Vec<Box<BatchBuf>>,
    /// Buffer being filled by the current steer pass.
    staged: Option<Box<BatchBuf>>,
    /// Batches dispatched and not yet completed.
    in_flight: usize,
    join: Option<std::thread::JoinHandle<()>>,
}

impl WorkerLink {
    /// Send a job; panics if the worker died (its ring closed). A dead
    /// worker is a bug, not a recoverable condition — its shard state is
    /// gone.
    fn send(&mut self, job: Job) {
        if self.jobs.push(job).is_err() {
            panic!("pipe worker {} terminated unexpectedly", self.id);
        }
    }

    /// Receive one completion; panics if the worker died.
    fn recv(&mut self) -> Done {
        match self.done.pop() {
            Some(d) => d,
            None => panic!("pipe worker {} terminated unexpectedly", self.id),
        }
    }
}

/// Wait until `link` has no batches in flight, folding completed
/// streaming batches into the accumulators.
fn quiesce_link(link: &mut WorkerLink, packets: &mut u64, digest: &mut u64) {
    while link.in_flight > 0 {
        if let Done::Batch(mut buf) = link.recv() {
            link.in_flight -= 1;
            *packets += buf.folded_packets;
            *digest = digest.wrapping_add(buf.folded_digest);
            buf.reset();
            link.free.push(buf);
        }
    }
}

/// Take a free buffer from `link`, blocking on a completion when all of
/// its buffers are in flight (stream backpressure).
fn take_buf(link: &mut WorkerLink, packets: &mut u64, digest: &mut u64) -> Box<BatchBuf> {
    loop {
        if let Some(buf) = link.free.pop() {
            return buf;
        }
        if let Done::Batch(mut buf) = link.recv() {
            link.in_flight -= 1;
            *packets += buf.folded_packets;
            *digest = digest.wrapping_add(buf.folded_digest);
            buf.reset();
            return buf;
        }
    }
}

enum Backend {
    Inline(InlineState),
    Threaded(Vec<WorkerLink>),
}

/// A sharded SilkRoad switch: N [`Pipe`]s behind [`FlowSteering`], with
/// an epoch-versioned control plane and aggregated counters.
///
/// Per-flow behaviour is identical to a single [`SilkRoadSwitch`] built
/// from the same configuration: every pipe uses the same hash seed, and
/// each flow's entire packet stream lands in exactly one pipe.
pub struct MultiPipeSwitch {
    cfg: SilkRoadConfig,
    steering: FlowSteering,
    log: Arc<ControlLog>,
    backend: Backend,
    /// Streaming fold accumulators (see [`StreamStats`]).
    accum_packets: u64,
    accum_digest: u64,
}

impl MultiPipeSwitch {
    /// Build the run-to-completion engine with `pipes` worker threads
    /// (default [`EngineOptions`]). The total ConnTable capacity in `cfg`
    /// is sharded evenly across pipes. Panics on an invalid configuration
    /// or an unplaceable layout (the replicated program must verify on
    /// the Tofino-class chip, including the SRC016 pipe-count rule).
    pub fn new(cfg: SilkRoadConfig, pipes: usize) -> MultiPipeSwitch {
        MultiPipeSwitch::with_options(cfg, pipes, EngineOptions::default())
    }

    /// Build the single-threaded backend: same sharding, same decision
    /// stream, no worker threads. For deterministic harnesses, per-pipe
    /// inspection ([`MultiPipeSwitch::pipe`]), and allocation gates that
    /// must observe the hot loop from the calling thread.
    pub fn inline(cfg: SilkRoadConfig, pipes: usize) -> MultiPipeSwitch {
        MultiPipeSwitch::with_options(
            cfg,
            pipes,
            EngineOptions {
                threaded: false,
                ..EngineOptions::default()
            },
        )
    }

    /// Build with explicit [`EngineOptions`].
    pub fn with_options(cfg: SilkRoadConfig, pipes: usize, opts: EngineOptions) -> MultiPipeSwitch {
        assert!(pipes > 0, "MultiPipeSwitch needs at least one pipe");
        let per_pipe = SilkRoadConfig {
            conn_capacity: cfg.conn_capacity.div_ceil(pipes),
            ..cfg.clone()
        };
        // The per-pipe program must place in one pipe's budgets *and*
        // replicate within the chip's pipe count. Checked before any
        // worker thread exists, so an unplaceable layout panics cleanly.
        let report = per_pipe
            .pipeline_program()
            .with_pipes(pipes as u32)
            .check(&sr_asic::ChipSpec::tofino_class());
        assert!(
            report.is_placeable(),
            "multi-pipe layout rejected:\n{}",
            report.render()
        );
        let steering = FlowSteering::new(cfg.seed, pipes);
        let log = Arc::new(ControlLog::new());
        let depth = opts.ring_depth.max(1);
        let backend = if opts.threaded {
            let cores = sr_exec::available_cores();
            let links = (0..pipes)
                .map(|id| {
                    let pipe = Pipe {
                        id,
                        // Same seed in every pipe: hash families (digest,
                        // bucket, select, bloom) are identical chip-wide,
                        // so a flow's decision does not depend on which
                        // pipe it steers to.
                        switch: SilkRoadSwitch::new(per_pipe.clone()),
                    };
                    let (jobs_tx, jobs_rx) = spsc::<Job>(depth);
                    // Completions: up to `depth` batches plus a control or
                    // query reply can be outstanding; the worker must be
                    // able to push its final completions during shutdown
                    // without blocking forever.
                    let (done_tx, done_rx) = spsc::<Done>(depth + 2);
                    let worker_steering = steering.clone();
                    let worker_log = Arc::clone(&log);
                    let pin_core = (opts.pin_cores && cores >= 2).then_some(id % cores);
                    let join = std::thread::Builder::new()
                        .name(format!("sr-pipe-{id}"))
                        .spawn(move || {
                            worker_loop(
                                pipe,
                                worker_steering,
                                worker_log,
                                jobs_rx,
                                done_tx,
                                pin_core,
                            )
                        })
                        .expect("spawn pipe worker");
                    WorkerLink {
                        id,
                        jobs: jobs_tx,
                        done: done_rx,
                        free: (0..depth).map(|_| BatchBuf::boxed()).collect(),
                        staged: None,
                        in_flight: 0,
                        join: Some(join),
                    }
                })
                .collect();
            Backend::Threaded(links)
        } else {
            let inline_pipes: Vec<Pipe> = (0..pipes)
                .map(|id| Pipe {
                    id,
                    switch: SilkRoadSwitch::new(per_pipe.clone()),
                })
                .collect();
            let lanes = inline_pipes.iter().map(|_| *BatchBuf::boxed()).collect();
            Backend::Inline(InlineState {
                pipes: inline_pipes,
                lanes,
            })
        };
        MultiPipeSwitch {
            cfg,
            steering,
            log,
            backend,
            accum_packets: 0,
            accum_digest: 0,
        }
    }

    /// The aggregate configuration (total capacity, before sharding).
    pub fn config(&self) -> &SilkRoadConfig {
        &self.cfg
    }

    /// Number of pipes.
    pub fn pipe_count(&self) -> usize {
        match &self.backend {
            Backend::Inline(st) => st.pipes.len(),
            Backend::Threaded(links) => links.len(),
        }
    }

    /// Whether per-pipe worker threads are running.
    pub fn is_threaded(&self) -> bool {
        matches!(self.backend, Backend::Threaded(_))
    }

    /// One pipe, for per-pipe (lossless) counter inspection. `None` on
    /// the threaded backend, where workers own the pipes exclusively.
    pub fn pipe(&self, id: usize) -> Option<&Pipe> {
        match &self.backend {
            Backend::Inline(st) => st.pipes.get(id),
            Backend::Threaded(_) => None,
        }
    }

    /// One pipe, mutably (see [`Pipe::switch_mut`] for the contract).
    /// `None` on the threaded backend.
    pub fn pipe_mut(&mut self, id: usize) -> Option<&mut Pipe> {
        match &mut self.backend {
            Backend::Inline(st) => st.pipes.get_mut(id),
            Backend::Threaded(_) => None,
        }
    }

    /// The steering map.
    pub fn steering(&self) -> &FlowSteering {
        &self.steering
    }

    // ---- data plane ----------------------------------------------------

    // srlint: hot-path begin
    /// Process one packet: steer, then run it through its pipe.
    pub fn process_packet(&mut self, pkt: &PacketMeta, now: Nanos) -> ForwardDecision {
        let p = self.steering.pipe_for(&pkt.tuple);
        match &mut self.backend {
            Backend::Inline(st) => match st.pipes.get_mut(p) {
                Some(pipe) => pipe.switch.process_packet(pkt, now),
                // Unreachable: pipe_for maps into 0..pipes. Fail closed.
                None => ForwardDecision::dropped(),
            },
            Backend::Threaded(links) => {
                let epoch = self.log.epoch();
                let (pa, da) = (&mut self.accum_packets, &mut self.accum_digest);
                let Some(link) = links.get_mut(p) else {
                    return ForwardDecision::dropped();
                };
                // Serialize behind any streamed batches on this pipe so
                // the single-packet reply is unambiguous.
                quiesce_link(link, pa, da);
                let mut buf = take_buf(link, pa, da);
                buf.reset();
                buf.epoch = epoch;
                buf.now = now;
                buf.fold = false;
                buf.idx.push(0);
                buf.pkts.push(*pkt);
                link.send(Job::Batch(buf));
                link.in_flight += 1;
                loop {
                    if let Done::Batch(mut done) = link.recv() {
                        link.in_flight -= 1;
                        let d = done.out.first().copied();
                        done.reset();
                        link.free.push(done);
                        return d.unwrap_or_else(ForwardDecision::dropped);
                    }
                }
            }
        }
    }

    /// Process a batch, returning decisions in input order.
    pub fn process_batch(&mut self, pkts: &[PacketMeta], now: Nanos) -> Vec<ForwardDecision> {
        let mut out = Vec::with_capacity(pkts.len());
        self.process_batch_into(pkts, now, &mut out);
        out
    }

    /// [`MultiPipeSwitch::process_batch`] appending into a caller-owned
    /// buffer. Steer every packet to its pipe's staging buffer, hand the
    /// buffers to the pipes (inline on this thread, or to the resident
    /// workers), then scatter each pipe's decisions back to input order.
    /// Buffers are recycled, so the steady state allocates nothing.
    pub fn process_batch_into(
        &mut self,
        pkts: &[PacketMeta],
        now: Nanos,
        out: &mut Vec<ForwardDecision>,
    ) {
        let base = out.len();
        out.resize(base + pkts.len(), ForwardDecision::dropped());
        match &mut self.backend {
            Backend::Inline(st) => {
                for lane in &mut st.lanes {
                    lane.reset();
                }
                for (i, pkt) in pkts.iter().enumerate() {
                    let p = self.steering.pipe_for(&pkt.tuple);
                    if let Some(lane) = st.lanes.get_mut(p) {
                        lane.idx.push(i as u32);
                        lane.pkts.push(*pkt);
                    }
                }
                for (pipe, lane) in st.pipes.iter_mut().zip(st.lanes.iter_mut()) {
                    pipe.switch
                        .process_batch_into(&lane.pkts, now, &mut lane.out);
                }
                for lane in &st.lanes {
                    scatter(lane, out, base);
                }
            }
            Backend::Threaded(links) => {
                let epoch = self.log.epoch();
                let (pa, da) = (&mut self.accum_packets, &mut self.accum_digest);
                for link in links.iter_mut() {
                    // Streamed batches still in flight would race this
                    // synchronous round-trip; drain them first.
                    quiesce_link(link, pa, da);
                    let mut buf = take_buf(link, pa, da);
                    buf.reset();
                    buf.epoch = epoch;
                    buf.now = now;
                    buf.fold = false;
                    link.staged = Some(buf);
                }
                for (i, pkt) in pkts.iter().enumerate() {
                    let p = self.steering.pipe_for(&pkt.tuple);
                    if let Some(link) = links.get_mut(p) {
                        if let Some(buf) = link.staged.as_mut() {
                            buf.idx.push(i as u32);
                            buf.pkts.push(*pkt);
                        }
                    }
                }
                for link in links.iter_mut() {
                    if let Some(buf) = link.staged.take() {
                        if buf.pkts.is_empty() {
                            link.free.push(buf);
                        } else {
                            link.send(Job::Batch(buf));
                            link.in_flight += 1;
                        }
                    }
                }
                for link in links.iter_mut() {
                    while link.in_flight > 0 {
                        if let Done::Batch(mut buf) = link.recv() {
                            link.in_flight -= 1;
                            scatter(&buf, out, base);
                            buf.reset();
                            link.free.push(buf);
                        }
                    }
                }
            }
        }
    }

    /// Feed a batch to the pipes **without waiting for completion**: the
    /// sustained-throughput path. Decisions are not returned; they fold
    /// into the [`StreamStats`] digest collected by
    /// [`MultiPipeSwitch::stream_drain`]. Applies backpressure per pipe
    /// once `ring_depth` batches are in flight.
    pub fn stream_batch(&mut self, pkts: &[PacketMeta], now: Nanos) {
        match &mut self.backend {
            Backend::Inline(st) => {
                for lane in &mut st.lanes {
                    lane.reset();
                }
                for pkt in pkts.iter() {
                    let p = self.steering.pipe_for(&pkt.tuple);
                    if let Some(lane) = st.lanes.get_mut(p) {
                        lane.pkts.push(*pkt);
                    }
                }
                for (pipe, lane) in st.pipes.iter_mut().zip(st.lanes.iter_mut()) {
                    pipe.switch
                        .process_batch_into(&lane.pkts, now, &mut lane.out);
                    worker::fold_batch(&self.steering, lane);
                    self.accum_packets += lane.folded_packets;
                    self.accum_digest = self.accum_digest.wrapping_add(lane.folded_digest);
                }
            }
            Backend::Threaded(links) => {
                let epoch = self.log.epoch();
                let (pa, da) = (&mut self.accum_packets, &mut self.accum_digest);
                for link in links.iter_mut() {
                    let mut buf = take_buf(link, pa, da);
                    buf.reset();
                    buf.epoch = epoch;
                    buf.now = now;
                    buf.fold = true;
                    link.staged = Some(buf);
                }
                for pkt in pkts.iter() {
                    let p = self.steering.pipe_for(&pkt.tuple);
                    if let Some(link) = links.get_mut(p) {
                        if let Some(buf) = link.staged.as_mut() {
                            buf.pkts.push(*pkt);
                        }
                    }
                }
                for link in links.iter_mut() {
                    if let Some(buf) = link.staged.take() {
                        if buf.pkts.is_empty() {
                            link.free.push(buf);
                        } else {
                            link.send(Job::Batch(buf));
                            link.in_flight += 1;
                        }
                    }
                }
            }
        }
    }
    // srlint: hot-path end

    /// Wait for every in-flight streamed batch, then return and reset
    /// the fold accumulators.
    pub fn stream_drain(&mut self) -> StreamStats {
        if let Backend::Threaded(links) = &mut self.backend {
            let (pa, da) = (&mut self.accum_packets, &mut self.accum_digest);
            for link in links.iter_mut() {
                quiesce_link(link, pa, da);
            }
        }
        let stats = StreamStats {
            packets: self.accum_packets,
            digest: self.accum_digest,
        };
        self.accum_packets = 0;
        self.accum_digest = 0;
        stats
    }

    /// Close a connection. Steering picks the owning pipe here, at
    /// publish time, so every backend (and every pipe count) skips the
    /// op identically on non-owning pipes.
    pub fn close_connection(&mut self, tuple: &FiveTuple, now: Nanos) {
        let pipe = self.steering.pipe_for(tuple);
        let _ = self.control(ControlOp::CloseConn {
            tuple: *tuple,
            now,
            pipe,
        });
    }

    // ---- control plane (published ops) ---------------------------------

    /// Publish one op and synchronously bring every pipe up to its epoch.
    /// Returns the summed expiry count; the first error any pipe's
    /// adoption produced wins (pipes hold identical control state, so
    /// they fail identically).
    fn control(&mut self, op: ControlOp) -> Result<usize, TypeError> {
        match &mut self.backend {
            Backend::Inline(st) => {
                let mut expired = 0;
                let mut first: Option<TypeError> = None;
                for pipe in &mut st.pipes {
                    let (e, r) = apply_op(pipe.id, &mut pipe.switch, &op);
                    expired += e;
                    if first.is_none() {
                        first = r.err();
                    }
                }
                match first {
                    Some(e) => Err(e),
                    None => Ok(expired),
                }
            }
            Backend::Threaded(links) => {
                let epoch = self.log.publish(op);
                for link in links.iter_mut() {
                    link.send(Job::Control { epoch });
                }
                let (pa, da) = (&mut self.accum_packets, &mut self.accum_digest);
                let mut expired = 0;
                let mut first: Option<TypeError> = None;
                for link in links.iter_mut() {
                    loop {
                        match link.recv() {
                            Done::Control(reply) => {
                                expired += reply.expired;
                                if first.is_none() {
                                    first = reply.error;
                                }
                                break;
                            }
                            Done::Batch(mut buf) => {
                                // A streamed batch completing while we
                                // wait; fold and recycle it.
                                link.in_flight -= 1;
                                *pa += buf.folded_packets;
                                *da = da.wrapping_add(buf.folded_digest);
                                buf.reset();
                                link.free.push(buf);
                            }
                            Done::Query(_) => {}
                        }
                    }
                }
                // Every pipe confirmed adoption: the grace period is over
                // and the ops can be reclaimed.
                self.log.truncate_to(epoch);
                match first {
                    Some(e) => Err(e),
                    None => Ok(expired),
                }
            }
        }
    }

    /// Register a VIP on every pipe.
    pub fn add_vip(&mut self, vip: Vip, dips: Vec<Dip>) -> Result<(), TypeError> {
        self.control(ControlOp::AddVip { vip, dips }).map(|_| ())
    }

    /// Remove a VIP from every pipe.
    pub fn remove_vip(&mut self, vip: Vip) -> Result<(), TypeError> {
        self.control(ControlOp::RemoveVip { vip }).map(|_| ())
    }

    /// Request a DIP-pool update on every pipe; each pipe runs the 3-step
    /// PCC protocol over its own shard of connections.
    pub fn request_update(
        &mut self,
        vip: Vip,
        op: PoolUpdate,
        now: Nanos,
    ) -> Result<(), TypeError> {
        self.control(ControlOp::RequestUpdate { vip, op, now })
            .map(|_| ())
    }

    /// Apply health transitions on every pipe.
    pub fn apply_health_events(
        &mut self,
        events: &[HealthEvent],
        now: Nanos,
    ) -> Result<(), TypeError> {
        self.control(ControlOp::Health {
            events: events.to_vec(),
            now,
        })
        .map(|_| ())
    }

    /// Attach a VIP meter on every pipe. Each pipe polices its own share
    /// of the VIP's flows, so a chip-level rate `r` is configured as `r`
    /// per pipe only if the caller wants per-pipe ceilings; pass the
    /// already-divided rate for an aggregate bound.
    pub fn attach_meter(&mut self, vip: Vip, cfg: MeterConfig) {
        let _ = self.control(ControlOp::AttachMeter { vip, cfg });
    }

    /// Detach a VIP's meter on every pipe.
    pub fn detach_meter(&mut self, vip: Vip) {
        let _ = self.control(ControlOp::DetachMeter { vip });
    }

    /// Run every pipe's control plane up to `now`.
    pub fn advance(&mut self, now: Nanos) {
        let _ = self.control(ControlOp::Advance { now });
    }

    /// Expire idle connections on every pipe; returns the total expired.
    pub fn expire_idle(&mut self, now: Nanos) -> usize {
        self.control(ControlOp::ExpireIdle { now }).unwrap_or(0)
    }

    // ---- aggregated observability --------------------------------------

    /// Ask every pipe `query`; replies arrive in pipe order. Replies stay
    /// boxed because that is how `Done::Query` carries them off the ring.
    #[allow(clippy::vec_box)]
    fn query_all(&mut self, query: Query) -> Vec<Box<QueryReply>> {
        match &mut self.backend {
            Backend::Inline(st) => st
                .pipes
                .iter()
                .map(|p| match answer_query(p, query) {
                    Done::Query(r) => r,
                    // answer_query only builds Query completions.
                    _ => unreachable!(),
                })
                .collect(),
            Backend::Threaded(links) => {
                let epoch = self.log.epoch();
                for link in links.iter_mut() {
                    link.send(Job::Query { epoch, query });
                }
                let (pa, da) = (&mut self.accum_packets, &mut self.accum_digest);
                let mut replies = Vec::with_capacity(links.len());
                for link in links.iter_mut() {
                    loop {
                        match link.recv() {
                            Done::Query(r) => {
                                replies.push(r);
                                break;
                            }
                            Done::Batch(mut buf) => {
                                link.in_flight -= 1;
                                *pa += buf.folded_packets;
                                *da = da.wrapping_add(buf.folded_digest);
                                buf.reset();
                                link.free.push(buf);
                            }
                            Done::Control(_) => {}
                        }
                    }
                }
                replies
            }
        }
    }

    /// Ask pipe 0 (authoritative for broadcast control state).
    fn query_first(&mut self, query: Query) -> Option<Box<QueryReply>> {
        match &mut self.backend {
            Backend::Inline(st) => st.pipes.first().map(|p| match answer_query(p, query) {
                Done::Query(r) => r,
                _ => unreachable!(),
            }),
            Backend::Threaded(_) => self.query_all(query).into_iter().next(),
        }
    }

    /// Chip-level statistics: every pipe's counters merged losslessly
    /// (scalar sums; per-VIP maps merged keywise).
    pub fn stats(&mut self) -> SwitchStats {
        let mut total = SwitchStats::default();
        for reply in self.query_all(Query::Stats) {
            if let QueryReply::Stats(s) = &*reply {
                total.merge(s);
            }
        }
        total
    }

    /// Total installed connections across pipes.
    pub fn conn_count(&mut self) -> usize {
        self.query_all(Query::ConnCount)
            .iter()
            .map(|r| match &**r {
                QueryReply::ConnCount(n) => *n,
                _ => 0,
            })
            .sum()
    }

    /// A VIP's update phase. The control plane applies to every pipe in
    /// the same order, so all pipes agree; pipe 0 is authoritative.
    pub fn update_phase(&mut self, vip: Vip) -> Option<UpdatePhase> {
        match self.query_first(Query::UpdatePhase(vip)).as_deref() {
            Some(QueryReply::UpdatePhase(p)) => *p,
            _ => None,
        }
    }

    /// A VIP's current pool version (pipe 0; see [`Self::update_phase`]).
    pub fn current_version(&mut self, vip: Vip) -> Option<PoolVersion> {
        match self.query_first(Query::CurrentVersion(vip)).as_deref() {
            Some(QueryReply::CurrentVersion(v)) => *v,
            _ => None,
        }
    }

    /// The live DIPs of a VIP's newest pool (identical on every pipe;
    /// answered by pipe 0). Owned: on the threaded backend the data
    /// crosses from the worker's shard.
    pub fn current_dips(&mut self, vip: Vip) -> Option<Vec<Dip>> {
        match self.query_first(Query::CurrentDips(vip)) {
            Some(reply) => match *reply {
                QueryReply::CurrentDips(d) => d,
                _ => None,
            },
            None => None,
        }
    }

    /// Version-manager counters summed across pipes: (allocations, reuses,
    /// pool_changes, live_versions). Each pipe allocates versions for its
    /// own DIPPoolTable, so the sums count chip-wide events and the
    /// summed `live_versions` is the chip-wide pool-row count. Per-pipe
    /// values stay reachable through [`Self::pipe`] on the inline
    /// backend.
    pub fn version_counters(&mut self, vip: Vip) -> Option<(u64, u64, u64, usize)> {
        let mut any = false;
        let mut total = (0u64, 0u64, 0u64, 0usize);
        for reply in self.query_all(Query::VersionCounters(vip)) {
            if let QueryReply::VersionCounters(Some((a, r, c, l))) = &*reply {
                any = true;
                total.0 += a;
                total.1 += r;
                total.2 += c;
                total.3 += l;
            }
        }
        any.then_some(total)
    }

    /// TransitTable counters summed across pipes: (recorded, checks, hits,
    /// total_size_bytes).
    pub fn transit_counters(&mut self) -> (u64, u64, u64, usize) {
        let mut total = (0u64, 0u64, 0u64, 0usize);
        for reply in self.query_all(Query::TransitCounters) {
            if let QueryReply::TransitCounters((r, c, h, s)) = &*reply {
                total.0 += r;
                total.1 += c;
                total.2 += h;
                total.3 += s;
            }
        }
        total
    }

    /// Chip-wide SRAM footprint: the sum of every pipe's breakdown.
    pub fn memory(&mut self) -> MemoryBreakdown {
        let mut total = MemoryBreakdown::default();
        for reply in self.query_all(Query::Memory) {
            if let QueryReply::Memory(m) = &*reply {
                total.conn_table += m.conn_table;
                total.vip_table += m.vip_table;
                total.dip_pool_table += m.dip_pool_table;
                total.transit += m.transit;
            }
        }
        total
    }

    /// Earliest pending control-plane wakeup across all pipes.
    pub fn next_wakeup(&mut self) -> Option<Nanos> {
        self.query_all(Query::NextWakeup)
            .iter()
            .filter_map(|r| match &**r {
                QueryReply::NextWakeup(w) => *w,
                _ => None,
            })
            .min()
    }
}

impl Drop for MultiPipeSwitch {
    fn drop(&mut self) {
        if let Backend::Threaded(links) = &mut self.backend {
            // Close every job ring first: each worker drains its queued
            // batches, then exits its loop and drops its done producer.
            for link in links.iter_mut() {
                link.jobs.close();
            }
            for link in links.iter_mut() {
                // Drain completions until the worker's producer drops;
                // this also unblocks a worker pushing into a full ring.
                while link.done.pop().is_some() {}
                if let Some(join) = link.join.take() {
                    // A worker that panicked already reported on stderr;
                    // nothing useful to do with the payload in drop.
                    let _ = join.join();
                }
            }
        }
    }
}

// srlint: hot-path begin
/// Scatter one buffer's decisions back to input order.
fn scatter(buf: &BatchBuf, out: &mut [ForwardDecision], base: usize) {
    for (d, &i) in buf.out.iter().zip(buf.idx.iter()) {
        if let Some(slot) = out.get_mut(base + i as usize) {
            *slot = *d;
        }
    }
}
// srlint: hot-path end

#[cfg(test)]
mod tests {
    use super::*;
    use sr_types::Addr;

    fn vip() -> Vip {
        Vip(Addr::v4(20, 0, 0, 1, 80))
    }

    fn dip(i: u8) -> Dip {
        Dip(Addr::v4(10, 0, 0, i, 20))
    }

    fn conn(i: u32) -> FiveTuple {
        FiveTuple::tcp(Addr::v4_indexed(1, i, 1000), vip().0)
    }

    fn engine(pipes: usize) -> MultiPipeSwitch {
        let mut e = MultiPipeSwitch::inline(SilkRoadConfig::small_test(), pipes);
        e.add_vip(vip(), vec![dip(1), dip(2), dip(3)]).unwrap();
        e
    }

    fn threaded(pipes: usize) -> MultiPipeSwitch {
        let mut e = MultiPipeSwitch::new(SilkRoadConfig::small_test(), pipes);
        e.add_vip(vip(), vec![dip(1), dip(2), dip(3)]).unwrap();
        e
    }

    #[test]
    fn steering_is_symmetric_per_direction() {
        let s = FlowSteering::new(7, 4);
        let fwd = FiveTuple::tcp(Addr::v4(1, 2, 3, 4, 1234), Addr::v4(20, 0, 0, 1, 80));
        let rev = FiveTuple::tcp(Addr::v4(20, 0, 0, 1, 80), Addr::v4(1, 2, 3, 4, 1234));
        assert_eq!(s.flow_hash(&fwd), s.flow_hash(&rev));
        assert_eq!(s.pipe_for(&fwd), s.pipe_for(&rev));
    }

    #[test]
    #[should_panic(expected = "at least one pipe")]
    fn zero_pipes_rejected() {
        let _ = FlowSteering::new(1, 0);
    }

    #[test]
    fn batch_decisions_match_per_packet_path() {
        let mut a = engine(4);
        let mut b = engine(4);
        let pkts: Vec<PacketMeta> = (0..64).map(|i| PacketMeta::syn(conn(i))).collect();
        let batch = a.process_batch(&pkts, Nanos::ZERO);
        let single: Vec<ForwardDecision> = pkts
            .iter()
            .map(|p| b.process_packet(p, Nanos::ZERO))
            .collect();
        assert_eq!(batch, single);
        assert_eq!(a.stats().packets, 64);
    }

    #[test]
    fn broadcast_update_runs_on_every_pipe() {
        let mut e = engine(4);
        let pkts: Vec<PacketMeta> = (0..64).map(|i| PacketMeta::syn(conn(i))).collect();
        e.process_batch(&pkts, Nanos::ZERO);
        e.advance(Nanos::from_secs(1));
        e.request_update(vip(), PoolUpdate::Add(dip(9)), Nanos::from_secs(1))
            .unwrap();
        e.advance(Nanos::from_secs(2));
        assert_eq!(e.update_phase(vip()), Some(UpdatePhase::Idle));
        for p in 0..e.pipe_count() {
            let sw = e.pipe(p).unwrap().switch();
            assert!(
                sw.current_dips(vip()).unwrap().contains(&dip(9)),
                "pipe {p}"
            );
            assert_eq!(sw.stats().updates_requested, 1, "pipe {p}");
        }
        // The aggregate view sums the broadcast events.
        assert_eq!(e.stats().updates_requested, 4);
    }

    #[test]
    fn counters_aggregate_losslessly() {
        let mut e = engine(4);
        let pkts: Vec<PacketMeta> = (0..256).map(|i| PacketMeta::syn(conn(i))).collect();
        e.process_batch(&pkts, Nanos::ZERO);
        e.advance(Nanos::from_secs(1));
        let per_pipe: u64 = (0..e.pipe_count())
            .map(|p| e.pipe(p).unwrap().switch().stats().installs)
            .sum();
        assert_eq!(e.stats().installs, per_pipe);
        assert!(per_pipe > 0);
        let conn_sum: usize = (0..e.pipe_count())
            .map(|p| e.pipe(p).unwrap().switch().conn_count())
            .sum();
        assert_eq!(e.conn_count(), conn_sum);
        let mem = e.memory();
        assert!(mem.transit > 0 && mem.conn_table > 0);
    }

    #[test]
    fn layout_check_covers_the_pipes_dimension() {
        // 4 pipes fit the Tofino-class chip; more than the chip has must
        // be rejected by SRC016 at construction — before any worker
        // thread spawns, on both backends.
        let chip_pipes = sr_asic::ChipSpec::tofino_class().pipes as usize;
        let ok = std::panic::catch_unwind(|| {
            MultiPipeSwitch::inline(SilkRoadConfig::small_test(), chip_pipes)
        });
        assert!(ok.is_ok());
        let too_many = std::panic::catch_unwind(|| {
            MultiPipeSwitch::new(SilkRoadConfig::small_test(), chip_pipes + 1)
        });
        assert!(too_many.is_err());
    }

    #[test]
    fn threaded_engine_matches_inline() {
        let mut seq = engine(4);
        let mut thr = threaded(4);
        let pkts: Vec<PacketMeta> = (0..512).map(|i| PacketMeta::syn(conn(i))).collect();
        assert_eq!(
            seq.process_batch(&pkts, Nanos::ZERO),
            thr.process_batch(&pkts, Nanos::ZERO)
        );
        let t1 = Nanos::from_secs(1);
        seq.advance(t1);
        thr.advance(t1);
        let data: Vec<PacketMeta> = (0..512).map(|i| PacketMeta::data(conn(i), 800)).collect();
        assert_eq!(seq.process_batch(&data, t1), thr.process_batch(&data, t1));
        assert_eq!(seq.stats(), thr.stats());
        assert_eq!(seq.conn_count(), thr.conn_count());
        assert_eq!(seq.memory(), thr.memory());
        assert_eq!(seq.transit_counters(), thr.transit_counters());
    }

    #[test]
    fn threaded_control_plane_matches_inline() {
        let mut seq = engine(4);
        let mut thr = threaded(4);
        let pkts: Vec<PacketMeta> = (0..256).map(|i| PacketMeta::syn(conn(i))).collect();
        seq.process_batch(&pkts, Nanos::ZERO);
        thr.process_batch(&pkts, Nanos::ZERO);
        let t1 = Nanos::from_secs(1);
        seq.advance(t1);
        thr.advance(t1);
        seq.request_update(vip(), PoolUpdate::Add(dip(9)), t1)
            .unwrap();
        thr.request_update(vip(), PoolUpdate::Add(dip(9)), t1)
            .unwrap();
        // Duplicate VIP registration errors identically on both backends.
        assert_eq!(
            seq.add_vip(vip(), vec![dip(1)]).unwrap_err(),
            thr.add_vip(vip(), vec![dip(1)]).unwrap_err()
        );
        let t2 = Nanos::from_secs(3);
        seq.advance(t2);
        thr.advance(t2);
        assert_eq!(seq.update_phase(vip()), thr.update_phase(vip()));
        assert_eq!(seq.current_version(vip()), thr.current_version(vip()));
        assert_eq!(seq.current_dips(vip()), thr.current_dips(vip()));
        assert_eq!(seq.version_counters(vip()), thr.version_counters(vip()));
        assert_eq!(seq.next_wakeup(), thr.next_wakeup());
        // Expiry counts agree too (two-pass aging scan).
        assert_eq!(
            seq.expire_idle(Nanos::from_secs(300)),
            thr.expire_idle(Nanos::from_secs(300))
        );
        assert_eq!(
            seq.expire_idle(Nanos::from_secs(600)),
            thr.expire_idle(Nanos::from_secs(600))
        );
        assert_eq!(seq.conn_count(), thr.conn_count());
    }

    #[test]
    fn stream_digest_matches_across_backends_and_pipe_counts() {
        let mut digests = Vec::new();
        for (pipes, use_threads) in [(1, false), (4, false), (1, true), (2, true), (4, true)] {
            let mut e = MultiPipeSwitch::with_options(
                SilkRoadConfig::small_test(),
                pipes,
                EngineOptions {
                    threaded: use_threads,
                    ..EngineOptions::default()
                },
            );
            e.add_vip(vip(), vec![dip(1), dip(2), dip(3)]).unwrap();
            let syns: Vec<PacketMeta> = (0..256).map(|i| PacketMeta::syn(conn(i))).collect();
            e.process_batch(&syns, Nanos::ZERO);
            e.advance(Nanos::from_secs(1));
            let data: Vec<PacketMeta> = (0..256).map(|i| PacketMeta::data(conn(i), 800)).collect();
            // Stream in uneven chunks: the digest must not depend on
            // batch boundaries.
            let chunk = if pipes == 2 { 96 } else { 128 };
            for c in data.chunks(chunk) {
                e.stream_batch(c, Nanos::from_secs(1));
            }
            let s = e.stream_drain();
            assert_eq!(s.packets, 256, "pipes={pipes} threaded={use_threads}");
            digests.push(s.digest);
        }
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "stream digests diverged: {digests:x?}"
        );
    }

    #[test]
    fn streaming_interleaved_with_sync_calls_is_consistent() {
        let mut e = threaded(2);
        let syns: Vec<PacketMeta> = (0..128).map(|i| PacketMeta::syn(conn(i))).collect();
        e.process_batch(&syns, Nanos::ZERO);
        e.advance(Nanos::from_secs(1));
        let data: Vec<PacketMeta> = (0..128).map(|i| PacketMeta::data(conn(i), 800)).collect();
        // Stream, then issue sync control + queries with batches possibly
        // still in flight, then stream more.
        e.stream_batch(&data, Nanos::from_secs(1));
        e.request_update(vip(), PoolUpdate::Add(dip(7)), Nanos::from_secs(1))
            .unwrap();
        assert!(e.conn_count() > 0);
        e.stream_batch(&data, Nanos::from_secs(1));
        let s = e.stream_drain();
        assert_eq!(s.packets, 256);
        assert_eq!(e.stats().packets, 128 + 256);
    }

    #[test]
    fn drop_with_in_flight_batches_shuts_down_cleanly() {
        let mut e = threaded(2);
        let syns: Vec<PacketMeta> = (0..256).map(|i| PacketMeta::syn(conn(i))).collect();
        e.process_batch(&syns, Nanos::ZERO);
        e.advance(Nanos::from_secs(1));
        let data: Vec<PacketMeta> = (0..256).map(|i| PacketMeta::data(conn(i), 800)).collect();
        for _ in 0..8 {
            e.stream_batch(&data, Nanos::from_secs(1));
        }
        // Drop without draining: workers must finish the queued batches
        // and join without hanging.
        drop(e);
    }

    #[test]
    fn pipe_access_is_inline_only() {
        let mut inline = engine(2);
        assert!(inline.pipe(0).is_some());
        assert!(inline.pipe_mut(1).is_some());
        assert!(!inline.is_threaded());
        let mut thr = threaded(2);
        assert!(thr.is_threaded());
        assert!(thr.pipe(0).is_none());
        assert!(thr.pipe_mut(0).is_none());
    }
}
